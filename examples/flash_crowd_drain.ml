(* Draining a flash crowd.

   The paper models the *stationary* phase "which typically follows for
   many hours after a flash crowd initiation".  This example looks at the
   initiation itself: N0 empty-handed peers appear at t = 0 with a single
   fixed seed and (essentially) no further arrivals.

   The punchline is the paper's own corollary playing out in the
   transient: if peers leave the moment they complete (gamma = inf), the
   endgame is seed-limited — completed peers take their upload capacity
   with them, the stragglers end up missing the same pieces, and the drain
   time grows LINEARLY in N0 at rate ~U_s.  If peers dwell just long
   enough to upload one more piece (gamma = mu), the swarm keeps its
   capacity and the drain time grows only logarithmically.  Piece
   selection also matters during the transient even though Theorem 14 says
   it cannot change the stationary region. *)

open P2p_core
module PS = P2p_pieceset.Pieceset
module Runner = P2p_runner.Runner
module Welford = P2p_stats.Welford

let reps = 8

let drain_time ~policy ~gamma ~n0 ~rng =
  (* tiny arrival rate: Params requires a positive total rate *)
  let params = Scenario.flash_crowd ~k:4 ~lambda:1e-6 ~us:1.0 ~mu:1.0 ~gamma in
  let config =
    { (Sim_agent.default_config params) with policy; initial = [ (PS.empty, n0) ] }
  in
  let stats, _ = Sim_agent.run ~rng ~sample_every:1.0 config ~horizon:4000.0 in
  (* first sample at which at most 5% of the crowd remains *)
  let target = n0 / 20 in
  Array.fold_left
    (fun acc (t, n) ->
      match acc with Some _ -> acc | None -> if n <= target then Some t else None)
    None stats.samples

(* Mean drain time over [reps] independent crowds (multicore runner);
   censored runs (not drained within the horizon) are excluded from the
   mean and reported as a count. *)
let replicated_drain ~policy ~gamma ~n0 ~master_seed =
  let times, _ =
    Runner.run_map ~master_seed ~replications:reps (fun ~rng ~index:_ ->
        drain_time ~policy ~gamma ~n0 ~rng)
  in
  let w = Welford.create () in
  Array.iter (function Some (Some t) -> Welford.add w t | Some None | None -> ()) times;
  (w, reps - Welford.count w)

let fmt_drain (w, censored) =
  if Welford.count w = 0 then ">4000"
  else if censored > 0 then
    Printf.sprintf "%s (%d/%d censored)" (Report.fmt_float (Welford.mean w)) censored reps
  else
    Printf.sprintf "%s +/- %s" (Report.fmt_float (Welford.mean w))
      (Report.fmt_float (Welford.std_error w))

let () =
  Report.banner "Flash crowd drain: who keeps the capacity?";
  Report.subsection
    (Printf.sprintf
       "time to serve 95%% of N0 empty peers (seed rate 1, mu = 1), by dwell regime; mean of \
        %d replications"
       reps);
  let rows =
    List.map
      (fun n0 ->
        let leave =
          replicated_drain ~policy:Policy.random_useful ~gamma:infinity ~n0 ~master_seed:51
        in
        let dwell =
          replicated_drain ~policy:Policy.random_useful ~gamma:1.0 ~n0 ~master_seed:51
        in
        [
          string_of_int n0;
          fmt_drain leave;
          fmt_drain dwell;
          (let w, _ = dwell in
           if Welford.count w = 0 then "-"
           else Report.fmt_float (Welford.mean w /. log (float_of_int n0)));
        ])
      [ 50; 100; 200; 400; 800 ]
  in
  Report.table
    ~header:
      [ "N0"; "drain, leave-at-once"; "drain, dwell (gamma=mu)"; "dwell drain / ln N0" ]
    rows;
  print_endline
    "\nLeave-at-once drains linearly in N0 (the endgame is seed-limited: the\n\
     last peers all miss the same pieces - the missing piece syndrome in\n\
     transient form).  Dwelling peers keep the swarm's capacity and the\n\
     drain time grows only logarithmically: the corollary's one extra\n\
     upload, visible in the flash crowd itself.";

  Report.subsection
    (Printf.sprintf "policy effect during the transient (N0 = 400, leave-at-once, %d reps)"
       reps);
  let rows =
    List.map
      (fun (policy : Policy.t) ->
        let d = replicated_drain ~policy ~gamma:infinity ~n0:400 ~master_seed:52 in
        [ policy.name; fmt_drain d ])
      [ Policy.random_useful; Policy.rarest_first; Policy.most_common_first; Policy.sequential ]
  in
  Report.table ~header:[ "piece selection"; "95% drain time" ] rows;
  print_endline
    "\nRarest-first delays the endgame scarcity; most-common-first and\n\
     sequential manufacture it early.  None of this changes the stationary\n\
     stability region (Theorem 14) - the transient cost is what BitTorrent's\n\
     designers tuned for.";
  exit 0
