(* The missing piece syndrome up close (Section V / VI, Fig. 2).

   Start a transient swarm from a large one-club — every peer holds all
   pieces except piece 1 — and watch the group decomposition the
   transience proof uses: normal young peers, infected peers (got piece 1
   while young), gifted peers (arrived with piece 1), one-club peers and
   former one-club peers.  The one-club grows linearly at rate ≈ Δ while
   all other groups stay O(1); the branching-process constants of the
   proof quantify exactly how many departures each injection of piece 1
   can cause. *)

open P2p_core
module Abs = P2p_branching.Abs
module Pieceset = P2p_pieceset.Pieceset
module Runner = P2p_runner.Runner
module Welford = P2p_stats.Welford
module Probe = P2p_obs.Probe
module Series = P2p_obs.Series

let () =
  Report.banner "Missing piece syndrome (Fig. 2 group decomposition)";
  let k = 4 in
  let us = 0.2 in
  let lambda = 1.0 in
  let gamma = 2.0 in
  let mu = 1.0 in
  let params = Scenario.flash_crowd ~k ~lambda ~us ~mu ~gamma in
  let verdict, piece, _ = Stability.classify_detail params in
  let thr = Stability.threshold params ~piece in
  Printf.printf "K=%d U_s=%g lambda=%g mu=%g gamma=%g\n" k us lambda mu gamma;
  Printf.printf "Theorem 1: %s (threshold %.3f vs arrival rate %.3f)\n"
    (Stability.verdict_to_string verdict) thr lambda;
  Printf.printf "Expected one-club growth rate Delta = %.3f per unit time\n"
    (lambda -. thr);

  (* Branching constants of the transience proof (xi -> 0 limits). *)
  Report.subsection "autonomous branching system constants (Section VI)";
  let abs = { Abs.k; mu; gamma; xi = 0.0 } in
  Report.kv
    [
      ("m_b (descendants+1 of an infected peer)", Report.fmt_float (Abs.m_b_limit abs));
      ("m_f (descendants+1 of a former one-club peer)", Report.fmt_float (Abs.m_f_limit abs));
      ( "m_g({1}) (descendants of a 1-piece gifted peer)",
        Report.fmt_float (Abs.m_g_limit abs ~c_size:1) );
      ( "download-rate bound (RHS of Eq. 2)",
        Report.fmt_float
          (Abs.dhat_rate_limit ~us ~k ~mu_over_gamma:(mu /. gamma) ~gifted:[]) );
    ];

  (* Simulate from a 300-peer one-club and print the group trajectory. *)
  let one_club = Pieceset.remove 0 (Pieceset.full ~k) in
  let config = { (Sim_agent.default_config params) with initial = [ (one_club, 300) ] } in
  let stats, _ = Sim_agent.run_seeded ~seed:404 ~sample_every:40.0 config ~horizon:400.0 in
  Report.subsection "group populations over time (start: 300 one-club peers)";
  Report.table
    ~header:[ "time"; "young"; "infected"; "gifted"; "one-club"; "former"; "total" ]
    (Array.to_list
       (Array.map
          (fun (t, (g : Sim_agent.groups)) ->
            [
              Report.fmt_float t;
              string_of_int g.young;
              string_of_int g.infected;
              string_of_int g.gifted;
              string_of_int g.one_club;
              string_of_int g.former_one_club;
              string_of_int (Sim_agent.groups_total g);
            ])
          stats.group_samples));
  Printf.printf "\nOne-club time-average fraction of the population: %.3f\n"
    stats.one_club_time_fraction;

  (* One trajectory is suggestive; the quantitative claim "the club grows
     at rate Delta" needs replications.  16 independent runs through the
     multicore runner: the measured growth rate should bracket Delta. *)
  Report.subsection "replicated growth-rate estimate (16 runner replications)";
  let summary =
    Runner.run_summary
      ~metrics:[ "growth dN/dt"; "one-club time fraction" ]
      ~master_seed:404 ~replications:16
      (fun ~rng ~index:_ ->
        let stats, _ = Sim_agent.run ~rng ~sample_every:10.0 config ~horizon:400.0 in
        let fit = Classify.of_samples stats.samples in
        Runner.rep [| fit.growth_rate; stats.one_club_time_fraction |])
  in
  List.iter
    (fun (name, w) ->
      let lo, hi = Welford.confidence_interval w ~z:1.96 in
      Printf.printf "  %-24s %8.3f   95%% CI [%.3f, %.3f]\n" name (Welford.mean w) lo hi)
    summary.stats;
  Printf.printf "  paper-predicted Delta    %8.3f\n" (lambda -. thr);
  Format.printf "  (%a)@." Runner.pp_timing summary.timing;

  (* The same syndrome read straight off the telemetry layer: attach a
     swarm probe (sim-time sampling grid, pure observation) and fit the
     one-club series it collects.  The transient swarm's club crosses
     into significant linear growth; the cured one (gamma = mu, below)
     never does.  This is what `p2psim simulate --probe-interval` +
     `p2psim report` automate from the command line. *)
  Report.subsection "telemetry: one-club growth from the probe series";
  let probe_one_club config =
    let series = Series.create ~k in
    let probe = Probe.make ~interval:20.0 ~on_sample:(Series.record series) () in
    ignore (Sim_agent.run_seeded ~probe ~seed:404 config ~horizon:400.0);
    Series.close series ~time:400.0;
    series
  in
  let series = probe_one_club config in
  Report.table
    ~header:[ "time"; "one-club"; "population"; "rarest copies" ]
    (Array.to_list
       (Array.map
          (fun (s : Probe.sample) ->
            [
              Report.fmt_float s.Probe.time;
              string_of_int s.Probe.one_club;
              string_of_int s.Probe.n;
              string_of_int s.Probe.rarest_count;
            ])
          (Series.samples series)));
  let fit = Classify.of_samples (Series.one_club_series series) in
  let cured_params = Params.with_gamma params ~gamma:mu in
  let cured_config =
    { (Sim_agent.default_config cured_params) with initial = [ (one_club, 300) ] }
  in
  let cured_fit = Classify.of_samples (Series.one_club_series (probe_one_club cured_config)) in
  Printf.printf "  transient: club grows %.3f/t (t-stat %.1f, predicted Delta %.3f)\n"
    fit.growth_rate fit.growth_t_stat (lambda -. thr);
  Printf.printf "  cured:     club grows %.3f/t (t-stat %.1f) -- drains instead\n"
    cured_fit.growth_rate cured_fit.growth_t_stat;

  (* The antidote: let peers dwell just long enough (gamma <= mu). *)
  Report.subsection "the corollary: dwell to upload one extra piece";
  let cured = Params.with_gamma params ~gamma:mu in
  let r = Classify.run ~horizon:1500.0 ~seed:405 ~initial:[ (one_club, 300) ] cured in
  Report.kv
    [
      ("gamma set to mu, theory", Stability.verdict_to_string (Stability.classify cured));
      ("simulated from the same 300-peer one-club", Classify.verdict_to_string r.verdict);
      ("final population", string_of_int r.final_n);
    ];
  exit 0
