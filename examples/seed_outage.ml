(* A flaky seed and the missing piece syndrome.

   Theorem 1 assumes the fixed seed is always there.  This example takes
   the same stable swarm and puts the seed on an alternating up/down
   renewal schedule (mean up U, mean down D): long-run it delivers
   contacts at rate U_s x U/(U+D), so Theorem 1 evaluated at that
   effective rate predicts when outages alone tip the swarm into the
   missing piece syndrome.

   With lambda = 0.6 and U_s = 1 (gamma = inf) the boundary is at duty
   cycle 0.6.  The sweep below walks the duty cycle down through it and
   shows (a) the population staying bounded above the boundary, (b) the
   one-club blow-up below it, and (c) the effective-U_s verdict calling
   the flip correctly — the degraded-operation analogue of the paper's
   phase diagram.  All fault schedules are deterministic functions of
   (master seed, replication), so this output is reproducible and
   jobs-independent like every other sweep in the repo. *)

open P2p_core
module Runner = P2p_runner.Runner
module Welford = P2p_stats.Welford

let params = Scenario.flash_crowd ~k:3 ~lambda:0.6 ~us:1.0 ~mu:1.0 ~gamma:infinity
let cycle = 20.0
let reps = 8
let horizon = 1500.0

let sweep duty =
  let faults =
    if duty >= 1.0 then Faults.none
    else Faults.make ~outage:(duty *. cycle, (1.0 -. duty) *. cycle) ()
  in
  let config = { (Sim_markov.default_config params) with faults } in
  let summary =
    Runner.run_summary
      ~metrics:[ "time-avg N"; "final N"; "outage fraction"; "stable vote" ]
      ~master_seed:(7000 + int_of_float (100.0 *. duty))
      ~replications:reps
      (fun ~rng ~index:_ ->
        let stats, _ = Sim_markov.run ~rng config ~horizon in
        let verdict = (Classify.of_samples stats.samples).verdict in
        Runner.rep ~flagged:stats.truncated
          [|
            stats.time_avg_n;
            float_of_int stats.final_n;
            stats.outage_time /. stats.final_time;
            (if verdict = Classify.Appears_stable then 1.0 else 0.0);
          |])
  in
  let mean name = Welford.mean (List.assoc name summary.stats) in
  (mean "time-avg N", mean "final N", mean "outage fraction", mean "stable vote", summary)

let () =
  Report.banner "Seed outages: degraded operation of a stable swarm";
  Printf.printf
    "K=%d, lambda=%g, U_s=%g, gamma=inf: stable iff effective U_s > lambda,\n\
     i.e. duty cycle > %g.  %d replications per duty cycle, horizon %g.\n\n"
    params.k
    (Params.lambda_total params)
    params.us
    (Params.lambda_total params /. params.us)
    reps horizon;
  Report.table
    ~header:
      [ "duty"; "eff U_s"; "Theorem 1 @ eff"; "sim votes"; "mean N"; "final N"; "down frac" ]
    (List.map
       (fun duty ->
         let mean_n, final_n, down, votes, _ = sweep duty in
         let faults =
           if duty >= 1.0 then Faults.none
           else Faults.make ~outage:(duty *. cycle, (1.0 -. duty) *. cycle) ()
         in
         [
           Report.fmt_float duty;
           Report.fmt_float (Faults.effective_us faults ~us:params.us);
           Stability.verdict_to_string
             (Stability.classify_effective params ~uptime_fraction:duty);
           Printf.sprintf "%.0f/%d stable" (votes *. float_of_int reps) reps;
           Report.fmt_float mean_n;
           Report.fmt_float final_n;
           Report.fmt_float down;
         ])
       [ 1.0; 0.9; 0.8; 0.7; 0.5; 0.35 ]);
  print_endline
    "\nReading the table: above duty 0.6 the population stays small and every\n\
     replication looks stable; below it the time-average and final N blow up\n\
     and the votes flip — in lockstep with the effective-U_s verdict.  The\n\
     syndrome needs no adversary, only a seed that is sometimes away."
