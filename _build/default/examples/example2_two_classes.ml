(* Example 2 of the paper (Fig. 1(b)): two complementary peer classes.

   A 4-piece file, no fixed seed, immediate departures.  Type {1,2} peers
   arrive at λ12 and type {3,4} peers at λ34, each class holding exactly
   the half of the file the other needs.  The swarm lives purely on
   barter: theory says it is stable iff λ12 < 2·λ34 and λ34 < 2·λ12 —
   each departure of a {3,4} peer requires two uploads of pieces 1-2 and
   vice versa, so a class more than twice as popular starves the other. *)

open P2p_core

let mu = 1.0

let describe lambda12 lambda34 =
  let p = Scenario.example2 ~lambda12 ~lambda34 ~mu in
  let verdict = Stability.classify p in
  let r = Classify.run ~horizon:2500.0 ~seed:77 p in
  [
    Printf.sprintf "%.2f" lambda12;
    Printf.sprintf "%.2f" lambda34;
    Report.fmt_bool (lambda12 < 2.0 *. lambda34 && lambda34 < 2.0 *. lambda12);
    Stability.verdict_to_string verdict;
    Classify.verdict_to_string r.verdict;
    Report.fmt_float r.mean_n;
    string_of_int r.final_n;
  ]

let () =
  Report.banner "Example 2: two complementary classes (Fig. 1b)";
  print_endline "Stable region: lambda12 < 2*lambda34 and lambda34 < 2*lambda12.";
  Report.table
    ~header:
      [ "lambda12"; "lambda34"; "ineqs hold"; "theory"; "simulated"; "mean N"; "final N" ]
    (List.map
       (fun (a, b) -> describe a b)
       [ (1.0, 1.0); (1.0, 0.6); (1.5, 0.8); (1.0, 0.45); (0.45, 1.0); (2.0, 0.5) ]);

  (* Which group blows up in the transient case?  Start the unstable swarm
     empty and look at the final distribution over types. *)
  Report.subsection "anatomy of the blow-up at lambda12=1.0, lambda34=0.45";
  let p = Scenario.example2 ~lambda12:1.0 ~lambda34:0.45 ~mu in
  let _, final = Sim_markov.run_seeded ~seed:78 (Sim_markov.default_config p) ~horizon:2500.0 in
  let rows =
    List.filter_map
      (fun (c, count) ->
        if count > 0 then Some [ Params.Pieceset.to_string c; string_of_int count ] else None)
      (State.to_alist final)
  in
  Report.table ~header:[ "type"; "count" ] rows;
  print_endline
    "\nThe mass concentrates on types missing one piece of the rarer class --\n\
     the missing piece syndrome in its two-sided form.";
  exit 0
