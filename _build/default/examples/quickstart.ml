(* Quickstart: define a swarm, ask Theorem 1 whether it is stable, and
   check the answer against a simulation.

   The swarm: a 4-piece file, a fixed seed contacting peers 0.8 times per
   unit time, empty-handed peers arriving at rate 1.5, every peer
   contacting a random peer once per unit time, and peers dwelling as
   peer seeds for a mean 1/2 time unit after completing the file. *)

open P2p_core

let () =
  let params =
    Params.make ~k:4 ~us:0.8 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (Params.Pieceset.empty, 1.5) ]
  in
  Report.banner "Quickstart: is this swarm stable?";
  Format.printf "%a@." Params.pp params;

  (* Theorem 1: compare the total arrival rate to the per-piece threshold
     (U_s + Σ_{C∋k} λ_C (K+1-|C|)) / (1 - μ/γ). *)
  let verdict, piece, margin = Stability.classify_detail params in
  Report.kv
    [
      ("Theorem 1 verdict", Stability.verdict_to_string verdict);
      ("binding piece", string_of_int (piece + 1));
      ("threshold for that piece", Report.fmt_float (Stability.threshold params ~piece));
      ("total arrival rate", Report.fmt_float (Params.lambda_total params));
      ("stability margin", Report.fmt_float margin);
      ( "largest stable arrival rate (same mix)",
        Report.fmt_float (Stability.stable_lambda_limit params) );
    ];

  (* Simulate the exact Markov chain and classify the trajectory. *)
  let result = Classify.run ~horizon:3000.0 ~seed:2024 params in
  Report.subsection "simulation (horizon 3000, seed 2024)";
  Report.kv
    [
      ("simulated verdict", Classify.verdict_to_string result.verdict);
      ("time-average population", Report.fmt_float result.mean_n);
      ("growth rate of N_t", Report.fmt_float result.growth_rate);
      ("final population", string_of_int result.final_n);
    ];

  (* The same swarm without the peer-seed dwell (γ = ∞) loses stability:
     peers must dwell long enough to return the favour. *)
  let no_dwell = Params.with_gamma params ~gamma:infinity in
  Report.subsection "same swarm, but peers leave immediately on completion";
  Report.kv
    [
      ("Theorem 1 verdict", Stability.verdict_to_string (Stability.classify no_dwell));
      ( "threshold",
        Report.fmt_float (Stability.threshold no_dwell ~piece:(Stability.binding_piece no_dwell))
      );
    ];
  print_endline "\nDone. See examples/ for the paper's worked examples.";
  exit 0
