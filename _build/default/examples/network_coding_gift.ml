(* Network coding with gifted arrivals (Section VIII-B, Theorem 15).

   Without coding, a swarm with no fixed seed and immediate departures is
   transient whenever any fraction f < 1 of peers arrives with one
   (uncoded) piece.  With random linear coding over F_q, a tiny gifted
   fraction suffices: transient below f ≈ q/((q-1)K) and positive
   recurrent above ≈ q²/((q-1)²K).  We print the paper's q=64, K=200
   thresholds and simulate a reduced-scale swarm on both sides. *)

open P2p_core

let () =
  Report.banner "Network coding with gifted arrivals (Theorem 15)";

  (* The paper's numeric example. *)
  let q = 64 and k = 200 in
  Report.subsection "paper example: q = 64, K = 200";
  Report.kv
    [
      ( "transient if f <",
        Report.fmt_float (Stability.Coded.transient_f_threshold ~q ~k) );
      ( "positive recurrent if f > (exact Eq. 55)",
        Report.fmt_float (Stability.Coded.recurrent_f_threshold_exact ~q ~k) );
      ( "paper's displayed approximation",
        Report.fmt_float (Stability.Coded.recurrent_f_threshold_paper ~q ~k) );
      ( "without coding: transient for every f <",
        "1  (Theorem 1: missing piece syndrome)" );
    ];

  (* Reduced-scale simulation where the state space is tractable. *)
  let q = 16 and k = 8 in
  Report.subsection
    (Printf.sprintf "simulation at q = %d, K = %d (thresholds: %.4f / %.4f)" q k
       (Stability.Coded.transient_f_threshold ~q ~k)
       (Stability.Coded.recurrent_f_threshold_exact ~q ~k));
  let rows =
    List.map
      (fun f ->
        let g =
          {
            Stability.Coded.q;
            k;
            us = 0.0;
            mu = 1.0;
            gamma = infinity;
            lambda0 = 1.0 -. f;
            lambda1 = f;
          }
        in
        let theory = Stability.Coded.classify g in
        let s = Sim_coded.run_seeded ~seed:909 (Sim_coded.of_gift g) ~horizon:900.0 in
        let r = Classify.of_samples s.samples in
        let uncoded = Stability.Coded.uncoded_equivalent_is_transient ~k ~f in
        [
          Printf.sprintf "%.3f" f;
          Stability.verdict_to_string theory;
          Classify.verdict_to_string r.verdict;
          Report.fmt_float s.time_avg_n;
          string_of_int s.final_n;
          (if uncoded then "transient" else "-");
        ])
      [ 0.02; 0.08; 0.25; 0.50 ]
  in
  Report.table
    ~header:[ "f"; "coded theory"; "coded sim"; "mean N"; "final N"; "uncoded theory" ]
    rows;

  (* Remark 16: exchanging subspace descriptions makes every eligible
     contact useful, squeezing the q-dependence out of the gap. *)
  Report.subsection "Remark 16: smart exchange (q = 2 where random combos often miss)";
  let g =
    {
      Stability.Coded.q = 2;
      k = 8;
      us = 0.0;
      mu = 1.0;
      gamma = infinity;
      lambda0 = 0.6;
      lambda1 = 0.4;
    }
  in
  let plain = Sim_coded.run_seeded ~seed:910 (Sim_coded.of_gift g) ~horizon:600.0 in
  let smart =
    Sim_coded.run_seeded ~seed:910
      { (Sim_coded.of_gift g) with smart_exchange = true }
      ~horizon:600.0
  in
  Report.table
    ~header:[ "variant"; "mean N"; "useful"; "useless"; "final N" ]
    [
      [
        "random combination";
        Report.fmt_float plain.time_avg_n;
        string_of_int plain.useful_transfers;
        string_of_int plain.useless_transfers;
        string_of_int plain.final_n;
      ];
      [
        "smart exchange";
        Report.fmt_float smart.time_avg_n;
        string_of_int smart.useful_transfers;
        string_of_int smart.useless_transfers;
        string_of_int smart.final_n;
      ];
    ];
  exit 0
