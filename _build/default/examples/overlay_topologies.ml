(* Sparse overlays: the paper's model beyond the fully connected graph.

   The model assumes any peer can contact any other.  Here each arriving
   peer gets a fixed random peer set from the tracker (degree d) and only
   uploads to those neighbors; the fixed seed stays globally reachable.
   Questions: does the Theorem 1 stability region survive sparsification,
   and what does locality cost in population and delay?  (This is the
   topology adaptation the paper's conclusion calls for.) *)

open P2p_core

let () =
  Report.banner "Sparse overlay topologies";
  let stable = Scenario.flash_crowd ~k:4 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let verdict, piece, _ = Stability.classify_detail stable in
  Printf.printf "Base swarm: K=4, lambda=1, U_s=1, gamma=2 -> %s (threshold %.2f)\n"
    (Stability.verdict_to_string verdict)
    (Stability.threshold stable ~piece);

  Report.subsection "population vs overlay degree (stable swarm, horizon 2000)";
  let rows =
    List.map
      (fun degree ->
        let cfg = { (Sim_network.default_config stable) with degree } in
        let s, _ = Sim_network.run_seeded ~seed:31 cfg ~horizon:2000.0 in
        let r = Classify.of_samples s.samples in
        [
          (match degree with None -> "inf" | Some d -> string_of_int d);
          Classify.verdict_to_string r.verdict;
          Report.fmt_float s.time_avg_n;
          (if Float.is_nan s.mean_degree_time_avg then "-"
           else Report.fmt_float s.mean_degree_time_avg);
          string_of_int (List.length s.final_component_sizes);
        ])
      [ None; Some 12; Some 6; Some 3; Some 1 ]
  in
  Report.table
    ~header:[ "attach degree"; "verdict"; "mean N"; "mean overlay degree"; "components" ]
    rows;

  Report.subsection "piece selection with only local information (degree 4)";
  let rows =
    List.map
      (fun (label, choice) ->
        let cfg =
          { (Sim_network.default_config stable) with degree = Some 4; choice }
        in
        let s, _ = Sim_network.run_seeded ~seed:32 cfg ~horizon:2000.0 in
        [
          label;
          Report.fmt_float s.time_avg_n;
          string_of_int s.transfers;
          string_of_int s.silent_contacts;
        ])
      [
        ("random useful", Sim_network.Random_useful);
        ("rarest-first, global census", Sim_network.Rarest_global);
        ("rarest-first, neighborhood census", Sim_network.Rarest_local);
      ]
  in
  Report.table ~header:[ "policy"; "mean N"; "transfers"; "silent contacts" ] rows;
  print_endline
    "\nTakeaway: the stability verdict is untouched by sparsification (the\n\
     seed remains reachable), while the constants degrade gracefully;\n\
     neighborhood-census rarest-first recovers most of the benefit of\n\
     global knowledge.";
  exit 0
