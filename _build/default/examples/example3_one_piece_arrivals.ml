(* Example 3 of the paper (Fig. 1(c)): every peer arrives with one piece.

   A 3-piece file, no fixed seed; type {i} peers arrive at rate λi; peer
   seeds dwell at rate γ > μ.  Theory: stable iff for every piece k,

       Σ_{i≠k} λi  <  λk (2 + μ/γ) / (1 - μ/γ).

   With γ = ∞ this degenerates to λi+λj < 2λk, which fails whenever the
   rates are not all equal: the symmetric network is the borderline case
   studied in Section VIII-D. *)

open P2p_core

let mu = 1.0

let show ~gamma (l1, l2, l3) =
  let p = Scenario.example3 ~lambda1:l1 ~lambda2:l2 ~lambda3:l3 ~mu ~gamma in
  let verdict = Stability.classify p in
  let r = Classify.run ~horizon:2500.0 ~seed:33 p in
  [
    Printf.sprintf "(%.2g, %.2g, %.2g)" l1 l2 l3;
    Stability.verdict_to_string verdict;
    Classify.verdict_to_string r.verdict;
    Report.fmt_float r.mean_n;
    string_of_int r.final_n;
  ]

let () =
  Report.banner "Example 3: one-piece arrivals (Fig. 1c)";
  let gamma = 1.5 in
  let p = Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu ~gamma in
  Printf.printf "gamma = %g; the three stability inequalities at the symmetric point:\n" gamma;
  Array.iteri
    (fun i (lhs, rhs) ->
      Printf.printf "  missing piece %d:  %.3f < %.3f  (%s)\n" (i + 1) lhs rhs
        (if lhs < rhs then "holds" else "fails"))
    (Scenario.example3_lhs_rhs p);

  Report.subsection "sweep of arrival-rate vectors (gamma = 1.5)";
  Report.table
    ~header:[ "(l1,l2,l3)"; "theory"; "simulated"; "mean N"; "final N" ]
    (List.map (show ~gamma)
       [ (1.0, 1.0, 1.0); (1.5, 1.2, 1.0); (2.5, 1.0, 0.3); (0.2, 1.0, 1.0) ]);

  Report.subsection "gamma = infinity: asymmetry is fatal";
  Report.table
    ~header:[ "(l1,l2,l3)"; "theory"; "simulated"; "mean N"; "final N" ]
    (List.map (show ~gamma:infinity) [ (1.0, 1.0, 1.3); (1.3, 1.0, 1.0) ]);

  (* Fluid-limit cross-check at the stable symmetric point. *)
  Report.subsection "fluid limit vs stochastic mean (stable point)";
  let init = Fluid.of_state ~k:3 (State.create ()) in
  (match Fluid.equilibrium p ~init with
  | Some eq ->
      let stats, _ = Sim_markov.run_seeded ~seed:34 (Sim_markov.default_config p) ~horizon:4000.0 in
      Report.kv
        [
          ("fluid equilibrium total population", Report.fmt_float (Fluid.total eq));
          ("stochastic time-average population", Report.fmt_float stats.time_avg_n);
        ]
  | None -> print_endline "  fluid trajectory did not settle (unexpected here)");
  exit 0
