(* Exact stationary analysis of a small swarm (truncated chain).

   Theorem 1(b) promises a finite stationary mean population E[N] inside
   the stability region.  For small K we can compute it *exactly* by
   enumerating every state up to a population cap and power-iterating the
   uniformised chain — a third, independent view next to the theory and
   the stochastic simulation.

   The demo: (i) the K=1, gamma=inf model collapses to an M/M/1 queue and
   the solver reproduces its closed form; (ii) a K=2 swarm's exact E[N]
   matches a long simulation; (iii) E[N] blows up as the arrival rate
   approaches the Theorem 1 boundary — the quantitative content of
   stability being *lost*, not just degraded. *)

open P2p_core
module PS = P2p_pieceset.Pieceset

let () =
  Report.banner "Exact stationary distributions (truncated chain)";

  Report.subsection "sanity: K=1, gamma=inf is an M/M/1 queue";
  let lambda = 0.6 and us = 1.0 in
  let p = Params.make ~k:1 ~us ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, lambda) ] in
  let chain = Truncated.build p ~n_max:150 in
  let pi = Truncated.stationary chain in
  let rho = lambda /. us in
  Report.kv
    [
      ("states enumerated", string_of_int (Truncated.state_count chain));
      ("exact E[N]", Report.fmt_float (Truncated.mean_population chain pi));
      ("M/M/1 closed form rho/(1-rho)", Report.fmt_float (rho /. (1.0 -. rho)));
      ("exact P(empty)", Report.fmt_float (Truncated.probability_empty chain pi));
      ("M/M/1 closed form 1-rho", Report.fmt_float (1.0 -. rho));
    ];

  Report.subsection "K=2 swarm: exact vs simulated E[N]";
  let p2 = Params.make ~k:2 ~us:0.8 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.5) ] in
  let chain2 = Truncated.build p2 ~n_max:24 in
  let pi2 = Truncated.stationary chain2 in
  let stats, _ = Sim_markov.run_seeded ~seed:7 (Sim_markov.default_config p2) ~horizon:20000.0 in
  Report.kv
    [
      ("states enumerated", string_of_int (Truncated.state_count chain2));
      ("exact E[N]", Report.fmt_float (Truncated.mean_population chain2 pi2));
      ("simulated E[N] (horizon 20000)", Report.fmt_float stats.time_avg_n);
      ("exact P(N >= 10)", Report.fmt_float (Truncated.population_tail chain2 pi2 ~at_least:10));
      ( "exact mean peer seeds",
        Report.fmt_float (Truncated.mean_type_count chain2 pi2 (PS.full ~k:2)) );
      ("mass at the cap (truncation bias)", Report.fmt_float (Truncated.truncation_mass_at_cap chain2 pi2));
    ];

  Report.subsection "E[N] blows up at the Theorem 1 boundary (K=1, threshold = 1)";
  let rows =
    List.map
      (fun lambda0 ->
        let p = Scenario.example1 ~lambda0 ~us:0.5 ~mu:1.0 ~gamma:2.0 in
        (* E[N] scales like 1/(1-lambda0); cap a few multiples above it. *)
        let n_max = Int.min 350 (int_of_float (25.0 /. (1.0 -. lambda0))) in
        let chain = Truncated.build p ~n_max in
        let pi = Truncated.stationary ~tol:1e-9 chain in
        [
          Report.fmt_float lambda0;
          Report.fmt_float (Truncated.mean_population chain pi);
          Report.fmt_float (Truncated.truncation_mass_at_cap chain pi);
        ])
      [ 0.5; 0.7; 0.85; 0.92; 0.96 ]
  in
  Report.table ~header:[ "lambda0"; "exact E[N]"; "cap mass" ] rows;
  print_endline "\n(the divergence as lambda0 -> 1 is the loss of positive recurrence)";
  exit 0
