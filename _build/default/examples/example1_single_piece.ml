(* Example 1 of the paper (Fig. 1(a)): a single-piece file.

   New peers arrive empty-handed at rate λ0; the fixed seed uploads the
   piece at rate U_s; a peer holding the piece dwells as a peer seed for a
   mean 1/γ before leaving, uploading to others at rate μ meanwhile.

   Theory (Leskelä-Robert-Simatos, recovered by Theorem 1): stable iff
   μ >= γ, or μ < γ and λ0 < U_s / (1 - μ/γ).  We sweep λ0 through the
   threshold and also demonstrate the μ >= γ regime where any load is
   stable. *)

open P2p_core

let us = 0.5
let mu = 1.0

let () =
  Report.banner "Example 1: single piece, peer seeds (Fig. 1a)";
  let gamma = 2.0 in
  let threshold = Scenario.example1_threshold ~us ~mu ~gamma in
  Printf.printf "U_s=%g mu=%g gamma=%g  =>  critical lambda0 = U_s/(1-mu/gamma) = %g\n" us mu
    gamma threshold;

  let rows =
    List.map
      (fun lambda0 ->
        let p = Scenario.example1 ~lambda0 ~us ~mu ~gamma in
        let verdict = Stability.classify p in
        let r = Classify.run ~horizon:4000.0 ~seed:101 p in
        [
          Report.fmt_float lambda0;
          Stability.verdict_to_string verdict;
          Classify.verdict_to_string r.verdict;
          Report.fmt_float r.mean_n;
          Report.fmt_float r.growth_rate;
          string_of_int r.final_n;
        ])
      [ 0.4; 0.7; 0.9; 1.2; 1.5; 2.0 ]
  in
  Report.table
    ~header:[ "lambda0"; "theory"; "simulated"; "mean N"; "growth/t"; "final N" ]
    rows;

  Report.subsection "mu >= gamma: stability for free";
  (* When peer seeds dwell at least long enough to upload one piece on
     average (gamma <= mu), the branching of peer seeds is supercritical
     and any arrival rate is stable, even with a tiny fixed seed.  (Close
     to gamma = mu the system is stable but bursty: long build-ups of
     needy peers cleared by avalanches of fresh seeds.) *)
  let rows =
    List.map
      (fun lambda0 ->
        let p = Scenario.example1 ~lambda0 ~us:0.05 ~mu ~gamma:0.5 in
        let r = Classify.run ~horizon:3000.0 ~seed:202 p in
        [
          Report.fmt_float lambda0;
          Stability.verdict_to_string (Stability.classify p);
          Classify.verdict_to_string r.verdict;
          Report.fmt_float r.mean_n;
        ])
      [ 1.0; 5.0; 20.0 ]
  in
  Report.table ~header:[ "lambda0"; "theory"; "simulated"; "mean N" ] rows;
  exit 0
