examples/network_coding_gift.ml: Classify List P2p_core Printf Report Sim_coded Stability
