examples/heterogeneous_swarm.mli:
