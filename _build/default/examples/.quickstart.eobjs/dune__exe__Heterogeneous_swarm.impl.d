examples/heterogeneous_swarm.ml: Array Classify Hetero List P2p_core P2p_pieceset Report Scenario Stability
