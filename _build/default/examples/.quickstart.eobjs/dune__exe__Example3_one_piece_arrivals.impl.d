examples/example3_one_piece_arrivals.ml: Array Classify Fluid List P2p_core Printf Report Scenario Sim_markov Stability State
