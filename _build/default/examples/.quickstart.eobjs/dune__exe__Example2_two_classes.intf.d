examples/example2_two_classes.mli:
