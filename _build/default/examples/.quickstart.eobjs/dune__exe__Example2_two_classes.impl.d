examples/example2_two_classes.ml: Classify List P2p_core Params Printf Report Scenario Sim_markov Stability State
