examples/example1_single_piece.ml: Classify List P2p_core Printf Report Scenario Stability
