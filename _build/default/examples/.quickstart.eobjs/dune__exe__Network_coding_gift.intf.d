examples/network_coding_gift.mli:
