examples/example1_single_piece.mli:
