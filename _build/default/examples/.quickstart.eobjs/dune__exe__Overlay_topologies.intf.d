examples/overlay_topologies.mli:
