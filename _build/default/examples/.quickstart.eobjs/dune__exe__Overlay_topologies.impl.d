examples/overlay_topologies.ml: Classify Float List P2p_core Printf Report Scenario Sim_network Stability
