examples/flash_crowd_drain.ml: Array List P2p_core P2p_pieceset Policy Report Scenario Sim_agent
