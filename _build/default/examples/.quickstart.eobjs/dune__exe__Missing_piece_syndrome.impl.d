examples/missing_piece_syndrome.ml: Array Classify P2p_branching P2p_core P2p_pieceset Params Printf Report Scenario Sim_agent Stability
