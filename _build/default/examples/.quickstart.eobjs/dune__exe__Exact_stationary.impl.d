examples/exact_stationary.ml: Int List P2p_core P2p_pieceset Params Report Scenario Sim_markov Truncated
