examples/flash_crowd_drain.mli:
