examples/exact_stationary.mli:
