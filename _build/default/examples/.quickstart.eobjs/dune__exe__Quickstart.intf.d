examples/quickstart.mli:
