examples/missing_piece_syndrome.mli:
