examples/quickstart.ml: Classify Format P2p_core Params Report Stability
