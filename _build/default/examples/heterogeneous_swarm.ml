(* Heterogeneous peers: fast/slow classes sharing one swarm.

   The paper's conclusion singles out heterogeneous link speeds as the
   natural next scenario.  The missing-piece calculus generalises: a fresh
   peer seed's expected one-club service is mu_c/gamma_c for its own class
   c, so the seed branching factor is the arrival-mix average
   m_bar = sum_c p_c mu_c/gamma_c and the system tolerates any load once
   m_bar >= 1.  A small population of patient ("sticky") peers can
   therefore carry an arbitrarily large crowd of impatient ones. *)

open P2p_core
module PS = P2p_pieceset.Pieceset

let () =
  Report.banner "Heterogeneous swarm: impatient crowd + sticky helpers";
  let mix ~impatient ~sticky =
    Hetero.make ~k:3 ~us:0.1
      ~classes:
        [
          { Hetero.label = "impatient"; mu = 1.0; gamma = infinity;
            arrivals = [ (PS.empty, impatient) ] };
          { Hetero.label = "sticky"; mu = 1.0; gamma = 0.4;
            arrivals = [ (PS.empty, sticky) ] };
        ]
  in
  Report.subsection "sweep the sticky share at a fixed heavy load (total ~ 2)";
  let rows =
    List.map
      (fun share ->
        let h = mix ~impatient:(2.0 *. (1.0 -. share)) ~sticky:(2.0 *. share) in
        let m_bar = Hetero.mean_seed_offspring h ~piece:0 in
        let s = Hetero.simulate_seeded ~seed:41 h ~horizon:2500.0 in
        let r = Classify.of_samples s.samples in
        [
          Report.fmt_float share;
          Report.fmt_float m_bar;
          Stability.verdict_to_string (Hetero.classify_heuristic h);
          Classify.verdict_to_string r.verdict;
          Report.fmt_float s.time_avg_n;
        ])
      [ 0.05; 0.2; 0.35; 0.6; 0.8 ]
  in
  Report.table
    ~header:[ "sticky share"; "m_bar"; "heuristic"; "simulated"; "mean N" ]
    rows;
  print_endline
    "\nm_bar crossing 1 is the heterogeneous one-more-piece corollary: once\n\
     the average departing seed has served one club member, any load is\n\
     stable.  (Just above the crossing the system is stable but mixes\n\
     slowly, like any near-critical branching system.)";

  Report.subsection "who does the work (sticky share 0.6)";
  let h = mix ~impatient:0.8 ~sticky:1.2 in
  let s = Hetero.simulate_seeded ~seed:42 h ~horizon:2500.0 in
  Report.table
    ~header:[ "class"; "mean population"; "mean sojourn" ]
    [
      [ "impatient"; Report.fmt_float s.class_mean_n.(0); Report.fmt_float s.class_mean_sojourn.(0) ];
      [ "sticky"; Report.fmt_float s.class_mean_n.(1); Report.fmt_float s.class_mean_sojourn.(1) ];
    ];

  Report.subsection "single class sanity: heuristic == Theorem 1";
  let p = Scenario.flash_crowd ~k:3 ~lambda:1.2 ~us:0.5 ~mu:1.0 ~gamma:2.0 in
  Report.kv
    [
      ("Theorem 1", Stability.verdict_to_string (Stability.classify p));
      ( "heuristic on the single-class embedding",
        Stability.verdict_to_string (Hetero.classify_heuristic (Hetero.of_params p)) );
    ];
  exit 0
