(* Tests for the discrete-event substrate: the handle heap and the engine. *)

module Heap = P2p_des.Heap
module Engine = P2p_des.Engine

(* ---- heap ---- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> ignore (Heap.insert h ~key:k k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let popped = List.init 5 (fun _ -> fst (Option.get (Heap.pop_min h))) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] popped;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  ignore (Heap.insert h ~key:1.0 "a");
  ignore (Heap.insert h ~key:1.0 "b");
  ignore (Heap.insert h ~key:1.0 "c");
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop_min h))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ] order

let test_heap_remove () =
  let h = Heap.create () in
  let _a = Heap.insert h ~key:1.0 "a" in
  let b = Heap.insert h ~key:2.0 "b" in
  let _c = Heap.insert h ~key:3.0 "c" in
  Alcotest.(check bool) "b present" true (Heap.mem h b);
  Alcotest.(check bool) "removed" true (Heap.remove h b);
  Alcotest.(check bool) "b gone" false (Heap.mem h b);
  Alcotest.(check bool) "double remove fails" false (Heap.remove h b);
  let popped = List.init 2 (fun _ -> snd (Option.get (Heap.pop_min h))) in
  Alcotest.(check (list string)) "rest intact" [ "a"; "c" ] popped

let test_heap_remove_after_pop () =
  let h = Heap.create () in
  let a = Heap.insert h ~key:1.0 "a" in
  ignore (Heap.pop_min h);
  Alcotest.(check bool) "stale handle" false (Heap.remove h a)

let test_heap_min_key () =
  let h = Heap.create () in
  Alcotest.(check (option (float 0.0))) "empty" None (Heap.min_key h);
  ignore (Heap.insert h ~key:7.0 ());
  ignore (Heap.insert h ~key:3.0 ());
  Alcotest.(check (option (float 0.0))) "min" (Some 3.0) (Heap.min_key h)

let test_heap_clear () =
  let h = Heap.create () in
  let handles = List.init 10 (fun i -> Heap.insert h ~key:(float_of_int i) i) in
  Heap.clear h;
  Alcotest.(check int) "size 0" 0 (Heap.size h);
  List.iter (fun hd -> Alcotest.(check bool) "handles dead" false (Heap.mem h hd)) handles

let prop_heap_sorts =
  QCheck2.Test.make ~name:"pop order is sorted under random ops" ~count:200
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> ignore (Heap.insert h ~key:k k)) keys;
      if not (Heap.validate h) then false
      else begin
        let rec drain last =
          match Heap.pop_min h with
          | None -> true
          | Some (k, _) -> k >= last && drain k
        in
        drain neg_infinity
      end)

let prop_heap_random_removals =
  QCheck2.Test.make ~name:"random removals keep invariant" ~count:100
    QCheck2.Gen.(list_size (int_range 1 100) (pair (float_bound_exclusive 100.0) bool))
    (fun ops ->
      let h = Heap.create () in
      let handles =
        List.map (fun (k, remove_later) -> (Heap.insert h ~key:k k, remove_later)) ops
      in
      List.iter (fun (hd, remove_later) -> if remove_later then ignore (Heap.remove h hd)) handles;
      Heap.validate h)

(* ---- engine ---- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:2.0 (fun _ -> log := 2 :: !log));
  ignore (Engine.schedule e ~at:1.0 (fun _ -> log := 1 :: !log));
  ignore (Engine.schedule e ~at:3.0 (fun _ -> log := 3 :: !log));
  Engine.run_until e ~horizon:10.0;
  Alcotest.(check (list int)) "fired in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at horizon" 10.0 (Engine.now e)

let test_engine_spawning () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if Engine.now engine < 5.0 then ignore (Engine.schedule_after engine ~delay:1.0 tick)
  in
  ignore (Engine.schedule e ~at:0.5 tick);
  Engine.run_until e ~horizon:100.0;
  Alcotest.(check int) "chain of events" 6 !count

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:1.0 (fun _ -> fired := true) in
  Alcotest.(check bool) "cancelled" true (Engine.cancel e h);
  Engine.run_until e ~horizon:5.0;
  Alcotest.(check bool) "did not fire" false !fired

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:2.0 (fun _ -> ()));
  Engine.run_until e ~horizon:3.0;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       ignore (Engine.schedule e ~at:1.0 (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_horizon_boundary () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~at:5.0 (fun _ -> fired := 5 :: !fired));
  ignore (Engine.schedule e ~at:5.000001 (fun _ -> fired := 6 :: !fired));
  Engine.run_until e ~horizon:5.0;
  Alcotest.(check (list int)) "inclusive horizon" [ 5 ] !fired;
  Engine.run_until e ~horizon:6.0;
  Alcotest.(check (list int)) "later event next round" [ 6; 5 ] !fired

let test_engine_run_while () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~at:(float_of_int i) (fun _ -> incr count))
  done;
  Engine.run_while e (fun _ -> !count < 4);
  Alcotest.(check int) "stopped by predicate" 4 !count;
  Alcotest.(check int) "events fired tracked" 4 (Engine.events_fired e)

let () =
  Alcotest.run "des"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "remove" `Quick test_heap_remove;
          Alcotest.test_case "remove after pop" `Quick test_heap_remove_after_pop;
          Alcotest.test_case "min key" `Quick test_heap_min_key;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_random_removals;
        ] );
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "spawning" `Quick test_engine_spawning;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past raises" `Quick test_engine_past_raises;
          Alcotest.test_case "horizon boundary" `Quick test_engine_horizon_boundary;
          Alcotest.test_case "run_while" `Quick test_engine_run_while;
        ] );
    ]
