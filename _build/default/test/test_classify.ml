(* The empirical stability classifier, exercised on synthetic traces. *)

open P2p_core

let linear_trace ~n ~slope ~noise ~seed =
  let rng = P2p_prng.Rng.of_seed seed in
  Array.init n (fun i ->
      let t = float_of_int i in
      let v =
        (slope *. t) +. (noise *. P2p_prng.Dist.standard_normal rng) +. 20.0
      in
      (t, Int.max 0 (int_of_float v)))

let test_linear_growth_unstable () =
  let r = Classify.of_samples (linear_trace ~n:400 ~slope:1.0 ~noise:5.0 ~seed:1) in
  Alcotest.(check string) "unstable" "appears-unstable" (Classify.verdict_to_string r.verdict);
  Alcotest.(check bool) "slope near 1" true (Float.abs (r.growth_rate -. 1.0) < 0.1)

let test_flat_noise_stable () =
  let r = Classify.of_samples (linear_trace ~n:400 ~slope:0.0 ~noise:5.0 ~seed:2) in
  Alcotest.(check string) "stable" "appears-stable" (Classify.verdict_to_string r.verdict)

let test_returning_process_stable () =
  (* Oscillating but recurrent: always dips back near zero. *)
  let trace =
    Array.init 400 (fun i ->
        let t = float_of_int i in
        (t, int_of_float (50.0 *. Float.abs (sin (t /. 20.0)))))
  in
  let r = Classify.of_samples trace in
  Alcotest.(check string) "stable" "appears-stable" (Classify.verdict_to_string r.verdict);
  Alcotest.(check bool) "low late minimum" true (r.late_minimum < 10)

let test_too_few_samples () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Classify.of_samples (Array.init 8 (fun i -> (float_of_int i, i))));
       false
     with Invalid_argument _ -> true)

let test_run_end_to_end () =
  let stable = Scenario.flash_crowd ~k:2 ~lambda:0.5 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let r = Classify.run ~horizon:1500.0 ~seed:3 stable in
  Alcotest.(check string) "stable swarm" "appears-stable" (Classify.verdict_to_string r.verdict);
  let transient = Scenario.flash_crowd ~k:2 ~lambda:2.0 ~us:0.2 ~mu:1.0 ~gamma:infinity in
  let r = Classify.run ~horizon:1500.0 ~seed:4 transient in
  Alcotest.(check string) "transient swarm" "appears-unstable"
    (Classify.verdict_to_string r.verdict)

let test_majority_votes () =
  let stable = Scenario.flash_crowd ~k:2 ~lambda:0.4 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  Alcotest.(check string) "majority stable" "appears-stable"
    (Classify.verdict_to_string (Classify.majority ~replications:3 ~horizon:800.0 ~seed:5 stable))

let test_initial_state_respected () =
  let stable = Scenario.flash_crowd ~k:2 ~lambda:0.4 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let club = P2p_pieceset.Pieceset.singleton 1 in
  let r = Classify.run ~horizon:1500.0 ~seed:6 ~initial:[ (club, 200) ] stable in
  (* a stable system recovers even from a 200-peer one-club start *)
  Alcotest.(check string) "recovers" "appears-stable" (Classify.verdict_to_string r.verdict)

let () =
  Alcotest.run "classify"
    [
      ( "classify",
        [
          Alcotest.test_case "linear growth" `Quick test_linear_growth_unstable;
          Alcotest.test_case "flat noise" `Quick test_flat_noise_stable;
          Alcotest.test_case "oscillating recurrent" `Quick test_returning_process_stable;
          Alcotest.test_case "too few samples" `Quick test_too_few_samples;
          Alcotest.test_case "end to end" `Quick test_run_end_to_end;
          Alcotest.test_case "majority" `Quick test_majority_votes;
          Alcotest.test_case "initial state" `Quick test_initial_state_respected;
        ] );
    ]
