(* The Foster-Lyapunov certificate: components of W, exact drift, and
   negative drift on large states inside the stability region. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let closef ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let stable = Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:1.5
let stable_inf = Params.with_gamma (Scenario.flash_crowd ~k:2 ~lambda:0.5 ~us:1.0 ~mu:1.0 ~gamma:2.0) ~gamma:infinity
let dwell = Params.make ~k:2 ~us:0.5 ~mu:1.0 ~gamma:0.5 ~arrivals:[ (PS.empty, 5.0) ]

(* ---- phi ---- *)

let test_phi_shape () =
  let c = Lyapunov.default_coeffs stable in
  let edge = (2.0 *. c.d) +. (1.0 /. c.beta) in
  (* linear part *)
  closef "phi(0)" ((2.0 *. c.d) +. (1.0 /. (2.0 *. c.beta))) (Lyapunov.phi c 0.0);
  closef "phi(d)" ((2.0 *. c.d) +. (1.0 /. (2.0 *. c.beta)) -. c.d) (Lyapunov.phi c c.d);
  (* continuity at the joints *)
  closef ~tol:1e-6 "continuous at 2d" (Lyapunov.phi c ((2.0 *. c.d) +. 1e-9))
    (Lyapunov.phi c (2.0 *. c.d));
  closef ~tol:1e-6 "zero at edge" 0.0 (Lyapunov.phi c edge);
  closef "zero beyond" 0.0 (Lyapunov.phi c (edge +. 5.0))

let test_phi_monotone_nonincreasing () =
  let c = Lyapunov.default_coeffs stable in
  let prev = ref (Lyapunov.phi c 0.0) in
  for i = 1 to 300 do
    let x = float_of_int i *. 0.5 in
    let v = Lyapunov.phi c x in
    Alcotest.(check bool) "nonincreasing" true (v <= !prev +. 1e-12);
    prev := v
  done

let test_phi_slope_bounds () =
  let c = Lyapunov.default_coeffs stable in
  for i = 0 to 300 do
    let x = float_of_int i *. 0.3 in
    let s = Lyapunov.phi_slope_bound c x in
    Alcotest.(check bool) "-1 <= phi' <= 0" true (s >= -1.0 && s <= 0.0)
  done

(* ---- E_C and H_C ---- *)

let crafted_state () =
  State.of_counts
    [ (PS.empty, 1); (PS.singleton 0, 2); (PS.of_list [ 0; 1 ], 4); (PS.singleton 2, 8) ]

let test_e_c () =
  let s = crafted_state () in
  Alcotest.(check int) "E_{0,1}" 7 (Lyapunov.e_c s ~c:(PS.of_list [ 0; 1 ]));
  Alcotest.(check int) "E_F = n" 15 (Lyapunov.e_c s ~c:(PS.full ~k:3))

let test_h_c () =
  (* K=3, rho = 2/3: H_S = sum over helpers (K-|C'|+rho) x / (1-rho). *)
  let p = Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:1.5 in
  let s = crafted_state () in
  let rho = 2.0 /. 3.0 in
  let expected = 8.0 *. (2.0 +. rho) /. (1.0 -. rho) in
  (* only type {3} helps S = {1,2} *)
  closef "H_{1,2}" expected (Lyapunov.h_c p s ~c:(PS.of_list [ 0; 1 ]));
  closef "H_F = 0" 0.0 (Lyapunov.h_c p s ~c:(PS.full ~k:3))

let test_h_prime_c () =
  let p = dwell in
  let s = State.of_counts [ (PS.empty, 3); (PS.singleton 0, 2) ] in
  (* H'_{} counts helpers of the empty type: type {1} with weight K+1-1=2. *)
  closef "H'_{}" 4.0 (Lyapunov.h_prime_c p s ~c:PS.empty)

(* ---- W and regime dispatch ---- *)

let test_w_regime_dispatch () =
  let c = Lyapunov.default_coeffs stable in
  let s = State.of_counts [ (PS.empty, 3) ] in
  Alcotest.(check bool) "w on gamma<=mu raises" true
    (try
       ignore (Lyapunov.w dwell (Lyapunov.default_coeffs dwell) s);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "w_prime on gamma>mu raises" true
    (try
       ignore (Lyapunov.w_prime stable c s);
       false
     with Invalid_argument _ -> true);
  (* auto dispatches without raising *)
  ignore (Lyapunov.auto stable c s);
  ignore (Lyapunov.auto dwell (Lyapunov.default_coeffs dwell) s)

let test_w_grows_quadratically () =
  let c = Lyapunov.default_coeffs stable in
  let w_at n = Lyapunov.w stable c (State.of_counts [ (PS.of_list [ 0; 1 ], n) ]) in
  let r = w_at 20_000 /. w_at 10_000 in
  Alcotest.(check bool) "roughly quadratic" true (r > 3.0 && r < 5.0)

let test_w_nonnegative () =
  let rng = P2p_prng.Rng.of_seed 5 in
  let c = Lyapunov.default_coeffs stable in
  for _ = 1 to 100 do
    let entries =
      List.filter_map
        (fun i ->
          let count = P2p_prng.Rng.int_below rng 20 in
          if count > 0 then Some (PS.of_index i, count) else None)
        (List.init 8 (fun i -> i))
    in
    let s = State.of_counts entries in
    Alcotest.(check bool) "W >= 0" true (Lyapunov.w stable c s >= 0.0)
  done

(* ---- drift ---- *)

let test_drift_of_n_matches_flow () =
  (* Qf for f = n is lambda_total - departure rate. *)
  let p = stable in
  let s = State.of_counts [ (PS.full ~k:3, 4); (PS.empty, 2) ] in
  let drift_n = Lyapunov.drift p ~f:(fun st -> float_of_int (State.n st)) s in
  closef "Qn = lambda - gamma x_F" (3.0 -. (1.5 *. 4.0)) drift_n

let test_drift_constant_zero () =
  let s = State.of_counts [ (PS.empty, 5) ] in
  closef "Q(const) = 0" 0.0 (Lyapunov.drift stable ~f:(fun _ -> 3.0) s)

let test_drift_linear_additive () =
  let s = State.of_counts [ (PS.empty, 3); (PS.singleton 0, 1) ] in
  let f1 st = float_of_int (State.n st) in
  let f2 st = float_of_int (State.count st PS.empty) in
  let sum st = f1 st +. f2 st in
  closef ~tol:1e-9 "linearity"
    (Lyapunov.drift stable ~f:f1 s +. Lyapunov.drift stable ~f:f2 s)
    (Lyapunov.drift stable ~f:sum s)

let assert_negative_drift params sizes =
  let coeffs = Lyapunov.default_coeffs params in
  List.iter
    (fun (pt : Lyapunov.scan_point) ->
      if pt.n >= List.fold_left Int.max 0 sizes then
        Alcotest.(check bool)
          (Printf.sprintf "QW < 0 at %s (got %.3f)" pt.state_desc pt.drift_per_peer)
          true (pt.drift_value < 0.0))
    (Lyapunov.scan_class_one params coeffs ~sizes)

let test_negative_drift_stable_finite_gamma () = assert_negative_drift stable [ 3000 ]
let test_negative_drift_stable_gamma_inf () = assert_negative_drift stable_inf [ 3000 ]

let test_negative_drift_dwell_regime () =
  (* gamma <= mu: the W' variant; drive is the seed (0.5) so n_0 is larger. *)
  assert_negative_drift dwell [ 8000 ]

let test_drift_positive_when_transient () =
  (* In the transient regime the one-club state has growing E_club, and W
     must increase there. *)
  let p = Scenario.flash_crowd ~k:3 ~lambda:1.0 ~us:0.05 ~mu:1.0 ~gamma:infinity in
  let coeffs = Lyapunov.default_coeffs p in
  let club = PS.of_list [ 1; 2 ] in
  let s = State.of_counts [ (club, 3000) ] in
  Alcotest.(check bool) "drift positive at large one-club" true
    (Lyapunov.drift_w p coeffs s > 0.0)

let test_lw_approximation_bound () =
  (* Lemma 8: |QW - LW| <= M_phi (D_total + 1) * Theta(1).  Verify the
     normalised error is bounded by a modest constant over random states
     and that LW tracks QW's sign on large one-type states. *)
  let rng = P2p_prng.Rng.of_seed 17 in
  let coeffs = Lyapunov.default_coeffs stable in
  let mphi = Lyapunov.m_phi coeffs in
  for _ = 1 to 50 do
    let entries =
      List.filter_map
        (fun i ->
          let count = P2p_prng.Rng.int_below rng 30 in
          if count > 0 then Some (PS.of_index i, count) else None)
        (List.init 8 (fun i -> i))
    in
    let s = State.of_counts entries in
    let qw = Lyapunov.drift_w stable coeffs s in
    let lw = Lyapunov.lw stable coeffs s in
    let bound = mphi *. (Lyapunov.d_total stable s +. 1.0) in
    Alcotest.(check bool)
      (Printf.sprintf "|QW-LW| = %.3f within 8x Lemma-8 normaliser %.3f" (Float.abs (qw -. lw))
         bound)
      true
      (Float.abs (qw -. lw) <= 8.0 *. bound)
  done;
  (* on a large one-club the approximation is tight in relative terms *)
  let club = State.of_counts [ (PS.of_list [ 0; 1 ], 2000) ] in
  let qw = Lyapunov.drift_w stable coeffs club in
  let lw = Lyapunov.lw stable coeffs club in
  Alcotest.(check bool)
    (Printf.sprintf "same sign at scale: QW=%.1f LW=%.1f" qw lw)
    true
    (qw < 0.0 && lw < 0.0)

let test_class_two_drift () =
  let coeffs = Lyapunov.default_coeffs stable in
  let rng = P2p_prng.Rng.of_seed 9 in
  let points = Lyapunov.scan_class_two stable coeffs ~rng ~size:4000 ~samples:10 in
  (* Class II states with two genuinely mixed blocks have strongly negative
     drift (−Θ(n²) when the blocks can help each other). *)
  List.iter
    (fun (pt : Lyapunov.scan_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "class II drift < 0 at %s" pt.state_desc)
        true
        (pt.drift_value < 0.0 || pt.n < 100))
    points

let () =
  Alcotest.run "lyapunov"
    [
      ( "components",
        [
          Alcotest.test_case "phi shape" `Quick test_phi_shape;
          Alcotest.test_case "phi monotone" `Quick test_phi_monotone_nonincreasing;
          Alcotest.test_case "phi slope" `Quick test_phi_slope_bounds;
          Alcotest.test_case "E_C" `Quick test_e_c;
          Alcotest.test_case "H_C" `Quick test_h_c;
          Alcotest.test_case "H'_C" `Quick test_h_prime_c;
          Alcotest.test_case "regime dispatch" `Quick test_w_regime_dispatch;
          Alcotest.test_case "quadratic growth" `Quick test_w_grows_quadratically;
          Alcotest.test_case "nonnegative" `Quick test_w_nonnegative;
        ] );
      ( "drift",
        [
          Alcotest.test_case "Qn" `Quick test_drift_of_n_matches_flow;
          Alcotest.test_case "Q(const)" `Quick test_drift_constant_zero;
          Alcotest.test_case "linearity" `Quick test_drift_linear_additive;
          Alcotest.test_case "negative drift (gamma finite)" `Quick test_negative_drift_stable_finite_gamma;
          Alcotest.test_case "negative drift (gamma inf)" `Quick test_negative_drift_stable_gamma_inf;
          Alcotest.test_case "negative drift (gamma<=mu)" `Quick test_negative_drift_dwell_regime;
          Alcotest.test_case "positive drift when transient" `Quick test_drift_positive_when_transient;
          Alcotest.test_case "class II drift" `Quick test_class_two_drift;
          Alcotest.test_case "LW approximation (Lemma 8)" `Quick test_lw_approximation_bound;
        ] );
    ]
