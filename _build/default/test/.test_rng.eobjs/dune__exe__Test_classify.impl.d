test/test_classify.ml: Alcotest Array Classify Float Int P2p_core P2p_pieceset P2p_prng Scenario
