test/test_reachability.ml: Alcotest List P2p_core P2p_pieceset Params Policy Reachability Scenario
