test/test_hetero.ml: Alcotest Array Classify Float Hetero List P2p_core P2p_pieceset P2p_stats Params Printf Scenario Sim_agent Stability
