test/test_report.ml: Alcotest Array Filename List P2p_core Report String Sys Unix
