test/test_metrics.ml: Alcotest Float Metrics P2p_core P2p_pieceset Scenario Sim_agent State
