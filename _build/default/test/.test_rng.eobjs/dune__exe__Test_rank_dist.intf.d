test/test_rank_dist.mli:
