test/test_fluid.ml: Alcotest Array Float Fluid List Lyapunov P2p_core P2p_pieceset P2p_stats Printf Scenario State
