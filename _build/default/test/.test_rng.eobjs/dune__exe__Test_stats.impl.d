test/test_stats.ml: Alcotest Array Float List P2p_prng P2p_stats Printf
