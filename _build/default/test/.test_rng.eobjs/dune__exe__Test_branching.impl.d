test/test_branching.ml: Alcotest Array Float List P2p_branching P2p_core P2p_pieceset P2p_prng P2p_stats Printf
