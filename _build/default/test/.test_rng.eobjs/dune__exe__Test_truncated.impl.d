test/test_truncated.ml: Alcotest Array Float List P2p_core P2p_pieceset Params Printf Scenario Sim_markov Truncated
