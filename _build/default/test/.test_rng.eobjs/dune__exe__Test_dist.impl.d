test/test_dist.ml: Alcotest Array Float Hashtbl P2p_prng P2p_stats Printf
