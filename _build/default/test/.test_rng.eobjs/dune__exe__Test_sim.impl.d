test/test_sim.ml: Alcotest Array Classify Float Int List P2p_core P2p_pieceset P2p_prng P2p_stats Params Policy Printf Rate Scenario Sim_agent Sim_markov Stability State
