test/test_rank_dist.ml: Alcotest Array Float List P2p_coding P2p_core P2p_prng Printf Stability
