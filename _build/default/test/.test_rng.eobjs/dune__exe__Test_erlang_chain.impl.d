test/test_erlang_chain.ml: Alcotest Erlang_chain Float List P2p_core P2p_pieceset Params Printf Scenario Sim_agent Truncated
