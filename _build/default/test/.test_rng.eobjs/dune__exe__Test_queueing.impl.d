test/test_queueing.ml: Alcotest Float List P2p_prng P2p_queueing P2p_stats Printf
