test/test_reachability.mli:
