test/test_stability.mli:
