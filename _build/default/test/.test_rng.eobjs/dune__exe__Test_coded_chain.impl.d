test/test_coded_chain.ml: Alcotest Array Classify Coded_chain Float List P2p_coding P2p_core P2p_prng Printf Sim_coded Stability
