test/test_pieceset.mli:
