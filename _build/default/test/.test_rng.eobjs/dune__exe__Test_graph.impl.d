test/test_graph.ml: Alcotest Array Float Hashtbl List P2p_graph P2p_prng QCheck2 QCheck_alcotest
