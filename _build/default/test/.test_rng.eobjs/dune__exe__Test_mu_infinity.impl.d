test/test_mu_infinity.ml: Alcotest Float Int List P2p_core P2p_prng P2p_stats Printf
