test/test_watched.mli:
