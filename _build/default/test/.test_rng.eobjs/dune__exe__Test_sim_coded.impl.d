test/test_sim_coded.ml: Alcotest Array Classify Int P2p_core Printf Sim_coded Stability
