test/test_rng.ml: Alcotest Array Float Format P2p_prng
