test/test_coding.ml: Alcotest Array Float Int List P2p_coding P2p_gf P2p_prng Printf QCheck2 QCheck_alcotest
