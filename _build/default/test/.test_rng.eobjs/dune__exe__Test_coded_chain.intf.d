test/test_coded_chain.mli:
