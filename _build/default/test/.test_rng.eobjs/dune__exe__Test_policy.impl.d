test/test_policy.ml: Alcotest Array Float List P2p_core P2p_pieceset P2p_prng Policy Printf State
