test/test_pieceset.ml: Alcotest Float Hashtbl List Option P2p_pieceset P2p_prng QCheck2 QCheck_alcotest
