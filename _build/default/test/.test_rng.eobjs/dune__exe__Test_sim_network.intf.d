test/test_sim_network.mli:
