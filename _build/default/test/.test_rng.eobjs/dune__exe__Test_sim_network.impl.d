test/test_sim_network.ml: Alcotest Array Classify Float List P2p_core P2p_pieceset P2p_stats Printf Scenario Sim_agent Sim_network State
