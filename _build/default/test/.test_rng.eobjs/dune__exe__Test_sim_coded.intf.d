test/test_sim_coded.mli:
