test/test_lattice.ml: Alcotest Array Float List P2p_coding P2p_prng Printf
