test/test_des.ml: Alcotest List Option P2p_des QCheck2 QCheck_alcotest
