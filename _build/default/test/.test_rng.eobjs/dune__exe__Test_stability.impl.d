test/test_stability.ml: Alcotest Float List P2p_core P2p_pieceset P2p_prng Params Printf Scenario Stability
