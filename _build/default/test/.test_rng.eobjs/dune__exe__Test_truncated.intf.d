test/test_truncated.mli:
