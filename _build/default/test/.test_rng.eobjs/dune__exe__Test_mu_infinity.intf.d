test/test_mu_infinity.mli:
