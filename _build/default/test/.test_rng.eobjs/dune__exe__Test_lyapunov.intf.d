test/test_lyapunov.mli:
