test/test_gf.ml: Alcotest Array List P2p_gf P2p_prng Printf QCheck2 QCheck_alcotest
