test/test_lyapunov.ml: Alcotest Float Int List Lyapunov P2p_core P2p_pieceset P2p_prng Params Printf Scenario State
