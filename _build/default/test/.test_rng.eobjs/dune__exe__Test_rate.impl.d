test/test_rate.ml: Alcotest Float List P2p_core P2p_pieceset P2p_prng Params Policy Printf Rate State
