test/test_params.ml: Alcotest Array P2p_core P2p_pieceset Params
