test/test_balance.ml: Alcotest Array Float Fun P2p_core P2p_prng Printf
