test/test_watched.ml: Alcotest Array List P2p_core P2p_prng Printf Watched
