test/test_erlang_chain.mli:
