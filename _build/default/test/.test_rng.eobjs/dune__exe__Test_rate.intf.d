test/test_rate.mli:
