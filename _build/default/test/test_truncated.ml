(* Exact stationary analysis on truncated state spaces. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let closef ?(tol = 1e-6) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_mm1_closed_form () =
  (* K=1 with gamma=inf degenerates to M/M/1(lambda, U_s). *)
  let lambda = 0.4 and us = 1.0 in
  let p = Params.make ~k:1 ~us ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, lambda) ] in
  let chain = Truncated.build p ~n_max:100 in
  let pi = Truncated.stationary chain in
  let rho = lambda /. us in
  closef "E[N]" (rho /. (1.0 -. rho)) (Truncated.mean_population chain pi);
  closef "P(0)" (1.0 -. rho) (Truncated.probability_empty chain pi);
  (* geometric tail: P(N >= m) = rho^m *)
  closef "P(N>=3)" (rho ** 3.0) (Truncated.population_tail chain pi ~at_least:3)

let test_distribution_properties () =
  let p = Params.make ~k:2 ~us:0.6 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.3) ] in
  let chain = Truncated.build p ~n_max:15 in
  let pi = Truncated.stationary chain in
  let total = Array.fold_left ( +. ) 0.0 pi in
  closef ~tol:1e-9 "sums to 1" 1.0 total;
  Array.iter (fun x -> Alcotest.(check bool) "nonnegative" true (x >= 0.0)) pi;
  Alcotest.(check bool) "cap mass tiny" true (Truncated.truncation_mass_at_cap chain pi < 1e-4)

let test_seed_littles_law () =
  (* Stationary mean number of peer seeds = lambda_total / gamma exactly
     (every peer passes through the seed stage once, dwelling 1/gamma). *)
  let lambda = 0.5 and gamma = 2.0 in
  let p = Params.make ~k:2 ~us:0.8 ~mu:1.0 ~gamma ~arrivals:[ (PS.empty, lambda) ] in
  let chain = Truncated.build p ~n_max:24 in
  let pi = Truncated.stationary chain in
  closef ~tol:1e-4 "Little's law for seeds" (lambda /. gamma)
    (Truncated.mean_type_count chain pi (PS.full ~k:2))

let test_exact_matches_simulation () =
  let p = Params.make ~k:2 ~us:1.0 ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, 0.4) ] in
  let chain = Truncated.build p ~n_max:25 in
  let pi = Truncated.stationary chain in
  let exact = Truncated.mean_population chain pi in
  let stats, _ = Sim_markov.run_seeded ~seed:3 (Sim_markov.default_config p) ~horizon:40000.0 in
  closef ~tol:0.05 "exact vs simulated E[N]" exact stats.time_avg_n

let test_finite_gamma_vs_simulation () =
  (* Same agreement check in the gamma < infinity regime. *)
  let p = Params.make ~k:1 ~us:0.7 ~mu:1.0 ~gamma:3.0 ~arrivals:[ (PS.empty, 0.4) ] in
  let chain = Truncated.build p ~n_max:60 in
  let pi = Truncated.stationary chain in
  let stats, _ = Sim_markov.run_seeded ~seed:9 (Sim_markov.default_config p) ~horizon:40000.0 in
  closef ~tol:0.05 "E[N] vs simulation" (Truncated.mean_population chain pi) stats.time_avg_n

let test_monotone_in_lambda () =
  let en lambda =
    let p = Scenario.example1 ~lambda0:lambda ~us:0.5 ~mu:1.0 ~gamma:2.0 in
    let chain = Truncated.build p ~n_max:80 in
    Truncated.mean_population chain (Truncated.stationary chain)
  in
  let a = en 0.3 and b = en 0.5 and c = en 0.7 in
  Alcotest.(check bool) "E[N] increasing in load" true (a < b && b < c)

let test_mean_seeds_zero_when_immediate () =
  let p = Params.make ~k:2 ~us:1.0 ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, 0.4) ] in
  let chain = Truncated.build p ~n_max:15 in
  let pi = Truncated.stationary chain in
  closef "no peer seeds at gamma=inf" 0.0 (Truncated.mean_type_count chain pi (PS.full ~k:2))

let test_build_guards () =
  let p = Params.make ~k:2 ~us:1.0 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.4) ] in
  Alcotest.(check bool) "n_max 0 rejected" true
    (try
       ignore (Truncated.build p ~n_max:0);
       false
     with Invalid_argument _ -> true);
  let p5 = Params.make ~k:5 ~us:1.0 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.4) ] in
  Alcotest.(check bool) "oversized space rejected" true
    (try
       ignore (Truncated.build p5 ~n_max:50);
       false
     with Invalid_argument _ -> true)

let test_hitting_time_mm1 () =
  (* M/M/1: expected time to drain n customers = n/(mu - lambda). *)
  let lambda = 0.4 and us = 1.0 in
  let p = Params.make ~k:1 ~us ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, lambda) ] in
  let t = Truncated.build p ~n_max:150 in
  List.iter
    (fun n ->
      closef ~tol:1e-4
        (Printf.sprintf "drain from %d" n)
        (float_of_int n /. (us -. lambda))
        (Truncated.mean_hitting_time_to_empty t ~from_:[ (PS.empty, n) ]))
    [ 1; 5; 20 ]

let test_hitting_time_monotone () =
  let p = Params.make ~k:2 ~us:0.8 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.4) ] in
  let t = Truncated.build p ~n_max:20 in
  let h n = Truncated.mean_hitting_time_to_empty t ~from_:[ (PS.empty, n) ] in
  Alcotest.(check bool) "monotone in start size" true (h 1 < h 4 && h 4 < h 10);
  Alcotest.(check bool) "empty start is zero" true (Truncated.mean_hitting_time_to_empty t ~from_:[] = 0.0)

let test_return_time_kac () =
  (* Kac: mean time between entries to empty = 1 / (pi_empty * lambda). *)
  let lambda = 0.4 in
  let p = Params.make ~k:1 ~us:1.0 ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, lambda) ] in
  let t = Truncated.build p ~n_max:150 in
  let pi = Truncated.stationary t in
  closef ~tol:1e-5 "Kac formula" (1.0 /. ((1.0 -. lambda) *. lambda))
    (Truncated.return_time_to_empty t pi)

let test_return_decomposes_into_sojourn_plus_hit () =
  (* cycle = Exp(lambda) sojourn in empty + mean hit time from the
     post-arrival state. *)
  let lambda = 0.5 in
  let p = Params.make ~k:2 ~us:1.0 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, lambda) ] in
  let t = Truncated.build p ~n_max:24 in
  let pi = Truncated.stationary t in
  let cycle = Truncated.return_time_to_empty t pi in
  let hit = Truncated.mean_hitting_time_to_empty t ~from_:[ (PS.empty, 1) ] in
  closef ~tol:1e-3 "cycle = 1/lambda + hit" ((1.0 /. lambda) +. hit) cycle

let test_state_count_formula () =
  let p = Params.make ~k:1 ~us:1.0 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.4) ] in
  let chain = Truncated.build p ~n_max:10 in
  (* 2 types, n <= 10: C(12,2) = 66 states *)
  Alcotest.(check int) "state count" 66 (Truncated.state_count chain)

let () =
  Alcotest.run "truncated"
    [
      ( "truncated",
        [
          Alcotest.test_case "M/M/1 closed form" `Quick test_mm1_closed_form;
          Alcotest.test_case "distribution properties" `Quick test_distribution_properties;
          Alcotest.test_case "seeds Little's law" `Quick test_seed_littles_law;
          Alcotest.test_case "matches simulation" `Slow test_exact_matches_simulation;
          Alcotest.test_case "finite gamma vs simulation" `Slow test_finite_gamma_vs_simulation;
          Alcotest.test_case "monotone in load" `Quick test_monotone_in_lambda;
          Alcotest.test_case "no seeds at gamma=inf" `Quick test_mean_seeds_zero_when_immediate;
          Alcotest.test_case "build guards" `Quick test_build_guards;
          Alcotest.test_case "hitting time M/M/1" `Quick test_hitting_time_mm1;
          Alcotest.test_case "hitting time monotone" `Quick test_hitting_time_monotone;
          Alcotest.test_case "return time (Kac)" `Quick test_return_time_kac;
          Alcotest.test_case "cycle decomposition" `Quick test_return_decomposes_into_sojourn_plus_hit;
          Alcotest.test_case "state count" `Quick test_state_count_formula;
        ] );
    ]
