(* Trajectory metrics and the quasi-stability onset probe. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let test_piece_rarity_order () =
  let s = State.of_counts [ (PS.of_list [ 0; 1 ], 3); (PS.singleton 0, 2) ] in
  (* copies: piece 1 -> 5, piece 2 -> 3, piece 3 -> 0 *)
  Alcotest.(check (list (pair int int))) "rarest first" [ (2, 0); (1, 3); (0, 5) ]
    (Metrics.piece_rarity s ~k:3);
  Alcotest.(check int) "rarest piece" 2 (Metrics.rarest_piece s ~k:3)

let test_gini_balanced () =
  let s = State.of_counts [ (PS.of_list [ 0; 1; 2 ], 5) ] in
  Alcotest.(check (float 1e-9)) "perfectly balanced" 0.0 (Metrics.gini_of_piece_counts s ~k:3)

let test_gini_concentrated () =
  (* all copies of one piece *)
  let s = State.of_counts [ (PS.singleton 0, 9) ] in
  let g = Metrics.gini_of_piece_counts s ~k:3 in
  Alcotest.(check bool) "high inequality" true (g > 0.6);
  let empty = State.create () in
  Alcotest.(check bool) "nan when no copies" true
    (Float.is_nan (Metrics.gini_of_piece_counts empty ~k:3))

let test_gini_one_club () =
  (* one-club: every piece except one plentiful -> moderate Gini that
     grows as the club grows *)
  let club n = State.of_counts [ (PS.of_list [ 1; 2 ], n); (PS.full ~k:3, 1) ] in
  let g1 = Metrics.gini_of_piece_counts (club 10) ~k:3 in
  let g2 = Metrics.gini_of_piece_counts (club 100) ~k:3 in
  Alcotest.(check bool) "club sharpens inequality" true (g2 > g1)

let test_time_above_and_peak () =
  let samples = [| (0.0, 1); (1.0, 5); (2.0, 9); (3.0, 4) |] in
  Alcotest.(check (float 1e-9)) "time above 5" 0.5 (Metrics.time_above samples ~threshold:5);
  let t, v = Metrics.peak samples in
  Alcotest.(check (float 1e-9)) "peak time" 2.0 t;
  Alcotest.(check int) "peak value" 9 v

let test_drain_time () =
  let samples = [| (0.0, 2); (1.0, 100); (2.0, 80); (3.0, 45); (4.0, 30) |] in
  (* reaches 100 at t=1; first below 50 at t=3 -> drain 2.0 *)
  Alcotest.(check (option (float 1e-9))) "drain" (Some 2.0)
    (Metrics.drain_time samples ~from_:100);
  Alcotest.(check (option (float 1e-9))) "never reaches" None
    (Metrics.drain_time samples ~from_:500)

let test_club_onset_detected () =
  (* Transient flash crowd: the one-club must form from an empty start.
     With symmetric empty-handed arrivals the syndrome strikes a random
     piece, so first discover which piece went rare, then re-run with the
     group tracker pointed at it. *)
  let p = Scenario.flash_crowd ~k:3 ~lambda:1.5 ~us:0.1 ~mu:1.0 ~gamma:infinity in
  let _, final = Sim_agent.run_seeded ~seed:5 (Sim_agent.default_config p) ~horizon:800.0 in
  let rare = Metrics.rarest_piece final ~k:3 in
  let stats, _ =
    Sim_agent.run_seeded ~seed:5
      { (Sim_agent.default_config p) with rare_piece = rare }
      ~horizon:800.0
  in
  match Metrics.club_onset stats ~fraction:0.6 ~min_population:60 with
  | Some t ->
      Alcotest.(check bool) "onset strictly positive" true (t > 0.0);
      Alcotest.(check bool) "onset within horizon" true (t <= 800.0)
  | None -> Alcotest.fail "one-club never formed in a transient system"

let test_club_onset_absent_when_stable () =
  let p = Scenario.flash_crowd ~k:3 ~lambda:0.5 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let stats, _ =
    Sim_agent.run_seeded ~seed:6 (Sim_agent.default_config p) ~horizon:800.0
  in
  Alcotest.(check bool) "no large club in a stable swarm" true
    (Metrics.club_onset stats ~fraction:0.8 ~min_population:100 = None)

let test_club_onset_bad_fraction () =
  let p = Scenario.flash_crowd ~k:2 ~lambda:0.5 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let stats, _ = Sim_agent.run_seeded ~seed:7 (Sim_agent.default_config p) ~horizon:50.0 in
  Alcotest.(check bool) "fraction validated" true
    (try
       ignore (Metrics.club_onset stats ~fraction:0.0 ~min_population:1);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "piece rarity" `Quick test_piece_rarity_order;
          Alcotest.test_case "gini balanced" `Quick test_gini_balanced;
          Alcotest.test_case "gini concentrated" `Quick test_gini_concentrated;
          Alcotest.test_case "gini one-club" `Quick test_gini_one_club;
          Alcotest.test_case "time above / peak" `Quick test_time_above_and_peak;
          Alcotest.test_case "drain time" `Quick test_drain_time;
          Alcotest.test_case "onset detected" `Quick test_club_onset_detected;
          Alcotest.test_case "onset absent when stable" `Quick test_club_onset_absent_when_stable;
          Alcotest.test_case "onset validation" `Quick test_club_onset_bad_fraction;
        ] );
    ]
