(* Reachable type sets under restricted piece-selection policies —
   Section VIII-A's minimal closed set discussion. *)

open P2p_core
module PS = P2p_pieceset.Pieceset

let flash gamma = Scenario.flash_crowd ~k:3 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma

let test_sequential_prefix_only () =
  (* The paper: under lowest-numbered-useful selection, every reachable
     peer holds a consecutive prefix {1..j}. *)
  let r = Reachability.explore ~policy:Policy.sequential (flash infinity) ~n_max:5 in
  Alcotest.(check bool) "not truncated" false r.truncated;
  Alcotest.(check bool) "prefix types only" true
    (Reachability.prefix_types_only ~k:3 r.types_seen);
  (* with gamma = inf the complete prefix departs instantly, so exactly
     K types occur: {}, {1}, {1,2} *)
  Alcotest.(check int) "K standing types" 3 (List.length r.types_seen)

let test_sequential_prefix_only_finite_gamma () =
  let r = Reachability.explore ~policy:Policy.sequential (flash 2.0) ~n_max:5 in
  Alcotest.(check bool) "prefix types only" true
    (Reachability.prefix_types_only ~k:3 r.types_seen);
  Alcotest.(check int) "K+1 types incl. seeds" 4 (List.length r.types_seen)

let test_random_reaches_everything () =
  let r = Reachability.explore ~policy:Policy.random_useful (flash 2.0) ~n_max:5 in
  Alcotest.(check bool) "all 2^K types" true
    (Reachability.all_types_reachable ~k:3 r.types_seen);
  Alcotest.(check bool) "not prefix-restricted" false
    (Reachability.prefix_types_only ~k:3 r.types_seen)

let test_rarest_reaches_everything () =
  let r = Reachability.explore ~policy:Policy.rarest_first (flash 2.0) ~n_max:4 in
  Alcotest.(check bool) "all 2^K types under rarest-first" true
    (Reachability.all_types_reachable ~k:3 r.types_seen)

let test_gifted_types_extend_reachability () =
  (* sequential selection but peers arrive holding piece 3: non-prefix
     collections appear. *)
  let p =
    Params.make ~k:3 ~us:1.0 ~mu:1.0 ~gamma:infinity
      ~arrivals:[ (PS.empty, 1.0); (PS.singleton 2, 0.5) ]
  in
  let r = Reachability.explore ~policy:Policy.sequential p ~n_max:4 in
  Alcotest.(check bool) "prefix property broken by gifts" false
    (Reachability.prefix_types_only ~k:3 r.types_seen);
  Alcotest.(check bool) "type {3} occurs" true
    (List.exists (PS.equal (PS.singleton 2)) r.types_seen)

let test_truncation_flag () =
  let r =
    Reachability.explore ~policy:Policy.random_useful ~max_states:50 (flash 2.0) ~n_max:6
  in
  Alcotest.(check bool) "truncated when capped" true r.truncated

let test_monotone_in_cap () =
  let count n_max =
    (Reachability.explore ~policy:Policy.random_useful (flash 2.0) ~n_max).states_explored
  in
  Alcotest.(check bool) "state count grows with cap" true (count 2 < count 3 && count 3 < count 4)

let test_helpers () =
  Alcotest.(check bool) "prefixes accepted" true
    (Reachability.prefix_types_only ~k:4
       [ PS.empty; PS.of_list [ 0 ]; PS.of_list [ 0; 1; 2 ] ]);
  Alcotest.(check bool) "gap rejected" false
    (Reachability.prefix_types_only ~k:4 [ PS.of_list [ 0; 2 ] ]);
  Alcotest.(check bool) "all-types check" true
    (Reachability.all_types_reachable ~k:2 (List.map PS.of_index [ 0; 1; 2; 3 ]))

let () =
  Alcotest.run "reachability"
    [
      ( "reachability",
        [
          Alcotest.test_case "sequential = prefixes (paper)" `Quick test_sequential_prefix_only;
          Alcotest.test_case "sequential, finite gamma" `Quick test_sequential_prefix_only_finite_gamma;
          Alcotest.test_case "random reaches all" `Quick test_random_reaches_everything;
          Alcotest.test_case "rarest reaches all" `Quick test_rarest_reaches_everything;
          Alcotest.test_case "gifts break prefixes" `Quick test_gifted_types_extend_reachability;
          Alcotest.test_case "truncation flag" `Quick test_truncation_flag;
          Alcotest.test_case "monotone in cap" `Quick test_monotone_in_cap;
          Alcotest.test_case "helpers" `Quick test_helpers;
        ] );
    ]
