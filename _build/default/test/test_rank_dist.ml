(* Rank distribution of random matrices over GF(q) and the generalised
   Theorem 15 profile classification built on it. *)

module RD = P2p_coding.Rank_dist
open P2p_core

let closef ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_pmf_sums_to_one () =
  List.iter
    (fun (q, rows, cols) ->
      let pmf = RD.rank_pmf ~q ~rows ~cols in
      let total = Array.fold_left ( +. ) 0.0 pmf in
      closef (Printf.sprintf "q=%d %dx%d" q rows cols) 1.0 total)
    [ (2, 3, 3); (4, 2, 5); (16, 4, 4); (64, 3, 200); (3, 0, 5); (5, 6, 2) ]

let test_single_vector () =
  (* 1 x K: rank 0 with prob q^-K, else rank 1. *)
  let pmf = RD.rank_pmf ~q:4 ~rows:1 ~cols:3 in
  closef "P(rank 0)" (1.0 /. 64.0) pmf.(0);
  closef "P(rank 1)" (1.0 -. (1.0 /. 64.0)) pmf.(1)

let test_square_invertible () =
  (* n x n full rank prob = prod (1 - q^{-i}), i=1..n. *)
  let q = 3 and n = 4 in
  let expected = ref 1.0 in
  for i = 1 to n do
    expected := !expected *. (1.0 -. (float_of_int q ** float_of_int (-i)))
  done;
  let pmf = RD.rank_pmf ~q ~rows:n ~cols:n in
  closef "P(full rank)" !expected pmf.(n)

let test_zero_rows () =
  let pmf = RD.rank_pmf ~q:7 ~rows:0 ~cols:5 in
  Alcotest.(check int) "only rank 0" 1 (Array.length pmf);
  closef "certain" 1.0 pmf.(0)

let test_pmf_vs_monte_carlo () =
  let rng = P2p_prng.Rng.of_seed 1 in
  let q = 3 and rows = 3 and cols = 4 in
  let pmf = RD.rank_pmf ~q ~rows ~cols in
  let counts = Array.make (Array.length pmf) 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let r = RD.sample_rank rng ~q ~rows ~cols in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iteri
    (fun r p ->
      let freq = float_of_int counts.(r) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d: %.4f vs %.4f" r p freq)
        true
        (Float.abs (p -. freq) < 0.01))
    pmf

let test_mean_rank_monotone () =
  let m j = RD.mean_rank ~q:4 ~rows:j ~cols:6 in
  Alcotest.(check bool) "increasing in rows" true (m 1 < m 2 && m 2 < m 4 && m 4 < m 8);
  Alcotest.(check bool) "bounded by cols" true (m 20 <= 6.0)

let test_outside_hyperplane_mass () =
  (* total outside mass = 1 - q^-j (at least one vector outside V-). *)
  let q = 5 and k = 4 and coded = 2 in
  let decomposition = RD.outside_hyperplane_decomposition ~q ~k ~coded in
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 decomposition in
  closef "P(V not in V-)" (1.0 -. (float_of_int q ** -2.0)) total

let test_outside_hyperplane_k1 () =
  (* K = 1: the hyperplane is {0}; outside mass = P(some nonzero vector). *)
  let decomposition = RD.outside_hyperplane_decomposition ~q:4 ~k:1 ~coded:1 in
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 decomposition in
  closef "outside {0}" (3.0 /. 4.0) total

let test_prob_spans () =
  closef "j < k cannot span" 0.0 (RD.prob_spans ~q:4 ~k:3 ~coded:2);
  (* 3x3 over GF(4): P(invertible) = (1-1/4)(1-1/16)(1-1/64) ~ 0.6918 *)
  let p = RD.prob_spans ~q:4 ~k:3 ~coded:3 in
  closef ~tol:1e-9 "j = k spanning probability" 0.692138671875 p;
  Alcotest.(check bool) "more vectors raise it" true (RD.prob_spans ~q:4 ~k:3 ~coded:6 > p)

(* ---- profile classification ---- *)

let gift f = { Stability.Coded.q = 16; k = 8; us = 0.0; mu = 1.0; gamma = infinity;
               lambda0 = 1.0 -. f; lambda1 = f }

let test_profile_agrees_with_gift () =
  List.iter
    (fun f ->
      let g = gift f in
      Alcotest.(check string) (Printf.sprintf "f=%g" f)
        (Stability.verdict_to_string (Stability.Coded.classify g))
        (Stability.verdict_to_string
           (Stability.Coded.classify_profile (Stability.Coded.profile_of_gift g))))
    [ 0.01; 0.05; 0.1; 0.1337; 0.137; 0.15; 0.3; 0.8 ]

let test_profile_agrees_with_gift_finite_gamma () =
  List.iter
    (fun gamma ->
      let g = { (gift 0.1) with gamma; us = 0.2 } in
      Alcotest.(check string) (Printf.sprintf "gamma=%g" gamma)
        (Stability.verdict_to_string (Stability.Coded.classify g))
        (Stability.verdict_to_string
           (Stability.Coded.classify_profile (Stability.Coded.profile_of_gift g))))
    [ 0.3; 0.95; 1.5; 4.0 ]

let test_bigger_gifts_weaker_per_arrival () =
  (* Counter-intuitive but exactly Theorem 15's weighting (K - dim V +
     mu/gamma): a peer arriving with MORE coded pieces needs fewer
     downloads, departs sooner, and therefore uploads the rare direction
     fewer times.  At the same arrival fraction, j = 3 gifts stabilise
     LESS than j = 1 gifts, so the critical fraction is larger. *)
  let critical j =
    let rhs f =
      let profile =
        { Stability.Coded.pq = 16; pk = 8; pus = 0.0; pmu = 1.0; pgamma = infinity;
          parrivals = [ (0, 1.0 -. f); (j, f) ] }
      in
      snd (Stability.Coded.profile_thresholds profile)
    in
    let rec bisect lo hi iters =
      if iters = 0 then (lo +. hi) /. 2.0
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if rhs mid > 1.0 then bisect lo mid (iters - 1) else bisect mid hi (iters - 1)
      end
    in
    bisect 0.0 1.0 40
  in
  let c1 = critical 1 and c3 = critical 3 in
  Alcotest.(check bool)
    (Printf.sprintf "c3=%.4f > c1=%.4f" c3 c1)
    true (c3 > c1)

let test_profile_validation () =
  let bad =
    { Stability.Coded.pq = 16; pk = 8; pus = 0.0; pmu = 1.0; pgamma = infinity;
      parrivals = [] }
  in
  Alcotest.(check bool) "empty arrivals rejected" true
    (try
       ignore (Stability.Coded.classify_profile bad);
       false
     with Invalid_argument _ -> true)

let test_profile_no_gift_no_seed_transient () =
  let p =
    { Stability.Coded.pq = 16; pk = 8; pus = 0.0; pmu = 1.0; pgamma = 0.5;
      parrivals = [ (0, 1.0) ] }
  in
  Alcotest.(check string) "nothing enters" "transient"
    (Stability.verdict_to_string (Stability.Coded.classify_profile p))

let () =
  Alcotest.run "rank_dist"
    [
      ( "rank law",
        [
          Alcotest.test_case "pmf sums to 1" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "single vector" `Quick test_single_vector;
          Alcotest.test_case "square invertible" `Quick test_square_invertible;
          Alcotest.test_case "zero rows" `Quick test_zero_rows;
          Alcotest.test_case "vs Monte Carlo" `Quick test_pmf_vs_monte_carlo;
          Alcotest.test_case "mean rank monotone" `Quick test_mean_rank_monotone;
          Alcotest.test_case "outside hyperplane" `Quick test_outside_hyperplane_mass;
          Alcotest.test_case "k=1 hyperplane" `Quick test_outside_hyperplane_k1;
          Alcotest.test_case "prob spans" `Quick test_prob_spans;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "agrees with gift" `Quick test_profile_agrees_with_gift;
          Alcotest.test_case "agrees, finite gamma" `Quick test_profile_agrees_with_gift_finite_gamma;
          Alcotest.test_case "bigger gifts weaker" `Quick test_bigger_gifts_weaker_per_arrival;
          Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "no inflow transient" `Quick test_profile_no_gift_no_seed_transient;
        ] );
    ]
