(* The generic stationary-distribution solver, against closed forms. *)

module Balance = P2p_core.Balance

let closef ?(tol = 1e-8) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_two_state_chain () =
  (* 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a)/(a+b). *)
  let a = 2.0 and b = 3.0 in
  let s = { Balance.targets = [| [| 1 |]; [| 0 |] |]; rates = [| [| a |]; [| b |] |] } in
  let pi = Balance.solve s ~sweep_key:[| 0; 1 |] in
  closef "pi0" (b /. (a +. b)) pi.(0);
  closef "pi1" (a /. (a +. b)) pi.(1)

let test_birth_death_geometric () =
  (* truncated M/M/1: birth l, death m; pi(i) proportional to (l/m)^i. *)
  let l = 0.5 and m = 1.0 in
  let n = 30 in
  let targets =
    Array.init (n + 1) (fun i ->
        if i = 0 then [| 1 |] else if i = n then [| n - 1 |] else [| i + 1; i - 1 |])
  in
  let rates =
    Array.init (n + 1) (fun i ->
        if i = 0 then [| l |] else if i = n then [| m |] else [| l; m |])
  in
  let pi = Balance.solve { Balance.targets; rates } ~sweep_key:(Array.init (n + 1) Fun.id) in
  let rho = l /. m in
  (* compare ratios to avoid dealing with the truncated normaliser *)
  for i = 0 to 5 do
    closef (Printf.sprintf "ratio at %d" i) rho (pi.(i + 1) /. pi.(i))
  done

let test_three_state_cycle () =
  (* cyclic 0->1->2->0 with unit rates: uniform stationary law. *)
  let s =
    { Balance.targets = [| [| 1 |]; [| 2 |]; [| 0 |] |];
      rates = [| [| 1.0 |]; [| 1.0 |]; [| 1.0 |] |] }
  in
  let pi = Balance.solve s ~sweep_key:[| 0; 1; 2 |] in
  Array.iter (fun p -> closef "uniform" (1.0 /. 3.0) p) pi

let test_asymmetric_cycle () =
  (* 0->1 rate 1, 1->2 rate 2, 2->0 rate 4: pi proportional to 1/out. *)
  let s =
    { Balance.targets = [| [| 1 |]; [| 2 |]; [| 0 |] |];
      rates = [| [| 1.0 |]; [| 2.0 |]; [| 4.0 |] |] }
  in
  let pi = Balance.solve s ~sweep_key:[| 0; 1; 2 |] in
  let z = 1.0 +. 0.5 +. 0.25 in
  closef "pi0" (1.0 /. z) pi.(0);
  closef "pi1" (0.5 /. z) pi.(1);
  closef "pi2" (0.25 /. z) pi.(2)

let test_shape_mismatch () =
  Alcotest.(check bool) "shape guard" true
    (try
       ignore
         (Balance.solve
            { Balance.targets = [| [| 0 |] |]; rates = [| [| 1.0; 2.0 |] |] }
            ~sweep_key:[| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_sum_to_one_and_nonnegative () =
  let rng = P2p_prng.Rng.of_seed 1 in
  for _ = 1 to 20 do
    (* random strongly-connected-ish chain: ring plus random chords *)
    let n = 5 + P2p_prng.Rng.int_below rng 10 in
    let targets =
      Array.init n (fun i ->
          let chord = P2p_prng.Rng.int_below rng n in
          if chord = i then [| (i + 1) mod n |] else [| (i + 1) mod n; chord |])
    in
    let rates =
      Array.map
        (Array.map (fun _ -> 0.1 +. P2p_prng.Rng.float rng))
        targets
    in
    let pi = Balance.solve { Balance.targets; rates } ~sweep_key:(Array.init n Fun.id) in
    closef "normalised" 1.0 (Array.fold_left ( +. ) 0.0 pi);
    Array.iter (fun p -> Alcotest.(check bool) "nonnegative" true (p >= 0.0)) pi
  done

let test_balance_equations_hold () =
  (* verify pi Q = 0 componentwise on a random chain *)
  let rng = P2p_prng.Rng.of_seed 2 in
  let n = 8 in
  let targets =
    Array.init n (fun i -> [| (i + 1) mod n; (i + 3) mod n |])
  in
  let rates = Array.map (Array.map (fun _ -> 0.2 +. P2p_prng.Rng.float rng)) targets in
  let pi = Balance.solve { Balance.targets; rates } ~sweep_key:(Array.init n Fun.id) in
  let inflow = Array.make n 0.0 in
  let outflow = Array.make n 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun e j ->
          inflow.(j) <- inflow.(j) +. (pi.(i) *. rates.(i).(e));
          outflow.(i) <- outflow.(i) +. (pi.(i) *. rates.(i).(e)))
        row)
    targets;
  for i = 0 to n - 1 do
    closef ~tol:1e-7 (Printf.sprintf "balance at %d" i) outflow.(i) inflow.(i)
  done

let () =
  Alcotest.run "balance"
    [
      ( "balance",
        [
          Alcotest.test_case "two states" `Quick test_two_state_chain;
          Alcotest.test_case "birth-death geometric" `Quick test_birth_death_geometric;
          Alcotest.test_case "uniform cycle" `Quick test_three_state_cycle;
          Alcotest.test_case "asymmetric cycle" `Quick test_asymmetric_cycle;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "normalised / nonnegative" `Quick test_sum_to_one_and_nonnegative;
          Alcotest.test_case "balance equations" `Quick test_balance_equations_hold;
        ] );
    ]
