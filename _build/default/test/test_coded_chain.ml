(* The type-level coded Markov chain: generator, simulation, exact
   stationary analysis, and the Eq. (56) Lyapunov function. *)

open P2p_core
module L = P2p_coding.Lattice

let close ?(tol = 0.08) name expected actual =
  let rel = Float.abs (actual -. expected) /. Float.max 0.5 (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.4g got %.4g" name expected actual)
    true (rel < tol)

let stable_cfg =
  (* q=2, K=2 with a strong fixed seed: theory positive recurrent. *)
  { Coded_chain.q = 2; k = 2; us = 2.0; mu = 1.0; gamma = infinity;
    arrivals = [ (0, 0.5); (1, 0.5) ] }

let transient_cfg =
  { Coded_chain.q = 2; k = 2; us = 0.0; mu = 1.0; gamma = infinity;
    arrivals = [ (0, 0.4); (1, 0.6) ] }

let profile_of (c : Coded_chain.config) =
  { Stability.Coded.pq = c.q; pk = c.k; pus = c.us; pmu = c.mu; pgamma = c.gamma;
    parrivals = c.arrivals }

let test_create_guards () =
  Alcotest.(check bool) "no arrivals" true
    (try
       ignore (Coded_chain.create { stable_cfg with arrivals = [] });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad mu" true
    (try
       ignore (Coded_chain.create { stable_cfg with mu = 0.0 });
       false
     with Invalid_argument _ -> true)

let test_arrival_rates_decompose () =
  let t = Coded_chain.create stable_cfg in
  let lat = Coded_chain.lattice t in
  let total = ref 0.0 in
  for v = 0 to L.count lat - 1 do
    total := !total +. Coded_chain.arrival_rate_to t v
  done;
  (* gamma = inf: the (tiny) mass of 1-vector gifts that decode instantly
     never enters; for K=2 a single vector cannot decode, so everything
     arrives. *)
  close ~tol:1e-9 "arrival mass" 1.0 !total;
  (* empty-handed arrivals all land on the zero subspace *)
  Alcotest.(check bool) "zero gets at least the empty stream" true
    (Coded_chain.arrival_rate_to t (L.zero lat) >= 0.5)

let test_transition_rates_conserve_contacts () =
  (* Total transfer rate <= U_s + mu * n (contacts that help). *)
  let t = Coded_chain.create stable_cfg in
  let lat = Coded_chain.lattice t in
  let state = Coded_chain.state_of t [ (L.zero lat, 5); (L.full lat, 0) ] in
  let transfer_total =
    List.fold_left
      (fun acc (tr, r) ->
        match tr with Coded_chain.Transfer _ -> acc +. r | _ -> acc)
      0.0
      (Coded_chain.transitions t state)
  in
  Alcotest.(check bool) "bounded by capacity" true
    (transfer_total <= stable_cfg.us +. (stable_cfg.mu *. 5.0) +. 1e-9)

let test_apply_conservation () =
  let t = Coded_chain.create stable_cfg in
  let lat = Coded_chain.lattice t in
  let state = Coded_chain.state_of t [ (L.zero lat, 3) ] in
  Coded_chain.apply t state (Coded_chain.Arrival (L.zero lat));
  Alcotest.(check int) "arrival adds" 4 state.n;
  let line = (L.covers lat (L.zero lat)).(0) in
  Coded_chain.apply t state (Coded_chain.Transfer { downloader = L.zero lat; target = line });
  Alcotest.(check int) "transfer keeps n" 4 state.n;
  Alcotest.(check int) "moved" 1 state.counts.(line);
  (* completing at gamma = inf departs *)
  Coded_chain.apply t state (Coded_chain.Transfer { downloader = line; target = L.full lat });
  Alcotest.(check int) "decode departs" 3 state.n

let test_type_level_matches_agent_level () =
  (* Same law as Sim_coded: compare time-average N on the transient
     config where the signal is strong. *)
  let t = Coded_chain.create transient_cfg in
  let rng = P2p_prng.Rng.of_seed 1 in
  let s = Coded_chain.simulate ~rng t ~init:(Coded_chain.empty_state t) ~horizon:2000.0 in
  let g = { Stability.Coded.q = 2; k = 2; us = 0.0; mu = 1.0; gamma = infinity;
            lambda0 = 0.4; lambda1 = 0.6 } in
  let sa = Sim_coded.run_seeded ~seed:2 (Sim_coded.of_gift g) ~horizon:2000.0 in
  close ~tol:0.15 "agent vs type-level mean N" sa.time_avg_n s.time_avg_n

let test_stable_simulation_small () =
  let t = Coded_chain.create stable_cfg in
  let rng = P2p_prng.Rng.of_seed 3 in
  let s = Coded_chain.simulate ~rng t ~init:(Coded_chain.empty_state t) ~horizon:3000.0 in
  Alcotest.(check bool) "small population" true (s.time_avg_n < 20.0);
  let r = Classify.of_samples s.samples in
  Alcotest.(check string) "stable" "appears-stable" (Classify.verdict_to_string r.verdict)

let test_exact_stationary_matches_simulation () =
  let t = Coded_chain.create stable_cfg in
  let solved = Coded_chain.stationary t ~n_max:25 in
  Alcotest.(check bool) "cap mass small" true (solved.mass_at_cap < 1e-4);
  let rng = P2p_prng.Rng.of_seed 4 in
  let s = Coded_chain.simulate ~rng t ~init:(Coded_chain.empty_state t) ~horizon:30000.0 in
  close ~tol:0.06 "exact vs simulated E[N]" solved.mean_n s.time_avg_n;
  let md = Coded_chain.mean_dim t solved in
  Alcotest.(check bool) "mean dim within [0,K)" true (md >= 0.0 && md < 2.0)

let test_theory_verdicts () =
  Alcotest.(check string) "stable cfg" "positive-recurrent"
    (Stability.verdict_to_string (Stability.Coded.classify_profile (profile_of stable_cfg)));
  Alcotest.(check string) "transient cfg" "transient"
    (Stability.verdict_to_string (Stability.Coded.classify_profile (profile_of transient_cfg)))

let test_transient_grows () =
  let t = Coded_chain.create transient_cfg in
  let rng = P2p_prng.Rng.of_seed 5 in
  let s = Coded_chain.simulate ~rng t ~init:(Coded_chain.empty_state t) ~horizon:1500.0 in
  let r = Classify.of_samples s.samples in
  Alcotest.(check string) "unstable" "appears-unstable" (Classify.verdict_to_string r.verdict)

let test_lyapunov_negative_drift_stable () =
  let t = Coded_chain.create stable_cfg in
  let coeffs = Coded_chain.default_coeffs t in
  List.iter
    (fun (pt : Coded_chain.scan_point) ->
      if pt.n >= 3000 then
        Alcotest.(check bool)
          (Printf.sprintf "QW < 0 at %s" pt.state_desc)
          true (pt.drift_value < 0.0))
    (Coded_chain.scan_hyperplane_states t coeffs ~sizes:[ 3000 ])

let test_lyapunov_positive_drift_transient () =
  let t = Coded_chain.create transient_cfg in
  let coeffs = Coded_chain.default_coeffs t in
  let worst =
    List.fold_left
      (fun acc (pt : Coded_chain.scan_point) -> Float.max acc pt.drift_value)
      neg_infinity
      (Coded_chain.scan_hyperplane_states t coeffs ~sizes:[ 3000 ])
  in
  Alcotest.(check bool) "some hyperplane has positive drift" true (worst > 0.0)

let test_w_regime_guard () =
  let t = Coded_chain.create { stable_cfg with gamma = 0.3 } in
  (* gamma = 0.3 <= mu_tilde = 0.5: Eq. 56 does not apply *)
  let coeffs = Coded_chain.default_coeffs t in
  Alcotest.(check bool) "regime guard" true
    (try
       ignore (Coded_chain.w t coeffs (Coded_chain.empty_state t));
       false
     with Invalid_argument _ -> true)

let test_finite_gamma_seed_dwell () =
  (* gamma finite: completed peers dwell, so Seed_departure transitions
     appear and conservation holds. *)
  let cfg = { stable_cfg with gamma = 2.0 } in
  let t = Coded_chain.create cfg in
  let rng = P2p_prng.Rng.of_seed 6 in
  let s = Coded_chain.simulate ~rng t ~init:(Coded_chain.empty_state t) ~horizon:2000.0 in
  Alcotest.(check int) "conservation" (s.arrivals - s.departures) s.final_n;
  Alcotest.(check bool) "departures happen" true (s.departures > 100)

let () =
  Alcotest.run "coded_chain"
    [
      ( "generator",
        [
          Alcotest.test_case "create guards" `Quick test_create_guards;
          Alcotest.test_case "arrival decomposition" `Quick test_arrival_rates_decompose;
          Alcotest.test_case "capacity bound" `Quick test_transition_rates_conserve_contacts;
          Alcotest.test_case "apply conservation" `Quick test_apply_conservation;
          Alcotest.test_case "theory verdicts" `Quick test_theory_verdicts;
        ] );
      ( "dynamics",
        [
          Alcotest.test_case "matches agent level" `Slow test_type_level_matches_agent_level;
          Alcotest.test_case "stable small" `Quick test_stable_simulation_small;
          Alcotest.test_case "transient grows" `Quick test_transient_grows;
          Alcotest.test_case "exact vs simulated" `Slow test_exact_stationary_matches_simulation;
          Alcotest.test_case "finite gamma dwell" `Quick test_finite_gamma_seed_dwell;
        ] );
      ( "lyapunov-56",
        [
          Alcotest.test_case "negative drift stable" `Quick test_lyapunov_negative_drift_stable;
          Alcotest.test_case "positive drift transient" `Quick test_lyapunov_positive_drift_transient;
          Alcotest.test_case "regime guard" `Quick test_w_regime_guard;
        ] );
    ]
