(* Report formatting and the CSV export hook. *)

open P2p_core

let with_captured_stdout f =
  (* capture stdout via a temp file *)
  let file = Filename.temp_file "report" ".txt" in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  (try f () with e -> restore (); raise e);
  restore ();
  let ic = open_in file in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove file;
  content

let test_fmt_float () =
  Alcotest.(check string) "integer" "3" (Report.fmt_float 3.0);
  Alcotest.(check string) "fraction" "0.005079" (Report.fmt_float 0.0050794);
  Alcotest.(check string) "inf" "inf" (Report.fmt_float infinity);
  Alcotest.(check string) "-inf" "-inf" (Report.fmt_float neg_infinity);
  Alcotest.(check string) "nan" "nan" (Report.fmt_float nan);
  Alcotest.(check string) "negative" "-2" (Report.fmt_float (-2.0))

let test_fmt_bool () =
  Alcotest.(check string) "yes" "yes" (Report.fmt_bool true);
  Alcotest.(check string) "no" "no" (Report.fmt_bool false)

let test_table_alignment () =
  let out =
    with_captured_stdout (fun () ->
        Report.table ~header:[ "a"; "long-header" ] [ [ "xx"; "1" ]; [ "y"; "22" ] ])
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all lines equally long after trimming trailing spaces is not required;
     but the rule line must consist of dashes and spaces only *)
  let rule = List.nth lines 1 in
  Alcotest.(check bool) "rule line" true
    (String.for_all (fun c -> c = '-' || c = ' ') rule)

let test_table_pads_short_rows () =
  let out =
    with_captured_stdout (fun () -> Report.table ~header:[ "a"; "b"; "c" ] [ [ "1" ] ])
  in
  Alcotest.(check bool) "no exception, output produced" true (String.length out > 0)

let test_csv_export () =
  let dir = Filename.temp_file "reportdir" "" in
  Sys.remove dir;
  Report.set_output_dir (Some dir);
  let _ =
    with_captured_stdout (fun () ->
        Report.banner "Test Banner!";
        Report.table ~header:[ "x"; "y" ] [ [ "1"; "a,b" ]; [ "2"; "quo\"te" ] ])
  in
  Report.set_output_dir None;
  let files = Sys.readdir dir in
  Alcotest.(check int) "one csv written" 1 (Array.length files);
  let content =
    let ic = open_in (Filename.concat dir files.(0)) in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  Alcotest.(check bool) "header present" true
    (String.length content >= 4 && String.sub content 0 3 = "x,y");
  Alcotest.(check bool) "comma cell quoted" true
    (String.length content > 0
    && String.split_on_char '\n' content |> List.exists (fun l -> l = "1,\"a,b\""));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Sys.rmdir dir

let test_kv_alignment () =
  let out =
    with_captured_stdout (fun () -> Report.kv [ ("k", "v"); ("longer key", "w") ])
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  (* the colon columns must align *)
  let colon_pos line = String.index line ':' in
  Alcotest.(check int) "aligned colons" (colon_pos (List.nth lines 0))
    (colon_pos (List.nth lines 1))

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
          Alcotest.test_case "fmt_bool" `Quick test_fmt_bool;
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "short rows padded" `Quick test_table_pads_short_rows;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "kv alignment" `Quick test_kv_alignment;
        ] );
    ]
