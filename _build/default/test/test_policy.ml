(* Piece-selection policies: the usefulness constraint of Section VIII-A
   and each policy's specific choice rule. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let all_policies =
  [ Policy.random_useful; Policy.rarest_first; Policy.most_common_first; Policy.sequential ]

let random_state rng k =
  let entries =
    List.filter_map
      (fun c ->
        let count = P2p_prng.Rng.int_below rng 4 in
        if count > 0 then Some (PS.of_index c, count) else None)
      (List.init ((1 lsl k) - 1) (fun i -> i))
  in
  if entries = [] then State.of_counts [ (PS.empty, 1) ] else State.of_counts entries

let test_useful_pieces () =
  let k = 4 in
  Alcotest.(check int) "seed offers all missing" 3
    (PS.cardinal (Policy.useful_pieces ~k ~uploader:Policy.Fixed_seed ~downloader:(PS.singleton 0)));
  Alcotest.(check int) "peer offers difference" 1
    (PS.cardinal
       (Policy.useful_pieces ~k ~uploader:(Policy.Peer (PS.of_list [ 0; 1 ]))
          ~downloader:(PS.of_list [ 1; 2 ])))

let test_distributions_valid () =
  (* Every policy must return a normalised distribution supported on
     useful pieces, for random states and random uploader/downloader. *)
  let rng = P2p_prng.Rng.of_seed 11 in
  let k = 4 in
  for _ = 1 to 300 do
    let state = random_state rng k in
    let downloader = PS.of_index (P2p_prng.Rng.int_below rng ((1 lsl k) - 1)) in
    let uploader =
      if P2p_prng.Rng.bool rng then Policy.Fixed_seed
      else Policy.Peer (PS.of_index (P2p_prng.Rng.int_below rng (1 lsl k)))
    in
    let useful = Policy.useful_pieces ~k ~uploader ~downloader in
    if not (PS.is_empty useful) then
      List.iter
        (fun (policy : Policy.t) ->
          let dist = policy.distribution ~k ~state ~uploader ~downloader in
          Alcotest.(check bool)
            (Printf.sprintf "%s valid" policy.name)
            true
            (Policy.validate_distribution dist ~useful))
        all_policies
  done

let test_random_useful_uniform () =
  let state = State.of_counts [ (PS.empty, 1) ] in
  let dist =
    Policy.random_useful.distribution ~k:4 ~state ~uploader:Policy.Fixed_seed
      ~downloader:PS.empty
  in
  Alcotest.(check int) "4 options" 4 (List.length dist);
  List.iter (fun (_, p) -> Alcotest.(check (float 1e-12)) "uniform" 0.25 p) dist

let test_rarest_first_prefers_rare () =
  (* piece 3 has no copies; the seed must choose it. *)
  let state = State.of_counts [ (PS.of_list [ 0; 1 ], 5); (PS.singleton 0, 2) ] in
  let dist =
    Policy.rarest_first.distribution ~k:3 ~state ~uploader:Policy.Fixed_seed ~downloader:PS.empty
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "only the rarest" [ (2, 1.0) ] dist

let test_rarest_first_ties_uniform () =
  let state = State.of_counts [ (PS.empty, 3) ] in
  let dist =
    Policy.rarest_first.distribution ~k:2 ~state ~uploader:Policy.Fixed_seed ~downloader:PS.empty
  in
  Alcotest.(check int) "both tied" 2 (List.length dist);
  List.iter (fun (_, p) -> Alcotest.(check (float 1e-12)) "uniform over ties" 0.5 p) dist

let test_most_common_first_prefers_common () =
  let state = State.of_counts [ (PS.of_list [ 0; 1 ], 5); (PS.singleton 0, 2) ] in
  let dist =
    Policy.most_common_first.distribution ~k:3 ~state ~uploader:Policy.Fixed_seed
      ~downloader:PS.empty
  in
  (* piece 1 has 7 copies: the most common. *)
  Alcotest.(check (list (pair int (float 1e-12)))) "most common" [ (0, 1.0) ] dist

let test_sequential_lowest () =
  let state = State.of_counts [ (PS.empty, 1) ] in
  let dist =
    Policy.sequential.distribution ~k:4 ~state ~uploader:(Policy.Peer (PS.of_list [ 2; 3 ]))
      ~downloader:(PS.singleton 3)
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "lowest useful" [ (2, 1.0) ] dist

let test_rarest_constrained_by_uploader () =
  (* The globally rarest piece may not be held by the uploader; the policy
     must still pick among useful pieces only. *)
  let state = State.of_counts [ (PS.singleton 0, 10); (PS.singleton 2, 1) ] in
  (* rarest overall is piece 2 (index 1, zero copies) but uploader {1}
     holds only piece 1. *)
  let dist =
    Policy.rarest_first.distribution ~k:3 ~state ~uploader:(Policy.Peer (PS.singleton 0))
      ~downloader:PS.empty
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "forced useful" [ (0, 1.0) ] dist

let test_sample_none_when_useless () =
  let rng = P2p_prng.Rng.of_seed 12 in
  let state = State.of_counts [ (PS.singleton 0, 1) ] in
  Alcotest.(check (option int)) "no useful piece" None
    (Policy.sample Policy.random_useful ~rng ~k:2 ~state
       ~uploader:(Policy.Peer (PS.singleton 0)) ~downloader:(PS.of_list [ 0; 1 ]))

let test_sample_respects_distribution () =
  let rng = P2p_prng.Rng.of_seed 13 in
  let state = State.of_counts [ (PS.empty, 1) ] in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    match
      Policy.sample Policy.random_useful ~rng ~k:3 ~state ~uploader:Policy.Fixed_seed
        ~downloader:PS.empty
    with
    | Some i -> counts.(i) <- counts.(i) + 1
    | None -> Alcotest.fail "seed must always help an empty peer"
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "uniform sampling" true (Float.abs (freq -. (1.0 /. 3.0)) < 0.02))
    counts

let () =
  Alcotest.run "policy"
    [
      ( "policy",
        [
          Alcotest.test_case "useful pieces" `Quick test_useful_pieces;
          Alcotest.test_case "distributions valid" `Quick test_distributions_valid;
          Alcotest.test_case "random uniform" `Quick test_random_useful_uniform;
          Alcotest.test_case "rarest prefers rare" `Quick test_rarest_first_prefers_rare;
          Alcotest.test_case "rarest ties" `Quick test_rarest_first_ties_uniform;
          Alcotest.test_case "most common" `Quick test_most_common_first_prefers_common;
          Alcotest.test_case "sequential lowest" `Quick test_sequential_lowest;
          Alcotest.test_case "rarest constrained" `Quick test_rarest_constrained_by_uploader;
          Alcotest.test_case "sample none" `Quick test_sample_none_when_useless;
          Alcotest.test_case "sample distribution" `Quick test_sample_respects_distribution;
        ] );
    ]
