(* Branching processes: generic multitype machinery against closed forms,
   and the paper's ABS constants of Section VI. *)

module GW = P2p_branching.Galton_watson
module Abs = P2p_branching.Abs
module Rng = P2p_prng.Rng

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6g got %.6g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

(* ---- generic Galton-Watson ---- *)

let test_single_type_progeny () =
  (* mean offspring m < 1: expected total progeny = 1/(1-m). *)
  List.iter
    (fun m ->
      let t = GW.create [| [| m |] |] in
      close "1/(1-m)" (1.0 /. (1.0 -. m)) (GW.expected_progeny t).(0))
    [ 0.0; 0.3; 0.9 ]

let test_criticality () =
  close ~tol:1e-6 "subcritical" 0.5 (GW.criticality (GW.create [| [| 0.5 |] |]));
  Alcotest.(check bool) "subcritical flag" true (GW.is_subcritical (GW.create [| [| 0.99 |] |]));
  Alcotest.(check bool) "supercritical flag" false (GW.is_subcritical (GW.create [| [| 1.01 |] |]))

let test_supercritical_progeny_raises () =
  let t = GW.create [| [| 1.5 |] |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (GW.expected_progeny t);
       false
     with Failure _ -> true)

let test_two_type_progeny_solves_system () =
  let m = [| [| 0.2; 0.3 |]; [| 0.1; 0.4 |] |] in
  let t = GW.create m in
  let prog = GW.expected_progeny t in
  (* verify m = 1 + M m componentwise *)
  for i = 0 to 1 do
    let rhs = 1.0 +. (m.(i).(0) *. prog.(0)) +. (m.(i).(1) *. prog.(1)) in
    close "fixed point" rhs prog.(i)
  done

let test_extinction_subcritical_is_one () =
  let t = GW.create [| [| 0.2; 0.3 |]; [| 0.1; 0.4 |] |] in
  let q = GW.extinction_probability t in
  Array.iter (fun qi -> close ~tol:1e-6 "certain extinction" 1.0 qi) q

let test_extinction_supercritical_poisson () =
  (* Single type Poisson(2) offspring: q solves q = e^{2(q-1)}; q ≈ 0.2032. *)
  let t = GW.create [| [| 2.0 |] |] in
  let q = (GW.extinction_probability t).(0) in
  close ~tol:1e-3 "Poisson(2) extinction" 0.2032 q

let test_progeny_monte_carlo_matches () =
  let rng = Rng.of_seed 11 in
  let t = GW.create [| [| 0.3; 0.2 |]; [| 0.2; 0.3 |] |] in
  let expected = (GW.expected_progeny t).(0) in
  let mc = GW.mean_progeny_monte_carlo ~rng t ~root:0 ~replications:40_000 ~cap:100_000 in
  close ~tol:0.05 "MC total progeny" expected (P2p_stats.Welford.mean mc)

let test_invalid_matrices () =
  Alcotest.(check bool) "non-square" true
    (try
       ignore (GW.create [| [| 1.0; 2.0 |] |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative entry" true
    (try
       ignore (GW.create [| [| -0.1 |] |]);
       false
     with Invalid_argument _ -> true)

(* ---- ABS constants (Section VI) ---- *)

let abs_params = { Abs.k = 4; mu = 1.0; gamma = 2.0; xi = 0.05 }

let test_abs_validation () =
  Alcotest.(check bool) "mu >= gamma rejected" true
    (try
       Abs.validate { abs_params with gamma = 0.5 };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "xi = 1 rejected" true
    (try
       Abs.validate { abs_params with xi = 1.0 };
       false
     with Invalid_argument _ -> true)

let test_abs_mu_over_gamma_inf () =
  close "finite" 0.5 (Abs.mu_over_gamma abs_params);
  close "infinite gamma" 0.0 (Abs.mu_over_gamma { abs_params with gamma = infinity })

let test_abs_limits () =
  (* xi -> 0 limits from the paper:
     m_b -> K/(1-mu/gamma), m_f -> 1/(1-mu/gamma). *)
  let p = { abs_params with xi = 0.0 } in
  close "m_b limit" (4.0 /. 0.5) (Abs.m_b_limit p);
  close "m_f limit" 2.0 (Abs.m_f_limit p);
  close "m_g limit |C|=1" ((3.0 +. 0.5) /. 0.5) (Abs.m_g_limit p ~c_size:1);
  (* closed forms at xi = 0 equal the limits *)
  close "m_b(0) = limit" (Abs.m_b_limit p) (Abs.m_b p);
  close "m_f(0) = limit" (Abs.m_f_limit p) (Abs.m_f p);
  close "m_g(0) = limit" (Abs.m_g_limit p ~c_size:2) (Abs.m_g p ~c_size:2)

let test_abs_closed_form_vs_generic () =
  (* The closed-form (m_b, m_f) must solve m = 1 + M m for the ABS mean
     matrix; the generic GW solver must agree. *)
  let p = abs_params in
  Alcotest.(check bool) "finite regime" true (Abs.is_finite_regime p);
  let gw = Abs.to_galton_watson p in
  let prog = GW.expected_progeny gw in
  close ~tol:1e-9 "m_b generic" (Abs.m_b p) prog.(0);
  close ~tol:1e-9 "m_f generic" (Abs.m_f p) prog.(1)

let test_abs_monotone_in_xi () =
  (* Larger coupling slack inflates the dominating process. *)
  let at xi = Abs.m_b { abs_params with xi } in
  Alcotest.(check bool) "m_b increasing in xi" true (at 0.0 < at 0.05 && at 0.05 < at 0.1)

let test_abs_finiteness_condition () =
  (* Condition (6) fails for xi close to 1. *)
  Alcotest.(check bool) "small xi finite" true (Abs.is_finite_regime { abs_params with xi = 0.01 });
  Alcotest.(check bool) "large xi infinite" false
    (Abs.is_finite_regime { abs_params with xi = 0.5 });
  Alcotest.(check bool) "m_b raises outside regime" true
    (try
       ignore (Abs.m_b { abs_params with xi = 0.5 });
       false
     with Failure _ -> true)

let test_abs_dhat_rate_limit_matches_threshold () =
  (* The xi->0 ABS download rate is the RHS of the comparison in Section
     VI; the Theorem 1 threshold (coefficient K+1-|C|) equals the ABS rate
     (coefficient K-|C|+mu/gamma) plus the arrival rate of gifted peers,
     because the transience condition compares arrivals *without* the rare
     piece to D_t.  Cross-check this identity numerically. *)
  let module PS = P2p_pieceset.Pieceset in
  let params =
    P2p_core.Params.make ~k:4 ~us:0.7 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.empty, 1.0); (PS.of_list [ 0; 1 ], 0.3); (PS.singleton 0, 0.2) ]
  in
  let piece = 0 in
  let gifted = [ (2, 0.3); (1, 0.2) ] in
  (* types containing piece 0 with their sizes *)
  let gifted_rate = 0.3 +. 0.2 in
  let abs_rate = Abs.dhat_rate_limit ~us:0.7 ~k:4 ~mu_over_gamma:0.5 ~gifted in
  close ~tol:1e-9 "ABS rate + gifted arrivals = threshold"
    (P2p_core.Stability.threshold params ~piece)
    (abs_rate +. gifted_rate)

let test_abs_dhat_rate_decreases_to_limit () =
  let p0 = { abs_params with xi = 0.0 } in
  let r0 = Abs.dhat_rate p0 ~us:1.0 ~gifted:[ (1, 0.5) ] in
  let r1 = Abs.dhat_rate { abs_params with xi = 0.02 } ~us:1.0 ~gifted:[ (1, 0.5) ] in
  Alcotest.(check bool) "rate grows with xi" true (r1 > r0);
  close "xi=0 equals limit" (Abs.dhat_rate_limit ~us:1.0 ~k:4 ~mu_over_gamma:0.5 ~gifted:[ (1, 0.5) ]) r0

let test_abs_progeny_monte_carlo () =
  (* Simulate the two-type ABS with Poisson offspring; mean total progeny
     of a type-(f) root should match m_f. *)
  let rng = Rng.of_seed 12 in
  let p = { Abs.k = 3; mu = 1.0; gamma = 3.0; xi = 0.05 } in
  let gw = Abs.to_galton_watson p in
  let mc = GW.mean_progeny_monte_carlo ~rng gw ~root:1 ~replications:30_000 ~cap:1_000_000 in
  close ~tol:0.05 "MC m_f" (Abs.m_f p) (P2p_stats.Welford.mean mc)

let () =
  Alcotest.run "branching"
    [
      ( "galton-watson",
        [
          Alcotest.test_case "single-type progeny" `Quick test_single_type_progeny;
          Alcotest.test_case "criticality" `Quick test_criticality;
          Alcotest.test_case "supercritical raises" `Quick test_supercritical_progeny_raises;
          Alcotest.test_case "two-type fixed point" `Quick test_two_type_progeny_solves_system;
          Alcotest.test_case "extinction subcritical" `Quick test_extinction_subcritical_is_one;
          Alcotest.test_case "extinction Poisson(2)" `Quick test_extinction_supercritical_poisson;
          Alcotest.test_case "progeny Monte Carlo" `Quick test_progeny_monte_carlo_matches;
          Alcotest.test_case "invalid matrices" `Quick test_invalid_matrices;
        ] );
      ( "abs",
        [
          Alcotest.test_case "validation" `Quick test_abs_validation;
          Alcotest.test_case "mu/gamma conventions" `Quick test_abs_mu_over_gamma_inf;
          Alcotest.test_case "xi->0 limits" `Quick test_abs_limits;
          Alcotest.test_case "closed form vs generic" `Quick test_abs_closed_form_vs_generic;
          Alcotest.test_case "monotone in xi" `Quick test_abs_monotone_in_xi;
          Alcotest.test_case "finiteness condition (6)" `Quick test_abs_finiteness_condition;
          Alcotest.test_case "dhat rate = threshold" `Quick test_abs_dhat_rate_limit_matches_threshold;
          Alcotest.test_case "dhat rate vs xi" `Quick test_abs_dhat_rate_decreases_to_limit;
          Alcotest.test_case "ABS progeny MC" `Quick test_abs_progeny_monte_carlo;
        ] );
    ]
