(* Heterogeneous peer classes: the threshold heuristic and the multi-class
   simulator. *)

open P2p_core
module PS = P2p_pieceset.Pieceset

let closef ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6g got %.6g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_validation () =
  let reject name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  reject "no classes" (fun () -> Hetero.make ~k:2 ~us:0.0 ~classes:[]);
  reject "bad mu" (fun () ->
      Hetero.make ~k:2 ~us:0.0
        ~classes:[ { label = "x"; mu = 0.0; gamma = 1.0; arrivals = [ (PS.empty, 1.0) ] } ]);
  reject "no arrivals" (fun () ->
      Hetero.make ~k:2 ~us:0.0
        ~classes:[ { label = "x"; mu = 1.0; gamma = 1.0; arrivals = [] } ]);
  reject "lambda_F with gamma inf" (fun () ->
      Hetero.make ~k:2 ~us:0.0
        ~classes:
          [ { label = "x"; mu = 1.0; gamma = infinity; arrivals = [ (PS.full ~k:2, 1.0) ] } ])

let test_single_class_reduces_to_theorem1 () =
  (* The heuristic must agree with Theorem 1 exactly when there is one
     class, across regimes and gift mixes. *)
  let cases =
    [
      Scenario.flash_crowd ~k:3 ~lambda:0.9 ~us:0.8 ~mu:1.0 ~gamma:2.0;
      Scenario.flash_crowd ~k:3 ~lambda:1.3 ~us:0.3 ~mu:1.0 ~gamma:infinity;
      Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:1.5;
      Scenario.example2 ~lambda12:1.0 ~lambda34:0.4 ~mu:1.0;
      Params.make ~k:3 ~us:0.4 ~mu:1.0 ~gamma:2.0
        ~arrivals:[ (PS.empty, 1.0); (PS.singleton 0, 0.5) ];
    ]
  in
  List.iter
    (fun p ->
      let h = Hetero.of_params p in
      Alcotest.(check string) "verdict agrees"
        (Stability.verdict_to_string (Stability.classify p))
        (Stability.verdict_to_string (Hetero.classify_heuristic h));
      for piece = 0 to p.Params.k - 1 do
        closef "threshold agrees" (Stability.threshold p ~piece) (Hetero.threshold h ~piece)
      done)
    cases

let two_classes ~lam_fast ~lam_slow =
  Hetero.make ~k:3 ~us:0.4
    ~classes:
      [
        { label = "fast"; mu = 3.0; gamma = 6.0; arrivals = [ (PS.empty, lam_fast) ] };
        { label = "slow"; mu = 0.3; gamma = 0.6; arrivals = [ (PS.empty, lam_slow) ] };
      ]

let test_mbar_mixes_classes () =
  (* both classes have rho = 1/2, so any mix gives m_bar = 1/2 *)
  closef "equal rho" 0.5 (Hetero.mean_seed_offspring (two_classes ~lam_fast:1.0 ~lam_slow:0.1) ~piece:0);
  (* asymmetric rho: the mix matters *)
  let asym frac =
    Hetero.make ~k:2 ~us:0.1
      ~classes:
        [
          { label = "a"; mu = 1.0; gamma = 4.0; arrivals = [ (PS.empty, frac) ] };
          { label = "b"; mu = 1.0; gamma = 1.25; arrivals = [ (PS.empty, 1.0 -. frac) ] };
        ]
  in
  closef "all a" 0.25 (Hetero.mean_seed_offspring (asym 1.0) ~piece:0);
  closef "all b" 0.8 (Hetero.mean_seed_offspring (asym 0.0) ~piece:0);
  closef "half" 0.525 (Hetero.mean_seed_offspring (asym 0.5) ~piece:0)

let test_threshold_infinite_when_supercritical () =
  let h =
    Hetero.make ~k:2 ~us:0.05
      ~classes:
        [ { label = "sticky"; mu = 1.0; gamma = 0.5; arrivals = [ (PS.empty, 5.0) ] } ]
  in
  closef "m_bar = 2" 2.0 (Hetero.mean_seed_offspring h ~piece:0);
  Alcotest.(check bool) "infinite threshold" true (Hetero.threshold h ~piece:0 = infinity);
  Alcotest.(check string) "stable at any load" "positive-recurrent"
    (Stability.verdict_to_string (Hetero.classify_heuristic h))

let test_simulation_conservation () =
  let h = two_classes ~lam_fast:0.3 ~lam_slow:0.3 in
  let s = Hetero.simulate_seeded ~seed:1 h ~horizon:1000.0 in
  Alcotest.(check int) "conservation" (s.arrivals - s.departures) s.final_n;
  Alcotest.(check int) "class count" 2 (Array.length s.class_mean_n)

let test_simulation_matches_single_class_agent () =
  let p = Scenario.flash_crowd ~k:3 ~lambda:0.8 ~us:0.8 ~mu:1.0 ~gamma:2.0 in
  let avg run_fn =
    let w = P2p_stats.Welford.create () in
    for seed = 1 to 8 do
      P2p_stats.Welford.add w (run_fn seed)
    done;
    P2p_stats.Welford.mean w
  in
  let hetero seed =
    (Hetero.simulate_seeded ~seed (Hetero.of_params p) ~horizon:1500.0).time_avg_n
  in
  let agent seed =
    (fst (Sim_agent.run_seeded ~seed:(seed + 40) (Sim_agent.default_config p) ~horizon:1500.0))
      .time_avg_n
  in
  let a = avg agent and h = avg hetero in
  Alcotest.(check bool)
    (Printf.sprintf "same law: %.2f vs %.2f" a h)
    true
    (Float.abs (a -. h) /. Float.max 1.0 a < 0.15)

let test_two_class_region_by_simulation () =
  let stable = two_classes ~lam_fast:0.3 ~lam_slow:0.3 in
  Alcotest.(check string) "heuristic stable" "positive-recurrent"
    (Stability.verdict_to_string (Hetero.classify_heuristic stable));
  let s = Hetero.simulate_seeded ~seed:2 stable ~horizon:2000.0 in
  Alcotest.(check string) "sim stable" "appears-stable"
    (Classify.verdict_to_string (Classify.of_samples s.samples).verdict);
  let transient = two_classes ~lam_fast:1.0 ~lam_slow:1.0 in
  Alcotest.(check string) "heuristic transient" "transient"
    (Stability.verdict_to_string (Hetero.classify_heuristic transient));
  let s = Hetero.simulate_seeded ~seed:3 transient ~horizon:2000.0 in
  Alcotest.(check string) "sim transient" "appears-unstable"
    (Classify.verdict_to_string (Classify.of_samples s.samples).verdict)

let test_fast_class_finishes_faster () =
  (* The slow class's sojourn is dominated by its own download clock?  No:
     downloads come from others' uploads.  But slow peers dwell as seeds
     for 1/0.6 vs fast 1/6, so their sojourn must be longer. *)
  let h = two_classes ~lam_fast:0.3 ~lam_slow:0.3 in
  let s = Hetero.simulate_seeded ~seed:4 h ~horizon:3000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "slow sojourn %.2f > fast %.2f" s.class_mean_sojourn.(1)
       s.class_mean_sojourn.(0))
    true
    (s.class_mean_sojourn.(1) > s.class_mean_sojourn.(0))

let test_sticky_slow_class_stabilises () =
  (* A small stream of long-dwelling peers can stabilise a load that the
     fast class alone could not: the heterogeneous version of the
     one-more-piece corollary. *)
  let mix sticky =
    Hetero.make ~k:2 ~us:0.1
      ~classes:
        [
          { label = "impatient"; mu = 1.0; gamma = infinity; arrivals = [ (PS.empty, 1.0) ] };
          { label = "sticky"; mu = 1.0; gamma = 0.4; arrivals = [ (PS.empty, sticky) ] };
        ]
  in
  (* without sticky peers: threshold = us/(1-0) = 0.1 << 1.0 transient *)
  Alcotest.(check string) "no sticky: transient" "transient"
    (Stability.verdict_to_string (Hetero.classify_heuristic (mix 0.001)));
  (* with enough sticky mass, m_bar = (1.0*0 + s*2.5)/(1+s) >= 1 at s >= 2/3 *)
  Alcotest.(check string) "sticky mass rescues" "positive-recurrent"
    (Stability.verdict_to_string (Hetero.classify_heuristic (mix 0.8)));
  let s = Hetero.simulate_seeded ~seed:5 (mix 0.8) ~horizon:2000.0 in
  Alcotest.(check string) "sim agrees" "appears-stable"
    (Classify.verdict_to_string (Classify.of_samples s.samples).verdict)

let () =
  Alcotest.run "hetero"
    [
      ( "hetero",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "reduces to Theorem 1" `Quick test_single_class_reduces_to_theorem1;
          Alcotest.test_case "m_bar mixes" `Quick test_mbar_mixes_classes;
          Alcotest.test_case "supercritical" `Quick test_threshold_infinite_when_supercritical;
          Alcotest.test_case "conservation" `Quick test_simulation_conservation;
          Alcotest.test_case "matches agent" `Slow test_simulation_matches_single_class_agent;
          Alcotest.test_case "two-class region" `Quick test_two_class_region_by_simulation;
          Alcotest.test_case "sojourn ordering" `Quick test_fast_class_finishes_faster;
          Alcotest.test_case "sticky class rescues" `Quick test_sticky_slow_class_stabilises;
        ] );
    ]
