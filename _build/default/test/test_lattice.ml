(* The subspace lattice of F_q^K. *)

module L = P2p_coding.Lattice

let gaussian_binomial_sum ~q ~k =
  (* number of subspaces of F_q^k = sum of Gaussian binomials; computed
     directly by the q-analog recursion for the test oracle. *)
  let binom = Array.make_matrix (k + 1) (k + 1) 0 in
  for n = 0 to k do
    binom.(n).(0) <- 1;
    for r = 1 to n do
      let upper = if r <= n - 1 then binom.(n - 1).(r) else 0 in
      (* [n r]_q = q^r [n-1 r]_q + [n-1 r-1]_q *)
      let qr = int_of_float (float_of_int q ** float_of_int r) in
      binom.(n).(r) <- (qr * upper) + binom.(n - 1).(r - 1)
    done
  done;
  Array.fold_left ( + ) 0 (Array.init (k + 1) (fun r -> binom.(k).(r)))

let test_counts () =
  List.iter
    (fun (q, k) ->
      let t = L.build ~q ~k in
      Alcotest.(check int)
        (Printf.sprintf "q=%d k=%d" q k)
        (gaussian_binomial_sum ~q ~k) (L.count t))
    [ (2, 1); (2, 2); (2, 3); (2, 4); (3, 2); (3, 3); (4, 2); (5, 2); (2, 5) ]

let t23 = L.build ~q:2 ~k:3

let test_zero_full () =
  Alcotest.(check int) "dim zero" 0 (L.dim t23 (L.zero t23));
  Alcotest.(check int) "size zero" 1 (L.size t23 (L.zero t23));
  Alcotest.(check int) "dim full" 3 (L.dim t23 (L.full t23));
  Alcotest.(check int) "size full" 8 (L.size t23 (L.full t23));
  Alcotest.(check bool) "zero <= full" true (L.leq t23 (L.zero t23) (L.full t23))

let test_members_sorted_start_zero () =
  for v = 0 to L.count t23 - 1 do
    let m = L.members t23 v in
    Alcotest.(check int) "starts with 0" 0 m.(0);
    Alcotest.(check int) "size = q^dim" (1 lsl L.dim t23 v) (Array.length m);
    for i = 1 to Array.length m - 1 do
      Alcotest.(check bool) "sorted" true (m.(i) > m.(i - 1))
    done
  done

let test_lattice_algebra () =
  let n = L.count t23 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let i = L.inter t23 a b and j = L.join t23 a b in
      Alcotest.(check bool) "inter below both" true (L.leq t23 i a && L.leq t23 i b);
      Alcotest.(check bool) "join above both" true (L.leq t23 a j && L.leq t23 b j);
      (* dimension formula: dim a + dim b = dim inter + dim join holds for
         modular pairs; in the subspace lattice it always holds. *)
      Alcotest.(check int) "modular law"
        (L.dim t23 a + L.dim t23 b)
        (L.dim t23 i + L.dim t23 j)
    done
  done

let test_covers () =
  Array.iter
    (fun w ->
      Alcotest.(check int) "cover is one above" (L.dim t23 (L.zero t23) + 1) (L.dim t23 w))
    (L.covers t23 (L.zero t23));
  (* zero has (q^k - 1)/(q - 1) covers: the 1-dim subspaces = 7 for q=2,k=3 *)
  Alcotest.(check int) "lines above zero" 7 (Array.length (L.covers t23 (L.zero t23)));
  Alcotest.(check int) "nothing above full" 0 (Array.length (L.covers t23 (L.full t23)))

let test_hyperplanes () =
  Alcotest.(check int) "7 hyperplanes" 7 (Array.length (L.hyperplanes t23));
  Array.iter
    (fun h -> Alcotest.(check int) "dim k-1" 2 (L.dim t23 h))
    (L.hyperplanes t23)

let test_seed_move_total () =
  (* From type V, the seed's vector is useful with prob 1 - |V|/q^k, and
     the move probabilities over covers must sum to exactly that. *)
  for v = 0 to L.count t23 - 1 do
    if v <> L.full t23 then begin
      let total =
        Array.fold_left
          (fun acc w -> acc +. L.seed_move_probability t23 ~downloader:v ~target:w)
          0.0 (L.covers t23 v)
      in
      let expected = 1.0 -. (float_of_int (L.size t23 v) /. 8.0) in
      Alcotest.(check (float 1e-12)) "seed totals" expected total
    end
  done

let test_upload_move_total () =
  (* Sum over covers = useful probability 1 - |V ∩ U| / |U|. *)
  let n = L.count t23 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if v <> L.full t23 then begin
        let total =
          Array.fold_left
            (fun acc w -> acc +. L.upload_move_probability t23 ~uploader:u ~downloader:v ~target:w)
            0.0 (L.covers t23 v)
        in
        let expected =
          1.0 -. (float_of_int (L.size t23 (L.inter t23 v u)) /. float_of_int (L.size t23 u))
        in
        Alcotest.(check (float 1e-12)) "upload totals" expected total
      end
    done
  done

let test_span_distribution_sums () =
  List.iter
    (fun j ->
      let d = L.span_distribution t23 ~coded:j in
      Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 d))
    [ 0; 1; 2; 5 ]

let test_span_distribution_values () =
  let d1 = L.span_distribution t23 ~coded:1 in
  Alcotest.(check (float 1e-12)) "P(zero) = 1/8" 0.125 d1.(L.zero t23);
  (* each 1-dim subspace carries 1/8 (one nonzero vector out of 8) *)
  Array.iter
    (fun line -> Alcotest.(check (float 1e-12)) "line mass" 0.125 d1.(line))
    (L.covers t23 (L.zero t23));
  (* j=3: P(full) = (1-1/8)(1-1/4)(1-1/2) *)
  let d3 = L.span_distribution t23 ~coded:3 in
  Alcotest.(check (float 1e-9)) "P(full) at j=3" (0.875 *. 0.75 *. 0.5) d3.(L.full t23)

let test_span_distribution_vs_monte_carlo () =
  let rng = P2p_prng.Rng.of_seed 5 in
  let d2 = L.span_distribution t23 ~coded:2 in
  let counts = Array.make (L.count t23) 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let codes = Array.init 2 (fun _ -> P2p_prng.Rng.int_below rng 8) in
    let v = L.dim_of_vector_span t23 codes in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun v p ->
      let freq = float_of_int counts.(v) /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "subspace %d: %.4f vs %.4f" v p freq)
        true
        (Float.abs (p -. freq) < 0.01))
    d2

let test_span_agrees_with_rank_pmf () =
  (* Marginal over dimension must equal the rank law of random matrices. *)
  let j = 2 in
  let d = L.span_distribution t23 ~coded:j in
  let pmf = P2p_coding.Rank_dist.rank_pmf ~q:2 ~rows:j ~cols:3 in
  Array.iteri
    (fun r expected ->
      let total = ref 0.0 in
      Array.iteri (fun v p -> if L.dim t23 v = r then total := !total +. p) d;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "rank %d" r) expected !total)
    pmf

let test_build_guards () =
  Alcotest.(check bool) "q^k too large" true
    (try
       ignore (L.build ~q:2 ~k:9);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too many subspaces" true
    (try
       ignore (L.build ~q:2 ~k:7);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "lattice"
    [
      ( "lattice",
        [
          Alcotest.test_case "subspace counts" `Quick test_counts;
          Alcotest.test_case "zero/full" `Quick test_zero_full;
          Alcotest.test_case "members canonical" `Quick test_members_sorted_start_zero;
          Alcotest.test_case "inter/join/modular" `Quick test_lattice_algebra;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "hyperplanes" `Quick test_hyperplanes;
          Alcotest.test_case "seed move totals" `Quick test_seed_move_total;
          Alcotest.test_case "upload move totals" `Quick test_upload_move_total;
          Alcotest.test_case "span sums" `Quick test_span_distribution_sums;
          Alcotest.test_case "span values" `Quick test_span_distribution_values;
          Alcotest.test_case "span vs Monte Carlo" `Quick test_span_distribution_vs_monte_carlo;
          Alcotest.test_case "span vs rank pmf" `Quick test_span_agrees_with_rank_pmf;
          Alcotest.test_case "build guards" `Quick test_build_guards;
        ] );
    ]
