(* Unit and property tests for piece sets. *)

module PS = P2p_pieceset.Pieceset

let ps_testable = Alcotest.testable PS.pp PS.equal

(* qcheck generator for a piece set within k pieces. *)
let gen_set k = QCheck2.Gen.map (fun bits -> PS.of_index (bits land ((1 lsl k) - 1))) QCheck2.Gen.nat

let test_empty_full () =
  Alcotest.(check int) "empty cardinal" 0 (PS.cardinal PS.empty);
  Alcotest.(check bool) "empty is empty" true (PS.is_empty PS.empty);
  let f = PS.full ~k:6 in
  Alcotest.(check int) "full cardinal" 6 (PS.cardinal f);
  Alcotest.(check bool) "full is full" true (PS.is_full ~k:6 f);
  Alcotest.(check bool) "full not empty" false (PS.is_empty f)

let test_full_max () =
  let f = PS.full ~k:PS.max_pieces in
  Alcotest.(check int) "62-piece full" PS.max_pieces (PS.cardinal f)

let test_full_invalid () =
  Alcotest.check_raises "k=0" (Invalid_argument "Pieceset: k = 0 out of range [1, 62]") (fun () ->
      ignore (PS.full ~k:0))

let test_add_remove_mem () =
  let c = PS.empty |> PS.add 3 |> PS.add 5 in
  Alcotest.(check bool) "mem 3" true (PS.mem 3 c);
  Alcotest.(check bool) "mem 5" true (PS.mem 5 c);
  Alcotest.(check bool) "not mem 4" false (PS.mem 4 c);
  Alcotest.(check ps_testable) "remove 3" (PS.singleton 5) (PS.remove 3 c);
  Alcotest.(check ps_testable) "remove absent is noop" c (PS.remove 4 c)

let test_elements_roundtrip () =
  let sets = [ []; [ 0 ]; [ 1; 3; 7 ]; [ 0; 1; 2; 3 ]; [ 61 ] ] in
  List.iter
    (fun l -> Alcotest.(check (list int)) "roundtrip" l (PS.elements (PS.of_list l)))
    sets

let test_subset_relations () =
  let a = PS.of_list [ 0; 2 ] and b = PS.of_list [ 0; 1; 2 ] in
  Alcotest.(check bool) "a subset b" true (PS.subset a b);
  Alcotest.(check bool) "b not subset a" false (PS.subset b a);
  Alcotest.(check bool) "a subset a" true (PS.subset a a);
  Alcotest.(check bool) "proper" true (PS.proper_subset a b);
  Alcotest.(check bool) "not proper self" false (PS.proper_subset a a)

let test_can_help () =
  let up = PS.of_list [ 0; 1 ] and down = PS.of_list [ 1; 2 ] in
  Alcotest.(check bool) "has piece 0 to offer" true (PS.can_help ~uploader:up ~downloader:down);
  Alcotest.(check bool) "nothing to offer" false
    (PS.can_help ~uploader:(PS.singleton 1) ~downloader:down);
  Alcotest.(check bool) "empty cannot help" false
    (PS.can_help ~uploader:PS.empty ~downloader:PS.empty)

let test_complement () =
  let c = PS.of_list [ 0; 2 ] in
  Alcotest.(check ps_testable) "complement in 4" (PS.of_list [ 1; 3 ]) (PS.complement ~k:4 c);
  Alcotest.(check int) "missing count" 2 (PS.missing_count ~k:4 c)

let test_nth_element () =
  let c = PS.of_list [ 1; 4; 9 ] in
  Alcotest.(check int) "0th" 1 (PS.nth_element c 0);
  Alcotest.(check int) "1st" 4 (PS.nth_element c 1);
  Alcotest.(check int) "2nd" 9 (PS.nth_element c 2)

let test_lowest () =
  Alcotest.(check int) "lowest" 2 (PS.lowest (PS.of_list [ 5; 2; 9 ]))

let test_choose_uniform () =
  let rng = P2p_prng.Rng.of_seed 3 in
  let c = PS.of_list [ 1; 4; 9 ] in
  let counts = Hashtbl.create 3 in
  let n = 30_000 in
  for _ = 1 to n do
    let x = PS.choose_uniform (P2p_prng.Rng.int_below rng) c in
    Hashtbl.replace counts x (1 + Option.value (Hashtbl.find_opt counts x) ~default:0)
  done;
  List.iter
    (fun x ->
      let freq = float_of_int (Hashtbl.find counts x) /. float_of_int n in
      Alcotest.(check bool) "uniform choice" true (Float.abs (freq -. (1.0 /. 3.0)) < 0.02))
    [ 1; 4; 9 ]

let test_all_counts () =
  Alcotest.(check int) "2^4 subsets" 16 (List.length (PS.all ~k:4));
  Alcotest.(check int) "proper subsets" 15 (List.length (PS.all_proper ~k:4));
  Alcotest.(check bool) "full not proper" false
    (List.exists (PS.equal (PS.full ~k:4)) (PS.all_proper ~k:4))

let test_subsets_of () =
  let c = PS.of_list [ 1; 3 ] in
  let subs = PS.subsets_of c in
  Alcotest.(check int) "2^2 subsets" 4 (List.length subs);
  List.iter (fun s -> Alcotest.(check bool) "each is subset" true (PS.subset s c)) subs;
  Alcotest.(check bool) "contains empty" true (List.exists PS.is_empty subs);
  Alcotest.(check bool) "contains self" true (List.exists (PS.equal c) subs)

let test_strict_supersets () =
  let c = PS.of_list [ 0 ] in
  let sups = PS.strict_supersets_within ~k:3 c in
  Alcotest.(check int) "2^2 - 1 supersets" 3 (List.length sups);
  List.iter
    (fun s -> Alcotest.(check bool) "proper superset" true (PS.proper_subset c s))
    sups

let test_index_roundtrip () =
  for i = 0 to 255 do
    Alcotest.(check int) "roundtrip" i (PS.to_index (PS.of_index i))
  done

let test_pp () =
  Alcotest.(check string) "pp 1-based" "{1,3}" (PS.to_string (PS.of_list [ 0; 2 ]));
  Alcotest.(check string) "pp empty" "{}" (PS.to_string PS.empty)

(* Property tests. *)
let prop_union_cardinal =
  QCheck2.Test.make ~name:"cardinal(a∪b) = |a|+|b|-|a∩b|" ~count:1000
    (QCheck2.Gen.pair (gen_set 10) (gen_set 10))
    (fun (a, b) ->
      PS.cardinal (PS.union a b) = PS.cardinal a + PS.cardinal b - PS.cardinal (PS.inter a b))

let prop_diff_disjoint =
  QCheck2.Test.make ~name:"a\\b disjoint from b" ~count:1000
    (QCheck2.Gen.pair (gen_set 10) (gen_set 10))
    (fun (a, b) -> PS.is_empty (PS.inter (PS.diff a b) b))

let prop_subset_iff_union =
  QCheck2.Test.make ~name:"a⊆b iff a∪b=b" ~count:1000
    (QCheck2.Gen.pair (gen_set 10) (gen_set 10))
    (fun (a, b) -> PS.subset a b = PS.equal (PS.union a b) b)

let prop_complement_involution =
  QCheck2.Test.make ~name:"complement twice is identity" ~count:1000 (gen_set 8)
    (fun a -> PS.equal a (PS.complement ~k:8 (PS.complement ~k:8 a)))

let prop_fold_counts =
  QCheck2.Test.make ~name:"fold visits cardinal elements" ~count:1000 (gen_set 12)
    (fun a -> PS.fold (fun _ acc -> acc + 1) a 0 = PS.cardinal a)

let prop_subsets_count =
  QCheck2.Test.make ~name:"subsets_of size 2^|C|" ~count:200 (gen_set 8)
    (fun a -> List.length (PS.subsets_of a) = 1 lsl PS.cardinal a)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_union_cardinal;
        prop_diff_disjoint;
        prop_subset_iff_union;
        prop_complement_involution;
        prop_fold_counts;
        prop_subsets_count;
      ]
  in
  Alcotest.run "pieceset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty/full" `Quick test_empty_full;
          Alcotest.test_case "full max" `Quick test_full_max;
          Alcotest.test_case "full invalid" `Quick test_full_invalid;
          Alcotest.test_case "add/remove/mem" `Quick test_add_remove_mem;
          Alcotest.test_case "elements roundtrip" `Quick test_elements_roundtrip;
          Alcotest.test_case "subset" `Quick test_subset_relations;
          Alcotest.test_case "can_help" `Quick test_can_help;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "nth_element" `Quick test_nth_element;
          Alcotest.test_case "lowest" `Quick test_lowest;
          Alcotest.test_case "choose_uniform" `Quick test_choose_uniform;
          Alcotest.test_case "all counts" `Quick test_all_counts;
          Alcotest.test_case "subsets_of" `Quick test_subsets_of;
          Alcotest.test_case "strict supersets" `Quick test_strict_supersets;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ("properties", props);
    ]
