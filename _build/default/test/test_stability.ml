(* Theorem 1 and Theorem 15: the stability region. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let closef ?(tol = 1e-12) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let verdict = Alcotest.testable Stability.pp_verdict ( = )

(* ---- Example 1 (K=1): threshold U_s / (1 - mu/gamma) ---- *)

let test_example1_region () =
  let us = 0.5 and mu = 1.0 and gamma = 2.0 in
  let crit = Scenario.example1_threshold ~us ~mu ~gamma in
  closef "critical rate" 1.0 crit;
  let classify lambda0 = Stability.classify (Scenario.example1 ~lambda0 ~us ~mu ~gamma) in
  Alcotest.check verdict "below" Stability.Positive_recurrent (classify 0.99);
  Alcotest.check verdict "above" Stability.Transient (classify 1.01);
  Alcotest.check verdict "at" Stability.Borderline (classify 1.0)

let test_example1_gamma_le_mu_always_stable () =
  List.iter
    (fun lambda0 ->
      Alcotest.check verdict "any load stable" Stability.Positive_recurrent
        (Stability.classify (Scenario.example1 ~lambda0 ~us:0.01 ~mu:1.0 ~gamma:0.8)))
    [ 0.1; 10.0; 1000.0 ]

let test_example1_gamma_le_mu_needs_inflow () =
  (* gamma <= mu but U_s = 0 and no gifted arrivals: the piece can never
     enter, so the system is trivially transient. *)
  let p = Params.make ~k:1 ~us:0.0 ~mu:1.0 ~gamma:0.5 ~arrivals:[ (PS.empty, 1.0) ] in
  Alcotest.check verdict "no inflow" Stability.Transient (Stability.classify p)

(* ---- Example 2 (K=4): lambda12 < 2 lambda34 and lambda34 < 2 lambda12 ---- *)

let test_example2_region () =
  let classify l12 l34 = Stability.classify (Scenario.example2 ~lambda12:l12 ~lambda34:l34 ~mu:1.0) in
  Alcotest.check verdict "interior" Stability.Positive_recurrent (classify 1.0 1.0);
  Alcotest.check verdict "edge 1" Stability.Transient (classify 1.0 0.49);
  Alcotest.check verdict "edge 2" Stability.Transient (classify 0.49 1.0);
  Alcotest.check verdict "boundary" Stability.Borderline (classify 1.0 0.5);
  Alcotest.check verdict "near boundary inside" Stability.Positive_recurrent (classify 1.0 0.51)

(* ---- Example 3 (K=3): lambda_i + lambda_j < lambda_k (2+rho)/(1-rho) ---- *)

let test_example3_region () =
  let mu = 1.0 and gamma = 1.5 in
  let rho = mu /. gamma in
  let factor = (2.0 +. rho) /. (1.0 -. rho) in
  closef "factor" 8.0 factor;
  let classify l1 l2 l3 =
    Stability.classify (Scenario.example3 ~lambda1:l1 ~lambda2:l2 ~lambda3:l3 ~mu ~gamma)
  in
  Alcotest.check verdict "symmetric stable" Stability.Positive_recurrent (classify 1.0 1.0 1.0);
  (* lambda1 + lambda2 = 8.1 > 8 * lambda3 = 8 -> transient *)
  Alcotest.check verdict "piece-3 club" Stability.Transient (classify 4.05 4.05 1.0);
  Alcotest.check verdict "just inside" Stability.Positive_recurrent (classify 3.9 3.9 1.0)

let test_example3_gamma_inf_symmetric_borderline () =
  let p = Scenario.symmetric_singletons ~k:3 ~lambda:1.0 ~mu:1.0 in
  Alcotest.check verdict "symmetric flat network is borderline" Stability.Borderline
    (Stability.classify p);
  (* any asymmetry is transient *)
  let p' = Scenario.example3 ~lambda1:1.1 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:infinity in
  Alcotest.check verdict "asymmetric transient" Stability.Transient (Stability.classify p')

(* ---- threshold and Delta_S agreement ---- *)

let random_params rng =
  let k = 2 + P2p_prng.Rng.int_below rng 3 in
  let gamma =
    if P2p_prng.Rng.bool rng then infinity else 1.0 +. P2p_prng.Rng.float rng *. 3.0
  in
  let mu = 0.2 +. (P2p_prng.Rng.float rng *. 0.7) in
  (* keep mu < gamma so thresholds are finite *)
  let us = P2p_prng.Rng.float rng *. 2.0 in
  let arrivals =
    List.filter_map
      (fun c ->
        if P2p_prng.Rng.bool rng then None
        else begin
          let cset = PS.of_index c in
          if PS.is_full ~k cset && not (Float.is_finite gamma) then None
          else Some (cset, P2p_prng.Rng.float rng *. 2.0)
        end)
      (List.init (1 lsl k) (fun i -> i))
  in
  let arrivals = if arrivals = [] then [ (PS.empty, 1.0) ] else arrivals in
  try Some (Params.make ~k ~us ~mu ~gamma ~arrivals) with Invalid_argument _ -> None

let test_threshold_delta_equivalence () =
  (* The paper's remark: (3) for all k iff Delta_S < 0 for all proper S. *)
  let rng = P2p_prng.Rng.of_seed 21 in
  let checked = ref 0 in
  while !checked < 300 do
    match random_params rng with
    | None -> ()
    | Some p ->
        incr checked;
        Alcotest.(check bool) "equivalence" true (Stability.equivalent_check p)
  done

let test_delta_binding_subset_is_one_club () =
  (* The binding constraint is attained at S = F - {k}: Delta there is the
     largest among S missing piece k. *)
  let p =
    Params.make ~k:3 ~us:0.4 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.empty, 1.0); (PS.singleton 0, 0.5) ]
  in
  let club = PS.of_list [ 1; 2 ] in
  (* S missing piece 0 *)
  let delta_club = Stability.delta p ~s:club in
  List.iter
    (fun s ->
      if (not (PS.mem 0 s)) && not (PS.equal s club) then
        Alcotest.(check bool) "club is worst case" true (Stability.delta p ~s <= delta_club))
    (PS.all_proper ~k:3)

let test_delta_full_raises () =
  let p = Params.make ~k:2 ~us:1.0 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 1.0) ] in
  Alcotest.(check bool) "full set rejected" true
    (try
       ignore (Stability.delta p ~s:(PS.full ~k:2));
       false
     with Invalid_argument _ -> true)

let test_stable_lambda_limit_is_boundary () =
  let p = Scenario.flash_crowd ~k:3 ~lambda:1.0 ~us:0.8 ~mu:1.0 ~gamma:2.0 in
  let limit = Stability.stable_lambda_limit p in
  (* scaling arrivals to just under/over the limit flips the verdict *)
  let scaled s = Params.with_arrivals p ~arrivals:[ (PS.empty, s) ] in
  Alcotest.check verdict "under limit" Stability.Positive_recurrent
    (Stability.classify (scaled (limit *. 0.99)));
  Alcotest.check verdict "over limit" Stability.Transient
    (Stability.classify (scaled (limit *. 1.01)))

let test_binding_piece_asymmetric () =
  (* Gifted copies of piece 1 make piece 2 the scarce one. *)
  let p =
    Params.make ~k:2 ~us:0.2 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.empty, 1.0); (PS.singleton 0, 1.0) ]
  in
  Alcotest.(check int) "piece 2 binds" 1 (Stability.binding_piece p)

let test_threshold_formula () =
  (* K=3, U_s=0.5, rho=1/2, arrivals: {} at 1, {1} at 0.4, {1,2} at 0.1.
     threshold(piece 1) = (0.5 + 0.4*(3+1-1) + 0.1*(3+1-2)) / (1/2) *)
  let p =
    Params.make ~k:3 ~us:0.5 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.empty, 1.0); (PS.singleton 0, 0.4); (PS.of_list [ 0; 1 ], 0.1) ]
  in
  closef "threshold piece 1" ((0.5 +. (0.4 *. 3.0) +. (0.1 *. 2.0)) /. 0.5)
    (Stability.threshold p ~piece:0);
  closef "threshold piece 3" (0.5 /. 0.5) (Stability.threshold p ~piece:2)

(* ---- Theorem 15 ---- *)

let test_coded_paper_numbers () =
  (* q = 64, K = 200: transient below 0.00507..., recurrent above 0.00516. *)
  closef ~tol:1e-4 "transient threshold" 0.0050794
    (Stability.Coded.transient_f_threshold ~q:64 ~k:200);
  closef ~tol:1e-4 "recurrent threshold (paper approx)" 0.0051601
    (Stability.Coded.recurrent_f_threshold_paper ~q:64 ~k:200);
  closef ~tol:1e-3 "exact close to approx"
    (Stability.Coded.recurrent_f_threshold_paper ~q:64 ~k:200)
    (Stability.Coded.recurrent_f_threshold_exact ~q:64 ~k:200)

let gift f = { Stability.Coded.q = 16; k = 8; us = 0.0; mu = 1.0; gamma = infinity;
               lambda0 = 1.0 -. f; lambda1 = f }

let test_coded_classify_regions () =
  Alcotest.check verdict "low f transient" Stability.Transient
    (Stability.Coded.classify (gift 0.05));
  Alcotest.check verdict "high f recurrent" Stability.Positive_recurrent
    (Stability.Coded.classify (gift 0.3));
  (* between the necessary and sufficient thresholds: borderline *)
  Alcotest.check verdict "gap borderline" Stability.Borderline
    (Stability.Coded.classify (gift 0.137))

let test_coded_no_gift_needs_seed () =
  let g = { (gift 0.0) with lambda0 = 1.0; lambda1 = 0.0 } in
  Alcotest.check verdict "no inflow" Stability.Transient (Stability.Coded.classify g);
  let with_seed = { g with us = 20.0 } in
  Alcotest.check verdict "big seed rescues" Stability.Positive_recurrent
    (Stability.Coded.classify with_seed)

let test_coded_gamma_le_mu_tilde () =
  let g = { (gift 0.2) with gamma = 0.5 } in
  (* gamma < mu_tilde = 15/16: second bullets apply; lambda1 > 0 spans. *)
  Alcotest.check verdict "dwell regime stable" Stability.Positive_recurrent
    (Stability.Coded.classify g)

let test_uncoded_contrast () =
  Alcotest.(check bool) "uncoded f=0.5 transient" true
    (Stability.Coded.uncoded_equivalent_is_transient ~k:8 ~f:0.5);
  Alcotest.(check bool) "uncoded f=0.99 transient" true
    (Stability.Coded.uncoded_equivalent_is_transient ~k:8 ~f:0.99)

let test_coded_threshold_ordering () =
  List.iter
    (fun (q, k) ->
      Alcotest.(check bool) "transient < recurrent threshold" true
        (Stability.Coded.transient_f_threshold ~q ~k
        < Stability.Coded.recurrent_f_threshold_exact ~q ~k))
    [ (2, 4); (16, 8); (64, 200); (256, 1000) ]

let test_coded_gap_shrinks_in_q () =
  let gap q =
    Stability.Coded.recurrent_f_threshold_exact ~q ~k:100
    -. Stability.Coded.transient_f_threshold ~q ~k:100
  in
  Alcotest.(check bool) "gap decreasing in q" true (gap 4 > gap 16 && gap 16 > gap 256)

let () =
  Alcotest.run "stability"
    [
      ( "theorem1",
        [
          Alcotest.test_case "example 1 region" `Quick test_example1_region;
          Alcotest.test_case "example 1 gamma<=mu" `Quick test_example1_gamma_le_mu_always_stable;
          Alcotest.test_case "example 1 no inflow" `Quick test_example1_gamma_le_mu_needs_inflow;
          Alcotest.test_case "example 2 region" `Quick test_example2_region;
          Alcotest.test_case "example 3 region" `Quick test_example3_region;
          Alcotest.test_case "example 3 borderline" `Quick test_example3_gamma_inf_symmetric_borderline;
          Alcotest.test_case "threshold/Delta equivalence" `Quick test_threshold_delta_equivalence;
          Alcotest.test_case "one-club binds" `Quick test_delta_binding_subset_is_one_club;
          Alcotest.test_case "delta full raises" `Quick test_delta_full_raises;
          Alcotest.test_case "stable lambda limit" `Quick test_stable_lambda_limit_is_boundary;
          Alcotest.test_case "binding piece" `Quick test_binding_piece_asymmetric;
          Alcotest.test_case "threshold formula" `Quick test_threshold_formula;
        ] );
      ( "theorem15",
        [
          Alcotest.test_case "paper numbers q=64 K=200" `Quick test_coded_paper_numbers;
          Alcotest.test_case "classify regions" `Quick test_coded_classify_regions;
          Alcotest.test_case "no gift needs seed" `Quick test_coded_no_gift_needs_seed;
          Alcotest.test_case "gamma <= mu_tilde" `Quick test_coded_gamma_le_mu_tilde;
          Alcotest.test_case "uncoded contrast" `Quick test_uncoded_contrast;
          Alcotest.test_case "threshold ordering" `Quick test_coded_threshold_ordering;
          Alcotest.test_case "gap shrinks in q" `Quick test_coded_gap_shrinks_in_q;
        ] );
    ]
