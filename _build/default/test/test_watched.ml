(* The empirically watched process vs the analytic mu = infinity chain. *)

open P2p_core

let test_analytic_pmf_normalised () =
  List.iter
    (fun k ->
      let pmf = Watched.analytic_jump_pmf ~k ~max_drop:12 in
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 pmf in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "k=%d sums to 1" k) 1.0 total;
      (* up-jump probability (K-1)/K *)
      Alcotest.(check (float 1e-12)) "up mass"
        (float_of_int (k - 1) /. float_of_int k)
        (List.assoc 1 pmf))
    [ 2; 3; 5 ]

let test_analytic_pmf_z_values () =
  (* K=3: P(Z=0) = (1/2)^2 = 1/4; jump 0 has mass (1/4)/3. *)
  let pmf = Watched.analytic_jump_pmf ~k:3 ~max_drop:10 in
  Alcotest.(check (float 1e-12)) "z=0" (0.25 /. 3.0) (List.assoc 0 pmf);
  (* P(Z=1) = C(2,1)(1/2)^3 = 1/4 *)
  Alcotest.(check (float 1e-12)) "z=1" (0.25 /. 3.0) (List.assoc (-1) pmf)

let test_total_variation_basics () =
  let pmf = [ (1, 0.5); (0, 0.5) ] in
  Alcotest.(check (float 1e-9)) "identical" 0.0
    (Watched.total_variation pmf [ (1, 50); (0, 50) ]);
  Alcotest.(check (float 1e-9)) "disjoint" 1.0
    (Watched.total_variation pmf [ (-5, 10) ]);
  Alcotest.(check (float 1e-9)) "empty counts" 1.0 (Watched.total_variation pmf [])

let test_convergence_in_mu () =
  (* the watched jump law approaches the coin-flip law as mu grows *)
  let pmf = Watched.analytic_jump_pmf ~k:3 ~max_drop:8 in
  let tv mu seed =
    let rng = P2p_prng.Rng.of_seed seed in
    let tr = Watched.extract ~min_top_n:4 ~rng ~k:3 ~lambda:1.0 ~mu ~horizon:400.0 () in
    Watched.total_variation pmf tr.top_layer_jumps
  in
  let coarse = tv 5.0 1 and fine = tv 100.0 1 in
  Alcotest.(check bool)
    (Printf.sprintf "TV falls: %.3f -> %.3f" coarse fine)
    true
    (fine < coarse /. 2.0 && fine < 0.08)

let test_fast_fraction_vanishes () =
  let frac mu =
    let rng = P2p_prng.Rng.of_seed 2 in
    (Watched.extract ~rng ~k:3 ~lambda:1.0 ~mu ~horizon:300.0 ()).fast_time_fraction
  in
  let slow = frac 5.0 and fast = frac 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "fast time fraction %.3f -> %.3f" slow fast)
    true
    (fast < 0.1 && fast < slow /. 3.0)

let test_visits_start_reasonable () =
  let rng = P2p_prng.Rng.of_seed 3 in
  let tr = Watched.extract ~rng ~k:3 ~lambda:1.0 ~mu:50.0 ~horizon:100.0 () in
  Alcotest.(check bool) "visits recorded" true (Array.length tr.visits > 10);
  Array.iter
    (fun (s : Watched.slow) ->
      Alcotest.(check bool) "valid slow state" true
        (s.n >= 0 && s.pieces >= 0 && s.pieces < 3))
    tr.visits

let () =
  Alcotest.run "watched"
    [
      ( "watched",
        [
          Alcotest.test_case "pmf normalised" `Quick test_analytic_pmf_normalised;
          Alcotest.test_case "pmf Z values" `Quick test_analytic_pmf_z_values;
          Alcotest.test_case "total variation" `Quick test_total_variation_basics;
          Alcotest.test_case "convergence in mu" `Slow test_convergence_in_mu;
          Alcotest.test_case "fast fraction vanishes" `Quick test_fast_fraction_vanishes;
          Alcotest.test_case "visits sane" `Quick test_visits_start_reasonable;
        ] );
    ]
