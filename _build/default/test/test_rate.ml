(* Transition rates: Eq. (1) closed form, general-policy rates, and the
   generator row enumeration. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let closef ?(tol = 1e-12) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let params ?(k = 2) ?(us = 1.0) ?(mu = 1.0) ?(gamma = 2.0) () =
  Params.make ~k ~us ~mu ~gamma ~arrivals:[ (PS.empty, 1.0) ]

(* Hand-computed instance of Eq. (1):
   K=2, U_s=1, mu=1; x = (x_{} = 2, x_{1} = 1, x_{2} = 1, x_{12} = 1), n=5.
   Gamma_{{},{1}} = (2/5)(U_s/2 + mu(x_{1}/1 + x_{12}/2)) = (2/5)(0.5+1.5) = 0.8 *)
let worked_state () =
  State.of_counts
    [ (PS.empty, 2); (PS.singleton 0, 1); (PS.singleton 1, 1); (PS.of_list [ 0; 1 ], 1) ]

let test_eq1_worked_example () =
  let p = params () in
  let s = worked_state () in
  closef "Gamma {}->{1}" 0.8 (Rate.gamma_c_i p s ~c:PS.empty ~piece:0);
  closef "Gamma {}->{2}" 0.8 (Rate.gamma_c_i p s ~c:PS.empty ~piece:1);
  (* Gamma_{{1},{1,2}} = (1/5)(U_s/1 + mu(x_{2}/1 + x_{12}/1)) = (1/5)(1+2) = 0.6 *)
  closef "Gamma {1}->{1,2}" 0.6 (Rate.gamma_c_i p s ~c:(PS.singleton 0) ~piece:1)

let test_eq1_zero_cases () =
  let p = params () in
  let s = worked_state () in
  closef "piece already held" 0.0 (Rate.gamma_c_i p s ~c:(PS.singleton 0) ~piece:0);
  closef "empty state" 0.0 (Rate.gamma_c_i p (State.create ()) ~c:PS.empty ~piece:0);
  closef "absent type" 0.0
    (Rate.gamma_c_i p (State.of_counts [ (PS.singleton 0, 1) ]) ~c:PS.empty ~piece:1)

let test_policy_rate_matches_eq1 () =
  (* Under random-useful selection the general-policy rate must equal the
     closed form, on randomized states. *)
  let rng = P2p_prng.Rng.of_seed 7 in
  let p = params ~k:3 ~us:0.7 ~mu:1.3 () in
  for _ = 1 to 200 do
    let entries =
      List.filter_map
        (fun c ->
          let count = P2p_prng.Rng.int_below rng 4 in
          if count > 0 then Some (PS.of_index c, count) else None)
        (List.init 8 (fun i -> i))
    in
    let s = State.of_counts entries in
    List.iter
      (fun c ->
        let cset = PS.of_index c in
        PS.iter
          (fun piece ->
            closef ~tol:1e-9 "policy = Eq.(1)"
              (Rate.gamma_c_i p s ~c:cset ~piece)
              (Rate.transfer_rate ~policy:Policy.random_useful p s ~c:cset ~piece))
          (PS.complement ~k:3 cset))
      (List.init 7 (fun i -> i))
  done

let test_transitions_complete () =
  let p = params () in
  let s = worked_state () in
  let ts = Rate.transitions p s in
  (* 1 arrival stream + 1 seed departure + transfers:
     {} can get piece 1, piece 2; {1} can get 2; {2} can get 1 -> 4 transfers *)
  Alcotest.(check int) "transition count" 6 (List.length ts);
  let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 ts in
  closef ~tol:1e-9 "total rate" (Rate.total_rate p s) total;
  (* seed departure rate = gamma * x_F = 2*1 *)
  let dep =
    List.fold_left
      (fun acc (t, r) -> match t with Rate.Seed_departure -> acc +. r | _ -> acc)
      0.0 ts
  in
  closef "departure rate" 2.0 dep

let test_transitions_no_departure_when_inf () =
  let p = params ~gamma:infinity () in
  (* gamma = inf means no full peers can exist in a valid state; build a
     state without them. *)
  let s = State.of_counts [ (PS.empty, 2); (PS.singleton 0, 1) ] in
  let ts = Rate.transitions p s in
  Alcotest.(check bool) "no seed departure"
    true
    (List.for_all (function Rate.Seed_departure, _ -> false | _ -> true) ts)

let test_apply_arrival () =
  let p = params () in
  let s = State.create () in
  Rate.apply p s (Rate.Arrival PS.empty);
  Alcotest.(check int) "added" 1 (State.count s PS.empty)

let test_apply_transfer () =
  let p = params () in
  let s = State.of_counts [ (PS.empty, 1) ] in
  Rate.apply p s (Rate.Transfer { downloader = PS.empty; piece = 0 });
  Alcotest.(check int) "moved" 1 (State.count s (PS.singleton 0));
  Alcotest.(check int) "n kept" 1 (State.n s)

let test_apply_completion_finite_gamma () =
  let p = params () in
  let s = State.of_counts [ (PS.singleton 0, 1) ] in
  Rate.apply p s (Rate.Transfer { downloader = PS.singleton 0; piece = 1 });
  Alcotest.(check int) "became seed" 1 (State.count s (PS.full ~k:2));
  Alcotest.(check int) "n kept" 1 (State.n s)

let test_apply_completion_immediate () =
  let p = params ~gamma:infinity () in
  let s = State.of_counts [ (PS.singleton 0, 1) ] in
  Rate.apply p s (Rate.Transfer { downloader = PS.singleton 0; piece = 1 });
  Alcotest.(check int) "departed" 0 (State.n s)

let test_apply_seed_departure () =
  let p = params () in
  let s = State.of_counts [ (PS.full ~k:2, 2) ] in
  Rate.apply p s Rate.Seed_departure;
  Alcotest.(check int) "one left" 1 (State.count s (PS.full ~k:2))

let test_apply_invalid () =
  let p = params () in
  let s = State.of_counts [ (PS.singleton 0, 1) ] in
  Alcotest.(check bool) "piece already held" true
    (try
       Rate.apply p s (Rate.Transfer { downloader = PS.singleton 0; piece = 0 });
       false
     with Invalid_argument _ -> true)

(* Flow conservation: summing Gamma_{C,C+i} over all C,i against the
   aggregate upload capacity. Each contact-with-useful-piece uploads, so
   total transfer rate <= U_s + mu * n. *)
let test_total_transfer_rate_bounded () =
  let rng = P2p_prng.Rng.of_seed 8 in
  let p = params ~k:3 ~us:0.5 ~mu:2.0 () in
  for _ = 1 to 100 do
    let entries =
      List.filter_map
        (fun c ->
          let count = P2p_prng.Rng.int_below rng 5 in
          if count > 0 then Some (PS.of_index c, count) else None)
        (List.init 8 (fun i -> i))
    in
    if entries <> [] then begin
      let s = State.of_counts entries in
      let transfer_total =
        List.fold_left
          (fun acc (t, r) -> match t with Rate.Transfer _ -> acc +. r | _ -> acc)
          0.0 (Rate.transitions p s)
      in
      let cap = p.us +. (p.mu *. float_of_int (State.n s)) in
      Alcotest.(check bool) "bounded by capacity" true (transfer_total <= cap +. 1e-9)
    end
  done

let test_rarest_first_rate_shifts_mass () =
  (* With rarest-first, a type-{} peer downloading from the seed must get
     the globally rarer piece with probability 1. *)
  let p = params ~k:2 ~us:1.0 ~mu:1.0 () in
  (* piece 2 (index 1) is rarer: 1 copy vs 3 copies of piece 1 *)
  let s = State.of_counts [ (PS.empty, 5); (PS.singleton 0, 3); (PS.singleton 1, 1) ] in
  let rate_rare =
    Rate.transfer_rate ~policy:Policy.rarest_first p s ~c:PS.empty ~piece:1
  in
  let rate_common =
    Rate.transfer_rate ~policy:Policy.rarest_first p s ~c:PS.empty ~piece:0
  in
  (* Seed always sends piece 2 to a type-{} peer; type-{1} peers can only
     send piece 1 (still useful, forced); type-{2} sends piece 2. *)
  let x_empty = 5.0 and n = 9.0 in
  closef "rare piece rate" (x_empty /. n *. (1.0 +. 1.0)) rate_rare;
  closef "common piece rate" (x_empty /. n *. 3.0) rate_common

let () =
  Alcotest.run "rate"
    [
      ( "eq1",
        [
          Alcotest.test_case "worked example" `Quick test_eq1_worked_example;
          Alcotest.test_case "zero cases" `Quick test_eq1_zero_cases;
          Alcotest.test_case "policy matches closed form" `Quick test_policy_rate_matches_eq1;
          Alcotest.test_case "rarest-first shifts mass" `Quick test_rarest_first_rate_shifts_mass;
        ] );
      ( "generator",
        [
          Alcotest.test_case "transitions complete" `Quick test_transitions_complete;
          Alcotest.test_case "no departure at gamma=inf" `Quick test_transitions_no_departure_when_inf;
          Alcotest.test_case "apply arrival" `Quick test_apply_arrival;
          Alcotest.test_case "apply transfer" `Quick test_apply_transfer;
          Alcotest.test_case "apply completion (finite)" `Quick test_apply_completion_finite_gamma;
          Alcotest.test_case "apply completion (inf)" `Quick test_apply_completion_immediate;
          Alcotest.test_case "apply seed departure" `Quick test_apply_seed_departure;
          Alcotest.test_case "apply invalid" `Quick test_apply_invalid;
          Alcotest.test_case "capacity bound" `Quick test_total_transfer_rate_bounded;
        ] );
    ]
