(* The dynamic adjacency substrate. *)

module A = P2p_graph.Adjacency
module Rng = P2p_prng.Rng

let test_basic_ops () =
  let g = A.create () in
  A.add_node g 1;
  A.add_node g 2;
  A.add_node g 3;
  A.add_edge g 1 2;
  A.add_edge g 2 3;
  Alcotest.(check int) "nodes" 3 (A.node_count g);
  Alcotest.(check int) "edges" 2 (A.edge_count g);
  Alcotest.(check bool) "mem edge" true (A.mem_edge g 1 2);
  Alcotest.(check bool) "symmetric" true (A.mem_edge g 2 1);
  Alcotest.(check bool) "absent edge" false (A.mem_edge g 1 3);
  Alcotest.(check int) "degree hub" 2 (A.degree g 2);
  Alcotest.(check bool) "valid" true (A.validate g)

let test_add_edge_idempotent () =
  let g = A.create () in
  A.add_node g 1;
  A.add_node g 2;
  A.add_edge g 1 2;
  A.add_edge g 1 2;
  A.add_edge g 2 1;
  Alcotest.(check int) "one edge" 1 (A.edge_count g);
  Alcotest.(check bool) "valid" true (A.validate g)

let test_self_loop_rejected () =
  let g = A.create () in
  A.add_node g 1;
  Alcotest.(check bool) "self loop" true
    (try
       A.add_edge g 1 1;
       false
     with Invalid_argument _ -> true)

let test_duplicate_node_rejected () =
  let g = A.create () in
  A.add_node g 1;
  Alcotest.(check bool) "duplicate" true
    (try
       A.add_node g 1;
       false
     with Invalid_argument _ -> true)

let test_remove_edge () =
  let g = A.create () in
  A.add_node g 1;
  A.add_node g 2;
  A.add_edge g 1 2;
  A.remove_edge g 2 1;
  Alcotest.(check int) "edges" 0 (A.edge_count g);
  A.remove_edge g 1 2;
  (* idempotent *)
  Alcotest.(check bool) "valid" true (A.validate g)

let test_remove_node_detaches () =
  let g = A.create () in
  List.iter (A.add_node g) [ 1; 2; 3; 4 ];
  A.add_edge g 1 2;
  A.add_edge g 1 3;
  A.add_edge g 3 4;
  A.remove_node g 1;
  Alcotest.(check int) "nodes" 3 (A.node_count g);
  Alcotest.(check int) "edges" 1 (A.edge_count g);
  Alcotest.(check int) "degree 2 dropped" 0 (A.degree g 2);
  Alcotest.(check bool) "valid" true (A.validate g)

let test_neighbors_and_sampling () =
  let rng = Rng.of_seed 1 in
  let g = A.create () in
  List.iter (A.add_node g) [ 0; 1; 2; 3 ];
  A.add_edge g 0 1;
  A.add_edge g 0 2;
  let ns = A.neighbors g 0 in
  Array.sort compare ns;
  Alcotest.(check (array int)) "neighbors" [| 1; 2 |] ns;
  Alcotest.(check (option int)) "isolated" None (A.sample_neighbor g 3 rng);
  let counts = Array.make 3 0 in
  for _ = 1 to 20_000 do
    match A.sample_neighbor g 0 rng with
    | Some id -> counts.(id) <- counts.(id) + 1
    | None -> Alcotest.fail "should have a neighbor"
  done;
  Alcotest.(check bool) "uniform sampling" true
    (Float.abs (float_of_int counts.(1) /. 20_000.0 -. 0.5) < 0.02)

let test_attach_uniform () =
  let rng = Rng.of_seed 2 in
  let g = A.create () in
  for i = 0 to 9 do
    A.add_node g i
  done;
  A.add_node g 100;
  A.attach_uniform g 100 ~degree:4 rng;
  Alcotest.(check int) "attached" 4 (A.degree g 100);
  Alcotest.(check bool) "no self edge" false (A.mem_edge g 100 100);
  Alcotest.(check bool) "valid" true (A.validate g);
  (* degree capped by available nodes *)
  let g2 = A.create () in
  A.add_node g2 0;
  A.add_node g2 1;
  A.attach_uniform g2 1 ~degree:10 rng;
  Alcotest.(check int) "capped" 1 (A.degree g2 1)

let test_components () =
  let g = A.create () in
  List.iter (A.add_node g) [ 1; 2; 3; 4; 5 ];
  A.add_edge g 1 2;
  A.add_edge g 4 5;
  Alcotest.(check (list int)) "components" [ 2; 2; 1 ] (A.connected_component_sizes g)

let test_mean_degree () =
  let g = A.create () in
  List.iter (A.add_node g) [ 1; 2; 3 ];
  A.add_edge g 1 2;
  Alcotest.(check (float 1e-9)) "mean degree" (2.0 /. 3.0) (A.mean_degree g)

let prop_random_churn_keeps_invariants =
  QCheck2.Test.make ~name:"random churn keeps invariants" ~count:60
    QCheck2.Gen.(list_size (int_range 10 200) (pair (int_range 0 30) (int_range 0 3)))
    (fun ops ->
      let g = A.create () in
      let rng = Rng.of_seed 3 in
      let alive = Hashtbl.create 32 in
      let next = ref 0 in
      List.iter
        (fun (node_hint, op) ->
          match op with
          | 0 ->
              let id = !next in
              incr next;
              A.add_node g id;
              Hashtbl.replace alive id ();
              A.attach_uniform g id ~degree:3 rng
          | 1 -> begin
              let ids = Hashtbl.fold (fun k () acc -> k :: acc) alive [] in
              match ids with
              | [] -> ()
              | ids ->
                  let victim = List.nth ids (node_hint mod List.length ids) in
                  A.remove_node g victim;
                  Hashtbl.remove alive victim
            end
          | 2 -> begin
              let ids = Hashtbl.fold (fun k () acc -> k :: acc) alive [] in
              match ids with
              | a :: b :: _ when a <> b -> A.add_edge g a b
              | _ -> ()
            end
          | _ -> begin
              let ids = Hashtbl.fold (fun k () acc -> k :: acc) alive [] in
              match ids with a :: b :: _ -> A.remove_edge g a b | _ -> ()
            end)
        ops;
      A.validate g && A.node_count g = Hashtbl.length alive)

let () =
  Alcotest.run "graph"
    [
      ( "adjacency",
        [
          Alcotest.test_case "basic" `Quick test_basic_ops;
          Alcotest.test_case "idempotent edges" `Quick test_add_edge_idempotent;
          Alcotest.test_case "self loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "duplicate node" `Quick test_duplicate_node_rejected;
          Alcotest.test_case "remove edge" `Quick test_remove_edge;
          Alcotest.test_case "remove node" `Quick test_remove_node_detaches;
          Alcotest.test_case "neighbors/sampling" `Quick test_neighbors_and_sampling;
          Alcotest.test_case "attach uniform" `Quick test_attach_uniform;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "mean degree" `Quick test_mean_degree;
          QCheck_alcotest.to_alcotest prop_random_churn_keeps_invariants;
        ] );
    ]
