(* Finite fields and linear algebra over them. *)

module Field = P2p_gf.Field
module Mat = P2p_gf.Mat
module Rng = P2p_prng.Rng

let field_sizes = [ 2; 3; 5; 7; 4; 8; 16; 64; 9; 27; 25 ]

let test_is_prime () =
  List.iter
    (fun (n, expected) -> Alcotest.(check bool) (string_of_int n) expected (Field.is_prime n))
    [ (1, false); (2, true); (3, true); (4, false); (17, true); (91, false); (97, true) ]

let test_gf_rejects_non_prime_power () =
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "q=%d rejected" q)
        true
        (try
           ignore (Field.gf q);
           false
         with Invalid_argument _ -> true))
    [ 1; 6; 12; 100 ]

let test_field_metadata () =
  let f = Field.gf 64 in
  Alcotest.(check int) "q" 64 f.q;
  Alcotest.(check int) "p" 2 f.p;
  Alcotest.(check int) "m" 6 f.m;
  let g = Field.gf 27 in
  Alcotest.(check int) "27 = 3^3" 3 g.m

(* Exhaustive field-axiom checks on every element pair for small q, and
   random sampling for the larger ones. *)
let check_axioms (f : Field.t) pairs =
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) "commutative add" (f.add a b) (f.add b a);
      Alcotest.(check int) "commutative mul" (f.mul a b) (f.mul b a);
      Alcotest.(check int) "add zero" a (f.add a 0);
      Alcotest.(check int) "mul one" a (f.mul a 1);
      Alcotest.(check int) "mul zero" 0 (f.mul a 0);
      Alcotest.(check int) "sub self" 0 (f.sub a a);
      Alcotest.(check int) "add neg" 0 (f.add a (f.neg a));
      if b <> 0 then begin
        Alcotest.(check int) "div then mul" a (f.mul (f.div a b) b);
        Alcotest.(check int) "inv" 1 (f.mul b (f.inv b))
      end)
    pairs

let test_axioms_exhaustive_small () =
  List.iter
    (fun q ->
      let f = Field.gf q in
      let pairs = List.concat_map (fun a -> List.init q (fun b -> (a, b))) (List.init q (fun a -> a)) in
      check_axioms f pairs)
    [ 2; 3; 4; 5; 8; 9 ]

let test_axioms_random_large () =
  let rng = Rng.of_seed 1 in
  List.iter
    (fun q ->
      let f = Field.gf q in
      let pairs = List.init 300 (fun _ -> (Rng.int_below rng q, Rng.int_below rng q)) in
      check_axioms f pairs)
    [ 16; 64; 27; 25; 49 ]

let test_associativity_distributivity () =
  let rng = Rng.of_seed 2 in
  List.iter
    (fun q ->
      let f = Field.gf q in
      for _ = 1 to 200 do
        let a = Rng.int_below rng q and b = Rng.int_below rng q and c = Rng.int_below rng q in
        Alcotest.(check int) "assoc add" (f.add a (f.add b c)) (f.add (f.add a b) c);
        Alcotest.(check int) "assoc mul" (f.mul a (f.mul b c)) (f.mul (f.mul a b) c);
        Alcotest.(check int) "distributive" (f.mul a (f.add b c)) (f.add (f.mul a b) (f.mul a c))
      done)
    field_sizes

let test_inv_zero_raises () =
  let f = Field.gf 8 in
  Alcotest.(check bool) "div by zero" true
    (try
       ignore (f.inv 0);
       false
     with Division_by_zero -> true)

let test_pow () =
  let f = Field.gf 7 in
  Alcotest.(check int) "3^0" 1 (Field.pow f 3 0);
  Alcotest.(check int) "3^2 mod 7" 2 (Field.pow f 3 2);
  (* Fermat: a^(q-1) = 1 for a != 0. *)
  List.iter
    (fun q ->
      let f = Field.gf q in
      for a = 1 to q - 1 do
        Alcotest.(check int) "fermat" 1 (Field.pow f a (q - 1))
      done)
    [ 5; 8; 9; 16 ]

(* ---- matrices ---- *)

let test_rank_identity_like () =
  let f = Field.gf 5 in
  let rows = [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |] in
  Alcotest.(check int) "full rank" 3 (Mat.rank f rows)

let test_rank_dependent_rows () =
  let f = Field.gf 5 in
  (* row3 = row1 + 2*row2 *)
  let rows = [| [| 1; 2; 3 |]; [| 0; 1; 1 |]; [| 1; 4; 0 |] |] in
  Alcotest.(check int) "rank 2" 2 (Mat.rank f rows)

let test_rank_zero_matrix () =
  let f = Field.gf 2 in
  Alcotest.(check int) "zero rank" 0 (Mat.rank f [| [| 0; 0 |]; [| 0; 0 |] |])

let test_row_reduce_canonical () =
  let f = Field.gf 7 in
  let rows = [| [| 2; 4; 6 |]; [| 1; 2; 3 |]; [| 0; 0; 5 |] |] in
  let basis = Mat.row_reduce f rows in
  Alcotest.(check int) "rank 2 basis" 2 (Array.length basis);
  (* pivots normalised to 1 and echelon-ordered *)
  Array.iter
    (fun row ->
      let rec first_nonzero i = if row.(i) <> 0 then row.(i) else first_nonzero (i + 1) in
      Alcotest.(check int) "pivot is 1" 1 (first_nonzero 0))
    basis

let test_in_row_space () =
  let f = Field.gf 3 in
  let basis = Mat.row_reduce f [| [| 1; 0; 2 |]; [| 0; 1; 1 |] |] in
  Alcotest.(check bool) "combination inside" true
    (Mat.in_row_space f ~basis (Mat.vec_add f (Mat.vec_scale f 2 [| 1; 0; 2 |]) [| 0; 1; 1 |]));
  Alcotest.(check bool) "outside vector" false (Mat.in_row_space f ~basis [| 0; 0; 1 |]);
  Alcotest.(check bool) "zero inside" true (Mat.in_row_space f ~basis [| 0; 0; 0 |])

let prop_rank_invariant_under_row_ops =
  QCheck2.Test.make ~name:"rank invariant under row swap/scale" ~count:200
    QCheck2.Gen.(
      pair (int_range 0 3)
        (array_size (return 4) (array_size (return 4) (int_range 0 6))))
    (fun (scale_idx, m) ->
      let f = Field.gf 7 in
      let m = Array.map (Array.map (fun x -> x mod 7)) m in
      let r1 = Mat.rank f m in
      let m' = Array.map Array.copy m in
      (* swap rows 0 and 1, scale row scale_idx by 3 *)
      let tmp = m'.(0) in
      m'.(0) <- m'.(1);
      m'.(1) <- tmp;
      m'.(scale_idx) <- Mat.vec_scale f 3 m'.(scale_idx);
      Mat.rank f m' = r1)

let prop_reduce_against_membership =
  QCheck2.Test.make ~name:"reduce_against zero iff member" ~count:300
    QCheck2.Gen.(array_size (return 3) (array_size (return 4) (int_range 0 4)))
    (fun rows ->
      let f = Field.gf 5 in
      let rows = Array.map (Array.map (fun x -> x mod 5)) rows in
      let basis = Mat.row_reduce f rows in
      (* every original row reduces to zero against the basis *)
      Array.for_all (fun row -> Mat.in_row_space f ~basis row) rows)

let test_random_vec_range () =
  let rng = Rng.of_seed 3 in
  let f = Field.gf 16 in
  for _ = 1 to 100 do
    let v = Mat.random_vec f (Rng.int_below rng) 8 in
    Array.iter (fun x -> Alcotest.(check bool) "in field" true (x >= 0 && x < 16)) v
  done

let () =
  Alcotest.run "gf"
    [
      ( "field",
        [
          Alcotest.test_case "is_prime" `Quick test_is_prime;
          Alcotest.test_case "non prime power" `Quick test_gf_rejects_non_prime_power;
          Alcotest.test_case "metadata" `Quick test_field_metadata;
          Alcotest.test_case "axioms exhaustive" `Quick test_axioms_exhaustive_small;
          Alcotest.test_case "axioms random" `Quick test_axioms_random_large;
          Alcotest.test_case "assoc/distrib" `Quick test_associativity_distributivity;
          Alcotest.test_case "inv zero" `Quick test_inv_zero_raises;
          Alcotest.test_case "pow / Fermat" `Quick test_pow;
        ] );
      ( "mat",
        [
          Alcotest.test_case "rank identity" `Quick test_rank_identity_like;
          Alcotest.test_case "rank dependent" `Quick test_rank_dependent_rows;
          Alcotest.test_case "rank zero" `Quick test_rank_zero_matrix;
          Alcotest.test_case "row reduce canonical" `Quick test_row_reduce_canonical;
          Alcotest.test_case "in row space" `Quick test_in_row_space;
          Alcotest.test_case "random vec" `Quick test_random_vec_range;
          QCheck_alcotest.to_alcotest prop_rank_invariant_under_row_ops;
          QCheck_alcotest.to_alcotest prop_reduce_against_membership;
        ] );
    ]
