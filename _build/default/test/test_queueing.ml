(* Queueing substrate: M/M/1 and M/GI/∞ against closed forms, plus the
   appendix bounds (Kingman / Lemma 21) verified empirically. *)

module Rng = P2p_prng.Rng
module Mm1 = P2p_queueing.Mm1
module Mg_inf = P2p_queueing.Mg_inf
module Cp = P2p_queueing.Compound_poisson
module Bounds = P2p_queueing.Bounds

let close ?(tol = 0.08) name expected actual =
  let rel = Float.abs (actual -. expected) /. Float.max 0.05 (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.4g got %.4g" name expected actual)
    true (rel < tol)

let test_mm1_mean_queue () =
  let rng = Rng.of_seed 1 in
  let r = Mm1.simulate ~rng ~arrival_rate:0.5 ~service_rate:1.0 ~horizon:200_000.0 in
  close "mean queue rho=0.5" (Mm1.stationary_mean_queue ~arrival_rate:0.5 ~service_rate:1.0)
    r.time_avg_queue;
  close "utilisation" 0.5 r.utilisation

let test_mm1_heavier () =
  let rng = Rng.of_seed 2 in
  let r = Mm1.simulate ~rng ~arrival_rate:0.8 ~service_rate:1.0 ~horizon:400_000.0 in
  close ~tol:0.1 "mean queue rho=0.8" 4.0 r.time_avg_queue

let test_mm1_unstable_raises () =
  Alcotest.(check bool) "rho >= 1 rejected" true
    (try
       ignore (Mm1.stationary_mean_queue ~arrival_rate:2.0 ~service_rate:1.0);
       false
     with Invalid_argument _ -> true)

let test_service_means () =
  close ~tol:1e-9 "exp" 0.5 (Mg_inf.mean_service (Mg_inf.Exponential 2.0));
  close ~tol:1e-9 "erlang" 1.5 (Mg_inf.mean_service (Mg_inf.Erlang (3, 2.0)));
  close ~tol:1e-9 "hypoexp" 1.75 (Mg_inf.mean_service (Mg_inf.Hypoexponential [ 1.0; 2.0; 4.0 ]));
  close ~tol:1e-9 "det" 3.0 (Mg_inf.mean_service (Mg_inf.Deterministic 3.0))

let test_service_sampling () =
  let rng = Rng.of_seed 3 in
  List.iter
    (fun service ->
      let w = P2p_stats.Welford.create () in
      for _ = 1 to 50_000 do
        P2p_stats.Welford.add w (Mg_inf.sample_service rng service)
      done;
      close
        (Printf.sprintf "sampled mean (%g)" (Mg_inf.mean_service service))
        (Mg_inf.mean_service service) (P2p_stats.Welford.mean w))
    [
      Mg_inf.Exponential 2.0;
      Mg_inf.Erlang (4, 1.0);
      Mg_inf.Hypoexponential [ 0.5; 1.0 ];
      Mg_inf.Deterministic 1.2;
    ]

let test_mg_inf_stationary_mean () =
  let rng = Rng.of_seed 4 in
  List.iter
    (fun service ->
      let r = Mg_inf.simulate ~rng ~arrival_rate:2.0 ~service ~horizon:30_000.0 in
      close
        (Printf.sprintf "M/GI/inf mean (%g)" (Mg_inf.mean_service service))
        (Mg_inf.stationary_mean ~arrival_rate:2.0 ~service)
        r.time_avg_customers)
    [ Mg_inf.Exponential 1.0; Mg_inf.Erlang (3, 3.0); Mg_inf.Deterministic 0.7 ]

(* The exact service law of Lemma 5: K exponential download stages plus one
   exponential dwell stage. *)
let test_mg_inf_paper_service () =
  let rng = Rng.of_seed 5 in
  let k = 4 and mu = 1.0 and gamma = 2.0 in
  let service = Mg_inf.Hypoexponential (List.init k (fun _ -> mu) @ [ gamma ]) in
  close ~tol:1e-9 "mean K/mu + 1/gamma" 4.5 (Mg_inf.mean_service service);
  let r = Mg_inf.simulate ~rng ~arrival_rate:1.0 ~service ~horizon:20_000.0 in
  close "population Poisson mean" 4.5 r.time_avg_customers

let test_mg_inf_conservation () =
  let rng = Rng.of_seed 6 in
  let r = Mg_inf.simulate ~rng ~arrival_rate:3.0 ~service:(Mg_inf.Exponential 1.0) ~horizon:1000.0 in
  Alcotest.(check int) "arrivals = departures + in system" r.arrivals
    (r.departures + r.final_customers)

let test_mg_inf_stationary_is_poisson () =
  (* Stationary population is Poisson(lambda * E[S]): variance should also
     match the mean (a distribution-level check beyond the first moment). *)
  let rng = Rng.of_seed 7 in
  let lambda = 1.5 and service = Mg_inf.Erlang (2, 2.0) in
  let mean = Mg_inf.stationary_mean ~arrival_rate:lambda ~service in
  (* Sample the population at widely separated epochs via independent
     warm runs. *)
  let w = P2p_stats.Welford.create () in
  for _ = 1 to 400 do
    let r = Mg_inf.simulate ~rng ~arrival_rate:lambda ~service ~horizon:30.0 in
    P2p_stats.Welford.add w (float_of_int r.final_customers)
  done;
  close ~tol:0.12 "Poisson mean" mean (P2p_stats.Welford.mean w);
  close ~tol:0.2 "Poisson variance = mean" mean (P2p_stats.Welford.variance w);
  Alcotest.(check bool) "tail prob sane" true
    (Bounds.poisson_tail ~mean ~at_least:(int_of_float mean + 2) < 0.5)

let test_kingman_bound_holds () =
  (* Empirical crossing frequency must not exceed the Kingman bound. *)
  let rng = Rng.of_seed 8 in
  let batch = Cp.constant_batch 1.0 in
  let arrival_rate = 1.0 and b = 30.0 and slope = 1.5 in
  let bound = Cp.kingman_bound ~arrival_rate ~batch ~b ~slope in
  let crossings = ref 0 in
  let reps = 400 in
  for _ = 1 to reps do
    let r = Cp.simulate_crossing ~rng ~arrival_rate ~batch ~horizon:2000.0 ~b ~slope in
    if r.crossed then incr crossings
  done;
  let freq = float_of_int !crossings /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "crossing freq %.4f <= bound %.4f" freq bound)
    true
    (freq <= bound +. 0.02)

let test_kingman_vacuous_when_subcritical () =
  let batch = Cp.constant_batch 1.0 in
  Alcotest.(check (float 0.0)) "slope below drift: bound 1" 1.0
    (Cp.kingman_bound ~arrival_rate:2.0 ~batch ~b:10.0 ~slope:1.0)

let test_kingman_decreases_in_b () =
  let batch = Cp.geometric_total_progeny ~mean_offspring:0.5 in
  let f b = Cp.kingman_bound ~arrival_rate:1.0 ~batch ~b ~slope:3.0 in
  Alcotest.(check bool) "monotone in B" true (f 10.0 > f 20.0 && f 20.0 > f 40.0)

let test_progeny_batch_moments () =
  let rng = Rng.of_seed 9 in
  let m = 0.4 in
  let batch = Cp.geometric_total_progeny ~mean_offspring:m in
  close ~tol:1e-9 "mean 1/(1-m)" (1.0 /. (1.0 -. m)) batch.mean;
  let w = P2p_stats.Welford.create () in
  for _ = 1 to 100_000 do
    P2p_stats.Welford.add w (batch.sample rng)
  done;
  close "sampled progeny mean" batch.mean (P2p_stats.Welford.mean w);
  let second = P2p_stats.Welford.variance w +. (P2p_stats.Welford.mean w ** 2.0) in
  close ~tol:0.1 "sampled second moment" batch.mean_square second

let test_lemma21_bound_holds () =
  (* P{M_t >= B + eps t for some t} <= e^{lambda(m+1)} 2^-B / (1 - 2^-eps). *)
  let lambda = 1.0 and service = Mg_inf.Exponential 1.0 in
  let m = Mg_inf.mean_service service in
  let b = 15.0 and eps = 1.0 in
  let bound = Bounds.mg_inf_maximal_bound ~arrival_rate:lambda ~mean_service:m ~b ~eps in
  let rng = Rng.of_seed 10 in
  let crossings = ref 0 in
  let reps = 300 in
  for _ = 1 to reps do
    if
      Mg_inf.exceedance_ever ~rng ~arrival_rate:lambda ~service ~horizon:500.0
        ~boundary:(fun t -> b +. (eps *. t))
    then incr crossings
  done;
  let freq = float_of_int !crossings /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "freq %.4f <= bound %.4f" freq bound)
    true (freq <= bound +. 0.02)

let test_poisson_tail_values () =
  close ~tol:1e-6 "P(X>=0)=1" 1.0 (Bounds.poisson_tail ~mean:3.0 ~at_least:0);
  close ~tol:1e-6 "P(X>=1)=1-e^-3" (1.0 -. exp (-3.0)) (Bounds.poisson_tail ~mean:3.0 ~at_least:1);
  close ~tol:1e-6 "P(X>=2)" (1.0 -. (exp (-3.0) *. 4.0)) (Bounds.poisson_tail ~mean:3.0 ~at_least:2)

let () =
  Alcotest.run "queueing"
    [
      ( "mm1",
        [
          Alcotest.test_case "mean queue" `Quick test_mm1_mean_queue;
          Alcotest.test_case "heavier load" `Quick test_mm1_heavier;
          Alcotest.test_case "unstable raises" `Quick test_mm1_unstable_raises;
        ] );
      ( "mg_inf",
        [
          Alcotest.test_case "service means" `Quick test_service_means;
          Alcotest.test_case "service sampling" `Quick test_service_sampling;
          Alcotest.test_case "stationary mean" `Quick test_mg_inf_stationary_mean;
          Alcotest.test_case "paper service law" `Quick test_mg_inf_paper_service;
          Alcotest.test_case "conservation" `Quick test_mg_inf_conservation;
          Alcotest.test_case "stationary Poisson" `Quick test_mg_inf_stationary_is_poisson;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "kingman holds" `Quick test_kingman_bound_holds;
          Alcotest.test_case "kingman vacuous" `Quick test_kingman_vacuous_when_subcritical;
          Alcotest.test_case "kingman monotone" `Quick test_kingman_decreases_in_b;
          Alcotest.test_case "progeny batch moments" `Quick test_progeny_batch_moments;
          Alcotest.test_case "lemma 21 holds" `Quick test_lemma21_bound_holds;
          Alcotest.test_case "poisson tail" `Quick test_poisson_tail_values;
        ] );
    ]
