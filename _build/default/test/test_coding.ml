(* Subspace tracking for network coding. *)

module Field = P2p_gf.Field
module Mat = P2p_gf.Mat
module Subspace = P2p_coding.Subspace
module Rng = P2p_prng.Rng

let f16 = Field.gf 16

let test_empty_subspace () =
  let s = Subspace.create f16 ~k:5 in
  Alcotest.(check int) "dim 0" 0 (Subspace.dim s);
  Alcotest.(check bool) "not full" false (Subspace.is_full s);
  Alcotest.(check bool) "contains zero" true (Subspace.contains s [| 0; 0; 0; 0; 0 |])

let test_insert_useful () =
  let s = Subspace.create f16 ~k:3 in
  Alcotest.(check bool) "first insert useful" true (Subspace.insert s [| 1; 2; 3 |]);
  Alcotest.(check int) "dim 1" 1 (Subspace.dim s);
  Alcotest.(check bool) "scalar multiple useless" false (Subspace.insert s [| 2; 4; 6 |]);
  Alcotest.(check bool) "independent useful" true (Subspace.insert s [| 0; 1; 0 |]);
  Alcotest.(check int) "dim 2" 2 (Subspace.dim s)

let test_insert_zero_useless () =
  let s = Subspace.create f16 ~k:3 in
  Alcotest.(check bool) "zero never useful" false (Subspace.insert s [| 0; 0; 0 |])

let test_full_decode () =
  let s = Subspace.create f16 ~k:3 in
  ignore (Subspace.insert s [| 1; 0; 0 |]);
  ignore (Subspace.insert s [| 1; 1; 0 |]);
  Alcotest.(check bool) "not yet" false (Subspace.is_full s);
  ignore (Subspace.insert s [| 7; 3; 9 |]);
  Alcotest.(check bool) "full" true (Subspace.is_full s);
  Alcotest.(check bool) "everything inside" true (Subspace.contains s [| 5; 11; 2 |])

let test_subspace_leq () =
  let a = Subspace.of_vectors f16 ~k:3 [ [| 1; 0; 0 |] ] in
  let b = Subspace.of_vectors f16 ~k:3 [ [| 1; 0; 0 |]; [| 0; 1; 0 |] ] in
  Alcotest.(check bool) "a <= b" true (Subspace.subspace_leq a b);
  Alcotest.(check bool) "b not <= a" false (Subspace.subspace_leq b a);
  Alcotest.(check bool) "b can help a" true (Subspace.can_help ~uploader:b ~downloader:a);
  Alcotest.(check bool) "a cannot help b" false (Subspace.can_help ~uploader:a ~downloader:b)

let test_copy_isolated () =
  let a = Subspace.of_vectors f16 ~k:3 [ [| 1; 0; 0 |] ] in
  let b = Subspace.copy a in
  ignore (Subspace.insert b [| 0; 1; 0 |]);
  Alcotest.(check int) "original untouched" 1 (Subspace.dim a);
  Alcotest.(check int) "copy grew" 2 (Subspace.dim b)

let test_random_member_inside () =
  let rng = Rng.of_seed 4 in
  let s = Subspace.of_vectors f16 ~k:4 [ [| 1; 2; 0; 0 |]; [| 0; 0; 3; 1 |] ] in
  for _ = 1 to 500 do
    Alcotest.(check bool) "member inside" true (Subspace.contains s (Subspace.random_member s rng))
  done

let test_intersection_dim () =
  let a = Subspace.of_vectors f16 ~k:3 [ [| 1; 0; 0 |]; [| 0; 1; 0 |] ] in
  let b = Subspace.of_vectors f16 ~k:3 [ [| 0; 1; 0 |]; [| 0; 0; 1 |] ] in
  Alcotest.(check int) "intersection is span{e2}" 1 (Subspace.intersection_dim a b);
  let c = Subspace.of_vectors f16 ~k:3 [ [| 0; 0; 1 |] ] in
  Alcotest.(check int) "disjoint" 0 (Subspace.intersection_dim a c)

let test_useful_probability_formula () =
  (* P(useful) = 1 - q^(dim(A∩B) - dim B). *)
  let a = Subspace.of_vectors f16 ~k:3 [ [| 1; 0; 0 |] ] in
  let b = Subspace.of_vectors f16 ~k:3 [ [| 1; 0; 0 |]; [| 0; 1; 0 |] ] in
  let expected = 1.0 -. (16.0 ** float_of_int (1 - 2)) in
  Alcotest.(check (float 1e-12)) "formula" expected
    (Subspace.useful_probability ~uploader:b ~downloader:a)

let test_useful_probability_monte_carlo () =
  let rng = Rng.of_seed 5 in
  let f = Field.gf 4 in
  let a = Subspace.of_vectors f ~k:4 [ [| 1; 0; 0; 0 |]; [| 0; 1; 0; 0 |] ] in
  let b =
    Subspace.of_vectors f ~k:4 [ [| 0; 1; 0; 0 |]; [| 0; 0; 1; 0 |]; [| 0; 0; 0; 1 |] ]
  in
  let p = Subspace.useful_probability ~uploader:b ~downloader:a in
  let hits = ref 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let v = Subspace.random_member b rng in
    let trial = Subspace.copy a in
    if Subspace.insert trial v then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.4f vs formula %.4f" freq p)
    true
    (Float.abs (freq -. p) < 0.01)

let test_cannot_help_probability_zero () =
  let a = Subspace.of_vectors f16 ~k:3 [ [| 1; 0; 0 |]; [| 0; 1; 0 |] ] in
  let sub = Subspace.of_vectors f16 ~k:3 [ [| 1; 1; 0 |] ] in
  Alcotest.(check (float 1e-12)) "uploader inside downloader" 0.0
    (Subspace.useful_probability ~uploader:sub ~downloader:a)

let test_wrong_length_raises () =
  let s = Subspace.create f16 ~k:3 in
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Subspace.insert s [| 1; 2 |]);
       false
     with Invalid_argument _ -> true)

let prop_dim_bounded =
  QCheck2.Test.make ~name:"dim <= min(#inserted, k)" ~count:300
    QCheck2.Gen.(list_size (int_range 0 8) (array_size (return 4) (int_range 0 4)))
    (fun vectors ->
      let f = Field.gf 5 in
      let vectors = List.map (Array.map (fun x -> x mod 5)) vectors in
      let s = Subspace.of_vectors f ~k:4 vectors in
      Subspace.dim s <= Int.min (List.length vectors) 4)

let prop_insert_iff_not_contained =
  QCheck2.Test.make ~name:"insert succeeds iff vector outside" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 5) (array_size (return 4) (int_range 0 2)))
        (array_size (return 4) (int_range 0 2)))
    (fun (vectors, v) ->
      let f = Field.gf 3 in
      let vectors = List.map (Array.map (fun x -> x mod 3)) vectors in
      let v = Array.map (fun x -> x mod 3) v in
      let s = Subspace.of_vectors f ~k:4 vectors in
      let was_inside = Subspace.contains s v in
      let useful = Subspace.insert s v in
      useful = not was_inside)

let () =
  Alcotest.run "coding"
    [
      ( "subspace",
        [
          Alcotest.test_case "empty" `Quick test_empty_subspace;
          Alcotest.test_case "insert useful" `Quick test_insert_useful;
          Alcotest.test_case "zero useless" `Quick test_insert_zero_useless;
          Alcotest.test_case "full decode" `Quick test_full_decode;
          Alcotest.test_case "leq / can_help" `Quick test_subspace_leq;
          Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
          Alcotest.test_case "random member inside" `Quick test_random_member_inside;
          Alcotest.test_case "intersection dim" `Quick test_intersection_dim;
          Alcotest.test_case "useful probability formula" `Quick test_useful_probability_formula;
          Alcotest.test_case "useful probability MC" `Quick test_useful_probability_monte_carlo;
          Alcotest.test_case "cannot help" `Quick test_cannot_help_probability_zero;
          Alcotest.test_case "wrong length" `Quick test_wrong_length_raises;
          QCheck_alcotest.to_alcotest prop_dim_bounded;
          QCheck_alcotest.to_alcotest prop_insert_iff_not_contained;
        ] );
    ]
