(* Cross-engine conformance: the simulators, the generator, the fluid
   limit, and the exact stationary solver must all describe the same
   Markov chain.

   These tests are the repository's strongest correctness net: they take
   the *same* parameterisation through independent code paths and require
   quantitative agreement. *)

open P2p_core
module PS = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng

(* ---- 1. empirical first-jump distribution vs the generator row ---- *)

(* From a frozen state, the probability that the first state change is a
   given transition equals rate/total_rate.  We measure it by running many
   very short simulations from that state and diffing states. *)
let test_first_jump_distribution () =
  let p =
    Params.make ~k:2 ~us:0.7 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.empty, 0.6); (PS.singleton 0, 0.4) ]
  in
  let initial =
    [ (PS.empty, 4); (PS.singleton 0, 2); (PS.singleton 1, 1); (PS.full ~k:2, 2) ]
  in
  let state0 = State.of_counts initial in
  let transitions = Rate.transitions p state0 in
  let total_rate = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 transitions in
  (* key the expected distribution by the resulting state fingerprint *)
  let fingerprint st =
    String.concat ";"
      (List.map (fun (c, n) -> Printf.sprintf "%d:%d" (PS.to_index c) n) (State.to_alist st))
  in
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (tr, rate) ->
      let next = State.copy state0 in
      Rate.apply p next tr;
      let key = fingerprint next in
      Hashtbl.replace expected key
        (rate /. total_rate +. Option.value (Hashtbl.find_opt expected key) ~default:0.0))
    transitions;
  (* simulate the first jump many times *)
  let observed = Hashtbl.create 16 in
  let reps = 60_000 in
  let rng = Rng.of_seed 1 in
  let config = { (Sim_markov.default_config p) with initial } in
  for _ = 1 to reps do
    (* run until the first state change using the observer *)
    let first = ref None in
    let observer ~time:_ ~state =
      if Option.is_none !first then first := Some (fingerprint state)
    in
    (* a long-enough horizon that a change almost surely happens *)
    ignore (Sim_markov.run ~observer ~rng config ~horizon:(60.0 /. total_rate));
    match !first with
    | Some key ->
        Hashtbl.replace observed key
          (1 + Option.value (Hashtbl.find_opt observed key) ~default:0)
    | None -> ()
  done;
  let seen = Hashtbl.fold (fun _ c acc -> acc + c) observed 0 in
  Alcotest.(check bool) "almost all runs jumped" true (seen > reps * 99 / 100);
  Hashtbl.iter
    (fun key prob ->
      let freq =
        float_of_int (Option.value (Hashtbl.find_opt observed key) ~default:0)
        /. float_of_int seen
      in
      Alcotest.(check bool)
        (Printf.sprintf "jump to %s: theory %.4f empirical %.4f" key prob freq)
        true
        (Float.abs (prob -. freq) < 0.01))
    expected

(* ---- 2. four engines, one stationary mean ---- *)

let test_four_engines_agree () =
  let p = Params.make ~k:2 ~us:0.9 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.5) ] in
  (* exact *)
  let chain = Truncated.build p ~n_max:22 in
  let exact = Truncated.mean_population chain (Truncated.stationary chain) in
  (* aggregate simulation *)
  let markov =
    (fst (Sim_markov.run_seeded ~seed:2 (Sim_markov.default_config p) ~horizon:25_000.0))
      .time_avg_n
  in
  (* per-peer simulation *)
  let agent =
    (fst (Sim_agent.run_seeded ~seed:3 (Sim_agent.default_config p) ~horizon:25_000.0))
      .time_avg_n
  in
  (* network simulation at degree = inf *)
  let network =
    (fst (Sim_network.run_seeded ~seed:4 (Sim_network.default_config p) ~horizon:25_000.0))
      .time_avg_n
  in
  let check name value =
    Alcotest.(check bool)
      (Printf.sprintf "%s %.3f vs exact %.3f" name value exact)
      true
      (Float.abs (value -. exact) /. exact < 0.08)
  in
  check "sim_markov" markov;
  check "sim_agent" agent;
  check "sim_network" network

(* ---- 3. fluid drift equals generator mean drift on random states ---- *)

let test_fluid_equals_generator_everywhere () =
  let rng = Rng.of_seed 5 in
  let p =
    Params.make ~k:3 ~us:0.5 ~mu:1.3 ~gamma:1.8
      ~arrivals:[ (PS.empty, 0.7); (PS.of_list [ 0; 1 ], 0.2) ]
  in
  for _ = 1 to 40 do
    let entries =
      List.filter_map
        (fun c ->
          let count = Rng.int_below rng 6 in
          if count > 0 then Some (PS.of_index c, count) else None)
        (List.init 8 (fun i -> i))
    in
    let s = State.of_counts entries in
    let x = Fluid.of_state ~k:3 s in
    let dx = Fluid.derivative p x in
    List.iter
      (fun c ->
        let f st = float_of_int (State.count st (PS.of_index c)) in
        let generator_drift = Lyapunov.drift p ~f s in
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "type %d" c)
          generator_drift dx.(c))
      (List.init 8 (fun i -> i))
  done

(* ---- 4. coded engines: agent vs type-level vs exact ---- *)

let test_coded_engines_agree () =
  let cfg =
    { Coded_chain.q = 2; k = 2; us = 2.0; mu = 1.0; gamma = infinity;
      arrivals = [ (0, 0.5); (1, 0.5) ] }
  in
  let t = Coded_chain.create cfg in
  let exact = (Coded_chain.stationary t ~n_max:25).mean_n in
  let type_level =
    (Coded_chain.simulate ~rng:(Rng.of_seed 6) t ~init:(Coded_chain.empty_state t)
       ~horizon:25_000.0)
      .time_avg_n
  in
  let g = { Stability.Coded.q = 2; k = 2; us = 2.0; mu = 1.0; gamma = infinity;
            lambda0 = 0.5; lambda1 = 0.5 } in
  let agent = (Sim_coded.run_seeded ~seed:7 (Sim_coded.of_gift g) ~horizon:25_000.0).time_avg_n in
  Alcotest.(check bool)
    (Printf.sprintf "type-level %.3f vs exact %.3f" type_level exact)
    true
    (Float.abs (type_level -. exact) /. exact < 0.08);
  Alcotest.(check bool)
    (Printf.sprintf "agent %.3f vs exact %.3f" agent exact)
    true
    (Float.abs (agent -. exact) /. exact < 0.08)

(* ---- 5. Little's law across simulators ---- *)

let test_littles_law_everywhere () =
  let p = Params.make ~k:3 ~us:0.8 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.6) ] in
  let stats, _ = Sim_agent.run_seeded ~seed:8 (Sim_agent.default_config p) ~horizon:20_000.0 in
  let lambda = Params.lambda_total p in
  Alcotest.(check bool)
    (Printf.sprintf "N = lambda T: %.3f vs %.3f" stats.time_avg_n
       (lambda *. stats.mean_sojourn))
    true
    (Float.abs (stats.time_avg_n -. (lambda *. stats.mean_sojourn))
     /. Float.max 1.0 stats.time_avg_n
    < 0.08)

let () =
  Alcotest.run "conformance"
    [
      ( "conformance",
        [
          Alcotest.test_case "first-jump law = generator row" `Slow test_first_jump_distribution;
          Alcotest.test_case "four engines, one mean" `Slow test_four_engines_agree;
          Alcotest.test_case "fluid = generator drift" `Quick test_fluid_equals_generator_everywhere;
          Alcotest.test_case "coded engines agree" `Slow test_coded_engines_agree;
          Alcotest.test_case "Little's law" `Slow test_littles_law_everywhere;
        ] );
    ]
