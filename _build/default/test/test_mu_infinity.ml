(* The mu = infinity watched process (Section VIII-D). *)

module Mu = P2p_core.Mu_infinity
module Rng = P2p_prng.Rng

let cfg = { Mu.k = 3; lambda = 1.0 }

let test_validation () =
  Alcotest.(check bool) "k=1 rejected" true
    (try
       Mu.validate { Mu.k = 1; lambda = 1.0 };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "lambda=0 rejected" true
    (try
       Mu.validate { Mu.k = 3; lambda = 0.0 };
       false
     with Invalid_argument _ -> true)

let test_initial_and_first_step () =
  let rng = Rng.of_seed 1 in
  let s = Mu.step rng cfg Mu.initial in
  Alcotest.(check int) "first arrival n" 1 s.n;
  Alcotest.(check int) "first arrival pieces" 1 s.pieces

let test_lower_layer_climbs () =
  (* From (n,k) with k < K-1, both outcomes add one peer; pieces never
     decrease. *)
  let rng = Rng.of_seed 2 in
  for _ = 1 to 2000 do
    let n = 1 + Rng.int_below rng 20 in
    let before = { Mu.n; pieces = 1 } in
    let after = Mu.step rng { Mu.k = 4; lambda = 1.0 } before in
    Alcotest.(check int) "n + 1" (n + 1) after.n;
    Alcotest.(check bool) "pieces in {1,2}" true (after.pieces = 1 || after.pieces = 2)
  done

let test_lower_layer_transition_probs () =
  (* (n, k) -> (n+1, k) w.p. k/K. *)
  let rng = Rng.of_seed 3 in
  let k_cfg = { Mu.k = 4; lambda = 1.0 } in
  let stays = ref 0 in
  let n_trials = 60_000 in
  for _ = 1 to n_trials do
    let after = Mu.step rng k_cfg { Mu.n = 5; pieces = 2 } in
    if after.pieces = 2 then incr stays
  done;
  let freq = float_of_int !stays /. float_of_int n_trials in
  Alcotest.(check bool) "P(stay) = 2/4" true (Float.abs (freq -. 0.5) < 0.01)

let test_top_layer_reachability () =
  let rng = Rng.of_seed 4 in
  for _ = 1 to 5000 do
    let n = 2 + Rng.int_below rng 30 in
    let before = { Mu.n; pieces = cfg.k - 1 } in
    let after = Mu.step rng cfg before in
    (* stays on top layer (possibly collapsed to 1 with fewer pieces) *)
    Alcotest.(check bool) "reachable states" true
      ((after.pieces = cfg.k - 1 && after.n >= 1 && after.n <= n + 1)
      || (after.n = 1 && after.pieces >= 1 && after.pieces < cfg.k))
  done

let test_z_expectation () =
  Alcotest.(check (float 1e-12)) "E[Z] = K-1" 2.0 (Mu.z_expectation ~k:3)

let test_coin_flip_z_mean () =
  (* With n huge the collapse never happens and Z has mean K-1. *)
  let rng = Rng.of_seed 5 in
  let w = P2p_stats.Welford.create () in
  for _ = 1 to 100_000 do
    match Mu.sample_missing_piece_arrival rng ~k:4 ~n:1_000_000 with
    | Mu.Stay_top z -> P2p_stats.Welford.add w (float_of_int z)
    | Mu.Collapse _ -> Alcotest.fail "collapse impossible at huge n"
  done;
  Alcotest.(check bool) "mean Z" true (Float.abs (P2p_stats.Welford.mean w -. 3.0) < 0.05)

let test_coin_flip_collapse () =
  (* With n = 1 the club collapses whenever the first flip is heads. *)
  let rng = Rng.of_seed 6 in
  let collapses = ref 0 in
  let n_trials = 40_000 in
  for _ = 1 to n_trials do
    match Mu.sample_missing_piece_arrival rng ~k:3 ~n:1 with
    | Mu.Collapse pieces ->
        incr collapses;
        Alcotest.(check bool) "newcomer pieces in range" true (pieces >= 1 && pieces <= 2)
    | Mu.Stay_top z -> Alcotest.(check int) "no departures" 0 z
  done;
  (* P(collapse) = P(heads before 2 tails) = 1 - P(TT first...)... with n=1:
     collapse iff a head occurs before the 2nd tail = 1 - (1/2)^1... compute:
     sequences: T T -> stay (prob 1/4); T H, H -> collapse. P = 3/4. *)
  let freq = float_of_int !collapses /. float_of_int n_trials in
  Alcotest.(check bool) "collapse prob 3/4" true (Float.abs (freq -. 0.75) < 0.01)

let test_top_layer_zero_drift () =
  let rng = Rng.of_seed 7 in
  let run = Mu.simulate rng cfg ~init:{ Mu.n = 100; pieces = 2 } ~steps:300_000 in
  Alcotest.(check bool) "mean top increment near 0" true
    (Float.abs run.mean_top_increment < 0.05);
  Alcotest.(check bool) "top layer visited" true (run.top_layer_steps > 100_000)

let test_holding_rate () =
  Alcotest.(check (float 1e-12)) "K lambda" 3.0 (Mu.holding_rate cfg { Mu.n = 5; pieces = 2 })

let test_excursions_terminate () =
  let rng = Rng.of_seed 8 in
  let excs = Mu.excursions rng cfg ~start_n:5 ~count:100 ~cap_steps:500_000 in
  Alcotest.(check int) "100 excursions" 100 (List.length excs);
  List.iter
    (fun (e : Mu.excursion) ->
      Alcotest.(check bool) "positive length" true (e.length > 0);
      Alcotest.(check bool) "peak >= start" true (e.peak >= 5))
    excs;
  let finished = List.filter (fun (e : Mu.excursion) -> not e.capped) excs in
  (* recurrence: almost all excursions should finish *)
  Alcotest.(check bool) "most finish" true (List.length finished > 90)

let test_excursions_heavy_tail () =
  (* Null recurrence signature: excursion mean grows with the cap because
     the tail is heavy.  Compare mean over finished excursions under a
     small and a large cap. *)
  let mean_with_cap seed cap =
    let rng = Rng.of_seed seed in
    let excs = Mu.excursions rng cfg ~start_n:3 ~count:3000 ~cap_steps:cap in
    let lens = List.map (fun (e : Mu.excursion) -> Int.min e.length cap) excs in
    float_of_int (List.fold_left ( + ) 0 lens) /. 3000.0
  in
  let small = mean_with_cap 9 100 in
  let large = mean_with_cap 9 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "truncated mean grows: %.1f -> %.1f" small large)
    true
    (large > 1.5 *. small)

let () =
  Alcotest.run "mu_infinity"
    [
      ( "process",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "initial step" `Quick test_initial_and_first_step;
          Alcotest.test_case "lower layer climbs" `Quick test_lower_layer_climbs;
          Alcotest.test_case "lower layer probabilities" `Quick test_lower_layer_transition_probs;
          Alcotest.test_case "top layer reachability" `Quick test_top_layer_reachability;
          Alcotest.test_case "E[Z]" `Quick test_z_expectation;
          Alcotest.test_case "coin flips mean" `Quick test_coin_flip_z_mean;
          Alcotest.test_case "collapse probability" `Quick test_coin_flip_collapse;
          Alcotest.test_case "zero drift" `Quick test_top_layer_zero_drift;
          Alcotest.test_case "holding rate" `Quick test_holding_rate;
          Alcotest.test_case "excursions terminate" `Quick test_excursions_terminate;
          Alcotest.test_case "heavy tail" `Slow test_excursions_heavy_tail;
        ] );
    ]
