(* Model parameter validation and accessors. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let mk ?(k = 3) ?(us = 1.0) ?(mu = 1.0) ?(gamma = 2.0) arrivals =
  Params.make ~k ~us ~mu ~gamma ~arrivals

let rejects name f =
  Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)

let test_validation () =
  rejects "k = 0" (fun () -> mk ~k:0 [ (PS.empty, 1.0) ]);
  rejects "negative us" (fun () -> mk ~us:(-1.0) [ (PS.empty, 1.0) ]);
  rejects "mu = 0" (fun () -> mk ~mu:0.0 [ (PS.empty, 1.0) ]);
  rejects "gamma = 0" (fun () -> mk ~gamma:0.0 [ (PS.empty, 1.0) ]);
  rejects "no arrivals" (fun () -> mk []);
  rejects "all-zero rates" (fun () -> mk [ (PS.empty, 0.0) ]);
  rejects "negative rate" (fun () -> mk [ (PS.empty, -0.5) ]);
  rejects "type beyond K" (fun () -> mk ~k:2 [ (PS.singleton 5, 1.0) ]);
  rejects "lambda_F with gamma=inf" (fun () ->
      mk ~gamma:infinity [ (PS.full ~k:3, 1.0); (PS.empty, 1.0) ])

let test_lambda_f_allowed_when_gamma_finite () =
  let p = mk [ (PS.full ~k:3, 0.5); (PS.empty, 1.0) ] in
  Alcotest.(check (float 1e-12)) "lambda_F kept" 0.5 (Params.lambda p (PS.full ~k:3))

let test_dedup_and_drop_zero () =
  let p = mk [ (PS.empty, 0.4); (PS.empty, 0.6); (PS.singleton 0, 0.0) ] in
  Alcotest.(check int) "one entry" 1 (Array.length p.arrivals);
  Alcotest.(check (float 1e-12)) "summed" 1.0 (Params.lambda p PS.empty)

let test_lambda_helpers () =
  let p =
    mk [ (PS.empty, 1.0); (PS.singleton 0, 0.3); (PS.of_list [ 0; 1 ], 0.2); (PS.singleton 2, 0.5) ]
  in
  Alcotest.(check (float 1e-12)) "total" 2.0 (Params.lambda_total p);
  Alcotest.(check (float 1e-12)) "containing piece 0" 0.5 (Params.lambda_containing p ~piece:0);
  Alcotest.(check (float 1e-12)) "containing piece 1" 0.2 (Params.lambda_containing p ~piece:1);
  Alcotest.(check (float 1e-12)) "within {1,2}" 1.5 (Params.lambda_within p (PS.of_list [ 0; 1 ]));
  Alcotest.(check (float 1e-12)) "within empty" 1.0 (Params.lambda_within p PS.empty)

let test_mu_over_gamma () =
  Alcotest.(check (float 1e-12)) "finite" 0.5 (Params.mu_over_gamma (mk [ (PS.empty, 1.0) ]));
  Alcotest.(check (float 1e-12)) "infinite" 0.0
    (Params.mu_over_gamma (mk ~gamma:infinity [ (PS.empty, 1.0) ]))

let test_piece_can_enter () =
  let p = mk ~us:0.0 [ (PS.singleton 0, 1.0) ] in
  Alcotest.(check bool) "piece 0 enters" true (Params.piece_can_enter p ~piece:0);
  Alcotest.(check bool) "piece 1 cannot" false (Params.piece_can_enter p ~piece:1);
  let with_seed = mk ~us:0.1 [ (PS.singleton 0, 1.0) ] in
  Alcotest.(check bool) "seed supplies all" true (Params.piece_can_enter with_seed ~piece:1)

let test_with_updates () =
  let p = mk [ (PS.empty, 1.0) ] in
  let p2 = Params.with_gamma p ~gamma:5.0 in
  Alcotest.(check (float 1e-12)) "gamma updated" 5.0 p2.gamma;
  Alcotest.(check (float 1e-12)) "us preserved" 1.0 p2.us;
  let p3 = Params.with_us p ~us:0.0 in
  Alcotest.(check (float 1e-12)) "us updated" 0.0 p3.us;
  let p4 = Params.with_arrivals p ~arrivals:[ (PS.singleton 1, 2.0) ] in
  Alcotest.(check (float 1e-12)) "arrivals replaced" 2.0 (Params.lambda p4 (PS.singleton 1))

let test_immediate_departure () =
  Alcotest.(check bool) "finite" false (Params.immediate_departure (mk [ (PS.empty, 1.0) ]));
  Alcotest.(check bool) "infinite" true
    (Params.immediate_departure (mk ~gamma:infinity [ (PS.empty, 1.0) ]))

let () =
  Alcotest.run "params"
    [
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "lambda_F finite gamma" `Quick test_lambda_f_allowed_when_gamma_finite;
          Alcotest.test_case "dedup" `Quick test_dedup_and_drop_zero;
          Alcotest.test_case "lambda helpers" `Quick test_lambda_helpers;
          Alcotest.test_case "mu/gamma" `Quick test_mu_over_gamma;
          Alcotest.test_case "piece can enter" `Quick test_piece_can_enter;
          Alcotest.test_case "with_* updates" `Quick test_with_updates;
          Alcotest.test_case "immediate departure" `Quick test_immediate_departure;
        ] );
    ]
