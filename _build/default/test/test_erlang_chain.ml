(* Erlang-dwell exact chains (method of stages). *)

open P2p_core
module PS = P2p_pieceset.Pieceset

let closef ?(tol = 1e-6) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let base = Params.make ~k:2 ~us:0.8 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.5) ]

let test_one_stage_equals_truncated () =
  let chain = Truncated.build base ~n_max:15 in
  let pi = Truncated.stationary chain in
  let ec = Erlang_chain.build base ~stages:1 ~n_max:15 in
  let s = Erlang_chain.solve ec in
  closef "E[N]" (Truncated.mean_population chain pi) s.mean_n;
  closef "seeds" (Truncated.mean_type_count chain pi (PS.full ~k:2)) s.mean_seeds;
  closef "P(empty)" (Truncated.probability_empty chain pi) s.p_empty

let test_seed_littles_law_invariant () =
  (* E[seeds] = lambda/gamma regardless of the dwell shape. *)
  List.iter
    (fun m ->
      let ec = Erlang_chain.build base ~stages:m ~n_max:15 in
      let s = Erlang_chain.solve ec in
      closef ~tol:1e-4 (Printf.sprintf "m=%d" m) 0.25 s.mean_seeds)
    [ 1; 2; 3 ]

let test_population_nearly_insensitive () =
  let en m = (Erlang_chain.solve (Erlang_chain.build base ~stages:m ~n_max:15)).mean_n in
  let e1 = en 1 and e3 = en 3 in
  Alcotest.(check bool)
    (Printf.sprintf "E[N] within 2%%: %.4f vs %.4f" e1 e3)
    true
    (Float.abs (e1 -. e3) /. e1 < 0.02)

let test_agent_simulation_agrees () =
  (* Cross-check against the agent simulator's Erlang dwell support. *)
  let ec = Erlang_chain.build base ~stages:3 ~n_max:15 in
  let exact = (Erlang_chain.solve ec).mean_n in
  let config = { (Sim_agent.default_config base) with dwell = Sim_agent.Erlang_dwell 3 } in
  let stats, _ = Sim_agent.run_seeded ~seed:1 config ~horizon:20_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.3f vs simulated %.3f" exact stats.time_avg_n)
    true
    (Float.abs (exact -. stats.time_avg_n) /. exact < 0.08)

let test_boundary_location_insensitive () =
  (* Near the Theorem 1 boundary, E[N] blows up at the same load for every
     dwell shape: compare the growth factor of E[N] between two loads. *)
  let en ~stages lambda =
    let p = Scenario.example1 ~lambda0:lambda ~us:0.5 ~mu:1.0 ~gamma:2.0 in
    (Erlang_chain.solve ~tol:1e-9 (Erlang_chain.build p ~stages ~n_max:55)).mean_n
  in
  List.iter
    (fun m ->
      let low = en ~stages:m 0.4 and high = en ~stages:m 0.75 in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d blow-up toward the same boundary (%.2f -> %.2f)" m low high)
        true
        (high > 4.0 *. low))
    [ 1; 2 ]

let test_validation () =
  Alcotest.(check bool) "stages 0" true
    (try
       ignore (Erlang_chain.build base ~stages:0 ~n_max:5);
       false
     with Invalid_argument _ -> true);
  let inf = Params.make ~k:2 ~us:0.8 ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, 0.5) ] in
  Alcotest.(check bool) "gamma inf" true
    (try
       ignore (Erlang_chain.build inf ~stages:2 ~n_max:5);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "erlang_chain"
    [
      ( "erlang_chain",
        [
          Alcotest.test_case "m=1 equals Truncated" `Quick test_one_stage_equals_truncated;
          Alcotest.test_case "seed Little invariant" `Quick test_seed_littles_law_invariant;
          Alcotest.test_case "E[N] nearly insensitive" `Quick test_population_nearly_insensitive;
          Alcotest.test_case "agent simulation agrees" `Slow test_agent_simulation_agrees;
          Alcotest.test_case "boundary insensitive" `Slow test_boundary_location_insensitive;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
