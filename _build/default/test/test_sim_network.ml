(* The topology-constrained swarm simulator. *)

open P2p_core
module PS = P2p_pieceset.Pieceset

let stable = Scenario.flash_crowd ~k:3 ~lambda:0.9 ~us:0.8 ~mu:1.0 ~gamma:2.0
let transient = Scenario.flash_crowd ~k:3 ~lambda:1.3 ~us:0.3 ~mu:1.0 ~gamma:infinity

let close ?(tol = 0.15) name expected actual =
  let rel = Float.abs (actual -. expected) /. Float.max 1.0 (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.4g got %.4g" name expected actual)
    true (rel < tol)

let test_conservation () =
  List.iter
    (fun degree ->
      let cfg = { (Sim_network.default_config stable) with degree } in
      let s, final = Sim_network.run_seeded ~seed:1 cfg ~horizon:1000.0 in
      Alcotest.(check int) "arrivals - departures = final" (s.arrivals - s.departures) s.final_n;
      Alcotest.(check int) "state agrees" (State.n final) s.final_n)
    [ None; Some 4; Some 1 ]

let test_fully_connected_matches_agent () =
  let avg run_fn =
    let w = P2p_stats.Welford.create () in
    for seed = 1 to 10 do
      P2p_stats.Welford.add w (run_fn seed)
    done;
    P2p_stats.Welford.mean w
  in
  let network seed =
    (fst (Sim_network.run_seeded ~seed (Sim_network.default_config stable) ~horizon:1500.0))
      .time_avg_n
  in
  let agent seed =
    (fst (Sim_agent.run_seeded ~seed:(seed + 50) (Sim_agent.default_config stable) ~horizon:1500.0))
      .time_avg_n
  in
  close ~tol:0.12 "same law at degree = inf" (avg agent) (avg network)

let test_stable_on_sparse_topology () =
  let cfg = { (Sim_network.default_config stable) with degree = Some 4 } in
  let s, _ = Sim_network.run_seeded ~seed:2 cfg ~horizon:2000.0 in
  let r = Classify.of_samples s.samples in
  Alcotest.(check string) "still stable at degree 4" "appears-stable"
    (Classify.verdict_to_string r.verdict)

let test_transient_on_sparse_topology () =
  let cfg = { (Sim_network.default_config transient) with degree = Some 4 } in
  let s, _ = Sim_network.run_seeded ~seed:3 cfg ~horizon:1200.0 in
  let r = Classify.of_samples s.samples in
  Alcotest.(check string) "still transient at degree 4" "appears-unstable"
    (Classify.verdict_to_string r.verdict);
  (* one-club witness rises *)
  let _, last_club = s.club_samples.(Array.length s.club_samples - 1) in
  Alcotest.(check bool) "club forms" true (last_club > 0.5)

let test_mean_degree_tracked () =
  let cfg = { (Sim_network.default_config stable) with degree = Some 3 } in
  let s, _ = Sim_network.run_seeded ~seed:4 cfg ~horizon:800.0 in
  Alcotest.(check bool) "mean degree positive and bounded" true
    (s.mean_degree_time_avg > 0.5 && s.mean_degree_time_avg < 20.0);
  Alcotest.(check bool) "components reported" true (s.final_component_sizes <> [])

let test_degree_validation () =
  let cfg = { (Sim_network.default_config stable) with degree = Some 0 } in
  Alcotest.(check bool) "degree 0 rejected" true
    (try
       ignore (Sim_network.run_seeded ~seed:5 cfg ~horizon:10.0);
       false
     with Invalid_argument _ -> true)

let test_rarest_choices_run () =
  List.iter
    (fun choice ->
      let cfg =
        { (Sim_network.default_config stable) with degree = Some 5; choice }
      in
      let s, _ = Sim_network.run_seeded ~seed:6 cfg ~horizon:800.0 in
      let r = Classify.of_samples s.samples in
      Alcotest.(check string) "stable under rarity policies" "appears-stable"
        (Classify.verdict_to_string r.verdict))
    [ Sim_network.Rarest_global; Sim_network.Rarest_local ]

let test_local_rarest_beats_random_on_club_pressure () =
  (* In the transient regime the one-club witness should rise at least as
     fast under random-useful as under local rarest-first (which fights
     rarity). Compare the time the club fraction stays above 1/2. *)
  let run choice =
    let cfg = { (Sim_network.default_config transient) with degree = Some 6; choice } in
    let s, _ = Sim_network.run_seeded ~seed:7 cfg ~horizon:900.0 in
    let above =
      Array.fold_left (fun acc (_, c) -> if c > 0.5 then acc + 1 else acc) 0 s.club_samples
    in
    float_of_int above /. float_of_int (Array.length s.club_samples)
  in
  let random = run Sim_network.Random_useful in
  let rarest = run Sim_network.Rarest_local in
  Alcotest.(check bool)
    (Printf.sprintf "rarest (%.2f) <= random (%.2f) + slack" rarest random)
    true
    (rarest <= random +. 0.15)

let test_deterministic () =
  let cfg = { (Sim_network.default_config stable) with degree = Some 4 } in
  let a, _ = Sim_network.run_seeded ~seed:8 cfg ~horizon:300.0 in
  let b, _ = Sim_network.run_seeded ~seed:8 cfg ~horizon:300.0 in
  Alcotest.(check int) "same events" a.events b.events;
  Alcotest.(check int) "same transfers" a.transfers b.transfers

let test_degree_one_line_graph_survives () =
  (* Degree 1 gives a forest; the global seed still reaches everyone, so a
     comfortably stable system should survive, if with higher population. *)
  let cfg = { (Sim_network.default_config stable) with degree = Some 1 } in
  let s, _ = Sim_network.run_seeded ~seed:9 cfg ~horizon:1500.0 in
  let r = Classify.of_samples s.samples in
  Alcotest.(check string) "degree-1 still stable" "appears-stable"
    (Classify.verdict_to_string r.verdict)

let () =
  Alcotest.run "sim_network"
    [
      ( "sim_network",
        [
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "matches agent at deg=inf" `Slow test_fully_connected_matches_agent;
          Alcotest.test_case "stable sparse" `Quick test_stable_on_sparse_topology;
          Alcotest.test_case "transient sparse" `Quick test_transient_on_sparse_topology;
          Alcotest.test_case "mean degree" `Quick test_mean_degree_tracked;
          Alcotest.test_case "degree validation" `Quick test_degree_validation;
          Alcotest.test_case "rarity policies" `Quick test_rarest_choices_run;
          Alcotest.test_case "rarest fights the club" `Quick test_local_rarest_beats_random_on_club_pressure;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "degree one" `Quick test_degree_one_line_graph_survives;
        ] );
    ]
