bench/main.mli:
