bench/main.ml: Array Experiments List P2p_core Perf Printf String Sys
