module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist

type batch = { mean : float; mean_square : float; sample : P2p_prng.Rng.t -> float }

let constant_batch c = { mean = c; mean_square = c *. c; sample = (fun _ -> c) }

let geometric_total_progeny ~mean_offspring =
  if mean_offspring < 0.0 || mean_offspring >= 1.0 then
    invalid_arg "Compound_poisson.geometric_total_progeny: need mean offspring in [0,1)";
  let m = mean_offspring in
  (* Geometric offspring with mean m has p = 1/(1+m) and variance m(1+m).
     Standard subcritical GW total-progeny moments:
       E[T] = 1/(1-m),  Var(T) = sigma^2 / (1-m)^3. *)
  let sigma2 = m *. (1.0 +. m) in
  let mean = 1.0 /. (1.0 -. m) in
  let mean_square = (sigma2 /. ((1.0 -. m) ** 3.0)) +. (mean *. mean) in
  let p = 1.0 /. (1.0 +. m) in
  let sample rng =
    (* Direct tree walk: count individuals until the frontier empties. *)
    let pending = ref 1 and total = ref 0 in
    while !pending > 0 && !total < 1_000_000 do
      incr total;
      decr pending;
      pending := !pending + Dist.geometric rng ~p
    done;
    float_of_int !total
  in
  { mean; mean_square; sample }

type path_result = { crossed : bool; final_value : float; batches : int }

let simulate_crossing ~rng ~arrival_rate ~batch ~horizon ~b ~slope =
  let clock = ref 0.0 in
  let value = ref 0.0 in
  let batches = ref 0 in
  let crossed = ref false in
  let continue = ref true in
  while !continue do
    let gap = Dist.exponential rng ~rate:arrival_rate in
    let t = !clock +. gap in
    if t > horizon then continue := false
    else begin
      clock := t;
      value := !value +. batch.sample rng;
      incr batches;
      if !value >= b +. (slope *. t) then crossed := true
    end
  done;
  { crossed = !crossed; final_value = !value; batches = !batches }

let kingman_bound ~arrival_rate ~batch ~b ~slope =
  let drift = arrival_rate *. batch.mean in
  if slope <= drift || b <= 0.0 then 1.0
  else Float.min 1.0 (arrival_rate *. batch.mean_square /. (2.0 *. b *. (slope -. drift)))
