(** M/M/1 queue — a tiny analytically-solved system used as an end-to-end
    sanity check of the RNG + event machinery (mean queue length
    ρ/(1-ρ)). *)

type result = { time_avg_queue : float; utilisation : float; served : int }

val simulate :
  rng:P2p_prng.Rng.t -> arrival_rate:float -> service_rate:float -> horizon:float -> result

val stationary_mean_queue : arrival_rate:float -> service_rate:float -> float
(** ρ/(1−ρ) for ρ = λ/μ < 1. @raise Invalid_argument if unstable. *)
