module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist

type service =
  | Exponential of float
  | Erlang of int * float
  | Hypoexponential of float list
  | Deterministic of float

let mean_service = function
  | Exponential rate -> 1.0 /. rate
  | Erlang (stages, rate) -> float_of_int stages /. rate
  | Hypoexponential rates -> List.fold_left (fun acc r -> acc +. (1.0 /. r)) 0.0 rates
  | Deterministic d -> d

let sample_service rng = function
  | Exponential rate -> Dist.exponential rng ~rate
  | Erlang (stages, rate) ->
      let total = ref 0.0 in
      for _ = 1 to stages do
        total := !total +. Dist.exponential rng ~rate
      done;
      !total
  | Hypoexponential rates ->
      List.fold_left (fun acc rate -> acc +. Dist.exponential rng ~rate) 0.0 rates
  | Deterministic d -> d

type result = {
  time_avg_customers : float;
  max_customers : int;
  final_customers : int;
  arrivals : int;
  departures : int;
}

(* Event-driven walk over merged arrival/departure times.  In an infinite
   server system departures never queue, so we track them in a heap keyed
   by completion time. *)
let walk ~rng ~arrival_rate ~service ~horizon ~visit =
  let departures = P2p_des.Heap.create () in
  let clock = ref 0.0 in
  let population = ref 0 in
  let arrivals = ref 0 in
  let completed = ref 0 in
  let next_arrival = ref (Dist.exponential rng ~rate:arrival_rate) in
  let continue = ref true in
  while !continue do
    let next_departure = P2p_des.Heap.min_key departures in
    let arrival_first =
      match next_departure with None -> true | Some d -> !next_arrival <= d
    in
    let event_time = if arrival_first then !next_arrival else Option.get next_departure in
    if event_time > horizon then begin
      visit horizon !population;
      continue := false
    end
    else begin
      clock := event_time;
      if arrival_first then begin
        incr arrivals;
        incr population;
        let completion = event_time +. sample_service rng service in
        ignore (P2p_des.Heap.insert departures ~key:completion ());
        next_arrival := event_time +. Dist.exponential rng ~rate:arrival_rate
      end
      else begin
        ignore (P2p_des.Heap.pop_min departures);
        incr completed;
        decr population
      end;
      visit event_time !population
    end
  done;
  (!arrivals, !completed, !population)

let simulate ~rng ~arrival_rate ~service ~horizon =
  let avg = P2p_stats.Timeavg.create () in
  let max_pop = ref 0 in
  P2p_stats.Timeavg.observe avg ~time:0.0 ~value:0.0;
  let visit time population =
    P2p_stats.Timeavg.observe avg ~time ~value:(float_of_int population);
    if population > !max_pop then max_pop := population
  in
  let arrivals, departures, final = walk ~rng ~arrival_rate ~service ~horizon ~visit in
  {
    time_avg_customers = P2p_stats.Timeavg.average avg;
    max_customers = !max_pop;
    final_customers = final;
    arrivals;
    departures;
  }

let stationary_mean ~arrival_rate ~service = arrival_rate *. mean_service service

let exceedance_ever ~rng ~arrival_rate ~service ~horizon ~boundary =
  let exceeded = ref false in
  let visit time population =
    if float_of_int population >= boundary time then exceeded := true
  in
  ignore (walk ~rng ~arrival_rate ~service ~horizon ~visit);
  !exceeded
