lib/queueing/mg_inf.mli: P2p_prng
