lib/queueing/mm1.ml: Float P2p_prng P2p_stats
