lib/queueing/mg_inf.ml: List Option P2p_des P2p_prng P2p_stats
