lib/queueing/compound_poisson.ml: Float P2p_prng
