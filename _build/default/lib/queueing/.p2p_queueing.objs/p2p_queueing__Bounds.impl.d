lib/queueing/bounds.ml: Float
