lib/queueing/compound_poisson.mli: P2p_prng
