lib/queueing/bounds.mli:
