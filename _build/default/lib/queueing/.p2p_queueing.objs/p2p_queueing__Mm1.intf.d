lib/queueing/mm1.mli: P2p_prng
