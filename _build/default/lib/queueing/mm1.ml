module Dist = P2p_prng.Dist

type result = { time_avg_queue : float; utilisation : float; served : int }

let simulate ~rng ~arrival_rate ~service_rate ~horizon =
  let avg = P2p_stats.Timeavg.create () in
  let busy = P2p_stats.Timeavg.create () in
  P2p_stats.Timeavg.observe avg ~time:0.0 ~value:0.0;
  P2p_stats.Timeavg.observe busy ~time:0.0 ~value:0.0;
  let clock = ref 0.0 in
  let queue = ref 0 in
  let served = ref 0 in
  let next_arrival = ref (Dist.exponential rng ~rate:arrival_rate) in
  let next_service = ref infinity in
  let continue = ref true in
  while !continue do
    let event_time = Float.min !next_arrival !next_service in
    if event_time > horizon then begin
      P2p_stats.Timeavg.close avg ~time:horizon;
      P2p_stats.Timeavg.close busy ~time:horizon;
      continue := false
    end
    else begin
      clock := event_time;
      if !next_arrival <= !next_service then begin
        incr queue;
        if !queue = 1 then next_service := event_time +. Dist.exponential rng ~rate:service_rate;
        next_arrival := event_time +. Dist.exponential rng ~rate:arrival_rate
      end
      else begin
        decr queue;
        incr served;
        next_service :=
          if !queue > 0 then event_time +. Dist.exponential rng ~rate:service_rate else infinity
      end;
      P2p_stats.Timeavg.observe avg ~time:event_time ~value:(float_of_int !queue);
      P2p_stats.Timeavg.observe busy ~time:event_time ~value:(if !queue > 0 then 1.0 else 0.0)
    end
  done;
  {
    time_avg_queue = P2p_stats.Timeavg.average avg;
    utilisation = P2p_stats.Timeavg.average busy;
    served = !served;
  }

let stationary_mean_queue ~arrival_rate ~service_rate =
  let rho = arrival_rate /. service_rate in
  if rho >= 1.0 then invalid_arg "Mm1.stationary_mean_queue: unstable (rho >= 1)";
  rho /. (1.0 -. rho)
