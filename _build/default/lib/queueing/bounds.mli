(** Closed-form bounds from the paper's appendix. *)

val mg_inf_maximal_bound : arrival_rate:float -> mean_service:float -> b:float -> eps:float -> float
(** Lemma 21: for an M/GI/∞ queue started empty with arrival rate [λ] and
    mean service time [m],
    [P{M_t >= B + εt for some t} <= e^{λ(m+1)} 2^{-B} / (1 - 2^{-ε})].
    Returns the right-hand side clamped to [0, 1]. *)

val kingman_gi_g1 : rate:float -> m1:float -> m2:float -> b:float -> eps:float -> float
(** Proposition 20 restated for arbitrary first/second batch moments. *)

val poisson_tail : mean:float -> at_least:int -> float
(** [P(Poisson(mean) >= k)] by direct summation — exact reference law of
    the M/GI/∞ stationary population, used to validate the simulator. *)
