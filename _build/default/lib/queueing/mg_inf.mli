(** M/GI/∞ queue simulation.

    The transience proof (Lemma 5) dominates the population of young,
    infected, and gifted peers by the number of customers in an M/GI/∞
    system whose service time is a sum of [K] Exp(μ(1-ξ)) stages plus one
    Exp(γ) stage.  This module simulates exactly that family of systems and
    provides the closed-form stationary law (Poisson with mean λ·E[S]) used
    to validate it. *)

type service =
  | Exponential of float  (** rate *)
  | Erlang of int * float  (** [Erlang (stages, stage_rate)] *)
  | Hypoexponential of float list
      (** independent exponential stages with the listed rates — the
          paper's service time is [Hypoexponential (K copies of μ(1-ξ)) ⧺
          \[γ\]] *)
  | Deterministic of float

val mean_service : service -> float
val sample_service : P2p_prng.Rng.t -> service -> float

type result = {
  time_avg_customers : float;  (** time-weighted mean population *)
  max_customers : int;
  final_customers : int;
  arrivals : int;
  departures : int;
}

val simulate :
  rng:P2p_prng.Rng.t -> arrival_rate:float -> service:service -> horizon:float -> result
(** Simulate from an empty system on [0, horizon]. *)

val stationary_mean : arrival_rate:float -> service:service -> float
(** [λ · E\[S\]]: the exact stationary mean population. *)

val exceedance_ever :
  rng:P2p_prng.Rng.t ->
  arrival_rate:float ->
  service:service ->
  horizon:float ->
  boundary:(float -> float) ->
  bool
(** Whether the population ever reaches the time-varying boundary
    [boundary t] during one simulated run — the event bounded by
    Lemma 21. *)
