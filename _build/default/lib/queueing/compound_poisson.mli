(** Compound Poisson processes and Kingman's moment bound (Proposition 20).

    In the transience proof, the cumulative count [D̂̂] of piece-one
    downloads is a compound Poisson process: batches arrive at the root-peer
    arrival instants and the batch size is the total progeny of the root's
    branching tree.  Proposition 20 (Kingman) bounds the probability that
    such a process ever crosses the line [B + εt]. *)

type batch = { mean : float; mean_square : float; sample : P2p_prng.Rng.t -> float }
(** A batch-size distribution with its first two moments; [sample] draws
    one batch. *)

val constant_batch : float -> batch
val geometric_total_progeny : mean_offspring:float -> batch
(** Total progeny (including the root) of a single-type branching process
    with Geometric(offspring) law of the given mean [< 1]; the law is the
    Borel-ish distribution sampled by direct tree simulation, with the
    exact first two moments computed from branching theory:
    [m = 1/(1-μ)], [E X² = (1+σ²_eff)] via the standard formulas. *)

type path_result = {
  crossed : bool;  (** did the path cross [b + rate_bound * t]? *)
  final_value : float;
  batches : int;
}

val simulate_crossing :
  rng:P2p_prng.Rng.t ->
  arrival_rate:float ->
  batch:batch ->
  horizon:float ->
  b:float ->
  slope:float ->
  path_result
(** Run the compound Poisson path on [0, horizon]; [crossed] is true iff
    [C_t >= b + slope * t] at some jump. *)

val kingman_bound : arrival_rate:float -> batch:batch -> b:float -> slope:float -> float
(** The right-hand side of Proposition 20:
    [α m₂ / (2 B (ε − α m₁))] — an upper bound on the crossing probability
    whenever [slope > arrival_rate * batch.mean]; [1.0] otherwise (the
    bound is vacuous). *)
