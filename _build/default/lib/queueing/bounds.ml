let mg_inf_maximal_bound ~arrival_rate ~mean_service ~b ~eps =
  if eps <= 0.0 then 1.0
  else begin
    let numerator = exp (arrival_rate *. (mean_service +. 1.0)) *. (2.0 ** -.b) in
    let denominator = 1.0 -. (2.0 ** -.eps) in
    Float.max 0.0 (Float.min 1.0 (numerator /. denominator))
  end

let kingman_gi_g1 ~rate ~m1 ~m2 ~b ~eps =
  if eps <= rate *. m1 || b <= 0.0 then 1.0
  else Float.min 1.0 (rate *. m2 /. (2.0 *. b *. (eps -. (rate *. m1))))

let poisson_tail ~mean ~at_least =
  if at_least <= 0 then 1.0
  else begin
    (* P(X >= k) = 1 - sum_{j<k} e^-m m^j / j!   computed in log space. *)
    let below = ref 0.0 in
    let log_term = ref (-.mean) in
    (* log of term j=0 *)
    for j = 0 to at_least - 1 do
      if j > 0 then log_term := !log_term +. log mean -. log (float_of_int j);
      below := !below +. exp !log_term
    done;
    Float.max 0.0 (1.0 -. !below)
  end
