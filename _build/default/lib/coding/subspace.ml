module Field = P2p_gf.Field
module Mat = P2p_gf.Mat

type t = {
  f : Field.t;
  k : int;
  mutable rows : Mat.vec array;  (* row-reduced: pivots normalised, sorted *)
}

let create f ~k =
  if k < 1 then invalid_arg "Subspace.create: k must be >= 1";
  { f; k; rows = [||] }

let copy t = { t with rows = Array.map Array.copy t.rows }
let field t = t.f
let dim t = Array.length t.rows
let k t = t.k
let is_full t = dim t = t.k

let insert t v =
  if Array.length v <> t.k then invalid_arg "Subspace.insert: wrong vector length";
  let reduced = Mat.reduce_against t.f ~basis:t.rows v in
  if Mat.is_zero_vec reduced then false
  else begin
    (* Re-reduce the enlarged set to keep the basis canonical. *)
    let enlarged = Array.append t.rows [| reduced |] in
    t.rows <- Mat.row_reduce t.f enlarged;
    true
  end

let contains t v = Mat.in_row_space t.f ~basis:t.rows v

let subspace_leq a b =
  a.k = b.k && Array.for_all (fun row -> contains b row) a.rows

let can_help ~uploader ~downloader = not (subspace_leq uploader downloader)

let random_member t rng =
  let acc = ref (Mat.zero_vec t.k) in
  Array.iter
    (fun row ->
      let c = P2p_prng.Rng.int_below rng t.f.q in
      if c <> 0 then acc := Mat.vec_axpy t.f c row !acc)
    t.rows;
  !acc

let sum_dim a b =
  let all = Array.append a.rows b.rows in
  Mat.rank a.f all

let intersection_dim a b =
  if a.k <> b.k then invalid_arg "Subspace.intersection_dim: dimension mismatch";
  dim a + dim b - sum_dim a b

let useful_probability ~uploader ~downloader =
  (* P(random member of V_B useful to A) = 1 - |V_A ∩ V_B| / |V_B|
     = 1 - q^(dim(A∩B) - dim B). *)
  let q = float_of_int uploader.f.q in
  let inter = intersection_dim downloader uploader in
  1.0 -. (q ** float_of_int (inter - dim uploader))

let basis t = Array.map Array.copy t.rows

let of_vectors f ~k vectors =
  let t = create f ~k in
  List.iter (fun v -> ignore (insert t v)) vectors;
  t
