(** Rank distribution of uniformly random matrices over GF(q).

    A peer arriving with [j] uniformly random coded pieces holds the row
    space of a uniform [j × K] matrix over [F_q].  The classical counting
    formula gives the exact law of its dimension:

    {v P(rank = r) = q^{-jK} · Π_{i=0}^{r-1} (q^j − q^i)(q^K − q^i) / (q^r − q^i) v}

    Together with the observation that the [j] vectors all lie inside a
    fixed hyperplane [V⁻] with probability [q^{-j}] (and are then uniform
    in [F_q^{K-1}]), this yields the exact arrival-type decomposition that
    the generalised Theorem 15 conditions need (see
    {!Stability.Coded.classify_profile}). *)

val rank_pmf : q:int -> rows:int -> cols:int -> float array
(** [rank_pmf ~q ~rows:j ~cols:k] has length [min j k + 1]; entry [r] is
    [P(rank = r)].  Computed in log space; exact up to float rounding.
    @raise Invalid_argument on [q < 2] or negative dimensions. *)

val mean_rank : q:int -> rows:int -> cols:int -> float

val outside_hyperplane_decomposition : q:int -> k:int -> coded:int -> (int * float) array
(** [(r, w_r)] pairs where [w_r = P(rank = r and V ⊄ V⁻)] for a fixed
    hyperplane [V⁻] and [V] the span of [coded] uniform vectors in
    [F_q^k]: [w_r = P_k(rank=r) − q^{-coded} · P_{k-1}(rank=r)].  The
    weights need not sum to 1; the missing mass is [P(V ⊆ V⁻)]. *)

val prob_spans : q:int -> k:int -> coded:int -> float
(** Probability that [coded] uniform vectors span all of [F_q^k]. *)

val sample_rank : P2p_prng.Rng.t -> q:int -> rows:int -> cols:int -> int
(** Monte-Carlo reference: draw the matrix and row-reduce (for tests). *)
