(** A peer's knowledge under random linear network coding.

    With network coding the type of a peer [A] is the subspace
    [V_A ⊆ F_q^K] spanned by the coding vectors of the coded pieces it has
    received; [A] can decode once [dim V_A = K].  This module maintains the
    subspace as an incrementally row-reduced basis, so inserting a vector
    and testing usefulness are O(K·dim) field operations. *)

type t

val create : P2p_gf.Field.t -> k:int -> t
(** Empty subspace of [F_q^K]. *)

val copy : t -> t
val field : t -> P2p_gf.Field.t
val dim : t -> int
val k : t -> int
val is_full : t -> bool
(** [dim = K]: the peer can decode the file. *)

val insert : t -> P2p_gf.Mat.vec -> bool
(** [insert t v] adds the coding vector [v]; returns [true] iff it was
    useful (increased the dimension).  The zero vector is never useful. *)

val contains : t -> P2p_gf.Mat.vec -> bool
(** Whether [v ∈ V]. *)

val subspace_leq : t -> t -> bool
(** [subspace_leq a b] iff [V_a ⊆ V_b]. *)

val can_help : uploader:t -> downloader:t -> bool
(** The coded usefulness test: [V_uploader ⊄ V_downloader]. *)

val random_member : t -> P2p_prng.Rng.t -> P2p_gf.Mat.vec
(** A uniformly random vector of the subspace: a random linear combination
    of the basis (this is what a peer transmits on contact).  The zero
    vector is a possible (useless) outcome, matching the model. *)

val useful_probability : uploader:t -> downloader:t -> float
(** Exact probability that a random member of the uploader's subspace is
    useful to the downloader: [1 − q^{dim(V_A ∩ V_B) − dim V_B}] with
    [A] = downloader, [B] = uploader (Section VIII-B). *)

val intersection_dim : t -> t -> int
(** [dim (V_a ∩ V_b)], via [dim a + dim b − dim (a + b)]. *)

val basis : t -> P2p_gf.Mat.vec array
(** The current row-reduced basis (copies). *)

val of_vectors : P2p_gf.Field.t -> k:int -> P2p_gf.Mat.vec list -> t
