let rank_pmf ~q ~rows ~cols =
  if q < 2 then invalid_arg "Rank_dist.rank_pmf: q must be >= 2";
  if rows < 0 || cols < 0 then invalid_arg "Rank_dist.rank_pmf: negative dimensions";
  let lq = log (float_of_int q) in
  let max_rank = Int.min rows cols in
  (* log(q^a - q^b) = a*log q + log(1 - q^(b-a)); stable for a > b >= 0
     even when a is in the hundreds. *)
  let log_q_diff a b =
    (float_of_int a *. lq) +. Float.log1p (-.Float.exp (float_of_int (b - a) *. lq))
  in
  Array.init (max_rank + 1) (fun r ->
      let log_count = ref 0.0 in
      for i = 0 to r - 1 do
        log_count :=
          !log_count +. log_q_diff rows i +. log_q_diff cols i -. log_q_diff r i
      done;
      exp (!log_count -. (float_of_int (rows * cols) *. lq)))

let mean_rank ~q ~rows ~cols =
  let pmf = rank_pmf ~q ~rows ~cols in
  let acc = ref 0.0 in
  Array.iteri (fun r p -> acc := !acc +. (float_of_int r *. p)) pmf;
  !acc

let outside_hyperplane_decomposition ~q ~k ~coded =
  if k < 1 then invalid_arg "Rank_dist.outside_hyperplane_decomposition: k must be >= 1";
  if coded < 0 then invalid_arg "Rank_dist.outside_hyperplane_decomposition: coded < 0";
  let full = rank_pmf ~q ~rows:coded ~cols:k in
  let inside =
    if k = 1 then [| 1.0 |] (* the hyperplane is {0}: only rank 0 possible *)
    else rank_pmf ~q ~rows:coded ~cols:(k - 1)
  in
  let p_inside = Float.exp (-.float_of_int coded *. log (float_of_int q)) in
  Array.init (Array.length full) (fun r ->
      let within = if r < Array.length inside then inside.(r) else 0.0 in
      (r, Float.max 0.0 (full.(r) -. (p_inside *. within))))

let prob_spans ~q ~k ~coded =
  let pmf = rank_pmf ~q ~rows:coded ~cols:k in
  (* spanning means rank = k, which requires coded >= k *)
  if Array.length pmf > k then pmf.(k) else 0.0

let sample_rank rng ~q ~rows ~cols =
  let f = P2p_gf.Field.gf q in
  let m =
    Array.init rows (fun _ -> P2p_gf.Mat.random_vec f (P2p_prng.Rng.int_below rng) cols)
  in
  P2p_gf.Mat.rank f m
