lib/coding/lattice.mli:
