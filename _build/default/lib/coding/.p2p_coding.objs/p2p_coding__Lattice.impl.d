lib/coding/lattice.ml: Array Bytes Float Hashtbl Int List P2p_gf Queue
