lib/coding/subspace.mli: P2p_gf P2p_prng
