lib/coding/subspace.ml: Array List P2p_gf P2p_prng
