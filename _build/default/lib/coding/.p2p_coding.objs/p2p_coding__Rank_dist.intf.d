lib/coding/rank_dist.mli: P2p_prng
