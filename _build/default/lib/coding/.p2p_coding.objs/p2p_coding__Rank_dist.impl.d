lib/coding/rank_dist.ml: Array Float Int P2p_gf P2p_prng
