(** The lattice of subspaces of [F_q^K] — the coded type space.

    Under network coding the peer types are the subspaces [V ⊆ F_q^K]
    (Section VIII-B).  For small [q^K] we enumerate them all, precompute
    the order relation, intersections and element counts, and derive the
    exact quantities the type-level coded Markov chain needs:

    - the probability that a uniform member of [U] (zero included) moves a
      type-[V] peer to type [W];
    - the distribution of the span of [j] uniform random vectors (the
      arrival-type law of a peer gifted [j] coded pieces), by Möbius-style
      inversion of [P(span ⊆ V) = (|V|/q^K)^j] along the lattice.

    Vectors are encoded as integers in [0, q^K) via base-q digits; a
    subspace is stored as the sorted array of its member codes. *)

type t
(** The full lattice for one [(q, K)]. *)

type subspace = int
(** Index of a subspace within the lattice's enumeration. *)

val build : q:int -> k:int -> t
(** Enumerate every subspace.  Practical for [q^K <= 256] (e.g. q=2 K≤8,
    q=3 K≤5, q=4 K≤4); the subspace count grows with the Gaussian binomials.
    @raise Invalid_argument when [q^K > 256] or [q] is not a prime power. *)

val q : t -> int
val k : t -> int
val count : t -> int
(** Number of subspaces. *)

val dim : t -> subspace -> int
val size : t -> subspace -> int
(** [q^dim]. *)

val zero : t -> subspace
(** The trivial subspace [{0}]. *)

val full : t -> subspace
(** [F_q^K] itself. *)

val leq : t -> subspace -> subspace -> bool
(** Containment. *)

val inter : t -> subspace -> subspace -> subspace
val join : t -> subspace -> subspace -> subspace
(** Smallest subspace containing both. *)

val covers : t -> subspace -> subspace array
(** The subspaces one dimension above that contain the given one. *)

val hyperplanes : t -> subspace array
(** All subspaces of dimension [K−1]. *)

val members : t -> subspace -> int array
(** Sorted member vector codes (always starts with 0). *)

val upload_move_probability :
  t -> uploader:subspace -> downloader:subspace -> target:subspace -> float
(** Probability that a uniformly random member of the uploader's subspace
    (the transmitted coded piece) takes the downloader from its type to
    exactly [target].  Nonzero only when [target] covers the downloader
    within [join downloader uploader]; the no-move (useless) probability
    is [|downloader ∩ uploader| / |uploader|]. *)

val seed_move_probability : t -> downloader:subspace -> target:subspace -> float
(** Same for the fixed seed, which transmits a uniform vector of
    [F_q^K]. *)

val span_distribution : t -> coded:int -> float array
(** [span_distribution t ~coded:j] — entry [v] is the probability that [j]
    i.i.d. uniform vectors span exactly subspace [v].  Sums to 1. *)

val dim_of_vector_span : t -> int array -> subspace
(** The subspace spanned by the given member codes (for tests). *)
