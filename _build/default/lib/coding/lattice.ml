module Field = P2p_gf.Field

type subspace = int

type t = {
  q : int;
  k : int;
  qk : int;  (* q^k *)
  add_tbl : int array array;  (* vector addition on codes *)
  smul_tbl : int array array;  (* scalar multiplication: smul.(c).(v) *)
  members : int array array;  (* sorted member codes per subspace *)
  dims : int array;
  leq_tbl : Bytes.t;  (* count*count containment matrix *)
  inter_tbl : int array;  (* count*count *)
  join_tbl : int array;
  zero_id : int;
  full_id : int;
  covers : int array array;
  by_key : (int array, int) Hashtbl.t;
}

let q t = t.q
let k t = t.k
let count t = Array.length t.members
let dim t v = t.dims.(v)
let size t v = Array.length t.members.(v)
let zero t = t.zero_id
let full t = t.full_id
let members t v = Array.copy t.members.(v)

let leq t a b = Bytes.get t.leq_tbl ((a * count t) + b) = '\001'
let inter t a b = t.inter_tbl.((a * count t) + b)
let join t a b = t.join_tbl.((a * count t) + b)
let covers t v = Array.copy t.covers.(v)

let hyperplanes t =
  let want = t.k - 1 in
  Array.of_list
    (List.filter (fun v -> t.dims.(v) = want) (List.init (count t) (fun i -> i)))

(* ---- construction ---- *)

let decode ~q ~k code =
  let d = Array.make k 0 in
  let rec fill i c =
    if i < k then begin
      d.(i) <- c mod q;
      fill (i + 1) (c / q)
    end
  in
  fill 0 code;
  d

let encode ~q d = Array.fold_right (fun digit acc -> (acc * q) + digit) d 0

let build ~q ~k =
  let field = Field.gf q in
  if k < 1 then invalid_arg "Lattice.build: k must be >= 1";
  let qk_f = float_of_int q ** float_of_int k in
  if qk_f > 256.0 then invalid_arg "Lattice.build: q^k > 256 unsupported";
  let qk = int_of_float qk_f in
  (* vector operation tables on codes *)
  let add_tbl =
    Array.init qk (fun a ->
        let da = decode ~q ~k a in
        Array.init qk (fun b ->
            let db = decode ~q ~k b in
            encode ~q (Array.init k (fun i -> field.add da.(i) db.(i)))))
  in
  let smul_tbl =
    Array.init q (fun c ->
        Array.init qk (fun v ->
            let dv = decode ~q ~k v in
            encode ~q (Array.map (fun x -> field.mul c x) dv)))
  in
  (* close a member set under span with one extra vector *)
  let extend member_set v =
    (* members of S + <v> = { s + c*v : s in S, c in F_q } *)
    let seen = Array.make qk false in
    Array.iter
      (fun s ->
        for c = 0 to q - 1 do
          seen.(add_tbl.(s).(smul_tbl.(c).(v))) <- true
        done)
      member_set;
    let out = ref [] in
    for code = qk - 1 downto 0 do
      if seen.(code) then out := code :: !out
    done;
    Array.of_list !out
  in
  (* BFS over the lattice starting from {0} *)
  let by_key : (int array, int) Hashtbl.t = Hashtbl.create 256 in
  let member_list = ref [] in
  let n_subspaces = ref 0 in
  let register key =
    match Hashtbl.find_opt by_key key with
    | Some id -> (id, false)
    | None ->
        let id = !n_subspaces in
        incr n_subspaces;
        Hashtbl.replace by_key key id;
        member_list := key :: !member_list;
        if !n_subspaces > 5000 then
          invalid_arg "Lattice.build: more than 5000 subspaces (reduce q or k)";
        (id, true)
  in
  let zero_key = [| 0 |] in
  let zero_id, _ = register zero_key in
  let queue = Queue.create () in
  Queue.push zero_key queue;
  while not (Queue.is_empty queue) do
    let member_set = Queue.pop queue in
    let in_set = Array.make qk false in
    Array.iter (fun m -> in_set.(m) <- true) member_set;
    for v = 1 to qk - 1 do
      if not in_set.(v) then begin
        let bigger = extend member_set v in
        let _, fresh = register bigger in
        if fresh then Queue.push bigger queue
      end
    done
  done;
  let members = Array.make !n_subspaces [||] in
  List.iter (fun key -> members.(Hashtbl.find by_key key) <- key) !member_list;
  let n = !n_subspaces in
  let dims =
    Array.map
      (fun m ->
        (* |V| = q^dim *)
        let rec log_q x acc = if x = 1 then acc else log_q (x / q) (acc + 1) in
        log_q (Array.length m) 0)
      members
  in
  let full_id = Hashtbl.find by_key (Array.init qk (fun i -> i)) in
  (* containment, intersection, join *)
  let leq_tbl = Bytes.make (n * n) '\000' in
  let inter_tbl = Array.make (n * n) 0 in
  let join_tbl = Array.make (n * n) 0 in
  let sorted_subset a b =
    (* a, b sorted; is a subset of b? *)
    let la = Array.length a and lb = Array.length b in
    let rec go i j =
      if i >= la then true
      else if j >= lb then false
      else if a.(i) = b.(j) then go (i + 1) (j + 1)
      else if a.(i) > b.(j) then go i (j + 1)
      else false
    in
    go 0 0
  in
  let sorted_inter a b =
    let out = ref [] in
    let la = Array.length a and lb = Array.length b in
    let i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      if a.(!i) = b.(!j) then begin
        out := a.(!i) :: !out;
        incr i;
        incr j
      end
      else if a.(!i) < b.(!j) then incr i
      else incr j
    done;
    Array.of_list (List.rev !out)
  in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if sorted_subset members.(a) members.(b) then
        Bytes.set leq_tbl ((a * n) + b) '\001';
      inter_tbl.((a * n) + b) <- Hashtbl.find by_key (sorted_inter members.(a) members.(b));
      (* join: close members.(a) under the basis-ish vectors of b *)
      let acc = ref members.(a) in
      Array.iter
        (fun v ->
          let in_acc = Array.exists (fun x -> x = v) !acc in
          if not in_acc then acc := extend !acc v)
        members.(b);
      join_tbl.((a * n) + b) <- Hashtbl.find by_key !acc
    done
  done;
  let covers =
    Array.init n (fun v ->
        Array.of_list
          (List.filter
             (fun w ->
               dims.(w) = dims.(v) + 1 && Bytes.get leq_tbl ((v * n) + w) = '\001')
             (List.init n (fun i -> i))))
  in
  {
    q;
    k;
    qk;
    add_tbl;
    smul_tbl;
    members;
    dims;
    leq_tbl;
    inter_tbl;
    join_tbl;
    zero_id;
    full_id;
    covers;
    by_key;
  }

(* ---- probabilities ---- *)

let upload_move_probability t ~uploader ~downloader ~target =
  if
    t.dims.(target) <> t.dims.(downloader) + 1
    || not (leq t downloader target)
  then 0.0
  else begin
    (* the transmitted vector must lie in uploader ∩ target but not in
       downloader; any such vector takes downloader exactly to target *)
    let useful =
      size t (inter t target uploader) - size t (inter t downloader uploader)
    in
    if useful <= 0 then 0.0 else float_of_int useful /. float_of_int (size t uploader)
  end

let seed_move_probability t ~downloader ~target =
  if t.dims.(target) <> t.dims.(downloader) + 1 || not (leq t downloader target) then 0.0
  else
    float_of_int (size t target - size t downloader) /. float_of_int t.qk

let span_distribution t ~coded =
  if coded < 0 then invalid_arg "Lattice.span_distribution: negative coded count";
  let n = count t in
  let below v = (float_of_int (size t v) /. float_of_int t.qk) ** float_of_int coded in
  let exact = Array.make n 0.0 in
  (* process by increasing dimension: P(=V) = P(⊆V) − Σ_{W⊂V} P(=W) *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare t.dims.(a) t.dims.(b)) order;
  Array.iter
    (fun v ->
      let smaller = ref 0.0 in
      for w = 0 to n - 1 do
        if w <> v && leq t w v then smaller := !smaller +. exact.(w)
      done;
      exact.(v) <- Float.max 0.0 (below v -. !smaller))
    order;
  exact

let dim_of_vector_span t codes =
  let current = ref [| 0 |] in
  let extend_with v =
    let in_set = Array.exists (fun x -> x = v) !current in
    if not in_set then begin
      let seen = Array.make t.qk false in
      Array.iter
        (fun s ->
          for c = 0 to t.q - 1 do
            seen.(t.add_tbl.(s).(t.smul_tbl.(c).(v))) <- true
          done)
        !current;
      let out = ref [] in
      for code = t.qk - 1 downto 0 do
        if seen.(code) then out := code :: !out
      done;
      current := Array.of_list !out
    end
  in
  Array.iter extend_with codes;
  Hashtbl.find t.by_key !current
