lib/pieceset/pieceset.ml: Format Int List Printf
