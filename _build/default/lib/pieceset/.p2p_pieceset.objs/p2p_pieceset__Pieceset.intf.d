lib/pieceset/pieceset.mli: Format
