(** Sets of file pieces, the paper's peer types.

    A file split into [K] pieces gives the type space [C], the power set of
    [{0, ..., K-1}] (the paper numbers pieces from 1; we use 0-based indices
    internally and print 1-based to match the paper).  A peer holding piece
    set [c] is a "type [c] peer"; the full set is the peer-seed type.

    Sets are immutable bitsets packed in a native [int], supporting up to 62
    pieces — far beyond what any state-space experiment can enumerate, and
    enough for every scenario in the paper. *)

type t = private int
(** A piece set.  The representation is the obvious bitmask; exposing it as
    [private int] lets clients use sets directly as array indices (dense
    state vectors over all [2^K] types) without being able to forge
    out-of-range values. *)

type piece = int
(** A piece index in [0, K-1]. *)

val max_pieces : int
(** Largest supported [K] (62). *)

val empty : t
(** The empty collection: a newly arrived peer with nothing. *)

val full : k:int -> t
(** [full ~k] is the complete collection [{0,...,k-1}]: the peer-seed type.
    @raise Invalid_argument unless [1 <= k <= max_pieces]. *)

val singleton : piece -> t
val mem : piece -> t -> bool
val add : piece -> t -> t
val remove : piece -> t -> t
val cardinal : t -> int

val is_empty : t -> bool
val is_full : k:int -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true iff [a ⊆ b]. *)

val proper_subset : t -> t -> bool

val can_help : uploader:t -> downloader:t -> bool
(** [can_help ~uploader ~downloader] is the paper's usefulness test: the
    uploader holds at least one piece the downloader lacks, i.e.
    [not (uploader ⊆ downloader)]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val complement : k:int -> t -> t
(** [complement ~k c] is [{0..k-1} \ c], the pieces still needed. *)

val missing_count : k:int -> t -> int
(** [missing_count ~k c = k - cardinal c]. *)

val elements : t -> piece list
(** Ascending order. *)

val of_list : piece list -> t
(** @raise Invalid_argument on a piece outside [0, max_pieces). *)

val iter : (piece -> unit) -> t -> unit
val fold : (piece -> 'a -> 'a) -> t -> 'a -> 'a

val nth_element : t -> int -> piece
(** [nth_element c i] is the [i]-th smallest piece of [c] (0-based).
    Constant-time per bit scanned. @raise Invalid_argument if
    [i >= cardinal c]. *)

val choose_uniform : (int -> int) -> t -> piece
(** [choose_uniform draw c] picks a uniformly random element of [c], using
    [draw n] as a uniform sample on [0, n-1] (pass [Rng.int_below rng]).
    @raise Invalid_argument on the empty set. *)

val lowest : t -> piece
(** Smallest element. @raise Invalid_argument on the empty set. *)

val to_index : t -> int
(** The bitmask, for use as a dense array index in [0, 2^K). *)

val of_index : int -> t
(** Inverse of {!to_index}. @raise Invalid_argument if negative or too
    large. *)

val all : k:int -> t list
(** Every subset of [{0..k-1}], by increasing bitmask — [2^k] sets. *)

val all_proper : k:int -> t list
(** Every subset except the full one — the index set of Eq. (4). *)

val subsets_of : t -> t list
(** All subsets of the given set, including itself and the empty set:
    the paper's lower set [E_C]. *)

val strict_supersets_within : k:int -> t -> t list
(** All [C'] with [C ⊂ C' ⊆ {0..k-1}]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [{1,3,4}] using the paper's 1-based piece numbers. *)

val to_string : t -> string
