(** Discrete-event simulation engine.

    A thin deterministic scheduler over {!Heap}: events are closures fired
    in timestamp order; ties fire in scheduling order.  The agent-level P2P
    simulator builds its peer clocks, arrival streams, and departure timers
    on top of this. *)

type t

type event_handle
(** Returned by {!schedule}; pass to {!cancel}. *)

val create : ?t0:float -> unit -> t
val now : t -> float
(** Current simulation time. *)

val schedule : t -> at:float -> (t -> unit) -> event_handle
(** [schedule t ~at f] fires [f t] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> delay:float -> (t -> unit) -> event_handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t +. delay) f].
    @raise Invalid_argument on a negative delay. *)

val cancel : t -> event_handle -> bool
(** Cancel a pending event; [false] if it already fired or was cancelled. *)

val pending : t -> int
(** Number of events still queued. *)

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. *)

val run_until : t -> horizon:float -> unit
(** Fire every event with timestamp [<= horizon], then advance the clock to
    [horizon].  Events scheduled during the run are honoured. *)

val run_while : t -> (t -> bool) -> unit
(** Fire events while the predicate holds (checked before each event) and
    the queue is nonempty. *)

val events_fired : t -> int
(** Total number of events fired so far. *)
