type t = {
  mutable clock : float;
  queue : (t -> unit) Heap.t;
  mutable fired : int;
}

type event_handle = Heap.handle

let create ?(t0 = 0.0) () = { clock = t0; queue = Heap.create (); fired = 0 }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at t.clock);
  Heap.insert t.queue ~key:at f

let schedule_after t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) f

let cancel t h = Heap.remove t.queue h
let pending t = Heap.size t.queue

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.fired <- t.fired + 1;
      f t;
      true

let run_until t ~horizon =
  let continue = ref true in
  while !continue do
    match Heap.min_key t.queue with
    | Some key when key <= horizon -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if horizon > t.clock then t.clock <- horizon

let run_while t pred =
  let continue = ref true in
  while !continue do
    if (not (pred t)) || not (step t) then continue := false
  done

let events_fired t = t.fired
