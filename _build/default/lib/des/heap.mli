(** Min-heap keyed by float timestamps, with O(log n) removal of arbitrary
    entries via handles.

    This is the event queue of the discrete-event engine.  Handles allow a
    peer's pending clock tick to be cancelled when the peer departs, which
    the agent-level P2P simulator does constantly. *)

type 'a t

type handle
(** A stable reference to an inserted element. *)

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val insert : 'a t -> key:float -> 'a -> handle
(** Insert an element with priority [key]; smaller keys pop first.  Ties
    break by insertion order (FIFO), which keeps simulations deterministic. *)

val min_key : 'a t -> float option
val pop_min : 'a t -> (float * 'a) option

val remove : 'a t -> handle -> bool
(** [remove t h] deletes the element referenced by [h]; returns [false] if
    it was already popped or removed. *)

val mem : 'a t -> handle -> bool
(** Whether the handle still references a queued element. *)

val clear : 'a t -> unit

val validate : 'a t -> bool
(** Checks the heap invariant; for tests. *)
