type handle = { mutable pos : int } (* -1 once popped or removed *)

type 'a entry = { key : float; seq : int; value : 'a; h : handle }

type 'a t = {
  mutable store : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { store = [||]; len = 0; next_seq = 0 }

let size t = t.len
let is_empty t = t.len = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let a = t.store.(i) and b = t.store.(j) in
  t.store.(i) <- b;
  t.store.(j) <- a;
  a.h.pos <- j;
  b.h.pos <- i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.store.(i) t.store.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  if left < t.len then begin
    let right = left + 1 in
    let smallest = if right < t.len && less t.store.(right) t.store.(left) then right else left in
    if less t.store.(smallest) t.store.(i) then begin
      swap t i smallest;
      sift_down t smallest
    end
  end

let ensure_capacity t entry =
  if t.len = Array.length t.store then begin
    let cap = Int.max 16 (2 * t.len) in
    let bigger = Array.make cap entry in
    Array.blit t.store 0 bigger 0 t.len;
    t.store <- bigger
  end

let insert t ~key value =
  let h = { pos = t.len } in
  let entry = { key; seq = t.next_seq; value; h } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t entry;
  t.store.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1);
  h

let min_key t = if t.len = 0 then None else Some t.store.(0).key

let delete_at t i =
  let entry = t.store.(i) in
  entry.h.pos <- -1;
  t.len <- t.len - 1;
  if i <> t.len then begin
    t.store.(i) <- t.store.(t.len);
    t.store.(i).h.pos <- i;
    sift_down t i;
    sift_up t i
  end;
  entry

let pop_min t =
  if t.len = 0 then None
  else begin
    let entry = delete_at t 0 in
    Some (entry.key, entry.value)
  end

let owns t h = h.pos >= 0 && h.pos < t.len && t.store.(h.pos).h == h

let remove t h =
  if not (owns t h) then false
  else begin
    ignore (delete_at t h.pos);
    true
  end

let mem t h = owns t h

let clear t =
  for i = 0 to t.len - 1 do
    t.store.(i).h.pos <- -1
  done;
  t.len <- 0

let validate t =
  let ok = ref true in
  for i = 1 to t.len - 1 do
    let parent = (i - 1) / 2 in
    if less t.store.(i) t.store.(parent) then ok := false;
    if t.store.(i).h.pos <> i then ok := false
  done;
  if t.len > 0 && t.store.(0).h.pos <> 0 then ok := false;
  !ok
