lib/des/heap.ml: Array Int
