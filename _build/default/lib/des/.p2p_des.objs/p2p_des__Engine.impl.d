lib/des/engine.ml: Heap Printf
