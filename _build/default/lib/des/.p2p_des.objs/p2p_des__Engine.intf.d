lib/des/engine.mli:
