lib/des/heap.mli:
