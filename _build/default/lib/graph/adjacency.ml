module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist

(* Per-node neighbor set: dense array for O(1) uniform sampling plus a
   position table for O(1) removal. *)
type node_entry = {
  mutable neigh : int array;
  mutable len : int;
  pos : (int, int) Hashtbl.t;
}

type t = {
  nodes : (int, node_entry) Hashtbl.t;
  mutable node_list : int array;  (* dense list of node ids *)
  mutable node_len : int;
  node_slot : (int, int) Hashtbl.t;  (* id -> index in node_list *)
  mutable edges : int;
}

let create () =
  {
    nodes = Hashtbl.create 64;
    node_list = Array.make 16 0;
    node_len = 0;
    node_slot = Hashtbl.create 64;
    edges = 0;
  }

let node_count t = t.node_len
let edge_count t = t.edges
let mem_node t id = Hashtbl.mem t.nodes id

let entry t id =
  match Hashtbl.find_opt t.nodes id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Adjacency: unknown node %d" id)

let mem_edge t a b =
  match Hashtbl.find_opt t.nodes a with
  | None -> false
  | Some e -> Hashtbl.mem e.pos b

let add_node t id =
  if id < 0 then invalid_arg "Adjacency.add_node: negative id";
  if Hashtbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Adjacency.add_node: node %d exists" id);
  Hashtbl.replace t.nodes id { neigh = Array.make 4 0; len = 0; pos = Hashtbl.create 8 };
  if t.node_len = Array.length t.node_list then begin
    let bigger = Array.make (2 * t.node_len) 0 in
    Array.blit t.node_list 0 bigger 0 t.node_len;
    t.node_list <- bigger
  end;
  t.node_list.(t.node_len) <- id;
  Hashtbl.replace t.node_slot id t.node_len;
  t.node_len <- t.node_len + 1

let push_neighbor e id =
  if e.len = Array.length e.neigh then begin
    let bigger = Array.make (Int.max 4 (2 * e.len)) 0 in
    Array.blit e.neigh 0 bigger 0 e.len;
    e.neigh <- bigger
  end;
  e.neigh.(e.len) <- id;
  Hashtbl.replace e.pos id e.len;
  e.len <- e.len + 1

let drop_neighbor e id =
  match Hashtbl.find_opt e.pos id with
  | None -> false
  | Some i ->
      e.len <- e.len - 1;
      if i <> e.len then begin
        let moved = e.neigh.(e.len) in
        e.neigh.(i) <- moved;
        Hashtbl.replace e.pos moved i
      end;
      Hashtbl.remove e.pos id;
      true

let add_edge t a b =
  if a = b then invalid_arg "Adjacency.add_edge: self loop";
  let ea = entry t a and eb = entry t b in
  if not (Hashtbl.mem ea.pos b) then begin
    push_neighbor ea b;
    push_neighbor eb a;
    t.edges <- t.edges + 1
  end

let remove_edge t a b =
  match (Hashtbl.find_opt t.nodes a, Hashtbl.find_opt t.nodes b) with
  | Some ea, Some eb ->
      let removed = drop_neighbor ea b in
      if removed then begin
        ignore (drop_neighbor eb a);
        t.edges <- t.edges - 1
      end
  | _ -> ()

let remove_node t id =
  let e = entry t id in
  (* detach from every neighbor *)
  for i = 0 to e.len - 1 do
    let other = e.neigh.(i) in
    ignore (drop_neighbor (entry t other) id)
  done;
  t.edges <- t.edges - e.len;
  Hashtbl.remove t.nodes id;
  let slot = Hashtbl.find t.node_slot id in
  t.node_len <- t.node_len - 1;
  if slot <> t.node_len then begin
    let moved = t.node_list.(t.node_len) in
    t.node_list.(slot) <- moved;
    Hashtbl.replace t.node_slot moved slot
  end;
  Hashtbl.remove t.node_slot id

let degree t id = (entry t id).len

let neighbors t id =
  let e = entry t id in
  Array.sub e.neigh 0 e.len

let iter_neighbors t id f =
  let e = entry t id in
  for i = 0 to e.len - 1 do
    f e.neigh.(i)
  done

let sample_neighbor t id rng =
  let e = entry t id in
  if e.len = 0 then None else Some e.neigh.(Rng.int_below rng e.len)

let random_node t rng =
  if t.node_len = 0 then None else Some t.node_list.(Rng.int_below rng t.node_len)

let attach_uniform t id ~degree rng =
  let e = entry t id in
  ignore e;
  let others = t.node_len - 1 in
  let want = Int.min degree others in
  if want > 0 then begin
    (* sample distinct slots among the other nodes *)
    let chosen = Hashtbl.create (2 * want) in
    let attached = ref 0 in
    while !attached < want do
      let candidate = t.node_list.(Rng.int_below rng t.node_len) in
      if candidate <> id && not (Hashtbl.mem chosen candidate) then begin
        Hashtbl.add chosen candidate ();
        add_edge t id candidate;
        incr attached
      end
    done
  end

let mean_degree t =
  if t.node_len = 0 then nan else 2.0 *. float_of_int t.edges /. float_of_int t.node_len

let connected_component_sizes t =
  let visited = Hashtbl.create (2 * t.node_len) in
  let sizes = ref [] in
  for i = 0 to t.node_len - 1 do
    let root = t.node_list.(i) in
    if not (Hashtbl.mem visited root) then begin
      let size = ref 0 in
      let queue = Queue.create () in
      Queue.push root queue;
      Hashtbl.replace visited root ();
      while not (Queue.is_empty queue) do
        let node = Queue.pop queue in
        incr size;
        iter_neighbors t node (fun other ->
            if not (Hashtbl.mem visited other) then begin
              Hashtbl.replace visited other ();
              Queue.push other queue
            end)
      done;
      sizes := !size :: !sizes
    end
  done;
  List.sort (fun a b -> Int.compare b a) !sizes

let validate t =
  let ok = ref true in
  let half_edges = ref 0 in
  Hashtbl.iter
    (fun id e ->
      half_edges := !half_edges + e.len;
      for i = 0 to e.len - 1 do
        let other = e.neigh.(i) in
        (match Hashtbl.find_opt t.nodes other with
        | None -> ok := false
        | Some eo -> if not (Hashtbl.mem eo.pos id) then ok := false);
        if Hashtbl.find_opt e.pos other <> Some i then ok := false
      done)
    t.nodes;
  if !half_edges <> 2 * t.edges then ok := false;
  if Hashtbl.length t.nodes <> t.node_len then ok := false;
  !ok
