lib/graph/adjacency.ml: Array Hashtbl Int List P2p_prng Printf Queue
