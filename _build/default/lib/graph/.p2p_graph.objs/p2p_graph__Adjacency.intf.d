lib/graph/adjacency.mli: P2p_prng
