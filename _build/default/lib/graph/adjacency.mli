(** Dynamic undirected graphs over integer node ids.

    The paper's model has every peer able to contact every other peer; its
    conclusion asks how the results adapt to other topologies.  This
    module is the substrate for that experiment: an adjacency structure
    that supports the churn of a P2P swarm — nodes appear with a handful
    of random attachments and disappear with all their edges — with O(1)
    expected operations and uniform neighbor sampling.

    Node ids are arbitrary nonnegative integers supplied by the caller
    (the simulator uses peer ids). *)

type t

val create : unit -> t
val node_count : t -> int
val edge_count : t -> int
val mem_node : t -> int -> bool
val mem_edge : t -> int -> int -> bool

val add_node : t -> int -> unit
(** @raise Invalid_argument if the node already exists. *)

val remove_node : t -> int -> unit
(** Removes the node and every incident edge.
    @raise Invalid_argument if absent. *)

val add_edge : t -> int -> int -> unit
(** Idempotent; self-loops are rejected.
    @raise Invalid_argument if either endpoint is absent. *)

val remove_edge : t -> int -> int -> unit
(** Idempotent. *)

val degree : t -> int -> int
val neighbors : t -> int -> int array
(** A copy of the neighbor list. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit

val sample_neighbor : t -> int -> P2p_prng.Rng.t -> int option
(** Uniform over the node's neighbors; [None] if isolated. *)

val attach_uniform : t -> int -> degree:int -> P2p_prng.Rng.t -> unit
(** Connect an existing node to [min degree (others)] distinct nodes
    chosen uniformly among the other nodes — the arrival rule of a
    tracker that hands each newcomer a random peer set. *)

val random_node : t -> P2p_prng.Rng.t -> int option
(** Uniform over all nodes. *)

val mean_degree : t -> float
val connected_component_sizes : t -> int list
(** Sorted descending (BFS snapshot; for diagnostics). *)

val validate : t -> bool
(** Checks symmetry and degree bookkeeping (for tests). *)
