lib/core/hetero.mli: P2p_pieceset P2p_prng Params Stability
