lib/core/policy.ml: Array Float List P2p_pieceset P2p_prng State
