lib/core/fluid.ml: Array Float List Option P2p_pieceset Params State
