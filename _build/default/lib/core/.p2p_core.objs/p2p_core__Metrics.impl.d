lib/core/metrics.ml: Array Int List Option P2p_pieceset Sim_agent State
