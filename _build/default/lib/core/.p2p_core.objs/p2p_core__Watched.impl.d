lib/core/watched.ml: Array Float Hashtbl Int List Option P2p_pieceset Scenario Sim_markov State
