lib/core/sim_agent.mli: P2p_pieceset P2p_prng Params Policy State
