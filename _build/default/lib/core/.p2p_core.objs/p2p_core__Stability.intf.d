lib/core/stability.mli: Format P2p_pieceset Params
