lib/core/classify.mli: Format Params Policy Sim_markov
