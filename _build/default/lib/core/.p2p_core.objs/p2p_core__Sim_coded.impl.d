lib/core/sim_coded.ml: Array Float List P2p_coding P2p_des P2p_gf P2p_prng P2p_stats Stability
