lib/core/balance.ml: Array Float Int
