lib/core/scenario.mli: P2p_pieceset Params
