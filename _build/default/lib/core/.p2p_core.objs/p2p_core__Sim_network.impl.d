lib/core/sim_network.ml: Array Float Hashtbl Int List Option P2p_graph P2p_pieceset P2p_prng P2p_stats Params State
