lib/core/state.mli: Format P2p_pieceset
