lib/core/truncated.ml: Array Balance Float Hashtbl Int List P2p_pieceset Params Rate State
