lib/core/balance.mli:
