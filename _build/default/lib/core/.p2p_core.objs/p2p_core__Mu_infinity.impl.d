lib/core/mu_infinity.ml: List P2p_prng P2p_stats
