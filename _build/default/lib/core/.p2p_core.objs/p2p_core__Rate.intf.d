lib/core/rate.mli: P2p_pieceset Params Policy State
