lib/core/params.mli: Format P2p_pieceset
