lib/core/erlang_chain.mli: P2p_pieceset Params
