lib/core/stability.ml: Array Float Format List P2p_coding P2p_pieceset Params
