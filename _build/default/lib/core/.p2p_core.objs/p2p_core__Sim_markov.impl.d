lib/core/sim_markov.ml: Array Float List P2p_pieceset P2p_prng P2p_stats Params Policy State
