lib/core/watched.mli: P2p_prng
