lib/core/mu_infinity.mli: P2p_prng
