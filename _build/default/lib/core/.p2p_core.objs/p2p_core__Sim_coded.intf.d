lib/core/sim_coded.mli: P2p_prng Stability
