lib/core/reachability.ml: Hashtbl List P2p_pieceset Params Policy Printf Queue Rate State String
