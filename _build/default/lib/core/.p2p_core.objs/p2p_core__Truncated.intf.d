lib/core/truncated.mli: P2p_pieceset Params
