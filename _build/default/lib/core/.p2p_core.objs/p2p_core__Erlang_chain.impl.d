lib/core/erlang_chain.ml: Array Balance Hashtbl List P2p_pieceset Params Rate State
