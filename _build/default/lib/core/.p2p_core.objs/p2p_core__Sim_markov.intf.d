lib/core/sim_markov.mli: P2p_pieceset P2p_prng Params Policy State
