lib/core/sim_agent.ml: Array Float Int List Option P2p_des P2p_pieceset P2p_prng P2p_stats Params Policy State
