lib/core/report.ml: Array Char Filename Float Int List Printf String Sys
