lib/core/lyapunov.mli: P2p_pieceset P2p_prng Params State
