lib/core/metrics.mli: P2p_pieceset Sim_agent State
