lib/core/sim_network.mli: P2p_pieceset P2p_prng Params State
