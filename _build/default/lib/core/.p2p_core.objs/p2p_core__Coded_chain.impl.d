lib/core/coded_chain.ml: Array Balance Float Hashtbl List Lyapunov P2p_coding P2p_prng P2p_stats Printf
