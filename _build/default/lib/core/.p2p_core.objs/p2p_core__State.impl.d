lib/core/state.ml: Array Format Hashtbl List Option P2p_pieceset Printf
