lib/core/hetero.ml: Array Float Int List P2p_des P2p_pieceset P2p_prng P2p_stats Params Stability State
