lib/core/coded_chain.mli: Lyapunov P2p_coding P2p_prng
