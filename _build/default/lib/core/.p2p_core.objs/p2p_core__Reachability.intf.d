lib/core/reachability.mli: P2p_pieceset Params Policy
