lib/core/classify.ml: Array Float Format Int List P2p_stats Policy Sim_markov
