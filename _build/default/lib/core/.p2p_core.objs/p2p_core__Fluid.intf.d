lib/core/fluid.mli: P2p_pieceset Params State
