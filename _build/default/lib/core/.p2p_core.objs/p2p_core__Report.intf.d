lib/core/report.mli:
