lib/core/policy.mli: P2p_pieceset P2p_prng State
