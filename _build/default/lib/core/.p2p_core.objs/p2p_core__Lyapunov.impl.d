lib/core/lyapunov.ml: Array Float Int List P2p_pieceset P2p_prng Params Printf Rate State
