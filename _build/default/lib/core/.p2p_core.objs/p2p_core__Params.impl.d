lib/core/params.ml: Array Float Format Hashtbl List Option P2p_pieceset Printf
