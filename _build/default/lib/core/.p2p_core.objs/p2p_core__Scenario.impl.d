lib/core/scenario.ml: Array Float List P2p_pieceset Params
