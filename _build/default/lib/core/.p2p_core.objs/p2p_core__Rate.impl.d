lib/core/rate.ml: Array List P2p_pieceset Params Policy Printf State
