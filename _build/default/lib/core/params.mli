(** Model parameters (Section III).

    A parameter set fixes the whole network law: the number of pieces [K],
    the fixed seed's contact-upload rate [U_s], the peer contact-upload
    rate [μ], the peer-seed departure rate [γ] (with [γ = ∞] meaning peers
    leave the instant they complete the file), and the Poisson arrival
    rates [λ_C] for every piece collection [C] new peers may bring. *)

module Pieceset = P2p_pieceset.Pieceset

type t = private {
  k : int;  (** number of pieces, K >= 1 *)
  us : float;  (** fixed seed contact rate U_s >= 0 *)
  mu : float;  (** peer contact rate μ > 0 *)
  gamma : float;  (** peer-seed departure rate; [infinity] = leave at once *)
  arrivals : (Pieceset.t * float) array;
      (** the [(C, λ_C)] pairs with [λ_C > 0], deduplicated *)
}

val make :
  k:int -> us:float -> mu:float -> gamma:float -> arrivals:(Pieceset.t * float) list -> t
(** Validates the model assumptions:
    - [1 <= k <= Pieceset.max_pieces], [us >= 0], [mu > 0], [gamma > 0];
    - every arrival type fits within [{0..k-1}] and has [λ_C >= 0]
      (zero-rate entries are dropped, duplicate types summed);
    - [λ_total > 0] (the paper's non-triviality assumption);
    - if [gamma = infinity] then [λ_F = 0] (the paper's convention).
    @raise Invalid_argument otherwise. *)

val immediate_departure : t -> bool
(** [γ = ∞]. *)

val mu_over_gamma : t -> float
(** μ/γ with the [γ = ∞] convention giving 0. *)

val lambda_total : t -> float
val lambda : t -> Pieceset.t -> float
(** [λ_C] ; 0 for types that do not arrive. *)

val lambda_containing : t -> piece:int -> float
(** [Σ_{C ∋ piece} λ_C]: arrival rate of peers gifted with the piece. *)

val lambda_within : t -> Pieceset.t -> float
(** [Σ_{C ⊆ S} λ_C]: arrival rate of peers that can join the type-[S]
    group. *)

val full_set : t -> Pieceset.t
val piece_can_enter : t -> piece:int -> bool
(** Whether new copies of the piece can enter: [U_s > 0] or some arriving
    type contains it. *)

val with_gamma : t -> gamma:float -> t
val with_us : t -> us:float -> t
val with_arrivals : t -> arrivals:(Pieceset.t * float) list -> t

val pp : Format.formatter -> t -> unit
