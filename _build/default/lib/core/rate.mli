(** Transition rates of the P2P Markov chain — Eq. (1) and the generator
    matrix [Q] of Section III.

    Two views are provided: a closed-form evaluation of the paper's
    [Γ_{C, C∪{i}}] under random-useful selection, and a generic
    enumeration of every outgoing transition of a state under an arbitrary
    piece-selection policy.  The enumeration powers the aggregate
    simulator's correctness tests and the exact Lyapunov drift of
    experiment E11. *)

module Pieceset = P2p_pieceset.Pieceset

type transition =
  | Arrival of Pieceset.t  (** a new type-[C] peer appears *)
  | Seed_departure  (** one peer seed leaves (only when γ < ∞) *)
  | Transfer of { downloader : Pieceset.t; piece : int }
      (** a type-[downloader] peer receives [piece]; if that completes the
          file and γ = ∞ the peer leaves immediately *)

val gamma_c_i : Params.t -> State.t -> c:Pieceset.t -> piece:int -> float
(** The paper's Eq. (1):
    [Γ_{C,C∪{i}} = (x_C/n)(U_s/(K−|C|) + μ Σ_{S ∋ i} x_S/|S−C|)].
    Zero when the state is empty, [x_C = 0], or [piece ∈ C]. *)

val transfer_rate :
  policy:Policy.t -> Params.t -> State.t -> c:Pieceset.t -> piece:int -> float
(** The same aggregate rate under a general policy [h]:
    [(x_C/n)(U_s h_i(C, seed, x) + μ Σ_S x_S h_i(C, S, x))].
    Coincides with {!gamma_c_i} for {!Policy.random_useful}. *)

val transitions : ?policy:Policy.t -> Params.t -> State.t -> (transition * float) list
(** Every outgoing transition with a positive rate (default policy:
    random-useful). *)

val total_rate : ?policy:Policy.t -> Params.t -> State.t -> float

val apply : Params.t -> State.t -> transition -> unit
(** Mutate the state by one transition, implementing the γ = ∞ departure
    convention. @raise Invalid_argument on an impossible transition. *)

val target_description : Params.t -> transition -> string
(** Human-readable label, for traces. *)
