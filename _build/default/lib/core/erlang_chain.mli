(** Exact analysis with Erlang peer-seed dwell times (method of stages).

    The paper assumes Exp(γ) dwell for tractability and conjectures in its
    conclusion that the results hold for general distributions.  Replacing
    the dwell by an Erlang-[m] law with the same mean [1/γ] keeps the
    system Markov at the cost of [m] seed stages in the state, so the
    truncated-space machinery still applies {e exactly}.  Experiment E19
    compares the exact stationary population across [m] — identical
    stability boundary, mildly different constants — numerical evidence
    for the conjecture one distribution family at a time.

    Piece-transfer rates are exactly Eq. (1); a seed in any stage holds the
    complete file and uploads like any peer. *)

module Pieceset = P2p_pieceset.Pieceset

type t

val build : Params.t -> stages:int -> n_max:int -> t
(** The truncated chain for the parameters with the Exp dwell replaced by
    Erlang-[stages] of the same mean.  Requires finite [γ].
    @raise Invalid_argument on [stages < 1], [γ = ∞], or a state space
    beyond ~2 million states. *)

val state_count : t -> int
val stages : t -> int

type solved = { mean_n : float; mean_seeds : float; mass_at_cap : float; p_empty : float }

val solve : ?tol:float -> t -> solved
(** Stationary distribution via {!Balance}; aggregates of interest. *)
