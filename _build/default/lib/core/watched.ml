module Pieceset = P2p_pieceset.Pieceset

type slow = { n : int; pieces : int }

type trace = {
  visits : slow array;
  top_layer_jumps : (int * int) list;
  fast_time_fraction : float;
}

let slow_of_state state =
  match State.occupied state with
  | 0 -> Some { n = 0; pieces = 0 }
  | 1 ->
      let c, count = List.hd (State.to_alist state) in
      Some { n = count; pieces = Pieceset.cardinal c }
  | _ -> None

let extract ?(min_top_n = 2) ~rng ~k ~lambda ~mu ~horizon () =
  let params = Scenario.symmetric_singletons ~k ~lambda ~mu in
  let visits = ref [] in
  let jumps : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let last_slow = ref (Some { n = 0; pieces = 0 }) in
  let currently_slow = ref true in
  let prev_time = ref 0.0 in
  let fast_time = ref 0.0 in
  let observer ~time ~state =
    let dt = time -. !prev_time in
    if not !currently_slow then fast_time := !fast_time +. dt;
    prev_time := time;
    match slow_of_state state with
    | None -> currently_slow := false
    | Some s ->
        currently_slow := true;
        (match !last_slow with
        | Some prev when prev.pieces = k - 1 && prev.n >= min_top_n ->
            let dn = s.n - prev.n in
            (* only count jumps that keep us on the top layer or collapse
               out of it; collapses show up as visits but not as top-layer
               jumps (matching the analytic pmf's support) *)
            if s.pieces = k - 1 || s.n <= 1 then begin
              if s.pieces = k - 1 then
                Hashtbl.replace jumps dn
                  (1 + Option.value (Hashtbl.find_opt jumps dn) ~default:0)
            end
        | Some _ | None -> ());
        visits := s :: !visits;
        last_slow := Some s
  in
  let config = Sim_markov.default_config params in
  ignore (Sim_markov.run ~observer ~rng config ~horizon);
  let jump_list =
    Hashtbl.fold (fun dn c acc -> (dn, c) :: acc) jumps []
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
  in
  {
    visits = Array.of_list (List.rev !visits);
    top_layer_jumps = jump_list;
    fast_time_fraction = !fast_time /. Float.max 1e-12 !prev_time;
  }

let analytic_jump_pmf ~k ~max_drop =
  if k < 2 then invalid_arg "Watched.analytic_jump_pmf: k must be >= 2";
  if max_drop < 1 then invalid_arg "Watched.analytic_jump_pmf: max_drop must be >= 1";
  let kf = float_of_int k in
  (* P(Z = z) = C(z + K - 2, z) (1/2)^(z + K - 1) *)
  let log_choose n r =
    let acc = ref 0.0 in
    for i = 1 to r do
      acc := !acc +. log (float_of_int (n - r + i)) -. log (float_of_int i)
    done;
    !acc
  in
  let p_z z =
    exp (log_choose (z + k - 2) z +. (float_of_int (z + k - 1) *. log 0.5))
  in
  let up = ((kf -. 1.0) /. kf, 1) in
  let drops =
    List.init max_drop (fun z -> (-z, p_z z /. kf))
  in
  let covered =
    List.fold_left (fun acc (_, p) -> acc +. p) (fst up) drops
  in
  let tail = Float.max 0.0 (1.0 -. covered) in
  let drops =
    List.map
      (fun (dn, p) -> if dn = -(max_drop - 1) then (dn, p +. tail) else (dn, p))
      drops
  in
  ((1, fst up) :: drops)
  |> List.sort (fun (a, _) (b, _) -> Int.compare b a)

let total_variation pmf counts =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  if total = 0 then 1.0
  else begin
    let emp dn =
      float_of_int (Option.value (List.assoc_opt dn counts) ~default:0)
      /. float_of_int total
    in
    let support =
      List.sort_uniq Int.compare (List.map fst pmf @ List.map fst counts)
    in
    let acc =
      List.fold_left
        (fun acc dn ->
          let p = Option.value (List.assoc_opt dn pmf) ~default:0.0 in
          acc +. Float.abs (p -. emp dn))
        0.0 support
    in
    acc /. 2.0
  end
