module Pieceset = P2p_pieceset.Pieceset

let example1 ~lambda0 ~us ~mu ~gamma =
  Params.make ~k:1 ~us ~mu ~gamma ~arrivals:[ (Pieceset.empty, lambda0) ]

let example1_threshold ~us ~mu ~gamma =
  if (not (Float.is_finite gamma)) || mu < gamma then begin
    let rho = if Float.is_finite gamma then mu /. gamma else 0.0 in
    us /. (1.0 -. rho)
  end
  else infinity

let example2 ~lambda12 ~lambda34 ~mu =
  Params.make ~k:4 ~us:0.0 ~mu ~gamma:infinity
    ~arrivals:[ (Pieceset.of_list [ 0; 1 ], lambda12); (Pieceset.of_list [ 2; 3 ], lambda34) ]

let example3 ~lambda1 ~lambda2 ~lambda3 ~mu ~gamma =
  Params.make ~k:3 ~us:0.0 ~mu ~gamma
    ~arrivals:
      [
        (Pieceset.singleton 0, lambda1);
        (Pieceset.singleton 1, lambda2);
        (Pieceset.singleton 2, lambda3);
      ]

let example3_lhs_rhs (p : Params.t) =
  if p.k <> 3 then invalid_arg "Scenario.example3_lhs_rhs: not an example-3 network";
  let rho = Params.mu_over_gamma p in
  let factor = (2.0 +. rho) /. (1.0 -. rho) in
  let lam i = Params.lambda p (Pieceset.singleton i) in
  (* Missing piece k: lhs = sum of the other two rates, rhs = λ_k·factor. *)
  Array.init 3 (fun missing ->
      let lhs = ref 0.0 in
      for i = 0 to 2 do
        if i <> missing then lhs := !lhs +. lam i
      done;
      (!lhs, lam missing *. factor))

let flash_crowd ~k ~lambda ~us ~mu ~gamma =
  Params.make ~k ~us ~mu ~gamma ~arrivals:[ (Pieceset.empty, lambda) ]

let gift_uncoded ~k ~lambda_total ~f ~mu =
  if f < 0.0 || f >= 1.0 then invalid_arg "Scenario.gift_uncoded: need 0 <= f < 1";
  let arrivals =
    (Pieceset.empty, (1.0 -. f) *. lambda_total)
    :: List.init k (fun i -> (Pieceset.singleton i, f *. lambda_total /. float_of_int k))
  in
  Params.make ~k ~us:0.0 ~mu ~gamma:infinity ~arrivals

let symmetric_singletons ~k ~lambda ~mu =
  Params.make ~k ~us:0.0 ~mu ~gamma:infinity
    ~arrivals:(List.init k (fun i -> (Pieceset.singleton i, lambda)))
