(** Generic stationary-distribution solver for finite CTMCs.

    Given the sparse outgoing-transition structure of an irreducible
    finite chain, solve the global balance equations
    [π_j · out_j = Σ_i π_i · q_ij] by symmetric Gauss–Seidel, sweeping
    states in a caller-supplied order (ascending then descending).  For
    the birth-death-flavoured chains in this repository — population
    processes swept by population — convergence is orders of magnitude
    faster than Jacobi/power iteration.  Shared by {!Truncated} and
    {!Coded_chain}. *)

type sparse = {
  targets : int array array;  (** [targets.(i)]: successor states of [i] *)
  rates : float array array;  (** matching rates; same shape as [targets] *)
}

val solve :
  ?tol:float ->
  ?max_sweeps:int ->
  sparse ->
  sweep_key:int array ->
  float array
(** [solve s ~sweep_key] returns the stationary probability vector.
    [sweep_key.(i)] orders the sweeps (e.g. the population of state [i]).
    @raise Invalid_argument on shape mismatch.
    @raise Failure if Gauss–Seidel does not converge or mass vanishes. *)
