(** Extracting the watched (μ → ∞) process from finite-μ simulation.

    Section VIII-D defines the borderline process by watching the original
    chain on "slow" states — states where every peer has the same
    collection — and removing the fast excursions.  {!Mu_infinity}
    implements the analytic weak limit; this module performs the watching
    {e empirically} on a finite-μ simulation of the symmetric network, so
    the two can be compared: as μ grows, the observed top-layer jump law
    must converge to the coin-flip law [Z] (an explicit check of the
    paper's construction).

    A watched transition is recorded whenever the simulation enters a slow
    state (directly, or after an excursion through fast states). *)

type slow = { n : int; pieces : int }
(** A slow state: [n] peers all holding the same [pieces]-sized
    collection; [(0,0)] is the empty state. *)

type trace = {
  visits : slow array;  (** the sequence of slow-state entries *)
  top_layer_jumps : (int * int) list;
      (** [(dn, count)]: observed population jumps out of top-layer slow
          states [(n, K−1)], where [dn = +1] is a same-type arrival and
          [dn <= 0] summarises an excursion; sorted by [dn] *)
  fast_time_fraction : float;
      (** fraction of simulated time spent outside slow states — vanishes
          as μ → ∞ *)
}

val extract :
  ?min_top_n:int ->
  rng:P2p_prng.Rng.t ->
  k:int ->
  lambda:float ->
  mu:float ->
  horizon:float ->
  unit ->
  trace
(** Simulate the symmetric single-piece-arrival network
    ({!Scenario.symmetric_singletons}) and watch it on slow states.
    Jumps are recorded only from top-layer states with [n >= min_top_n]
    (default 2) to avoid boundary effects. *)

val analytic_jump_pmf : k:int -> max_drop:int -> (int * float) list
(** The μ = ∞ law of the same jump: [+1] w.p. [(K−1)/K]; [−z + 1 … ] —
    precisely, [dn = 1] w.p. [(K−1)/K] and [dn = −z] w.p.
    [P(Z = z)/K] for [z >= 0] with [Z] the heads-before-[(K−1)]-tails
    count (drops beyond [max_drop] are accumulated into the last entry).
    Entries sorted by [dn] descending. *)

val total_variation : (int * float) list -> (int * int) list -> float
(** TV distance between the analytic pmf and empirical jump counts
    (both restricted to the analytic support; empirical mass outside it
    counts fully). *)
