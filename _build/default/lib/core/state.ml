module Pieceset = P2p_pieceset.Pieceset

type t = { counts : (Pieceset.t, int) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 32; total = 0 }

let copy t = { counts = Hashtbl.copy t.counts; total = t.total }

let count t c = Option.value (Hashtbl.find_opt t.counts c) ~default:0

let set t c v =
  if v < 0 then invalid_arg "State: negative count";
  if v = 0 then Hashtbl.remove t.counts c else Hashtbl.replace t.counts c v

let of_counts entries =
  let t = create () in
  List.iter
    (fun (c, v) ->
      if v < 0 then invalid_arg "State.of_counts: negative count";
      set t c (count t c + v);
      t.total <- t.total + v)
    entries;
  t

let n t = t.total
let occupied t = Hashtbl.length t.counts

let add_peer t c =
  set t c (count t c + 1);
  t.total <- t.total + 1

let remove_peer t c =
  let current = count t c in
  if current <= 0 then
    invalid_arg (Printf.sprintf "State.remove_peer: no type %s peer" (Pieceset.to_string c));
  set t c (current - 1);
  t.total <- t.total - 1

let move_peer t ~from_ ~to_ =
  remove_peer t from_;
  add_peer t to_

let iter t f = Hashtbl.iter f t.counts
let fold t ~init ~f = Hashtbl.fold (fun c v acc -> f acc c v) t.counts init

let to_alist t =
  fold t ~init:[] ~f:(fun acc c v -> (c, v) :: acc)
  |> List.sort (fun (a, _) (b, _) -> Pieceset.compare a b)

let piece_copies t ~k ~piece =
  if piece < 0 || piece >= k then invalid_arg "State.piece_copies: piece out of range";
  fold t ~init:0 ~f:(fun acc c v -> if Pieceset.mem piece c then acc + v else acc)

let piece_count_vector t ~k =
  let counts = Array.make k 0 in
  iter t (fun c v -> Pieceset.iter (fun i -> if i < k then counts.(i) <- counts.(i) + v) c);
  counts

let sample_uniform_peer t ~draw =
  if t.total = 0 then invalid_arg "State.sample_uniform_peer: empty state";
  let target = draw t.total in
  let acc = ref 0 in
  let found = ref None in
  (try
     Hashtbl.iter
       (fun c v ->
         acc := !acc + v;
         if !acc > target then begin
           found := Some c;
           raise Exit
         end)
       t.counts
   with Exit -> ());
  match !found with
  | Some c -> c
  | None -> invalid_arg "State.sample_uniform_peer: internal inconsistency"

let count_subset_peers t s =
  fold t ~init:0 ~f:(fun acc c v -> if Pieceset.subset c s then acc + v else acc)

let count_helpful_peers t s =
  fold t ~init:0 ~f:(fun acc c v -> if Pieceset.subset c s then acc else acc + v)

let equal a b =
  a.total = b.total
  && Hashtbl.length a.counts = Hashtbl.length b.counts
  && Hashtbl.fold (fun c v acc -> acc && count b c = v) a.counts true

let pp fmt t =
  Format.fprintf fmt "@[<h>n=%d:" t.total;
  List.iter (fun (c, v) -> Format.fprintf fmt " %a:%d" Pieceset.pp c v) (to_alist t);
  Format.fprintf fmt "@]"
