module Pieceset = P2p_pieceset.Pieceset

type t = {
  params : Params.t;
  n_max : int;
  types : Pieceset.t array;  (* types carried in the state vector *)
  index_of : (int array, int) Hashtbl.t;
  states : int array array;
  (* sparse transition rows: targets.(i) and rates.(i) parallel *)
  targets : int array array;
  rates : float array array;
  outflow : float array;
}

let enumerate_states ~num_types ~n_max =
  (* All vectors of [num_types] nonnegative counts summing to <= n_max. *)
  let states = ref [] in
  let current = Array.make num_types 0 in
  let rec fill pos remaining =
    if pos = num_types then states := Array.copy current :: !states
    else
      for v = 0 to remaining do
        current.(pos) <- v;
        fill (pos + 1) (remaining - v)
      done
  in
  fill 0 n_max;
  Array.of_list (List.rev !states)

let count_states ~num_types ~n_max =
  (* C(n_max + num_types, num_types) *)
  let acc = ref 1.0 in
  for i = 1 to num_types do
    acc := !acc *. float_of_int (n_max + i) /. float_of_int i
  done;
  !acc

let vector_of_state types state =
  let v = Array.make (Array.length types) 0 in
  Array.iteri (fun i c -> v.(i) <- State.count state c) types;
  v

let state_of_vector types v =
  State.of_counts (Array.to_list (Array.mapi (fun i count -> (types.(i), count)) v))

let build (params : Params.t) ~n_max =
  if n_max < 1 then invalid_arg "Truncated.build: n_max must be >= 1";
  let all_types = Array.of_list (Pieceset.all ~k:params.k) in
  let types =
    if Params.immediate_departure params then
      Array.of_list (Pieceset.all_proper ~k:params.k)
    else all_types
  in
  let num_types = Array.length types in
  if count_states ~num_types ~n_max > 2_000_000.0 then
    invalid_arg "Truncated.build: state space too large (reduce K or n_max)";
  let states = enumerate_states ~num_types ~n_max in
  let index_of = Hashtbl.create (2 * Array.length states) in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) states;
  let targets = Array.make (Array.length states) [||] in
  let rates = Array.make (Array.length states) [||] in
  let outflow = Array.make (Array.length states) 0.0 in
  Array.iteri
    (fun i v ->
      let n = Array.fold_left ( + ) 0 v in
      let st = state_of_vector types v in
      let transitions = Rate.transitions params st in
      let row =
        List.filter_map
          (fun (transition, rate) ->
            match transition with
            | Rate.Arrival _ when n >= n_max -> None (* rejected at the cap *)
            | Rate.Arrival _ | Rate.Seed_departure | Rate.Transfer _ ->
                let next = State.copy st in
                Rate.apply params next transition;
                let key = vector_of_state types next in
                let j =
                  match Hashtbl.find_opt index_of key with
                  | Some j -> j
                  | None -> failwith "Truncated.build: escaped the enumerated space"
                in
                Some (j, rate))
          transitions
      in
      targets.(i) <- Array.of_list (List.map fst row);
      rates.(i) <- Array.of_list (List.map snd row);
      outflow.(i) <- List.fold_left (fun acc (_, r) -> acc +. r) 0.0 row)
    states;
  { params; n_max; types; index_of; states; targets; rates; outflow }

let state_count t = Array.length t.states

(* Symmetric Gauss-Seidel on the global balance equations, sweeping by
   population (see Balance): orders of magnitude faster than power
   iteration for these birth-death flavoured chains, especially near the
   stability boundary. *)
let stationary ?tol ?max_iters t =
  let sweep_key = Array.map (Array.fold_left ( + ) 0) t.states in
  Balance.solve ?tol ?max_sweeps:max_iters
    { Balance.targets = t.targets; rates = t.rates }
    ~sweep_key

let population i t = Array.fold_left ( + ) 0 t.states.(i)

let mean_population t pi =
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. (p *. float_of_int (population i t))) pi;
  !acc

let population_tail t pi ~at_least =
  let acc = ref 0.0 in
  Array.iteri (fun i p -> if population i t >= at_least then acc := !acc +. p) pi;
  !acc

let mean_type_count t pi c =
  let idx = ref (-1) in
  Array.iteri (fun i ty -> if Pieceset.equal ty c then idx := i) t.types;
  if !idx < 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri (fun i p -> acc := !acc +. (p *. float_of_int t.states.(i).(!idx))) pi;
    !acc
  end

let probability_empty t pi =
  let acc = ref 0.0 in
  Array.iteri (fun i p -> if population i t = 0 then acc := !acc +. p) pi;
  !acc

let truncation_mass_at_cap t pi =
  let acc = ref 0.0 in
  Array.iteri (fun i p -> if population i t = t.n_max then acc := !acc +. p) pi;
  !acc

let mean_hitting_time_to_empty ?(tol = 1e-10) ?(max_sweeps = 500_000) t ~from_ =
  let start = State.of_counts from_ in
  if State.n start > t.n_max then
    invalid_arg "Truncated.mean_hitting_time_to_empty: start exceeds the cap";
  let start_key = vector_of_state t.types start in
  let start_idx =
    match Hashtbl.find_opt t.index_of start_key with
    | Some i -> i
    | None -> invalid_arg "Truncated.mean_hitting_time_to_empty: start not enumerated"
  in
  let n = state_count t in
  let h = Array.make n 0.0 in
  let is_empty = Array.init n (fun i -> population i t = 0) in
  (* sweep by decreasing population first: hitting times propagate down *)
  let order = Array.init n (fun i -> i) in
  let pop = Array.init n (fun i -> population i t) in
  Array.sort (fun a b -> Int.compare pop.(a) pop.(b)) order;
  let update i =
    if not is_empty.(i) && t.outflow.(i) > 0.0 then begin
      let acc = ref 1.0 in
      let row_t = t.targets.(i) and row_r = t.rates.(i) in
      for e = 0 to Array.length row_t - 1 do
        acc := !acc +. (row_r.(e) *. h.(row_t.(e)))
      done;
      h.(i) <- !acc /. t.outflow.(i)
    end
  in
  let sweep = ref 0 in
  let converged = ref false in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    let before = h.(start_idx) in
    for idx = 0 to n - 1 do
      update order.(idx)
    done;
    for idx = n - 1 downto 0 do
      update order.(idx)
    done;
    let after = h.(start_idx) in
    if Float.abs (after -. before) < tol *. Float.max 1.0 after then converged := true
  done;
  if not !converged then failwith "Truncated.mean_hitting_time_to_empty: no convergence";
  h.(start_idx)

let return_time_to_empty t pi =
  let p_empty = probability_empty t pi in
  (* the empty state's total outflow is the arrival rate *)
  let out_empty =
    let found = ref 0.0 in
    Array.iteri
      (fun i _ -> if population i t = 0 then found := t.outflow.(i))
      t.states;
    !found
  in
  if p_empty <= 0.0 || out_empty <= 0.0 then infinity
  else 1.0 /. (p_empty *. out_empty)
