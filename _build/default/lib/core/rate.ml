module Pieceset = P2p_pieceset.Pieceset

type transition =
  | Arrival of Pieceset.t
  | Seed_departure
  | Transfer of { downloader : Pieceset.t; piece : int }

let gamma_c_i (p : Params.t) state ~c ~piece =
  let n = State.n state in
  let x_c = State.count state c in
  if n = 0 || x_c = 0 || Pieceset.mem piece c then 0.0
  else begin
    let seed_part = p.us /. float_of_int (Pieceset.missing_count ~k:p.k c) in
    let peer_part =
      State.fold state ~init:0.0 ~f:(fun acc s x_s ->
          if Pieceset.mem piece s then
            acc +. (float_of_int x_s /. float_of_int (Pieceset.cardinal (Pieceset.diff s c)))
          else acc)
    in
    float_of_int x_c /. float_of_int n *. (seed_part +. (p.mu *. peer_part))
  end

let policy_weight (policy : Policy.t) ~k ~state ~uploader ~downloader ~piece =
  if Pieceset.is_empty (Policy.useful_pieces ~k ~uploader ~downloader) then 0.0
  else begin
    let dist = policy.distribution ~k ~state ~uploader ~downloader in
    List.fold_left (fun acc (i, pr) -> if i = piece then acc +. pr else acc) 0.0 dist
  end

let transfer_rate ~policy (p : Params.t) state ~c ~piece =
  let n = State.n state in
  let x_c = State.count state c in
  if n = 0 || x_c = 0 || Pieceset.mem piece c then 0.0
  else begin
    let seed_part =
      if p.us > 0.0 then
        p.us *. policy_weight policy ~k:p.k ~state ~uploader:Policy.Fixed_seed ~downloader:c ~piece
      else 0.0
    in
    let peer_part =
      State.fold state ~init:0.0 ~f:(fun acc s x_s ->
          if Pieceset.can_help ~uploader:s ~downloader:c then
            acc
            +. float_of_int x_s
               *. policy_weight policy ~k:p.k ~state ~uploader:(Policy.Peer s) ~downloader:c
                    ~piece
          else acc)
    in
    float_of_int x_c /. float_of_int n *. (seed_part +. (p.mu *. peer_part))
  end

let transitions ?(policy = Policy.random_useful) (p : Params.t) state =
  let full = Params.full_set p in
  let acc = ref [] in
  (* Arrivals always enabled. *)
  Array.iter (fun (c, rate) -> acc := (Arrival c, rate) :: !acc) p.arrivals;
  (* Seed departures when gamma is finite. *)
  if not (Params.immediate_departure p) then begin
    let seeds = State.count state full in
    if seeds > 0 then acc := (Seed_departure, p.gamma *. float_of_int seeds) :: !acc
  end;
  (* Piece transfers. *)
  State.iter state (fun c _ ->
      if not (Pieceset.equal c full) then
        Pieceset.iter
          (fun piece ->
            let rate = transfer_rate ~policy p state ~c ~piece in
            if rate > 0.0 then acc := (Transfer { downloader = c; piece }, rate) :: !acc)
          (Pieceset.complement ~k:p.k c));
  !acc

let total_rate ?policy p state =
  List.fold_left (fun acc (_, r) -> acc +. r) 0.0 (transitions ?policy p state)

let apply (p : Params.t) state = function
  | Arrival c -> State.add_peer state c
  | Seed_departure -> State.remove_peer state (Params.full_set p)
  | Transfer { downloader; piece } ->
      if Pieceset.mem piece downloader then invalid_arg "Rate.apply: piece already held";
      let target = Pieceset.add piece downloader in
      if Pieceset.equal target (Params.full_set p) && Params.immediate_departure p then
        State.remove_peer state downloader
      else State.move_peer state ~from_:downloader ~to_:target

let target_description p = function
  | Arrival c -> Printf.sprintf "arrival of type %s" (Pieceset.to_string c)
  | Seed_departure -> "peer seed departs"
  | Transfer { downloader; piece } ->
      let target = Pieceset.add piece downloader in
      if Pieceset.equal target (Params.full_set p) && Params.immediate_departure p then
        Printf.sprintf "type %s gets piece %d and departs" (Pieceset.to_string downloader)
          (piece + 1)
      else
        Printf.sprintf "type %s gets piece %d" (Pieceset.to_string downloader) (piece + 1)
