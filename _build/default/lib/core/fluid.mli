(** Deterministic fluid (mean-field) limit of the type-count dynamics.

    Scaling initial state and arrival rates by a factor going to infinity,
    the density of each type follows the ODE obtained by replacing the
    jump rates of Eq. (1) by their drift (the approach of Massoulié &
    Vojnović's coupon-replication analysis, cited as [11]):

    {v ẋ_C = λ_C + Σ_{i∈C} Γ_{C−i,C}(x) − Σ_{i∉C} Γ_{C,C∪i}(x) − γ·x_F·[C=F] v}

    with [Γ] evaluated at real-valued [x].  The integrator is classic
    fixed-step RK4 on the dense vector indexed by piece-set bitmask.  Used
    as a qualitative baseline: inside the stability region trajectories
    approach a finite equilibrium; in the transient region the one-club
    coordinate grows linearly — the fluid picture of the missing piece
    syndrome. *)

module Pieceset = P2p_pieceset.Pieceset

type trajectory = {
  times : float array;
  totals : float array;  (** total population n(t) *)
  states : float array array;  (** row per recorded time; index = bitmask *)
}

val of_state : k:int -> State.t -> float array
(** Dense vector from a discrete state. *)

val derivative : Params.t -> float array -> float array
(** The right-hand side of the ODE.
    @raise Invalid_argument on a wrong-size vector. *)

val integrate :
  Params.t -> init:float array -> dt:float -> horizon:float -> record_every:int -> trajectory
(** RK4 with step [dt]; records every [record_every]-th step. *)

val equilibrium :
  ?dt:float -> ?horizon:float -> ?tol:float -> Params.t -> init:float array -> float array option
(** Integrate until the derivative's max-norm falls below [tol] (relative
    to the state scale); [None] if the horizon is hit first (e.g. in the
    transient regime). *)

val total : float array -> float
