module Pieceset = P2p_pieceset.Pieceset

type trajectory = {
  times : float array;
  totals : float array;
  states : float array array;
}

let dim (p : Params.t) = 1 lsl p.k

let of_state ~k state =
  let x = Array.make (1 lsl k) 0.0 in
  State.iter state (fun c v -> x.(Pieceset.to_index c) <- float_of_int v);
  x

let total x = Array.fold_left ( +. ) 0.0 x

(* Γ_{C,C∪{i}} of Eq. (1) with real-valued occupancies; [c] is the dense
   index (bitmask) of the type. *)
let flow (p : Params.t) x ~n ~c ~piece =
  let xc = x.(c) in
  if xc <= 0.0 || n <= 0.0 then 0.0
  else begin
    let cset = Pieceset.of_index c in
    let seed_part = p.us /. float_of_int (Pieceset.missing_count ~k:p.k cset) in
    let peer_part = ref 0.0 in
    for s = 0 to Array.length x - 1 do
      if x.(s) > 0.0 then begin
        let sset = Pieceset.of_index s in
        if Pieceset.mem piece sset then begin
          let extra = Pieceset.cardinal (Pieceset.diff sset cset) in
          peer_part := !peer_part +. (x.(s) /. float_of_int extra)
        end
      end
    done;
    xc /. n *. (seed_part +. (p.mu *. !peer_part))
  end

let derivative (p : Params.t) x =
  if Array.length x <> dim p then invalid_arg "Fluid.derivative: wrong vector size";
  let n = total x in
  let dx = Array.make (dim p) 0.0 in
  (* Arrivals. *)
  Array.iter
    (fun (c, rate) ->
      let i = Pieceset.to_index c in
      dx.(i) <- dx.(i) +. rate)
    p.arrivals;
  let full = Pieceset.to_index (Params.full_set p) in
  (* Transfers. *)
  for c = 0 to dim p - 1 do
    if c <> full && x.(c) > 0.0 then begin
      let cset = Pieceset.of_index c in
      Pieceset.iter
        (fun piece ->
          let rate = flow p x ~n ~c ~piece in
          if rate > 0.0 then begin
            dx.(c) <- dx.(c) -. rate;
            let target = Pieceset.to_index (Pieceset.add piece cset) in
            (* γ = ∞: completion is departure, mass vanishes. *)
            if not (target = full && Params.immediate_departure p) then
              dx.(target) <- dx.(target) +. rate
          end)
        (Pieceset.complement ~k:p.k cset)
    end
  done;
  (* Peer-seed departures. *)
  if not (Params.immediate_departure p) then dx.(full) <- dx.(full) -. (p.gamma *. x.(full));
  dx

let clamp_nonnegative x =
  Array.iteri (fun i v -> if v < 0.0 then x.(i) <- 0.0) x

let rk4_step p x dt =
  let axpy a v w = Array.mapi (fun i wi -> wi +. (a *. v.(i))) w in
  let k1 = derivative p x in
  let k2 = derivative p (axpy (dt /. 2.0) k1 x) in
  let k3 = derivative p (axpy (dt /. 2.0) k2 x) in
  let k4 = derivative p (axpy dt k3 x) in
  let next =
    Array.mapi
      (fun i xi -> xi +. (dt /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
      x
  in
  clamp_nonnegative next;
  next

let integrate (p : Params.t) ~init ~dt ~horizon ~record_every =
  if Array.length init <> dim p then invalid_arg "Fluid.integrate: wrong vector size";
  if dt <= 0.0 || record_every < 1 then invalid_arg "Fluid.integrate: bad step parameters";
  let steps = int_of_float (ceil (horizon /. dt)) in
  let times = ref [ 0.0 ] in
  let totals = ref [ total init ] in
  let states = ref [ Array.copy init ] in
  let x = ref (Array.copy init) in
  for step = 1 to steps do
    x := rk4_step p !x dt;
    if step mod record_every = 0 || step = steps then begin
      times := (float_of_int step *. dt) :: !times;
      totals := total !x :: !totals;
      states := Array.copy !x :: !states
    end
  done;
  {
    times = Array.of_list (List.rev !times);
    totals = Array.of_list (List.rev !totals);
    states = Array.of_list (List.rev !states);
  }

let equilibrium ?(dt = 0.01) ?(horizon = 2000.0) ?(tol = 1e-7) (p : Params.t) ~init =
  let x = ref (Array.copy init) in
  let steps = int_of_float (ceil (horizon /. dt)) in
  let found = ref None in
  let step = ref 0 in
  while Option.is_none !found && !step < steps do
    incr step;
    x := rk4_step p !x dt;
    if !step mod 100 = 0 then begin
      let dx = derivative p !x in
      let scale = Float.max 1.0 (total !x) in
      let norm = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 dx in
      if norm < tol *. scale then found := Some (Array.copy !x)
    end
  done;
  !found
