(** Exact stationary analysis of the P2P chain on a truncated state space.

    Theorem 1(b) asserts positive recurrence with finite stationary mean
    population.  For small [K] and a population cap [n_max] we can compute
    the stationary distribution {e exactly}: enumerate every state with at
    most [n_max] peers, build the generator with arrivals rejected at the
    cap (a standard truncation that lower-bounds the real queue), uniformise
    and power-iterate to the fixed point.

    This gives a third, independent view of the system next to theory and
    simulation: exact [E\[N\]], exact tail probabilities, and the blow-up
    of [E\[N\]] as the arrival rate approaches the Theorem 1 boundary.  For
    [K = 1, γ = ∞] the model degenerates to an M/M/1 queue ([λ] vs [U_s])
    whose closed form validates the whole pipeline. *)

module Pieceset = P2p_pieceset.Pieceset

type t
(** An enumerated truncated chain with its transition structure. *)

val build : Params.t -> n_max:int -> t
(** Enumerate all states with [n <= n_max].  The state count grows like
    [C(n_max + 2^K, 2^K)]; practical for [K <= 3] and moderate caps.
    @raise Invalid_argument if the space would exceed ~2 million states. *)

val state_count : t -> int

val stationary : ?tol:float -> ?max_iters:int -> t -> float array
(** Stationary distribution by power iteration on the uniformised kernel.
    Indices follow the internal enumeration; use the accessors below.
    @raise Failure if the iteration does not converge. *)

val mean_population : t -> float array -> float
(** [E\[N\]] under a distribution returned by {!stationary}. *)

val population_tail : t -> float array -> at_least:int -> float
(** [P(N >= m)]. *)

val mean_type_count : t -> float array -> Pieceset.t -> float
(** Stationary mean number of peers of one type. *)

val probability_empty : t -> float array -> float

val truncation_mass_at_cap : t -> float array -> float
(** Probability mass on states with [n = n_max] — a diagnostic: if this is
    not small the cap is biting and [E\[N\]] is underestimated. *)

val mean_hitting_time_to_empty :
  ?tol:float -> ?max_sweeps:int -> t -> from_:(Pieceset.t * int) list -> float
(** Expected time to first reach the empty state, starting from the given
    population — the quantity Theorem 14(ii) asserts is finite inside the
    stability region.  Solves the first-step equations
    [h(x) = 1/out(x) + Σ_y P(x,y) h(y)], [h(empty) = 0] by Gauss–Seidel.
    @raise Invalid_argument if the start state exceeds the cap.
    @raise Failure if the iteration does not converge. *)

val return_time_to_empty : t -> float array -> float
(** Mean regeneration-cycle length implied by the stationary distribution:
    [1 / (π(empty) · λ_total)] is the mean time between entries into the
    empty state... exposed as the exact mean time from one departure-to-
    empty until the next (Kac's formula applied to the exits of the empty
    state). *)
