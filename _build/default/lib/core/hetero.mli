(** Heterogeneous peer classes — the adaptation the paper's conclusion
    invites ("heterogeneous link speeds").

    Peers belong to classes with their own contact rate [μ_c], seed-dwell
    rate [γ_c], and arrival streams.  The model is otherwise the paper's:
    random peer contact (a class-[c] peer's clock ticks at [μ_c]; the
    contacted peer is uniform over everyone), random useful piece upload,
    one fixed seed.

    The missing-piece-syndrome calculus generalises directly.  In a deep
    one-club, a fresh peer seed is a former club member whose class
    follows the club's class mix [p_c] (the arrival mix of peers missing
    the rare piece), so the seed branching factor becomes
    [m̄ = Σ_c p_c μ_c/γ_c], and a class-[c] gifted peer arriving with
    collection [C] causes [(K−|C|) μ_c/μ̄_dl + μ_c/γ_c] uploads … — we keep
    the simpler, exactly-stated special case in which all classes share
    the download environment and derive the {e heuristic} threshold

    {v λ_total < (U_s + Σ_{c,C∋k} λ_{c,C}(K−|C|+μ_c/γ_c)) / (1 − m̄) + Σ_{c,C∋k} λ_{c,C} v}

    reducing to Theorem 1 when there is a single class.  This is a
    conjecture, not a theorem; experiment E18 probes it by simulation. *)

module Pieceset = P2p_pieceset.Pieceset

type klass = {
  label : string;
  mu : float;  (** contact-upload rate of this class, > 0 *)
  gamma : float;  (** seed dwell rate; [infinity] = leave on completion *)
  arrivals : (Pieceset.t * float) list;  (** this class's arrival streams *)
}

type t = private { k : int; us : float; classes : klass array }

val make : k:int -> us:float -> classes:klass list -> t
(** @raise Invalid_argument on invalid rates, empty class list, or zero
    total arrivals. *)

val of_params : Params.t -> t
(** The homogeneous embedding (single class). *)

val lambda_total : t -> float

val mean_seed_offspring : t -> piece:int -> float
(** [m̄]: expected one-club members served per fresh peer seed, with the
    seed's class drawn from the arrival mix of peers missing [piece]. *)

val threshold : t -> piece:int -> float
(** The heuristic critical total arrival rate for the given piece;
    [infinity] when [m̄ >= 1] (supercritical seed branching). *)

val classify_heuristic : ?tolerance:float -> t -> Stability.verdict
(** Min-threshold comparison across pieces, mirroring Theorem 1's
    structure.  Exact for a single class (a test checks it against
    {!Stability.classify}). *)

(* ---- simulation ---- *)

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  samples : (float * int) array;
  class_mean_n : float array;  (** time-average population per class *)
  class_mean_sojourn : float array;  (** [nan] where no departures *)
}

val simulate :
  ?sample_every:float ->
  ?max_events:int ->
  rng:P2p_prng.Rng.t ->
  t ->
  horizon:float ->
  stats

val simulate_seeded :
  ?sample_every:float -> ?max_events:int -> seed:int -> t -> horizon:float -> stats
