module Pieceset = P2p_pieceset.Pieceset

type result = {
  states_explored : int;
  truncated : bool;
  types_seen : Pieceset.t list;
}

let fingerprint state =
  String.concat ";"
    (List.map
       (fun (c, n) -> Printf.sprintf "%d:%d" (Pieceset.to_index c) n)
       (State.to_alist state))

let explore ?(policy = Policy.random_useful) ?(max_states = 500_000) (p : Params.t) ~n_max =
  if n_max < 1 then invalid_arg "Reachability.explore: n_max must be >= 1";
  let visited = Hashtbl.create 4096 in
  let types_seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let start = State.create () in
  Hashtbl.replace visited (fingerprint start) ();
  Queue.push start queue;
  let explored = ref 0 in
  let truncated = ref false in
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    incr explored;
    State.iter state (fun c _ -> Hashtbl.replace types_seen c ());
    if !explored >= max_states then begin
      truncated := true;
      Queue.clear queue
    end
    else
      List.iter
        (fun (transition, rate) ->
          let skip =
            rate <= 0.0
            ||
            match transition with
            | Rate.Arrival _ -> State.n state >= n_max
            | Rate.Seed_departure | Rate.Transfer _ -> false
          in
          if not skip then begin
            let next = State.copy state in
            Rate.apply p next transition;
            let key = fingerprint next in
            if not (Hashtbl.mem visited key) then begin
              Hashtbl.replace visited key ();
              Queue.push next queue
            end
          end)
        (Rate.transitions ~policy p state)
  done;
  let types =
    Hashtbl.fold (fun c () acc -> c :: acc) types_seen []
    |> List.sort Pieceset.compare
  in
  { states_explored = !explored; truncated = !truncated; types_seen = types }

let prefix_types_only ~k types =
  List.for_all
    (fun c ->
      let card = Pieceset.cardinal c in
      card <= k && Pieceset.equal c (if card = 0 then Pieceset.empty else Pieceset.of_list (List.init card (fun i -> i))))
    types

let all_types_reachable ~k types =
  List.length types = 1 lsl k
  && List.for_all (fun c -> Pieceset.subset c (Pieceset.full ~k)) types
