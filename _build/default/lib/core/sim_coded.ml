module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Field = P2p_gf.Field
module Mat = P2p_gf.Mat
module Subspace = P2p_coding.Subspace

type config = {
  q : int;
  k : int;
  us : float;
  mu : float;
  gamma : float;
  arrivals : (int * float) list;
  smart_exchange : bool;
}

let of_gift (g : Stability.Coded.gift_params) =
  {
    q = g.q;
    k = g.k;
    us = g.us;
    mu = g.mu;
    gamma = g.gamma;
    arrivals =
      (if g.lambda0 > 0.0 then [ (0, g.lambda0) ] else [])
      @ (if g.lambda1 > 0.0 then [ (1, g.lambda1) ] else []);
    smart_exchange = false;
  }

type peer = { mutable space : Subspace.t; mutable slot : int; mutable departed : bool }

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  useful_transfers : int;
  useless_transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  samples : (float * int) array;
  dim_histogram : int array;
  near_complete_fraction : float;
}

let run ?sample_every ?(max_events = 200_000_000) ~rng config ~horizon =
  if config.k < 1 then invalid_arg "Sim_coded.run: k must be >= 1";
  List.iter
    (fun (j, rate) ->
      if j < 0 || rate < 0.0 then invalid_arg "Sim_coded.run: bad arrival entry")
    config.arrivals;
  let lambda_total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 config.arrivals in
  if lambda_total <= 0.0 then invalid_arg "Sim_coded.run: no arrivals";
  let field = Field.gf config.q in
  let immediate = not (Float.is_finite config.gamma) in
  (* Peers at dimension < K, in a swap-remove array. *)
  let peers = ref (Array.make 16 None) in
  let len = ref 0 in
  let near_complete = ref 0 in
  (* count of peers at dim K-1 *)
  let departures_heap : peer P2p_des.Heap.t = P2p_des.Heap.create () in
  let seeds_count = ref 0 in
  (* peer seeds (dim = K) present, counted only when gamma finite *)
  let clock = ref 0.0 in
  let events = ref 0 in
  let arrivals = ref 0 in
  let useful = ref 0 in
  let useless = ref 0 in
  let completions = ref 0 in
  let departed = ref 0 in
  let max_n = ref 0 in
  let avg = P2p_stats.Timeavg.create () in
  let club_avg = P2p_stats.Timeavg.create () in
  let arrival_weights = Array.of_list (List.map snd config.arrivals) in
  let arrival_kinds = Array.of_list (List.map fst config.arrivals) in

  let population () = !len + !seeds_count in
  let track_dim_change ~before ~after =
    if before = config.k - 1 then decr near_complete;
    if after = config.k - 1 then incr near_complete
  in
  let add_active peer =
    if !len = Array.length !peers then begin
      let bigger = Array.make (2 * !len) None in
      Array.blit !peers 0 bigger 0 !len;
      peers := bigger
    end;
    peer.slot <- !len;
    !peers.(!len) <- Some peer;
    incr len
  in
  let remove_active peer =
    let i = peer.slot in
    decr len;
    if i <> !len then begin
      !peers.(i) <- !peers.(!len);
      (match !peers.(i) with Some q -> q.slot <- i | None -> assert false)
    end;
    !peers.(!len) <- None;
    peer.slot <- -1
  in
  let observe time =
    let n = population () in
    P2p_stats.Timeavg.observe avg ~time ~value:(float_of_int n);
    let frac = if n = 0 then 0.0 else float_of_int !near_complete /. float_of_int n in
    P2p_stats.Timeavg.observe club_avg ~time ~value:frac;
    if n > !max_n then max_n := n
  in
  let complete peer ~time =
    incr completions;
    track_dim_change ~before:(config.k - 1) ~after:config.k;
    remove_active peer;
    if immediate then incr departed
    else begin
      incr seeds_count;
      let dwell = Dist.exponential rng ~rate:config.gamma in
      ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
    end
  in
  (* Insert a coding vector into a peer's subspace, handling completion. *)
  let receive peer v ~time =
    let before = Subspace.dim peer.space in
    if Subspace.insert peer.space v then begin
      incr useful;
      let after = Subspace.dim peer.space in
      if after = config.k then complete peer ~time
      else track_dim_change ~before ~after
    end
    else incr useless
  in
  let random_full_vector () = Mat.random_vec field (Rng.int_below rng) config.k in
  let new_peer ~coded ~time =
    let peer = { space = Subspace.create field ~k:config.k; slot = -1; departed = false } in
    let rec feed j =
      if j > 0 && Subspace.dim peer.space < config.k then begin
        ignore (Subspace.insert peer.space (random_full_vector ()));
        feed (j - 1)
      end
    in
    feed coded;
    if Subspace.dim peer.space = config.k then begin
      (* Arrived already able to decode (possible when coded >= K). *)
      incr completions;
      if immediate then incr departed
      else begin
        incr seeds_count;
        let dwell = Dist.exponential rng ~rate:config.gamma in
        ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
      end
    end
    else begin
      add_active peer;
      if Subspace.dim peer.space = config.k - 1 then incr near_complete
    end
  in
  (* A uniformly chosen member of the whole population (active or seed):
     with probability seeds/(n) the contacted peer is a seed, which cannot
     receive anything, and with the rest an active peer. *)
  let sample_downloader () =
    let n = population () in
    if n = 0 then None
    else begin
      let idx = Rng.int_below rng n in
      if idx < !len then !peers.(idx) else None (* a peer seed: nothing to send it *)
    end
  in
  let transmit ~uploader_space ~time =
    match sample_downloader () with
    | None -> ()
    | Some downloader ->
        let v =
          match uploader_space with
          | None -> random_full_vector () (* the fixed seed *)
          | Some space ->
              if config.smart_exchange then begin
                (* Remark 16: send a basis vector outside the downloader's
                   subspace when one exists. *)
                let basis = Subspace.basis space in
                let outside =
                  Array.fold_left
                    (fun acc row ->
                      match acc with
                      | Some _ -> acc
                      | None -> if Subspace.contains downloader.space row then None else Some row)
                    None basis
                in
                match outside with Some row -> row | None -> Mat.zero_vec config.k
              end
              else Subspace.random_member space rng
        in
        receive downloader v ~time
  in

  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let samples = ref [] in
  let next_sample = ref 0.0 in
  let record_samples_through time =
    while !next_sample <= time && !next_sample <= horizon do
      samples := (!next_sample, population ()) :: !samples;
      next_sample := !next_sample +. sample_every
    done
  in
  record_samples_through 0.0;
  observe 0.0;

  let running = ref true in
  while !running do
    let n = population () in
    let rate_arrival = lambda_total in
    let rate_seed = if n = 0 then 0.0 else config.us in
    (* Every peer (active or dwelling seed) ticks at rate mu; seeds'
       uploads matter, and active peers' contacts may be silent. *)
    let rate_peers = config.mu *. float_of_int n in
    let total = rate_arrival +. rate_seed +. rate_peers in
    let dt = Dist.exponential rng ~rate:total in
    let t_candidate = !clock +. dt in
    let next_departure = P2p_des.Heap.min_key departures_heap in
    let departure_first =
      match next_departure with Some d -> d <= t_candidate && d <= horizon | None -> false
    in
    if departure_first then begin
      match P2p_des.Heap.pop_min departures_heap with
      | Some (time, peer) ->
          record_samples_through time;
          clock := time;
          incr events;
          peer.departed <- true;
          decr seeds_count;
          incr departed;
          observe time
      | None -> assert false
    end
    else if t_candidate > horizon || !events >= max_events then begin
      record_samples_through horizon;
      P2p_stats.Timeavg.close avg ~time:horizon;
      P2p_stats.Timeavg.close club_avg ~time:horizon;
      clock := horizon;
      running := false
    end
    else begin
      record_samples_through t_candidate;
      clock := t_candidate;
      incr events;
      let u = Rng.float rng *. total in
      if u < rate_arrival then begin
        let idx = Dist.categorical rng ~weights:arrival_weights in
        incr arrivals;
        new_peer ~coded:arrival_kinds.(idx) ~time:!clock
      end
      else if u < rate_arrival +. rate_seed then transmit ~uploader_space:None ~time:!clock
      else begin
        (* Uniform uploader among the n peers: active or dwelling seed. *)
        let idx = Rng.int_below rng n in
        if idx < !len then begin
          match !peers.(idx) with
          | Some peer ->
              if Subspace.dim peer.space > 0 then
                transmit ~uploader_space:(Some peer.space) ~time:!clock
          | None -> assert false
        end
        else
          (* A dwelling peer seed: its subspace is everything. *)
          transmit ~uploader_space:None ~time:!clock
      end;
      observe !clock
    end
  done;
  let dim_histogram = Array.make (config.k + 1) 0 in
  for i = 0 to !len - 1 do
    match !peers.(i) with
    | Some peer -> begin
        let d = Subspace.dim peer.space in
        dim_histogram.(d) <- dim_histogram.(d) + 1
      end
    | None -> assert false
  done;
  dim_histogram.(config.k) <- !seeds_count;
  {
    final_time = !clock;
    events = !events;
    arrivals = !arrivals;
    useful_transfers = !useful;
    useless_transfers = !useless;
    completions = !completions;
    departures = !departed;
    time_avg_n = P2p_stats.Timeavg.average avg;
    max_n = !max_n;
    final_n = population ();
    samples = Array.of_list (List.rev !samples);
    dim_histogram;
    near_complete_fraction = P2p_stats.Timeavg.average club_avg;
  }

let run_seeded ?sample_every ?max_events ~seed config ~horizon =
  run ?sample_every ?max_events ~rng:(Rng.of_seed seed) config ~horizon
