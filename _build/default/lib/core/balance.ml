type sparse = {
  targets : int array array;
  rates : float array array;
}

let solve ?(tol = 1e-10) ?(max_sweeps = 200_000) s ~sweep_key =
  let n = Array.length s.targets in
  if Array.length s.rates <> n || Array.length sweep_key <> n then
    invalid_arg "Balance.solve: shape mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> Array.length s.rates.(i) then
        invalid_arg "Balance.solve: row shape mismatch")
    s.targets;
  let outflow =
    Array.map (fun row -> Array.fold_left ( +. ) 0.0 row) s.rates
  in
  (* reverse adjacency *)
  let in_deg = Array.make n 0 in
  Array.iter (Array.iter (fun j -> in_deg.(j) <- in_deg.(j) + 1)) s.targets;
  let in_src = Array.init n (fun j -> Array.make in_deg.(j) 0) in
  let in_rate = Array.init n (fun j -> Array.make in_deg.(j) 0.0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun e j ->
          in_src.(j).(fill.(j)) <- i;
          in_rate.(j).(fill.(j)) <- s.rates.(i).(e);
          fill.(j) <- fill.(j) + 1)
        row)
    s.targets;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare sweep_key.(a) sweep_key.(b)) order;
  let pi = Array.make n (1.0 /. float_of_int n) in
  let update j =
    if outflow.(j) > 0.0 then begin
      let inflow = ref 0.0 in
      let src = in_src.(j) and rate = in_rate.(j) in
      for e = 0 to Array.length src - 1 do
        inflow := !inflow +. (pi.(src.(e)) *. rate.(e))
      done;
      pi.(j) <- !inflow /. outflow.(j)
    end
  in
  let normalise () =
    let total = Array.fold_left ( +. ) 0.0 pi in
    if total <= 0.0 || not (Float.is_finite total) then
      failwith "Balance.solve: probability mass vanished or diverged";
    let inv = 1.0 /. total in
    for i = 0 to n - 1 do
      pi.(i) <- pi.(i) *. inv
    done
  in
  let previous = Array.copy pi in
  let sweep = ref 0 in
  let converged = ref false in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    Array.blit pi 0 previous 0 n;
    for idx = 0 to n - 1 do
      update order.(idx)
    done;
    for idx = n - 1 downto 0 do
      update order.(idx)
    done;
    normalise ();
    let dist = ref 0.0 in
    for i = 0 to n - 1 do
      dist := !dist +. Float.abs (pi.(i) -. previous.(i))
    done;
    if !dist < tol then converged := true
  done;
  if not !converged then failwith "Balance.solve: Gauss-Seidel did not converge";
  pi
