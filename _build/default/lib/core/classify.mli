(** Empirical stability classification from simulation traces.

    Theorem 1's dichotomy shows up in finite runs as a sharp qualitative
    difference: transient parameterisations grow linearly
    ([N_t ≈ Δ·t], Section VI), while positive-recurrent ones keep
    returning to small populations.  We classify a trace by (i) the OLS
    growth rate of [N_t] over the second half of the run with its
    t-statistic and (ii) a recurrence witness — the minimum of [N_t] over
    the last quarter relative to the running scale. *)

type verdict = Appears_stable | Appears_unstable | Inconclusive

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

type result = {
  verdict : verdict;
  growth_rate : float;  (** peers per unit time, OLS on the second half *)
  growth_t_stat : float;
  late_minimum : int;  (** min N over the last quarter of the run *)
  early_scale : float;  (** mean N over the first half (the comparison scale) *)
  mean_n : float;  (** time-average N over the whole run *)
  final_n : int;
}

val of_samples : (float * int) array -> result
(** Classify a sampled [(t, N_t)] trajectory.
    @raise Invalid_argument with fewer than 16 samples. *)

val of_stats : Sim_markov.stats -> result

val run :
  ?horizon:float -> ?policy:Policy.t -> ?initial:(Sim_markov.Pieceset.t * int) list ->
  seed:int -> Params.t -> result
(** Simulate and classify in one step (default horizon 2000 time units). *)

val majority :
  ?replications:int -> ?horizon:float -> ?policy:Policy.t -> seed:int -> Params.t -> verdict
(** Run several independent replications (default 3) and take the modal
    verdict, treating a tie as [Inconclusive]. *)
