(** The μ = ∞ watched process of Section VIII-D (Fig. 3).

    For the symmetric borderline network — [λ_C = λ] for singletons, no
    fixed seed, γ = ∞ — the process watched on "slow" states (all peers of
    one type) has reduced state space
    [{(0,0)} ∪ {(n,k) : n ≥ 1, 1 ≤ k ≤ K−1}]: [n] peers all holding the
    same [k] pieces.  Out of a top-layer state [(n, K−1)]:

    - with probability [(K−1)/K] a peer arrives holding a piece the club
      already has and instantly joins: [(n+1, K−1)];
    - with probability [1/K] the newcomer holds the missing piece; fair
      coin flips (heads = upload by the newcomer, tails = download) give
      [Z] = heads before the [(K−1)]-th tail, and the next state is
      [(n−Z, K−1)] if [Z ≤ n−1], else [(1, 1+tails-at-n-th-head)].

    Lower layers drift up: [(n,k) → (n+1,k)] w.p. [k/K] and
    [(n+1,k+1)] w.p. [(K−k)/K].  Since [E Z = K−1], the top layer is a
    zero-drift random walk — null recurrence, the knife-edge the paper's
    Conjecture 17 refines for finite μ. *)

type state = { n : int; pieces : int }

type config = { k : int; lambda : float }
(** @raise Invalid_argument unless [k >= 2] and [lambda > 0]. *)

val validate : config -> unit
val initial : state
(** [(0,0)]. *)

type coin_outcome = Stay_top of int  (** [Z]: club members removed *) | Collapse of int
    (** all old peers departed; the newcomer remains with this many pieces *)

val sample_missing_piece_arrival : P2p_prng.Rng.t -> k:int -> n:int -> coin_outcome
(** The coin-flip experiment at a top-layer state of size [n]. *)

val z_expectation : k:int -> float
(** [E Z = K − 1] (zero drift: upward rate [(K−1)λ] = mean downward). *)

val step : P2p_prng.Rng.t -> config -> state -> state
(** One embedded-chain transition. *)

val holding_rate : config -> state -> float
(** Total exponential rate out of a slow state ([K·λ], or [K·λ] at
    [(0,0)] too — arrivals only). *)

type run = {
  steps : int;
  final : state;
  max_n : int;
  top_layer_steps : int;  (** steps taken from top-layer states *)
  mean_top_increment : float;  (** empirical mean of n-jumps on the top layer *)
}

val simulate : P2p_prng.Rng.t -> config -> init:state -> steps:int -> run

type excursion = { length : int; peak : int; capped : bool }
(** One excursion of the top-layer walk above a starting level. *)

val excursions :
  P2p_prng.Rng.t -> config -> start_n:int -> count:int -> cap_steps:int -> excursion list
(** Repeatedly start at [(start_n, K−1)] and run until [n < start_n]
    (length = embedded steps), giving up after [cap_steps].  Null
    recurrence shows as excursions that almost surely finish but with
    empirical mean length growing without bound in [cap_steps]. *)
