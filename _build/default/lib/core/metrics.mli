(** Trajectory and state observables shared by the experiments.

    Includes the quasi-stability probe the paper's conclusion calls for:
    a provably transient system may dwell for a long time in good states
    before the one-club forms; {!club_onset} measures that onset time from
    an agent-simulation trace, so different piece-selection policies can
    be compared on {e longevity} even though Theorem 14 says they share
    the stability region. *)

module Pieceset = P2p_pieceset.Pieceset

val club_onset :
  Sim_agent.stats -> fraction:float -> min_population:int -> float option
(** First sampling time at which the one-club (plus former members still
    present) holds at least [fraction] of the population {e and} the
    population is at least [min_population]; [None] if never. *)

val time_above :
  (float * int) array -> threshold:int -> float
(** Fraction of the sampled horizon during which [N_t >= threshold]
    (step-function approximation on the sampling grid). *)

val peak : (float * int) array -> float * int
(** The sample with the largest population. *)

val piece_rarity : State.t -> k:int -> (int * int) list
(** Pieces with their copy counts, rarest first (ties by piece index). *)

val rarest_piece : State.t -> k:int -> int
(** @raise Invalid_argument if [k < 1]. *)

val gini_of_piece_counts : State.t -> k:int -> float
(** Gini coefficient of the piece copy counts — 0 for perfectly balanced
    piece availability, approaching 1 when one piece dominates; a scalar
    "missing piece pressure" indicator. [nan] when no copies exist. *)

val drain_time : (float * int) array -> from_:int -> float option
(** Starting from the first sample with [N >= from_], the additional time
    until the population first drops below [from_ / 2]; [None] if it never
    does (or never reaches [from_]).  Used to quantify recovery from an
    engineered heavy load. *)
