(** Reachability analysis of the policy-restricted chain (Section VIII-A).

    Under a general piece-selection policy the Markov process need not be
    irreducible; Theorem 14 is stated on the unique minimal closed set of
    states reachable from the empty state.  The paper's example: when the
    lowest-numbered useful piece is always chosen, the reachable states
    only contain peers whose collections are consecutive prefixes
    [{1,...,j}].

    This module explores the reachable state space exhaustively up to a
    population cap and reports which {e peer types} ever occur — a direct
    check of that claim, and a tool for investigating other policies. *)

module Pieceset = P2p_pieceset.Pieceset

type result = {
  states_explored : int;
  truncated : bool;  (** hit the state or population cap *)
  types_seen : Pieceset.t list;  (** every peer type occurring in any reachable state, sorted *)
}

val explore :
  ?policy:Policy.t -> ?max_states:int -> Params.t -> n_max:int -> result
(** Breadth-first search from the empty state over all transitions with
    positive rate under the policy, with arrivals suppressed at
    [n = n_max].  [max_states] (default 500_000) bounds the exploration;
    [truncated] is set if it is hit.
    @raise Invalid_argument on [n_max < 1]. *)

val prefix_types_only : k:int -> Pieceset.t list -> bool
(** Whether every type in the list is a consecutive prefix
    [{}, {1}, {1,2}, ...] — the paper's characterisation for the
    sequential policy. *)

val all_types_reachable : k:int -> Pieceset.t list -> bool
(** Whether every one of the [2^K] types occurs. *)
