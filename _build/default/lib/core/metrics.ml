module Pieceset = P2p_pieceset.Pieceset

let club_onset (stats : Sim_agent.stats) ~fraction ~min_population =
  if fraction <= 0.0 || fraction > 1.0 then invalid_arg "Metrics.club_onset: bad fraction";
  let found = ref None in
  Array.iter
    (fun ((t, g) : float * Sim_agent.groups) ->
      if Option.is_none !found then begin
        let total = Sim_agent.groups_total g in
        let club = g.one_club + g.former_one_club in
        if
          total >= min_population
          && float_of_int club >= fraction *. float_of_int total
        then found := Some t
      end)
    stats.group_samples;
  !found

let time_above samples ~threshold =
  let n = Array.length samples in
  if n = 0 then nan
  else begin
    let above = Array.fold_left (fun acc (_, v) -> if v >= threshold then acc + 1 else acc) 0 samples in
    float_of_int above /. float_of_int n
  end

let peak samples =
  Array.fold_left
    (fun ((_, best_n) as best) ((_, v) as sample) -> if v > best_n then sample else best)
    (nan, min_int) samples

let piece_rarity state ~k =
  let counts = State.piece_count_vector state ~k in
  let pairs = List.init k (fun i -> (i, counts.(i))) in
  List.sort
    (fun (i1, c1) (i2, c2) -> if c1 <> c2 then Int.compare c1 c2 else Int.compare i1 i2)
    pairs

let rarest_piece state ~k =
  if k < 1 then invalid_arg "Metrics.rarest_piece: k < 1";
  match piece_rarity state ~k with (i, _) :: _ -> i | [] -> assert false

let gini_of_piece_counts state ~k =
  let counts = State.piece_count_vector state ~k in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then nan
  else begin
    (* Gini = sum_i sum_j |x_i - x_j| / (2 k sum x). *)
    let acc = ref 0 in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        acc := !acc + abs (counts.(i) - counts.(j))
      done
    done;
    float_of_int !acc /. (2.0 *. float_of_int k *. float_of_int total)
  end

let drain_time samples ~from_ =
  let n = Array.length samples in
  let rec find_start i =
    if i >= n then None
    else begin
      let _, v = samples.(i) in
      if v >= from_ then Some i else find_start (i + 1)
    end
  in
  match find_start 0 with
  | None -> None
  | Some start ->
      let t0, _ = samples.(start) in
      let rec find_drop i =
        if i >= n then None
        else begin
          let t, v = samples.(i) in
          if v < from_ / 2 then Some (t -. t0) else find_drop (i + 1)
        end
      in
      find_drop start
