(** The Lyapunov functions of Section VII and their exact drift.

    For [0 < μ < γ ≤ ∞] the paper proves positive recurrence with

    {v W(x) = Σ_C r^{|C|} T_C,
      T_C = ½ E_C² + α E_C φ(H_C)   (C ≠ F),   T_F = ½ n²          (11/12) v}

    where [E_C = Σ_{C'⊆C} x_{C'}] counts peers that can still join type
    [C], [H_C = (Σ_{C'⊄C} (K−|C'|+μ/γ) x_{C'}) / (1−μ/γ)] is the stored
    helping potential, and [φ] is the truncated-quadratic ramp with
    parameters [d, β].  For [0 < γ ≤ μ] the variant [W'] (Eq. 43) replaces
    [α φ(H_C)] by [p φ(H'_C)] with [H'_C = Σ_{C'⊄C}(K+1−|C'|) x_{C'}].

    The drift [QW(x) = Σ_{x'} q(x,x')(W(x') − W(x))] is computed {e
    exactly} by enumerating the generator row ({!Rate.transitions}) —
    experiment E11 verifies [QW(x) ≤ −ξ n] on large states inside the
    stability region, which is the content of Lemma 12 + Lemma 7. *)

module Pieceset = P2p_pieceset.Pieceset

type coeffs = {
  r : float;  (** geometric weight per piece, r ∈ (0, ½) *)
  d : float;  (** ramp start, large *)
  beta : float;  (** ramp curvature, small *)
  alpha : float;  (** mixing weight, close to 1 (γ > μ case) *)
  p_const : float;  (** the constant p of Eq. (44) (γ ≤ μ case) *)
}

val default_coeffs : Params.t -> coeffs
(** Coefficients satisfying the side conditions of Lemma 12 (resp. Lemma
    13): [d > (K+μ/γ)/(1−μ/γ)], [β (K+μ/γ)²/(1−μ/γ)² ≤ 1/α − 1], [r]
    small; for [γ ≤ μ], [p] with [λ_{E_C} − p(U_s + λ*_{H_C}) < 0] for
    every proper [C]. *)

val phi : coeffs -> float -> float
(** The ramp function φ (nonincreasing, C¹, zero beyond [2d + 1/β]). *)

val phi_slope_bound : coeffs -> float -> float
(** φ'(x) — for tests of the Lipschitz bound of Lemma 19. *)

val e_c : State.t -> c:Pieceset.t -> int
(** [E_C]. *)

val h_c : Params.t -> State.t -> c:Pieceset.t -> float
(** [H_C] (uses μ/γ = 0 when γ = ∞). *)

val h_prime_c : Params.t -> State.t -> c:Pieceset.t -> float
(** [H'_C]. *)

val w : Params.t -> coeffs -> State.t -> float
(** Eq. (11) when γ < ∞, Eq. (12) when γ = ∞.
    @raise Invalid_argument when γ <= μ (use {!w_prime}). *)

val w_prime : Params.t -> coeffs -> State.t -> float
(** Eq. (43), the γ ≤ μ Lyapunov function. *)

val auto : Params.t -> coeffs -> State.t -> float
(** Selects {!w} or {!w_prime} by the parameter regime. *)

val drift : Params.t -> f:(State.t -> float) -> State.t -> float
(** Exact generator drift [Qf(x)] by row enumeration (random-useful
    policy). *)

val drift_w : Params.t -> coeffs -> State.t -> float
(** [Q(auto)(x)]. *)

val lw : Params.t -> coeffs -> State.t -> float
(** The paper's approximation [LW] to the drift (Section VII):
    [LW = Σ_C r^{|C|} LT_C] with
    [LT_C = E_C·Q(E_C) + α·E_C·Q(φ(H_C))] for [C ≠ F] and [n·Q(n)] for
    [C = F] — the product rule with the quadratic cross terms dropped.
    Lemma 8 bounds [|QW − LW| ≤ M_φ (D_total + 1) · Θ(1)]; a test verifies
    that bound numerically. *)

val d_total : Params.t -> State.t -> float
(** [D_total]: the aggregate rate at which peers change type or depart —
    the normaliser in Lemma 8's bound. *)

val m_phi : coeffs -> float
(** [M_φ = 3d + 1/β], the paper's bound on [max φ]. *)

type scan_point = {
  state_desc : string;
  n : int;
  drift_value : float;
  drift_per_peer : float;  (** drift / n — should be ≤ −ξ < 0 for large n *)
}

val scan_class_one :
  Params.t -> coeffs -> sizes:int list -> scan_point list
(** Drift at one-club-style states: for every proper type [S] and every
    size in [sizes], the state with all peers of type [S]. *)

val scan_class_two :
  Params.t -> coeffs -> rng:P2p_prng.Rng.t -> size:int -> samples:int -> scan_point list
(** Drift at random two-block states ([x_{C1}], [x_{C2}] each ≥ ε n). *)
