module Pieceset = P2p_pieceset.Pieceset

type t = {
  params : Params.t;
  m : int;  (* Erlang stages *)
  n_max : int;
  proper : Pieceset.t array;  (* the 2^K - 1 non-full types *)
  states : int array array;  (* counts: proper types ++ m seed stages *)
  targets : int array array;
  rates : float array array;
  pop : int array;  (* total population per state *)
}

let count_states ~num_types ~n_max =
  let acc = ref 1.0 in
  for i = 1 to num_types do
    acc := !acc *. float_of_int (n_max + i) /. float_of_int i
  done;
  !acc

let build (params : Params.t) ~stages ~n_max =
  if stages < 1 then invalid_arg "Erlang_chain.build: stages must be >= 1";
  if Params.immediate_departure params then
    invalid_arg "Erlang_chain.build: needs finite gamma";
  if n_max < 1 then invalid_arg "Erlang_chain.build: n_max must be >= 1";
  let proper = Array.of_list (Pieceset.all_proper ~k:params.k) in
  let np = Array.length proper in
  let num_types = np + stages in
  if count_states ~num_types ~n_max > 2_000_000.0 then
    invalid_arg "Erlang_chain.build: state space too large";
  (* enumerate compositions *)
  let states = ref [] in
  let current = Array.make num_types 0 in
  let rec fill pos remaining =
    if pos = num_types then states := Array.copy current :: !states
    else
      for v = 0 to remaining do
        current.(pos) <- v;
        fill (pos + 1) (remaining - v)
      done
  in
  fill 0 n_max;
  let states = Array.of_list (List.rev !states) in
  let index = Hashtbl.create (2 * Array.length states) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) states;
  let full = Params.full_set params in
  let stage_rate = float_of_int stages *. params.gamma in
  (* the piece-transfer rates see seeds (all stages) as type-F peers *)
  let to_state vec =
    let entries = ref [] in
    Array.iteri
      (fun i _ -> if vec.(i) > 0 then entries := (proper.(i), vec.(i)) :: !entries)
      proper;
    let seeds = ref 0 in
    for s = 0 to stages - 1 do
      seeds := !seeds + vec.(np + s)
    done;
    if !seeds > 0 then entries := (full, !seeds) :: !entries;
    State.of_counts !entries
  in
  let n_states = Array.length states in
  let targets = Array.make n_states [||] in
  let rates = Array.make n_states [||] in
  let pop = Array.map (Array.fold_left ( + ) 0) states in
  let proper_index = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace proper_index (Pieceset.to_index c) i) proper;
  Array.iteri
    (fun si vec ->
      let n = pop.(si) in
      let state = to_state vec in
      let row = ref [] in
      let push vec' rate = row := (Hashtbl.find index vec', rate) :: !row in
      (* arrivals (rejected at the cap) *)
      if n < n_max then
        Array.iter
          (fun (c, rate) ->
            let vec' = Array.copy vec in
            if Pieceset.equal c full then vec'.(np) <- vec'.(np) + 1
            else begin
              let i = Hashtbl.find proper_index (Pieceset.to_index c) in
              vec'.(i) <- vec'.(i) + 1
            end;
            push vec' rate)
          params.arrivals;
      (* piece transfers: Eq. (1) with seeds aggregated as type F *)
      Array.iteri
        (fun i c ->
          if vec.(i) > 0 then
            Pieceset.iter
              (fun piece ->
                let rate = Rate.gamma_c_i params state ~c ~piece in
                if rate > 0.0 then begin
                  let target = Pieceset.add piece c in
                  let vec' = Array.copy vec in
                  vec'.(i) <- vec'.(i) - 1;
                  if Pieceset.equal target full then vec'.(np) <- vec'.(np) + 1
                  else begin
                    let j = Hashtbl.find proper_index (Pieceset.to_index target) in
                    vec'.(j) <- vec'.(j) + 1
                  end;
                  push vec' rate
                end)
              (Pieceset.complement ~k:params.k c))
        proper;
      (* seed stage progression and final departure *)
      for s = 0 to stages - 1 do
        let here = vec.(np + s) in
        if here > 0 then begin
          let vec' = Array.copy vec in
          vec'.(np + s) <- here - 1;
          if s < stages - 1 then vec'.(np + s + 1) <- vec'.(np + s + 1) + 1;
          push vec' (stage_rate *. float_of_int here)
        end
      done;
      targets.(si) <- Array.of_list (List.rev_map fst !row);
      rates.(si) <- Array.of_list (List.rev_map snd !row))
    states;
  { params; m = stages; n_max; proper; states; targets; rates; pop }

let state_count t = Array.length t.states
let stages t = t.m

type solved = { mean_n : float; mean_seeds : float; mass_at_cap : float; p_empty : float }

let solve ?tol t =
  let pi =
    Balance.solve ?tol { Balance.targets = t.targets; rates = t.rates } ~sweep_key:t.pop
  in
  let np = Array.length t.proper in
  let mean_n = ref 0.0 and mean_seeds = ref 0.0 and cap = ref 0.0 and empty = ref 0.0 in
  Array.iteri
    (fun i p ->
      mean_n := !mean_n +. (p *. float_of_int t.pop.(i));
      let seeds = ref 0 in
      for s = 0 to t.m - 1 do
        seeds := !seeds + t.states.(i).(np + s)
      done;
      mean_seeds := !mean_seeds +. (p *. float_of_int !seeds);
      if t.pop.(i) = t.n_max then cap := !cap +. p;
      if t.pop.(i) = 0 then empty := !empty +. p)
    pi;
  { mean_n = !mean_n; mean_seeds = !mean_seeds; mass_at_cap = !cap; p_empty = !empty }
