(** Named parameterisations: the paper's worked examples and the workloads
    the experiments sweep. *)

module Pieceset = P2p_pieceset.Pieceset

val example1 : lambda0:float -> us:float -> mu:float -> gamma:float -> Params.t
(** Fig. 1(a): a single piece (K = 1), empty-handed arrivals at [λ0], a
    fixed seed, and peer seeds dwelling at rate γ.  Stable iff [μ ≥ γ] or
    [λ0 < U_s / (1 − μ/γ)] (Leskelä–Robert–Simatos, confirmed by
    Theorem 1). *)

val example1_threshold : us:float -> mu:float -> gamma:float -> float
(** The critical λ0 ([infinity] when μ ≥ γ). *)

val example2 : lambda12:float -> lambda34:float -> mu:float -> Params.t
(** Fig. 1(b): K = 4, no seed, immediate departures; peers arrive holding
    [{1,2}] at [λ12] or [{3,4}] at [λ34].  Stable iff [λ12 < 2 λ34] and
    [λ34 < 2 λ12]. *)

val example3 :
  lambda1:float -> lambda2:float -> lambda3:float -> mu:float -> gamma:float -> Params.t
(** Fig. 1(c): K = 3, no seed; peers arrive holding one piece.  Stable iff
    [λ_i + λ_j < λ_k (2 + μ/γ) / (1 − μ/γ)] for all permutations. *)

val example3_lhs_rhs : Params.t -> (float * float) array
(** The three (left, right) sides of the Example 3 inequalities, in the
    order pieces 3, 1, 2 are the "missing" one — for printing the paper's
    system of inequalities. *)

val flash_crowd : k:int -> lambda:float -> us:float -> mu:float -> gamma:float -> Params.t
(** Empty-handed arrivals only — the [9,10] baseline model this paper
    generalises. *)

val gift_uncoded : k:int -> lambda_total:float -> f:float -> mu:float -> Params.t
(** [U_s = 0, γ = ∞]; fraction [f] of arrivals hold one uniformly chosen
    data piece, the rest arrive empty-handed — the uncoded contrast to the
    Theorem 15 example (transient for every [f < 1]). *)

val symmetric_singletons : k:int -> lambda:float -> mu:float -> Params.t
(** [λ_C = λ] for singletons, no seed, γ = ∞: the borderline network of
    Section VIII-D / Conjecture 17. *)
