module Pieceset = P2p_pieceset.Pieceset

type uploader = Fixed_seed | Peer of Pieceset.t

let uploader_pieces ~k = function Fixed_seed -> Pieceset.full ~k | Peer c -> c

let useful_pieces ~k ~uploader ~downloader =
  Pieceset.diff (uploader_pieces ~k uploader) downloader

type t = {
  name : string;
  distribution :
    k:int -> state:State.t -> uploader:uploader -> downloader:Pieceset.t -> (int * float) list;
}

let uniform_over pieces =
  let elems = Pieceset.elements pieces in
  let p = 1.0 /. float_of_int (List.length elems) in
  List.map (fun i -> (i, p)) elems

let random_useful =
  {
    name = "random-useful";
    distribution =
      (fun ~k ~state:_ ~uploader ~downloader ->
        uniform_over (useful_pieces ~k ~uploader ~downloader));
  }

(* Uniform over the useful pieces minimising (resp. maximising) the global
   copy count. *)
let by_rarity ~name ~prefer_rare =
  {
    name;
    distribution =
      (fun ~k ~state ~uploader ~downloader ->
        let useful = useful_pieces ~k ~uploader ~downloader in
        let copies = State.piece_count_vector state ~k in
        let best =
          Pieceset.fold
            (fun i acc ->
              match acc with
              | None -> Some copies.(i)
              | Some b ->
                  if (prefer_rare && copies.(i) < b) || ((not prefer_rare) && copies.(i) > b)
                  then Some copies.(i)
                  else acc)
            useful None
        in
        match best with
        | None -> invalid_arg "Policy: no useful piece"
        | Some b ->
            let chosen = Pieceset.fold (fun i acc -> if copies.(i) = b then Pieceset.add i acc else acc) useful Pieceset.empty in
            uniform_over chosen);
  }

let rarest_first = by_rarity ~name:"rarest-first" ~prefer_rare:true
let most_common_first = by_rarity ~name:"most-common-first" ~prefer_rare:false

let sequential =
  {
    name = "sequential";
    distribution =
      (fun ~k ~state:_ ~uploader ~downloader ->
        let useful = useful_pieces ~k ~uploader ~downloader in
        [ (Pieceset.lowest useful, 1.0) ]);
  }

let sample t ~rng ~k ~state ~uploader ~downloader =
  if Pieceset.is_empty (useful_pieces ~k ~uploader ~downloader) then None
  else begin
    let dist = t.distribution ~k ~state ~uploader ~downloader in
    match dist with
    | [] -> None
    | [ (i, _) ] -> Some i
    | dist ->
        let weights = Array.of_list (List.map snd dist) in
        let idx = P2p_prng.Dist.categorical rng ~weights in
        Some (fst (List.nth dist idx))
  end

let validate_distribution dist ~useful =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
  let supported = List.for_all (fun (i, p) -> p >= 0.0 && Pieceset.mem i useful) dist in
  supported && Float.abs (total -. 1.0) < 1e-9
