module Rng = P2p_prng.Rng

type state = { n : int; pieces : int }
type config = { k : int; lambda : float }

let validate c =
  if c.k < 2 then invalid_arg "Mu_infinity: k must be >= 2";
  if c.lambda <= 0.0 then invalid_arg "Mu_infinity: lambda must be positive"

let initial = { n = 0; pieces = 0 }

type coin_outcome = Stay_top of int | Collapse of int

let sample_missing_piece_arrival rng ~k ~n =
  (* Fair coin flips: heads = newcomer uploads the missing piece (one club
     member departs), tails = newcomer downloads one of the K-1 pieces it
     lacks.  Stop at K-1 tails (newcomer completes and departs) or at n
     heads (the whole club has departed). *)
  let heads = ref 0 and tails = ref 0 in
  while !tails < k - 1 && !heads < n do
    if Rng.bool rng then incr heads else incr tails
  done;
  if !tails = k - 1 then Stay_top !heads else Collapse (1 + !tails)

let z_expectation ~k = float_of_int (k - 1)

let step rng config state =
  validate config;
  if state.n = 0 then { n = 1; pieces = 1 }
  else if state.pieces < config.k - 1 then begin
    (* A lower-layer state: the newcomer's piece is either already held
       (prob pieces/K) or new to the club (all peers end one piece
       richer). *)
    if Rng.int_below rng config.k < state.pieces then { state with n = state.n + 1 }
    else { n = state.n + 1; pieces = state.pieces + 1 }
  end
  else if Rng.int_below rng config.k < config.k - 1 then { state with n = state.n + 1 }
  else begin
    match sample_missing_piece_arrival rng ~k:config.k ~n:state.n with
    | Stay_top z -> { n = state.n - z; pieces = config.k - 1 }
    | Collapse pieces -> { n = 1; pieces }
  end

let holding_rate config _state = float_of_int config.k *. config.lambda

type run = {
  steps : int;
  final : state;
  max_n : int;
  top_layer_steps : int;
  mean_top_increment : float;
}

let simulate rng config ~init ~steps =
  validate config;
  let state = ref init in
  let max_n = ref init.n in
  let top_steps = ref 0 in
  let top_increment = P2p_stats.Welford.create () in
  for _ = 1 to steps do
    let before = !state in
    let after = step rng config before in
    if before.pieces = config.k - 1 && before.n >= 1 then begin
      incr top_steps;
      (* Collapse counts as losing the whole club. *)
      let dn =
        if after.pieces = config.k - 1 then after.n - before.n else 1 - before.n
      in
      P2p_stats.Welford.add top_increment (float_of_int dn)
    end;
    if after.n > !max_n then max_n := after.n;
    state := after
  done;
  {
    steps;
    final = !state;
    max_n = !max_n;
    top_layer_steps = !top_steps;
    mean_top_increment = P2p_stats.Welford.mean top_increment;
  }

type excursion = { length : int; peak : int; capped : bool }

let excursions rng config ~start_n ~count ~cap_steps =
  validate config;
  if start_n < 1 then invalid_arg "Mu_infinity.excursions: start_n must be >= 1";
  List.init count (fun _ ->
      let state = ref { n = start_n; pieces = config.k - 1 } in
      let steps = ref 0 in
      let peak = ref start_n in
      let finished = ref false in
      while (not !finished) && !steps < cap_steps do
        state := step rng config !state;
        incr steps;
        if !state.n > !peak then peak := !state.n;
        if !state.n < start_n then finished := true
      done;
      { length = !steps; peak = !peak; capped = not !finished })
