(** Minimal aligned-table and banner printing shared by the examples, the
    CLI, and the benchmark harness. *)

val banner : string -> unit
(** Prints a section header to stdout. *)

val subsection : string -> unit

val table : header:string list -> string list list -> unit
(** Prints rows aligned to column widths. Rows shorter than the header are
    padded. *)

val kv : (string * string) list -> unit
(** Key-value block. *)

val fmt_float : float -> string
(** Compact float formatting ("1.234", "inf", "0.00507"). *)

val fmt_bool : bool -> string

val set_output_dir : string option -> unit
(** When set, every subsequent {!table} is also written as a CSV file
    [table_NNN_<slug>.csv] in that directory (created if missing), where
    the slug comes from the latest {!banner}.  Used by the benchmark
    harness to export every experiment's rows for external plotting. *)

val output_dir : unit -> string option
