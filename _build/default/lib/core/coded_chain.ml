module Lattice = P2p_coding.Lattice
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist

type config = {
  q : int;
  k : int;
  us : float;
  mu : float;
  gamma : float;
  arrivals : (int * float) list;
}

type t = {
  cfg : config;
  lat : Lattice.t;
  arrival_rates : float array;  (* per subspace id *)
  lambda_effective : float;  (* total arrival rate that changes the state *)
  immediate : bool;
}

let create cfg =
  if cfg.us < 0.0 || cfg.mu <= 0.0 || cfg.gamma <= 0.0 then
    invalid_arg "Coded_chain.create: bad rates";
  List.iter
    (fun (j, rate) ->
      if j < 0 || rate < 0.0 then invalid_arg "Coded_chain.create: bad arrival entry")
    cfg.arrivals;
  if List.fold_left (fun acc (_, r) -> acc +. r) 0.0 cfg.arrivals <= 0.0 then
    invalid_arg "Coded_chain.create: total arrival rate must be positive";
  let lat = Lattice.build ~q:cfg.q ~k:cfg.k in
  let immediate = not (Float.is_finite cfg.gamma) in
  let arrival_rates = Array.make (Lattice.count lat) 0.0 in
  List.iter
    (fun (j, rate) ->
      if rate > 0.0 then begin
        let span = Lattice.span_distribution lat ~coded:j in
        Array.iteri
          (fun v p -> arrival_rates.(v) <- arrival_rates.(v) +. (rate *. p))
          span
      end)
    cfg.arrivals;
  (* Arrivals that decode instantly leave immediately when gamma = inf:
     they never enter the state. *)
  if immediate then arrival_rates.(Lattice.full lat) <- 0.0;
  let lambda_effective = Array.fold_left ( +. ) 0.0 arrival_rates in
  { cfg; lat; arrival_rates; lambda_effective; immediate }

let lattice t = t.lat
let config t = t.cfg
let arrival_rate_to t v = t.arrival_rates.(v)
let mu_tilde t = (1.0 -. (1.0 /. float_of_int t.cfg.q)) *. t.cfg.mu

type state = { counts : int array; mutable n : int }

let empty_state t = { counts = Array.make (Lattice.count t.lat) 0; n = 0 }

let state_of t entries =
  let s = empty_state t in
  List.iter
    (fun (v, c) ->
      if c < 0 then invalid_arg "Coded_chain.state_of: negative count";
      s.counts.(v) <- s.counts.(v) + c;
      s.n <- s.n + c)
    entries;
  s

let copy_state s = { counts = Array.copy s.counts; n = s.n }

type transition =
  | Arrival of Lattice.subspace
  | Seed_departure
  | Transfer of { downloader : Lattice.subspace; target : Lattice.subspace }

(* Aggregate rate of a type-v peer being lifted to exactly [target]. *)
let transfer_rate t state ~downloader ~target =
  let x_v = state.counts.(downloader) in
  if x_v = 0 || state.n = 0 then 0.0
  else begin
    let seed_part =
      if t.cfg.us > 0.0 then
        t.cfg.us *. Lattice.seed_move_probability t.lat ~downloader ~target
      else 0.0
    in
    let peer_part = ref 0.0 in
    Array.iteri
      (fun u x_u ->
        if x_u > 0 then begin
          let p = Lattice.upload_move_probability t.lat ~uploader:u ~downloader ~target in
          if p > 0.0 then peer_part := !peer_part +. (float_of_int x_u *. p)
        end)
      state.counts;
    float_of_int x_v /. float_of_int state.n *. (seed_part +. (t.cfg.mu *. !peer_part))
  end

let transitions t state =
  let acc = ref [] in
  Array.iteri
    (fun v rate -> if rate > 0.0 then acc := (Arrival v, rate) :: !acc)
    t.arrival_rates;
  let full = Lattice.full t.lat in
  if (not t.immediate) && state.counts.(full) > 0 then
    acc := (Seed_departure, t.cfg.gamma *. float_of_int state.counts.(full)) :: !acc;
  Array.iteri
    (fun v x_v ->
      if x_v > 0 && v <> full then
        Array.iter
          (fun target ->
            let rate = transfer_rate t state ~downloader:v ~target in
            if rate > 0.0 then acc := (Transfer { downloader = v; target }, rate) :: !acc)
          (Lattice.covers t.lat v))
    state.counts;
  !acc

let apply t state = function
  | Arrival v ->
      if v = Lattice.full t.lat && t.immediate then
        invalid_arg "Coded_chain.apply: complete arrival with gamma = inf";
      state.counts.(v) <- state.counts.(v) + 1;
      state.n <- state.n + 1
  | Seed_departure ->
      let full = Lattice.full t.lat in
      if state.counts.(full) <= 0 then invalid_arg "Coded_chain.apply: no seed to depart";
      state.counts.(full) <- state.counts.(full) - 1;
      state.n <- state.n - 1
  | Transfer { downloader; target } ->
      if state.counts.(downloader) <= 0 then
        invalid_arg "Coded_chain.apply: no such downloader";
      state.counts.(downloader) <- state.counts.(downloader) - 1;
      if target = Lattice.full t.lat && t.immediate then state.n <- state.n - 1
      else state.counts.(target) <- state.counts.(target) + 1

(* ---- simulation ---- *)

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  samples : (float * int) array;
}

let simulate ?sample_every ~rng t ~init ~horizon =
  let state = copy_state init in
  let clock = ref 0.0 in
  let events = ref 0 in
  let arrivals = ref 0 in
  let departures = ref 0 in
  let max_n = ref state.n in
  let avg = P2p_stats.Timeavg.create () in
  P2p_stats.Timeavg.observe avg ~time:0.0 ~value:(float_of_int state.n);
  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let samples = ref [] in
  let next_sample = ref 0.0 in
  let record_through time =
    while !next_sample <= time && !next_sample <= horizon do
      samples := (!next_sample, state.n) :: !samples;
      next_sample := !next_sample +. sample_every
    done
  in
  record_through 0.0;
  let running = ref true in
  while !running do
    let ts = transitions t state in
    let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 ts in
    if total <= 0.0 then begin
      record_through horizon;
      P2p_stats.Timeavg.close avg ~time:horizon;
      clock := horizon;
      running := false
    end
    else begin
      let dt = Dist.exponential rng ~rate:total in
      let next = !clock +. dt in
      if next > horizon then begin
        record_through horizon;
        P2p_stats.Timeavg.close avg ~time:horizon;
        clock := horizon;
        running := false
      end
      else begin
        record_through next;
        clock := next;
        incr events;
        let target = Rng.float rng *. total in
        let rec pick acc = function
          | [] -> assert false
          | [ (tr, _) ] -> tr
          | (tr, r) :: rest -> if acc +. r >= target then tr else pick (acc +. r) rest
        in
        let transition = pick 0.0 ts in
        let before = state.n in
        apply t state transition;
        (match transition with
        | Arrival _ -> incr arrivals
        | Seed_departure -> incr departures
        | Transfer _ -> if state.n < before then incr departures);
        P2p_stats.Timeavg.observe avg ~time:!clock ~value:(float_of_int state.n);
        if state.n > !max_n then max_n := state.n
      end
    end
  done;
  {
    final_time = !clock;
    events = !events;
    arrivals = !arrivals;
    departures = !departures;
    time_avg_n = P2p_stats.Timeavg.average avg;
    max_n = !max_n;
    final_n = state.n;
    samples = Array.of_list (List.rev !samples);
  }

(* ---- exact stationary analysis ---- *)

type solved = {
  chain_states : int array array;
  pi : float array;
  mean_n : float;
  mass_at_cap : float;
}

let stationary ?tol t ~n_max =
  if n_max < 1 then invalid_arg "Coded_chain.stationary: n_max must be >= 1";
  let num_types =
    if t.immediate then Lattice.count t.lat - 1 else Lattice.count t.lat
  in
  (* types carried: every subspace except full when gamma = inf; keep the
     id mapping simple by always using the full vector and just never
     populating full when immediate. *)
  ignore num_types;
  let type_count = Lattice.count t.lat in
  let full = Lattice.full t.lat in
  let carried =
    Array.of_list
      (List.filter
         (fun v -> not (t.immediate && v = full))
         (List.init type_count (fun i -> i)))
  in
  let nt = Array.length carried in
  let space_size =
    let acc = ref 1.0 in
    for i = 1 to nt do
      acc := !acc *. float_of_int (n_max + i) /. float_of_int i
    done;
    !acc
  in
  if space_size > 2_000_000.0 then
    invalid_arg "Coded_chain.stationary: state space too large";
  (* enumerate compositions *)
  let states = ref [] in
  let current = Array.make nt 0 in
  let rec fill pos remaining =
    if pos = nt then states := Array.copy current :: !states
    else
      for v = 0 to remaining do
        current.(pos) <- v;
        fill (pos + 1) (remaining - v)
      done
  in
  fill 0 n_max;
  let states = Array.of_list (List.rev !states) in
  let index = Hashtbl.create (2 * Array.length states) in
  Array.iteri (fun i v -> Hashtbl.replace index v i) states;
  let to_state vec =
    let s = empty_state t in
    Array.iteri
      (fun pos c ->
        s.counts.(carried.(pos)) <- c;
        s.n <- s.n + c)
      vec;
    s
  in
  let of_state s = Array.map (fun v -> s.counts.(v)) carried in
  let n_states = Array.length states in
  let targets = Array.make n_states [||] in
  let rates = Array.make n_states [||] in
  Array.iteri
    (fun i vec ->
      let s = to_state vec in
      let row =
        List.filter_map
          (fun (transition, rate) ->
            match transition with
            | Arrival _ when s.n >= n_max -> None
            | Arrival _ | Seed_departure | Transfer _ ->
                let next = copy_state s in
                apply t next transition;
                let key = of_state next in
                Some (Hashtbl.find index key, rate))
          (transitions t s)
      in
      targets.(i) <- Array.of_list (List.map fst row);
      rates.(i) <- Array.of_list (List.map snd row))
    states;
  let sweep_key = Array.map (Array.fold_left ( + ) 0) states in
  let pi = Balance.solve ?tol { Balance.targets; rates } ~sweep_key in
  let mean_n = ref 0.0 and cap = ref 0.0 in
  Array.iteri
    (fun i p ->
      let n = sweep_key.(i) in
      mean_n := !mean_n +. (p *. float_of_int n);
      if n = n_max then cap := !cap +. p)
    pi;
  { chain_states = states; pi; mean_n = !mean_n; mass_at_cap = !cap }

let mean_dim t solved =
  (* population-weighted mean dimension: E[sum_peers dim] / E[N]. *)
  let full = Lattice.full t.lat in
  let carried =
    Array.of_list
      (List.filter
         (fun v -> not (t.immediate && v = full))
         (List.init (Lattice.count t.lat) (fun i -> i)))
  in
  let weighted = ref 0.0 and total = ref 0.0 in
  Array.iteri
    (fun i vec ->
      let p = solved.pi.(i) in
      Array.iteri
        (fun pos c ->
          if c > 0 then begin
            weighted :=
              !weighted +. (p *. float_of_int c *. float_of_int (Lattice.dim t.lat carried.(pos)));
            total := !total +. (p *. float_of_int c)
          end)
        vec)
    solved.chain_states;
  if !total <= 0.0 then nan else !weighted /. !total

(* ---- Eq. (56) Lyapunov ---- *)

let gamma_le_mu_tilde t = Float.is_finite t.cfg.gamma && t.cfg.gamma <= mu_tilde t

let rho t = if Float.is_finite t.cfg.gamma then t.cfg.mu /. t.cfg.gamma else 0.0
let rho_tilde t = if Float.is_finite t.cfg.gamma then mu_tilde t /. t.cfg.gamma else 0.0

let default_coeffs t =
  let frac = 1.0 -. (1.0 /. float_of_int t.cfg.q) in
  let jump =
    frac /. (1.0 -. rho_tilde t) *. (float_of_int t.cfg.k +. rho t)
  in
  let alpha = 0.9 in
  {
    Lyapunov.r = 0.05;
    d = 2.0 *. (jump +. 1.0);
    beta = Float.min 0.1 ((1.0 /. alpha -. 1.0) /. (jump *. jump));
    alpha;
    p_const = 1.0;
  }

let e_v t state v =
  let acc = ref 0 in
  Array.iteri
    (fun v' x -> if x > 0 && Lattice.leq t.lat v' v then acc := !acc + x)
    state.counts;
  !acc

let h_v t state v =
  let frac = 1.0 -. (1.0 /. float_of_int t.cfg.q) in
  let scale = frac /. (1.0 -. rho_tilde t) in
  let acc = ref 0.0 in
  Array.iteri
    (fun v' x ->
      if x > 0 && not (Lattice.leq t.lat v' v) then
        acc :=
          !acc
          +. (float_of_int x *. (float_of_int (t.cfg.k - Lattice.dim t.lat v') +. rho t)))
    state.counts;
  scale *. !acc

let w t coeffs state =
  if gamma_le_mu_tilde t then
    invalid_arg "Coded_chain.w: gamma <= mu_tilde is outside the Eq. (56) regime";
  let full = Lattice.full t.lat in
  let n = float_of_int state.n in
  let acc = ref 0.0 in
  for v = 0 to Lattice.count t.lat - 1 do
    let weight = coeffs.Lyapunov.r ** float_of_int (Lattice.dim t.lat v) in
    if v = full then begin
      if not t.immediate then acc := !acc +. (weight *. 0.5 *. n *. n)
    end
    else begin
      let ev = float_of_int (e_v t state v) in
      let tv =
        (0.5 *. ev *. ev)
        +. (coeffs.Lyapunov.alpha *. ev *. Lyapunov.phi coeffs (h_v t state v))
      in
      acc := !acc +. (weight *. tv)
    end
  done;
  !acc

let drift_w t coeffs state =
  let here = w t coeffs state in
  List.fold_left
    (fun acc (transition, rate) ->
      let next = copy_state state in
      apply t next transition;
      acc +. (rate *. (w t coeffs next -. here)))
    0.0 (transitions t state)

type scan_point = { state_desc : string; n : int; drift_value : float; drift_per_peer : float }

let scan_hyperplane_states t coeffs ~sizes =
  let planes = Lattice.hyperplanes t.lat in
  List.concat_map
    (fun size ->
      Array.to_list
        (Array.map
           (fun plane ->
             let state = state_of t [ (plane, size) ] in
             let dv = drift_w t coeffs state in
             {
               state_desc = Printf.sprintf "%d peers at hyperplane #%d" size plane;
               n = size;
               drift_value = dv;
               drift_per_peer = dv /. float_of_int size;
             })
           planes))
    sizes
