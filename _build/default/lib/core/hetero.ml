module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist

type klass = {
  label : string;
  mu : float;
  gamma : float;
  arrivals : (Pieceset.t * float) list;
}

type t = { k : int; us : float; classes : klass array }

let make ~k ~us ~classes =
  if k < 1 || k > Pieceset.max_pieces then invalid_arg "Hetero.make: k out of range";
  if us < 0.0 then invalid_arg "Hetero.make: us must be >= 0";
  if classes = [] then invalid_arg "Hetero.make: need at least one class";
  let full = Pieceset.full ~k in
  List.iter
    (fun c ->
      if c.mu <= 0.0 then invalid_arg "Hetero.make: class mu must be > 0";
      if c.gamma <= 0.0 then invalid_arg "Hetero.make: class gamma must be positive";
      List.iter
        (fun (set, rate) ->
          if rate < 0.0 then invalid_arg "Hetero.make: negative arrival rate";
          if not (Pieceset.subset set full) then invalid_arg "Hetero.make: type beyond K";
          if Pieceset.equal set full && not (Float.is_finite c.gamma) then
            invalid_arg "Hetero.make: lambda_F needs finite gamma")
        c.arrivals)
    classes;
  let total =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc (_, r) -> acc +. r) acc c.arrivals)
      0.0 classes
  in
  if total <= 0.0 then invalid_arg "Hetero.make: total arrival rate must be positive";
  { k; us; classes = Array.of_list classes }

let of_params (p : Params.t) =
  make ~k:p.k ~us:p.us
    ~classes:
      [
        {
          label = "all";
          mu = p.mu;
          gamma = p.gamma;
          arrivals = Array.to_list p.arrivals;
        };
      ]

let lambda_total t =
  Array.fold_left
    (fun acc c -> List.fold_left (fun acc (_, r) -> acc +. r) acc c.arrivals)
    0.0 t.classes

let rho_of (c : klass) = if Float.is_finite c.gamma then c.mu /. c.gamma else 0.0

(* Arrival rate of class-c peers missing [piece]. *)
let class_rate_missing (c : klass) ~piece =
  List.fold_left
    (fun acc (set, r) -> if Pieceset.mem piece set then acc else acc +. r)
    0.0 c.arrivals

let mean_seed_offspring t ~piece =
  (* class mix of the one-club = arrival mix of peers missing the piece *)
  let total = ref 0.0 and weighted = ref 0.0 in
  Array.iter
    (fun c ->
      let rate = class_rate_missing c ~piece in
      total := !total +. rate;
      weighted := !weighted +. (rate *. rho_of c))
    t.classes;
  if !total <= 0.0 then 0.0 else !weighted /. !total

let threshold t ~piece =
  let m_bar = mean_seed_offspring t ~piece in
  if m_bar >= 1.0 then infinity
  else begin
    (* gifted contributions: class-c arrivals holding the piece inject
       K - |C| + mu_c/gamma_c uploads of it over their stay *)
    let gifted =
      Array.fold_left
        (fun acc c ->
          List.fold_left
            (fun acc (set, r) ->
              if Pieceset.mem piece set then
                acc +. (r *. (float_of_int (t.k - Pieceset.cardinal set) +. rho_of c))
              else acc)
            acc c.arrivals)
        0.0 t.classes
    in
    let gifted_arrival_rate =
      Array.fold_left
        (fun acc c ->
          List.fold_left
            (fun acc (set, r) -> if Pieceset.mem piece set then acc +. r else acc)
            acc c.arrivals)
        0.0 t.classes
    in
    ((t.us +. gifted) /. (1.0 -. m_bar)) +. gifted_arrival_rate
  end

let classify_heuristic ?(tolerance = 1e-9) t =
  (* mirror Theorem 1's structure: supercritical seed branching for every
     piece that can enter => stable; otherwise compare to the minimum
     threshold. *)
  let lambda = lambda_total t in
  let piece_enters piece =
    t.us > 0.0
    || Array.exists
         (fun c -> List.exists (fun (set, r) -> r > 0.0 && Pieceset.mem piece set) c.arrivals)
         t.classes
  in
  let blocked = ref false in
  let worst = ref infinity in
  for piece = 0 to t.k - 1 do
    if not (piece_enters piece) then blocked := true
    else worst := Float.min !worst (threshold t ~piece)
  done;
  if !blocked then Stability.Transient
  else if lambda > !worst *. (1.0 +. tolerance) then Stability.Transient
  else if lambda < !worst *. (1.0 -. tolerance) then Stability.Positive_recurrent
  else Stability.Borderline

(* ---- simulation ---- *)

type peer = {
  mutable pieces : Pieceset.t;
  klass : int;
  arrival_time : float;
  mutable slot_global : int;
  mutable slot_class : int;
  mutable departed : bool;
}

type bag = { mutable items : peer array; mutable len : int }

let bag_create () = { items = [||]; len = 0 }

let bag_add which bag peer =
  if bag.len = Array.length bag.items then begin
    let bigger = Array.make (Int.max 16 (2 * bag.len)) peer in
    Array.blit bag.items 0 bigger 0 bag.len;
    bag.items <- bigger
  end;
  (match which with
  | `Global -> peer.slot_global <- bag.len
  | `Class -> peer.slot_class <- bag.len);
  bag.items.(bag.len) <- peer;
  bag.len <- bag.len + 1

let bag_remove which bag peer =
  let i = match which with `Global -> peer.slot_global | `Class -> peer.slot_class in
  bag.len <- bag.len - 1;
  if i <> bag.len then begin
    let moved = bag.items.(bag.len) in
    bag.items.(i) <- moved;
    match which with `Global -> moved.slot_global <- i | `Class -> moved.slot_class <- i
  end;
  match which with `Global -> peer.slot_global <- -1 | `Class -> peer.slot_class <- -1

let bag_uniform bag rng =
  if bag.len = 0 then invalid_arg "Hetero: empty bag";
  bag.items.(Rng.int_below rng bag.len)

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  samples : (float * int) array;
  class_mean_n : float array;
  class_mean_sojourn : float array;
}

let simulate ?sample_every ?(max_events = 200_000_000) ~rng t ~horizon =
  let full = Pieceset.full ~k:t.k in
  let nc = Array.length t.classes in
  let global = bag_create () in
  let per_class = Array.init nc (fun _ -> bag_create ()) in
  let state = State.create () in
  let departures_heap : peer P2p_des.Heap.t = P2p_des.Heap.create () in
  let clock = ref 0.0 in
  let events = ref 0 in
  let arrivals = ref 0 in
  let transfers = ref 0 in
  let departures = ref 0 in
  let max_n = ref 0 in
  let avg = P2p_stats.Timeavg.create () in
  let class_avg = Array.init nc (fun _ -> P2p_stats.Timeavg.create ()) in
  let sojourn = Array.init nc (fun _ -> P2p_stats.Welford.create ()) in
  (* flatten the arrival streams into (class, type, rate) *)
  let streams =
    Array.of_list
      (List.concat
         (List.mapi
            (fun ci (c : klass) -> List.map (fun (set, r) -> (ci, set, r)) c.arrivals)
            (Array.to_list t.classes)))
  in
  let stream_weights = Array.map (fun (_, _, r) -> r) streams in
  let lambda = Array.fold_left ( +. ) 0.0 stream_weights in

  let new_peer ci set ~time =
    let peer =
      {
        pieces = set;
        klass = ci;
        arrival_time = time;
        slot_global = -1;
        slot_class = -1;
        departed = false;
      }
    in
    bag_add `Global global peer;
    bag_add `Class per_class.(ci) peer;
    State.add_peer state set;
    peer
  in
  let depart peer ~time =
    bag_remove `Global global peer;
    bag_remove `Class per_class.(peer.klass) peer;
    State.remove_peer state peer.pieces;
    peer.departed <- true;
    incr departures;
    P2p_stats.Welford.add sojourn.(peer.klass) (time -. peer.arrival_time)
  in
  let complete peer ~time =
    let c = t.classes.(peer.klass) in
    if Float.is_finite c.gamma then begin
      let dwell = Dist.exponential rng ~rate:c.gamma in
      ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
    end
    else depart peer ~time
  in
  let deliver peer piece ~time =
    incr transfers;
    let target = Pieceset.add piece peer.pieces in
    State.move_peer state ~from_:peer.pieces ~to_:target;
    peer.pieces <- target;
    if Pieceset.equal target full then complete peer ~time
  in
  let contact uploader_pieces ~time =
    if global.len > 0 then begin
      let downloader = bag_uniform global rng in
      let useful = Pieceset.diff uploader_pieces downloader.pieces in
      if not (Pieceset.is_empty useful) then
        deliver downloader (Pieceset.choose_uniform (Rng.int_below rng) useful) ~time
    end
  in
  let observe time =
    P2p_stats.Timeavg.observe avg ~time ~value:(float_of_int global.len);
    Array.iteri
      (fun ci bag -> P2p_stats.Timeavg.observe class_avg.(ci) ~time ~value:(float_of_int bag.len))
      per_class;
    if global.len > !max_n then max_n := global.len
  in
  observe 0.0;
  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let samples = ref [] in
  let next_sample = ref 0.0 in
  let record_through time =
    while !next_sample <= time && !next_sample <= horizon do
      samples := (!next_sample, global.len) :: !samples;
      next_sample := !next_sample +. sample_every
    done
  in
  record_through 0.0;
  let running = ref true in
  while !running do
    let rate_seed = if global.len = 0 then 0.0 else t.us in
    let rate_peers = ref 0.0 in
    Array.iteri
      (fun ci bag -> rate_peers := !rate_peers +. (t.classes.(ci).mu *. float_of_int bag.len))
      per_class;
    let total = lambda +. rate_seed +. !rate_peers in
    let dt = Dist.exponential rng ~rate:total in
    let t_candidate = !clock +. dt in
    let next_departure = P2p_des.Heap.min_key departures_heap in
    let departure_first =
      match next_departure with Some d -> d <= t_candidate && d <= horizon | None -> false
    in
    if departure_first then begin
      match P2p_des.Heap.pop_min departures_heap with
      | Some (time, peer) ->
          record_through time;
          clock := time;
          incr events;
          if not peer.departed then depart peer ~time;
          observe time
      | None -> assert false
    end
    else if t_candidate > horizon || !events >= max_events then begin
      record_through horizon;
      P2p_stats.Timeavg.close avg ~time:horizon;
      Array.iter (fun a -> P2p_stats.Timeavg.close a ~time:horizon) class_avg;
      clock := horizon;
      running := false
    end
    else begin
      record_through t_candidate;
      clock := t_candidate;
      incr events;
      let u = Rng.float rng *. total in
      if u < lambda then begin
        let idx = Dist.categorical rng ~weights:stream_weights in
        let ci, set, _ = streams.(idx) in
        let peer = new_peer ci set ~time:!clock in
        incr arrivals;
        if Pieceset.equal set full then complete peer ~time:!clock
      end
      else if u < lambda +. rate_seed then contact full ~time:!clock
      else begin
        (* pick the uploader class proportionally to mu_c * n_c *)
        let target = u -. lambda -. rate_seed in
        let acc = ref 0.0 in
        let chosen = ref (-1) in
        Array.iteri
          (fun ci bag ->
            if !chosen < 0 then begin
              acc := !acc +. (t.classes.(ci).mu *. float_of_int bag.len);
              if target < !acc then chosen := ci
            end)
          per_class;
        let ci = if !chosen < 0 then nc - 1 else !chosen in
        if per_class.(ci).len > 0 then begin
          let uploader = bag_uniform per_class.(ci) rng in
          contact uploader.pieces ~time:!clock
        end
      end;
      observe !clock
    end
  done;
  {
    final_time = !clock;
    events = !events;
    arrivals = !arrivals;
    transfers = !transfers;
    departures = !departures;
    time_avg_n = P2p_stats.Timeavg.average avg;
    max_n = !max_n;
    final_n = global.len;
    samples = Array.of_list (List.rev !samples);
    class_mean_n = Array.map P2p_stats.Timeavg.average class_avg;
    class_mean_sojourn = Array.map P2p_stats.Welford.mean sojourn;
  }

let simulate_seeded ?sample_every ?max_events ~seed t ~horizon =
  simulate ?sample_every ?max_events ~rng:(Rng.of_seed seed) t ~horizon
