(** The type-level Markov chain of the network-coding system
    (Theorem 15).

    Under random linear coding the network state is the count of peers of
    each subspace type [V ⊆ F_q^K].  For small [q^K] the subspace lattice
    ({!P2p_coding.Lattice}) makes the chain exactly computable: arrival
    type laws come from the rank/span distribution of random gift
    matrices, and the transfer rates between types follow from the exact
    probability that a random member of the uploader's subspace lifts the
    downloader to a given cover.

    On top of the generator this module provides a Gillespie simulator, a
    truncated-space exact stationary solver (via {!Balance}), and the
    coded Lyapunov function of Eq. (56) with its exact drift — the
    computational content of the Theorem 15(b) proof. *)

module Lattice = P2p_coding.Lattice

type config = {
  q : int;
  k : int;
  us : float;
  mu : float;
  gamma : float;  (** [infinity] = depart on decoding *)
  arrivals : (int * float) list;  (** [(j, rate)]: gifts of [j] random coded pieces *)
}

type t

val create : config -> t
(** Builds the subspace lattice and the arrival decomposition.
    @raise Invalid_argument on bad rates, [q^k > 256], or an arrival mix
    whose every stream has rate 0. *)

val lattice : t -> Lattice.t
val config : t -> config

val arrival_rate_to : t -> Lattice.subspace -> float
(** Poisson rate of arrivals of exactly this subspace type. *)

(** A state is the dense count vector indexed by subspace id, together
    with its total. *)
type state = { counts : int array; mutable n : int }

val empty_state : t -> state
val state_of : t -> (Lattice.subspace * int) list -> state
val copy_state : state -> state

type transition =
  | Arrival of Lattice.subspace
  | Seed_departure
  | Transfer of { downloader : Lattice.subspace; target : Lattice.subspace }

val transitions : t -> state -> (transition * float) list
(** Every positive-rate transition out of the state.  Arrivals of
    already-complete peers are included only when γ < ∞ (otherwise they
    do not change the state). *)

val apply : t -> state -> transition -> unit
(** @raise Invalid_argument on an impossible transition. *)

val mu_tilde : t -> float
(** [(1 − 1/q) μ] — the effective useful-contact rate of Theorem 15. *)

(* ---- simulation ---- *)

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  samples : (float * int) array;
}

val simulate :
  ?sample_every:float -> rng:P2p_prng.Rng.t -> t -> init:state -> horizon:float -> stats
(** Exact Gillespie simulation on type counts (cost per event is
    O(occupied types × covers), independent of the population). *)

(* ---- exact stationary analysis ---- *)

type solved = {
  chain_states : int array array;
  pi : float array;
  mean_n : float;
  mass_at_cap : float;
}

val stationary : ?tol:float -> t -> n_max:int -> solved
(** Enumerate all states with [n <= n_max] (arrivals rejected at the cap)
    and solve the balance equations.  State count is
    [C(n_max + T, T)] with [T] the number of subspace types, so this is
    for genuinely small lattices (e.g. q=2, K=2: T=5).
    @raise Invalid_argument if the space would exceed ~2 million states. *)

val mean_dim : t -> solved -> float
(** Stationary mean subspace dimension per peer (population-weighted);
    [nan] if the system is empty almost surely. *)

(* ---- the Eq. (56) Lyapunov function ---- *)

val default_coeffs : t -> Lyapunov.coeffs

val w : t -> Lyapunov.coeffs -> state -> float
(** [W = Σ_V r^{dim V} (½E_V² + α E_V φ(H_V))] with
    [E_V = Σ_{V'⊆V} x_{V'}] and
    [H_V = ((1−1/q)/(1−μ̃/γ)) Σ_{V'⊄V} (K − dim V' + μ/γ) x_{V'}].
    @raise Invalid_argument when [γ ≤ μ̃] (outside the Eq. 56 regime). *)

val drift_w : t -> Lyapunov.coeffs -> state -> float
(** Exact generator drift [QW(x)] by row enumeration. *)

type scan_point = { state_desc : string; n : int; drift_value : float; drift_per_peer : float }

val scan_hyperplane_states : t -> Lyapunov.coeffs -> sizes:int list -> scan_point list
(** Drift at the coded one-club states: every peer of the same hyperplane
    type [V⁻], for each [V⁻] and size. *)
