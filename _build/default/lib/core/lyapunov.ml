module Pieceset = P2p_pieceset.Pieceset

type coeffs = { r : float; d : float; beta : float; alpha : float; p_const : float }

let lambda_star (p : Params.t) ~s =
  (* λ*_{H_S} = Σ_{C ⊄ S} λ_C (K − |C| + μ/γ). *)
  let rho = Params.mu_over_gamma p in
  Array.fold_left
    (fun acc (c, rate) ->
      if Pieceset.subset c s then acc
      else acc +. (rate *. (float_of_int (p.k - Pieceset.cardinal c) +. rho)))
    0.0 p.arrivals

let default_coeffs (p : Params.t) =
  let rho = Params.mu_over_gamma p in
  let gamma_le_mu = Float.is_finite p.gamma && p.gamma <= p.mu in
  let jump = if gamma_le_mu then float_of_int (p.k + 1) else (float_of_int p.k +. rho) /. (1.0 -. rho) in
  let d = 2.0 *. (jump +. 1.0) in
  let alpha = 0.9 in
  (* Lemma 12 needs β·jump² ≤ 1/α − 1; Lemma 13 (γ ≤ μ) only needs β small,
     and a larger β keeps max φ = 2d + 1/(2β) — hence n₀ — small. *)
  let beta =
    if gamma_le_mu then 0.1 else Float.min 0.1 ((1.0 /. alpha -. 1.0) /. (jump *. jump))
  in
  let r = 0.05 in
  (* p with λ_{E_C} − p (U_s + λ*_{H_C}) < 0 for all proper C (Eq. 44);
     keep p as small as the constraint allows so the constant-order drift
     terms (∝ p·max φ) do not push the negative-drift threshold n₀ out of
     numerically checkable range. *)
  let p_const =
    if not gamma_le_mu then 1.0
    else
      List.fold_left
        (fun acc s ->
          let inflow = Params.lambda_within p s in
          let drive = p.us +. lambda_star p ~s in
          if drive <= 0.0 then
            invalid_arg "Lyapunov.default_coeffs: some piece cannot enter the system"
          else Float.max acc (1.25 *. (inflow +. 0.1) /. drive))
        0.1
        (Pieceset.all_proper ~k:p.k)
  in
  { r; d; beta; alpha; p_const }

let phi c x =
  let edge = (2.0 *. c.d) +. (1.0 /. c.beta) in
  if x < 0.0 then invalid_arg "Lyapunov.phi: negative argument"
  else if x <= 2.0 *. c.d then (2.0 *. c.d) +. (1.0 /. (2.0 *. c.beta)) -. x
  else if x <= edge then c.beta /. 2.0 *. ((x -. edge) ** 2.0)
  else 0.0

let phi_slope_bound c x =
  let edge = (2.0 *. c.d) +. (1.0 /. c.beta) in
  if x <= 2.0 *. c.d then -1.0 else if x <= edge then c.beta *. (x -. edge) else 0.0

let e_c state ~c = State.count_subset_peers state c

let h_c (p : Params.t) state ~c =
  let rho = Params.mu_over_gamma p in
  let weighted =
    State.fold state ~init:0.0 ~f:(fun acc c' x ->
        if Pieceset.subset c' c then acc
        else acc +. (float_of_int x *. (float_of_int (p.k - Pieceset.cardinal c') +. rho)))
  in
  weighted /. (1.0 -. rho)

let h_prime_c (p : Params.t) state ~c =
  State.fold state ~init:0.0 ~f:(fun acc c' x ->
      if Pieceset.subset c' c then acc
      else acc +. (float_of_int x *. float_of_int (p.k + 1 - Pieceset.cardinal c')))

let gamma_le_mu (p : Params.t) = Float.is_finite p.gamma && p.gamma <= p.mu

let w (p : Params.t) coeffs state =
  if gamma_le_mu p then invalid_arg "Lyapunov.w: gamma <= mu; use w_prime";
  let full = Params.full_set p in
  let n = float_of_int (State.n state) in
  let include_full = not (Params.immediate_departure p) in
  List.fold_left
    (fun acc c ->
      let weight = coeffs.r ** float_of_int (Pieceset.cardinal c) in
      if Pieceset.equal c full then
        if include_full then acc +. (weight *. 0.5 *. n *. n) else acc
      else begin
        let ec = float_of_int (e_c state ~c) in
        let t_c = (0.5 *. ec *. ec) +. (coeffs.alpha *. ec *. phi coeffs (h_c p state ~c)) in
        acc +. (weight *. t_c)
      end)
    0.0
    (Pieceset.all ~k:p.k)

let w_prime (p : Params.t) coeffs state =
  if not (gamma_le_mu p) then invalid_arg "Lyapunov.w_prime: gamma > mu; use w";
  let full = Params.full_set p in
  let n = float_of_int (State.n state) in
  List.fold_left
    (fun acc c ->
      let weight = coeffs.r ** float_of_int (Pieceset.cardinal c) in
      if Pieceset.equal c full then acc +. (weight *. 0.5 *. n *. n)
      else begin
        let ec = float_of_int (e_c state ~c) in
        let t_c =
          (0.5 *. ec *. ec) +. (coeffs.p_const *. ec *. phi coeffs (h_prime_c p state ~c))
        in
        acc +. (weight *. t_c)
      end)
    0.0
    (Pieceset.all ~k:p.k)

let auto p coeffs state = if gamma_le_mu p then w_prime p coeffs state else w p coeffs state

let drift (p : Params.t) ~f state =
  let here = f state in
  List.fold_left
    (fun acc (transition, rate) ->
      let next = State.copy state in
      Rate.apply p next transition;
      acc +. (rate *. (f next -. here)))
    0.0
    (Rate.transitions p state)

let drift_w p coeffs state = drift p ~f:(auto p coeffs) state

let m_phi coeffs = (3.0 *. coeffs.d) +. (1.0 /. coeffs.beta)

let d_total (p : Params.t) state =
  (* aggregate rate of type changes and departures *)
  List.fold_left
    (fun acc (transition, rate) ->
      match transition with
      | Rate.Transfer _ | Rate.Seed_departure -> acc +. rate
      | Rate.Arrival _ -> acc)
    0.0
    (Rate.transitions p state)

let lw (p : Params.t) coeffs state =
  let full = Params.full_set p in
  let gamma_le = gamma_le_mu p in
  let mix = if gamma_le then coeffs.p_const else coeffs.alpha in
  let include_full = not (Params.immediate_departure p) in
  List.fold_left
    (fun acc c ->
      let weight = coeffs.r ** float_of_int (Pieceset.cardinal c) in
      if Pieceset.equal c full then
        if include_full then begin
          let n st = float_of_int (State.n st) in
          acc +. (weight *. n state *. drift p ~f:n state)
        end
        else acc
      else begin
        let e st = float_of_int (e_c st ~c) in
        let phi_h st =
          phi coeffs (if gamma_le then h_prime_c p st ~c else h_c p st ~c)
        in
        let ec = e state in
        let lt = (ec *. drift p ~f:e state) +. (mix *. ec *. drift p ~f:phi_h state) in
        acc +. (weight *. lt)
      end)
    0.0
    (Pieceset.all ~k:p.k)

type scan_point = {
  state_desc : string;
  n : int;
  drift_value : float;
  drift_per_peer : float;
}

let scan_class_one (p : Params.t) coeffs ~sizes =
  let types = Pieceset.all_proper ~k:p.k in
  List.concat_map
    (fun s ->
      List.map
        (fun size ->
          let state = State.of_counts [ (s, size) ] in
          let dv = drift_w p coeffs state in
          {
            state_desc = Printf.sprintf "all %d peers of type %s" size (Pieceset.to_string s);
            n = size;
            drift_value = dv;
            drift_per_peer = dv /. float_of_int size;
          })
        sizes)
    types

let scan_class_two (p : Params.t) coeffs ~rng ~size ~samples =
  let types = Array.of_list (Pieceset.all ~k:p.k) in
  let types =
    if Params.immediate_departure p then
      Array.of_list (Pieceset.all_proper ~k:p.k)
    else types
  in
  List.init samples (fun _ ->
      let pick () = types.(P2p_prng.Rng.int_below rng (Array.length types)) in
      let c1 = pick () in
      let c2 = pick () in
      let n1 = (size / 2) + P2p_prng.Rng.int_below rng (Int.max 1 (size / 4)) in
      let n2 = size - n1 in
      let state = State.of_counts [ (c1, n1); (c2, Int.max 1 n2) ] in
      let dv = drift_w p coeffs state in
      let n = State.n state in
      {
        state_desc =
          Printf.sprintf "%d of %s + %d of %s" n1 (Pieceset.to_string c1) (Int.max 1 n2)
            (Pieceset.to_string c2);
        n;
        drift_value = dv;
        drift_per_peer = dv /. float_of_int n;
      })
