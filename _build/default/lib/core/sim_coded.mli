(** Simulation of the network-coding swarm of Section VIII-B.

    Peers hold subspaces of [F_q^K] instead of piece sets: on contact, the
    uploader transmits a uniformly random linear combination of its coded
    pieces (so the coding vector is uniform over the uploader's subspace —
    including, with probability [q^{-dim}], the useless zero vector).  The
    fixed seed transmits a uniform random vector of [F_q^K].  A peer
    departs (after its dwell, or immediately when γ = ∞) once its subspace
    reaches full dimension.

    The [smart_exchange] flag implements Remark 16: peers exchange
    subspace descriptions, so whenever the uploader can help it sends a
    basis vector outside the downloader's subspace — every eligible
    contact is useful. *)

type config = {
  q : int;  (** field size (prime power ≤ 65536) *)
  k : int;  (** number of data pieces K *)
  us : float;
  mu : float;
  gamma : float;  (** [infinity] = immediate departure *)
  arrivals : (int * float) list;
      (** [(j, rate)]: peers arriving holding [j] independent uniform
          random coded pieces ([j = 0]: empty-handed).  Vectors are drawn
          uniformly from [F_q^K], so [j] pieces span a subspace of
          dimension ≤ j. *)
  smart_exchange : bool;
}

val of_gift : Stability.Coded.gift_params -> config
(** The paper's gift workload ([λ0] empty, [λ1] one random coded piece). *)

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  useful_transfers : int;
  useless_transfers : int;  (** contacts that transmitted a non-innovative vector *)
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  samples : (float * int) array;
  dim_histogram : int array;  (** final population by subspace dimension, length K+1 *)
  near_complete_fraction : float;
      (** time-average fraction of peers at dimension K−1 — the coded
          one-club witness *)
}

val run :
  ?sample_every:float ->
  ?max_events:int ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats

val run_seeded :
  ?sample_every:float -> ?max_events:int -> seed:int -> config -> horizon:float -> stats
