type mat = float array array
type vec = float array

let make ~rows ~cols v = Array.make_matrix rows cols v

let identity n =
  let m = make ~rows:n ~cols:n 0.0 in
  for i = 0 to n - 1 do
    m.(i).(i) <- 1.0
  done;
  m

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let transpose m =
  let rows, cols = dims m in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let mat_mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Linalg.mat_mul: dimension mismatch";
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let acc = ref 0.0 in
          for k = 0 to ca - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let mat_vec a x =
  let ra, ca = dims a in
  if ca <> Array.length x then invalid_arg "Linalg.mat_vec: dimension mismatch";
  Array.init ra (fun i ->
      let acc = ref 0.0 in
      for k = 0 to ca - 1 do
        acc := !acc +. (a.(i).(k) *. x.(k))
      done;
      !acc)

let elementwise f a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ra <> rb || ca <> cb then invalid_arg "Linalg: dimension mismatch";
  Array.init ra (fun i -> Array.init ca (fun j -> f a.(i).(j) b.(i).(j)))

let mat_add = elementwise ( +. )
let mat_sub = elementwise ( -. )
let scale c m = Array.map (Array.map (fun x -> c *. x)) m

let solve a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then invalid_arg "Linalg.solve: dimension mismatch";
  (* Work on copies; forward elimination with partial pivoting. *)
  let m = Array.map Array.copy a in
  let rhs = Array.copy b in
  for col = 0 to n - 1 do
    let pivot_row = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!pivot_row).(col) then pivot_row := r
    done;
    if Float.abs m.(!pivot_row).(col) < 1e-12 then failwith "Linalg.solve: singular matrix";
    if !pivot_row <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot_row);
      m.(!pivot_row) <- tmp;
      let tb = rhs.(col) in
      rhs.(col) <- rhs.(!pivot_row);
      rhs.(!pivot_row) <- tb
    end;
    for r = col + 1 to n - 1 do
      let factor = m.(r).(col) /. m.(col).(col) in
      if factor <> 0.0 then begin
        for c = col to n - 1 do
          m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
        done;
        rhs.(r) <- rhs.(r) -. (factor *. rhs.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref rhs.(row) in
    for c = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(c) *. x.(c))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let inverse a =
  let n = Array.length a in
  let cols =
    List.init n (fun j ->
        let e = Array.make n 0.0 in
        e.(j) <- 1.0;
        solve a e)
  in
  Array.init n (fun i -> Array.init n (fun j -> (List.nth cols j).(i)))

let vec_norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x
let vec_sub a b = Array.mapi (fun i v -> v -. b.(i)) a
let vec_add a b = Array.mapi (fun i v -> v +. b.(i)) a
let vec_scale c x = Array.map (fun v -> c *. v) x

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Linalg.dot: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
  !acc

let spectral_radius ?(iterations = 1000) ?(tol = 1e-12) m =
  let n = Array.length m in
  if n = 0 then 0.0
  else begin
    let x = ref (Array.make n 1.0) in
    let lambda = ref 0.0 in
    let continue = ref true in
    let iter = ref 0 in
    while !continue && !iter < iterations do
      incr iter;
      let y = mat_vec m !x in
      let norm = vec_norm_inf y in
      if norm <= 0.0 then begin
        lambda := 0.0;
        continue := false
      end
      else begin
        let y = vec_scale (1.0 /. norm) y in
        if Float.abs (norm -. !lambda) < tol *. Float.max 1.0 norm then continue := false;
        lambda := norm;
        x := y
      end
    done;
    !lambda
  end

let pp_vec fmt x =
  Format.fprintf fmt "[%a]"
    Format.(pp_print_array ~pp_sep:(fun f () -> pp_print_string f "; ") (fun f -> fprintf f "%.6g"))
    x

let pp_mat fmt m =
  Format.fprintf fmt "@[<v>%a@]" Format.(pp_print_array ~pp_sep:pp_print_cut pp_vec) m
