(** Ordinary least-squares line fit.

    The transience experiments classify a run as unstable when the peer
    count [N_t] grows linearly in [t] (Section VI shows
    [N_t >= N_o - 2B + (Δ - 2ε) t] on the divergence event).  We estimate
    the growth rate and its standard error by OLS over sampled
    [(t, N_t)] points. *)

type fit = {
  slope : float;
  intercept : float;
  slope_stderr : float;  (** standard error of the slope estimate *)
  r_squared : float;
  n : int;
}

val fit : (float * float) array -> fit
(** Least-squares fit of [y = intercept + slope * x].
    @raise Invalid_argument with fewer than 3 points or degenerate xs. *)

val fit_lists : xs:float list -> ys:float list -> fit

val slope_t_statistic : fit -> float
(** [slope / slope_stderr]; large positive values reject "no growth". *)

val pp : Format.formatter -> fit -> unit
