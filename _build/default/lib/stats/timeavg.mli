(** Time-weighted average of a piecewise-constant signal.

    The CTMC observables of the paper — number of peers in the system,
    one-club fraction, per-type counts — are piecewise-constant in
    simulation time.  Their stationary expectations ([E\[N\]] of
    Theorem 1(b)) are time averages, not per-event averages, so each sample
    must be weighted by how long the signal held that value. *)

type t

val create : ?t0:float -> unit -> t
(** Start observing at time [t0] (default [0.]). *)

val observe : t -> time:float -> value:float -> unit
(** [observe t ~time ~value] records that the signal takes [value] from
    [time] onward.  Times must be nondecreasing.
    @raise Invalid_argument on a time before the previous observation. *)

val close : t -> time:float -> unit
(** Account for the segment between the last observation and [time] without
    changing the current value. *)

val average : t -> float
(** Time-weighted mean over everything observed so far; [nan] if no time
    has elapsed. *)

val elapsed : t -> float
val current_value : t -> float
val reset : t -> time:float -> unit
(** Forget history; keep the current value and restart the clock at
    [time] — used to drop a warm-up transient. *)
