lib/stats/quantile.mli:
