lib/stats/regression.ml: Array Float Format List
