lib/stats/welford.ml: Float Format
