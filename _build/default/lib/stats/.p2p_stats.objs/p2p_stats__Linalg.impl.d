lib/stats/linalg.ml: Array Float Format List
