lib/stats/linalg.mli: Format
