lib/stats/batch_means.ml: Array Float Welford
