lib/stats/timeavg.mli:
