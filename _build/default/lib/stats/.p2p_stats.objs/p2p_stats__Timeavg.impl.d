lib/stats/timeavg.ml: Float Printf
