(** Small dense linear algebra over floats.

    Enough machinery for the multitype branching-process computations of
    Section VI (expected total progeny solves [(I - M) m = 1]) and the
    fluid-limit integrator: Gaussian elimination with partial pivoting,
    power iteration for the Perron eigenvalue, and basic matrix algebra.
    Matrices are [float array array], row-major, rectangular. *)

type mat = float array array
type vec = float array

val identity : int -> mat
val make : rows:int -> cols:int -> float -> mat
val dims : mat -> int * int
val transpose : mat -> mat
val mat_mul : mat -> mat -> mat
val mat_vec : mat -> vec -> vec
val mat_add : mat -> mat -> mat
val mat_sub : mat -> mat -> mat
val scale : float -> mat -> mat

val solve : mat -> vec -> vec
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. @raise Failure on a (numerically) singular matrix. *)

val inverse : mat -> mat
(** @raise Failure on a singular matrix. *)

val spectral_radius : ?iterations:int -> ?tol:float -> mat -> float
(** Largest-magnitude eigenvalue modulus of a nonnegative matrix by power
    iteration on a strictly positive start vector.  For the mean matrix of
    a multitype branching process this is the criticality parameter: the
    process is subcritical iff the result is [< 1]. *)

val vec_norm_inf : vec -> float
val vec_sub : vec -> vec -> vec
val vec_add : vec -> vec -> vec
val vec_scale : float -> vec -> vec
val dot : vec -> vec -> float

val pp_mat : Format.formatter -> mat -> unit
val pp_vec : Format.formatter -> vec -> unit
