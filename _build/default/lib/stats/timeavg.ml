type t = {
  mutable last_time : float;
  mutable value : float;
  mutable weighted_sum : float;
  mutable elapsed : float;
  mutable started : bool;
}

let create ?(t0 = 0.0) () =
  { last_time = t0; value = 0.0; weighted_sum = 0.0; elapsed = 0.0; started = false }

let advance t time =
  if time < t.last_time -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Timeavg.observe: time %g before previous %g" time t.last_time);
  let dt = Float.max 0.0 (time -. t.last_time) in
  if t.started then begin
    t.weighted_sum <- t.weighted_sum +. (t.value *. dt);
    t.elapsed <- t.elapsed +. dt
  end;
  t.last_time <- time

let observe t ~time ~value =
  advance t time;
  t.value <- value;
  t.started <- true

let close t ~time = advance t time
let average t = if t.elapsed <= 0.0 then nan else t.weighted_sum /. t.elapsed
let elapsed t = t.elapsed
let current_value t = t.value

let reset t ~time =
  t.weighted_sum <- 0.0;
  t.elapsed <- 0.0;
  t.last_time <- time
