type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 16 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.data 0 t.len in
    Array.sort Float.compare view;
    Array.blit view 0 t.data 0 t.len;
    t.sorted <- true
  end

let quantile t q =
  if t.len = 0 then invalid_arg "Quantile.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile.quantile: q out of [0,1]";
  ensure_sorted t;
  let pos = q *. float_of_int (t.len - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then t.data.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. t.data.(lo)) +. (frac *. t.data.(hi))
  end

let median t = quantile t 0.5

let to_sorted_array t =
  ensure_sorted t;
  Array.sub t.data 0 t.len
