(** Exact empirical quantiles from collected samples. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1], by linear interpolation between order
    statistics. @raise Invalid_argument when empty or [q] out of range. *)

val median : t -> float
val to_sorted_array : t -> float array
