(** Batch-means confidence intervals for steady-state simulation output.

    A single long trajectory's samples are autocorrelated, so the naive
    standard error of the mean is badly optimistic.  The classic remedy is
    to split the (post-warm-up) run into [b] contiguous batches: batch
    means are approximately independent once batches exceed the mixing
    time, so a t-interval over them is honest.  Used to put error bars on
    the time-average populations the experiments report. *)

type estimate = {
  mean : float;
  half_width : float;  (** 95% half width; [nan] with < 2 batches *)
  batches : int;
  batch_means : float array;
}

val of_samples : ?warmup_fraction:float -> ?batches:int -> (float * float) array -> estimate
(** [of_samples samples] treats [samples] as an equispaced [(t, value)]
    trace of a piecewise-constant signal, drops the first
    [warmup_fraction] (default 0.2), splits the rest into [batches]
    (default 16) contiguous batches, and returns the batch-means estimate
    of the steady-state mean with a 95% interval (normal critical value
    for ≥ 30 batches, Student-t otherwise via a small built-in table).
    @raise Invalid_argument with fewer than [2 * batches] usable samples
    or out-of-range arguments. *)

val of_int_samples : ?warmup_fraction:float -> ?batches:int -> (float * int) array -> estimate

val contains : estimate -> float -> bool
(** Whether a value lies inside the interval. *)
