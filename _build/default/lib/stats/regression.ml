type fit = {
  slope : float;
  intercept : float;
  slope_stderr : float;
  r_squared : float;
  n : int;
}

let fit points =
  let n = Array.length points in
  if n < 3 then invalid_arg "Regression.fit: need at least 3 points";
  let nf = float_of_int n in
  let sx = ref 0.0 and sy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    points;
  let mx = !sx /. nf and my = !sy /. nf in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx and dy = y -. my in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    points;
  if !sxx <= 0.0 then invalid_arg "Regression.fit: degenerate x values";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res = Float.max 0.0 (!syy -. (slope *. !sxy)) in
  let r_squared = if !syy <= 0.0 then 1.0 else 1.0 -. (ss_res /. !syy) in
  let residual_var = ss_res /. float_of_int (n - 2) in
  let slope_stderr = sqrt (residual_var /. !sxx) in
  { slope; intercept; slope_stderr; r_squared; n }

let fit_lists ~xs ~ys =
  let nx = List.length xs and ny = List.length ys in
  if nx <> ny then invalid_arg "Regression.fit_lists: length mismatch";
  fit (Array.of_list (List.combine xs ys |> List.map (fun (x, y) -> (x, y))))

let slope_t_statistic f = if f.slope_stderr > 0.0 then f.slope /. f.slope_stderr else infinity

let pp fmt f =
  Format.fprintf fmt "slope=%.6g (se %.3g) intercept=%.6g R2=%.4f n=%d" f.slope f.slope_stderr
    f.intercept f.r_squared f.n
