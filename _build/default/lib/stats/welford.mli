(** Online mean and variance (Welford's algorithm).

    Numerically stable single-pass moments; used by every experiment to
    summarise per-replication measurements. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
val std_error : t -> float
(** Standard error of the mean. *)

val min_value : t -> float
val max_value : t -> float

val confidence_interval : t -> z:float -> float * float
(** [confidence_interval t ~z] is [mean ± z * std_error]; use [z = 1.96]
    for a 95% normal interval. *)

val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel update). *)

val pp : Format.formatter -> t -> unit
