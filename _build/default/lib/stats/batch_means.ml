type estimate = {
  mean : float;
  half_width : float;
  batches : int;
  batch_means : float array;
}

(* two-sided 97.5% Student-t critical values for small degrees of freedom *)
let t_critical df =
  let table =
    [| nan; 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
       2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086; 2.080;
       2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045 |]
  in
  if df < 1 then nan else if df < Array.length table then table.(df) else 1.96

let of_samples ?(warmup_fraction = 0.2) ?(batches = 16) samples =
  if warmup_fraction < 0.0 || warmup_fraction >= 1.0 then
    invalid_arg "Batch_means.of_samples: warmup_fraction out of [0,1)";
  if batches < 2 then invalid_arg "Batch_means.of_samples: need at least 2 batches";
  let n = Array.length samples in
  let start = int_of_float (float_of_int n *. warmup_fraction) in
  let usable = n - start in
  if usable < 2 * batches then
    invalid_arg "Batch_means.of_samples: too few samples for the requested batches";
  let per_batch = usable / batches in
  let batch_means =
    Array.init batches (fun b ->
        let lo = start + (b * per_batch) in
        let acc = ref 0.0 in
        for i = lo to lo + per_batch - 1 do
          acc := !acc +. snd samples.(i)
        done;
        !acc /. float_of_int per_batch)
  in
  let w = Welford.create () in
  Array.iter (Welford.add w) batch_means;
  let mean = Welford.mean w in
  let half_width =
    if batches < 2 then nan else t_critical (batches - 1) *. Welford.std_error w
  in
  { mean; half_width; batches; batch_means }

let of_int_samples ?warmup_fraction ?batches samples =
  of_samples ?warmup_fraction ?batches
    (Array.map (fun (t, v) -> (t, float_of_int v)) samples)

let contains e value =
  Float.abs (value -. e.mean) <= e.half_width
