type vec = int array

let zero_vec n = Array.make n 0
let vec_equal a b = a = b
let is_zero_vec v = Array.for_all (fun x -> x = 0) v

let vec_add (f : Field.t) a b =
  if Array.length a <> Array.length b then invalid_arg "Mat.vec_add: length mismatch";
  Array.init (Array.length a) (fun i -> f.add a.(i) b.(i))

let vec_scale (f : Field.t) c v = Array.map (fun x -> f.mul c x) v

let vec_axpy (f : Field.t) c x y =
  if Array.length x <> Array.length y then invalid_arg "Mat.vec_axpy: length mismatch";
  Array.init (Array.length x) (fun i -> f.add (f.mul c x.(i)) y.(i))

let random_vec (f : Field.t) draw n = Array.init n (fun _ -> draw f.q)

let pivot_column v =
  let n = Array.length v in
  let rec go i = if i >= n then None else if v.(i) <> 0 then Some i else go (i + 1) in
  go 0

let row_reduce (f : Field.t) rows =
  (* Gauss-Jordan over the field; returns normalised nonzero rows sorted by
     pivot column. *)
  let work = Array.map Array.copy rows in
  let m = Array.length work in
  if m = 0 then [||]
  else begin
    let n = Array.length work.(0) in
    let rank = ref 0 in
    for col = 0 to n - 1 do
      (* Find a pivot row at or below !rank with a nonzero entry in col. *)
      let pivot = ref (-1) in
      for r = !rank to m - 1 do
        if !pivot < 0 && work.(r).(col) <> 0 then pivot := r
      done;
      if !pivot >= 0 then begin
        let tmp = work.(!rank) in
        work.(!rank) <- work.(!pivot);
        work.(!pivot) <- tmp;
        (* Normalise the pivot row. *)
        let inv = f.inv work.(!rank).(col) in
        work.(!rank) <- vec_scale f inv work.(!rank);
        (* Eliminate the column everywhere else. *)
        for r = 0 to m - 1 do
          if r <> !rank && work.(r).(col) <> 0 then
            work.(r) <- vec_axpy f (f.neg work.(r).(col)) work.(!rank) work.(r)
        done;
        incr rank
      end
    done;
    Array.sub work 0 !rank
  end

let rank f rows = Array.length (row_reduce f rows)

let reduce_against (f : Field.t) ~basis v =
  Array.fold_left
    (fun acc row ->
      match pivot_column row with
      | None -> acc
      | Some col -> if acc.(col) = 0 then acc else vec_axpy f (f.neg acc.(col)) row acc)
    (Array.copy v) basis

let in_row_space f ~basis v = is_zero_vec (reduce_against f ~basis v)
