lib/gf/mat.mli: Field
