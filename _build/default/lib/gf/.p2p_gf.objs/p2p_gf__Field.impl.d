lib/gf/field.ml: Array Printf
