lib/gf/mat.ml: Array Field
