lib/gf/field.mli:
