(** The Autonomous Branching System (ABS) of Section VI.

    The transience proof dominates piece-one uploads by a two-type
    branching process: type (b) "infected" particles (peers that got the
    rare piece while still young) and type (f) "former one-club" particles
    (one-club peers that received the rare piece and became seeds).  For a
    coupling slack parameter ξ ∈ (0, 1):

    - a (b) particle spawns (b)-children at rate ξμ and (f)-children at
      rate μ for a lifetime of [(K−1)/(μ(1−ξ)) + 1/γ] on average;
    - an (f) particle does the same for an Exp(γ) lifetime;
    - a gifted root of initial collection [C] lives
      [(K−|C|)/(μ(1−ξ)) + 1/γ] on average.

    This yields the mean offspring matrix of Eq. (VI), the finiteness
    condition (6), the closed-form progeny means [m_b, m_f, m_g(C)] and the
    asymptotic upload rate of the dominating compound Poisson process
    [D̂̂].  All quantities support γ = ∞ (peers leave on completion, the
    [μ/γ] terms vanish). *)

type params = {
  k : int;  (** number of pieces K >= 1 *)
  mu : float;  (** peer contact rate μ > 0 *)
  gamma : float;  (** seed departure rate; [infinity] = leave at once *)
  xi : float;  (** coupling slack, 0 <= ξ < 1 (ξ = 0 gives the limits) *)
}

val validate : params -> unit
(** @raise Invalid_argument on out-of-range parameters or μ >= γ. *)

val mu_over_gamma : params -> float
(** μ/γ, with the γ = ∞ convention giving 0. *)

val finiteness_lhs : params -> float
(** Left side of condition (6): [ξ((K−1)/(1−ξ) + μ/γ) + μ/γ]; the progeny
    means are finite iff this is < 1. *)

val is_finite_regime : params -> bool

val mean_matrix : params -> P2p_stats.Linalg.mat
(** The 2×2 mean offspring matrix, rows/cols ordered (b), (f). *)

val m_b : params -> float
(** One plus the mean number of descendants of a (b) particle (closed
    form). @raise Failure outside the finite regime. *)

val m_f : params -> float
(** Same for an (f) particle. *)

val m_g : params -> c_size:int -> float
(** Mean total descendants of a gifted root that arrived holding [c_size]
    pieces (the root itself not counted): [m_g(C)] of the paper. *)

val m_b_limit : params -> float
(** ξ → 0 limit: [K / (1 − μ/γ)]. *)

val m_f_limit : params -> float
(** ξ → 0 limit: [1 / (1 − μ/γ)]. *)

val m_g_limit : params -> c_size:int -> float
(** ξ → 0 limit: [(K − |C| + μ/γ) / (1 − μ/γ)]. *)

val dhat_rate : params -> us:float -> gifted:(int * float) list -> float
(** Asymptotic mean rate of the dominating download-count process:
    [U_s (ξ m_b + m_f) + Σ_C λ_C m_g(C)], where [gifted] lists
    [(|C|, λ_C)] for each arriving type containing the rare piece. *)

val dhat_rate_limit : us:float -> k:int -> mu_over_gamma:float -> gifted:(int * float) list -> float
(** The ξ → 0 limit, i.e. the right-hand side of conditions (2)/(3):
    [(U_s + Σ_C λ_C (K − |C| + μ/γ)) / (1 − μ/γ)]. *)

val to_galton_watson : params -> Galton_watson.t
(** Package the mean matrix for the generic machinery (progeny
    cross-checks, extinction probabilities). *)
