type params = { k : int; mu : float; gamma : float; xi : float }

let validate p =
  if p.k < 1 then invalid_arg "Abs: need K >= 1";
  if p.mu <= 0.0 then invalid_arg "Abs: need mu > 0";
  if p.gamma <= p.mu then invalid_arg "Abs: the ABS analysis needs mu < gamma";
  if p.xi < 0.0 || p.xi >= 1.0 then invalid_arg "Abs: need 0 <= xi < 1"

let mu_over_gamma p = if Float.is_finite p.gamma then p.mu /. p.gamma else 0.0

(* The recurring quantity (K-1)/(1-xi) + mu/gamma: mean number of
   (f)-offspring of a (b) particle. *)
let b_factor p = (float_of_int (p.k - 1) /. (1.0 -. p.xi)) +. mu_over_gamma p

let finiteness_lhs p =
  validate p;
  (p.xi *. b_factor p) +. mu_over_gamma p

let is_finite_regime p = finiteness_lhs p < 1.0

let mean_matrix p =
  validate p;
  let bf = b_factor p in
  let mg = mu_over_gamma p in
  [| [| p.xi *. bf; bf |]; [| p.xi *. mg; mg |] |]

let check_finite p =
  if not (is_finite_regime p) then
    failwith "Abs: progeny means are infinite (condition (6) violated)"

let m_b p =
  check_finite p;
  1.0 +. ((1.0 +. p.xi) /. (1.0 -. finiteness_lhs p) *. b_factor p)

let m_f p =
  check_finite p;
  1.0 +. ((1.0 +. p.xi) /. (1.0 -. finiteness_lhs p) *. mu_over_gamma p)

let m_g p ~c_size =
  check_finite p;
  if c_size < 0 || c_size > p.k then invalid_arg "Abs.m_g: bad collection size";
  let lifetime_factor = (float_of_int (p.k - c_size) /. (1.0 -. p.xi)) +. mu_over_gamma p in
  lifetime_factor *. ((p.xi *. m_b p) +. m_f p)

let m_b_limit p =
  validate p;
  float_of_int p.k /. (1.0 -. mu_over_gamma p)

let m_f_limit p =
  validate p;
  1.0 /. (1.0 -. mu_over_gamma p)

let m_g_limit p ~c_size =
  validate p;
  if c_size < 0 || c_size > p.k then invalid_arg "Abs.m_g_limit: bad collection size";
  (float_of_int (p.k - c_size) +. mu_over_gamma p) /. (1.0 -. mu_over_gamma p)

let dhat_rate p ~us ~gifted =
  check_finite p;
  let seed_part = us *. ((p.xi *. m_b p) +. m_f p) in
  List.fold_left
    (fun acc (c_size, lambda) -> acc +. (lambda *. m_g p ~c_size))
    seed_part gifted

let dhat_rate_limit ~us ~k ~mu_over_gamma ~gifted =
  if mu_over_gamma < 0.0 || mu_over_gamma >= 1.0 then
    invalid_arg "Abs.dhat_rate_limit: need 0 <= mu/gamma < 1";
  let numerator =
    List.fold_left
      (fun acc (c_size, lambda) -> acc +. (lambda *. (float_of_int (k - c_size) +. mu_over_gamma)))
      us gifted
  in
  numerator /. (1.0 -. mu_over_gamma)

let to_galton_watson p = Galton_watson.create (mean_matrix p)
