module Linalg = P2p_stats.Linalg
module Dist = P2p_prng.Dist

type t = { mean_matrix : Linalg.mat }

let create m =
  let rows, cols = Linalg.dims m in
  if rows <> cols then invalid_arg "Galton_watson.create: matrix must be square";
  Array.iter
    (Array.iter (fun v ->
         if v < 0.0 || not (Float.is_finite v) then
           invalid_arg "Galton_watson.create: entries must be finite and nonnegative"))
    m;
  { mean_matrix = m }

let num_types t = Array.length t.mean_matrix
let criticality t = Linalg.spectral_radius t.mean_matrix
let is_subcritical t = criticality t < 1.0

let expected_progeny t =
  if not (is_subcritical t) then
    failwith "Galton_watson.expected_progeny: supercritical or critical process";
  let n = num_types t in
  let i_minus_m = Linalg.mat_sub (Linalg.identity n) t.mean_matrix in
  let ones = Array.make n 1.0 in
  Linalg.solve i_minus_m ones

let extinction_probability ?(iterations = 10_000) ?(tol = 1e-13) t =
  let n = num_types t in
  let q = ref (Array.make n 0.0) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < iterations do
    incr iter;
    let next =
      Array.init n (fun i ->
          let exponent = ref 0.0 in
          for j = 0 to n - 1 do
            exponent := !exponent +. (t.mean_matrix.(i).(j) *. (!q.(j) -. 1.0))
          done;
          exp !exponent)
    in
    if Linalg.vec_norm_inf (Linalg.vec_sub next !q) < tol then converged := true;
    q := next
  done;
  !q

type progeny_sample = { total : int; truncated : bool }

let simulate_progeny ~rng t ~root ~cap =
  let n = num_types t in
  if root < 0 || root >= n then invalid_arg "Galton_watson.simulate_progeny: bad root type";
  (* Frontier of live particles per type; process one particle at a time. *)
  let frontier = Array.make n 0 in
  frontier.(root) <- 1;
  let alive = ref 1 in
  let total = ref 0 in
  let truncated = ref false in
  while !alive > 0 && not !truncated do
    (* Take a particle of the lowest-numbered populated type. *)
    let kind = ref 0 in
    while frontier.(!kind) = 0 do
      incr kind
    done;
    frontier.(!kind) <- frontier.(!kind) - 1;
    decr alive;
    incr total;
    if !total >= cap then truncated := true
    else
      for j = 0 to n - 1 do
        let mean = t.mean_matrix.(!kind).(j) in
        if mean > 0.0 then begin
          let kids = Dist.poisson rng ~mean in
          frontier.(j) <- frontier.(j) + kids;
          alive := !alive + kids
        end
      done
  done;
  { total = !total; truncated = !truncated }

let mean_progeny_monte_carlo ~rng t ~root ~replications ~cap =
  let acc = P2p_stats.Welford.create () in
  for _ = 1 to replications do
    let sample = simulate_progeny ~rng t ~root ~cap in
    P2p_stats.Welford.add acc (float_of_int sample.total)
  done;
  acc
