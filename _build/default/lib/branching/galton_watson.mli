(** Multitype Galton–Watson branching processes.

    The transience proof of Section VI couples the uploads of the rare
    piece to an autonomous branching system whose particles are "infected"
    (group b) and "former one-club" (group f) peers.  This module provides
    the generic machinery: given the mean offspring matrix [M] (entry
    [(i,j)] = expected type-[j] children of a type-[i] particle),

    - criticality: the process dies out iff the spectral radius of [M] is
      [<= 1] (subcritical/critical);
    - expected total progeny: the minimal nonnegative solution of
      [m = 1 + M m], i.e. [(I − M) m = 1] when subcritical — the system the
      paper solves in closed form for its 2×2 rank-one matrix;
    - extinction probabilities via fixed-point iteration on the offspring
      generating function (for Poisson offspring counts, which is what the
      ABS produces);
    - Monte-Carlo simulation of total progeny for cross-checking. *)

type t = { mean_matrix : P2p_stats.Linalg.mat }

val create : P2p_stats.Linalg.mat -> t
(** @raise Invalid_argument unless square with nonnegative entries. *)

val num_types : t -> int
val criticality : t -> float
(** Spectral radius of the mean matrix. *)

val is_subcritical : t -> bool

val expected_progeny : t -> P2p_stats.Linalg.vec
(** [expected_progeny t] is the vector [m] with [m_i] = 1 + expected total
    number of descendants of a single type-[i] root — the minimal solution
    of [m = 1 + M m]. @raise Failure when not subcritical. *)

val extinction_probability :
  ?iterations:int -> ?tol:float -> t -> P2p_stats.Linalg.vec
(** Extinction probabilities assuming each particle's type-[j] offspring
    count is Poisson with mean [M(i,j)], independent across [j]: iterate
    [q ← f(q)] with [f_i(q) = exp(Σ_j M(i,j)(q_j − 1))] from [q = 0]. *)

type progeny_sample = { total : int; truncated : bool }

val simulate_progeny :
  rng:P2p_prng.Rng.t -> t -> root:int -> cap:int -> progeny_sample
(** Simulate one tree with Poisson offspring; stop (and mark [truncated])
    if the population of dead+alive particles reaches [cap]. *)

val mean_progeny_monte_carlo :
  rng:P2p_prng.Rng.t -> t -> root:int -> replications:int -> cap:int -> P2p_stats.Welford.t
(** Monte-Carlo estimate of total progeny from a type-[root] root;
    truncated trees contribute [cap] (biasing low — callers should check
    the truncation rate). *)
