lib/branching/abs.mli: Galton_watson P2p_stats
