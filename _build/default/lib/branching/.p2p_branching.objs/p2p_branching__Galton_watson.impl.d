lib/branching/galton_watson.ml: Array Float P2p_prng P2p_stats
