lib/branching/abs.ml: Float Galton_watson List
