lib/branching/galton_watson.mli: P2p_prng P2p_stats
