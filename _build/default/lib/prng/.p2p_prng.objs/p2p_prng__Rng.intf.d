lib/prng/rng.mli: Format
