lib/prng/dist.ml: Array Float Hashtbl Rng
