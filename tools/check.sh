#!/bin/sh
# Tier-1 gate: full build + full test run, under a wall-clock budget.
#
#   tools/check.sh                      # default 900 s budget
#   CHECK_BUDGET_SECONDS=300 tools/check.sh
#
# Exits non-zero if the build fails, any test fails, or the budget is
# exceeded (timeout exits 124).  For a fast edit loop use the quick
# alias instead: dune build @quick
set -eu

cd "$(dirname "$0")/.."

BUDGET="${CHECK_BUDGET_SECONDS:-900}"

echo "== tier-1 check (budget ${BUDGET}s) =="
timeout "$BUDGET" sh -c 'dune build && dune runtest'
echo "== tier-1 check OK =="
