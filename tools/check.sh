#!/bin/sh
# Tier-1 gate: full build + full test run, under a wall-clock budget.
#
#   tools/check.sh                      # default 900 s budget
#   CHECK_BUDGET_SECONDS=300 tools/check.sh
#
# Exits non-zero if the build fails, any test fails, or the budget is
# exceeded.  The test phase runs suite by suite against the remaining
# budget, so a hang or a blown budget names the suite that ate the time
# instead of a bare `timeout` exit 124.  For a fast edit loop use the
# quick alias instead: dune build @quick
set -eu

cd "$(dirname "$0")/.."

BUDGET="${CHECK_BUDGET_SECONDS:-900}"
START=$(date +%s)

remaining() {
  echo $((BUDGET - ($(date +%s) - START)))
}

echo "== tier-1 check (budget ${BUDGET}s) =="

left=$(remaining)
status=0
timeout "$left" dune build || status=$?
if [ "$status" -ne 0 ]; then
  if [ "$status" -eq 124 ]; then
    echo "FAIL: 'dune build' exceeded the remaining budget (${left}s)" >&2
  else
    echo "FAIL: 'dune build' exited $status" >&2
  fi
  exit "$status"
fi

# Run each test executable separately so a timeout or a failure is
# attributed to a suite by name.
log=$(mktemp)
trap 'rm -f "$log"' EXIT
fail=""
for exe in _build/default/test/test_*.exe; do
  name=$(basename "$exe" .exe)
  left=$(remaining)
  if [ "$left" -le 0 ]; then
    echo "FAIL: budget exhausted before test suite $name (and everything after it)" >&2
    exit 124
  fi
  status=0
  timeout "$left" "$exe" -c >"$log" 2>&1 || status=$?
  if [ "$status" -eq 124 ]; then
    echo "FAIL: test suite $name timed out with ${left}s left of the ${BUDGET}s budget" >&2
    exit 124
  elif [ "$status" -ne 0 ]; then
    echo "FAIL: test suite $name exited $status; last lines of its output:" >&2
    tail -n 25 "$log" >&2
    fail="$fail $name"
  fi
done

if [ -n "$fail" ]; then
  echo "FAIL: failing suites:$fail" >&2
  exit 1
fi

echo "== tier-1 check OK =="
