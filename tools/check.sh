#!/bin/sh
# Tier-1 gate: full build + full test run, under a wall-clock budget.
#
#   tools/check.sh                      # default 900 s budget
#   CHECK_BUDGET_SECONDS=300 tools/check.sh
#
# Exits non-zero if the build fails, any test fails, or the budget is
# exceeded.  The test phase runs suite by suite against the remaining
# budget, so a hang or a blown budget names the suite that ate the time
# instead of a bare `timeout` exit 124.  For a fast edit loop use the
# quick alias instead: dune build @quick
set -eu

cd "$(dirname "$0")/.."

BUDGET="${CHECK_BUDGET_SECONDS:-900}"
START=$(date +%s)

remaining() {
  echo $((BUDGET - ($(date +%s) - START)))
}

echo "== tier-1 check (budget ${BUDGET}s) =="

left=$(remaining)
status=0
timeout "$left" dune build || status=$?
if [ "$status" -ne 0 ]; then
  if [ "$status" -eq 124 ]; then
    echo "FAIL: 'dune build' exceeded the remaining budget (${left}s)" >&2
  else
    echo "FAIL: 'dune build' exited $status" >&2
  fi
  exit "$status"
fi

# Run each test executable separately so a timeout or a failure is
# attributed to a suite by name.
log=$(mktemp)
trap 'rm -f "$log"' EXIT
fail=""
for exe in _build/default/test/test_*.exe; do
  name=$(basename "$exe" .exe)
  left=$(remaining)
  if [ "$left" -le 0 ]; then
    echo "FAIL: budget exhausted before test suite $name (and everything after it)" >&2
    exit 124
  fi
  status=0
  timeout "$left" "$exe" -c >"$log" 2>&1 || status=$?
  if [ "$status" -eq 124 ]; then
    echo "FAIL: test suite $name timed out with ${left}s left of the ${BUDGET}s budget" >&2
    exit 124
  elif [ "$status" -ne 0 ]; then
    echo "FAIL: test suite $name exited $status; last lines of its output:" >&2
    tail -n 25 "$log" >&2
    fail="$fail $name"
  fi
done

if [ -n "$fail" ]; then
  echo "FAIL: failing suites:$fail" >&2
  exit 1
fi

# Optional bench smoke: CHECK_BENCH=1 also runs the quick perf baseline
# (bench-json-quick) and a traced single run, proving the telemetry
# plumbing end to end.  Artifacts land in ${CHECK_BENCH_DIR:-/tmp}.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
  out="${CHECK_BENCH_DIR:-/tmp}"
  mkdir -p "$out"
  left=$(remaining)
  if [ "$left" -le 0 ]; then
    echo "FAIL: budget exhausted before the bench smoke phase" >&2
    exit 124
  fi
  echo "== bench smoke (into $out) =="
  ( cd "$out" && timeout "$left" "$OLDPWD/_build/default/bench/main.exe" bench-json-quick ) || {
    echo "FAIL: bench-json-quick exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe simulate -k 3 --us 0.3 --gamma 1.5 -t 200 \
    --probe-interval 2 --metrics-out "$out/sample_probe.jsonl" \
    --trace "$out/sample_trace.json" >/dev/null || {
    echo "FAIL: traced simulate exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe report "$out/sample_probe.jsonl" >/dev/null || {
    echo "FAIL: p2psim report exited non-zero" >&2; exit 1; }
  # The coded swarm shares the same engine and flag families: prove its
  # telemetry plumbing end to end too.
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe coded --sim -k 6 -f 0.3 -t 150 \
    --probe-interval 5 --trace "$out/coded_trace.jsonl" >/dev/null || {
    echo "FAIL: traced coded simulate exited non-zero" >&2; exit 1; }
  # The fluid backend at headline scale: a million-peer flash crowd
  # through the CLI with probes on, round-tripped through `report`, and
  # a hybrid run that actually crosses its thresholds.
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe fluid -k 8 --us 1 --gamma 2 \
    --arrive none=100 --init none=1e6 -t 100 \
    --metrics-out "$out/fluid_probe.jsonl" >/dev/null || {
    echo "FAIL: million-peer fluid run exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe report "$out/fluid_probe.jsonl" >/dev/null || {
    echo "FAIL: p2psim report on fluid probes exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe fluid -k 2 --us 50 --gamma inf \
    --arrive none=40 -t 50 --hybrid --switch-up 95 --switch-down 80 --seed 7 \
    >/dev/null || {
    echo "FAIL: hybrid fluid run exited non-zero" >&2; exit 1; }
  # Regression gate: the fresh quick-bench events/s (all four simulators)
  # plus the fluid stepper's steps/s and million-peer wall clock must
  # stay within bounds of the committed BENCH_PR6.json baseline (skips
  # the ratio checks when the baseline is absent).
  left=$(remaining)
  BENCH_GATE_BASELINE="${BENCH_GATE_BASELINE:-BENCH_PR6.json}" \
  BENCH_GATE_NEW="${BENCH_GATE_NEW:-$out/BENCH_smoke.json}" \
  timeout "$left" _build/default/bench/main.exe bench-gate || {
    echo "FAIL: bench-gate reported a throughput regression" >&2; exit 1; }
  echo "== bench smoke OK =="
fi

echo "== tier-1 check OK =="
