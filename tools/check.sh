#!/bin/sh
# Tier-1 gate: full build + full test run, under a wall-clock budget.
#
#   tools/check.sh                      # default 900 s budget
#   CHECK_BUDGET_SECONDS=300 tools/check.sh
#
# Exits non-zero if the build fails, any test fails, or the budget is
# exceeded.  The test phase runs suite by suite against the remaining
# budget, so a hang or a blown budget names the suite that ate the time
# instead of a bare `timeout` exit 124.  For a fast edit loop use the
# quick alias instead: dune build @quick
set -eu

cd "$(dirname "$0")/.."

BUDGET="${CHECK_BUDGET_SECONDS:-900}"
START=$(date +%s)

remaining() {
  echo $((BUDGET - ($(date +%s) - START)))
}

echo "== tier-1 check (budget ${BUDGET}s) =="

left=$(remaining)
status=0
timeout "$left" dune build || status=$?
if [ "$status" -ne 0 ]; then
  if [ "$status" -eq 124 ]; then
    echo "FAIL: 'dune build' exceeded the remaining budget (${left}s)" >&2
  else
    echo "FAIL: 'dune build' exited $status" >&2
  fi
  exit "$status"
fi

# Run each test executable separately so a timeout or a failure is
# attributed to a suite by name.  CHECK_TESTS=0 skips the loop for jobs
# that only want a smoke phase below (the tier-1 gate always runs it).
log=$(mktemp)
trap 'rm -f "$log"' EXIT
fail=""
if [ "${CHECK_TESTS:-1}" != "1" ]; then
  echo "== test suites skipped (CHECK_TESTS=0) =="
else
for exe in _build/default/test/test_*.exe; do
  name=$(basename "$exe" .exe)
  left=$(remaining)
  if [ "$left" -le 0 ]; then
    echo "FAIL: budget exhausted before test suite $name (and everything after it)" >&2
    exit 124
  fi
  status=0
  timeout "$left" "$exe" -c >"$log" 2>&1 || status=$?
  if [ "$status" -eq 124 ]; then
    echo "FAIL: test suite $name timed out with ${left}s left of the ${BUDGET}s budget" >&2
    exit 124
  elif [ "$status" -ne 0 ]; then
    echo "FAIL: test suite $name exited $status; last lines of its output:" >&2
    tail -n 25 "$log" >&2
    fail="$fail $name"
  fi
done
fi

if [ -n "$fail" ]; then
  echo "FAIL: failing suites:$fail" >&2
  exit 1
fi

# Optional bench smoke: CHECK_BENCH=1 also runs the quick perf baseline
# (bench-json-quick) and a traced single run, proving the telemetry
# plumbing end to end.  Artifacts — including BENCH_smoke.json, which is
# deliberately NOT a committed file — land under
# ${CHECK_BENCH_DIR:-_build/bench-smoke}, so a bench run never dirties
# the working tree.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
  out="${CHECK_BENCH_DIR:-_build/bench-smoke}"
  mkdir -p "$out"
  left=$(remaining)
  if [ "$left" -le 0 ]; then
    echo "FAIL: budget exhausted before the bench smoke phase" >&2
    exit 124
  fi
  echo "== bench smoke (into $out) =="
  ( cd "$out" && timeout "$left" "$OLDPWD/_build/default/bench/main.exe" bench-json-quick ) || {
    echo "FAIL: bench-json-quick exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe simulate -k 3 --us 0.3 --gamma 1.5 -t 200 \
    --probe-interval 2 --metrics-out "$out/sample_probe.jsonl" \
    --trace "$out/sample_trace.json" >/dev/null || {
    echo "FAIL: traced simulate exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe report "$out/sample_probe.jsonl" >/dev/null || {
    echo "FAIL: p2psim report exited non-zero" >&2; exit 1; }
  # The coded swarm shares the same engine and flag families: prove its
  # telemetry plumbing end to end too.
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe coded --sim -k 6 -f 0.3 -t 150 \
    --probe-interval 5 --trace "$out/coded_trace.jsonl" >/dev/null || {
    echo "FAIL: traced coded simulate exited non-zero" >&2; exit 1; }
  # The fluid backend at headline scale: a million-peer flash crowd
  # through the CLI with probes on, round-tripped through `report`, and
  # a hybrid run that actually crosses its thresholds.
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe fluid -k 8 --us 1 --gamma 2 \
    --arrive none=100 --init none=1e6 -t 100 \
    --metrics-out "$out/fluid_probe.jsonl" >/dev/null || {
    echo "FAIL: million-peer fluid run exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe report "$out/fluid_probe.jsonl" >/dev/null || {
    echo "FAIL: p2psim report on fluid probes exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" _build/default/bin/p2psim.exe fluid -k 2 --us 50 --gamma inf \
    --arrive none=40 -t 50 --hybrid --switch-up 95 --switch-down 80 --seed 7 \
    >/dev/null || {
    echo "FAIL: hybrid fluid run exited non-zero" >&2; exit 1; }
  # Regression gate: the fresh quick-bench events/s (all four simulators)
  # plus the fluid stepper's steps/s and million-peer wall clock must
  # stay within bounds of the committed BENCH_PR9.json baseline (skips
  # the ratio checks when the baseline is absent).
  left=$(remaining)
  BENCH_GATE_BASELINE="${BENCH_GATE_BASELINE:-BENCH_PR9.json}" \
  BENCH_GATE_NEW="${BENCH_GATE_NEW:-$out/BENCH_smoke.json}" \
  timeout "$left" _build/default/bench/main.exe bench-gate || {
    echo "FAIL: bench-gate reported a throughput regression" >&2; exit 1; }
  echo "== bench smoke OK =="
fi

# Optional campaign smoke: CHECK_CAMPAIGN=1 proves the crash-safe sweep
# layer end to end — run a small campaign, kill a second copy mid-flight,
# tear the last record's bytes as SIGKILL would, resume, and require the
# merged store to be byte-identical to the uninterrupted run.
if [ "${CHECK_CAMPAIGN:-0}" = "1" ]; then
  out="${CHECK_CAMPAIGN_DIR:-/tmp/p2p_campaign_smoke}"
  rm -rf "$out"
  mkdir -p "$out"
  echo "== campaign smoke (into $out) =="
  cat >"$out/spec.json" <<'EOF'
{"schema":"p2p-campaign-spec","version":1,"name":"ci-smoke","hypothesis":"H-CI: the crash-safe store survives a mid-flight kill and a torn write","k":2,"mu":1.0,"gamma":"inf","horizon":40.0,"reps":1,"master_seed":11,"policy":"random","mode":{"type":"grid","lambda":{"lo":0.3,"hi":2.7,"steps":4},"us":{"lo":0.3,"hi":1.8,"steps":4}}}
EOF
  P2PSIM=_build/default/bin/p2psim.exe
  left=$(remaining)
  timeout "$left" "$P2PSIM" campaign run "$out/spec.json" \
    --dir "$out/clean" --checkpoint-every 3 >/dev/null || {
    echo "FAIL: clean campaign run exited non-zero" >&2; exit 1; }
  # Kill a second copy at its 5th cell (exit 99 is the hook's signature),
  # then tear the active segment's tail as a power cut mid-append would.
  left=$(remaining)
  status=0
  timeout "$left" "$P2PSIM" campaign run "$out/spec.json" \
    --dir "$out/crashy" --checkpoint-every 3 --crash-after 5 >/dev/null 2>&1 || status=$?
  if [ "$status" -ne 99 ]; then
    echo "FAIL: --crash-after 5 exited $status, wanted 99" >&2; exit 1
  fi
  active="$out/crashy/active.jsonl"
  size=$(wc -c <"$active")
  if [ "$size" -le 5 ]; then
    echo "FAIL: active segment unexpectedly small (${size}B); nothing to tear" >&2; exit 1
  fi
  head -c $((size - 5)) "$active" >"$active.torn" && mv "$active.torn" "$active"
  left=$(remaining)
  timeout "$left" "$P2PSIM" campaign resume --dir "$out/crashy" >/dev/null || {
    echo "FAIL: campaign resume exited non-zero" >&2; exit 1; }
  cmp "$out/clean/results.jsonl" "$out/crashy/results.jsonl" || {
    echo "FAIL: resumed store is not byte-identical to the clean run" >&2; exit 1; }
  [ "$(ls "$out/crashy/quarantine" | wc -l)" -eq 1 ] || {
    echo "FAIL: torn tail was not quarantined" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" "$P2PSIM" campaign status --dir "$out/crashy" >/dev/null || {
    echo "FAIL: campaign status exited non-zero" >&2; exit 1; }
  # The coded backend drives the same crash-safe store: a small GF(4)
  # grid must complete and reproduce byte-identically across two clean
  # runs (the coded backend's determinism contract).
  cat >"$out/coded_spec.json" <<'EOF'
{"schema":"p2p-campaign-spec","version":1,"name":"ci-smoke-coded","hypothesis":"H-CI: the coded backend sweeps a grid deterministically","k":3,"mu":1.0,"gamma":2.0,"horizon":30.0,"reps":1,"master_seed":11,"policy":"random","backend":"coded","q":4,"mode":{"type":"grid","lambda":{"lo":0.3,"hi":2.7,"steps":3},"us":{"lo":0.3,"hi":1.8,"steps":3}}}
EOF
  left=$(remaining)
  timeout "$left" "$P2PSIM" campaign run "$out/coded_spec.json" \
    --dir "$out/coded" --checkpoint-every 3 >/dev/null || {
    echo "FAIL: coded campaign run exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" "$P2PSIM" campaign run "$out/coded_spec.json" \
    --dir "$out/coded2" --checkpoint-every 3 >/dev/null || {
    echo "FAIL: second coded campaign run exited non-zero" >&2; exit 1; }
  cmp "$out/coded/results.jsonl" "$out/coded2/results.jsonl" || {
    echo "FAIL: coded campaign store is not reproducible" >&2; exit 1; }
  echo "== campaign smoke OK =="
fi

# Optional observability smoke: CHECK_OBS=1 proves the live-telemetry
# layer end to end — a Theorem-1-unstable run must raise a
# missing-piece-syndrome alert and leave a flight dump, a histogram
# file, and an alert timeline that `p2psim report` all render; then a
# SIGKILL mid-run must still leave a parseable auto-snapshot behind.
if [ "${CHECK_OBS:-0}" = "1" ]; then
  out="${CHECK_OBS_DIR:-/tmp/p2p_obs_smoke}"
  rm -rf "$out"
  mkdir -p "$out"
  echo "== observability smoke (into $out) =="
  P2PSIM=_build/default/bin/p2psim.exe
  # λ = 2.0 > U_s = 0.3 with instant departures: the missing-piece
  # syndrome must develop and the online monitor must catch it live.
  left=$(remaining)
  timeout "$left" "$P2PSIM" simulate -k 3 --us 0.3 --mu 2.0 --gamma inf \
    -a none=2.0 --horizon 60 --seed 5 \
    --flight-recorder "$out/flight.jsonl" --hist-out "$out/hists.json" \
    --alerts-out "$out/alerts.jsonl" >/dev/null || {
    echo "FAIL: monitored unstable simulate exited non-zero" >&2; exit 1; }
  for f in flight.jsonl hists.json alerts.jsonl; do
    [ -s "$out/$f" ] || { echo "FAIL: $f missing or empty" >&2; exit 1; }
  done
  grep -q missing_piece_syndrome "$out/alerts.jsonl" || {
    echo "FAIL: no missing-piece-syndrome alert on the unstable side" >&2; exit 1; }
  for f in flight.jsonl hists.json alerts.jsonl; do
    left=$(remaining)
    timeout "$left" "$P2PSIM" report "$out/$f" >/dev/null || {
      echo "FAIL: p2psim report could not render $f" >&2; exit 1; }
  done
  # SIGKILL survival: the flight recorder republishes the ring as a
  # rate-limited auto-snapshot, so even an uncatchable kill leaves the
  # last complete dump behind.  The unstable swarm keeps the event loop
  # busy for far longer than the 2 s we let it live.
  "$P2PSIM" simulate -k 3 --us 0.3 --mu 2.0 --gamma inf \
    -a none=2.0 --horizon 100000 --seed 5 \
    --flight-recorder "$out/killed.jsonl" >/dev/null 2>&1 &
  victim=$!
  sleep 2
  kill -9 "$victim" 2>/dev/null || true
  wait "$victim" 2>/dev/null || true
  [ -s "$out/killed.jsonl" ] || {
    echo "FAIL: SIGKILL left no flight-recorder snapshot" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" "$P2PSIM" report "$out/killed.jsonl" >/dev/null || {
    echo "FAIL: post-SIGKILL snapshot is not parseable" >&2; exit 1; }
  echo "== observability smoke OK =="
fi

# Optional shard smoke: CHECK_SHARD=1 proves the sharded engine's
# determinism contract end to end through the CLI — two identical
# 2-shard invocations must be byte-equal, a --jobs change must not
# alter the output, and --shards 1 must be byte-identical to the plain
# single-loop simulator (the goldens' anchor).
if [ "${CHECK_SHARD:-0}" = "1" ]; then
  out="${CHECK_SHARD_DIR:-_build/shard-smoke}"
  rm -rf "$out"
  mkdir -p "$out"
  echo "== shard smoke (into $out) =="
  P2PSIM=_build/default/bin/p2psim.exe
  ARGS="-k 3 --arrive none=2.0 --us 1 --mu 1 --gamma 2 --abort-rate 0.05 --horizon 150 --seed 11"
  left=$(remaining)
  timeout "$left" $P2PSIM simulate $ARGS --shards 2 --csv "$out/a.csv" >"$out/a.txt" || {
    echo "FAIL: first 2-shard run exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" $P2PSIM simulate $ARGS --shards 2 --csv "$out/b.csv" >"$out/b.txt" || {
    echo "FAIL: second 2-shard run exited non-zero" >&2; exit 1; }
  # stdout embeds the CSV path ("wrote .../a.csv"), so mask that one
  # line before comparing — everything else must be byte-identical.
  sed 's/^wrote .*/wrote CSV/' "$out/a.txt" >"$out/a.norm.txt"
  sed 's/^wrote .*/wrote CSV/' "$out/b.txt" >"$out/b.norm.txt"
  cmp "$out/a.csv" "$out/b.csv" && cmp "$out/a.norm.txt" "$out/b.norm.txt" || {
    echo "FAIL: repeated 2-shard runs are not byte-identical" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" $P2PSIM simulate $ARGS --shards 2 --jobs 2 --csv "$out/j2.csv" >/dev/null || {
    echo "FAIL: 2-shard --jobs 2 run exited non-zero" >&2; exit 1; }
  cmp "$out/a.csv" "$out/j2.csv" || {
    echo "FAIL: --jobs changed the 2-shard trajectory" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" $P2PSIM simulate $ARGS --csv "$out/plain.csv" >/dev/null || {
    echo "FAIL: unsharded run exited non-zero" >&2; exit 1; }
  left=$(remaining)
  timeout "$left" $P2PSIM simulate $ARGS --shards 1 --csv "$out/s1.csv" >/dev/null || {
    echo "FAIL: --shards 1 run exited non-zero" >&2; exit 1; }
  cmp "$out/plain.csv" "$out/s1.csv" || {
    echo "FAIL: --shards 1 is not byte-identical to the unsharded simulator" >&2; exit 1; }
  echo "== shard smoke OK =="
fi

echo "== tier-1 check OK =="
