(* Benchmark and experiment harness entry point.

     dune exec bench/main.exe                 -- every experiment + microbenchmarks
     dune exec bench/main.exe -- e1 e8        -- selected experiments
     dune exec bench/main.exe -- perf         -- microbenchmarks only
     dune exec bench/main.exe -- csv=results  -- also export every table as CSV
     dune exec bench/main.exe -- list         -- list available targets

   Each experiment regenerates one of the paper's artefacts (see DESIGN.md
   Section 5 and EXPERIMENTS.md). *)

(* bench-json / bench-json-quick are not in the default "run everything"
   sweep: they overwrite the committed baseline file, so regenerating it
   is an explicit act. *)
let available = Experiments.all @ [ ("perf", Perf.run); ("scale", Perf.scaling) ]

let extra =
  [
    ("bench-json", Perf.bench_json);
    ("bench-json-quick", Perf.bench_json_quick);
    ("bench-json-pr10", Perf.bench_json_pr10);
    ("bench-gate", Perf.bench_gate);
  ]

let list_targets () =
  print_endline "available targets:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) (available @ extra)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun arg ->
        match String.index_opt arg '=' with
        | Some i when String.sub arg 0 i = "csv" ->
            let dir = String.sub arg (i + 1) (String.length arg - i - 1) in
            P2p_core.Report.set_output_dir (Some dir);
            Printf.printf "exporting tables as CSV under %s/\n" dir;
            false
        | Some _ | None -> true)
      args
  in
  match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) available;
      print_endline "\nAll experiments complete. See EXPERIMENTS.md for the recorded snapshot."
  | [ "list" ] -> list_targets ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) (available @ extra) with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown target %S\n" name;
              list_targets ();
              exit 2)
        names
