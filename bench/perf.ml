(* P1: bechamel microbenchmarks of the hot kernels.

   One Test.make per kernel; OLS estimate of ns/run printed as a table.
   These quantify the design choices called out in DESIGN.md: aggregate vs
   agent simulation cost, subspace insertion, field arithmetic, and the
   heap/event machinery. *)

open Bechamel
open Toolkit
module PS = P2p_pieceset.Pieceset
open P2p_core

let markov_sim_test =
  let params = Scenario.flash_crowd ~k:4 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  Test.make ~name:"sim_markov: 50 time units (K=4, stable)"
    (Staged.stage (fun () ->
         ignore (Sim_markov.run_seeded ~seed:1 (Sim_markov.default_config params) ~horizon:50.0)))

let agent_sim_test =
  let params = Scenario.flash_crowd ~k:4 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  Test.make ~name:"sim_agent: 50 time units (K=4, stable)"
    (Staged.stage (fun () ->
         ignore (Sim_agent.run_seeded ~seed:1 (Sim_agent.default_config params) ~horizon:50.0)))

let agent_rarest_test =
  let params = Scenario.flash_crowd ~k:4 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let config = { (Sim_agent.default_config params) with policy = Policy.rarest_first } in
  Test.make ~name:"sim_agent: 50 time units, rarest-first"
    (Staged.stage (fun () -> ignore (Sim_agent.run_seeded ~seed:1 config ~horizon:50.0)))

let coded_sim_test =
  let g = { Stability.Coded.q = 16; k = 8; us = 0.0; mu = 1.0; gamma = infinity;
            lambda0 = 0.6; lambda1 = 0.4 } in
  Test.make ~name:"sim_coded: 50 time units (q=16, K=8)"
    (Staged.stage (fun () ->
         ignore (Sim_coded.run_seeded ~seed:1 (Sim_coded.of_gift g) ~horizon:50.0)))

let transitions_test =
  let params = Scenario.flash_crowd ~k:6 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let rng = P2p_prng.Rng.of_seed 3 in
  let entries =
    List.filter_map
      (fun c ->
        let count = P2p_prng.Rng.int_below rng 5 in
        if count > 0 then Some (PS.of_index c, count) else None)
      (List.init 64 (fun i -> i))
  in
  let state = State.of_counts entries in
  Test.make ~name:"generator row (K=6, 64 types)"
    (Staged.stage (fun () -> ignore (Rate.transitions params state)))

let lyapunov_drift_test =
  let params = Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:1.5 in
  let coeffs = Lyapunov.default_coeffs params in
  let state = State.of_counts [ (PS.of_list [ 0; 1 ], 500); (PS.singleton 2, 20) ] in
  Test.make ~name:"exact Lyapunov drift QW (K=3)"
    (Staged.stage (fun () -> ignore (Lyapunov.drift_w params coeffs state)))

let gf_rank_test =
  let f = P2p_gf.Field.gf 64 in
  let rng = P2p_prng.Rng.of_seed 4 in
  let rows =
    Array.init 24 (fun _ -> P2p_gf.Mat.random_vec f (P2p_prng.Rng.int_below rng) 24)
  in
  Test.make ~name:"GF(64) rank of 24x24"
    (Staged.stage (fun () -> ignore (P2p_gf.Mat.rank f rows)))

let subspace_insert_test =
  let f = P2p_gf.Field.gf 16 in
  let rng = P2p_prng.Rng.of_seed 5 in
  let vectors =
    Array.init 16 (fun _ -> P2p_gf.Mat.random_vec f (P2p_prng.Rng.int_below rng) 16)
  in
  Test.make ~name:"subspace build: 16 inserts in F_16^16"
    (Staged.stage (fun () ->
         let s = P2p_coding.Subspace.create f ~k:16 in
         Array.iter (fun v -> ignore (P2p_coding.Subspace.insert s v)) vectors))

let heap_test =
  let rng = P2p_prng.Rng.of_seed 6 in
  let keys = Array.init 1000 (fun _ -> P2p_prng.Rng.float rng) in
  Test.make ~name:"heap: 1000 push + pop"
    (Staged.stage (fun () ->
         let h = P2p_des.Heap.create () in
         Array.iter (fun k -> ignore (P2p_des.Heap.insert h ~key:k ())) keys;
         while not (P2p_des.Heap.is_empty h) do
           ignore (P2p_des.Heap.pop_min h)
         done))

let mu_inf_test =
  Test.make ~name:"mu=inf process: 10k steps"
    (Staged.stage
       (let rng = P2p_prng.Rng.of_seed 7 in
        let cfg = { Mu_infinity.k = 3; lambda = 1.0 } in
        fun () ->
          ignore (Mu_infinity.simulate rng cfg ~init:{ Mu_infinity.n = 10; pieces = 2 } ~steps:10_000)))

let fluid_test =
  let params = Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:1.5 in
  let init = Fluid.of_state ~k:3 (State.create ()) in
  Test.make ~name:"fluid RK45 adaptive: 10 time units (K=3)"
    (Staged.stage (fun () ->
         ignore (Fluid.integrate params ~init ~dt:0.01 ~horizon:10.0 ~record_every:1000)))

let tests =
  [
    markov_sim_test;
    agent_sim_test;
    agent_rarest_test;
    coded_sim_test;
    transitions_test;
    lyapunov_drift_test;
    gf_rank_test;
    subspace_insert_test;
    heap_test;
    mu_inf_test;
    fluid_test;
  ]

(* P2: multicore scaling of the replication runner.

   An embarrassingly parallel sweep — R independent Sim_markov
   replications — timed at 1, 2 and 4 domains.  Three things to check in
   the output: wall-clock speedup approaching the domain count (on a
   machine with that many cores), per-domain utilisation near 100%, and
   the merged mean being IDENTICAL in every row (the runner's
   determinism guarantee; the bit-identity is also enforced by
   test_runner.ml). *)

module Runner = P2p_runner.Runner

let scaling () =
  P2p_core.Report.banner "P2  replication-runner scaling (1/2/4 domains)";
  let params = Scenario.flash_crowd ~k:4 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let reps = 32 in
  let sweep jobs =
    Runner.run_summary ~jobs ~metrics:[ "time-avg N" ] ~master_seed:7 ~replications:reps
      (fun ~rng ~index:_ ->
        let stats, _ = Sim_markov.run ~rng (Sim_markov.default_config params) ~horizon:150.0 in
        Runner.rep [| stats.time_avg_n |])
  in
  Printf.printf "%d replications of Sim_markov (K=4, stable, horizon 150); %d cores recommended\n"
    reps
    (Domain.recommended_domain_count ());
  let reference = sweep 1 in
  let t1 = reference.timing.wall_s in
  let ref_mean = P2p_stats.Welford.mean (snd (List.hd reference.stats)) in
  let row (summary : Runner.summary) =
    let mean = P2p_stats.Welford.mean (snd (List.hd summary.stats)) in
    [
      string_of_int summary.timing.jobs;
      Printf.sprintf "%.3f" summary.timing.wall_s;
      Printf.sprintf "%.2fx" (t1 /. summary.timing.wall_s);
      Printf.sprintf "%.0f%%" (100.0 *. Runner.utilisation summary.timing);
      Printf.sprintf "%.10g" mean;
      (if mean = ref_mean then "yes" else "NO");
    ]
  in
  P2p_core.Report.table
    ~header:[ "domains"; "wall (s)"; "speedup"; "busy"; "merged mean N"; "bit-identical" ]
    (row reference :: List.map (fun jobs -> row (sweep jobs)) [ 2; 4 ])

(* P3: machine-readable performance baseline (BENCH_PR3.json).

   Three sections, written with the in-tree JSON emitter:

   - events/sec of both simulators on the same stable flash-crowd config,
     measured with telemetry off, with swarm probes sampling, and with
     event tracing into a sink — quantifying the observability overhead
     promised in DESIGN.md Section 10;
   - replication-runner scaling at 1/2/4 domains (wall, speedup,
     utilisation) with the bit-identity of the merged mean asserted;
   - the probe series determinism witness: the merged mean must match
     across every jobs count.

   The quick variant shrinks horizons/reps so CI can run it as a smoke
   test; the full variant regenerates the committed baseline. *)

module Json = P2p_obs.Json
module Probe = P2p_obs.Probe
module Series = P2p_obs.Series
module Hist = P2p_obs.Hist
module Recorder = P2p_obs.Recorder
module Monitor = P2p_obs.Monitor

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let sim_section ~quick =
  let params = Scenario.flash_crowd ~k:4 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  (* The quick horizon still needs tens of milliseconds of events per
     run: the smoke figure feeds the bench-gate, whose instrumented
     floor is a few percent — shorter walls are all scheduler noise. *)
  let horizon = if quick then 1000.0 else 2000.0 in
  let sampling_probe () =
    let series = Series.create ~k:4 in
    Probe.make ~interval:(horizon /. 200.0) ~on_sample:(Series.record series) ()
  in
  let tracing_probe () = Probe.make ~on_event:(fun ~time:_ _ -> ()) () in
  (* The per-event live-observability stack — flight recorder plus
     event-count and phase-cost histograms.  This is the configuration
     the bench-gate bounds: the contract in DESIGN.md is recorder +
     hists ≤ 5% events/s overhead vs bare.  The syndrome monitor rides
     the sampling grid, so its cost is the sampling column's, already
     reported separately. *)
  let instrumented_probe () =
    Probe.make ~recorder:(Recorder.create ~capacity:256 ()) ~hists:(Hist.group ()) ()
  in
  (* Best wall time of [rounds] runs per configuration: the least-
     interference estimate.  Single runs of a ~10ms simulation on a
     shared box swing by 2x; the minimum is stable.  The instrumented
     floor compares two of these minima, so it needs enough rounds for
     both to converge — the true instrumented overhead is ~3% (about
     12 ns of probe work on a ~400 ns event), well inside the 5%
     budget, but one noisy wall fakes a violation. *)
  let rounds = if quick then 6 else 8 in
  let measure name run =
    (* [probe] is a thunk: sampling probes accumulate a time series, so
       each round needs a fresh one.  Configurations are interleaved
       round-robin (off, sampling, tracing, instrumented, repeat) so CPU
       frequency drift and neighbour noise hit every configuration
       equally — the instrumented-overhead gate compares these walls
       against each other, not across runs. *)
    let configs =
      [| (fun () -> Probe.none); sampling_probe; tracing_probe; instrumented_probe |]
    in
    let best = Array.make (Array.length configs) infinity in
    let events_off = ref 0 in
    (* The instrumented-overhead ratio is PAIRED per round: the bare and
       instrumented walls of the same round ran back-to-back, so CPU
       frequency drift across rounds cancels out of their quotient.  The
       gate then takes the cleanest round — the ratio of global minima
       would compare walls from different frequency regimes and swing by
       more than the 5% budget it is supposed to police. *)
    let best_ratio = ref 0.0 in
    for _ = 1 to rounds do
      let walls = Array.make (Array.length configs) nan in
      Array.iteri
        (fun i probe ->
          let stats, wall = timed (fun () -> run (probe ())) in
          if i = 0 then events_off := stats;
          walls.(i) <- wall;
          if wall < best.(i) then best.(i) <- wall)
        configs;
      let r = walls.(0) /. walls.(3) in
      if r > !best_ratio then best_ratio := r
    done;
    let events_off = !events_off in
    let wall_off = best.(0)
    and wall_sampling = best.(1)
    and wall_tracing = best.(2)
    and wall_instrumented = best.(3) in
    let eps wall = if wall > 0.0 then float_of_int events_off /. wall else nan in
    ( name,
      Json.Obj
        [
          ("events", Json.Int events_off);
          ("horizon", Json.Float horizon);
          ("wall_s", Json.Float wall_off);
          ("events_per_sec", Json.Float (eps wall_off));
          ("events_per_sec_probe_sampling", Json.Float (eps wall_sampling));
          ("events_per_sec_probe_tracing", Json.Float (eps wall_tracing));
          ("events_per_sec_instrumented", Json.Float (eps wall_instrumented));
          ("instrumented_ratio", Json.Float !best_ratio);
        ] )
  in
  (* The coded and network workloads mirror the flash-crowd one: K = 4,
     stable side, same horizon, so the four events/s figures are
     comparable and the k=4 sampling probe fits all of them. *)
  let coded_config =
    Sim_coded.of_gift
      { Stability.Coded.q = 16; k = 4; us = 1.0; mu = 1.0; gamma = 2.0;
        lambda0 = 0.65; lambda1 = 0.35 }
  in
  let network_config = Sim_network.default_config params in
  [
    measure "sim_markov" (fun probe ->
        let s, _ =
          Sim_markov.run_seeded ~probe ~seed:1 (Sim_markov.default_config params) ~horizon
        in
        s.Sim_markov.events);
    measure "sim_agent" (fun probe ->
        let s, _ =
          Sim_agent.run_seeded ~probe ~seed:1 (Sim_agent.default_config params) ~horizon
        in
        s.Sim_agent.events);
    measure "sim_coded" (fun probe ->
        let s = Sim_coded.run_seeded ~probe ~seed:1 coded_config ~horizon in
        s.Sim_coded.events);
    measure "sim_network" (fun probe ->
        let s, _ = Sim_network.run_seeded ~probe ~seed:1 network_config ~horizon in
        s.Sim_network.events);
  ]

let scaling_section ~quick =
  let params = Scenario.flash_crowd ~k:4 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let reps = if quick then 8 else 64 in
  let horizon = if quick then 50.0 else 300.0 in
  let sweep jobs =
    Runner.run_summary ~jobs ~metrics:[ "time-avg N" ] ~master_seed:7 ~replications:reps
      (fun ~rng ~index:_ ->
        let stats, _ = Sim_markov.run ~rng (Sim_markov.default_config params) ~horizon in
        Runner.rep [| stats.Sim_markov.time_avg_n |])
  in
  (* Same best-of discipline as the simulator section: keep the sweep
     with the least interference per jobs count.  Every sweep returns
     bit-identical aggregates, so this only selects a timing. *)
  let rounds = if quick then 1 else 3 in
  let best_sweep jobs =
    let best = ref (sweep jobs) in
    for _ = 2 to rounds do
      let s = sweep jobs in
      if s.Runner.timing.wall_s < !best.Runner.timing.wall_s then best := s
    done;
    !best
  in
  let reference = best_sweep 1 in
  let t1 = reference.Runner.timing.wall_s in
  let ref_mean = P2p_stats.Welford.mean (snd (List.hd reference.Runner.stats)) in
  let row (summary : Runner.summary) =
    let mean = P2p_stats.Welford.mean (snd (List.hd summary.stats)) in
    Json.Obj
      [
        ("jobs", Json.Int summary.timing.jobs);
        ("wall_s", Json.Float summary.timing.wall_s);
        ("speedup", Json.Float (t1 /. summary.timing.wall_s));
        ("utilisation", Json.Float (Runner.utilisation summary.timing));
        ("merged_mean_n", Json.Float mean);
        ("bit_identical", Json.Bool (mean = ref_mean));
      ]
  in
  ( Json.List (row reference :: List.map (fun jobs -> row (best_sweep jobs)) [ 2; 4 ]),
    ("replications", Json.Int reps) )

(* The fluid backend's headline benchmark: a million-peer flash crowd,
   infeasible for any of the event-driven simulators, integrated to the
   horizon by the adaptive stepper.  The figure of merit is accepted
   steps/second — the stepper's throughput is population-independent, so
   this is the number the bench-gate can hold steady — plus the absolute
   wall clock, which the gate caps so the million-peer scenario stays
   interactive. *)
let fluid_section ~quick =
  let k = 8 in
  let params = Scenario.flash_crowd ~k ~lambda:100.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let peers = 1e6 in
  let horizon = if quick then 50.0 else 100.0 in
  let config = { (Sim_fluid.default_config params) with initial = [ (PS.empty, peers) ] } in
  let rounds = if quick then 2 else 3 in
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to rounds do
    let (stats, _), wall = timed (fun () -> Sim_fluid.run_seeded ~seed:1 config ~horizon) in
    last := Some stats;
    if wall < !best then best := wall
  done;
  let stats = Option.get !last in
  let wall = !best in
  let steps = stats.Sim_fluid.steps in
  ( "fluid",
    Json.Obj
      [
        ("peers", Json.Float peers);
        ("k", Json.Int k);
        ("horizon", Json.Float horizon);
        ("steps", Json.Int steps);
        ("rejected_steps", Json.Int stats.Sim_fluid.rejected_steps);
        ("rhs_evals", Json.Int stats.Sim_fluid.rhs_evals);
        ("wall_s", Json.Float wall);
        ("steps_per_sec", Json.Float (if wall > 0.0 then float_of_int steps /. wall else nan));
        ("time_avg_n", Json.Float stats.Sim_fluid.time_avg_n);
        ("final_n", Json.Float stats.Sim_fluid.final_n);
      ] )

(* P5: sharded-swarm scaling (PR 10).

   One giant agent swarm — a million peers at the full size — split
   across 4 shards and driven at 1, 2 and 4 domains.  Three claims to
   verify in BENCH_PR10.json:

   - the partition ran: every shard's event count is a fat, roughly
     equal share of the total;
   - determinism: every jobs count produces the identical merged stats
     (events, final N, time-avg N) — the jobs-invariance half of the
     DESIGN §17 contract;
   - scaling, where the hardware has it: on a multi-core box the wall
     should drop toward 1/min(jobs, cores); on a single-core box (the
     bench host: recommended_domains = 1) wall grows slightly with jobs
     from spawn/join and barrier overhead, and the committed table
     documents that ceiling instead of a speedup. *)

let sharded_section ~quick =
  let params = Scenario.flash_crowd ~k:4 ~lambda:100.0 ~us:1.0 ~mu:1.0 ~gamma:2.0 in
  let peers = if quick then 50_000 else 1_000_000 in
  let horizon = if quick then 0.5 else 1.0 in
  let shards = 4 in
  let config =
    { (Sim_agent.default_config params) with Sim_agent.initial = [ (PS.empty, peers) ] }
  in
  let run jobs =
    timed (fun () -> Sim_agent.run_sharded_seeded ~jobs ~shards ~seed:1 config ~horizon)
  in
  let rounds = if quick then 1 else 2 in
  let best_run jobs =
    let (r, w) = run jobs in
    let best = ref (r, w) in
    for _ = 2 to rounds do
      let (r, w) = run jobs in
      if w < snd !best then best := (r, w)
    done;
    !best
  in
  let ref_result, t1 = best_run 1 in
  let ref_stats, _, ref_report = ref_result in
  let row jobs ((stats : Sim_agent.stats), _, (report : Sim_agent.shard_report)) wall =
    Json.Obj
      [
        ("jobs", Json.Int jobs);
        ("wall_s", Json.Float wall);
        ("speedup", Json.Float (t1 /. wall));
        ("events", Json.Int stats.Sim_agent.events);
        ( "events_per_sec",
          Json.Float
            (if wall > 0.0 then float_of_int stats.Sim_agent.events /. wall else nan) );
        ( "bit_identical",
          Json.Bool
            (stats.Sim_agent.events = ref_stats.Sim_agent.events
            && stats.Sim_agent.final_n = ref_stats.Sim_agent.final_n
            && Float.equal stats.Sim_agent.time_avg_n ref_stats.Sim_agent.time_avg_n) );
        ( "shard_events",
          Json.List
            (Array.to_list
               (Array.map (fun e -> Json.Int e) report.Sim_agent.shard_events)) );
      ]
  in
  let rows =
    row 1 ref_result t1
    :: List.map
         (fun jobs ->
           let result, wall = best_run jobs in
           row jobs result wall)
         [ 2; 4 ]
  in
  ( "sharded",
    Json.Obj
      [
        ("simulator", Json.String "sim_agent");
        ("peers", Json.Int peers);
        ("shards", Json.Int shards);
        ("horizon", Json.Float horizon);
        ("events", Json.Int ref_stats.Sim_agent.events);
        ("cross_messages", Json.Int ref_report.Sim_agent.cross_messages);
        ("sync_windows", Json.Int ref_report.Sim_agent.windows);
        ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
        ("rows", Json.List rows);
      ] )

(* P4: before/after against the committed PR3 baseline, and the CI bench
   gate.  Both read baselines back through the in-tree JSON parser. *)

let read_json_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Json.of_string s with Ok j -> Some j | Error _ -> None)

let events_per_sec ~sim j =
  Option.bind (Json.member "simulators" j) (fun sims ->
      Option.bind (Json.member sim sims) (fun s ->
          Option.bind (Json.member "events_per_sec" s) Json.to_float_opt))

(* Per-simulator before/after speedup vs the committed PR3 baseline;
   [Null] when the baseline file is absent (e.g. a bare checkout).
   Simulators the PR3 baseline never measured (coded, network) are
   skipped rather than reported as null speedups. *)
let vs_baseline_section sims =
  match read_json_file "BENCH_PR3.json" with
  | None -> ("vs_pr3_baseline", Json.Null)
  | Some base ->
      let cmp (name, fields) =
        match events_per_sec ~sim:name base with
        | None -> None
        | Some before ->
            let after =
              match Json.member "events_per_sec" fields with
              | Some v -> Option.value (Json.to_float_opt v) ~default:nan
              | None -> nan
            in
            Some
              ( name,
                Json.Obj
                  [
                    ("events_per_sec_before", Json.Float before);
                    ("events_per_sec_after", Json.Float after);
                    ("speedup", Json.Float (after /. before));
                  ] )
      in
      ("vs_pr3_baseline", Json.Obj (List.filter_map cmp sims))

let bench_json_to ~quick path =
  let sims = sim_section ~quick in
  let scaling_rows, reps_field = scaling_section ~quick in
  let j =
    Json.Obj
      [
        ("bench", Json.String "p2p swarm simulator performance baseline");
        ("pr", Json.Int 9);
        ("quick", Json.Bool quick);
        ("simulators", Json.Obj sims);
        fluid_section ~quick;
        vs_baseline_section sims;
        ("runner_scaling", scaling_rows);
        reps_field;
        sharded_section ~quick;
        ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
      ]
  in
  Json.write_file_atomic path (fun oc ->
      Json.to_channel oc j;
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

let bench_json () = bench_json_to ~quick:false "BENCH_PR9.json"
let bench_json_quick () = bench_json_to ~quick:true "BENCH_smoke.json"

(* The PR 10 artefact: the full-size sharded-swarm scaling table alone.
   Kept separate from the PR9 throughput baseline so regenerating one
   never perturbs the other's ratchet floors. *)
let bench_json_pr10 () =
  let j =
    Json.Obj
      [
        ("bench", Json.String "sharded-swarm scaling table");
        ("pr", Json.Int 10);
        ("quick", Json.Bool false);
        sharded_section ~quick:false;
      ]
  in
  Json.write_file_atomic "BENCH_PR10.json" (fun oc ->
      Json.to_channel oc j;
      output_char oc '\n');
  print_endline "wrote BENCH_PR10.json"

(* The CI regression gate: compare a fresh quick-bench events/s figure
   against the committed baseline and fail below 70% (a −30% threshold —
   loose enough for shared CI runners, tight enough to catch a hot-path
   regression).  Paths are overridable so the gate can also diff two
   fresh runs locally. *)
let bench_gate () =
  let getenv name default =
    match Sys.getenv_opt name with Some v when v <> "" -> v | _ -> default
  in
  let baseline_path = getenv "BENCH_GATE_BASELINE" "BENCH_PR9.json" in
  let fresh_path = getenv "BENCH_GATE_NEW" "BENCH_smoke.json" in
  let threshold = 0.70 in
  (* Absolute ceiling on the fluid million-peer scenario: the smoke
     variant covers half the baseline horizon, so anything past this is
     a step-control regression, not runner noise. *)
  let fluid_wall_ceiling_s = 120.0 in
  match (read_json_file baseline_path, read_json_file fresh_path) with
  | None, _ ->
      (* No baseline is not a failure: the gate guards regressions against
         a committed reference, it does not require one to exist. *)
      Printf.printf "bench-gate: no baseline at %s, skipping\n" baseline_path
  | _, None ->
      Printf.eprintf "bench-gate: cannot read fresh results at %s\n" fresh_path;
      exit 1
  | Some base, Some fresh ->
      let failed = ref false in
      List.iter
        (fun sim ->
          match (events_per_sec ~sim base, events_per_sec ~sim fresh) with
          | Some b, Some f when b > 0.0 ->
              let ratio = f /. b in
              Printf.printf "bench-gate: %s %.3g -> %.3g events/s (%.0f%% of baseline)\n" sim
                b f (100.0 *. ratio);
              if ratio < threshold then begin
                Printf.eprintf "bench-gate: %s fell below %.0f%% of the %s baseline\n" sim
                  (100.0 *. threshold) baseline_path;
                failed := true
              end
          | _ ->
              Printf.eprintf "bench-gate: missing events_per_sec for %s\n" sim;
              failed := true)
        [ "sim_markov"; "sim_agent"; "sim_coded"; "sim_network" ];
      (* Ratcheted absolute floors, held against the COMMITTED baseline
         (full-bench figures — the fresh quick run measures lower on
         shorter walls and is policed by the relative threshold above).
         sim_markov must stay above its PR4 peak and sim_coded — its own
         gate row, so a GF kernel regression cannot hide in the
         aggregate — above the PR9 target. *)
      List.iter
        (fun (sim, floor_eps) ->
          match events_per_sec ~sim base with
          | Some b ->
              Printf.printf "bench-gate: %s baseline %.3g events/s (ratchet floor %.3g)\n" sim
                b floor_eps;
              if b < floor_eps then begin
                Printf.eprintf
                  "bench-gate: %s committed baseline fell below the %.3g events/s ratchet\n"
                  sim floor_eps;
                failed := true
              end
          | None ->
              Printf.eprintf "bench-gate: missing baseline events_per_sec for %s\n" sim;
              failed := true)
        [ ("sim_markov", 3.68e6); ("sim_coded", 2.0e6) ];
      (* The fresh quick figure still has to clear the same floors at the
         cross-run threshold, so a live regression fails even when the
         committed baseline is healthy. *)
      List.iter
        (fun (sim, floor_eps) ->
          match events_per_sec ~sim fresh with
          | Some f when f < threshold *. floor_eps ->
              Printf.eprintf
                "bench-gate: %s fresh run %.3g below %.0f%% of the %.3g events/s ratchet\n" sim
                f (100.0 *. threshold) floor_eps;
              failed := true
          | _ -> ())
        [ ("sim_markov", 3.68e6); ("sim_coded", 2.0e6) ];
      (* Live-observability overhead contract: flight recorder +
         histograms attached must keep ≥ 95% of bare events/s.  This is
         a within-run ratio (the walls are interleaved round-robin by
         the same process), so it holds to a much tighter floor than the
         cross-run regression threshold above. *)
      let instrumented_floor = 0.95 in
      List.iter
        (fun sim ->
          let ratio =
            Option.bind (Json.member "simulators" fresh) (fun sims ->
                Option.bind (Json.member sim sims) (fun s ->
                    Option.bind (Json.member "instrumented_ratio" s) Json.to_float_opt))
          in
          match ratio with
          | Some r ->
              Printf.printf "bench-gate: %s instrumented at %.0f%% of bare (floor %.0f%%)\n" sim
                (100.0 *. r) (100.0 *. instrumented_floor);
              if r < instrumented_floor then begin
                Printf.eprintf
                  "bench-gate: %s live-observability overhead exceeded the %.0f%% budget\n" sim
                  (100.0 *. (1.0 -. instrumented_floor));
                failed := true
              end
          | None ->
              Printf.eprintf "bench-gate: missing instrumented_ratio for %s\n" sim;
              failed := true)
        [ "sim_markov"; "sim_agent"; "sim_coded"; "sim_network" ];
      let fluid_field name j =
        Option.bind (Json.member "fluid" j) (fun f ->
            Option.bind (Json.member name f) Json.to_float_opt)
      in
      (match (fluid_field "steps_per_sec" base, fluid_field "steps_per_sec" fresh) with
      | Some b, Some f when b > 0.0 ->
          let ratio = f /. b in
          Printf.printf "bench-gate: fluid %.3g -> %.3g steps/s (%.0f%% of baseline)\n" b f
            (100.0 *. ratio);
          if ratio < threshold then begin
            Printf.eprintf "bench-gate: fluid stepper fell below %.0f%% of the %s baseline\n"
              (100.0 *. threshold) baseline_path;
            failed := true
          end
      | None, _ ->
          (* A pre-PR6 baseline has no fluid section; the steps/s gate
             holds whenever a PR6+ baseline is the reference. *)
          Printf.printf "bench-gate: baseline has no fluid section, skipping steps/s ratio\n"
      | _ ->
          Printf.eprintf "bench-gate: missing fluid steps_per_sec in fresh results\n";
          failed := true);
      (match fluid_field "wall_s" fresh with
      | Some w ->
          Printf.printf "bench-gate: fluid million-peer wall %.3gs (ceiling %gs)\n" w
            fluid_wall_ceiling_s;
          if w > fluid_wall_ceiling_s then begin
            Printf.eprintf "bench-gate: fluid million-peer scenario exceeded the %gs ceiling\n"
              fluid_wall_ceiling_s;
            failed := true
          end
      | None ->
          Printf.eprintf "bench-gate: missing fluid wall_s in fresh results\n";
          failed := true);
      (* Sharded-run gates.  Two layers:

         - the fresh smoke file's sharded section (quick-size run from
           this very CI job) must prove the partition ran — every shard
           processed events — and the jobs-invariance bit-identity held
           on every row;
         - the committed BENCH_PR10.json scaling table (full-size,
           million-peer) must satisfy the same invariants, plus the
           scaling acceptance: > 1.5x speedup at 4 domains when the box
           that produced it had >= 4 cores, otherwise the recorded
           single-core ceiling with fat per-shard event counts is the
           accepted witness. *)
      let sharded_rows j =
        Option.bind (Json.member "sharded" j) (fun s ->
            Option.bind (Json.member "rows" s) (function Json.List l -> Some (s, l) | _ -> None))
      in
      let row_field name r = Option.bind (Json.member name r) Json.to_float_opt in
      let check_sharded ~label ~require_scaling j =
        match sharded_rows j with
        | None ->
            Printf.eprintf "bench-gate: %s has no sharded section\n" label;
            failed := true
        | Some (section, rows) ->
            let jobs_seen = ref [] in
            List.iter
              (fun r ->
                let jobs =
                  match row_field "jobs" r with Some f -> int_of_float f | None -> -1
                in
                jobs_seen := jobs :: !jobs_seen;
                (match Json.member "bit_identical" r with
                | Some (Json.Bool true) -> ()
                | _ ->
                    Printf.eprintf
                      "bench-gate: %s sharded row jobs=%d is not bit-identical\n" label jobs;
                    failed := true);
                match Json.member "shard_events" r with
                | Some (Json.List evs)
                  when evs <> []
                       && List.for_all
                            (fun e ->
                              match Json.to_float_opt e with
                              | Some v -> v > 0.0
                              | None -> false)
                            evs ->
                    ()
                | _ ->
                    Printf.eprintf
                      "bench-gate: %s sharded row jobs=%d has an idle shard (partition did \
                       not run)\n"
                      label jobs;
                    failed := true)
              rows;
            List.iter
              (fun j ->
                if not (List.mem j !jobs_seen) then begin
                  Printf.eprintf "bench-gate: %s sharded table is missing the jobs=%d row\n"
                    label j;
                  failed := true
                end)
              [ 1; 2; 4 ];
            let cores =
              match
                Option.bind (Json.member "recommended_domains" section) Json.to_float_opt
              with
              | Some c -> int_of_float c
              | None -> 1
            in
            let speedup4 =
              List.fold_left
                (fun acc r ->
                  match (row_field "jobs" r, row_field "speedup" r) with
                  | Some 4.0, Some s -> Some s
                  | _ -> acc)
                None rows
            in
            (match speedup4 with
            | Some s when require_scaling && cores >= 4 ->
                Printf.printf "bench-gate: %s sharded speedup at 4 domains: %.2fx (%d cores)\n"
                  label s cores;
                if s < 1.5 then begin
                  Printf.eprintf
                    "bench-gate: %s sharded run scaled %.2fx at 4 domains on a %d-core box \
                     (floor 1.5x)\n"
                    label s cores;
                  failed := true
                end
            | Some s ->
                Printf.printf
                  "bench-gate: %s sharded speedup at 4 domains: %.2fx (%d-core box — \
                   single-core ceiling documented, scaling floor not applicable)\n"
                  label s cores
            | None -> ())
      in
      check_sharded ~label:fresh_path ~require_scaling:false fresh;
      let sharded_path = getenv "BENCH_GATE_SHARDED" "BENCH_PR10.json" in
      (match read_json_file sharded_path with
      | None ->
          Printf.printf "bench-gate: no sharded scaling table at %s, skipping\n" sharded_path
      | Some table -> check_sharded ~label:sharded_path ~require_scaling:true table);
      if !failed then exit 1;
      print_endline "bench-gate: OK"

let run () =
  P2p_core.Report.banner "P1  microbenchmarks (bechamel, OLS ns/run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raws = Benchmark.all cfg instances (Test.make_grouped ~name:"perf" tests) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raws in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (est :: _) -> est | Some [] | None -> nan
        in
        let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
        (estimate, [ name; Printf.sprintf "%.0f" estimate; Printf.sprintf "%.4f" r2 ]) :: acc)
      results []
  in
  let rows = List.sort (fun (a, _) (b, _) -> Float.compare a b) rows in
  P2p_core.Report.table ~header:[ "kernel"; "ns/run"; "r^2" ] (List.map snd rows)
