(* The experiment harness: one block per paper artefact (see DESIGN.md,
   Section 5, and EXPERIMENTS.md for a recorded snapshot).

   Every experiment prints the paper's predicted quantity or verdict next
   to the measured one.  Absolute run lengths are chosen so the whole
   harness finishes in a few minutes on a laptop. *)

module PS = P2p_pieceset.Pieceset
module Abs = P2p_branching.Abs
module GW = P2p_branching.Galton_watson
module Runner = P2p_runner.Runner
open P2p_core

let fmt = Report.fmt_float

let verdict_cell v = Stability.verdict_to_string v
let sim_cell (r : Classify.result) = Classify.verdict_to_string r.verdict

(* ------------------------------------------------------------------ *)

let e1 () =
  Report.banner "E1  Example 1 / Fig 1(a): single piece, peer seeds";
  let us = 0.5 and mu = 1.0 and gamma = 2.0 in
  let crit = Scenario.example1_threshold ~us ~mu ~gamma in
  Printf.printf "Paper: stable iff lambda0 < U_s/(1-mu/gamma) = %.3f (mu<gamma case)\n" crit;
  let rows =
    List.map
      (fun lambda0 ->
        let p = Scenario.example1 ~lambda0 ~us ~mu ~gamma in
        let r = Classify.run ~horizon:3000.0 ~seed:11 p in
        let delta = lambda0 -. crit in
        [
          fmt lambda0;
          verdict_cell (Stability.classify p);
          sim_cell r;
          fmt r.growth_rate;
          (if delta > 0.0 then fmt delta else "-");
          fmt r.mean_n;
        ])
      [ 0.5; 0.8; 0.95; 1.05; 1.2; 1.5; 2.0 ]
  in
  Report.table
    ~header:[ "lambda0"; "theory"; "simulated"; "dN/dt"; "Delta (pred.)"; "mean N" ]
    rows;
  Report.subsection "gamma <= mu: stable at any load (tiny fixed seed)";
  let rows =
    List.map
      (fun lambda0 ->
        let p = Scenario.example1 ~lambda0 ~us:0.05 ~mu ~gamma:0.5 in
        let r = Classify.run ~horizon:2000.0 ~seed:12 p in
        [ fmt lambda0; verdict_cell (Stability.classify p); sim_cell r; fmt r.mean_n ])
      [ 1.0; 5.0; 20.0 ]
  in
  Report.table ~header:[ "lambda0"; "theory"; "simulated"; "mean N" ] rows

(* ------------------------------------------------------------------ *)

let e2 () =
  Report.banner "E2  Example 2 / Fig 1(b): two complementary classes";
  print_endline "Paper: stable iff lambda12 < 2*lambda34 and lambda34 < 2*lambda12.";
  let rows =
    List.map
      (fun (l12, l34) ->
        let p = Scenario.example2 ~lambda12:l12 ~lambda34:l34 ~mu:1.0 in
        let r = Classify.run ~horizon:3000.0 ~seed:21 p in
        [
          fmt l12;
          fmt l34;
          Report.fmt_bool (l12 < 2.0 *. l34 && l34 < 2.0 *. l12);
          verdict_cell (Stability.classify p);
          sim_cell r;
          fmt r.mean_n;
          string_of_int r.final_n;
        ])
      [ (1.0, 1.0); (1.0, 0.7); (1.4, 0.8); (1.0, 0.4); (0.4, 1.0); (2.0, 0.6) ]
  in
  Report.table
    ~header:[ "l12"; "l34"; "paper ineqs"; "theory"; "simulated"; "mean N"; "final N" ]
    rows

(* ------------------------------------------------------------------ *)

let e3 () =
  Report.banner "E3  Example 3 / Fig 1(c): one-piece arrivals";
  let mu = 1.0 and gamma = 1.5 in
  let rho = mu /. gamma in
  Printf.printf
    "Paper: stable iff lambda_i + lambda_j < lambda_k (2+rho)/(1-rho) = lambda_k * %.2f\n"
    ((2.0 +. rho) /. (1.0 -. rho));
  let rows =
    List.map
      (fun ((l1, l2, l3), gamma) ->
        let p = Scenario.example3 ~lambda1:l1 ~lambda2:l2 ~lambda3:l3 ~mu ~gamma in
        let r = Classify.run ~horizon:2500.0 ~seed:31 p in
        [
          Printf.sprintf "(%g,%g,%g)" l1 l2 l3;
          (if Float.is_finite gamma then fmt gamma else "inf");
          verdict_cell (Stability.classify p);
          sim_cell r;
          fmt r.mean_n;
          string_of_int r.final_n;
        ])
      [
        ((1.0, 1.0, 1.0), gamma);
        ((1.5, 1.2, 1.0), gamma);
        ((3.0, 3.0, 0.7), gamma);
        ((0.2, 1.0, 1.0), gamma);
        ((1.0, 1.0, 1.3), infinity);
        ((1.3, 1.0, 1.0), infinity);
      ]
  in
  Report.table
    ~header:[ "(l1,l2,l3)"; "gamma"; "theory"; "simulated"; "mean N"; "final N" ]
    rows;
  (* fluid-limit cross check at the stable point *)
  let p = Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu ~gamma in
  (match Fluid.equilibrium p ~init:(Fluid.of_state ~k:3 (State.create ())) with
  | Some eq ->
      let stats, _ =
        Sim_markov.run_seeded ~seed:32 ~sample_every:2.0 (Sim_markov.default_config p)
          ~horizon:4000.0
      in
      let est = P2p_stats.Batch_means.of_int_samples stats.samples in
      Report.kv
        [
          ("fluid equilibrium n (baseline [11])", fmt (Fluid.total eq));
          ("stochastic time-average n", fmt stats.time_avg_n);
          ( "batch-means 95% interval",
            Printf.sprintf "%s +/- %s" (fmt est.mean) (fmt est.half_width) );
        ]
  | None -> print_endline "  fluid equilibrium not found (unexpected)")

(* ------------------------------------------------------------------ *)

let e4 () =
  Report.banner "E4  Fig 2: missing piece syndrome group decomposition";
  let k = 4 in
  let params = Scenario.flash_crowd ~k ~lambda:1.0 ~us:0.2 ~mu:1.0 ~gamma:2.0 in
  let piece = Stability.binding_piece params in
  let thr = Stability.threshold params ~piece in
  let delta = Params.lambda_total params -. thr in
  Printf.printf "Transient setup: threshold %.3f < lambda 1.0; predicted club growth %.3f/t\n"
    thr delta;
  let club = PS.remove 0 (PS.full ~k) in
  let config = { (Sim_agent.default_config params) with initial = [ (club, 300) ] } in
  let stats, _ = Sim_agent.run_seeded ~seed:41 ~sample_every:10.0 config ~horizon:600.0 in
  let rows = ref [] in
  Array.iteri
    (fun i ((t, g) : float * Sim_agent.groups) ->
      if i mod 6 = 0 then
        rows :=
          [
            fmt t;
            string_of_int g.young;
            string_of_int g.infected;
            string_of_int g.gifted;
            string_of_int g.one_club;
            string_of_int g.former_one_club;
            string_of_int (Sim_agent.groups_total g);
          ]
          :: !rows)
    stats.group_samples;
  Report.table
    ~header:[ "time"; "young"; "infected"; "gifted"; "one-club"; "former"; "total" ]
    (List.rev !rows);
  let fit = Classify.of_samples stats.samples in
  Report.kv
    [
      ("measured growth rate", fmt fit.growth_rate);
      ("paper-predicted Delta", fmt delta);
      ("one-club time fraction", fmt stats.one_club_time_fraction);
    ]

(* ------------------------------------------------------------------ *)

let e5 () =
  Report.banner "E5  Theorem 1 phase diagram: theory vs simulation";
  let k = 3 and mu = 1.0 and gamma = 2.0 in
  Printf.printf "K=%d mu=%g gamma=%g, empty-handed arrivals; cells: theory/simulated\n" k mu gamma;
  let lambdas = [ 0.5; 1.0; 1.5; 2.0; 2.5 ] in
  let seeds = [ 0.4; 0.8; 1.2; 1.6 ] in
  let agree = ref 0 and total = ref 0 and borderline = ref 0 in
  let rows =
    List.map
      (fun lambda ->
        fmt lambda
        :: List.map
             (fun us ->
               let p = Scenario.flash_crowd ~k ~lambda ~us ~mu ~gamma in
               let theory = Stability.classify p in
               let sim = (Classify.run ~horizon:1600.0 ~seed:51 p).verdict in
               let tsym =
                 match theory with
                 | Stability.Positive_recurrent -> "+"
                 | Stability.Transient -> "-"
                 | Stability.Borderline -> "0"
               in
               let ssym =
                 match sim with
                 | Classify.Appears_stable -> "+"
                 | Classify.Appears_unstable -> "-"
                 | Classify.Inconclusive -> "?"
               in
               (match theory with
               | Stability.Borderline -> incr borderline
               | Stability.Positive_recurrent | Stability.Transient ->
                   incr total;
                   if tsym = ssym then incr agree);
               tsym ^ "/" ^ ssym)
             seeds)
      lambdas
  in
  Report.table ~header:("lambda\\U_s" :: List.map fmt seeds) rows;
  Printf.printf "agreement on non-borderline cells: %d/%d\n" !agree !total

(* ------------------------------------------------------------------ *)

let e6 () =
  Report.banner "E6  Corollary: dwell long enough to upload one piece";
  let k = 4 and mu = 1.0 in
  print_endline
    "Paper: with gamma <= mu (mean dwell >= one upload time) the system is\n\
     stable for any arrival rate and any positive piece inflow.";
  (* Note gamma = mu is the critical point of the peer-seed branching:
     stable but with enormous boom-bust excursions, so the sweep uses a
     clear margin (gamma = 0.8 < mu) plus one critical and one transient
     row for contrast. *)
  let rows =
    List.map
      (fun (lambda, gamma) ->
        let p = Scenario.flash_crowd ~k ~lambda ~us:0.05 ~mu ~gamma in
        let r = Classify.run ~horizon:1500.0 ~seed:61 p in
        [
          fmt lambda;
          fmt gamma;
          verdict_cell (Stability.classify p);
          sim_cell r;
          fmt r.mean_n;
        ])
      [ (1.0, 0.8); (4.0, 0.8); (12.0, 0.8); (1.0, 0.5); (1.0, 1.3) ]
  in
  Report.table ~header:[ "lambda"; "gamma"; "theory"; "simulated"; "mean N" ] rows;
  Report.subsection "insensitivity to the dwell distribution (conclusion's conjecture)";
  let params = Scenario.flash_crowd ~k ~lambda:2.0 ~us:0.05 ~mu ~gamma:0.7 in
  let rows =
    List.map
      (fun (name, dwell) ->
        let config = { (Sim_agent.default_config params) with dwell } in
        let stats, _ = Sim_agent.run_seeded ~seed:62 config ~horizon:1500.0 in
        let r = Classify.of_samples stats.samples in
        [ name; sim_cell r; fmt stats.time_avg_n; fmt stats.mean_sojourn ])
      [
        ("exponential", Sim_agent.Exp_dwell);
        ("deterministic", Sim_agent.Deterministic_dwell);
        ("Erlang-4", Sim_agent.Erlang_dwell 4);
      ]
  in
  Report.table ~header:[ "dwell law"; "simulated"; "mean N"; "mean sojourn" ] rows

(* ------------------------------------------------------------------ *)

let e7 () =
  Report.banner "E7  Theorem 14: piece-selection policy insensitivity";
  print_endline "Paper: the stability region is the same for every useful policy.";
  let stable = Scenario.flash_crowd ~k:3 ~lambda:0.9 ~us:0.8 ~mu:1.0 ~gamma:2.0 in
  let transient = Scenario.flash_crowd ~k:3 ~lambda:1.3 ~us:0.3 ~mu:1.0 ~gamma:infinity in
  let policies =
    [ Policy.random_useful; Policy.rarest_first; Policy.most_common_first; Policy.sequential ]
  in
  let rows =
    List.map
      (fun (policy : Policy.t) ->
        let run p seed =
          let config = { (Sim_agent.default_config p) with policy } in
          let stats, _ = Sim_agent.run_seeded ~seed config ~horizon:2200.0 in
          Classify.of_samples stats.samples
        in
        let rs = run stable 71 and rt = run transient 72 in
        [ policy.name; sim_cell rs; fmt rs.mean_n; sim_cell rt; fmt rt.growth_rate ])
      policies
  in
  Report.table
    ~header:
      [ "policy"; "stable cfg verdict"; "mean N"; "transient cfg verdict"; "dN/dt" ]
    rows

(* ------------------------------------------------------------------ *)

let e8 () =
  Report.banner "E8  Theorem 15: network coding with gifted arrivals";
  Report.subsection "paper's numeric example, q = 64, K = 200";
  Report.kv
    [
      ("paper: transient if f <= 0.00507; computed",
       fmt (Stability.Coded.transient_f_threshold ~q:64 ~k:200));
      ("paper: recurrent if f >= 0.00516; computed (exact Eq. 55)",
       fmt (Stability.Coded.recurrent_f_threshold_exact ~q:64 ~k:200));
      ("paper's displayed approximation q^2/((q-1)^2 K)",
       fmt (Stability.Coded.recurrent_f_threshold_paper ~q:64 ~k:200));
    ];
  let q = 16 and k = 8 in
  Report.subsection
    (Printf.sprintf "reduced-scale simulation, q=%d K=%d (thresholds %.4f / %.4f)" q k
       (Stability.Coded.transient_f_threshold ~q ~k)
       (Stability.Coded.recurrent_f_threshold_exact ~q ~k));
  (* Replicated: each f runs R independent replications through the
     multicore runner (deterministic streams, so the table is
     bit-reproducible for every jobs count); the sim verdict is the
     replication majority and mean N carries a 95% CI. *)
  let reps = 8 in
  let rows =
    List.map
      (fun f ->
        let g = { Stability.Coded.q; k; us = 0.0; mu = 1.0; gamma = infinity;
                  lambda0 = 1.0 -. f; lambda1 = f } in
        let config = Sim_coded.of_gift g in
        let results, _ =
          Runner.run_map ~master_seed:81 ~replications:reps (fun ~rng ~index:_ ->
              let s = Sim_coded.run ~rng config ~horizon:900.0 in
              let r = Classify.of_samples s.samples in
              (s.time_avg_n, r.growth_rate, r.verdict))
        in
        let avg = P2p_stats.Welford.create () in
        let growth = P2p_stats.Welford.create () in
        let stable = ref 0 in
        Array.iter
          (function
            | Some (n, g, v) ->
                P2p_stats.Welford.add avg n;
                P2p_stats.Welford.add growth g;
                if v = Classify.Appears_stable then incr stable
            | None -> ())
          results;
        let lo, hi = P2p_stats.Welford.confidence_interval avg ~z:1.96 in
        [
          fmt f;
          verdict_cell (Stability.Coded.classify g);
          Printf.sprintf "appears-stable %d/%d" !stable reps;
          fmt (P2p_stats.Welford.mean avg);
          Printf.sprintf "[%s, %s]" (fmt lo) (fmt hi);
          fmt (P2p_stats.Welford.mean growth);
          (if Stability.Coded.uncoded_equivalent_is_transient ~k ~f then "transient" else "-");
        ])
      [ 0.02; 0.06; 0.10; 0.20; 0.35; 0.60 ]
  in
  Report.table
    ~header:
      [ "f"; "coded theory"; "coded sim"; "mean N"; "95% CI"; "dN/dt"; "uncoded theory" ]
    rows;
  Report.subsection "uncoded contrast, simulated (f = 0.35: coded stable, uncoded transient)";
  let uncoded = Scenario.gift_uncoded ~k ~lambda_total:1.0 ~f:0.35 ~mu:1.0 in
  let r = Classify.run ~horizon:900.0 ~seed:82 uncoded in
  Report.kv
    [
      ("uncoded theory", verdict_cell (Stability.classify uncoded));
      ("uncoded simulated", sim_cell r);
      ("uncoded growth rate", fmt r.growth_rate);
    ]

(* ------------------------------------------------------------------ *)

let e9 () =
  Report.banner "E9  Section VI: autonomous branching system constants";
  let k = 4 and mu = 1.0 and gamma = 2.0 in
  Printf.printf "K=%d mu=%g gamma=%g; paper limits: m_b -> K/(1-rho)=%.3f, m_f -> 1/(1-rho)=%.3f\n"
    k mu gamma
    (float_of_int k /. 0.5) (1.0 /. 0.5);
  let rng = P2p_prng.Rng.of_seed 91 in
  let rows =
    List.map
      (fun xi ->
        let p = { Abs.k; mu; gamma; xi } in
        let gw = Abs.to_galton_watson p in
        let generic = GW.expected_progeny gw in
        let mc = GW.mean_progeny_monte_carlo ~rng gw ~root:1 ~replications:20_000 ~cap:1_000_000 in
        [
          fmt xi;
          fmt (Abs.m_b p);
          fmt generic.(0);
          fmt (Abs.m_f p);
          fmt generic.(1);
          fmt (P2p_stats.Welford.mean mc);
          fmt (Abs.m_g p ~c_size:1);
        ])
      [ 0.0; 0.02; 0.05; 0.1 ]
  in
  Report.table
    ~header:
      [ "xi"; "m_b closed"; "m_b solve"; "m_f closed"; "m_f solve"; "m_f MC"; "m_g(|C|=1)" ]
    rows;
  Report.kv
    [
      ( "finiteness condition (6) LHS at xi=0.1",
        fmt (Abs.finiteness_lhs { Abs.k; mu; gamma; xi = 0.1 }) );
      ( "criticality (spectral radius) at xi=0.05",
        fmt (GW.criticality (Abs.to_galton_watson { Abs.k; mu; gamma; xi = 0.05 })) );
    ]

(* ------------------------------------------------------------------ *)

let e10 () =
  Report.banner "E10  Fig 3 / Section VIII-D: the mu = infinity borderline process";
  let cfg = { Mu_infinity.k = 3; lambda = 1.0 } in
  let rng = P2p_prng.Rng.of_seed 101 in
  let run = Mu_infinity.simulate rng cfg ~init:{ Mu_infinity.n = 50; pieces = 2 } ~steps:400_000 in
  Report.kv
    [
      ("E[Z] (paper: K-1 = zero drift)", fmt (Mu_infinity.z_expectation ~k:3));
      ("measured mean top-layer increment", fmt run.mean_top_increment);
      ("max club size reached", string_of_int run.max_n);
    ];
  Report.subsection "null recurrence: truncated mean excursion length grows with the cap";
  let rows =
    List.map
      (fun cap ->
        let rng = P2p_prng.Rng.of_seed 102 in
        let excs = Mu_infinity.excursions rng cfg ~start_n:3 ~count:2000 ~cap_steps:cap in
        let total =
          List.fold_left (fun acc (e : Mu_infinity.excursion) -> acc + e.length) 0 excs
        in
        let capped = List.length (List.filter (fun (e : Mu_infinity.excursion) -> e.capped) excs) in
        [ string_of_int cap; fmt (float_of_int total /. 2000.0); string_of_int capped ])
      [ 100; 1_000; 10_000; 100_000 ]
  in
  Report.table ~header:[ "cap (steps)"; "truncated mean length"; "capped runs" ] rows;
  Report.subsection "the watched process emerges from finite mu (weak-limit check)";
  print_endline
    "Watching the finite-mu chain on slow states and comparing the observed\n\
     top-layer jump law with the analytic coin-flip law (TV distance):";
  let pmf = Watched.analytic_jump_pmf ~k:3 ~max_drop:8 in
  let rows =
    List.map
      (fun mu ->
        let rng = P2p_prng.Rng.of_seed 104 in
        let tr = Watched.extract ~min_top_n:4 ~rng ~k:3 ~lambda:1.0 ~mu ~horizon:400.0 () in
        let jumps = List.fold_left (fun a (_, c) -> a + c) 0 tr.top_layer_jumps in
        [
          fmt mu;
          string_of_int jumps;
          fmt (Watched.total_variation pmf tr.top_layer_jumps);
          fmt tr.fast_time_fraction;
        ])
      [ 2.0; 10.0; 50.0; 200.0 ]
  in
  Report.table
    ~header:[ "mu"; "observed jumps"; "TV to coin-flip law"; "fast-time fraction" ]
    rows;
  Report.subsection "Conjecture 17: finite mu, symmetric single-piece arrivals (K=3)";
  print_endline
    "Witness: the ratio of time-average N at horizon 4000 vs 1000 (averaged\n\
     over 4 seeds).  Positive recurrence -> ratio near 1; null recurrence ->\n\
     the time average keeps growing with the horizon.";
  let rows =
    List.map
      (fun mu ->
        (* 4 replications per horizon, spread over the available cores. *)
        let avg horizon =
          let summary =
            Runner.run_summary ~metrics:[ "mean N" ] ~master_seed:1040 ~replications:4
              (fun ~rng ~index:_ ->
                let p = Scenario.symmetric_singletons ~k:3 ~lambda:1.0 ~mu in
                let stats, _ = Sim_markov.run ~rng (Sim_markov.default_config p) ~horizon in
                Runner.rep [| stats.time_avg_n |])
          in
          P2p_stats.Welford.mean (snd (List.hd summary.stats))
        in
        let short = avg 1000.0 and long = avg 4000.0 in
        [ fmt mu; fmt short; fmt long; fmt (long /. short) ])
      [ 0.3; 1.0; 3.0; 10.0 ]
  in
  Report.table
    ~header:[ "mu/lambda"; "mean N (T=1000)"; "mean N (T=4000)"; "growth ratio" ]
    rows;
  print_endline
    "(conjecture: positive recurrent below some a_K, null recurrent above --\n\
     a growth ratio well above 1 signals the null-recurrent knife edge)"

(* ------------------------------------------------------------------ *)

let e11 () =
  Report.banner "E11  Foster-Lyapunov certificate: exact drift of W";
  let cases =
    [
      ("gamma finite, mu<gamma (Eq. 11)",
       Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:1.5,
       [ 500; 3000 ]);
      ("gamma = inf (Eq. 12)",
       Scenario.flash_crowd ~k:2 ~lambda:0.5 ~us:1.0 ~mu:1.0 ~gamma:infinity,
       [ 500; 3000 ]);
      ("gamma <= mu (Eq. 43, W')",
       Params.make ~k:2 ~us:0.5 ~mu:1.0 ~gamma:0.5 ~arrivals:[ (PS.empty, 5.0) ],
       [ 2000; 10000 ]);
    ]
  in
  List.iter
    (fun (label, p, sizes) ->
      Report.subsection label;
      let coeffs = Lyapunov.default_coeffs p in
      let points = Lyapunov.scan_class_one p coeffs ~sizes in
      let worst_small =
        List.fold_left
          (fun acc (pt : Lyapunov.scan_point) ->
            if pt.n = List.nth sizes 0 then Float.max acc pt.drift_per_peer else acc)
          neg_infinity points
      in
      let worst_large =
        List.fold_left
          (fun acc (pt : Lyapunov.scan_point) ->
            if pt.n = List.nth sizes 1 then Float.max acc pt.drift_per_peer else acc)
          neg_infinity points
      in
      Report.kv
        [
          ("theory", verdict_cell (Stability.classify p));
          ( Printf.sprintf "worst QW/n over one-type states, n=%d" (List.nth sizes 0),
            fmt worst_small );
          ( Printf.sprintf "worst QW/n over one-type states, n=%d" (List.nth sizes 1),
            fmt worst_large );
          ("negative at large n (Lemma 12)", Report.fmt_bool (worst_large < 0.0));
        ])
    cases

(* ------------------------------------------------------------------ *)

let e12 () =
  Report.banner "E12  Appendix bounds: Kingman (Prop. 20) and M/GI/inf (Lemma 21)";
  (* Crossing frequencies are embarrassingly parallel: each replication is
     an independent sample path, so both sweeps go through the runner. *)
  let frequency ~master_seed ~replications crossed =
    let summary =
      Runner.run_summary ~metrics:[ "crossed" ] ~master_seed ~replications
        (fun ~rng ~index:_ -> Runner.rep [| (if crossed ~rng then 1.0 else 0.0) |])
    in
    P2p_stats.Welford.mean (snd (List.hd summary.stats))
  in
  Report.subsection "Kingman bound on boundary crossing of a compound Poisson path";
  let batch = P2p_queueing.Compound_poisson.geometric_total_progeny ~mean_offspring:0.5 in
  let rows =
    List.map
      (fun b ->
        let bound =
          P2p_queueing.Compound_poisson.kingman_bound ~arrival_rate:1.0 ~batch ~b ~slope:3.0
        in
        let freq =
          frequency ~master_seed:121 ~replications:300 (fun ~rng ->
              (P2p_queueing.Compound_poisson.simulate_crossing ~rng ~arrival_rate:1.0 ~batch
                 ~horizon:1500.0 ~b ~slope:3.0)
                .crossed)
        in
        [ fmt b; fmt bound; fmt freq ])
      [ 5.0; 15.0; 40.0 ]
  in
  Report.table ~header:[ "B"; "Kingman bound"; "empirical frequency" ] rows;
  Report.subsection "Lemma 21 maximal bound for M/GI/inf";
  let service = P2p_queueing.Mg_inf.Exponential 1.0 in
  let rows =
    List.map
      (fun b ->
        let bound =
          P2p_queueing.Bounds.mg_inf_maximal_bound ~arrival_rate:1.0 ~mean_service:1.0 ~b
            ~eps:1.0
        in
        let freq =
          frequency ~master_seed:122 ~replications:200 (fun ~rng ->
              P2p_queueing.Mg_inf.exceedance_ever ~rng ~arrival_rate:1.0 ~service ~horizon:400.0
                ~boundary:(fun t -> b +. t))
        in
        [ fmt b; fmt bound; fmt freq ])
      [ 8.0; 12.0; 20.0 ]
  in
  Report.table ~header:[ "B"; "Lemma 21 bound"; "empirical frequency" ] rows

(* ------------------------------------------------------------------ *)

let e13 () =
  Report.banner "E13  Section VIII-C: faster retry after unsuccessful contacts";
  print_endline
    "Push model with clock speedup eta after a useless contact.  The paper\n\
     predicts the speedup WORSENS the missing piece syndrome when peers\n\
     arrive with pieces: one-club members (whose contacts are mostly\n\
     useless) get boosted and feed the gifted peers' downloads, so a gifted\n\
     peer finishes after uploading the rare piece only ~(K-|C|)/eta + mu/gamma\n\
     times instead of K-|C| + mu/gamma.\n";
  (* K=3; piece 1 is rare: it enters only with type-{1} gifted arrivals.
     Type {2,3} peers (missing only piece 1) arrive at rate 1.0.
     eta = 1: threshold for piece 1 = 0.4*(3)/(1-0.5) = 2.4 > 1.4 (stable).
     eta large: each gifted peer uploads only ~(2/eta + 0.5) copies before
     seeding, so departures fall to ~0.4*(2/eta+0.5)/(1-0.5) < 1.4
     (effectively transient). *)
  let k = 3 in
  let params =
    Params.make ~k ~us:0.0 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.of_list [ 1; 2 ], 1.0); (PS.singleton 0, 0.4) ]
  in
  let rho = Params.mu_over_gamma params in
  let predicted_departure eta = 0.4 *. ((2.0 /. eta) +. rho) /. (1.0 -. rho) in
  Report.kv
    [
      ("eta = 1 theory (Theorem 1)", verdict_cell (Stability.classify params));
      ("arrival rate of club candidates", fmt 1.4);
      ("predicted club departure rate, eta=1", fmt (predicted_departure 1.0));
      ("predicted club departure rate, eta=10", fmt (predicted_departure 10.0));
    ];
  (* The paper's argument is first-order in the non-club fraction, so we
     probe a deep one-club (3000 peers): there, club members are
     essentially always boosted while gifted peers (whose uploads almost
     always succeed) never are — the exact asymmetry of the push model.
     Predicted net club drift = 1.0 − predicted departure rate. *)
  let club = PS.of_list [ 1; 2 ] in
  let rows =
    List.map
      (fun eta ->
        let config =
          { (Sim_agent.default_config params) with eta; initial = [ (club, 3000) ] }
        in
        let stats, _ = Sim_agent.run_seeded ~seed:131 config ~horizon:400.0 in
        let r = Classify.of_samples stats.samples in
        [
          fmt eta;
          fmt (1.0 -. predicted_departure eta);
          fmt r.growth_rate;
          fmt stats.one_club_time_fraction;
          string_of_int stats.final_n;
        ])
      [ 1.0; 3.0; 10.0 ]
  in
  Report.table
    ~header:[ "eta"; "predicted dN/dt"; "measured dN/dt"; "one-club fraction"; "final N" ]
    rows;
  print_endline
    "(negative drift at eta=1 flipping to positive growth at large eta = the\n\
     speedup worsening the missing piece syndrome, the Section VIII-C caveat)"

(* ------------------------------------------------------------------ *)

let e14 () =
  Report.banner "E14  Quasi-stability: onset time of the one-club (conclusion's future work)";
  print_endline
    "Theorem 14: the stability REGION is insensitive to the piece-selection\n\
     policy.  The paper's conclusion asks about the LONGEVITY of the good\n\
     quasi-equilibrium in provably transient systems.  We measure, from an\n\
     empty start, the first time the one-club holds 60% of a population of\n\
     at least 80 peers (median over 9 seeds; '-' = not within the horizon).";
  let k = 4 in
  let params = Scenario.flash_crowd ~k ~lambda:1.0 ~us:0.35 ~mu:1.0 ~gamma:infinity in
  Printf.printf "config: %s (threshold %.2f < lambda %.2f)\n"
    (verdict_cell (Stability.classify params))
    (Stability.threshold params ~piece:0)
    (Params.lambda_total params);
  let horizon = 2500.0 in
  let onset_for (policy : Policy.t) seed =
    (* First find which piece went rare, then re-run with the group
       tracker pointed at it. *)
    let base = { (Sim_agent.default_config params) with policy } in
    let _, final = Sim_agent.run_seeded ~seed base ~horizon in
    let rare = if State.n final = 0 then 0 else Metrics.rarest_piece final ~k in
    let stats, _ = Sim_agent.run_seeded ~seed { base with rare_piece = rare } ~horizon in
    Metrics.club_onset stats ~fraction:0.6 ~min_population:80
  in
  let rows =
    List.map
      (fun (policy : Policy.t) ->
        let onsets = List.filter_map (fun s -> onset_for policy (1400 + s)) (List.init 9 Fun.id) in
        let detected = List.length onsets in
        let median =
          if detected = 0 then "-"
          else begin
            let sorted = List.sort Float.compare onsets in
            fmt (List.nth sorted (detected / 2))
          end
        in
        [ policy.name; Printf.sprintf "%d/9" detected; median ])
      [ Policy.random_useful; Policy.rarest_first; Policy.most_common_first; Policy.sequential ]
  in
  Report.table ~header:[ "policy"; "onset detected"; "median onset time" ] rows;
  print_endline
    "(rarest-first postpones the syndrome relative to most-common-first even\n\
     though all four policies are transient here — selection shapes\n\
     longevity, not the region)"

(* ------------------------------------------------------------------ *)

let e15 () =
  Report.banner "E15  Exact stationary analysis (truncated chain)";
  print_endline
    "Theorem 1(b) promises E[N] < infinity inside the region.  Exact\n\
     stationary distributions on a truncated space give the quantitative\n\
     version: E[N] finite and blowing up only at the boundary.";
  Report.subsection "K=1 gamma=inf is M/M/1: solver vs closed form";
  let lambda = 0.6 and us = 1.0 in
  let p = Params.make ~k:1 ~us ~mu:1.0 ~gamma:infinity ~arrivals:[ (PS.empty, lambda) ] in
  let chain = Truncated.build p ~n_max:120 in
  let pi = Truncated.stationary chain in
  let rho = lambda /. us in
  Report.kv
    [
      ("exact E[N]", fmt (Truncated.mean_population chain pi));
      ("M/M/1 rho/(1-rho)", fmt (rho /. (1.0 -. rho)));
      ("exact P(empty)", fmt (Truncated.probability_empty chain pi));
      ("M/M/1 1-rho", fmt (1.0 -. rho));
    ];
  Report.subsection "E[N] along a ray to the Theorem 1 boundary (Example 1, threshold 1)";
  let rows =
    List.map
      (fun lambda0 ->
        let p = Scenario.example1 ~lambda0 ~us:0.5 ~mu:1.0 ~gamma:2.0 in
        let n_max = Int.min 240 (int_of_float (20.0 /. (1.0 -. lambda0))) in
        let chain = Truncated.build p ~n_max in
        let pi = Truncated.stationary ~tol:1e-9 chain in
        [
          fmt lambda0;
          fmt (Truncated.mean_population chain pi);
          fmt (Truncated.truncation_mass_at_cap chain pi);
        ])
      [ 0.5; 0.7; 0.85; 0.93 ]
  in
  Report.table ~header:[ "lambda0"; "exact E[N]"; "cap mass" ] rows;
  Report.subsection "exact vs simulated E[N], K=2 swarm";
  let p2 = Params.make ~k:2 ~us:0.8 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.5) ] in
  let chain2 = Truncated.build p2 ~n_max:22 in
  let pi2 = Truncated.stationary chain2 in
  let stats, _ = Sim_markov.run_seeded ~seed:151 (Sim_markov.default_config p2) ~horizon:15000.0 in
  Report.kv
    [
      ("exact E[N]", fmt (Truncated.mean_population chain2 pi2));
      ("simulated E[N]", fmt stats.time_avg_n);
      ( "exact mean peer seeds (Little: lambda/gamma = 0.25)",
        fmt (Truncated.mean_type_count chain2 pi2 (PS.full ~k:2)) );
    ]

(* ------------------------------------------------------------------ *)

let e16 () =
  Report.banner "E16  Theorem 15's chain, exactly: the subspace-type Markov process";
  print_endline
    "For small q^K the subspace lattice is enumerable, making the coded\n\
     chain exactly computable: arrival laws from the span distribution of\n\
     random gift matrices, transfer rates from exact cover-lift\n\
     probabilities, the Eq. (56) Lyapunov drift, and truncated stationary\n\
     distributions.  Setting: q=2, K=2, lambda0 = lambda1 = 0.5.";
  let make us =
    Coded_chain.create
      { Coded_chain.q = 2; k = 2; us; mu = 1.0; gamma = infinity;
        arrivals = [ (0, 0.5); (1, 0.5) ] }
  in
  let profile us =
    { Stability.Coded.pq = 2; pk = 2; pus = us; pmu = 1.0; pgamma = infinity;
      parrivals = [ (0, 0.5); (1, 0.5) ] }
  in
  let rows =
    List.map
      (fun us ->
        let t = make us in
        let verdict = Stability.Coded.classify_profile (profile us) in
        let rng = P2p_prng.Rng.of_seed 161 in
        let s =
          Coded_chain.simulate ~rng t ~init:(Coded_chain.empty_state t) ~horizon:2500.0
        in
        let exact =
          match verdict with
          | Stability.Positive_recurrent ->
              let solved = Coded_chain.stationary t ~n_max:25 in
              Printf.sprintf "%s (cap %.1e)" (fmt solved.mean_n) solved.mass_at_cap
          | Stability.Transient | Stability.Borderline -> "-"
        in
        let coeffs = Coded_chain.default_coeffs t in
        let worst_drift =
          List.fold_left
            (fun acc (pt : Coded_chain.scan_point) -> Float.max acc pt.drift_per_peer)
            neg_infinity
            (Coded_chain.scan_hyperplane_states t coeffs ~sizes:[ 3000 ])
        in
        [
          fmt us;
          verdict_cell verdict;
          fmt s.time_avg_n;
          exact;
          fmt worst_drift;
        ])
      [ 0.0; 0.5; 2.0 ]
  in
  Report.table
    ~header:
      [ "U_s"; "theory (Thm 15)"; "sim mean N"; "exact E[N]"; "worst QW/n @ club n=3000" ]
    rows;
  print_endline
    "(the Eq. 56 drift flips sign exactly where Theorem 15 says the region\n\
     boundary is; exact E[N] from the truncated subspace-type chain)"

(* ------------------------------------------------------------------ *)

let e17 () =
  Report.banner "E17  Beyond the fully connected overlay (conclusion's future work)";
  print_endline
    "Contacts restricted to a dynamic random overlay: each arrival links to\n\
     'deg' uniform peers and keeps those links for life; only the fixed\n\
     seed stays globally reachable.  deg = inf recovers the paper's model\n\
     exactly.  Does the Theorem 1 region survive sparsification?";
  let stable = Scenario.flash_crowd ~k:3 ~lambda:0.9 ~us:0.8 ~mu:1.0 ~gamma:2.0 in
  let transient = Scenario.flash_crowd ~k:3 ~lambda:1.3 ~us:0.3 ~mu:1.0 ~gamma:infinity in
  let run params degree choice seed =
    let cfg = { (Sim_network.default_config params) with degree; choice } in
    Sim_network.run_seeded ~seed cfg ~horizon:1600.0
  in
  let degree_label = function None -> "inf" | Some d -> string_of_int d in
  Report.subsection "stable configuration (threshold 1.6 > lambda 0.9)";
  Report.table
    ~header:[ "deg"; "verdict"; "mean N"; "mean overlay degree"; "components at end" ]
    (List.map
       (fun degree ->
         let s, _ = run stable degree Sim_network.Random_useful 171 in
         let r = Classify.of_samples s.samples in
         [
           degree_label degree;
           Classify.verdict_to_string r.verdict;
           fmt s.time_avg_n;
           (if Float.is_nan s.mean_degree_time_avg then "-" else fmt s.mean_degree_time_avg);
           string_of_int (List.length s.final_component_sizes);
         ])
       [ None; Some 8; Some 4; Some 2; Some 1 ]);
  Report.subsection "transient configuration (threshold 0.3 < lambda 1.3)";
  Report.table
    ~header:[ "deg"; "verdict"; "dN/dt"; "final club fraction" ]
    (List.map
       (fun degree ->
         let s, _ = run transient degree Sim_network.Random_useful 172 in
         let r = Classify.of_samples s.samples in
         let _, club = s.club_samples.(Array.length s.club_samples - 1) in
         [
           degree_label degree;
           Classify.verdict_to_string r.verdict;
           fmt r.growth_rate;
           fmt club;
         ])
       [ None; Some 4; Some 2 ]);
  Report.subsection "piece selection on the overlay (stable config, deg = 4)";
  Report.table
    ~header:[ "piece choice"; "verdict"; "mean N"; "silent contacts" ]
    (List.map
       (fun (label, choice) ->
         let s, _ = run stable (Some 4) choice 173 in
         let r = Classify.of_samples s.samples in
         [
           label;
           Classify.verdict_to_string r.verdict;
           fmt s.time_avg_n;
           string_of_int s.silent_contacts;
         ])
       [
         ("random useful", Sim_network.Random_useful);
         ("rarest (global info)", Sim_network.Rarest_global);
         ("rarest (neighborhood info)", Sim_network.Rarest_local);
       ]);
  print_endline
    "(the stability region survives sparsification down to degree 1 here\n\
     because the fixed seed remains globally reachable; the overlay changes\n\
     the constants, not the verdicts -- supporting the paper's hope that the\n\
     results adapt to other topologies)"

(* ------------------------------------------------------------------ *)

let e18 () =
  Report.banner "E18  Heterogeneous peer classes (conclusion's future work)";
  print_endline
    "Two classes sharing one swarm: impatient peers (gamma = inf, leave on\n\
     completion) and sticky peers (mu = 1, gamma = 0.4, dwell mean 2.5).\n\
     The generalised seed-branching factor m_bar = (mix-weighted mu/gamma)\n\
     predicts the region; shifting arrival mass toward the sticky class\n\
     crosses m_bar = 1 and stabilises an otherwise hopeless load (the\n\
     heterogeneous version of the one-more-piece corollary).";
  let mix sticky =
    Hetero.make ~k:2 ~us:0.1
      ~classes:
        [
          { Hetero.label = "impatient"; mu = 1.0; gamma = infinity;
            arrivals = [ (PS.empty, 1.0) ] };
          { Hetero.label = "sticky"; mu = 1.0; gamma = 0.4;
            arrivals = [ (PS.empty, sticky) ] };
        ]
  in
  let rows =
    List.map
      (fun sticky ->
        let h = mix sticky in
        let m_bar = Hetero.mean_seed_offspring h ~piece:0 in
        let verdict = Hetero.classify_heuristic h in
        let s = Hetero.simulate_seeded ~seed:181 h ~horizon:2500.0 in
        let r = Classify.of_samples s.samples in
        [
          fmt sticky;
          fmt m_bar;
          fmt (Hetero.threshold h ~piece:0);
          verdict_cell verdict;
          sim_cell r;
          fmt s.time_avg_n;
        ])
      [ 0.05; 0.2; 0.45; 0.8; 1.5 ]
  in
  Report.table
    ~header:
      [ "sticky rate"; "m_bar"; "threshold"; "heuristic"; "simulated"; "mean N" ]
    rows;
  Report.subsection "per-class behaviour at sticky rate = 0.8";
  let s = Hetero.simulate_seeded ~seed:182 (mix 0.8) ~horizon:2500.0 in
  Report.table
    ~header:[ "class"; "mean population"; "mean sojourn" ]
    [
      [ "impatient"; fmt s.class_mean_n.(0); fmt s.class_mean_sojourn.(0) ];
      [ "sticky"; fmt s.class_mean_n.(1); fmt s.class_mean_sojourn.(1) ];
    ];
  print_endline
    "(the heuristic reduces exactly to Theorem 1 for a single class; a test\n\
     checks that identity)"

(* ------------------------------------------------------------------ *)

let e19 () =
  Report.banner "E19  Dwell-distribution insensitivity, exactly (conclusion's conjecture)";
  print_endline
    "The paper assumes Exp(gamma) peer-seed dwell and conjectures the\n\
     results hold for general laws.  Replacing Exp by Erlang-m of the same\n\
     mean keeps the chain Markov (method of stages), so the truncated\n\
     stationary machinery applies exactly.  K=2, U_s=0.8, mu=1, gamma=2,\n\
     lambda = 0.5.";
  let p = Params.make ~k:2 ~us:0.8 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.5) ] in
  let rows =
    List.map
      (fun m ->
        let ec = Erlang_chain.build p ~stages:m ~n_max:16 in
        let s = Erlang_chain.solve ec in
        [
          string_of_int m;
          string_of_int (Erlang_chain.state_count ec);
          fmt s.mean_n;
          fmt s.mean_seeds;
          fmt s.p_empty;
        ])
      [ 1; 2; 3 ]
  in
  Report.table
    ~header:[ "Erlang stages m"; "states"; "exact E[N]"; "exact E[seeds]"; "P(empty)" ]
    rows;
  print_endline
    "(E[seeds] = lambda/gamma = 0.25 exactly for every m — Little's law is\n\
     distribution-free; E[N] moves by under 1%.  m = 1 reproduces the\n\
     Exp-dwell Truncated solver to solver precision: a test checks it.)";
  Report.subsection "blow-up toward the boundary, by dwell shape (Example 1, threshold 1)";
  let rows =
    List.map
      (fun lambda0 ->
        let p1 = Scenario.example1 ~lambda0 ~us:0.5 ~mu:1.0 ~gamma:2.0 in
        let en stages =
          (Erlang_chain.solve ~tol:1e-9 (Erlang_chain.build p1 ~stages ~n_max:60)).mean_n
        in
        [ fmt lambda0; fmt (en 1); fmt (en 2) ])
      [ 0.4; 0.6; 0.75 ]
  in
  Report.table ~header:[ "lambda0"; "E[N], Exp dwell"; "E[N], Erlang-2 dwell" ] rows;
  print_endline
    "(the divergence happens at the same boundary for both laws — the\n\
     stability region, not just the means, is insensitive)"

(* ------------------------------------------------------------------ *)

let e20 () =
  Report.banner "E20  Degraded operation: seed outages and the onset of the syndrome";
  print_endline
    "The fixed seed follows an alternating renewal outage process with a\n\
     20-time-unit cycle; duty = mean_up / cycle.  Theorem 1 evaluated at the\n\
     effective rate U_s x duty predicts each verdict; the fault-injected\n\
     simulator votes with 6 replications per duty cycle.  With lambda = 0.6,\n\
     U_s = 1, gamma = inf the boundary sits at duty = 0.6.";
  let p = Scenario.flash_crowd ~k:3 ~lambda:0.6 ~us:1.0 ~mu:1.0 ~gamma:infinity in
  let reps = 6 and horizon = 1200.0 and cycle = 20.0 in
  let rows =
    List.map
      (fun duty ->
        let faults =
          if duty >= 1.0 then Faults.none
          else Faults.make ~outage:(duty *. cycle, (1.0 -. duty) *. cycle) ()
        in
        let config = { (Sim_markov.default_config p) with faults } in
        let results, _ =
          Runner.run_map ~master_seed:(2000 + int_of_float (duty *. 100.0)) ~replications:reps
            (fun ~rng ~index:_ ->
              let stats, _ = Sim_markov.run ~rng config ~horizon in
              ( (Classify.of_samples stats.samples).verdict,
                stats.time_avg_n,
                stats.outage_time /. stats.final_time ))
        in
        let results = Array.to_list results |> List.filter_map Fun.id in
        let stable =
          List.length (List.filter (fun (v, _, _) -> v = Classify.Appears_stable) results)
        in
        let mean f = List.fold_left (fun a r -> a +. f r) 0.0 results /. float_of_int reps in
        let theory = Stability.classify_effective p ~uptime_fraction:duty in
        [
          fmt duty;
          verdict_cell theory;
          Printf.sprintf "%d/%d stable" stable reps;
          fmt (mean (fun (_, n, _) -> n));
          fmt (mean (fun (_, _, o) -> o));
        ])
      [ 1.0; 0.85; 0.7; 0.5; 0.3 ]
  in
  Report.table
    ~header:[ "duty cycle"; "Theorem 1 @ eff U_s"; "simulated"; "mean N"; "down fraction" ]
    rows;
  print_endline
    "(the simulated majority flips from stable to unstable where the\n\
     effective-U_s verdict crosses the boundary at duty = 0.6: seed\n\
     downtime alone is enough to trigger the missing piece syndrome)"

(* ------------------------------------------------------------------ *)

let a1 () =
  Report.banner "A1  Ablation: robustness of the empirical stability classifier";
  print_endline
    "The simulation-based verdicts behind E1-E8 fit the growth of N_t over\n\
     the second half of the run.  This ablation re-classifies the same four\n\
     ground-truth configurations while varying horizon and seed.";
  let configs =
    [
      ("stable, wide margin", Scenario.flash_crowd ~k:3 ~lambda:0.6 ~us:1.0 ~mu:1.0 ~gamma:2.0);
      ("stable, 20% margin", Scenario.flash_crowd ~k:3 ~lambda:1.6 ~us:1.0 ~mu:1.0 ~gamma:2.0);
      ("transient, 25% over", Scenario.flash_crowd ~k:3 ~lambda:1.0 ~us:0.4 ~mu:1.0 ~gamma:infinity);
      ("transient, wide", Scenario.flash_crowd ~k:3 ~lambda:2.0 ~us:0.3 ~mu:1.0 ~gamma:infinity);
    ]
  in
  let rows =
    List.map
      (fun (label, p) ->
        let truth = Stability.classify p in
        let agree horizon =
          let votes =
            List.map
              (fun seed -> (Classify.run ~horizon ~seed p).verdict)
              [ 1601; 1602; 1603; 1604; 1605 ]
          in
          let matches =
            List.length
              (List.filter
                 (fun v ->
                   match (truth, v) with
                   | Stability.Positive_recurrent, Classify.Appears_stable -> true
                   | Stability.Transient, Classify.Appears_unstable -> true
                   | _ -> false)
                 votes)
          in
          Printf.sprintf "%d/5" matches
        in
        [ label; verdict_cell truth; agree 800.0; agree 1600.0; agree 3200.0 ])
      configs
  in
  Report.table ~header:[ "configuration"; "truth"; "T=800"; "T=1600"; "T=3200" ] rows;
  print_endline "(agreement should improve with the horizon; misses cluster near the boundary)"

let all : (string * (unit -> unit)) list =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7);
    ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13);
    ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19);
    ("e20", e20); ("a1", a1);
  ]
