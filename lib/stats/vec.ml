type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    (* The pushed element doubles as the fill value, so no dummy is needed
       and the array never holds values the caller did not supply. *)
    let bigger = Array.make (Int.max 16 (2 * t.len)) x in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len

let clear t = t.len <- 0
