type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  mutable sum : float;
  width : float;
}

let create ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  {
    lo;
    hi;
    bins = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    sum = 0.0;
    width = (hi -. lo) /. float_of_int bins;
  }

let add t x =
  t.total <- t.total + 1;
  t.sum <- t.sum +. x;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = if i >= Array.length t.bins then Array.length t.bins - 1 else i in
    t.bins.(i) <- t.bins.(i) + 1
  end

let count t = t.total
let underflow t = t.underflow
let overflow t = t.overflow

let bin_count t i =
  if i < 0 || i >= Array.length t.bins then invalid_arg "Histogram.bin_count: bad bin";
  t.bins.(i)

let bin_bounds t i =
  if i < 0 || i >= Array.length t.bins then invalid_arg "Histogram.bin_bounds: bad bin";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let fraction_at_or_above t x =
  if t.total = 0 then nan
  else begin
    let above = ref t.overflow in
    Array.iteri
      (fun i c ->
        let lo, _ = bin_bounds t i in
        if lo >= x then above := !above + c)
      t.bins;
    (* Count the partial bin containing x fully: conservative over-estimate
       at bin resolution, adequate for coarse tail summaries. *)
    float_of_int !above /. float_of_int t.total
  end

let mean t = if t.total = 0 then nan else t.sum /. float_of_int t.total

let same_shape a b =
  a.lo = b.lo && a.hi = b.hi && Array.length a.bins = Array.length b.bins

let merge a b =
  if not (same_shape a b) then invalid_arg "Histogram.merge: incompatible bin layouts";
  {
    lo = a.lo;
    hi = a.hi;
    bins = Array.init (Array.length a.bins) (fun i -> a.bins.(i) + b.bins.(i));
    underflow = a.underflow + b.underflow;
    overflow = a.overflow + b.overflow;
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    width = a.width;
  }

let pp fmt t =
  let max_count = Array.fold_left max 1 t.bins in
  Format.fprintf fmt "histogram n=%d underflow=%d overflow=%d@." t.total t.underflow t.overflow;
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let bar_len = c * 40 / max_count in
      Format.fprintf fmt "  [%8.3g, %8.3g) %6d %s@." lo hi c (String.make bar_len '#'))
    t.bins
