(** Minimal growable array with amortised O(1) [push].

    Replaces the [list ref] + [List.rev] + [Array.of_list] accumulation
    idiom on simulator sampling grids: a list cell plus a final array cell
    per sample becomes one amortised array slot, and the elements end up
    contiguous.  Not thread-safe; one owner per value. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val to_array : 'a t -> 'a array
(** Fresh array of the first [length] elements, in push order. *)

val clear : 'a t -> unit
(** Forgets the contents without shrinking the backing store. *)
