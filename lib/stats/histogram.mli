(** Fixed-bin histogram over a bounded range, with overflow bins.

    Used to record empirical distributions (sojourn times, one-club sizes,
    excursion lengths of the μ = ∞ process). *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [bins < 1] or [hi <= lo]. *)

val add : t -> float -> unit
val count : t -> int
val underflow : t -> int
val overflow : t -> int

val bin_count : t -> int -> int
(** Count in bin [i] (0-based). *)

val bin_bounds : t -> int -> float * float
val fraction_at_or_above : t -> float -> float
(** Empirical [P(X >= x)], counting overflow as above everything. *)

val mean : t -> float
(** Mean of all added samples (exact, not binned). *)

val merge : t -> t -> t
(** [merge a b] pools two histograms with identical [lo]/[hi]/[bins]
    layouts: counts add bin-wise, so merging is exact, associative and
    commutative (the [mean] accumulator commutes because IEEE addition
    is commutative).  Used by the replication runner to pool
    per-chunk histograms.
    @raise Invalid_argument if the layouts differ. *)

val pp : Format.formatter -> t -> unit
(** A compact textual bar rendering. *)
