(** Deterministic pseudo-random number generator.

    The generator is xoshiro256**, seeded through SplitMix64 so that any
    64-bit seed yields a well-mixed initial state.  All simulation code in
    this repository draws randomness exclusively through this module, which
    makes every experiment reproducible from a single integer seed.

    Generators are mutable; use {!split} to derive statistically independent
    child streams (e.g. one stream per peer, one per arrival process) without
    sharing state. *)

type t
(** Mutable generator state. *)

val of_seed : int -> t
(** [of_seed seed] creates a generator deterministically from [seed]. *)

val of_seed_pair : master:int -> stream:int -> t
(** [of_seed_pair ~master ~stream] derives the [stream]-th generator of
    the family rooted at [master], deterministically and without any
    shared state: the SplitMix64 seeding chain of [master] is perturbed
    by the golden-ratio-scrambled stream index before the xoshiro state
    is drawn.  Streams with the same [master] and distinct [stream]
    indices are statistically independent; this is the seed-derivation
    scheme of the Monte-Carlo replication runner, which uses
    [stream = replication index] so that replication results do not
    depend on how replications are scheduled across domains. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of the future output of [t]. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform on [0, n-1].  Uses unbiased rejection.
    @raise Invalid_argument if [n <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform on [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float t] is uniform on [0, 1) with 53 bits of precision. *)

val float_pos : t -> float
(** [float_pos t] is uniform on (0, 1]; never returns [0.], so it is safe
    as the argument of [log]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to [0,1]). *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps of the underlying sequence;
    useful to partition one seed into long non-overlapping streams. *)

val pp : Format.formatter -> t -> unit
(** Prints the internal state (for debugging and golden tests). *)
