let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.log (Rng.float_pos rng) /. rate

let uniform rng ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  lo +. ((hi -. lo) *. Rng.float rng)

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    (* Inversion: floor(log U / log(1-p)).  For tiny [p] the ratio can
       exceed the integer range (log1p(-p) ~ -p, so the quotient grows
       like |log U| / p); [int_of_float] on such a float is unspecified
       and came back as a garbage negative.  Clamp to [max_int] instead:
       the quantile is astronomically far in the tail either way.
       log1p, not log (1 - p): below p ~ 1e-16 the subtraction rounds to
       1.0 and the denominator collapses to 0, sending the ratio to -inf
       underneath the clamp. *)
    let u = Rng.float_pos rng in
    let x = floor (log u /. Float.log1p (-.p)) in
    if x >= float_of_int max_int then max_int else int_of_float x

let negative_binomial rng ~failures ~p =
  if failures < 0 then invalid_arg "Dist.negative_binomial: failures < 0";
  let successes = ref 0 in
  let remaining = ref failures in
  while !remaining > 0 do
    if Rng.bernoulli rng ~p then incr successes else decr remaining
  done;
  !successes

let poisson_small rng mean =
  (* Knuth inversion: multiply uniforms until the product drops below
     exp(-mean).  O(mean) expected draws; fine for mean <= 30. *)
  let limit = exp (-.mean) in
  let rec count k prod =
    let prod = prod *. Rng.float_pos rng in
    if prod <= limit then k else count (k + 1) prod
  in
  count 0 1.0

let rec log_factorial n =
  (* Stirling with correction terms for n >= 10, exact below. *)
  if n < 2 then 0.0
  else if n < 10 then log (float_of_int n) +. log_factorial (n - 1)
  else
    let x = float_of_int (n + 1) in
    ((x -. 0.5) *. log x) -. x
    +. (0.5 *. log (2.0 *. Float.pi))
    +. (1.0 /. (12.0 *. x))
    -. (1.0 /. (360.0 *. x *. x *. x))

let poisson_large rng mean =
  (* Atkinson's rejection method via the logistic envelope. *)
  let beta = Float.pi /. sqrt (3.0 *. mean) in
  let alpha = beta *. mean in
  let k = log mean -. mean -. log beta in
  let rec draw () =
    let u = Rng.float_pos rng in
    let x = (alpha -. log ((1.0 -. u) /. u)) /. beta in
    let n = int_of_float (floor (x +. 0.5)) in
    if n < 0 then draw ()
    else
      let v = Rng.float_pos rng in
      let y = alpha -. (beta *. x) in
      let lhs = y +. log (v /. ((1.0 +. exp y) ** 2.0)) in
      let rhs = k +. (float_of_int n *. log mean) -. log_factorial n in
      if lhs <= rhs then n else draw ()
  in
  draw ()

let poisson rng ~mean =
  if mean < 0.0 then invalid_arg "Dist.poisson: negative mean";
  if mean = 0.0 then 0
  else if mean < 30.0 then poisson_small rng mean
  else poisson_large rng mean

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n < 0";
  if p <= 0.0 then 0
  else if p >= 1.0 then n
  else if n <= 64 then begin
    (* Direct Bernoulli counting for small n. *)
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.bernoulli rng ~p then incr count
    done;
    !count
  end
  else begin
    (* Waiting-time method: count geometric gaps. Expected cost O(np). *)
    let q = log (1.0 -. p) in
    let count = ref 0 and remaining = ref n in
    let continue = ref true in
    while !continue do
      let gap = int_of_float (floor (log (Rng.float_pos rng) /. q)) + 1 in
      if gap > !remaining then continue := false
      else begin
        remaining := !remaining - gap;
        incr count
      end
    done;
    !count
  end

let categorical rng ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 || not (Float.is_finite total) then
    invalid_arg "Dist.categorical: weights must be nonnegative with positive finite sum";
  let target = Rng.float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

(* Walker's alias method: O(n) preprocessing, O(1) per sample.  Sampling
   draws one uniform index and (only when the chosen column is split
   between two outcomes) one uniform float — against the O(n) linear scan
   of [categorical] per draw.  Used for the arrival-type distribution of
   the simulators, which is fixed for a whole run. *)
module Alias = struct
  type t = { prob : float array; alias : int array }

  let size t = Array.length t.prob

  let make weights =
    let n = Array.length weights in
    let total = Array.fold_left ( +. ) 0.0 weights in
    if n = 0 || total <= 0.0 || not (Float.is_finite total) then
      invalid_arg "Dist.Alias.make: weights must be nonnegative with positive finite sum";
    Array.iter
      (fun w -> if w < 0.0 || not (Float.is_finite w) then
          invalid_arg "Dist.Alias.make: weights must be nonnegative with positive finite sum")
      weights;
    (* Scale to mean 1, then repeatedly pair an under-full column with an
       over-full one (Vose's stable formulation). *)
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 1.0 in
    let alias = Array.init n (fun i -> i) in
    let small = Array.make n 0 and large = Array.make n 0 in
    let ns = ref 0 and nl = ref 0 in
    Array.iteri
      (fun i w ->
        if w < 1.0 then begin small.(!ns) <- i; incr ns end
        else begin large.(!nl) <- i; incr nl end)
      scaled;
    while !ns > 0 && !nl > 0 do
      decr ns;
      let s = small.(!ns) in
      let l = large.(!nl - 1) in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) -. (1.0 -. scaled.(s));
      if scaled.(l) < 1.0 then begin
        decr nl;
        small.(!ns) <- l;
        incr ns
      end
    done;
    (* Residual columns (rounding) keep prob = 1 and alias = self. *)
    { prob; alias }

  let sample rng t =
    let n = Array.length t.prob in
    let j = if n = 1 then 0 else Rng.int_below rng n in
    let p = Array.unsafe_get t.prob j in
    (* A whole column needs no tie-break draw; in particular a one-point
       or uniform distribution consumes either zero or one draw total. *)
    if p >= 1.0 then j
    else if Rng.float rng < p then j
    else Array.unsafe_get t.alias j
end

let discrete_cdf cumul ~total ~u =
  let target = u *. total in
  let n = Array.length cumul in
  (* First index with cumul.(i) > target. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumul.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo

let shuffle_in_place rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int_below rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement rng ~k ~n =
  if k > n then invalid_arg "Dist.sample_without_replacement: k > n";
  if k < 0 then invalid_arg "Dist.sample_without_replacement: k < 0";
  (* Partial Fisher-Yates over a lazily materialised index array when k is
     a sizeable fraction of n; reservoir of a hash set otherwise. *)
  if k * 3 >= n then begin
    let arr = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = Rng.int_in_range rng ~lo:i ~hi:(n - 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.sub arr 0 k
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let cand = Rng.int_below rng n in
      if not (Hashtbl.mem seen cand) then begin
        Hashtbl.add seen cand ();
        out.(!filled) <- cand;
        incr filled
      end
    done;
    out
  end

let rec standard_normal rng =
  let u = (2.0 *. Rng.float rng) -. 1.0 in
  let v = (2.0 *. Rng.float rng) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then standard_normal rng
  else u *. sqrt (-2.0 *. log s /. s)
