(** Random samplers for the distributions used across the simulators.

    Every sampler takes an explicit {!Rng.t}; nothing here touches global
    state. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] samples Exp(rate): mean [1/rate].
    @raise Invalid_argument if [rate <= 0]. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). @raise Invalid_argument if [hi < lo]. *)

val geometric : Rng.t -> p:float -> int
(** [geometric rng ~p] counts failures before the first success of a
    Bernoulli(p) sequence; support {0,1,2,...}, mean [(1-p)/p].
    @raise Invalid_argument unless [0 < p <= 1]. *)

val negative_binomial : Rng.t -> failures:int -> p:float -> int
(** [negative_binomial rng ~failures:r ~p] is the number of successes seen
    before the [r]-th failure when each trial succeeds with probability [p].
    This is exactly the paper's coin-flip variable Z of Section VIII-D with
    [r = K-1] and [p = 1/2]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson with the given mean.  Exact (inversion) for small means,
    PTRD-style transformed rejection for large means.
    @raise Invalid_argument if [mean < 0]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Binomial(n, p) by inversion or via beta splitting for large [n]. *)

val categorical : Rng.t -> weights:float array -> int
(** [categorical rng ~weights] returns index [i] with probability
    proportional to [weights.(i)].  Weights must be nonnegative with a
    positive sum. @raise Invalid_argument otherwise. *)

(** Walker/Vose alias sampling for a fixed categorical distribution:
    O(n) table construction, O(1) — at most two RNG draws — per sample.
    Agrees in distribution with {!categorical} on the same weights (the
    draw {e sequence} differs, so switching a sampler re-pins seeded
    golden values).  Preferred whenever the same distribution is sampled
    many times, e.g. the arrival-type mix of a simulation run. *)
module Alias : sig
  type t

  val make : float array -> t
  (** @raise Invalid_argument unless weights are nonnegative with a
      positive finite sum. *)

  val sample : Rng.t -> t -> int
  (** Index [i] with probability [weights.(i) / total].  Draws one
      uniform integer, plus one uniform float only when the chosen
      column is split between two outcomes; a one-point distribution
      consumes no randomness at all. *)

  val size : t -> int
end

val discrete_cdf : float array -> total:float -> u:float -> int
(** [discrete_cdf cumul ~total ~u] is the index of the first entry of the
    cumulative array [cumul] exceeding [u * total] (binary search); exposed
    for samplers that reuse a cumulative table. *)

val shuffle_in_place : Rng.t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val sample_without_replacement : Rng.t -> k:int -> n:int -> int array
(** [sample_without_replacement rng ~k ~n] draws [k] distinct indices from
    [0, n-1], in random order. @raise Invalid_argument if [k > n]. *)

val standard_normal : Rng.t -> float
(** Standard normal via the Marsaglia polar method. *)
