(* xoshiro256** 1.0 (Blackman & Vigna, public domain reference
   implementation), seeded via SplitMix64.  We use Int64 arithmetic
   throughout; OCaml's native [int] keeps only 63 bits. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64 step: used only for seeding and stream splitting. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let sm = ref (Int64.of_int seed) in
  let s0 = splitmix64 sm in
  let s1 = splitmix64 sm in
  let s2 = splitmix64 sm in
  let s3 = splitmix64 sm in
  { s0; s1; s2; s3 }

(* Derive the [stream]-th generator of the family rooted at [master]:
   perturb the SplitMix64 chain of [master] by the golden-ratio-scrambled
   stream index, then draw the xoshiro state as in [of_seed].  Used by the
   replication runner with stream = replication index. *)
let of_seed_pair ~master ~stream =
  let sm = ref (Int64.of_int master) in
  let base = splitmix64 sm in
  let sm = ref (Int64.logxor base (Int64.mul (Int64.of_int stream) 0x9E3779B97F4A7C15L)) in
  let s0 = splitmix64 sm in
  let s1 = splitmix64 sm in
  let s2 = splitmix64 sm in
  let s3 = splitmix64 sm in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive a child state by running SplitMix64 on fresh output of [t].
     The child state is decorrelated from the parent's future stream. *)
  let sm = ref (bits64 t) in
  let s0 = splitmix64 sm in
  let s1 = splitmix64 sm in
  let s2 = splitmix64 sm in
  let s3 = splitmix64 sm in
  { s0; s1; s2; s3 }

(* Jump polynomial for 2^128 steps, from the reference implementation. *)
let jump_tbl = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jv ->
      for b = 0 to 63 do
        if Int64.logand jv (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (bits64 t)
      done)
    jump_tbl;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  if n = 1 then 0
  else begin
    (* Unbiased rejection sampling on the top 62 bits. *)
    let mask = 0x3FFF_FFFF_FFFF_FFFFL in
    let bound = Int64.of_int n in
    let limit = Int64.sub mask (Int64.rem mask bound) in
    let rec draw () =
      let r = Int64.logand (bits64 t) mask in
      if r > limit then draw () else Int64.to_int (Int64.rem r bound)
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int_below t (hi - lo + 1)

let float t =
  (* 53 top bits mapped to [0,1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. 0x1.0p-53

let float_pos t =
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (bits +. 1.0) *. 0x1.0p-53

let bool t = Int64.compare (bits64 t) 0L < 0

let bernoulli t ~p = if p >= 1.0 then true else if p <= 0.0 then false else float t < p

let pp fmt t = Format.fprintf fmt "xoshiro256**{%Lx;%Lx;%Lx;%Lx}" t.s0 t.s1 t.s2 t.s3

