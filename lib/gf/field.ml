type t = {
  q : int;
  p : int;
  m : int;
  add : int -> int -> int;
  sub : int -> int -> int;
  neg : int -> int;
  mul : int -> int -> int;
  inv : int -> int;
  div : int -> int -> int;
  tables : (int array * int array) option;
}

let is_prime n =
  if n < 2 then false
  else begin
    let rec check d = d * d > n || (n mod d <> 0 && check (d + 1)) in
    check 2
  end

(* ---- prime fields ---- *)

let rec egcd a b = if b = 0 then (a, 1, 0) else
  let g, x, y = egcd b (a mod b) in
  (g, y, x - (a / b * y))

let mod_inverse a p =
  let a = ((a mod p) + p) mod p in
  if a = 0 then raise Division_by_zero;
  let _, x, _ = egcd a p in
  ((x mod p) + p) mod p

let prime p =
  if not (is_prime p) then invalid_arg (Printf.sprintf "Field.prime: %d is not prime" p);
  let add a b = (a + b) mod p in
  let neg a = if a = 0 then 0 else p - a in
  let sub a b = add a (neg b) in
  let mul a b = a * b mod p in
  let inv a = mod_inverse a p in
  let div a b = mul a (inv b) in
  { q = p; p; m = 1; add; sub; neg; mul; inv; div; tables = None }

(* ---- extension fields GF(p^m) ----

   Elements are base-p digit strings of length m, encoded as integers.
   Polynomial arithmetic is done digit-wise; multiplication reduces modulo
   a monic irreducible polynomial found by exhaustive search. *)

let digits ~p ~m x =
  let d = Array.make m 0 in
  let rec fill i x =
    if i < m then begin
      d.(i) <- x mod p;
      fill (i + 1) (x / p)
    end
  in
  fill 0 x;
  d

let undigits ~p d =
  Array.fold_right (fun digit acc -> (acc * p) + digit) d 0

(* Polynomial multiplication of two degree-(m-1) polynomials followed by
   reduction modulo the monic irreducible [irr] (of degree m, given by its
   m lower coefficients; leading coefficient 1 implicit). *)
let poly_mulmod ~p ~m ~irr a b =
  let prod = Array.make ((2 * m) - 1) 0 in
  for i = 0 to m - 1 do
    if a.(i) <> 0 then
      for j = 0 to m - 1 do
        prod.(i + j) <- (prod.(i + j) + (a.(i) * b.(j))) mod p
      done
  done;
  (* Reduce: x^m = -irr (mod the irreducible), applied from the top down. *)
  for d = (2 * m) - 2 downto m do
    let c = prod.(d) in
    if c <> 0 then begin
      prod.(d) <- 0;
      for j = 0 to m - 1 do
        prod.(d - m + j) <- (((prod.(d - m + j) - (c * irr.(j))) mod p) + (p * p)) mod p
      done
    end
  done;
  Array.sub prod 0 m

(* Does [cand] (monic, degree m, lower coefficients given) have a divisor
   that is a monic polynomial of degree between 1 and m/2?  We test by
   trial division over all such divisors; q is small so this is cheap. *)
let poly_divides ~p ~deg_divisor divisor_low cand_low m =
  (* Divide x^m + cand_low by the monic divisor; return true iff the
     remainder is zero.  Work on a copy of the full coefficient array. *)
  let coeffs = Array.make (m + 1) 0 in
  Array.blit cand_low 0 coeffs 0 m;
  coeffs.(m) <- 1;
  for d = m downto deg_divisor do
    let lead = coeffs.(d) in
    if lead <> 0 then begin
      coeffs.(d) <- 0;
      for j = 0 to deg_divisor - 1 do
        let idx = d - deg_divisor + j in
        coeffs.(idx) <- (((coeffs.(idx) - (lead * divisor_low.(j))) mod p) + (p * p)) mod p
      done
    end
  done;
  Array.for_all (fun c -> c = 0) coeffs

let is_irreducible ~p ~m cand_low =
  if cand_low.(0) = 0 then false (* divisible by x *)
  else begin
    let reducible = ref false in
    let half = m / 2 in
    let deg = ref 1 in
    while (not !reducible) && !deg <= half do
      (* All monic polynomials of degree !deg: p^!deg choices of lower
         coefficients. *)
      let count = int_of_float (float_of_int p ** float_of_int !deg) in
      let idx = ref 0 in
      while (not !reducible) && !idx < count do
        let divisor_low = digits ~p ~m:!deg !idx in
        if poly_divides ~p ~deg_divisor:!deg divisor_low cand_low m then reducible := true;
        incr idx
      done;
      incr deg
    done;
    not !reducible
  end

let find_irreducible ~p ~m =
  let count = int_of_float (float_of_int p ** float_of_int m) in
  let rec search i =
    if i >= count then failwith "Field: no irreducible polynomial found (impossible)"
    else begin
      let cand = digits ~p ~m i in
      if is_irreducible ~p ~m cand then cand else search (i + 1)
    end
  in
  search 1

let extension ~p ~m =
  if not (is_prime p) then invalid_arg "Field.extension: p must be prime";
  if m < 1 then invalid_arg "Field.extension: m must be >= 1";
  if m = 1 then prime p
  else begin
    let qf = float_of_int p ** float_of_int m in
    if qf > 65536.0 then invalid_arg "Field.extension: q > 65536 unsupported";
    let q = int_of_float qf in
    let irr = find_irreducible ~p ~m in
    let add a b =
      let da = digits ~p ~m a and db = digits ~p ~m b in
      undigits ~p (Array.init m (fun i -> (da.(i) + db.(i)) mod p))
    in
    let neg a =
      let da = digits ~p ~m a in
      undigits ~p (Array.map (fun d -> if d = 0 then 0 else p - d) da)
    in
    let sub a b = add a (neg b) in
    let raw_mul a b =
      let da = digits ~p ~m a and db = digits ~p ~m b in
      undigits ~p (poly_mulmod ~p ~m ~irr da db)
    in
    (* Discrete log tables over a primitive element. *)
    let find_generator () =
      let order x =
        let rec go acc count = if acc = 1 then count else go (raw_mul acc x) (count + 1) in
        go x 1
      in
      let rec search g =
        if g >= q then failwith "Field: no generator found (impossible)"
        else if order g = q - 1 then g
        else search (g + 1)
      in
      search 1
    in
    let g = find_generator () in
    let exp_tbl = Array.make (q - 1) 0 in
    let log_tbl = Array.make q (-1) in
    let acc = ref 1 in
    for i = 0 to q - 2 do
      exp_tbl.(i) <- !acc;
      log_tbl.(!acc) <- i;
      acc := raw_mul !acc g
    done;
    let mul a b =
      if a = 0 || b = 0 then 0 else exp_tbl.((log_tbl.(a) + log_tbl.(b)) mod (q - 1))
    in
    let inv a =
      if a = 0 then raise Division_by_zero
      else if a = 1 then 1
      else exp_tbl.(q - 1 - log_tbl.(a))
    in
    let div a b = mul a (inv b) in
    { q; p; m; add; sub; neg; mul; inv; div; tables = Some (exp_tbl, log_tbl) }
  end

(* Table construction (irreducible search, generator search, log/antilog
   fill) is pure in [q], so fields are memoised per size: replicated runs
   and per-peer subspace creation share one table set per field instead of
   rebuilding it.  The lock makes the cache safe under the Domain-parallel
   replication runner. *)
let gf_cache : (int, t) Hashtbl.t = Hashtbl.create 8
let gf_lock = Mutex.create ()

let gf_uncached q =
  if q < 2 then invalid_arg "Field.gf: q must be >= 2";
  (* Factor q as p^m. *)
  let rec smallest_factor d = if d * d > q then q else if q mod d = 0 then d else smallest_factor (d + 1) in
  let p = smallest_factor 2 in
  let rec degree x acc = if x = 1 then acc else if x mod p = 0 then degree (x / p) (acc + 1) else -1 in
  let m = degree q 0 in
  if m < 1 then invalid_arg (Printf.sprintf "Field.gf: %d is not a prime power" q);
  if m = 1 then prime p else extension ~p ~m

let gf q =
  Mutex.lock gf_lock;
  match Hashtbl.find_opt gf_cache q with
  | Some f ->
      Mutex.unlock gf_lock;
      f
  | None -> (
      (* Construction runs under the lock: it is cheap (bounded by
         q <= 65536) and doing it locked keeps the cache
         single-assignment, so [gf q == gf q] always holds. *)
      match gf_uncached q with
      | f ->
          Hashtbl.add gf_cache q f;
          Mutex.unlock gf_lock;
          f
      | exception e ->
          Mutex.unlock gf_lock;
          raise e)

let element_of_int f x = ((x mod f.q) + f.q) mod f.q

let pow f x n =
  if n < 0 then invalid_arg "Field.pow: negative exponent";
  let rec go base n acc =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then f.mul acc base else acc in
      go (f.mul base base) (n lsr 1) acc
    end
  in
  go x n 1
