(** Vectors and matrices over a finite field.

    Coding vectors are rows in [F_q^K]; the type of a peer under network
    coding is the row space of the coding vectors it holds.  This module
    supplies row reduction, rank, and membership tests used by the
    subspace tracker. *)

type vec = int array
(** A row vector; entries must be field elements in [0, q). *)

val zero_vec : int -> vec
val vec_equal : vec -> vec -> bool
val is_zero_vec : vec -> bool

val vec_add : Field.t -> vec -> vec -> vec
val vec_scale : Field.t -> int -> vec -> vec
val vec_axpy : Field.t -> int -> vec -> vec -> vec
(** [vec_axpy f c x y] is [c·x + y]. *)

val random_vec : Field.t -> (int -> int) -> int -> vec
(** [random_vec f draw n]: each entry uniform over the field; [draw k]
    must return a uniform sample on [0, k-1]. *)

val rank : Field.t -> vec array -> int
(** Rank of the matrix whose rows are the given vectors (inputs not
    mutated). *)

val row_reduce : Field.t -> vec array -> vec array
(** Row-reduced echelon basis of the row space (nonzero rows only, pivots
    normalised to 1, sorted by pivot column).  This basis is the {e unique}
    canonical RREF of the row space — the incremental tracker in
    {!P2p_coding.Subspace} maintains the same basis vector-by-vector.
    @raise Invalid_argument if the rows have differing lengths. *)

val in_row_space : Field.t -> basis:vec array -> vec -> bool
(** Membership test against a row-reduced [basis] (as produced by
    {!row_reduce}). *)

val reduce_against : Field.t -> basis:vec array -> vec -> vec
(** Eliminate the pivots of [basis] from the vector; the result is zero
    iff the vector lies in the row space. *)
