(* Specialised arithmetic kernels compiled from a Field.t.

   The closure-based Field.t record is the reference semantics; a Kernel.t
   is the same arithmetic with the dispatch hoisted out of the inner loop:
   one variant match per row operation instead of two indirect calls per
   element.  The row kernels mutate their destination in place — the
   subspace tracker's hot path does zero allocation per event. *)

type t =
  | Gf2
  | Char2 of { q : int; exp_ : int array; log_ : int array }
  | Prime of { p : int; inv_ : int array }
  | Generic of Field.t

(* [exp_] is the doubled antilog table: length 2(q-1), with
   [exp_.(i) = g^(i mod (q-1))], so a product's log sum indexes it
   directly — no [mod] on the multiply path. *)
let compile (f : Field.t) =
  if f.q = 2 then Gf2
  else if f.p = 2 then begin
    match f.tables with
    | Some (exp_tbl, log_tbl) ->
        let n = f.q - 1 in
        let exp_ = Array.make (2 * n) 0 in
        Array.blit exp_tbl 0 exp_ 0 n;
        Array.blit exp_tbl 0 exp_ n n;
        Char2 { q = f.q; exp_; log_ = Array.copy log_tbl }
    | None -> Generic f (* unreachable: char-2 fields with q > 2 are extensions *)
  end
  else if f.m = 1 then begin
    (* Flat inverse table: GF(p) multiplication is already a single
       [mod], only inversion (egcd) is worth tabling. *)
    let inv_ = Array.make f.p 0 in
    for a = 1 to f.p - 1 do
      inv_.(a) <- f.inv a
    done;
    Prime { p = f.p; inv_ }
  end
  else Generic f (* odd-characteristic extensions (9, 25, 27, ...) *)

(* Kernels are memoised per field size alongside Field.gf's own memo:
   construction is deterministic in q, so keying by q is sound, and
   per-peer subspace creation must not rebuild the doubled tables. *)
let cache : (int, t) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let of_field (f : Field.t) =
  Mutex.lock lock;
  match Hashtbl.find_opt cache f.q with
  | Some k ->
      Mutex.unlock lock;
      k
  | None -> (
      match compile f with
      | k ->
          Hashtbl.add cache f.q k;
          Mutex.unlock lock;
          k
      | exception e ->
          Mutex.unlock lock;
          raise e)

let q = function
  | Gf2 -> 2
  | Char2 c -> c.q
  | Prime p -> p.p
  | Generic f -> f.q

(* ---- element operations (reference surface for the property tests) ---- *)

let add t a b =
  match t with
  | Gf2 | Char2 _ -> a lxor b
  | Prime { p; _ } -> (a + b) mod p
  | Generic f -> f.add a b

let neg t a =
  match t with
  | Gf2 | Char2 _ -> a
  | Prime { p; _ } -> if a = 0 then 0 else p - a
  | Generic f -> f.neg a

let sub t a b = add t a (neg t b)

let mul t a b =
  match t with
  | Gf2 -> a land b
  | Char2 { exp_; log_; _ } -> if a = 0 || b = 0 then 0 else exp_.(log_.(a) + log_.(b))
  | Prime { p; _ } -> a * b mod p
  | Generic f -> f.mul a b

let inv t a =
  match t with
  | Gf2 -> if a = 0 then raise Division_by_zero else 1
  | Char2 { q; exp_; log_ } ->
      if a = 0 then raise Division_by_zero
      else if a = 1 then 1
      else exp_.(q - 1 - log_.(a))
  | Prime { inv_; _ } -> if a = 0 then raise Division_by_zero else inv_.(a)
  | Generic f -> f.inv a

(* ---- in-place row kernels ----

   These replace Mat.vec_axpy / Mat.vec_scale on the subspace hot path:
   the [Array.init]-per-call allocation becomes a mutating loop, and the
   per-element closure dispatch becomes one match per row. *)

(* y <- c*x + y.  Skips the row when c = 0. *)
let axpy_into t ~c ~x ~y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Kernel.axpy_into: length mismatch";
  if c <> 0 then begin
    match t with
    | Gf2 ->
        for i = 0 to n - 1 do
          Array.unsafe_set y i (Array.unsafe_get y i lxor Array.unsafe_get x i)
        done
    | Char2 { exp_; log_; _ } ->
        let lc = log_.(c) in
        for i = 0 to n - 1 do
          let xi = Array.unsafe_get x i in
          if xi <> 0 then
            Array.unsafe_set y i
              (Array.unsafe_get y i lxor Array.unsafe_get exp_ (lc + Array.unsafe_get log_ xi))
        done
    | Prime { p; _ } ->
        for i = 0 to n - 1 do
          Array.unsafe_set y i
            ((Array.unsafe_get y i + (c * Array.unsafe_get x i)) mod p)
        done
    | Generic f ->
        for i = 0 to n - 1 do
          Array.unsafe_set y i (f.add (f.mul c (Array.unsafe_get x i)) (Array.unsafe_get y i))
        done
  end

(* v <- c*v. *)
let scale_into t ~c v =
  let n = Array.length v in
  match t with
  | Gf2 -> if c = 0 then Array.fill v 0 n 0
  | Char2 { exp_; log_; _ } ->
      if c = 0 then Array.fill v 0 n 0
      else if c <> 1 then begin
        let lc = log_.(c) in
        for i = 0 to n - 1 do
          let vi = Array.unsafe_get v i in
          if vi <> 0 then
            Array.unsafe_set v i (Array.unsafe_get exp_ (lc + Array.unsafe_get log_ vi))
        done
      end
  | Prime { p; _ } ->
      for i = 0 to n - 1 do
        Array.unsafe_set v i (c * Array.unsafe_get v i mod p)
      done
  | Generic f ->
      for i = 0 to n - 1 do
        Array.unsafe_set v i (f.mul c (Array.unsafe_get v i))
      done

(* ---- bitsliced GF(2) word helpers ----

   The subspace tracker packs GF(2) coefficient vectors into native-int
   words (63 usable bits each, so no boxing); axpy is then a word-wise
   XOR and pivot search a count-trailing-zeros scan. *)

let word_bits = 63

let words_for ~k = (k + word_bits - 1) / word_bits

(* Count trailing zeros of a nonzero int by isolating the lowest set bit
   and binary-stepping — six compares, no table. *)
let[@inline] ctz x =
  let x = x land -x in
  let n = 0 in
  let x, n = if x land 0x7FFFFFFF = 0 then (x lsr 31, n + 31) else (x, n) in
  let x, n = if x land 0xFFFF = 0 then (x lsr 16, n + 16) else (x, n) in
  let x, n = if x land 0xFF = 0 then (x lsr 8, n + 8) else (x, n) in
  let x, n = if x land 0xF = 0 then (x lsr 4, n + 4) else (x, n) in
  let x, n = if x land 0x3 = 0 then (x lsr 2, n + 2) else (x, n) in
  if x land 0x1 = 0 then n + 1 else n

(* y <- y xor x over packed words. *)
let xor_into ~x ~y =
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i (Array.unsafe_get y i lxor Array.unsafe_get x i)
  done

let[@inline] get_bit w j =
  Array.unsafe_get w (j / word_bits) lsr (j mod word_bits) land 1

let[@inline] set_bit w j =
  let i = j / word_bits in
  Array.unsafe_set w i (Array.unsafe_get w i lor (1 lsl (j mod word_bits)))

(* Lowest set bit position across the packed row, or -1 if zero. *)
let lowest_bit w =
  let n = Array.length w in
  let rec go i =
    if i >= n then -1
    else begin
      let x = Array.unsafe_get w i in
      if x <> 0 then (i * word_bits) + ctz x else go (i + 1)
    end
  in
  go 0
