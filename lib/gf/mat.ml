type vec = int array

let zero_vec n = Array.make n 0

(* Explicit int loops: entries are immediate ints, so [compare]'s
   polymorphic dispatch is pure overhead (and a latent trap if a vec is
   ever aliased with a float array). *)
let vec_equal a b =
  let n = Array.length a in
  Array.length b = n
  && begin
       let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
       go 0
     end

let is_zero_vec v =
  let n = Array.length v in
  let rec go i = i >= n || (Array.unsafe_get v i = 0 && go (i + 1)) in
  go 0

let vec_add (f : Field.t) a b =
  if Array.length a <> Array.length b then invalid_arg "Mat.vec_add: length mismatch";
  Array.init (Array.length a) (fun i -> f.add a.(i) b.(i))

let vec_scale (f : Field.t) c v = Array.map (fun x -> f.mul c x) v

let vec_axpy (f : Field.t) c x y =
  if Array.length x <> Array.length y then invalid_arg "Mat.vec_axpy: length mismatch";
  Array.init (Array.length x) (fun i -> f.add (f.mul c x.(i)) y.(i))

let random_vec (f : Field.t) draw n = Array.init n (fun _ -> draw f.q)

let pivot_column v =
  let n = Array.length v in
  let rec go i = if i >= n then None else if v.(i) <> 0 then Some i else go (i + 1) in
  go 0

let row_reduce (f : Field.t) rows =
  (* Gauss-Jordan over the field; returns normalised nonzero rows sorted by
     pivot column.  Works on copies with the in-place kernels — no
     per-elimination allocation. *)
  let work = Array.map Array.copy rows in
  let m = Array.length work in
  if m = 0 then [||]
  else begin
    let n = Array.length work.(0) in
    Array.iteri
      (fun i row ->
        if Array.length row <> n then
          invalid_arg
            (Printf.sprintf "Mat.row_reduce: ragged rows (row 0 has %d columns, row %d has %d)"
               n i (Array.length row)))
      work;
    let kern = Kernel.of_field f in
    let rank = ref 0 in
    for col = 0 to n - 1 do
      (* Find a pivot row at or below !rank with a nonzero entry in col. *)
      let pivot = ref (-1) in
      for r = !rank to m - 1 do
        if !pivot < 0 && work.(r).(col) <> 0 then pivot := r
      done;
      if !pivot >= 0 then begin
        let tmp = work.(!rank) in
        work.(!rank) <- work.(!pivot);
        work.(!pivot) <- tmp;
        (* Normalise the pivot row. *)
        let prow = work.(!rank) in
        let c = prow.(col) in
        if c <> 1 then Kernel.scale_into kern ~c:(Kernel.inv kern c) prow;
        (* Eliminate the column everywhere else. *)
        for r = 0 to m - 1 do
          if r <> !rank && work.(r).(col) <> 0 then
            Kernel.axpy_into kern ~c:(Kernel.neg kern work.(r).(col)) ~x:prow ~y:work.(r)
        done;
        incr rank
      end
    done;
    Array.sub work 0 !rank
  end

let rank f rows = Array.length (row_reduce f rows)

let reduce_against (f : Field.t) ~basis v =
  let kern = Kernel.of_field f in
  let acc = Array.copy v in
  Array.iter
    (fun row ->
      match pivot_column row with
      | None -> ()
      | Some col ->
          let c = acc.(col) in
          if c <> 0 then Kernel.axpy_into kern ~c:(Kernel.neg kern c) ~x:row ~y:acc)
    basis;
  acc

let in_row_space f ~basis v = is_zero_vec (reduce_against f ~basis v)
