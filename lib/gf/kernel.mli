(** Specialised GF(q) arithmetic kernels.

    {!Field.t} carries its arithmetic as a record of closures — two
    indirect calls per element on the row-operation hot path, plus an
    allocation per {!Mat.vec_axpy}.  A [Kernel.t] is the same arithmetic
    compiled into a first-order variant, dispatched {e once per row
    operation}:

    - [Gf2] — GF(2): add = xor, mul = and; row vectors can additionally
      be bitsliced into native-int words ({!words_for}, {!xor_into},
      {!lowest_bit}) so axpy is O(k/63) word XORs and pivot search a
      count-trailing-zeros scan.
    - [Char2] — GF(2^m), m ≥ 2: add = xor of polynomial encodings;
      mul/inv via flat log/antilog tables (antilog doubled so the
      multiply path has no [mod]).
    - [Prime] — GF(p): modular add/mul, flat inverse table.
    - [Generic] — fallback to the field closures (odd-characteristic
      extension fields such as GF(9), GF(27)).

    Kernels are memoised per field size (thread-safe), like {!Field.gf}.
    All operations agree exactly with the source {!Field.t} — pinned by
    the kernel property tests across q ∈ {2, 3, 4, 8, 16, 256}. *)

type t =
  | Gf2
  | Char2 of { q : int; exp_ : int array; log_ : int array }
  | Prime of { p : int; inv_ : int array }
  | Generic of Field.t

val of_field : Field.t -> t
(** Compile (or fetch the memoised) kernel for the field. *)

val q : t -> int

(** {1 Element operations}

    Reference surface, semantically identical to the field closures. *)

val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val neg : t -> int -> int
val mul : t -> int -> int -> int

val inv : t -> int -> int
(** @raise Division_by_zero on 0. *)

(** {1 In-place row kernels}

    Element vectors ([int array] of field elements, one per entry). *)

val axpy_into : t -> c:int -> x:int array -> y:int array -> unit
(** [y <- c·x + y], mutating [y].  No-op when [c = 0].
    @raise Invalid_argument on length mismatch. *)

val scale_into : t -> c:int -> int array -> unit
(** [v <- c·v] in place. *)

(** {1 Bitsliced GF(2) helpers}

    Packed rows are [int array]s of {!word_bits}-bit words; bit [j] of a
    row lives in word [j / word_bits]. *)

val word_bits : int
(** Usable bits per word (63: native int, no boxing). *)

val words_for : k:int -> int
(** Words needed for a k-column packed row. *)

val xor_into : x:int array -> y:int array -> unit
(** [y <- y xor x] word-wise (GF(2) axpy with c = 1). *)

val get_bit : int array -> int -> int
val set_bit : int array -> int -> unit

val lowest_bit : int array -> int
(** Position of the lowest set bit across the packed row, or [-1] if the
    row is zero — the GF(2) pivot scan. *)

val ctz : int -> int
(** Count trailing zeros of a nonzero int (exposed for tests). *)
