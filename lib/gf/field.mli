(** Finite fields GF(q) for prime powers q.

    Network coding (Section VIII-B) works over [F_q] with [q] a prime
    power; the paper's numeric example uses [q = 64].  Elements are encoded
    as integers in [0, q): for a prime field the residue itself, for an
    extension field GF(p^m) the base-p digit string of the polynomial
    representative.  Construction finds a monic irreducible polynomial by
    exhaustive search and, for [q <= 65536], builds discrete log/antilog
    tables over a primitive element so multiplication and inversion are
    O(1) lookups. *)

type t = {
  q : int;  (** field size *)
  p : int;  (** characteristic *)
  m : int;  (** extension degree; [q = p^m] *)
  add : int -> int -> int;
  sub : int -> int -> int;
  neg : int -> int;
  mul : int -> int -> int;
  inv : int -> int;  (** @raise Division_by_zero on 0 *)
  div : int -> int -> int;
  tables : (int array * int array) option;
      (** [(exp, log)] discrete log/antilog tables over a primitive
          element, for extension fields ([m >= 2]): [exp.(i) = g^i] for
          [i] in [0, q-2] and [log.(g^i) = i] with [log.(0) = -1].
          [None] for prime fields.  {!Kernel} compiles these into flat
          branch-free multiply/invert kernels. *)
}

val prime : int -> t
(** GF(p) for prime [p]. @raise Invalid_argument if [p] is not prime. *)

val extension : p:int -> m:int -> t
(** GF(p^m). @raise Invalid_argument unless [p] prime, [m >= 1] and
    [p^m <= 65536]. *)

val gf : int -> t
(** [gf q] for any prime power [q <= 65536]; factors [q] automatically.
    Memoised per [q] (thread-safe): repeated calls return the {e same}
    field value, so replicated runs never rebuild the log/antilog tables.
    @raise Invalid_argument if [q] is not a prime power in range. *)

val element_of_int : t -> int -> int
(** Reduce an arbitrary integer to a field element: residue mod [q] (for
    sampling uniform elements). *)

val is_prime : int -> bool
(** Trial-division primality (exposed for tests). *)

val pow : t -> int -> int -> int
(** [pow f x n] is x^n in the field, n >= 0. *)
