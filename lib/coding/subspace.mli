(** A peer's knowledge under random linear network coding.

    With network coding the type of a peer [A] is the subspace
    [V_A ⊆ F_q^K] spanned by the coding vectors of the coded pieces it has
    received; [A] can decode once [dim V_A = K].  The tracker maintains
    the {e canonical} row-reduced echelon basis (unique per subspace)
    incrementally: an insert reduces the incoming vector against the
    basis, normalises, back-eliminates and splices it in at its pivot
    position — O(dim·K) in-place field operations, no allocation, and a
    basis bit-identical to batch [Mat.row_reduce] of the receive history.
    Over GF(2) rows are bitsliced into native-int words, so an insert is
    O(dim·K/63) word XORs and the pivot scan a count-trailing-zeros.

    The [Mat.vec] API below is the reference surface; the [xvec] API is
    the allocation-free internal-format fast path the coded simulator
    drives. *)

type t

val create : P2p_gf.Field.t -> k:int -> t
(** Empty subspace of [F_q^K]. *)

val copy : t -> t
val field : t -> P2p_gf.Field.t
val dim : t -> int
val k : t -> int
val is_full : t -> bool
(** [dim = K]: the peer can decode the file. *)

val insert : t -> P2p_gf.Mat.vec -> bool
(** [insert t v] adds the coding vector [v]; returns [true] iff it was
    useful (increased the dimension).  The zero vector is never useful. *)

val contains : t -> P2p_gf.Mat.vec -> bool
(** Whether [v ∈ V]. *)

val subspace_leq : t -> t -> bool
(** [subspace_leq a b] iff [V_a ⊆ V_b]. *)

val can_help : uploader:t -> downloader:t -> bool
(** The coded usefulness test: [V_uploader ⊄ V_downloader]. *)

val random_member : t -> P2p_prng.Rng.t -> P2p_gf.Mat.vec
(** A uniformly random vector of the subspace: a random linear combination
    of the basis (this is what a peer transmits on contact).  The zero
    vector is a possible (useless) outcome, matching the model. *)

val useful_probability : uploader:t -> downloader:t -> float
(** Exact probability that a random member of the uploader's subspace is
    useful to the downloader: [1 − q^{dim(V_A ∩ V_B) − dim V_B}] with
    [A] = downloader, [B] = uploader (Section VIII-B). *)

val intersection_dim : t -> t -> int
(** [dim (V_a ∩ V_b)], via [dim a + dim b − dim (a + b)]. *)

val basis : t -> P2p_gf.Mat.vec array
(** The current row-reduced basis (copies). *)

val of_vectors : P2p_gf.Field.t -> k:int -> P2p_gf.Mat.vec list -> t

(** {1 Allocation-free fast path}

    An [xvec] is a coding vector in the subspace's internal row format:
    packed bit words over GF(2), an element vector otherwise.  Scratch
    buffers are caller-owned and reused across events; any subspace with
    the same field and [k] shares the format. *)

type xvec = int array

val alloc_xvec : t -> xvec
(** A zeroed scratch row of the right width for this subspace's format. *)

val generation : t -> int
(** Monotone counter bumped on every dimension-increasing insert — lets
    callers cache containment facts ([V_up ⊆ V_down] stays true while the
    uploader's generation is unchanged; growth of the downloader never
    invalidates it). *)

val random_member_into : t -> P2p_prng.Rng.t -> xvec -> unit
(** {!random_member} into a caller scratch: one coefficient draw per
    basis row in pivot order (identical draw sequence), rows applied
    in place. *)

val random_full_into : t -> P2p_prng.Rng.t -> xvec -> unit
(** Uniform vector of [F_q^K] (what the fixed seed transmits): [K] draws
    in ascending index order, matching [Mat.random_vec]. *)

val insert_xvec : t -> xvec -> bool
(** {!insert} on the internal format.  Clobbers the scratch. *)

val contains_xvec : t -> xvec -> bool
(** {!contains} on the internal format.  Clobbers the scratch. *)

val first_uncovered_into : uploader:t -> downloader:t -> scratch:xvec -> xvec -> bool
(** Smart exchange (Remark 16): copy the first uploader basis row outside
    the downloader's subspace into the destination and return [true]; if
    the uploader is contained, zero the destination and return [false].
    [scratch] is clobbered.  Both subspaces must share field and [k]. *)
