module Field = P2p_gf.Field
module Mat = P2p_gf.Mat
module Kernel = P2p_gf.Kernel

(* The basis is maintained as the canonical row-reduced echelon form of
   the row space: nonzero rows, pivots normalised to 1, every pivot
   column zero in all other rows, rows sorted by pivot column.  The RREF
   of a subspace is unique, so maintaining it incrementally (reduce the
   incoming vector, normalise, back-eliminate, insert in pivot order)
   yields bit-identical bases — and therefore bit-identical random-member
   draw sequences — to the batch [Mat.row_reduce] the tracker previously
   re-ran on every insert.

   Row storage is preallocated at creation: [rows] holds K buffers that
   are permuted (never reallocated) as the basis grows, so a receive
   event allocates nothing.  Over GF(2) the rows are bitsliced into
   native-int words ([xw] words per row); over any other field they are
   element vectors of length K. *)

type t = {
  f : Field.t;
  kern : Kernel.t;
  k : int;
  packed : bool;  (* GF(2): rows are packed bit words *)
  xw : int;  (* internal row width: words_for k when packed, else k *)
  mutable dim : int;
  pivots : int array;  (* length k; pivots.(i) valid for i < dim, ascending *)
  rows : int array array;  (* k row buffers; rows.(i) valid for i < dim *)
  mutable gen : int;  (* bumped on every successful insert *)
}

type xvec = int array

let create f ~k =
  if k < 1 then invalid_arg "Subspace.create: k must be >= 1";
  let kern = Kernel.of_field f in
  let packed = f.Field.q = 2 in
  let xw = if packed then Kernel.words_for ~k else k in
  {
    f;
    kern;
    k;
    packed;
    xw;
    dim = 0;
    pivots = Array.make k (-1);
    rows = Array.init k (fun _ -> Array.make xw 0);
    gen = 0;
  }

let copy t =
  {
    t with
    pivots = Array.copy t.pivots;
    rows = Array.map Array.copy t.rows;
  }

let field t = t.f
let dim t = t.dim
let k t = t.k
let is_full t = t.dim = t.k
let generation t = t.gen

(* ---- internal-format scratch vectors ---- *)

let alloc_xvec t = Array.make t.xw 0
let clear_xvec t v = Array.fill v 0 t.xw 0

let pack_into t (v : Mat.vec) (dst : xvec) =
  if Array.length v <> t.k then invalid_arg "Subspace: wrong vector length";
  if t.packed then begin
    clear_xvec t dst;
    for j = 0 to t.k - 1 do
      if v.(j) land 1 <> 0 then Kernel.set_bit dst j
    done
  end
  else Array.blit v 0 dst 0 t.k

let unpack t (x : xvec) : Mat.vec =
  if t.packed then Array.init t.k (fun j -> Kernel.get_bit x j) else Array.copy x

(* Reduce [v] (internal format, clobbered) against the basis; returns the
   pivot column of the remainder, or -1 if [v] lies in the span.  Basis
   rows are fully reduced, so elimination order is immaterial. *)
let reduce_xvec t (v : xvec) =
  if t.packed then begin
    for i = 0 to t.dim - 1 do
      if Kernel.get_bit v (Array.unsafe_get t.pivots i) <> 0 then
        Kernel.xor_into ~x:(Array.unsafe_get t.rows i) ~y:v
    done;
    Kernel.lowest_bit v
  end
  else begin
    let kern = t.kern in
    for i = 0 to t.dim - 1 do
      let c = Array.unsafe_get v (Array.unsafe_get t.pivots i) in
      if c <> 0 then
        Kernel.axpy_into kern ~c:(Kernel.neg kern c) ~x:(Array.unsafe_get t.rows i) ~y:v
    done;
    let rec first j = if j >= t.k then -1 else if Array.unsafe_get v j <> 0 then j else first (j + 1) in
    first 0
  end

let contains_xvec t v = reduce_xvec t v < 0

(* Incremental RREF insert.  O(dim · k) element operations (O(dim · k/63)
   word operations over GF(2)), no allocation.  Clobbers [v]. *)
let insert_xvec t (v : xvec) =
  let piv = reduce_xvec t v in
  if piv < 0 then false
  else begin
    (* Normalise the new row (already 1 over characteristic-2 packed). *)
    if not t.packed then begin
      let c = v.(piv) in
      if c <> 1 then Kernel.scale_into t.kern ~c:(Kernel.inv t.kern c) v
    end;
    (* Back-eliminate the new pivot from every existing row.  [v] is zero
       at all existing pivot columns, so this preserves full reduction. *)
    if t.packed then
      for i = 0 to t.dim - 1 do
        let row = t.rows.(i) in
        if Kernel.get_bit row piv <> 0 then Kernel.xor_into ~x:v ~y:row
      done
    else
      for i = 0 to t.dim - 1 do
        let row = t.rows.(i) in
        let c = row.(piv) in
        if c <> 0 then Kernel.axpy_into t.kern ~c:(Kernel.neg t.kern c) ~x:v ~y:row
      done;
    (* Insert at the sorted position, rotating the spare row buffer in. *)
    let pos = ref t.dim in
    while !pos > 0 && t.pivots.(!pos - 1) > piv do
      decr pos
    done;
    let spare = t.rows.(t.dim) in
    for i = t.dim downto !pos + 1 do
      t.rows.(i) <- t.rows.(i - 1);
      t.pivots.(i) <- t.pivots.(i - 1)
    done;
    Array.blit v 0 spare 0 t.xw;
    t.rows.(!pos) <- spare;
    t.pivots.(!pos) <- piv;
    t.dim <- t.dim + 1;
    t.gen <- t.gen + 1;
    true
  end

(* Uniform member of the subspace: one coefficient draw per basis row, in
   basis (pivot) order, applying the row only when the coefficient is
   nonzero — the exact draw sequence of the closure-based tracker. *)
let random_member_into t rng (dst : xvec) =
  clear_xvec t dst;
  let q = t.f.Field.q in
  for i = 0 to t.dim - 1 do
    let c = P2p_prng.Rng.int_below rng q in
    if c <> 0 then begin
      if t.packed then Kernel.xor_into ~x:(Array.unsafe_get t.rows i) ~y:dst
      else Kernel.axpy_into t.kern ~c ~x:(Array.unsafe_get t.rows i) ~y:dst
    end
  done

(* Uniform vector of F_q^K: K draws in ascending index order, matching
   [Mat.random_vec]'s [Array.init] evaluation order draw-for-draw. *)
let random_full_into t rng (dst : xvec) =
  clear_xvec t dst;
  let q = t.f.Field.q in
  if t.packed then
    for j = 0 to t.k - 1 do
      if P2p_prng.Rng.int_below rng q <> 0 then Kernel.set_bit dst j
    done
  else
    for j = 0 to t.k - 1 do
      Array.unsafe_set dst j (P2p_prng.Rng.int_below rng q)
    done

(* Copy basis row [i] of [src] into [dst] (same field/k). *)
let blit_row src i (dst : xvec) = Array.blit src.rows.(i) 0 dst 0 src.xw

(* First uploader basis row outside the downloader's subspace (Remark 16
   smart exchange), copied into [dst]; [dst] is zeroed when the uploader
   is contained.  Returns whether a row was found.  [scratch] is
   clobbered. *)
let first_uncovered_into ~uploader ~downloader ~scratch (dst : xvec) =
  let rec go i =
    if i >= uploader.dim then begin
      clear_xvec downloader dst;
      false
    end
    else begin
      blit_row uploader i scratch;
      if contains_xvec downloader scratch then go (i + 1)
      else begin
        blit_row uploader i dst;
        true
      end
    end
  in
  go 0

(* ---- public Mat.vec API (tests, lattice tooling, cold paths) ---- *)

let insert t v =
  if Array.length v <> t.k then invalid_arg "Subspace.insert: wrong vector length";
  let x = alloc_xvec t in
  pack_into t v x;
  insert_xvec t x

let contains t v =
  if Array.length v <> t.k then invalid_arg "Subspace.contains: wrong vector length";
  let x = alloc_xvec t in
  pack_into t v x;
  contains_xvec t x

let basis t = Array.init t.dim (fun i -> unpack t t.rows.(i))

(* U ⊆ W implies pivots(U) ⊆ pivots(W): reducing a member of U whose
   leading column is j against W's RREF must consume a W-row with pivot
   exactly j.  The merge walk below is therefore a cheap necessary
   precheck before the row-by-row reduction. *)
let pivots_subset a b =
  let rec go i j =
    if i >= a.dim then true
    else if j >= b.dim then false
    else begin
      let pa = a.pivots.(i) and pb = b.pivots.(j) in
      if pa = pb then go (i + 1) (j + 1) else if pb < pa then go i (j + 1) else false
    end
  in
  go 0 0

let subspace_leq a b =
  a.k = b.k
  && a.dim <= b.dim
  && begin
       if a.packed = b.packed && a.xw = b.xw then begin
         (* Same representation (same q): reduce rows directly. *)
         pivots_subset a b
         && begin
              let scratch = alloc_xvec b in
              let rec go i =
                i >= a.dim
                || begin
                     blit_row a i scratch;
                     contains_xvec b scratch && go (i + 1)
                   end
              in
              go 0
            end
       end
       else Array.for_all (fun row -> contains b row) (basis a)
     end

let can_help ~uploader ~downloader = not (subspace_leq uploader downloader)

let random_member t rng =
  let x = alloc_xvec t in
  random_member_into t rng x;
  unpack t x

let sum_dim a b =
  (* dim(A + B), incrementally: extend a copy of the larger-format basis
     by the other's rows. *)
  let acc = copy a in
  let scratch = alloc_xvec acc in
  if b.packed = acc.packed && b.xw = acc.xw then
    for i = 0 to b.dim - 1 do
      blit_row b i scratch;
      ignore (insert_xvec acc scratch)
    done
  else
    Array.iter (fun row -> ignore (insert acc row)) (basis b);
  acc.dim

let intersection_dim a b =
  if a.k <> b.k then invalid_arg "Subspace.intersection_dim: dimension mismatch";
  dim a + dim b - sum_dim a b

let useful_probability ~uploader ~downloader =
  (* P(random member of V_B useful to A) = 1 - |V_A ∩ V_B| / |V_B|
     = 1 - q^(dim(A∩B) - dim B). *)
  let q = float_of_int uploader.f.Field.q in
  let inter = intersection_dim downloader uploader in
  1.0 -. (q ** float_of_int (inter - dim uploader))

let of_vectors f ~k vectors =
  let t = create f ~k in
  List.iter (fun v -> ignore (insert t v)) vectors;
  t
