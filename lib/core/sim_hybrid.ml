module Pieceset = P2p_pieceset.Pieceset
module Probe = P2p_obs.Probe

type config = {
  markov : Sim_markov.config;
  up : int;
  down : int;
  control : Ode.control;
}

let default_config ?(up = 1000) ?(down = 100) markov =
  { markov; up; down; control = Ode.default_control }

type switch = { at : float; to_fluid : bool; n : float }

type stats = {
  final_time : float;
  events : int;
  markov_events : int;
  fluid_steps : int;
  arrivals : float;
  transfers : float;
  completions : float;
  departures : float;
  aborted : float;
  lost : float;
  time_avg_n : float;
  max_n : int;
  final_n : float;
  visits_to_empty : int;
  truncated : bool;
  outage_time : float;
  switches : switch list;
  samples : (float * int) array;
}

(* Fluid densities -> integer type counts, deterministically: round the
   total, give each type the floor of its density, then hand the leftover
   units to the largest fractional parts (ties to the lower index).  The
   switch state is therefore a pure function of the densities — no rng,
   bit-identical across processes and --jobs counts. *)
let discretize densities =
  let d = Array.length densities in
  let total = Array.fold_left (fun acc v -> acc +. Float.max 0.0 v) 0.0 densities in
  let target = int_of_float (Float.round total) in
  let counts = Array.make d 0 in
  let floor_sum = ref 0 in
  let rem = Array.make d 0.0 in
  for i = 0 to d - 1 do
    let v = Float.max 0.0 densities.(i) in
    let f = int_of_float (Float.floor v) in
    counts.(i) <- f;
    floor_sum := !floor_sum + f;
    rem.(i) <- v -. Float.of_int f
  done;
  let deficit = target - !floor_sum in
  if deficit > 0 then begin
    let order = Array.init d (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare rem.(b) rem.(a) in
        if c <> 0 then c else compare a b)
      order;
    for j = 0 to Int.min deficit d - 1 do
      counts.(order.(j)) <- counts.(order.(j)) + 1
    done
  end;
  counts

let counts_to_initial counts =
  let acc = ref [] in
  Array.iteri (fun i c -> if c > 0 then acc := (Pieceset.of_index i, c) :: !acc) counts;
  List.rev !acc

let validate config =
  if config.up <= config.down then
    invalid_arg
      (Printf.sprintf "Sim_hybrid: up threshold (%d) must exceed down threshold (%d)" config.up
         config.down);
  if config.down < 0 then invalid_arg "Sim_hybrid: down threshold must be >= 0"

let run ?(probe = Probe.none) ?sample_every ?(max_events = 200_000_000) ~rng config ~horizon =
  validate config;
  let p = config.markov.Sim_markov.params in
  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  (* One fault clockwork for the whole logical run: the outage schedule
     spans segments, and the rng is split exactly once, here. *)
  let frun = Faults.start config.markov.Sim_markov.faults ~rng in
  let fluid_cfg =
    {
      Sim_fluid.params = p;
      initial = [];
      faults = config.markov.Sim_markov.faults;
      control = config.control;
    }
  in
  let down_f = Float.of_int config.down in
  let samples = ref [] in
  let switches = ref [] in
  let markov_events = ref 0 in
  let fluid_steps = ref 0 in
  let arrivals = ref 0.0 in
  let transfers = ref 0.0 in
  let completions = ref 0.0 in
  let departures = ref 0.0 in
  let aborted = ref 0.0 in
  let lost = ref 0.0 in
  let visits_to_empty = ref 0 in
  let max_n = ref 0 in
  let weighted_avg = ref 0.0 in
  let truncated = ref false in
  let outage_time = ref 0.0 in
  let t = ref 0.0 in
  let grid_after = ref (-1.0) in
  let segment_weight t0 t1 avg =
    let dur = t1 -. t0 in
    if dur > 0.0 && Float.is_finite avg then weighted_avg := !weighted_avg +. (avg *. dur)
  in
  let absorb_samples (arr : (float * int) array) =
    Array.iter (fun s -> samples := s :: !samples) arr;
    if Array.length arr > 0 then grid_after := fst arr.(Array.length arr - 1)
  in
  (* Alternate segments until the horizon.  Time strictly advances in
     every segment (each consumes at least one event or one accepted
     step before its [until] can fire), so this terminates. *)
  let state = ref (`Stoch config.markov.Sim_markov.initial) in
  let final_densities = ref (Array.make (Fluid.dim p) 0.0) in
  let running = ref true in
  while !running do
    let resume = { Engine.t0 = !t; grid_after = !grid_after; frun = Some frun } in
    match !state with
    | `Stoch _ when max_events - !markov_events <= 0 ->
        (* The global event budget is spent: truncate instead of walking
           another stochastic segment. *)
        truncated := true;
        running := false
    | `Stoch initial ->
        let cfg = { config.markov with Sim_markov.initial } in
        let budget = max_events - !markov_events in
        let stats, st =
          Sim_markov.run ~probe ~sample_every ~max_events:budget ~resume
            ~until:(fun ~time:_ ~n -> n >= config.up)
            ~rng cfg ~horizon
        in
        markov_events := !markov_events + stats.Sim_markov.events;
        arrivals := !arrivals +. Float.of_int stats.Sim_markov.arrivals;
        transfers := !transfers +. Float.of_int stats.Sim_markov.transfers;
        completions := !completions +. Float.of_int stats.Sim_markov.completions;
        departures := !departures +. Float.of_int stats.Sim_markov.departures;
        aborted := !aborted +. Float.of_int stats.Sim_markov.aborted_peers;
        lost := !lost +. Float.of_int stats.Sim_markov.lost_transfers;
        visits_to_empty := !visits_to_empty + stats.Sim_markov.visits_to_empty;
        max_n := Int.max !max_n stats.Sim_markov.max_n;
        segment_weight !t stats.Sim_markov.final_time stats.Sim_markov.time_avg_n;
        absorb_samples stats.Sim_markov.samples;
        outage_time := stats.Sim_markov.outage_time;
        final_densities := Fluid.of_state ~k:p.Params.k st;
        t := stats.Sim_markov.final_time;
        if stats.Sim_markov.truncated then begin
          truncated := true;
          running := false
        end
        else if stats.Sim_markov.stopped && !t < horizon then begin
          let n = Fluid.total !final_densities in
          switches := { at = !t; to_fluid = true; n } :: !switches;
          if probe.Probe.tracing then
            Probe.handoff probe ~time:!t ~fluid:true ~n;
          state := `Fluid (Array.copy !final_densities)
        end
        else running := false
    | `Fluid init ->
        let stats, final =
          Sim_fluid.run ~probe ~sample_every ~resume
            ~until:(fun ~time:_ ~total -> total <= down_f)
            ~init ~rng fluid_cfg ~horizon
        in
        fluid_steps := !fluid_steps + stats.Sim_fluid.steps;
        arrivals := !arrivals +. stats.Sim_fluid.arrivals;
        transfers := !transfers +. stats.Sim_fluid.transfers;
        completions := !completions +. stats.Sim_fluid.completions;
        departures := !departures +. stats.Sim_fluid.departures;
        aborted := !aborted +. stats.Sim_fluid.aborted_mass;
        lost := !lost +. stats.Sim_fluid.lost_mass;
        max_n := Int.max !max_n stats.Sim_fluid.max_n;
        segment_weight !t stats.Sim_fluid.final_time stats.Sim_fluid.time_avg_n;
        absorb_samples stats.Sim_fluid.samples;
        outage_time := stats.Sim_fluid.outage_time;
        final_densities := final;
        t := stats.Sim_fluid.final_time;
        if stats.Sim_fluid.truncated then begin
          truncated := true;
          running := false
        end
        else if stats.Sim_fluid.stopped && !t < horizon then begin
          let n = stats.Sim_fluid.final_n in
          switches := { at = !t; to_fluid = false; n } :: !switches;
          if probe.Probe.tracing then
            Probe.handoff probe ~time:!t ~fluid:false ~n;
          state := `Stoch (counts_to_initial (discretize final))
        end
        else running := false
  done;
  let final_time = !t in
  let span = final_time in
  let stats =
    {
      final_time;
      events = !markov_events + !fluid_steps;
      markov_events = !markov_events;
      fluid_steps = !fluid_steps;
      arrivals = !arrivals;
      transfers = !transfers;
      completions = !completions;
      departures = !departures;
      aborted = !aborted;
      lost = !lost;
      time_avg_n = (if span > 0.0 then !weighted_avg /. span else Float.nan);
      max_n = !max_n;
      final_n = Fluid.total !final_densities;
      visits_to_empty = !visits_to_empty;
      truncated = !truncated;
      outage_time = !outage_time;
      switches = List.rev !switches;
      samples = Array.of_list (List.rev !samples);
    }
  in
  (stats, !final_densities)

let run_seeded ?probe ?sample_every ?max_events ~seed config ~horizon =
  let rng = P2p_prng.Rng.of_seed seed in
  run ?probe ?sample_every ?max_events ~rng config ~horizon
