let csv_dir : string option ref = ref None
let csv_counter = ref 0
let current_slug = ref "untitled"

let set_output_dir dir =
  csv_dir := dir;
  match dir with
  | Some path -> if not (Sys.file_exists path) then Sys.mkdir path 0o755
  | None -> ()

let output_dir () = !csv_dir

let slug_of title =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii ch
      | _ -> '-')
    (String.sub title 0 (Int.min 40 (String.length title)))

let banner title =
  current_slug := slug_of title;
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr csv_counter;
      let file =
        Filename.concat dir (Printf.sprintf "table_%03d_%s.csv" !csv_counter !current_slug)
      in
      P2p_obs.Json.write_file_atomic file (fun oc ->
          let emit row =
            output_string oc (String.concat "," (List.map csv_escape row) ^ "\n")
          in
          emit header;
          List.iter emit rows)

let table ~header rows =
  write_csv ~header rows;
  let all = header :: rows in
  let cols = List.fold_left (fun acc row -> Int.max acc (List.length row)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > width.(i) then width.(i) <- String.length cell)
        row)
    all;
  let print_row row =
    let padded = row @ List.init (cols - List.length row) (fun _ -> "") in
    List.iteri (fun i cell -> Printf.printf "%-*s  " width.(i) cell) padded;
    print_newline ()
  in
  print_row header;
  print_row (List.init cols (fun i -> String.make width.(i) '-'));
  List.iter print_row rows

let kv pairs =
  let width = List.fold_left (fun acc (k, _) -> Int.max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Printf.printf "  %-*s : %s\n" width k v) pairs

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.is_finite x then Printf.sprintf "%.4g" x
  else if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else "nan"

let fmt_bool b = if b then "yes" else "no"
