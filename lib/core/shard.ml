module Pieceset = P2p_pieceset.Pieceset

(* The partition discipline: a peer belongs to the shard that created
   it and never migrates.  Initial peers are dealt round-robin starting
   from their type's stratum (so a one-type flash crowd still spreads
   evenly); arrivals are Poisson-thinned, each shard owning an
   independent λ/S arrival stream.  Ownership is about *residence* —
   any shard's peer can still contact any other shard's peer, through
   the message boundary. *)

let stratum c ~shards =
  if shards <= 0 then invalid_arg "Shard.stratum: shards must be positive";
  Pieceset.hash c mod shards

let partition_counts ~shards initial =
  if shards <= 0 then invalid_arg "Shard.partition_counts: shards must be positive";
  let per = Array.make shards [] in
  List.iter
    (fun (c, count) ->
      if count < 0 then invalid_arg "Shard.partition_counts: negative count";
      let base = stratum c ~shards in
      (* Deal [count] peers round-robin from the stratum: shard
         [(base + j) mod shards] owns the j-th.  Emit one (type, share)
         entry per shard that receives at least one peer. *)
      for s = 0 to shards - 1 do
        let share = (count / shards) + (if (s - base + shards) mod shards < count mod shards then 1 else 0) in
        if share > 0 then per.(s) <- (c, share) :: per.(s)
      done)
    initial;
  Array.map List.rev per

(* A cross-shard contact offer: the uploader's type travels to the
   downloader's shard, which resolves the contact locally with its own
   generator.  [None] is the fixed seed (resident on shard 0). *)
type msg = { uploader : Pieceset.t option }

type route = Local | Remote of int | Nobody

(* Pick the downloader's shard for one contact: uniform over the global
   population as the resolving shard sees it — its own population live,
   the others' as of the last sync barrier.  [draw m] must return a
   uniform index in [0, m-1]. *)
let route ~draw ~me ~local_n ~remote =
  let total = ref local_n in
  Array.iteri (fun j nj -> if j <> me then total := !total + nj) remote;
  if !total <= 0 then Nobody
  else begin
    let r = draw !total in
    if r < local_n then Local
    else begin
      let rest = ref (r - local_n) in
      let dst = ref (-1) in
      (try
         Array.iteri
           (fun j nj ->
             if j <> me then
               if !rest < nj then begin
                 dst := j;
                 raise Exit
               end
               else rest := !rest - nj)
           remote
       with Exit -> ());
      if !dst < 0 then Nobody else Remote !dst
    end
  end
