(** Swarm simulation on a sparse contact topology.

    The paper's model is fully connected — every contact picks a uniform
    peer — and its conclusion asks whether the results survive on other
    topologies.  This simulator constrains peer contacts to a dynamic
    random graph: each arriving peer attaches to [degree] uniformly chosen
    existing peers (a tracker handing out a random peer set), keeps those
    links until it departs, and uploads only to its neighbors.  The fixed
    seed remains globally reachable (it is a server, not an overlay
    member).

    Piece selection can be the model's random-useful choice, rarest-first
    with global knowledge, or rarest-first estimated from the uploader's
    {e neighborhood} only — the distributed estimate Section VIII-A
    gestures at.  [degree = None] recovers the paper's fully-connected
    model exactly (a test checks the agreement with {!Sim_agent}).

    Built on {!Engine}, so the full fault/telemetry families apply: seed
    outages, churn (aborting in-progress peers, their graph links
    removed with them), transfer loss, and an attached
    {!P2p_obs.Probe.t} with the probes-observe-never-perturb bit-identity
    guarantee. *)

module Pieceset = P2p_pieceset.Pieceset

type piece_choice =
  | Random_useful
  | Rarest_global  (** rarity counted over the whole swarm *)
  | Rarest_local  (** rarity counted over the uploader's neighbors (and itself) *)

type config = {
  params : Params.t;
  degree : int option;  (** attachments per arrival; [None] = fully connected *)
  choice : piece_choice;
  initial : (Pieceset.t * int) list;
      (** initial peers, attached to each other by the same random rule *)
  faults : Faults.t;  (** fault injection; {!Faults.none} = the paper's model *)
}

val default_config : Params.t -> config
(** Fully connected, random-useful, no faults. *)

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  departures : int;
  silent_contacts : int;  (** ticks that uploaded nothing (isolated or useless) *)
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
      (** the [max_events] budget ran out before [horizon]; every
          time-based statistic is biased toward the frozen state *)
  outage_time : float;  (** total time the fixed seed spent down *)
  aborted_peers : int;  (** churn departures (also counted in [departures]) *)
  lost_transfers : int;  (** uploads dropped by transfer loss *)
  samples : (float * int) array;
  club_samples : (float * float) array;
      (** max over pieces of the fraction of peers missing exactly that
          piece — the topology-agnostic one-club witness *)
  mean_degree_time_avg : float;
  final_component_sizes : int list;  (** sorted descending *)
}

val run :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats * State.t

val run_seeded :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  seed:int ->
  config ->
  horizon:float ->
  stats * State.t
(** Self-contained seeded run (constructs the RNG from [seed]), as the
    replication runner's determinism contract requires. *)
