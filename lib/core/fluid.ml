module Pieceset = P2p_pieceset.Pieceset

type trajectory = {
  times : float array;
  totals : float array;
  states : float array array;
}

let dim (p : Params.t) = 1 lsl p.k

(* Augmented tail appended after the [dim p] type densities when the
   right-hand side is asked to track cumulative flows: the integral of
   each event-rate band, so the fluid backend's counters are exact ODE
   outputs instead of post-hoc sums. *)
let aug_slots = 7
let aug_arrivals = 0
let aug_transfers = 1
let aug_completions = 2
let aug_departures = 3
let aug_aborted = 4
let aug_lost = 5
let aug_pop_integral = 6

let of_state ~k state =
  let x = Array.make (1 lsl k) 0.0 in
  State.iter state (fun c v -> x.(Pieceset.to_index c) <- float_of_int v);
  x

let total x = Array.fold_left ( +. ) 0.0 x

let total_types x d =
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    acc := !acc +. x.(i)
  done;
  !acc

(* The raw mean-field RHS divides per-type flows by the population [n];
   at the origin (empty swarm) that ratio is 0/0 and the exact dynamics
   have a power-law boundary layer the error controller cannot step
   through.  Flooring the divisor at [n_floor] makes the RHS Lipschitz
   there: flows scale down linearly once the population drops below a
   nano-peer, which no trajectory of interest ever resolves, and the
   floor is exact identity for any [n >= n_floor] — the generator-drift
   cross-check test pins bit-identity on integer-count states. *)
let n_floor = 1e-9

(* Γ_{C,C∪{i}} of Eq. (1) with real-valued occupancies; [c] is the dense
   index (bitmask) of the type.  [us_scale] modulates the fixed seed's
   rate (0 while a seed outage holds, 1 nominally). *)
let flow (p : Params.t) ~us_scale x ~n ~c ~piece =
  let xc = x.(c) in
  if xc <= 0.0 || n <= 0.0 then 0.0
  else begin
    let cset = Pieceset.of_index c in
    let seed_part = us_scale *. p.us /. float_of_int (Pieceset.missing_count ~k:p.k cset) in
    let peer_part = ref 0.0 in
    for s = 0 to dim p - 1 do
      if x.(s) > 0.0 then begin
        let sset = Pieceset.of_index s in
        if Pieceset.mem piece sset then begin
          let extra = Pieceset.cardinal (Pieceset.diff sset cset) in
          peer_part := !peer_part +. (x.(s) /. float_of_int extra)
        end
      end
    done;
    xc /. n *. (seed_part +. (p.mu *. !peer_part))
  end

(* The full right-hand side, shared by the plain [derivative] (nominal
   parameters) and the fluid simulator (fault-modulated, augmented).
   With [us_scale = 1, abort_rate = 0, loss_factor = 1] and a bare
   [dim p] vector this computes bit-for-bit what the pre-adaptive
   [derivative] did — the Lyapunov drift cross-check test pins that. *)
let drift_into (p : Params.t) ~us_scale ~abort_rate ~loss_factor x dx =
  let d = dim p in
  if Array.length x < d then invalid_arg "Fluid.drift_into: state vector too short";
  if Array.length dx < d then invalid_arg "Fluid.drift_into: output vector too short";
  let augmented = Array.length dx >= d + aug_slots in
  Array.fill dx 0 (Array.length dx) 0.0;
  let pop = total_types x d in
  let n = Float.max pop n_floor in
  (* Arrivals. *)
  Array.iter
    (fun (c, rate) ->
      let i = Pieceset.to_index c in
      dx.(i) <- dx.(i) +. rate)
    p.arrivals;
  if augmented then dx.(d + aug_arrivals) <- Params.lambda_total p;
  let full = Pieceset.to_index (Params.full_set p) in
  let immediate = Params.immediate_departure p in
  (* Transfers. *)
  for c = 0 to d - 1 do
    if c <> full && x.(c) > 0.0 then begin
      let cset = Pieceset.of_index c in
      Pieceset.iter
        (fun piece ->
          let raw = flow p ~us_scale x ~n ~c ~piece in
          if raw > 0.0 then begin
            (* A lost upload consumes the contact but moves no mass. *)
            let eff = raw *. loss_factor in
            dx.(c) <- dx.(c) -. eff;
            let target = Pieceset.to_index (Pieceset.add piece cset) in
            let completes = target = full in
            (* γ = ∞: completion is departure, mass vanishes. *)
            if not (completes && immediate) then dx.(target) <- dx.(target) +. eff;
            if augmented then begin
              dx.(d + aug_transfers) <- dx.(d + aug_transfers) +. eff;
              dx.(d + aug_lost) <- dx.(d + aug_lost) +. (raw -. eff);
              if completes then begin
                dx.(d + aug_completions) <- dx.(d + aug_completions) +. eff;
                if immediate then dx.(d + aug_departures) <- dx.(d + aug_departures) +. eff
              end
            end
          end)
        (Pieceset.complement ~k:p.k cset)
    end
  done;
  (* Churn: every non-seed density drains at [abort_rate]. *)
  if abort_rate > 0.0 then
    for c = 0 to d - 1 do
      if c <> full && x.(c) > 0.0 then begin
        let r = abort_rate *. x.(c) in
        dx.(c) <- dx.(c) -. r;
        if augmented then begin
          dx.(d + aug_departures) <- dx.(d + aug_departures) +. r;
          dx.(d + aug_aborted) <- dx.(d + aug_aborted) +. r
        end
      end
    done;
  (* Peer-seed departures. *)
  if not immediate then begin
    let r = p.gamma *. x.(full) in
    dx.(full) <- dx.(full) -. r;
    if augmented then dx.(d + aug_departures) <- dx.(d + aug_departures) +. r
  end;
  if augmented then dx.(d + aug_pop_integral) <- pop

let derivative (p : Params.t) x =
  if Array.length x <> dim p then invalid_arg "Fluid.derivative: wrong vector size";
  let dx = Array.make (dim p) 0.0 in
  drift_into p ~us_scale:1.0 ~abort_rate:0.0 ~loss_factor:1.0 x dx;
  dx

let clamp_nonnegative x = Array.iteri (fun i v -> if v < 0.0 then x.(i) <- 0.0) x

(* Adaptive integration tolerances: tight enough that the discretisation
   error is invisible next to the mean-field approximation error, loose
   enough that million-peer densities integrate in milliseconds. *)
let integrate_control ~dt =
  Ode.control ~rtol:1e-8 ~atol:1e-10 ~init_step:dt ()

let validate_integrate (p : Params.t) ~init ~dt ~horizon ~record_every =
  if Array.length init <> dim p then invalid_arg "Fluid.integrate: wrong vector size";
  if not (Float.is_finite dt) || dt <= 0.0 || record_every < 1 then
    invalid_arg "Fluid.integrate: bad step parameters";
  if Float.is_nan horizon || horizon < 0.0 || not (Float.is_finite horizon) then
    invalid_arg "Fluid.integrate: bad horizon"

let integrate (p : Params.t) ~init ~dt ~horizon ~record_every =
  validate_integrate p ~init ~dt ~horizon ~record_every;
  let f _t y = derivative p y in
  let times = ref [] and totals = ref [] and states = ref [] in
  let record t x =
    let x = Array.copy x in
    clamp_nonnegative x;
    times := t :: !times;
    totals := total x :: !totals;
    states := x :: !states
  in
  record 0.0 init;
  if horizon > 0.0 then begin
    let session = Ode.session ~control:(integrate_control ~dt) ~f ~t0:0.0 ~y0:init () in
    (* Sample the dense output on the grid [i * dt * record_every]
       without constraining the steps the controller takes. *)
    let grid = dt *. float_of_int record_every in
    let gi = ref 1 in
    let on_step s =
      let t = Ode.time s in
      let next () = float_of_int !gi *. grid in
      while next () <= t && next () < horizon do
        record (next ()) (Ode.dense_eval s (next ()));
        incr gi
      done
    in
    (match Ode.advance ~on_step session ~to_:horizon with
    | Ode.Reached -> ()
    | Ode.Step_limit ->
        failwith "Fluid.integrate: step budget exhausted (is the ODE stiff at these params?)"
    | Ode.Stopped _ -> assert false);
    record horizon (Ode.state session)
  end;
  {
    times = Array.of_list (List.rev !times);
    totals = Array.of_list (List.rev !totals);
    states = Array.of_list (List.rev !states);
  }

let equilibrium ?(dt = 0.01) ?(horizon = 2000.0) ?(tol = 1e-7) (p : Params.t) ~init =
  if Array.length init <> dim p then invalid_arg "Fluid.equilibrium: wrong vector size";
  if not (Float.is_finite dt) || dt <= 0.0 then invalid_arg "Fluid.equilibrium: bad dt";
  if Float.is_nan horizon || horizon < 0.0 || not (Float.is_finite horizon) then
    invalid_arg "Fluid.equilibrium: bad horizon";
  let f _t y = derivative p y in
  let converged ~t:_ ~y =
    let x = derivative p y in
    let scale = Float.max 1.0 (total_types y (dim p)) in
    let norm = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x in
    norm < tol *. scale
  in
  let session = Ode.session ~control:(integrate_control ~dt) ~f ~t0:0.0 ~y0:init () in
  match Ode.advance ~until:converged session ~to_:horizon with
  | Ode.Stopped _ ->
      let x = Array.copy (Ode.state session) in
      clamp_nonnegative x;
      Some x
  | Ode.Reached | Ode.Step_limit -> None
