(* Domain fan-out for the sharded engine.

   Shards are assigned to domains statically — domain [d] runs shards
   [d, d + jobs, d + 2*jobs, …] — so the shard → domain mapping is a
   pure function of [(jobs, nshards)] and never depends on scheduling.
   Nothing about the *results* depends on the mapping either (each shard
   touches only its own slot), but a deterministic assignment keeps
   per-domain wall-clock attribution stable run to run.

   Domains are spawned per round rather than parked in a persistent
   pool: a sharded run performs a few hundred sync windows, and at
   ~50 µs per [Domain.spawn] the total spawn cost is milliseconds —
   while a persistent pool would need a blocking barrier (or worse,
   spin-waiting workers, which on an oversubscribed box steal quanta
   from the domains doing real work).  If window counts ever grow by
   orders of magnitude this is the first thing to revisit. *)

let run ~jobs n f =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let jobs = Int.min jobs n in
    let stride i =
      let j = ref i in
      while !j < n do
        f !j;
        j := !j + jobs
      done
    in
    let workers = Array.init (jobs - 1) (fun d -> Domain.spawn (fun () -> stride (d + 1))) in
    stride 0;
    Array.iter Domain.join workers
  end
