(** Deterministic domain fan-out for the sharded engine.

    [run ~jobs n f] evaluates [f i] for every [i] in [0, n-1], spread
    over at most [jobs] domains (the caller's domain included).  The
    shard → domain assignment is static ([i mod jobs]), so it is a pure
    function of [(jobs, n)]; with [jobs <= 1] everything runs inline on
    the calling domain.  [f] must touch only data owned by index [i] —
    the engine's shard slots satisfy this by construction — because no
    synchronisation beyond the final join is provided. *)

val run : jobs:int -> int -> (int -> unit) -> unit
