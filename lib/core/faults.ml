module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist

type outage = { mean_up : float; mean_down : float }

type t = { outage : outage option; abort_rate : float; loss_prob : float }

let none = { outage = None; abort_rate = 0.0; loss_prob = 0.0 }

let make ?outage ?(abort_rate = 0.0) ?(loss_prob = 0.0) () =
  let outage =
    Option.map
      (fun (mean_up, mean_down) ->
        let positive name v =
          if not (Float.is_finite v && v > 0.0) then
            invalid_arg (Printf.sprintf "Faults.make: %s must be finite > 0, got %g" name v)
        in
        positive "outage mean_up" mean_up;
        positive "outage mean_down" mean_down;
        { mean_up; mean_down })
      outage
  in
  if not (Float.is_finite abort_rate && abort_rate >= 0.0) then
    invalid_arg (Printf.sprintf "Faults.make: abort_rate must be finite >= 0, got %g" abort_rate);
  if not (Float.is_finite loss_prob && loss_prob >= 0.0 && loss_prob <= 1.0) then
    invalid_arg (Printf.sprintf "Faults.make: loss_prob must be in [0, 1], got %g" loss_prob);
  { outage; abort_rate; loss_prob }

let is_none t = t.outage = None && t.abort_rate = 0.0 && t.loss_prob = 0.0

let uptime_fraction t =
  match t.outage with
  | None -> 1.0
  | Some { mean_up; mean_down } -> mean_up /. (mean_up +. mean_down)

let effective_us t ~us = us *. uptime_fraction t

let pp fmt t =
  if is_none t then Format.pp_print_string fmt "no faults"
  else begin
    Format.fprintf fmt "@[<h>";
    (match t.outage with
    | Some o ->
        Format.fprintf fmt "seed outage Exp(up %g)/Exp(down %g) (duty %.3f)" o.mean_up
          o.mean_down (uptime_fraction t)
    | None -> ());
    if t.abort_rate > 0.0 then Format.fprintf fmt " abort-rate %g" t.abort_rate;
    if t.loss_prob > 0.0 then Format.fprintf fmt " loss-prob %g" t.loss_prob;
    Format.fprintf fmt "@]"
  end

type run = {
  spec : t;
  frng : Rng.t;  (* the dedicated fault stream; a dummy when spec is none *)
  mutable up : bool;
  mutable toggle_at : float;
  mutable went_down_at : float;
  mutable down_total : float;
  mutable observer : (now:float -> up:bool -> unit) option;
}

let draw_period run =
  match run.spec.outage with
  | None -> infinity
  | Some { mean_up; mean_down } ->
      let mean = if run.up then mean_up else mean_down in
      Dist.exponential run.frng ~rate:(1.0 /. mean)

let start spec ~rng =
  (* Splitting advances the parent generator, so only do it when a fault
     can actually draw: a [none] spec must leave [rng] untouched for the
     bit-identity regression guarantee. *)
  let frng = if is_none spec then Rng.of_seed 0 else Rng.split rng in
  let run =
    { spec; frng; up = true; toggle_at = infinity; went_down_at = 0.0; down_total = 0.0;
      observer = None }
  in
  run.toggle_at <- draw_period run;
  run

let seed_up run = run.up
let next_toggle run = run.toggle_at

let toggle run ~now =
  run.up <- not run.up;
  if run.up then run.down_total <- run.down_total +. (now -. run.went_down_at)
  else run.went_down_at <- now;
  run.toggle_at <- now +. draw_period run;
  match run.observer with Some f -> f ~now ~up:run.up | None -> ()

let set_observer run f = run.observer <- Some f

let finish run ~now =
  if not run.up then begin
    run.down_total <- run.down_total +. (now -. run.went_down_at);
    run.went_down_at <- now
  end

let outage_time run = run.down_total

let lost run = run.spec.loss_prob > 0.0 && Rng.bernoulli run.frng ~p:run.spec.loss_prob
