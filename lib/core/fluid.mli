(** Deterministic fluid (mean-field) limit of the type-count dynamics.

    Scaling initial state and arrival rates by a factor going to infinity,
    the density of each type follows the ODE obtained by replacing the
    jump rates of Eq. (1) by their drift (the approach of Massoulié &
    Vojnović's coupon-replication analysis, cited as [11]):

    {v ẋ_C = λ_C + Σ_{i∈C} Γ_{C−i,C}(x) − Σ_{i∉C} Γ_{C,C∪i}(x) − γ·x_F·[C=F] v}

    with [Γ] evaluated at real-valued [x].  Integration is adaptive
    Dormand–Prince 5(4) ({!Ode}) with dense-output sampling, so
    trajectories are recorded on an exact sim-time grid regardless of
    the steps the error controller takes.  Inside the stability region
    trajectories approach a finite equilibrium; in the transient region
    the one-club coordinate grows linearly — the fluid picture of the
    missing piece syndrome.  {!Sim_fluid} wraps this RHS in the shared
    {!Engine} (telemetry, faults, counters); this module is the bare
    maths. *)

module Pieceset = P2p_pieceset.Pieceset

type trajectory = {
  times : float array;
  totals : float array;  (** total population n(t) *)
  states : float array array;  (** row per recorded time; index = bitmask *)
}

val dim : Params.t -> int
(** Number of type densities: [2^k] piece-set bitmasks. *)

val of_state : k:int -> State.t -> float array
(** Dense vector from a discrete state. *)

val derivative : Params.t -> float array -> float array
(** The right-hand side of the ODE at nominal parameters.
    @raise Invalid_argument on a wrong-size vector. *)

(** {1 Generalised right-hand side (the fluid backend's RHS)} *)

val aug_slots : int
(** The fluid simulator appends this many cumulative-flow slots after
    the [dim p] densities; {!drift_into} fills their rates so event
    counters come out of the integrator exactly. *)

val aug_arrivals : int
val aug_transfers : int
val aug_completions : int
val aug_departures : int
val aug_aborted : int
val aug_lost : int

val aug_pop_integral : int
(** Index offsets (from [dim p]) of each augmented slot; the last one
    accumulates [∫ n(t) dt] for exact time-averaged population. *)

val drift_into :
  Params.t ->
  us_scale:float ->
  abort_rate:float ->
  loss_factor:float ->
  float array ->
  float array ->
  unit
(** [drift_into p ~us_scale ~abort_rate ~loss_factor x dx] writes the
    fault-modulated drift of [x] into [dx] (overwriting it).  [us_scale]
    multiplies the fixed seed's upload rate (0 during a seed outage),
    [abort_rate] drains every non-seed density (churn), [loss_factor]
    is the fraction of uploads that actually deliver (1 - loss
    probability) — lost uploads consume contacts but move no mass.
    Only the first [dim p] entries of [x] are read; if [dx] has at
    least [dim p + aug_slots] entries the cumulative-flow rates are
    written after the densities.  With nominal parameters this is
    bit-identical to {!derivative}.
    @raise Invalid_argument on short vectors. *)

val clamp_nonnegative : float array -> unit
(** Zero out tiny negative densities (integration round-off) in place —
    applied to {e outputs}, never mid-integration. *)

(** {1 Integration} *)

val integrate :
  Params.t -> init:float array -> dt:float -> horizon:float -> record_every:int -> trajectory
(** Adaptive integration over [[0, horizon]], recorded on the grid
    [i * dt * record_every] (plus the horizon itself); [dt] seeds the
    controller's first trial step.  @raise Invalid_argument if [dt] is
    not finite positive, [record_every < 1], [horizon] is NaN, negative
    or infinite, or [init] has the wrong size. *)

val equilibrium :
  ?dt:float -> ?horizon:float -> ?tol:float -> Params.t -> init:float array -> float array option
(** Integrate until the derivative's max-norm falls below [tol] (relative
    to the state scale); [None] if the horizon is hit first (e.g. in the
    transient regime).  @raise Invalid_argument as {!integrate}. *)

val total : float array -> float
