module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Probe = P2p_obs.Probe
module Hist = P2p_obs.Hist

type dwell = Exp_dwell | Deterministic_dwell | Erlang_dwell of int

type config = {
  params : Params.t;
  policy : Policy.t;
  dwell : dwell;
  eta : float;
  rare_piece : int;
  initial : (Pieceset.t * int) list;
  faults : Faults.t;
}

let default_config params =
  { params; policy = Policy.random_useful; dwell = Exp_dwell; eta = 1.0; rare_piece = 0;
    initial = []; faults = Faults.none }

type groups = {
  young : int;
  infected : int;
  gifted : int;
  one_club : int;
  former_one_club : int;
}

let groups_total g = g.young + g.infected + g.gifted + g.one_club + g.former_one_club

type peer = {
  id : int;
  mutable pieces : Pieceset.t;
  arrival_time : float;
  gifted : bool;
  mutable infected : bool;
  mutable was_one_club : bool;
  mutable boosted : bool;  (* last contact attempt found nothing useful *)
  mutable slot : int;  (* index in the population array; -1 once departed *)
  mutable departed : bool;
}

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
  group_samples : (float * groups) array;
  mean_sojourn : float;
  sojourn_count : int;
  one_club_time_fraction : float;
}

(* Dynamic array of live peers with O(1) swap-removal. *)
module Population = struct
  type t = { mutable peers : peer array; mutable len : int; mutable boosted_count : int }

  let create () = { peers = [||]; len = 0; boosted_count = 0 }
  let size t = t.len

  let add t peer =
    if t.len = Array.length t.peers then begin
      let bigger = Array.make (Int.max 16 (2 * t.len)) peer in
      Array.blit t.peers 0 bigger 0 t.len;
      t.peers <- bigger
    end;
    peer.slot <- t.len;
    t.peers.(t.len) <- peer;
    t.len <- t.len + 1;
    if peer.boosted then t.boosted_count <- t.boosted_count + 1

  let remove t peer =
    let i = peer.slot in
    if i < 0 || i >= t.len || t.peers.(i) != peer then invalid_arg "Population.remove";
    if peer.boosted then t.boosted_count <- t.boosted_count - 1;
    t.len <- t.len - 1;
    if i <> t.len then begin
      t.peers.(i) <- t.peers.(t.len);
      t.peers.(i).slot <- i
    end;
    peer.slot <- -1;
    peer.departed <- true

  let set_boosted t peer value =
    if peer.boosted <> value then begin
      peer.boosted <- value;
      t.boosted_count <- (t.boosted_count + if value then 1 else -1)
    end

  let uniform t rng =
    if t.len = 0 then invalid_arg "Population.uniform: empty";
    t.peers.(Rng.int_below rng t.len)

  (* Sample a peer with weight 1 for normal and [eta] for boosted peers. *)
  let weighted t rng ~eta =
    if eta = 1.0 then uniform t rng
    else begin
      let normal = float_of_int (t.len - t.boosted_count) in
      let boosted = eta *. float_of_int t.boosted_count in
      let pick_boosted = Rng.float rng *. (normal +. boosted) >= normal in
      (* Rejection sample within the chosen class. *)
      let rec find () =
        let peer = t.peers.(Rng.int_below rng t.len) in
        if peer.boosted = pick_boosted then peer else find ()
      in
      if t.len = t.boosted_count || t.boosted_count = 0 then uniform t rng else find ()
    end

  let contact_rate t ~mu ~eta =
    mu *. (float_of_int (t.len - t.boosted_count) +. (eta *. float_of_int t.boosted_count))

  let iter t f =
    for i = 0 to t.len - 1 do
      f t.peers.(i)
    done
end

let classify_groups config pop =
  let full = Params.full_set config.params in
  let one_club_type = Pieceset.remove config.rare_piece full in
  let g = ref { young = 0; infected = 0; gifted = 0; one_club = 0; former_one_club = 0 } in
  Population.iter pop (fun peer ->
      let c = !g in
      if peer.gifted then g := { c with gifted = c.gifted + 1 }
      else if peer.infected then g := { c with infected = c.infected + 1 }
      else if Pieceset.equal peer.pieces one_club_type then g := { c with one_club = c.one_club + 1 }
      else if peer.was_one_club then g := { c with former_one_club = c.former_one_club + 1 }
      else g := { c with young = c.young + 1 });
  !g

let sample_dwell config rng =
  let gamma = config.params.gamma in
  match config.dwell with
  | Exp_dwell -> Dist.exponential rng ~rate:gamma
  | Deterministic_dwell -> 1.0 /. gamma
  | Erlang_dwell m ->
      if m < 1 then invalid_arg "Sim_agent: Erlang stages must be >= 1";
      let stage_rate = float_of_int m *. gamma in
      let total = ref 0.0 in
      for _ = 1 to m do
        total := !total +. Dist.exponential rng ~rate:stage_rate
      done;
      !total

let run ?(probe = Probe.none) ?sample_every ?max_events ~rng config ~horizon =
  let p = config.params in
  if config.eta < 1.0 then invalid_arg "Sim_agent.run: eta must be >= 1";
  if config.rare_piece < 0 || config.rare_piece >= p.k then
    invalid_arg "Sim_agent.run: rare piece out of range";
  let common, (state, group_samples, sojourn, club_avg) =
    Engine.drive ~probe ?sample_every ?max_events ~name:"sim_agent" ~rng
      ~faults:config.faults ~horizon (fun h ->
        let tracing = probe.Probe.tracing in
        let full = Params.full_set p in
        let one_club_type = Pieceset.remove config.rare_piece full in
        let pop = Population.create () in
        let state = State.create () in
        let departures_heap : peer P2p_des.Heap.t = P2p_des.Heap.create () in
        let next_id = ref 0 in
        let sojourn = P2p_stats.Welford.create () in
        let club_avg = P2p_stats.Timeavg.create () in
        let seed_boosted = ref false in
        let lambda_total = Params.lambda_total p in
        (* Walker alias table, as in Sim_markov: O(1) arrival-type draws. *)
        let arrival_alias = Dist.Alias.make (Array.map snd p.arrivals) in
        let counters = Engine.counters h in
        let frun = Engine.faults h in
        let abort_rate = config.faults.abort_rate in

        let new_peer c ~time =
          let peer =
            {
              id = !next_id;
              pieces = c;
              arrival_time = time;
              gifted = Pieceset.mem config.rare_piece c;
              infected = false;
              was_one_club = Pieceset.equal c one_club_type;
              boosted = false;
              slot = -1;
              departed = false;
            }
          in
          incr next_id;
          Population.add pop peer;
          State.add_peer state c;
          peer
        in
        let depart peer ~time =
          Population.remove pop peer;
          State.remove_peer state peer.pieces;
          counters.departures <- counters.departures + 1;
          P2p_stats.Welford.add sojourn (time -. peer.arrival_time)
        in
        let schedule_departure peer ~time =
          let dwell = sample_dwell config rng in
          ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
        in
        (* Give a piece to [peer]; updates flags and departures. *)
        let deliver peer piece ~time =
          counters.transfers <- counters.transfers + 1;
          let was_one_club_now = Pieceset.equal peer.pieces one_club_type in
          let target = Pieceset.add piece peer.pieces in
          if tracing then
            Probe.transfer probe ~time ~piece ~completed:(Pieceset.equal target full);
          if piece = config.rare_piece && (not peer.gifted) && not was_one_club_now then
            peer.infected <- true;
          if Pieceset.equal target one_club_type then peer.was_one_club <- true;
          if Pieceset.equal target full && Params.immediate_departure p then begin
            counters.completions <- counters.completions + 1;
            State.remove_peer state peer.pieces;
            peer.pieces <- target;
            Population.remove pop peer;
            counters.departures <- counters.departures + 1;
            P2p_stats.Welford.add sojourn (time -. peer.arrival_time);
            if tracing then Probe.departure probe ~time Completed
          end
          else begin
            State.move_peer state ~from_:peer.pieces ~to_:target;
            peer.pieces <- target;
            (* Receiving a piece changes what the peer can offer, so the
               unsuccessful-contact speedup (Section VIII-C) no longer applies:
               reset the clock to its normal rate. *)
            Population.set_boosted pop peer false;
            if Pieceset.equal target full then begin
              counters.completions <- counters.completions + 1;
              schedule_departure peer ~time
            end
          end
        in
        (* Resolve one contact from [uploader] (None = fixed seed). *)
        let contact_tm = Hist.timer (Hist.get probe.Probe.hists "sim_agent/contact") in
        let contact uploader ~time =
          let c_t0 = Hist.tick contact_tm in
          (if Population.size pop = 0 then ()
          else begin
            let downloader = Population.uniform pop rng in
            let uploader_arg =
              match uploader with None -> Policy.Fixed_seed | Some peer -> Policy.Peer peer.pieces
            in
            let choice =
              match uploader with
              | Some up when up == downloader -> None (* self-contact is never useful *)
              | _ ->
                  Policy.sample config.policy ~rng ~k:p.k ~state ~uploader:uploader_arg
                    ~downloader:downloader.pieces
            in
            let success = Option.is_some choice in
            if tracing then
              Probe.contact probe ~time ~seed:(Option.is_none uploader) ~useful:success;
            (match uploader with
            | None -> seed_boosted := not success
            | Some up -> if not up.departed then Population.set_boosted pop up (not success));
            match choice with
            | Some _ when Faults.lost frun ->
                (* Uploader found a useful piece but the transfer dropped: the
                   contact counts as successful for the retry speedup (something
                   useful was on offer), yet nothing is delivered. *)
                counters.lost <- counters.lost + 1;
                if tracing then Probe.transfer_lost probe ~time
            | Some piece -> deliver downloader piece ~time
            | None -> ()
          end);
          Hist.tock contact_tm c_t0
        in

        (* Initial population. *)
        List.iter
          (fun (c, count) ->
            for _ = 1 to count do
              let peer = new_peer c ~time:0.0 in
              if Pieceset.equal c full then
                if Params.immediate_departure p then
                  invalid_arg "Sim_agent.run: initial peer seeds need finite gamma"
                else schedule_departure peer ~time:0.0
            done)
          config.initial;

        let observe time =
          let n = Population.size pop in
          Engine.observe h ~time ~n;
          let club =
            if n = 0 then 0.0
            else begin
              let club_count =
                State.count state one_club_type
                + if Params.immediate_departure p then 0 else State.count state full
              in
              float_of_int club_count /. float_of_int n
            end
          in
          P2p_stats.Timeavg.observe club_avg ~time ~value:club
        in
        observe 0.0;

        let group_samples = P2p_stats.Vec.create () in

        (* Rate bands, stashed by [total_rate] for [apply]'s dispatch. *)
        let rate_arrival = ref 0.0 in
        let rate_seed = ref 0.0 in
        let rate_peers = ref 0.0 in
        let total_rate () =
          let n = Population.size pop in
          rate_arrival := lambda_total;
          rate_seed :=
            (if n = 0 || not (Faults.seed_up frun) then 0.0
             else if !seed_boosted then config.eta *. p.us
             else p.us);
          rate_peers := Population.contact_rate pop ~mu:p.mu ~eta:config.eta;
          let rate_abort = abort_rate *. float_of_int (n - State.count state full) in
          !rate_arrival +. !rate_seed +. !rate_peers +. rate_abort
        in
        let apply ~time ~u =
          if u < !rate_arrival then begin
            let idx = Dist.Alias.sample rng arrival_alias in
            let c = fst p.arrivals.(idx) in
            let peer = new_peer c ~time in
            counters.arrivals <- counters.arrivals + 1;
            if tracing then Probe.arrival probe ~time ~pieces:c;
            if Pieceset.equal c full then schedule_departure peer ~time
          end
          else if u < !rate_arrival +. !rate_seed then contact None ~time
          else if u < !rate_arrival +. !rate_seed +. !rate_peers then begin
            let uploader = Population.weighted pop rng ~eta:config.eta in
            contact (Some uploader) ~time
          end
          else begin
            (* Churn: a uniformly chosen in-progress peer abandons its
               download.  rate_abort > 0 guarantees a non-seed peer exists. *)
            let rec pick () =
              let peer = Population.uniform pop rng in
              if Pieceset.equal peer.pieces full then pick () else peer
            in
            depart (pick ()) ~time;
            counters.aborted <- counters.aborted + 1;
            if tracing then Probe.departure probe ~time Aborted
          end;
          observe time
        in
        let model =
          {
            Engine.total_rate;
            apply;
            next_scheduled =
              (fun () ->
                match P2p_des.Heap.min_key departures_heap with
                | Some d -> d
                | None -> infinity);
            scheduled =
              (fun ~time ->
                match P2p_des.Heap.pop_min departures_heap with
                | Some (_, peer) ->
                    if not peer.departed then begin
                      depart peer ~time;
                      if tracing then
                        Probe.departure probe ~time Seed_departed
                    end;
                    observe time
                | None -> assert false);
            population = (fun () -> Population.size pop);
            extra_sample =
              (fun ~time -> P2p_stats.Vec.push group_samples (time, classify_groups config pop));
            probe_sample =
              (fun ~time ->
                Probe.sample ~time ~k:p.k ~n:(State.n state) ~count_of:(State.count state)
                  ~piece_counts:(State.piece_count_vector state ~k:p.k));
            finish = (fun ~time -> P2p_stats.Timeavg.close club_avg ~time);
          }
        in
        (model, (state, group_samples, sojourn, club_avg)))
  in
  let stats =
    {
      final_time = common.Engine.final_time;
      events = common.Engine.events;
      arrivals = common.Engine.arrivals;
      transfers = common.Engine.transfers;
      completions = common.Engine.completions;
      departures = common.Engine.departures;
      time_avg_n = common.Engine.time_avg_n;
      max_n = common.Engine.max_n;
      final_n = common.Engine.final_n;
      truncated = common.Engine.truncated;
      outage_time = common.Engine.outage_time;
      aborted_peers = common.Engine.aborted_peers;
      lost_transfers = common.Engine.lost_transfers;
      samples = common.Engine.samples;
      group_samples = P2p_stats.Vec.to_array group_samples;
      mean_sojourn = P2p_stats.Welford.mean sojourn;
      sojourn_count = P2p_stats.Welford.count sojourn;
      one_club_time_fraction = P2p_stats.Timeavg.average club_avg;
    }
  in
  (stats, state)

let run_seeded ?probe ?sample_every ?max_events ~seed config ~horizon =
  run ?probe ?sample_every ?max_events ~rng:(Rng.of_seed seed) config ~horizon

(* ---- the sharded run path ---- *)

type shard_report = {
  shards : int;
  windows : int;
  cross_messages : int;
  shard_events : int array;
  shard_final_n : int array;
}

let add_groups a b =
  {
    young = a.young + b.young;
    infected = a.infected + b.infected;
    gifted = a.gifted + b.gifted;
    one_club = a.one_club + b.one_club;
    former_one_club = a.former_one_club + b.former_one_club;
  }

let run_sharded ?(probes = fun _ -> Probe.none) ?sample_every ?max_events ?sync_every ?jobs
    ~shards ~rng config ~horizon =
  if shards < 1 then invalid_arg "Sim_agent.run_sharded: shards must be >= 1";
  if shards = 1 then begin
    let stats, state = run ~probe:(probes 0) ?sample_every ?max_events ~rng config ~horizon in
    ( stats,
      state,
      {
        shards = 1;
        windows = 0;
        cross_messages = 0;
        shard_events = [| stats.events |];
        shard_final_n = [| stats.final_n |];
      } )
  end
  else begin
    let p = config.params in
    if config.eta < 1.0 then invalid_arg "Sim_agent.run_sharded: eta must be >= 1";
    if config.rare_piece < 0 || config.rare_piece >= p.k then
      invalid_arg "Sim_agent.run_sharded: rare piece out of range";
    let full = Params.full_set p in
    let one_club_type = Pieceset.remove config.rare_piece full in
    let lambda_share = Params.lambda_total p /. float_of_int shards in
    let abort_rate = config.faults.abort_rate in
    let parts = Shard.partition_counts ~shards config.initial in
    let sharded, extras =
      Engine.drive_sharded ~probes ?sample_every ?max_events ?sync_every ?jobs
        ~name:"sim_agent" ~rng ~faults:config.faults ~horizon ~nshards:shards
        (fun ~shard ~rng ~send h ->
          (* One shard of the agent swarm: own peer table, dwell heap
             and statistics; the downloader of every contact is routed
             over the global population (own peers live, the rest from
             the last sync snapshot).  The unsuccessful-contact boost
             (Section VIII-C) is shard-local: a cross-shard upload's
             outcome is unknown to the uploader's shard, so its boost
             flag is left unchanged — documented in DESIGN §17. *)
          let probe = probes shard in
          let tracing = probe.Probe.tracing in
          let pop = Population.create () in
          let state = State.create () in
          let departures_heap : peer P2p_des.Heap.t = P2p_des.Heap.create () in
          let next_id = ref shard in
          let sojourn = P2p_stats.Welford.create () in
          (* Local one-club *count* (not fraction): counts sum across
             shards, fractions don't.  The merge divides by the global
             time-averaged population. *)
          let club_avg = P2p_stats.Timeavg.create () in
          let seed_boosted = ref false in
          let arrival_alias = Dist.Alias.make (Array.map snd p.arrivals) in
          let counters = Engine.counters h in
          let frun = Engine.faults h in
          let remote = Array.make shards 0 in
          let visible_remote () =
            let t = ref 0 in
            Array.iteri (fun j nj -> if j <> shard then t := !t + nj) remote;
            !t
          in
          let new_peer c ~time =
            let peer =
              {
                id = !next_id;
                pieces = c;
                arrival_time = time;
                gifted = Pieceset.mem config.rare_piece c;
                infected = false;
                was_one_club = Pieceset.equal c one_club_type;
                boosted = false;
                slot = -1;
                departed = false;
              }
            in
            (* Globally unique ids without cross-shard coordination. *)
            next_id := !next_id + shards;
            Population.add pop peer;
            State.add_peer state c;
            peer
          in
          let depart peer ~time =
            Population.remove pop peer;
            State.remove_peer state peer.pieces;
            counters.departures <- counters.departures + 1;
            P2p_stats.Welford.add sojourn (time -. peer.arrival_time)
          in
          let schedule_departure peer ~time =
            let dwell = sample_dwell config rng in
            ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
          in
          let deliver peer piece ~time =
            counters.transfers <- counters.transfers + 1;
            let was_one_club_now = Pieceset.equal peer.pieces one_club_type in
            let target = Pieceset.add piece peer.pieces in
            if tracing then
              Probe.transfer probe ~time ~piece ~completed:(Pieceset.equal target full);
            if piece = config.rare_piece && (not peer.gifted) && not was_one_club_now then
              peer.infected <- true;
            if Pieceset.equal target one_club_type then peer.was_one_club <- true;
            if Pieceset.equal target full && Params.immediate_departure p then begin
              counters.completions <- counters.completions + 1;
              State.remove_peer state peer.pieces;
              peer.pieces <- target;
              Population.remove pop peer;
              counters.departures <- counters.departures + 1;
              P2p_stats.Welford.add sojourn (time -. peer.arrival_time);
              if tracing then Probe.departure probe ~time Completed
            end
            else begin
              State.move_peer state ~from_:peer.pieces ~to_:target;
              peer.pieces <- target;
              Population.set_boosted pop peer false;
              if Pieceset.equal target full then begin
                counters.completions <- counters.completions + 1;
                schedule_departure peer ~time
              end
            end
          in
          let contact_tm = Hist.timer (Hist.get probe.Probe.hists "sim_agent/contact") in
          (* Resolve a locally-routed contact against a local downloader;
             [uploader = None] is the fixed seed (shard 0 only). *)
          let local_contact uploader ~time =
            let c_t0 = Hist.tick contact_tm in
            (if Population.size pop = 0 then ()
             else begin
               let downloader = Population.uniform pop rng in
               let uploader_arg =
                 match uploader with
                 | None -> Policy.Fixed_seed
                 | Some peer -> Policy.Peer peer.pieces
               in
               let choice =
                 match uploader with
                 | Some up when up == downloader -> None
                 | _ ->
                     Policy.sample config.policy ~rng ~k:p.k ~state ~uploader:uploader_arg
                       ~downloader:downloader.pieces
               in
               let success = Option.is_some choice in
               if tracing then
                 Probe.contact probe ~time ~seed:(Option.is_none uploader) ~useful:success;
               (match uploader with
               | None -> seed_boosted := not success
               | Some up -> if not up.departed then Population.set_boosted pop up (not success));
               match choice with
               | Some _ when Faults.lost frun ->
                   counters.lost <- counters.lost + 1;
                   if tracing then Probe.transfer_lost probe ~time
               | Some piece -> deliver downloader piece ~time
               | None -> ()
             end);
            Hist.tock contact_tm c_t0
          in
          (* Route one contact initiation globally: resolve locally or
             ship the uploader's pieces to the downloader's shard. *)
          let contact uploader ~time =
            match
              Shard.route ~draw:(Rng.int_below rng) ~me:shard ~local_n:(Population.size pop)
                ~remote
            with
            | Shard.Nobody -> ()
            | Shard.Local -> local_contact uploader ~time
            | Shard.Remote dst ->
                let up = match uploader with None -> None | Some peer -> Some peer.pieces in
                send ~time ~dst { Shard.uploader = up }
          in
          List.iter
            (fun (c, count) ->
              for _ = 1 to count do
                let peer = new_peer c ~time:0.0 in
                if Pieceset.equal c full then
                  if Params.immediate_departure p then
                    invalid_arg "Sim_agent.run_sharded: initial peer seeds need finite gamma"
                  else schedule_departure peer ~time:0.0
              done)
            parts.(shard);
          let observe time =
            Engine.observe h ~time ~n:(Population.size pop);
            let club_count =
              State.count state one_club_type
              + if Params.immediate_departure p then 0 else State.count state full
            in
            P2p_stats.Timeavg.observe club_avg ~time ~value:(float_of_int club_count)
          in
          observe 0.0;
          let group_samples = P2p_stats.Vec.create () in
          let rate_arrival = ref 0.0 in
          let rate_seed = ref 0.0 in
          let rate_peers = ref 0.0 in
          let total_rate () =
            let n = Population.size pop in
            rate_arrival := lambda_share;
            rate_seed :=
              (if shard <> 0 || n + visible_remote () = 0 || not (Faults.seed_up frun) then 0.0
               else if !seed_boosted then config.eta *. p.us
               else p.us);
            rate_peers := Population.contact_rate pop ~mu:p.mu ~eta:config.eta;
            let rate_abort = abort_rate *. float_of_int (n - State.count state full) in
            !rate_arrival +. !rate_seed +. !rate_peers +. rate_abort
          in
          let apply ~time ~u =
            if u < !rate_arrival then begin
              let idx = Dist.Alias.sample rng arrival_alias in
              let c = fst p.arrivals.(idx) in
              let peer = new_peer c ~time in
              counters.arrivals <- counters.arrivals + 1;
              if tracing then Probe.arrival probe ~time ~pieces:c;
              if Pieceset.equal c full then schedule_departure peer ~time
            end
            else if u < !rate_arrival +. !rate_seed then contact None ~time
            else if u < !rate_arrival +. !rate_seed +. !rate_peers then begin
              let uploader = Population.weighted pop rng ~eta:config.eta in
              contact (Some uploader) ~time
            end
            else begin
              let rec pick () =
                let peer = Population.uniform pop rng in
                if Pieceset.equal peer.pieces full then pick () else peer
              in
              depart (pick ()) ~time;
              counters.aborted <- counters.aborted + 1;
              if tracing then Probe.departure probe ~time Aborted
            end;
            observe time
          in
          let sh_deliver ~time ~src:_ (msg : Shard.msg) =
            (if Population.size pop = 0 then ()
             else begin
               let c_t0 = Hist.tick contact_tm in
               let downloader = Population.uniform pop rng in
               let uploader_arg =
                 match msg.Shard.uploader with
                 | None -> Policy.Fixed_seed
                 | Some c -> Policy.Peer c
               in
               let choice =
                 Policy.sample config.policy ~rng ~k:p.k ~state ~uploader:uploader_arg
                   ~downloader:downloader.pieces
               in
               let success = Option.is_some choice in
               if tracing then
                 Probe.contact probe ~time
                   ~seed:(Option.is_none msg.Shard.uploader)
                   ~useful:success;
               (match choice with
               | Some _ when Faults.lost frun ->
                   counters.lost <- counters.lost + 1;
                   if tracing then Probe.transfer_lost probe ~time
               | Some piece -> deliver downloader piece ~time
               | None -> ());
               Hist.tock contact_tm c_t0
             end);
            observe time
          in
          let sh_sync ~time:_ ~populations = Array.blit populations 0 remote 0 shards in
          let model =
            {
              Engine.total_rate;
              apply;
              next_scheduled =
                (fun () ->
                  match P2p_des.Heap.min_key departures_heap with
                  | Some d -> d
                  | None -> infinity);
              scheduled =
                (fun ~time ->
                  match P2p_des.Heap.pop_min departures_heap with
                  | Some (_, peer) ->
                      if not peer.departed then begin
                        depart peer ~time;
                        if tracing then Probe.departure probe ~time Seed_departed
                      end;
                      observe time
                  | None -> assert false);
              population = (fun () -> Population.size pop);
              extra_sample =
                (fun ~time ->
                  P2p_stats.Vec.push group_samples (time, classify_groups config pop));
              probe_sample =
                (fun ~time ->
                  Probe.sample ~time ~k:p.k ~n:(State.n state) ~count_of:(State.count state)
                    ~piece_counts:(State.piece_count_vector state ~k:p.k));
              finish = (fun ~time -> P2p_stats.Timeavg.close club_avg ~time);
            }
          in
          ( { Engine.sh_model = model; sh_deliver; sh_sync },
            (state, group_samples, sojourn, club_avg) ))
    in
    let common = sharded.Engine.sh_stats in
    let states = Array.map (fun (s, _, _, _) -> s) extras in
    let merged_state =
      State.of_counts (List.concat_map State.to_alist (Array.to_list states))
    in
    (* Group samples share the grid: sum fields per grid point. *)
    let per_groups = Array.map (fun (_, g, _, _) -> P2p_stats.Vec.to_array g) extras in
    let group_samples =
      Array.init
        (Array.length per_groups.(0))
        (fun g ->
          let tg, g0 = per_groups.(0).(g) in
          let acc = ref g0 in
          for i = 1 to shards - 1 do
            acc := add_groups !acc (snd per_groups.(i).(g))
          done;
          (tg, !acc))
    in
    let sojourn =
      Array.fold_left
        (fun acc (_, _, w, _) -> P2p_stats.Welford.merge acc w)
        (P2p_stats.Welford.create ()) extras
    in
    (* Ratio of time-averages: Σ club-count averages over the global
       time-averaged population (the unsharded path averages the
       instantaneous fraction instead; DESIGN §17 notes the drift). *)
    let club_sum =
      Array.fold_left (fun acc (_, _, _, c) -> acc +. P2p_stats.Timeavg.average c) 0.0 extras
    in
    let one_club_time_fraction =
      if common.Engine.time_avg_n > 0.0 then club_sum /. common.Engine.time_avg_n else 0.0
    in
    let stats =
      {
        final_time = common.Engine.final_time;
        events = common.Engine.events;
        arrivals = common.Engine.arrivals;
        transfers = common.Engine.transfers;
        completions = common.Engine.completions;
        departures = common.Engine.departures;
        time_avg_n = common.Engine.time_avg_n;
        max_n = common.Engine.max_n;
        final_n = common.Engine.final_n;
        truncated = common.Engine.truncated;
        outage_time = common.Engine.outage_time;
        aborted_peers = common.Engine.aborted_peers;
        lost_transfers = common.Engine.lost_transfers;
        samples = common.Engine.samples;
        group_samples;
        mean_sojourn = P2p_stats.Welford.mean sojourn;
        sojourn_count = P2p_stats.Welford.count sojourn;
        one_club_time_fraction;
      }
    in
    ( stats,
      merged_state,
      {
        shards;
        windows = sharded.Engine.sh_windows;
        cross_messages = sharded.Engine.sh_messages;
        shard_events = sharded.Engine.sh_events;
        shard_final_n = sharded.Engine.sh_final_n;
      } )
  end

let run_sharded_seeded ?probes ?sample_every ?max_events ?sync_every ?jobs ~shards ~seed config
    ~horizon =
  run_sharded ?probes ?sample_every ?max_events ?sync_every ?jobs ~shards
    ~rng:(Rng.of_seed seed) config ~horizon
