module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Probe = P2p_obs.Probe
module Profile = P2p_obs.Profile

type dwell = Exp_dwell | Deterministic_dwell | Erlang_dwell of int

type config = {
  params : Params.t;
  policy : Policy.t;
  dwell : dwell;
  eta : float;
  rare_piece : int;
  initial : (Pieceset.t * int) list;
  faults : Faults.t;
}

let default_config params =
  { params; policy = Policy.random_useful; dwell = Exp_dwell; eta = 1.0; rare_piece = 0;
    initial = []; faults = Faults.none }

type groups = {
  young : int;
  infected : int;
  gifted : int;
  one_club : int;
  former_one_club : int;
}

let groups_total g = g.young + g.infected + g.gifted + g.one_club + g.former_one_club

type peer = {
  id : int;
  mutable pieces : Pieceset.t;
  arrival_time : float;
  gifted : bool;
  mutable infected : bool;
  mutable was_one_club : bool;
  mutable boosted : bool;  (* last contact attempt found nothing useful *)
  mutable slot : int;  (* index in the population array; -1 once departed *)
  mutable departed : bool;
}

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
  group_samples : (float * groups) array;
  mean_sojourn : float;
  sojourn_count : int;
  one_club_time_fraction : float;
}

(* Dynamic array of live peers with O(1) swap-removal. *)
module Population = struct
  type t = { mutable peers : peer array; mutable len : int; mutable boosted_count : int }

  let create () = { peers = [||]; len = 0; boosted_count = 0 }
  let size t = t.len

  let add t peer =
    if t.len = Array.length t.peers then begin
      let bigger = Array.make (Int.max 16 (2 * t.len)) peer in
      Array.blit t.peers 0 bigger 0 t.len;
      t.peers <- bigger
    end;
    peer.slot <- t.len;
    t.peers.(t.len) <- peer;
    t.len <- t.len + 1;
    if peer.boosted then t.boosted_count <- t.boosted_count + 1

  let remove t peer =
    let i = peer.slot in
    if i < 0 || i >= t.len || t.peers.(i) != peer then invalid_arg "Population.remove";
    if peer.boosted then t.boosted_count <- t.boosted_count - 1;
    t.len <- t.len - 1;
    if i <> t.len then begin
      t.peers.(i) <- t.peers.(t.len);
      t.peers.(i).slot <- i
    end;
    peer.slot <- -1;
    peer.departed <- true

  let set_boosted t peer value =
    if peer.boosted <> value then begin
      peer.boosted <- value;
      t.boosted_count <- (t.boosted_count + if value then 1 else -1)
    end

  let uniform t rng =
    if t.len = 0 then invalid_arg "Population.uniform: empty";
    t.peers.(Rng.int_below rng t.len)

  (* Sample a peer with weight 1 for normal and [eta] for boosted peers. *)
  let weighted t rng ~eta =
    if eta = 1.0 then uniform t rng
    else begin
      let normal = float_of_int (t.len - t.boosted_count) in
      let boosted = eta *. float_of_int t.boosted_count in
      let pick_boosted = Rng.float rng *. (normal +. boosted) >= normal in
      (* Rejection sample within the chosen class. *)
      let rec find () =
        let peer = t.peers.(Rng.int_below rng t.len) in
        if peer.boosted = pick_boosted then peer else find ()
      in
      if t.len = t.boosted_count || t.boosted_count = 0 then uniform t rng else find ()
    end

  let contact_rate t ~mu ~eta =
    mu *. (float_of_int (t.len - t.boosted_count) +. (eta *. float_of_int t.boosted_count))

  let iter t f =
    for i = 0 to t.len - 1 do
      f t.peers.(i)
    done
end

let classify_groups config pop =
  let full = Params.full_set config.params in
  let one_club_type = Pieceset.remove config.rare_piece full in
  let g = ref { young = 0; infected = 0; gifted = 0; one_club = 0; former_one_club = 0 } in
  Population.iter pop (fun peer ->
      let c = !g in
      if peer.gifted then g := { c with gifted = c.gifted + 1 }
      else if peer.infected then g := { c with infected = c.infected + 1 }
      else if Pieceset.equal peer.pieces one_club_type then g := { c with one_club = c.one_club + 1 }
      else if peer.was_one_club then g := { c with former_one_club = c.former_one_club + 1 }
      else g := { c with young = c.young + 1 });
  !g

let sample_dwell config rng =
  let gamma = config.params.gamma in
  match config.dwell with
  | Exp_dwell -> Dist.exponential rng ~rate:gamma
  | Deterministic_dwell -> 1.0 /. gamma
  | Erlang_dwell m ->
      if m < 1 then invalid_arg "Sim_agent: Erlang stages must be >= 1";
      let stage_rate = float_of_int m *. gamma in
      let total = ref 0.0 in
      for _ = 1 to m do
        total := !total +. Dist.exponential rng ~rate:stage_rate
      done;
      !total

let run ?(probe = Probe.none) ?sample_every ?(max_events = 200_000_000) ~rng config ~horizon =
  let p = config.params in
  if config.eta < 1.0 then invalid_arg "Sim_agent.run: eta must be >= 1";
  if config.rare_piece < 0 || config.rare_piece >= p.k then
    invalid_arg "Sim_agent.run: rare piece out of range";
  let prof = probe.Probe.profile in
  let tracing = probe.Probe.tracing in
  let setup_span = Profile.start prof "sim_agent/setup" in
  let full = Params.full_set p in
  let one_club_type = Pieceset.remove config.rare_piece full in
  let pop = Population.create () in
  let state = State.create () in
  let departures_heap : peer P2p_des.Heap.t = P2p_des.Heap.create () in
  let next_id = ref 0 in
  let sojourn = P2p_stats.Welford.create () in
  let clock = ref 0.0 in
  let events = ref 0 in
  let arrivals = ref 0 in
  let transfers = ref 0 in
  let completions = ref 0 in
  let departures = ref 0 in
  let max_n = ref 0 in
  let avg = P2p_stats.Timeavg.create () in
  let club_avg = P2p_stats.Timeavg.create () in
  let seed_boosted = ref false in
  let lambda_total = Params.lambda_total p in
  (* Walker alias table, as in Sim_markov: O(1) arrival-type draws. *)
  let arrival_alias = Dist.Alias.make (Array.map snd p.arrivals) in
  let frun = Faults.start config.faults ~rng in
  if tracing then
    Faults.set_observer frun (fun ~now ~up -> Probe.event probe ~time:now (Seed_toggle { up }));
  let abort_rate = config.faults.abort_rate in
  let aborted = ref 0 in
  let lost = ref 0 in
  let truncated = ref false in

  let new_peer c ~time =
    let peer =
      {
        id = !next_id;
        pieces = c;
        arrival_time = time;
        gifted = Pieceset.mem config.rare_piece c;
        infected = false;
        was_one_club = Pieceset.equal c one_club_type;
        boosted = false;
        slot = -1;
        departed = false;
      }
    in
    incr next_id;
    Population.add pop peer;
    State.add_peer state c;
    peer
  in
  let depart peer ~time =
    Population.remove pop peer;
    State.remove_peer state peer.pieces;
    incr departures;
    P2p_stats.Welford.add sojourn (time -. peer.arrival_time)
  in
  let schedule_departure peer ~time =
    let dwell = sample_dwell config rng in
    ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
  in
  (* Give a piece to [peer]; updates flags and departures. *)
  let deliver peer piece ~time =
    incr transfers;
    let was_one_club_now = Pieceset.equal peer.pieces one_club_type in
    let target = Pieceset.add piece peer.pieces in
    if tracing then
      Probe.event probe ~time (Transfer { piece; completed = Pieceset.equal target full });
    if piece = config.rare_piece && (not peer.gifted) && not was_one_club_now then
      peer.infected <- true;
    if Pieceset.equal target one_club_type then peer.was_one_club <- true;
    if Pieceset.equal target full && Params.immediate_departure p then begin
      incr completions;
      State.remove_peer state peer.pieces;
      peer.pieces <- target;
      Population.remove pop peer;
      incr departures;
      P2p_stats.Welford.add sojourn (time -. peer.arrival_time);
      if tracing then Probe.event probe ~time (Departure { kind = Completed })
    end
    else begin
      State.move_peer state ~from_:peer.pieces ~to_:target;
      peer.pieces <- target;
      (* Receiving a piece changes what the peer can offer, so the
         unsuccessful-contact speedup (Section VIII-C) no longer applies:
         reset the clock to its normal rate. *)
      Population.set_boosted pop peer false;
      if Pieceset.equal target full then begin
        incr completions;
        schedule_departure peer ~time
      end
    end
  in
  (* Resolve one contact from [uploader] (None = fixed seed). *)
  let contact uploader ~time =
    if Population.size pop = 0 then ()
    else begin
      let downloader = Population.uniform pop rng in
      let uploader_arg =
        match uploader with None -> Policy.Fixed_seed | Some peer -> Policy.Peer peer.pieces
      in
      let choice =
        match uploader with
        | Some up when up == downloader -> None (* self-contact is never useful *)
        | _ ->
            Policy.sample config.policy ~rng ~k:p.k ~state ~uploader:uploader_arg
              ~downloader:downloader.pieces
      in
      let success = Option.is_some choice in
      if tracing then
        Probe.event probe ~time (Contact { seed = Option.is_none uploader; useful = success });
      (match uploader with
      | None -> seed_boosted := not success
      | Some up -> if not up.departed then Population.set_boosted pop up (not success));
      match choice with
      | Some _ when Faults.lost frun ->
          (* Uploader found a useful piece but the transfer dropped: the
             contact counts as successful for the retry speedup (something
             useful was on offer), yet nothing is delivered. *)
          incr lost;
          if tracing then Probe.event probe ~time Transfer_lost
      | Some piece -> deliver downloader piece ~time
      | None -> ()
    end
  in

  (* Initial population. *)
  List.iter
    (fun (c, count) ->
      for _ = 1 to count do
        let peer = new_peer c ~time:0.0 in
        if Pieceset.equal c full then
          if Params.immediate_departure p then
            invalid_arg "Sim_agent.run: initial peer seeds need finite gamma"
          else schedule_departure peer ~time:0.0
      done)
    config.initial;

  let observe time =
    let n = Population.size pop in
    P2p_stats.Timeavg.observe avg ~time ~value:(float_of_int n);
    let club =
      if n = 0 then 0.0
      else begin
        let club_count =
          State.count state one_club_type
          + if Params.immediate_departure p then 0 else State.count state full
        in
        float_of_int club_count /. float_of_int n
      end
    in
    P2p_stats.Timeavg.observe club_avg ~time ~value:club;
    if n > !max_n then max_n := n
  in
  observe 0.0;

  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let samples = P2p_stats.Vec.create () in
  let group_samples = P2p_stats.Vec.create () in
  let next_sample = ref 0.0 in
  (* Probe samples ride the sim-time grid (see Sim_markov for why). *)
  let probing = Probe.sampling probe in
  let next_probe = ref 0.0 in
  let emit_probe_sample () =
    probe.Probe.on_sample
      (Probe.sample ~time:!next_probe ~k:p.k ~n:(State.n state) ~count_of:(State.count state)
         ~piece_counts:(State.piece_count_vector state ~k:p.k))
  in
  let record_samples_through time =
    while !next_sample <= time && !next_sample <= horizon do
      P2p_stats.Vec.push samples (!next_sample, Population.size pop);
      P2p_stats.Vec.push group_samples (!next_sample, classify_groups config pop);
      next_sample := !next_sample +. sample_every
    done;
    if probing then
      while !next_probe <= time && !next_probe <= horizon do
        emit_probe_sample ();
        next_probe := !next_probe +. probe.Probe.interval
      done
  in
  record_samples_through 0.0;

  let running = ref true in
  Profile.stop setup_span;
  let loop_span = Profile.start prof "sim_agent/event-loop" in
  while !running do
    let n = Population.size pop in
    let rate_arrival = lambda_total in
    let rate_seed =
      if n = 0 || not (Faults.seed_up frun) then 0.0
      else if !seed_boosted then config.eta *. p.us
      else p.us
    in
    let rate_peers = Population.contact_rate pop ~mu:p.mu ~eta:config.eta in
    let rate_abort = abort_rate *. float_of_int (n - State.count state full) in
    let total = rate_arrival +. rate_seed +. rate_peers +. rate_abort in
    let dt = Dist.exponential rng ~rate:total in
    let t_candidate = !clock +. dt in
    (* Scheduled departures and outage toggles act as time barriers for
       the exponential race. *)
    let next_departure = P2p_des.Heap.min_key departures_heap in
    let toggle = Faults.next_toggle frun in
    let toggle_first =
      toggle <= t_candidate && toggle <= horizon
      && (match next_departure with Some d -> toggle <= d | None -> true)
    in
    let departure_first =
      (not toggle_first)
      && match next_departure with Some d -> d <= t_candidate && d <= horizon | None -> false
    in
    if toggle_first then begin
      record_samples_through toggle;
      clock := toggle;
      Faults.toggle frun ~now:toggle
    end
    else if departure_first then begin
      match P2p_des.Heap.pop_min departures_heap with
      | Some (time, peer) ->
          record_samples_through time;
          clock := time;
          incr events;
          if not peer.departed then begin
            depart peer ~time;
            if tracing then Probe.event probe ~time (Departure { kind = Seed_departed })
          end;
          observe time
      | None -> assert false
    end
    else if t_candidate > horizon || !events >= max_events then begin
      if t_candidate <= horizon then truncated := true;
      record_samples_through horizon;
      P2p_stats.Timeavg.close avg ~time:horizon;
      P2p_stats.Timeavg.close club_avg ~time:horizon;
      clock := horizon;
      running := false
    end
    else begin
      record_samples_through t_candidate;
      clock := t_candidate;
      incr events;
      let u = Rng.float rng *. total in
      if u < rate_arrival then begin
        let idx = Dist.Alias.sample rng arrival_alias in
        let c = fst p.arrivals.(idx) in
        let peer = new_peer c ~time:!clock in
        incr arrivals;
        if tracing then Probe.event probe ~time:!clock (Arrival { pieces = c });
        if Pieceset.equal c full then schedule_departure peer ~time:!clock
      end
      else if u < rate_arrival +. rate_seed then contact None ~time:!clock
      else if u < rate_arrival +. rate_seed +. rate_peers then begin
        let uploader = Population.weighted pop rng ~eta:config.eta in
        contact (Some uploader) ~time:!clock
      end
      else begin
        (* Churn: a uniformly chosen in-progress peer abandons its
           download.  rate_abort > 0 guarantees a non-seed peer exists. *)
        let rec pick () =
          let peer = Population.uniform pop rng in
          if Pieceset.equal peer.pieces full then pick () else peer
        in
        depart (pick ()) ~time:!clock;
        incr aborted;
        if tracing then Probe.event probe ~time:!clock (Departure { kind = Aborted })
      end;
      observe !clock
    end
  done;
  Profile.stop loop_span;
  let finish_span = Profile.start prof "sim_agent/finalise" in
  Faults.finish frun ~now:!clock;
  let stats =
    {
      final_time = !clock;
      events = !events;
      arrivals = !arrivals;
      transfers = !transfers;
      completions = !completions;
      departures = !departures;
      time_avg_n = P2p_stats.Timeavg.average avg;
      max_n = !max_n;
      final_n = Population.size pop;
      truncated = !truncated;
      outage_time = Faults.outage_time frun;
      aborted_peers = !aborted;
      lost_transfers = !lost;
      samples = P2p_stats.Vec.to_array samples;
      group_samples = P2p_stats.Vec.to_array group_samples;
      mean_sojourn = P2p_stats.Welford.mean sojourn;
      sojourn_count = P2p_stats.Welford.count sojourn;
      one_club_time_fraction = P2p_stats.Timeavg.average club_avg;
    }
  in
  Profile.stop finish_span;
  (stats, state)

let run_seeded ?probe ?sample_every ?max_events ~seed config ~horizon =
  run ?probe ?sample_every ?max_events ~rng:(Rng.of_seed seed) config ~horizon
