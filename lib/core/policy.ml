module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng

type uploader = Fixed_seed | Peer of Pieceset.t

let uploader_pieces ~k = function Fixed_seed -> Pieceset.full ~k | Peer c -> c

let useful_pieces ~k ~uploader ~downloader =
  Pieceset.diff (uploader_pieces ~k uploader) downloader

type t = {
  name : string;
  distribution :
    k:int -> state:State.t -> uploader:uploader -> downloader:Pieceset.t -> (int * float) list;
  sample_fast :
    rng:Rng.t ->
    k:int ->
    state:State.t ->
    uploader:uploader ->
    downloader:Pieceset.t ->
    int option;
}

let uniform_over pieces =
  let elems = Pieceset.elements pieces in
  let p = 1.0 /. float_of_int (List.length elems) in
  List.map (fun i -> (i, p)) elems

(* Generic sampler walking the spec distribution: the fallback for exotic
   policies defined only by [distribution]. *)
let sample_distribution distribution ~rng ~k ~state ~uploader ~downloader =
  if Pieceset.is_empty (useful_pieces ~k ~uploader ~downloader) then None
  else begin
    let dist = distribution ~k ~state ~uploader ~downloader in
    match dist with
    | [] -> None
    | [ (i, _) ] -> Some i
    | dist ->
        let weights = Array.of_list (List.map snd dist) in
        let idx = P2p_prng.Dist.categorical rng ~weights in
        Some (fst (List.nth dist idx))
  end

let of_distribution ~name distribution =
  { name; distribution; sample_fast = sample_distribution distribution }

let random_useful =
  {
    name = "random-useful";
    distribution =
      (fun ~k ~state:_ ~uploader ~downloader ->
        uniform_over (useful_pieces ~k ~uploader ~downloader));
    sample_fast =
      (* Uniform over the useful bitset directly: one bounded draw, no
         list, no weight array.  [Rng.int_below rng 1] consumes no
         randomness, so the single-choice case stays draw-free. *)
      (fun ~rng ~k ~state:_ ~uploader ~downloader ->
        let useful = useful_pieces ~k ~uploader ~downloader in
        let n = Pieceset.cardinal useful in
        if n = 0 then None else Some (Pieceset.nth_element useful (Rng.int_below rng n)));
  }

(* Uniform over the useful pieces minimising (resp. maximising) the global
   copy count. *)
let by_rarity ~name ~prefer_rare =
  {
    name;
    distribution =
      (fun ~k ~state ~uploader ~downloader ->
        let useful = useful_pieces ~k ~uploader ~downloader in
        let copies = State.piece_count_vector state ~k in
        let best =
          Pieceset.fold
            (fun i acc ->
              match acc with
              | None -> Some copies.(i)
              | Some b ->
                  if (prefer_rare && copies.(i) < b) || ((not prefer_rare) && copies.(i) > b)
                  then Some copies.(i)
                  else acc)
            useful None
        in
        match best with
        | None -> invalid_arg "Policy: no useful piece"
        | Some b ->
            let chosen = Pieceset.fold (fun i acc -> if copies.(i) = b then Pieceset.add i acc else acc) useful Pieceset.empty in
            uniform_over chosen);
    sample_fast =
      (* Two allocation-free passes over the useful bitset against the
         state's O(1) incremental copy counts: find the extreme count,
         collect the tied pieces as a bitset, draw uniformly. *)
      (fun ~rng ~k ~state ~uploader ~downloader ->
        let useful = useful_pieces ~k ~uploader ~downloader in
        if Pieceset.is_empty useful then None
        else begin
          let rec extreme c b =
            if Pieceset.is_empty c then b
            else
              let i = Pieceset.lowest c in
              let n = State.piece_copies state ~k ~piece:i in
              extreme (Pieceset.remove i c) (if prefer_rare then Int.min b n else Int.max b n)
          in
          let b = extreme useful (if prefer_rare then max_int else min_int) in
          let rec ties c acc =
            if Pieceset.is_empty c then acc
            else
              let i = Pieceset.lowest c in
              let acc =
                if State.piece_copies state ~k ~piece:i = b then Pieceset.add i acc else acc
              in
              ties (Pieceset.remove i c) acc
          in
          let tied = ties useful Pieceset.empty in
          let n = Pieceset.cardinal tied in
          Some (Pieceset.nth_element tied (Rng.int_below rng n))
        end);
  }

let rarest_first = by_rarity ~name:"rarest-first" ~prefer_rare:true
let most_common_first = by_rarity ~name:"most-common-first" ~prefer_rare:false

let sequential =
  {
    name = "sequential";
    distribution =
      (fun ~k ~state:_ ~uploader ~downloader ->
        let useful = useful_pieces ~k ~uploader ~downloader in
        [ (Pieceset.lowest useful, 1.0) ]);
    sample_fast =
      (fun ~rng:_ ~k ~state:_ ~uploader ~downloader ->
        let useful = useful_pieces ~k ~uploader ~downloader in
        if Pieceset.is_empty useful then None else Some (Pieceset.lowest useful));
  }

let sample t ~rng ~k ~state ~uploader ~downloader =
  t.sample_fast ~rng ~k ~state ~uploader ~downloader

let sample_spec t ~rng ~k ~state ~uploader ~downloader =
  sample_distribution t.distribution ~rng ~k ~state ~uploader ~downloader

let validate_distribution dist ~useful =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
  let supported = List.for_all (fun (i, p) -> p >= 0.0 && Pieceset.mem i useful) dist in
  supported && Float.abs (total -. 1.0) < 1e-9
