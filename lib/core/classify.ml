type verdict = Appears_stable | Appears_unstable | Inconclusive

let verdict_to_string = function
  | Appears_stable -> "appears-stable"
  | Appears_unstable -> "appears-unstable"
  | Inconclusive -> "inconclusive"

let pp_verdict fmt v = Format.pp_print_string fmt (verdict_to_string v)

type result = {
  verdict : verdict;
  growth_rate : float;
  growth_t_stat : float;
  late_minimum : int;
  early_scale : float;
  mean_n : float;
  final_n : int;
}

let of_samples samples =
  let n = Array.length samples in
  if n < 16 then invalid_arg "Classify.of_samples: need at least 16 samples";
  let second_half = Array.sub samples (n / 2) (n - (n / 2)) in
  let fit =
    P2p_stats.Regression.fit (Array.map (fun (t, v) -> (t, float_of_int v)) second_half)
  in
  let late = Array.sub samples (3 * n / 4) (n - (3 * n / 4)) in
  let late_minimum = Array.fold_left (fun acc (_, v) -> Int.min acc v) max_int late in
  let first_half = Array.sub samples 0 (n / 2) in
  let early_scale =
    Array.fold_left (fun acc (_, v) -> acc +. float_of_int v) 0.0 first_half
    /. float_of_int (Array.length first_half)
  in
  let mean_n =
    Array.fold_left (fun acc (_, v) -> acc +. float_of_int v) 0.0 samples /. float_of_int n
  in
  let _, final_n = samples.(n - 1) in
  let t0, _ = samples.(0) in
  let t1, _ = samples.(n - 1) in
  let span = t1 -. t0 in
  let t_stat = P2p_stats.Regression.slope_t_statistic fit in
  (* Growth over the remaining half-horizon, relative to the scale the
     process already reached: transience means this dominates. *)
  let projected_growth = fit.slope *. (span /. 2.0) in
  let scale = Float.max early_scale 10.0 in
  let strongly_growing = t_stat > 6.0 && projected_growth > scale in
  let returns_low = float_of_int late_minimum < Float.max (0.5 *. scale) 20.0 in
  let flat = t_stat < 2.0 || projected_growth < 0.2 *. scale in
  let verdict =
    if strongly_growing && not returns_low then Appears_unstable
    else if returns_low || flat then Appears_stable
    else Inconclusive
  in
  {
    verdict;
    growth_rate = fit.slope;
    growth_t_stat = t_stat;
    late_minimum;
    early_scale;
    mean_n;
    final_n;
  }

let of_stats (s : Sim_markov.stats) = of_samples s.samples

let run ?(horizon = 2000.0) ?(policy = Policy.random_useful) ?(initial = []) ~seed params =
  let config = { Sim_markov.params; policy; initial; faults = Faults.none } in
  let stats, _ = Sim_markov.run_seeded ~seed config ~horizon in
  of_stats stats

let majority ?(replications = 3) ?horizon ?policy ~seed params =
  let votes = List.init replications (fun i -> (run ?horizon ?policy ~seed:(seed + (7919 * i)) params).verdict) in
  let count v = List.length (List.filter (( = ) v) votes) in
  let stable = count Appears_stable and unstable = count Appears_unstable in
  if stable > unstable && stable * 2 > replications then Appears_stable
  else if unstable > stable && unstable * 2 > replications then Appears_unstable
  else Inconclusive
