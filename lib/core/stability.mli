(** The stability region — Theorem 1 and its network-coding analogue
    Theorem 15.

    For [0 < μ < γ ≤ ∞] the chain is transient when for some piece [k]

    {v λ_total > (U_s + Σ_{C ∋ k} λ_C (K + 1 − |C|)) / (1 − μ/γ)     (2) v}

    and positive recurrent (with finite stationary mean population) under
    the reversed strict inequality for every [k] (Eq. 3), which is
    equivalent to [Δ_S < 0] for every proper subset [S] (Eq. 4).  For
    [0 < γ ≤ μ] the chain is positive recurrent iff every piece can enter
    the system. *)

module Pieceset = P2p_pieceset.Pieceset

type verdict =
  | Transient  (** the population grows without bound with positive probability *)
  | Positive_recurrent  (** stable; stationary E[N] finite *)
  | Borderline  (** equality (within tolerance) in (2)/(3) for some piece *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string

val threshold : Params.t -> piece:int -> float
(** The right-hand side of (2)/(3) for the given piece:
    [(U_s + Σ_{C ∋ k} λ_C (K + 1 − |C|)) / (1 − μ/γ)].  Only meaningful
    when [μ < γ]; [infinity] when the piece cannot become rare because
    [γ <= μ] makes the branching of peer seeds critical. *)

val binding_piece : Params.t -> int
(** The piece minimising {!threshold} — the one the missing piece syndrome
    would strike first. *)

val delta : Params.t -> s:Pieceset.t -> float
(** [Δ_S] of Eq. (4): negative for all proper [S] iff stable (when
    [μ < γ]). *)

val classify : ?tolerance:float -> Params.t -> verdict
(** Theorem 1 applied to the parameters.  [tolerance] is the relative slack
    within which an inequality counts as equality ([Borderline]);
    default [1e-9]. *)

val classify_detail : ?tolerance:float -> Params.t -> verdict * int * float
(** Adds the binding piece and the margin
    [(threshold − λ_total) / threshold] (positive inside the stable
    region). *)

val effective_params : Params.t -> uptime_fraction:float -> Params.t
(** The degraded-seed parameter set: [U_s] scaled by the long-run
    fraction of time the seed is available (see
    {!Faults.uptime_fraction}).  A seed on an alternating up/down
    renewal process delivers contacts at long-run rate
    [U_s · uptime_fraction], so Theorem 1 evaluated at the scaled rate
    predicts where the missing piece syndrome sets in under outages.
    @raise Invalid_argument if [uptime_fraction] is outside [0, 1]. *)

val classify_effective : ?tolerance:float -> Params.t -> uptime_fraction:float -> verdict
(** {!classify} of {!effective_params}: Eq. (2)/(3) at
    [U_s · uptime_fraction]. *)

val stable_lambda_limit : Params.t -> float
(** The largest total arrival rate keeping these parameters stable when
    all arrival rates are scaled proportionally: the infimum over pieces
    of the fixed point of [λ_total = threshold(λ)].  With proportional
    scaling both sides are linear in the scale, so this solves in closed
    form; [infinity] when [γ <= μ] and every piece can enter. *)

val equivalent_check : Params.t -> bool
(** Cross-check of the paper's remark: condition (3) for all pieces holds
    iff [Δ_S < 0] for all proper subsets [S].  Returns whether the two
    evaluations agree (used by tests; always [true] unless there is a
    bug). *)

(** Theorem 15: random linear network coding over [F_q].  Workload of the
    paper's motivating example: a fraction of peers arrive with one
    uniformly random coded piece, the rest with nothing. *)
module Coded : sig
  type gift_params = {
    q : int;  (** field size *)
    k : int;  (** number of data pieces K *)
    us : float;
    mu : float;
    gamma : float;  (** [infinity] allowed *)
    lambda0 : float;  (** arrival rate of empty-handed peers *)
    lambda1 : float;  (** arrival rate of peers holding one random coded piece *)
  }

  val f_of : gift_params -> float
  (** The gifted fraction [f = λ1 / (λ0 + λ1)]. *)

  val transient_f_threshold : q:int -> k:int -> float
  (** The paper's closed form (for [U_s = 0], [γ = ∞]): transient when
      [f < q / ((q−1) K)]. *)

  val recurrent_f_threshold_exact : q:int -> k:int -> float
  (** Exact threshold from (55): positive recurrent when
      [f > 1 / ((1−1/q)² (K − 1 + q/(q−1)))]. *)

  val recurrent_f_threshold_paper : q:int -> k:int -> float
  (** The paper's displayed approximation [q² / ((q−1)² K)]. *)

  val classify : ?tolerance:float -> gift_params -> verdict
  (** Theorem 15 for the gift workload, any [U_s >= 0], [γ ∈ (0, ∞]]:
      evaluates conditions (a) and (b) with
      [Σ_{V ⊄ V⁻} λ_V = λ1 (1 − 1/q)] (a uniformly random nonzero-or-zero
      coded vector lies outside a fixed hyperplane w.p. [1 − 1/q]).
      [Borderline] also covers the gap between the necessary and the
      sufficient condition. *)

  val uncoded_equivalent_is_transient : k:int -> f:float -> bool
  (** Theorem 1 verdict for the same workload {e without} coding (peers
      arrive with one uniformly chosen data piece): transient for every
      [f < 1] whenever [U_s = 0, γ = ∞] — the contrast the paper draws. *)

  type profile = {
    pq : int;  (** field size *)
    pk : int;  (** number of data pieces *)
    pus : float;
    pmu : float;
    pgamma : float;
    parrivals : (int * float) list;
        (** [(j, rate)]: peers arriving with [j] independent uniform random
            coded pieces *)
  }
  (** A general coded arrival profile.  The induced type distribution over
      subspaces is computed exactly from the rank law of random matrices
      over [F_q] ({!P2p_coding.Rank_dist}), turning Theorem 15's conditions
      into closed-form evaluations for any mix of gift sizes. *)

  val profile_of_gift : gift_params -> profile

  val classify_profile : ?tolerance:float -> profile -> verdict
  (** Theorem 15 for a general profile; agrees with {!classify} on gift
      workloads (a test checks this). *)

  val profile_thresholds : profile -> float * float
  (** [(transient_rhs, recurrent_rhs)]: the chain is transient when
      [λ_total] exceeds the first and positive recurrent when below the
      second (for [μ̃ < γ]). *)
end
