(** Simulation of the network-coding swarm of Section VIII-B.

    Peers hold subspaces of [F_q^K] instead of piece sets: on contact, the
    uploader transmits a uniformly random linear combination of its coded
    pieces (so the coding vector is uniform over the uploader's subspace —
    including, with probability [q^{-dim}], the useless zero vector).  The
    fixed seed transmits a uniform random vector of [F_q^K].  A peer
    departs (after its dwell, or immediately when γ = ∞) once its subspace
    reaches full dimension.

    The [smart_exchange] flag implements Remark 16: peers exchange
    subspace descriptions, so whenever the uploader can help it sends a
    basis vector outside the downloader's subspace — every eligible
    contact is useful.

    Built on {!Engine}, so the full fault/telemetry families apply: seed
    outages silence the fixed seed, churn aborts in-progress (partial
    dimension) peers, transfer loss drops uploaded vectors, and an
    attached {!P2p_obs.Probe.t} traces events and samples the swarm with
    the usual probes-observe-never-perturb bit-identity guarantee.  In
    trace events and probe samples, the subspace {e dimension} plays the
    role of the piece index: a useful transfer raising dim d → d+1 is
    [Transfer { piece = d; _ }], and probe [piece_counts.(i)] counts the
    population at dimension > i (nonincreasing in [i], so the "rarest
    piece" is [K−1] and its count is the number of dwelling seeds). *)

type config = {
  q : int;  (** field size (prime power ≤ 65536) *)
  k : int;  (** number of data pieces K *)
  us : float;
  mu : float;
  gamma : float;  (** [infinity] = immediate departure *)
  arrivals : (int * float) list;
      (** [(j, rate)]: peers arriving holding [j] independent uniform
          random coded pieces ([j = 0]: empty-handed).  Vectors are drawn
          uniformly from [F_q^K], so [j] pieces span a subspace of
          dimension ≤ j. *)
  smart_exchange : bool;
  faults : Faults.t;  (** fault injection; {!Faults.none} = the paper's model *)
}

val of_gift : Stability.Coded.gift_params -> config
(** The paper's gift workload ([λ0] empty, [λ1] one random coded piece);
    no faults. *)

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  useful_transfers : int;  (** innovative vectors delivered (dim increased) *)
  useless_transfers : int;  (** contacts that transmitted a non-innovative vector *)
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
      (** the [max_events] budget ran out before [horizon]; every
          time-based statistic is biased toward the frozen state *)
  stopped : bool;  (** an [until] predicate requested an early stop *)
  outage_time : float;  (** total time the fixed seed spent down *)
  aborted_peers : int;  (** churn departures (also counted in [departures]) *)
  lost_transfers : int;
      (** uploads dropped by transfer loss (counted per upload, innovative
          or not — unlike the piece simulators, a coded uploader always
          transmits something) *)
  samples : (float * int) array;
  dim_histogram : int array;  (** final population by subspace dimension, length K+1 *)
  near_complete_fraction : float;
      (** time-average fraction of peers at dimension K−1 — the coded
          one-club witness *)
}

val run :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  ?until:(time:float -> n:int -> bool) ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats
(** [until] is evaluated after every state-changing event with the new
    population; returning [true] requests a stop at the current clock
    ([stopped] is set in the stats).  Used by the campaign layer's
    cooperative per-replication watchdog. *)

val run_seeded :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  ?until:(time:float -> n:int -> bool) ->
  seed:int ->
  config ->
  horizon:float ->
  stats
(** Self-contained seeded run (constructs the RNG from [seed]), as the
    replication runner's determinism contract requires. *)
