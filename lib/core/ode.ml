(* Dormand–Prince 5(4) with PI step control and dense output.
   Coefficients are the standard DOPRI5 tableau (Hairer–Nørsett–Wanner,
   "Solving Ordinary Differential Equations I", table 5.2, plus the
   dense-output d_i of the accompanying dopri5 code). *)

type control = {
  rtol : float;
  atol : float;
  init_step : float option;
  max_step : float;
  max_steps : int;
}

let default_control =
  { rtol = 1e-6; atol = 1e-9; init_step = None; max_step = infinity; max_steps = 20_000_000 }

let control ?(rtol = 1e-6) ?(atol = 1e-9) ?init_step ?(max_step = infinity) ?(max_steps = 20_000_000)
    () =
  let pos name v =
    if not (Float.is_finite v && v > 0.0) then
      invalid_arg (Printf.sprintf "Ode.control: %s must be finite > 0, got %g" name v)
  in
  pos "rtol" rtol;
  pos "atol" atol;
  Option.iter (pos "init_step") init_step;
  if not (max_step > 0.0) then
    invalid_arg (Printf.sprintf "Ode.control: max_step must be > 0, got %g" max_step);
  if max_steps < 1 then
    invalid_arg (Printf.sprintf "Ode.control: max_steps must be >= 1, got %d" max_steps);
  { rtol; atol; init_step; max_step; max_steps }

(* Butcher tableau. *)
let c2 = 0.2
let c3 = 0.3
let c4 = 0.8
let c5 = 8.0 /. 9.0

let a21 = 0.2
let a31 = 3.0 /. 40.0
let a32 = 9.0 /. 40.0
let a41 = 44.0 /. 45.0
let a42 = -56.0 /. 15.0
let a43 = 32.0 /. 9.0
let a51 = 19372.0 /. 6561.0
let a52 = -25360.0 /. 2187.0
let a53 = 64448.0 /. 6561.0
let a54 = -212.0 /. 729.0
let a61 = 9017.0 /. 3168.0
let a62 = -355.0 /. 33.0
let a63 = 46732.0 /. 5247.0
let a64 = 49.0 /. 176.0
let a65 = -5103.0 /. 18656.0

(* 5th-order weights (= the 7th row: FSAL). *)
let b1 = 35.0 /. 384.0
let b3 = 500.0 /. 1113.0
let b4 = 125.0 /. 192.0
let b5 = -2187.0 /. 6784.0
let b6 = 11.0 /. 84.0

(* b - b_hat: the embedded 4th-order error weights. *)
let e1 = 71.0 /. 57600.0
let e3 = -71.0 /. 16695.0
let e4 = 71.0 /. 1920.0
let e5 = -17253.0 /. 339200.0
let e6 = 22.0 /. 525.0
let e7 = -1.0 /. 40.0

(* Dense-output d_i (4th-order interpolant). *)
let d1 = -12715105075.0 /. 11282082432.0
let d3 = 87487479700.0 /. 32700410799.0
let d4 = -10690763975.0 /. 1880347072.0
let d5 = 701980252875.0 /. 199316789632.0
let d6 = -1453857185.0 /. 822651844.0
let d7 = 69997945.0 /. 29380423.0

type step = {
  st0 : float;
  sh : float;
  sy0 : float array;
  sy1 : float array;
  sk1 : float array;  (* f(t0, y0) *)
  sk7 : float array;  (* f(t0+h, y1): the FSAL stage *)
  serr : float;
  (* rcont3..rcont5 of Hairer's contd5; rcont1 = y0, rcont2 = y1 - y0. *)
  sr3 : float array;
  sr4 : float array;
  sr5 : float array;
}

let step_y1 s = Array.copy s.sy1
let step_error s = s.serr

let step_eval s t =
  let h = s.sh in
  if not (Float.is_finite t) || t < s.st0 -. (1e-12 *. Float.abs h) || t > s.st0 +. h +. (1e-12 *. Float.abs h)
  then invalid_arg (Printf.sprintf "Ode.step_eval: %g outside step [%g, %g]" t s.st0 (s.st0 +. h));
  let theta = (t -. s.st0) /. h in
  let theta1 = 1.0 -. theta in
  let n = Array.length s.sy0 in
  Array.init n (fun i ->
      let ydiff = s.sy1.(i) -. s.sy0.(i) in
      s.sy0.(i)
      +. (theta *. (ydiff +. (theta1 *. (s.sr3.(i) +. (theta *. (s.sr4.(i) +. (theta1 *. s.sr5.(i)))))))))

(* Scaled RMS error of the embedded difference. *)
let err_norm ~control y0 y1 e =
  let n = Array.length y0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let sc = control.atol +. (control.rtol *. Float.max (Float.abs y0.(i)) (Float.abs y1.(i))) in
    let q = e.(i) /. sc in
    acc := !acc +. (q *. q)
  done;
  sqrt (!acc /. float_of_int n)

(* Core step evaluation from a precomputed k1.  Writes the 7 stages and
   the 5th-order y1; returns (y1, k7, err). *)
let eval_step ~f ~control ~t ~y ~h ~k1 =
  let n = Array.length y in
  let tmp = Array.make n 0.0 in
  let stage c coeffs =
    (* y + h * sum coeffs_j k_j, coeffs given as (coef, k) list *)
    for i = 0 to n - 1 do
      tmp.(i) <- y.(i) +. (h *. List.fold_left (fun acc (a, k) -> acc +. (a *. k.(i))) 0.0 coeffs)
    done;
    f (t +. (c *. h)) tmp
  in
  let k2 = stage c2 [ (a21, k1) ] in
  let k3 = stage c3 [ (a31, k1); (a32, k2) ] in
  let k4 = stage c4 [ (a41, k1); (a42, k2); (a43, k3) ] in
  let k5 = stage c5 [ (a51, k1); (a52, k2); (a53, k3); (a54, k4) ] in
  let k6 = stage 1.0 [ (a61, k1); (a62, k2); (a63, k3); (a64, k4); (a65, k5) ] in
  let y1 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((b1 *. k1.(i)) +. (b3 *. k3.(i)) +. (b4 *. k4.(i)) +. (b5 *. k5.(i))
               +. (b6 *. k6.(i)))))
  in
  let k7 = f (t +. h) y1 in
  let e =
    Array.init n (fun i ->
        h
        *. ((e1 *. k1.(i)) +. (e3 *. k3.(i)) +. (e4 *. k4.(i)) +. (e5 *. k5.(i)) +. (e6 *. k6.(i))
           +. (e7 *. k7.(i))))
  in
  let err = err_norm ~control y y1 e in
  (k2, k3, k4, k5, k6, y1, k7, err)

let dense_coeffs ~h ~y0 ~y1 ~k1 ~k3 ~k4 ~k5 ~k6 ~k7 =
  let n = Array.length y0 in
  let r3 = Array.make n 0.0 and r4 = Array.make n 0.0 and r5 = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let ydiff = y1.(i) -. y0.(i) in
    let bspl = (h *. k1.(i)) -. ydiff in
    r3.(i) <- bspl;
    r4.(i) <- ydiff -. (h *. k7.(i)) -. bspl;
    r5.(i) <-
      h
      *. ((d1 *. k1.(i)) +. (d3 *. k3.(i)) +. (d4 *. k4.(i)) +. (d5 *. k5.(i)) +. (d6 *. k6.(i))
         +. (d7 *. k7.(i)))
  done;
  (r3, r4, r5)

let try_step ~f ~control ~t ~y ~h =
  if not (Float.is_finite h && h > 0.0) then
    invalid_arg (Printf.sprintf "Ode.try_step: h must be finite > 0, got %g" h);
  let k1 = f t y in
  let _, k3, k4, k5, k6, y1, k7, err = eval_step ~f ~control ~t ~y ~h ~k1 in
  let r3, r4, r5 = dense_coeffs ~h ~y0:y ~y1 ~k1 ~k3 ~k4 ~k5 ~k6 ~k7 in
  {
    st0 = t;
    sh = h;
    sy0 = Array.copy y;
    sy1 = y1;
    sk1 = k1;
    sk7 = k7;
    serr = err;
    sr3 = r3;
    sr4 = r4;
    sr5 = r5;
  }

type session = {
  ctrl : control;
  mutable f : float -> float array -> float array;
  mutable t : float;
  mutable y : float array;
  mutable h : float;  (* the controller's proposed next step; 0 = not chosen yet *)
  mutable fsal : float array option;  (* f(t, y) if still valid *)
  mutable n_steps : int;
  mutable n_rejected : int;
  mutable n_evals : int;
  mutable last : step option;  (* the last accepted step, for dense output *)
}

let session ?(control = default_control) ~f ~t0 ~y0 () =
  if not (Float.is_finite t0) then invalid_arg "Ode.session: t0 must be finite";
  if Array.length y0 = 0 then invalid_arg "Ode.session: empty state vector";
  Array.iter
    (fun v -> if not (Float.is_finite v) then invalid_arg "Ode.session: non-finite initial state")
    y0;
  {
    ctrl = control;
    f;
    t = t0;
    y = Array.copy y0;
    h = (match control.init_step with Some h -> h | None -> 0.0);
    fsal = None;
    n_steps = 0;
    n_rejected = 0;
    n_evals = 0;
    last = None;
  }

let set_rhs s f =
  s.f <- f;
  s.fsal <- None

let time s = s.t
let state s = s.y
let steps s = s.n_steps
let rejected s = s.n_rejected
let evals s = s.n_evals

let last_step_start s = match s.last with Some st -> st.st0 | None -> s.t

let dense_eval s t =
  match s.last with
  | None -> invalid_arg "Ode.dense_eval: no accepted step yet"
  | Some st -> step_eval st t

let rhs s t y =
  s.n_evals <- s.n_evals + 1;
  s.f t y

(* Classic first-step heuristic (HNW I.4): balance |y|/|f| scales, probe
   one Euler step, combine. *)
let initial_step s ~k1 ~dir_limit =
  let c = s.ctrl in
  let n = Array.length s.y in
  let sc i = c.atol +. (c.rtol *. Float.abs s.y.(i)) in
  let d0 = ref 0.0 and d1 = ref 0.0 in
  for i = 0 to n - 1 do
    let a = s.y.(i) /. sc i and b = k1.(i) /. sc i in
    d0 := !d0 +. (a *. a);
    d1 := !d1 +. (b *. b)
  done;
  let d0 = sqrt (!d0 /. float_of_int n) and d1 = sqrt (!d1 /. float_of_int n) in
  let h0 = if d0 < 1e-5 || d1 < 1e-5 then 1e-6 else 0.01 *. (d0 /. d1) in
  let h0 = Float.min h0 dir_limit in
  (* One explicit Euler probe to estimate the second derivative scale. *)
  let y1 = Array.init n (fun i -> s.y.(i) +. (h0 *. k1.(i))) in
  let k2 = rhs s (s.t +. h0) y1 in
  let d2 = ref 0.0 in
  for i = 0 to n - 1 do
    let q = (k2.(i) -. k1.(i)) /. sc i in
    d2 := !d2 +. (q *. q)
  done;
  let d2 = sqrt (!d2 /. float_of_int n) /. h0 in
  let dmax = Float.max d1 d2 in
  let h1 = if dmax <= 1e-15 then Float.max 1e-6 (h0 *. 1e-3) else (0.01 /. dmax) ** 0.2 in
  Float.min (Float.min (100.0 *. h0) h1) (Float.min dir_limit s.ctrl.max_step)

type outcome = Reached | Stopped of float | Step_limit

(* Locate the earliest until-crossing inside an accepted step by bisection
   on the dense output.  [pred] is false at st.st0 and true at the step
   end.  Deterministic: pure float bisection to a fixed relative width. *)
let locate_crossing st ~pred =
  let lo = ref st.st0 and hi = ref (st.st0 +. st.sh) in
  (* ~50 bisections bottom out float precision long before; the loop also
     stops when the interval is unsplittable. *)
  let continue = ref true in
  while !continue do
    let mid = 0.5 *. (!lo +. !hi) in
    if mid <= !lo || mid >= !hi then continue := false
    else begin
      let y = step_eval st mid in
      if pred ~t:mid ~y then hi := mid else lo := mid;
      if !hi -. !lo <= 1e-12 *. Float.max 1.0 (Float.abs !hi) then continue := false
    end
  done;
  !hi

let advance ?until ?on_step s ~to_ =
  if Float.is_nan to_ then invalid_arg "Ode.advance: target time is NaN";
  if to_ < s.t then
    invalid_arg (Printf.sprintf "Ode.advance: target %g precedes current time %g" to_ s.t);
  let c = s.ctrl in
  let result = ref Reached in
  let running = ref (s.t < to_) in
  while !running do
    if s.n_steps >= c.max_steps then begin
      result := Step_limit;
      running := false
    end
    else begin
      let k1 =
        match s.fsal with
        | Some k -> k
        | None ->
            let k = rhs s s.t s.y in
            s.fsal <- Some k;
            k
      in
      let remaining = to_ -. s.t in
      if remaining <= Float.abs to_ *. 1e-14 then begin
        (* Within float resolution of the target: snap rather than force a
           step the clock cannot represent. *)
        s.t <- to_;
        running := false
      end
      else begin
      if s.h <= 0.0 then s.h <- initial_step s ~k1 ~dir_limit:remaining;
      let h = Float.min (Float.min s.h c.max_step) remaining in
      if h <= Float.abs s.t *. 1e-14 +. 1e-300 then
        failwith
          (Printf.sprintf "Ode.advance: step size underflow at t = %g (h = %g)" s.t h);
      s.n_evals <- s.n_evals + 6;
      let _, k3, k4, k5, k6, y1, k7, err = eval_step ~f:s.f ~control:c ~t:s.t ~y:s.y ~h ~k1 in
      if Float.is_nan err || err > 1.0 then begin
        (* Reject: shrink and retry.  A NaN error means the step left the
           domain entirely; halve hard. *)
        s.n_rejected <- s.n_rejected + 1;
        let fac =
          if Float.is_nan err then 0.5 else Float.max 0.2 (0.9 *. (err ** -0.2))
        in
        s.h <- h *. Float.min fac 1.0;
        if s.h <= Float.abs s.t *. 1e-14 +. 1e-300 then
          failwith
            (Printf.sprintf "Ode.advance: step size underflow at t = %g after rejection" s.t)
      end
      else begin
        (* Accept. *)
        let r3, r4, r5 = dense_coeffs ~h ~y0:s.y ~y1 ~k1 ~k3 ~k4 ~k5 ~k6 ~k7 in
        let st =
          { st0 = s.t; sh = h; sy0 = s.y; sy1 = y1; sk1 = k1; sk7 = k7; serr = err;
            sr3 = r3; sr4 = r4; sr5 = r5 }
        in
        s.last <- Some st;
        s.t <- s.t +. h;
        s.y <- y1;
        s.fsal <- Some k7;
        s.n_steps <- s.n_steps + 1;
        (* Next proposed step from the accepted error. *)
        let fac =
          if err <= 1e-30 then 10.0 else Float.min 10.0 (Float.max 0.2 (0.9 *. (err ** -0.2)))
        in
        s.h <- h *. fac;
        let stopped =
          match until with
          | Some pred when pred ~t:s.t ~y:s.y ->
              let tc = locate_crossing st ~pred in
              s.t <- tc;
              s.y <- step_eval st tc;
              s.fsal <- None;
              result := Stopped tc;
              true
          | _ -> false
        in
        (match on_step with Some g -> g s | None -> ());
        if stopped || s.t >= to_ then running := false
      end
      end
    end
  done;
  !result
