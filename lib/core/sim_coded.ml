module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Field = P2p_gf.Field
module Mat = P2p_gf.Mat
module Subspace = P2p_coding.Subspace
module Probe = P2p_obs.Probe
module Hist = P2p_obs.Hist

type config = {
  q : int;
  k : int;
  us : float;
  mu : float;
  gamma : float;
  arrivals : (int * float) list;
  smart_exchange : bool;
  faults : Faults.t;
}

let of_gift (g : Stability.Coded.gift_params) =
  {
    q = g.q;
    k = g.k;
    us = g.us;
    mu = g.mu;
    gamma = g.gamma;
    arrivals =
      (if g.lambda0 > 0.0 then [ (0, g.lambda0) ] else [])
      @ (if g.lambda1 > 0.0 then [ (1, g.lambda1) ] else []);
    smart_exchange = false;
    faults = Faults.none;
  }

(* [memo_space]/[memo_gen] cache a proven containment fact: the
   referenced subspace was ⊆ this peer's subspace when its generation was
   [memo_gen].  Containment is monotone in the downloader (our space only
   grows), so the memo stays valid until the {e uploader}'s generation
   moves — while it holds, anything that uploader transmits is
   non-innovative and the receive-side reduction can be skipped. *)
type peer = {
  mutable space : Subspace.t;
  mutable slot : int;
  mutable departed : bool;
  mutable memo_space : Subspace.t option;
  mutable memo_gen : int;
}

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  useful_transfers : int;
  useless_transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
  stopped : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
  dim_histogram : int array;
  near_complete_fraction : float;
}

let run ?(probe = Probe.none) ?sample_every ?max_events ?until ~rng config ~horizon =
  if config.k < 1 then invalid_arg "Sim_coded.run: k must be >= 1";
  List.iter
    (fun (j, rate) ->
      if j < 0 || rate < 0.0 then invalid_arg "Sim_coded.run: bad arrival entry")
    config.arrivals;
  let lambda_total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 config.arrivals in
  if lambda_total <= 0.0 then invalid_arg "Sim_coded.run: no arrivals";
  let common, (peers, len, seeds_count, useless, club_avg) =
    Engine.drive ~probe ?sample_every ?max_events ~name:"sim_coded" ~rng
      ~faults:config.faults ~horizon (fun h ->
        let tracing = probe.Probe.tracing in
        let field = Field.gf config.q in
        let immediate = not (Float.is_finite config.gamma) in
        (* Peers at dimension < K, in a swap-remove array. *)
        let peers = ref (Array.make 16 None) in
        let len = ref 0 in
        let near_complete = ref 0 in
        (* count of peers at dim K-1 *)
        let departures_heap : peer P2p_des.Heap.t = P2p_des.Heap.create () in
        let seeds_count = ref 0 in
        (* peer seeds (dim = K) present, counted only when gamma finite *)
        let useless = ref 0 in
        let club_avg = P2p_stats.Timeavg.create () in
        let arrival_weights = Array.of_list (List.map snd config.arrivals) in
        let arrival_kinds = Array.of_list (List.map fst config.arrivals) in
        let counters = Engine.counters h in
        let frun = Engine.faults h in
        let abort_rate = config.faults.abort_rate in

        (* Sampled phase timers for the GF(q) tax ROADMAP item 1 chases:
           rank updates (Gaussian elimination on receive) vs vector
           selection (basis scan / random member on transmit). *)
        let rank_tm = Hist.timer (Hist.get probe.Probe.hists "sim_coded/rank_update") in
        let select_tm = Hist.timer (Hist.get probe.Probe.hists "sim_coded/vector_select") in

        let population () = !len + !seeds_count in
        let track_dim_change ~before ~after =
          if before = config.k - 1 then decr near_complete;
          if after = config.k - 1 then incr near_complete
        in
        let add_active peer =
          if !len = Array.length !peers then begin
            let bigger = Array.make (2 * !len) None in
            Array.blit !peers 0 bigger 0 !len;
            peers := bigger
          end;
          peer.slot <- !len;
          !peers.(!len) <- Some peer;
          incr len
        in
        let remove_active peer =
          let i = peer.slot in
          decr len;
          if i <> !len then begin
            !peers.(i) <- !peers.(!len);
            (match !peers.(i) with Some q -> q.slot <- i | None -> assert false)
          end;
          !peers.(!len) <- None;
          peer.slot <- -1
        in
        let observe time =
          let n = population () in
          Engine.observe h ~time ~n;
          let frac = if n = 0 then 0.0 else float_of_int !near_complete /. float_of_int n in
          P2p_stats.Timeavg.observe club_avg ~time ~value:frac
        in
        let complete peer ~time =
          counters.completions <- counters.completions + 1;
          track_dim_change ~before:(config.k - 1) ~after:config.k;
          remove_active peer;
          if immediate then begin
            counters.departures <- counters.departures + 1;
            if tracing then Probe.departure probe ~time Completed
          end
          else begin
            incr seeds_count;
            let dwell = Dist.exponential rng ~rate:config.gamma in
            ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
          end
        in
        (* One subspace per format carrier plus two caller-owned scratch
           rows: the whole contact hot path reuses these, so a transfer
           event allocates nothing. *)
        let proto = Subspace.create field ~k:config.k in
        let scratch = Subspace.alloc_xvec proto in
        let scratch2 = Subspace.alloc_xvec proto in
        (* Insert the coding vector held in [scratch] into a peer's
           subspace, handling completion.  [from] is the uploading peer
           (if any) — a useless transfer is the cue to try to prove
           [V_up ⊆ V_down] and arm the containment memo.  Trace events
           use the subspace dimension as the "piece" index: a useful
           transfer raising dim from d to d+1 fills slot d. *)
        let receive peer ~from ~seed_upload ~time =
          let before = Subspace.dim peer.space in
          let r_t0 = Hist.tick rank_tm in
          let inserted = Subspace.insert_xvec peer.space scratch in
          Hist.tock rank_tm r_t0;
          if inserted then begin
            counters.transfers <- counters.transfers + 1;
            let after = Subspace.dim peer.space in
            if tracing then begin
              Probe.contact probe ~time ~seed:seed_upload ~useful:true;
              Probe.transfer probe ~time ~piece:before ~completed:(after = config.k)
            end;
            if after = config.k then complete peer ~time
            else track_dim_change ~before ~after
          end
          else begin
            incr useless;
            if tracing then
              Probe.contact probe ~time ~seed:seed_upload ~useful:false;
            (* A non-innovative vector from a low-dimension uploader hints
               at containment; prove it once and skip reductions until the
               uploader grows.  [subspace_leq] prefilters on pivot-set
               inclusion, so failed attempts are cheap. *)
            match from with
            | Some (up : peer) ->
                let sp = up.space in
                if
                  Subspace.dim sp <= Subspace.dim peer.space
                  && Subspace.subspace_leq sp peer.space
                then begin
                  peer.memo_space <- Some sp;
                  peer.memo_gen <- Subspace.generation sp
                end
            | None -> ()
          end
        in
        let memo_valid (down : peer) up_space =
          match down.memo_space with
          | Some sp -> sp == up_space && Subspace.generation sp = down.memo_gen
          | None -> false
        in
        let new_peer ~coded ~time =
          let peer =
            {
              space = Subspace.create field ~k:config.k;
              slot = -1;
              departed = false;
              memo_space = None;
              memo_gen = -1;
            }
          in
          let rec feed j =
            if j > 0 && Subspace.dim peer.space < config.k then begin
              Subspace.random_full_into proto rng scratch;
              ignore (Subspace.insert_xvec peer.space scratch);
              feed (j - 1)
            end
          in
          feed coded;
          if tracing then begin
            (* Cardinality-only encoding: an arrival spanning dimension d is
               traced as holding the first d piece indices. *)
            let d = Subspace.dim peer.space in
            let rec build i acc = if i >= d then acc else build (i + 1) (Pieceset.add i acc) in
            Probe.arrival probe ~time ~pieces:(build 0 Pieceset.empty)
          end;
          if Subspace.dim peer.space = config.k then begin
            (* Arrived already able to decode (possible when coded >= K). *)
            counters.completions <- counters.completions + 1;
            if immediate then begin
              counters.departures <- counters.departures + 1;
              if tracing then Probe.departure probe ~time Completed
            end
            else begin
              incr seeds_count;
              let dwell = Dist.exponential rng ~rate:config.gamma in
              ignore (P2p_des.Heap.insert departures_heap ~key:(time +. dwell) peer)
            end
          end
          else begin
            add_active peer;
            if Subspace.dim peer.space = config.k - 1 then incr near_complete
          end
        in
        (* A uniformly chosen member of the whole population (active or seed):
           with probability seeds/(n) the contacted peer is a seed, which cannot
           receive anything, and with the rest an active peer. *)
        let sample_downloader () =
          let n = population () in
          if n = 0 then None
          else begin
            let idx = Rng.int_below rng n in
            if idx < !len then !peers.(idx) else None (* a peer seed: nothing to send it *)
          end
        in
        (* Deliver the vector held in [scratch]: transfer loss first (the
           upload happened but the vector never arrived), else receive. *)
        let deliver downloader ~from ~seed_upload ~time =
          if Faults.lost frun then begin
            counters.lost <- counters.lost + 1;
            if tracing then begin
              Probe.contact probe ~time ~seed:seed_upload
                ~useful:(not (Subspace.contains_xvec downloader.space scratch));
              Probe.transfer_lost probe ~time
            end
          end
          else receive downloader ~from ~seed_upload ~time
        in
        let transmit ~uploader ~seed_upload ~time =
          match sample_downloader () with
          | None ->
              if tracing then
                Probe.contact probe ~time ~seed:seed_upload ~useful:false
          | Some downloader -> (
              match uploader with
              | None ->
                  (* The fixed seed (or a dwelling peer seed): a uniform
                     vector of the full space. *)
                  let v_t0 = Hist.tick select_tm in
                  Subspace.random_full_into proto rng scratch;
                  Hist.tock select_tm v_t0;
                  deliver downloader ~from:None ~seed_upload ~time
              | Some (up : peer) ->
                  let sp = up.space in
                  if memo_valid downloader sp then begin
                    (* Fast path: everything this uploader can transmit is
                       already contained.  Burn the same coefficient draws
                       as [random_member_into] (draw-stream parity), skip
                       vector construction and reduction entirely. *)
                    if not config.smart_exchange then
                      for _ = 1 to Subspace.dim sp do
                        ignore (Rng.int_below rng config.q)
                      done;
                    if Faults.lost frun then begin
                      counters.lost <- counters.lost + 1;
                      if tracing then begin
                        Probe.contact probe ~time ~seed:seed_upload ~useful:false;
                        Probe.transfer_lost probe ~time
                      end
                    end
                    else begin
                      incr useless;
                      if tracing then
                        Probe.contact probe ~time ~seed:seed_upload ~useful:false
                    end
                  end
                  else begin
                    let v_t0 = Hist.tick select_tm in
                    if config.smart_exchange then begin
                      (* Remark 16: send a basis vector outside the
                         downloader's subspace when one exists.  A failed
                         scan is itself a containment proof — arm the memo
                         for free. *)
                      if
                        not
                          (Subspace.first_uncovered_into ~uploader:sp
                             ~downloader:downloader.space ~scratch:scratch2 scratch)
                      then begin
                        downloader.memo_space <- Some sp;
                        downloader.memo_gen <- Subspace.generation sp
                      end
                    end
                    else Subspace.random_member_into sp rng scratch;
                    Hist.tock select_tm v_t0;
                    deliver downloader ~from:(Some up) ~seed_upload ~time
                  end)
        in
        observe 0.0;

        (* Rate bands, stashed by [total_rate] for [apply]'s dispatch.  The
           abort band sits right after the seed band so a zero abort rate
           leaves every dispatch boundary float-identical to the pre-fault
           simulator. *)
        let rate_arrival = ref 0.0 in
        let rate_seed = ref 0.0 in
        let rate_abort = ref 0.0 in
        let total_rate () =
          let n = population () in
          rate_arrival := lambda_total;
          rate_seed := (if n = 0 || not (Faults.seed_up frun) then 0.0 else config.us);
          (* Every peer (active or dwelling seed) ticks at rate mu; seeds'
             uploads matter, and active peers' contacts may be silent. *)
          let rate_peers = config.mu *. float_of_int n in
          rate_abort := abort_rate *. float_of_int !len;
          !rate_arrival +. !rate_seed +. !rate_abort +. rate_peers
        in
        let apply ~time ~u =
          if u < !rate_arrival then begin
            let idx = Dist.categorical rng ~weights:arrival_weights in
            counters.arrivals <- counters.arrivals + 1;
            new_peer ~coded:arrival_kinds.(idx) ~time
          end
          else if u < !rate_arrival +. !rate_seed then
            transmit ~uploader:None ~seed_upload:true ~time
          else if u < !rate_arrival +. !rate_seed +. !rate_abort then begin
            (* Churn: a uniformly chosen in-progress (active) peer abandons
               its download.  rate_abort > 0 guarantees one exists. *)
            match !peers.(Rng.int_below rng !len) with
            | Some peer ->
                if Subspace.dim peer.space = config.k - 1 then decr near_complete;
                remove_active peer;
                counters.aborted <- counters.aborted + 1;
                counters.departures <- counters.departures + 1;
                if tracing then Probe.departure probe ~time Aborted
            | None -> assert false
          end
          else begin
            (* Uniform uploader among the n peers: active or dwelling seed. *)
            let n = population () in
            let idx = Rng.int_below rng n in
            if idx < !len then begin
              match !peers.(idx) with
              | Some peer ->
                  if Subspace.dim peer.space > 0 then
                    transmit ~uploader:(Some peer) ~seed_upload:false ~time
              | None -> assert false
            end
            else
              (* A dwelling peer seed: its subspace is everything. *)
              transmit ~uploader:None ~seed_upload:false ~time
          end;
          observe time;
          match until with
          | Some pred when pred ~time ~n:(population ()) -> Engine.request_stop h
          | _ -> ()
        in
        let model =
          {
            Engine.total_rate;
            apply;
            next_scheduled =
              (fun () ->
                match P2p_des.Heap.min_key departures_heap with
                | Some d -> d
                | None -> infinity);
            scheduled =
              (fun ~time ->
                match P2p_des.Heap.pop_min departures_heap with
                | Some (_, peer) ->
                    peer.departed <- true;
                    decr seeds_count;
                    counters.departures <- counters.departures + 1;
                    if tracing then
                      Probe.departure probe ~time Seed_departed;
                    observe time;
                    (match until with
                    | Some pred when pred ~time ~n:(population ()) ->
                        Engine.request_stop h
                    | _ -> ())
                | None -> assert false);
            population;
            extra_sample = (fun ~time:_ -> ());
            probe_sample =
              (fun ~time ->
                (* Coded analogue of the piece-count probe: entry i counts the
                   population members whose subspace dimension exceeds i, so
                   the vector is nonincreasing, the rarest "piece" is K-1, and
                   its count is the number of dwelling seeds. *)
                let counts = Array.make config.k 0 in
                for i = 0 to !len - 1 do
                  match !peers.(i) with
                  | Some peer ->
                      let d = Subspace.dim peer.space in
                      for j = 0 to d - 1 do
                        counts.(j) <- counts.(j) + 1
                      done
                  | None -> assert false
                done;
                if !seeds_count > 0 then
                  for j = 0 to config.k - 1 do
                    counts.(j) <- counts.(j) + !seeds_count
                  done;
                let count_of s =
                  let c = Pieceset.cardinal s in
                  if c = config.k then !seeds_count
                  else if c = config.k - 1 then !near_complete
                  else 0
                in
                Probe.sample ~time ~k:config.k ~n:(population ()) ~count_of
                  ~piece_counts:counts);
            finish = (fun ~time -> P2p_stats.Timeavg.close club_avg ~time);
          }
        in
        (model, (peers, len, seeds_count, useless, club_avg)))
  in
  let dim_histogram = Array.make (config.k + 1) 0 in
  for i = 0 to !len - 1 do
    match !peers.(i) with
    | Some peer -> begin
        let d = Subspace.dim peer.space in
        dim_histogram.(d) <- dim_histogram.(d) + 1
      end
    | None -> assert false
  done;
  dim_histogram.(config.k) <- !seeds_count;
  {
    final_time = common.Engine.final_time;
    events = common.Engine.events;
    arrivals = common.Engine.arrivals;
    useful_transfers = common.Engine.transfers;
    useless_transfers = !useless;
    completions = common.Engine.completions;
    departures = common.Engine.departures;
    time_avg_n = common.Engine.time_avg_n;
    max_n = common.Engine.max_n;
    final_n = common.Engine.final_n;
    truncated = common.Engine.truncated;
    stopped = common.Engine.stopped;
    outage_time = common.Engine.outage_time;
    aborted_peers = common.Engine.aborted_peers;
    lost_transfers = common.Engine.lost_transfers;
    samples = common.Engine.samples;
    dim_histogram;
    near_complete_fraction = P2p_stats.Timeavg.average club_avg;
  }

let run_seeded ?probe ?sample_every ?max_events ?until ~seed config ~horizon =
  run ?probe ?sample_every ?max_events ?until ~rng:(Rng.of_seed seed) config ~horizon
