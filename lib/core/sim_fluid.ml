module Pieceset = P2p_pieceset.Pieceset
module Probe = P2p_obs.Probe

type config = {
  params : Params.t;
  initial : (Pieceset.t * float) list;
  faults : Faults.t;
  control : Ode.control;
}

let default_config params =
  { params; initial = []; faults = Faults.none; control = Ode.default_control }

type stats = {
  final_time : float;
  steps : int;
  rejected_steps : int;
  rhs_evals : int;
  arrivals : float;
  transfers : float;
  completions : float;
  departures : float;
  aborted_mass : float;
  lost_mass : float;
  time_avg_n : float;
  max_n : int;
  final_n : float;
  truncated : bool;
  stopped : bool;
  outage_time : float;
  samples : (float * int) array;
}

let initial_vector (p : Params.t) initial =
  let d = Fluid.dim p in
  let x = Array.make (d + Fluid.aug_slots) 0.0 in
  List.iter
    (fun (set, mass) ->
      if not (Float.is_finite mass) || mass < 0.0 then
        invalid_arg "Sim_fluid: initial masses must be finite nonnegative";
      let i = Pieceset.to_index set in
      if i >= d then invalid_arg "Sim_fluid: initial piece set outside the collection";
      x.(i) <- x.(i) +. mass)
    initial;
  x

let round_nonneg v = if v <= 0.0 then 0 else int_of_float (Float.round v)

let run ?probe ?sample_every ?resume ?until ?init ?max_steps ~rng config ~horizon =
  let p = config.params in
  let d = Fluid.dim p in
  let control =
    match max_steps with None -> config.control | Some max_steps -> { config.control with max_steps }
  in
  let y0 =
    match init with
    | None -> initial_vector p config.initial
    | Some densities ->
        if Array.length densities <> d then invalid_arg "Sim_fluid: init has wrong size";
        let x = Array.make (d + Fluid.aug_slots) 0.0 in
        Array.blit densities 0 x 0 d;
        x
  in
  let abort_rate = config.faults.Faults.abort_rate in
  let loss_factor = 1.0 -. config.faults.Faults.loss_prob in
  let common, (session, final) =
    Engine.drive_continuous ?probe ?sample_every ?resume ~name:"sim_fluid" ~rng
      ~faults:config.faults ~horizon (fun h ->
        let frun = Engine.faults h in
        let rhs _t y =
          let dy = Array.make (d + Fluid.aug_slots) 0.0 in
          let us_scale = if Faults.seed_up frun then 1.0 else 0.0 in
          Fluid.drift_into p ~us_scale ~abort_rate ~loss_factor y dy;
          dy
        in
        let session =
          Ode.session ~control ~f:rhs ~t0:(Engine.start_time h) ~y0 ()
        in
        let pop () =
          let y = Ode.state session in
          let acc = ref 0.0 in
          for i = 0 to d - 1 do
            acc := !acc +. Float.max 0.0 y.(i)
          done;
          !acc
        in
        let ode_until =
          match until with
          | None -> None
          | Some pred ->
              Some
                (fun ~t ~y ->
                  let acc = ref 0.0 in
                  for i = 0 to d - 1 do
                    acc := !acc +. Float.max 0.0 y.(i)
                  done;
                  pred ~time:t ~total:!acc)
        in
        let c_advance ~to_ =
          match Ode.advance ?until:ode_until session ~to_ with
          | Ode.Reached -> `Reached
          | Ode.Stopped t -> `Stopped t
          | Ode.Step_limit -> `Step_limit
        in
        let c_probe_sample ~time =
          let y = Ode.state session in
          let count_of set = round_nonneg y.(Pieceset.to_index set) in
          let piece_counts =
            Array.init p.k (fun piece ->
                let acc = ref 0.0 in
                for c = 0 to d - 1 do
                  if c land (1 lsl piece) <> 0 then acc := !acc +. Float.max 0.0 y.(c)
                done;
                round_nonneg !acc)
          in
          Probe.sample ~time ~k:p.k ~n:(round_nonneg (pop ())) ~count_of ~piece_counts
        in
        let c_time_average ~until:t_end =
          let y = Ode.state session in
          let t0 = Engine.start_time h in
          let span = t_end -. t0 in
          if span <= 0.0 then Float.nan
          else begin
            (* The integrator carries ∫n dt exactly; a truncated run is
               frozen from the last integration time to the horizon. *)
            let integral = y.(d + Fluid.aug_pop_integral) in
            let frozen =
              let tail = t_end -. Ode.time session in
              if tail > 0.0 then pop () *. tail else 0.0
            in
            (integral +. frozen) /. span
          end
        in
        let c_finish ~time:_ =
          let y = Ode.state session in
          let c = Engine.counters h in
          c.Engine.events <- Ode.steps session;
          c.Engine.arrivals <- round_nonneg y.(d + Fluid.aug_arrivals);
          c.Engine.transfers <- round_nonneg y.(d + Fluid.aug_transfers);
          c.Engine.completions <- round_nonneg y.(d + Fluid.aug_completions);
          c.Engine.departures <- round_nonneg y.(d + Fluid.aug_departures);
          c.Engine.aborted <- round_nonneg y.(d + Fluid.aug_aborted);
          c.Engine.lost <- round_nonneg y.(d + Fluid.aug_lost)
        in
        let model =
          {
            Engine.c_advance;
            c_population = pop;
            c_extra_sample = (fun ~time:_ -> ());
            c_probe_sample;
            c_toggled = (fun () -> Ode.set_rhs session rhs);
            c_time_average;
            c_finish;
          }
        in
        (model, (session, fun () -> Ode.state session)))
  in
  let y = final () in
  let final_state = Array.sub y 0 d in
  Fluid.clamp_nonnegative final_state;
  let stats =
    {
      final_time = common.Engine.final_time;
      steps = Ode.steps session;
      rejected_steps = Ode.rejected session;
      rhs_evals = Ode.evals session;
      arrivals = Float.max 0.0 y.(d + Fluid.aug_arrivals);
      transfers = Float.max 0.0 y.(d + Fluid.aug_transfers);
      completions = Float.max 0.0 y.(d + Fluid.aug_completions);
      departures = Float.max 0.0 y.(d + Fluid.aug_departures);
      aborted_mass = Float.max 0.0 y.(d + Fluid.aug_aborted);
      lost_mass = Float.max 0.0 y.(d + Fluid.aug_lost);
      time_avg_n = common.Engine.time_avg_n;
      max_n = common.Engine.max_n;
      final_n = Fluid.total final_state;
      truncated = common.Engine.truncated;
      stopped = common.Engine.stopped;
      outage_time = common.Engine.outage_time;
      samples = common.Engine.samples;
    }
  in
  (stats, final_state)

let run_seeded ?probe ?sample_every ?resume ?until ?init ?max_steps ~seed config ~horizon =
  let rng = P2p_prng.Rng.of_seed seed in
  run ?probe ?sample_every ?resume ?until ?init ?max_steps ~rng config ~horizon
