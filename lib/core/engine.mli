(** The shared simulation-engine core behind all four simulators.

    Every simulator in this library is the same machine wearing a
    different model: an exponential race over a handful of aggregate
    rates, punctured by {e time barriers} (scheduled departures popping
    off a heap, seed-outage toggles), truncated by a horizon and an event
    budget, and observed through a sampling grid, a time-averaged
    population, and an optional {!P2p_obs.Probe.t}.  Before this module
    existed that scaffolding lived as four hand-maintained near-copies,
    and only two of them ({!Sim_markov}, {!Sim_agent}) ever received the
    fault layer and the telemetry hooks.  [Engine] is the single home
    for the shared part; each simulator supplies only its model-specific
    state and transition logic as a {!model} record of closures.

    {b What the engine owns}: the clock, the horizon / [max_events]
    truncation (and the [truncated] flag), the shared {!counters}, the
    time-average of the population, the [Vec]-backed sampling grid, the
    probe grid and {!P2p_obs.Profile} spans, and the per-run
    {!Faults.run} clockwork (including the toggle time barrier and the
    [Seed_toggle] trace events).

    {b What a model supplies}: its total event rate (stashing the
    per-band components for {!model.apply} to dispatch on), the event
    dispatch itself, the next scheduled (non-exponential) event time and
    its handler, the current population, any extra per-grid-point
    samples, the probe-sample builder, and a finaliser for model-owned
    accumulators.

    {b Determinism contracts} (all pinned by tests):
    - a run with [faults = Faults.none] makes no fault draws and is
      bit-identical to a fault-free simulator build;
    - a run with a probe attached is bit-identical to one without
      (probes only ever observe, on the {e simulation} clock);
    - the per-replication draw sequence is a pure function of the
      caller's [rng], so runner aggregates are bit-identical across any
      [--jobs] count.

    {b Loop semantics}, one iteration: draw [dt ~ Exp(total_rate)] and
    let [t_next = clock + dt]; the earliest of (outage toggle, scheduled
    event, [t_next]) wins, with ties broken in that order.  Toggles are
    gated by the event budget (so an exhausted run truncates instead of
    walking the remaining outage schedule); scheduled events are not
    (they were committed when scheduled, and consume budget as ordinary
    events).  When [t_next] overruns the horizon or the budget is spent,
    the run truncates: the state is frozen to the horizon, which biases
    every time-based statistic — the [truncated] flag records that the
    numbers should not be trusted silently. *)

(** Event counters shared by every simulator.  Models bump these from
    their dispatch closures; the engine itself only touches [events] and
    [max_n]. *)
type counters = {
  mutable events : int;  (** every clock tick: exponential race + scheduled *)
  mutable arrivals : int;
  mutable transfers : int;  (** successful (useful) piece/vector deliveries *)
  mutable completions : int;
  mutable departures : int;  (** all kinds: completed, dwelled, churned *)
  mutable aborted : int;  (** churn departures (also counted in [departures]) *)
  mutable lost : int;  (** uploads dropped by transfer loss *)
  mutable max_n : int;
}

type t
(** The engine handle passed to a model builder: access to the shared
    counters, the fault clockwork, and the population observer. *)

val counters : t -> counters

val faults : t -> Faults.run
(** The run's fault clockwork, for [Faults.seed_up] in rate computation
    and [Faults.lost] on transfers.  Started from the caller's spec
    before the model builder runs (so fault-stream splitting precedes
    any model setup draws, as the pre-engine simulators did). *)

val observe : t -> time:float -> n:int -> unit
(** Feed one population observation: updates the time-average and
    [max_n].  Each model decides {e when} to observe (e.g. {!Sim_markov}
    only after a state-changing event, {!Sim_agent} after every event) —
    the call sequence is part of the bit-identity contract, because
    float summation order in the time-average depends on it. *)

(** The model-specific half of a simulator, as closures over its own
    state.  All of these are called by {!drive} only. *)
type model = {
  total_rate : unit -> float;
      (** Total exponential race rate for the current state.  Models
          stash the per-band components in their closure for [apply]. *)
  apply : time:float -> u:float -> unit;
      (** Dispatch one race event at [time], where [u] is uniform on
          [0, total_rate ()) — compare against the stashed band
          boundaries in the same order they were summed. *)
  next_scheduled : unit -> float;
      (** Earliest scheduled (non-exponential) event, [infinity] if
          none — e.g. the departures heap minimum. *)
  scheduled : time:float -> unit;
      (** Handle the scheduled event at its time.  The engine has
          already advanced the clock, recorded the grid, and counted the
          event. *)
  population : unit -> int;  (** current swarm size, for the sampling grid *)
  extra_sample : time:float -> unit;
      (** Model-specific additions to each grid point (group counts,
          one-club fractions); called right after the engine pushes
          [(time, population ())]. *)
  probe_sample : time:float -> P2p_obs.Probe.sample;
      (** Build one probe sample; only called when the probe samples. *)
  finish : time:float -> unit;
      (** Close model-owned accumulators at truncation time (the engine
          closes its own population average first). *)
}

(** The common statistics prefix every simulator shares.  Model-specific
    statistics (sojourns, dimension histograms, component sizes, …) are
    carried by the ['a] the model builder returns through {!drive}. *)
type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
      (** the [max_events] budget ran out before [horizon]: the state is
          frozen from the last event to the horizon, so [final_time]
          still reads [horizon] but every time-based statistic is biased
          toward the frozen state. *)
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;  (** (t, N_t) on the sampling grid *)
}

val drive :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  name:string ->
  rng:P2p_prng.Rng.t ->
  faults:Faults.t ->
  horizon:float ->
  (t -> model * 'a) ->
  stats * 'a
(** [drive ~name ~rng ~faults ~horizon build] runs one simulation on
    [0, horizon].  [build] receives the handle, constructs the model
    state (including the initial population and the initial
    {!observe} at time 0), and returns the {!model} plus whatever the
    simulator needs to assemble its model-specific statistics
    afterwards.  [name] prefixes the profile spans
    ([name ^ "/setup"], ["/event-loop"], ["/finalise"]).
    [sample_every] defaults to [horizon /. 200.] (floored at [1e-9]);
    [max_events] defaults to 200 million. *)
