(** The shared simulation-engine core behind all four simulators.

    Every simulator in this library is the same machine wearing a
    different model: an exponential race over a handful of aggregate
    rates, punctured by {e time barriers} (scheduled departures popping
    off a heap, seed-outage toggles), truncated by a horizon and an event
    budget, and observed through a sampling grid, a time-averaged
    population, and an optional {!P2p_obs.Probe.t}.  Before this module
    existed that scaffolding lived as four hand-maintained near-copies,
    and only two of them ({!Sim_markov}, {!Sim_agent}) ever received the
    fault layer and the telemetry hooks.  [Engine] is the single home
    for the shared part; each simulator supplies only its model-specific
    state and transition logic as a {!model} record of closures.

    {b What the engine owns}: the clock, the horizon / [max_events]
    truncation (and the [truncated] flag), the shared {!counters}, the
    time-average of the population, the [Vec]-backed sampling grid, the
    probe grid and {!P2p_obs.Profile} spans, and the per-run
    {!Faults.run} clockwork (including the toggle time barrier and the
    [Seed_toggle] trace events).

    {b What a model supplies}: its total event rate (stashing the
    per-band components for {!model.apply} to dispatch on), the event
    dispatch itself, the next scheduled (non-exponential) event time and
    its handler, the current population, any extra per-grid-point
    samples, the probe-sample builder, and a finaliser for model-owned
    accumulators.

    {b Determinism contracts} (all pinned by tests):
    - a run with [faults = Faults.none] makes no fault draws and is
      bit-identical to a fault-free simulator build;
    - a run with a probe attached is bit-identical to one without
      (probes only ever observe, on the {e simulation} clock);
    - the per-replication draw sequence is a pure function of the
      caller's [rng], so runner aggregates are bit-identical across any
      [--jobs] count.

    {b Loop semantics}, one iteration: draw [dt ~ Exp(total_rate)] and
    let [t_next = clock + dt]; the earliest of (outage toggle, scheduled
    event, [t_next]) wins, with ties broken in that order.  Toggles are
    gated by the event budget (so an exhausted run truncates instead of
    walking the remaining outage schedule); scheduled events are not
    (they were committed when scheduled, and consume budget as ordinary
    events).  When [t_next] overruns the horizon or the budget is spent,
    the run truncates: the state is frozen to the horizon, which biases
    every time-based statistic — the [truncated] flag records that the
    numbers should not be trusted silently. *)

(** Event counters shared by every simulator.  Models bump these from
    their dispatch closures; the engine itself only touches [events] and
    [max_n]. *)
type counters = {
  mutable events : int;  (** every clock tick: exponential race + scheduled *)
  mutable arrivals : int;
  mutable transfers : int;  (** successful (useful) piece/vector deliveries *)
  mutable completions : int;
  mutable departures : int;  (** all kinds: completed, dwelled, churned *)
  mutable aborted : int;  (** churn departures (also counted in [departures]) *)
  mutable lost : int;  (** uploads dropped by transfer loss *)
  mutable max_n : int;
}

type t
(** The engine handle passed to a model builder: access to the shared
    counters, the fault clockwork, and the population observer. *)

val counters : t -> counters

val start_time : t -> float
(** The global simulation time this run started at — [0.] for a fresh
    run, the segment boundary for a {!resume}d one.  Models observe
    their initial population at this time, not a hard-coded [0.]. *)

val request_stop : t -> unit
(** Ask the engine to end the run after the event being dispatched.
    Called by a model from inside [apply] / [scheduled] when an [until]
    predicate fires (the hybrid handoff trigger): the engine closes the
    time-average and the model accumulators {e at the current clock}, so
    [final_time] reads the stop time rather than the horizon, and
    {!stats.stopped} is set. *)

val faults : t -> Faults.run
(** The run's fault clockwork, for [Faults.seed_up] in rate computation
    and [Faults.lost] on transfers.  Started from the caller's spec
    before the model builder runs (so fault-stream splitting precedes
    any model setup draws, as the pre-engine simulators did). *)

val observe : t -> time:float -> n:int -> unit
(** Feed one population observation: updates the time-average and
    [max_n].  Each model decides {e when} to observe (e.g. {!Sim_markov}
    only after a state-changing event, {!Sim_agent} after every event) —
    the call sequence is part of the bit-identity contract, because
    float summation order in the time-average depends on it. *)

(** The model-specific half of a simulator, as closures over its own
    state.  All of these are called by {!drive} only. *)
type model = {
  total_rate : unit -> float;
      (** Total exponential race rate for the current state.  Models
          stash the per-band components in their closure for [apply]. *)
  apply : time:float -> u:float -> unit;
      (** Dispatch one race event at [time], where [u] is uniform on
          [0, total_rate ()) — compare against the stashed band
          boundaries in the same order they were summed. *)
  next_scheduled : unit -> float;
      (** Earliest scheduled (non-exponential) event, [infinity] if
          none — e.g. the departures heap minimum. *)
  scheduled : time:float -> unit;
      (** Handle the scheduled event at its time.  The engine has
          already advanced the clock, recorded the grid, and counted the
          event. *)
  population : unit -> int;  (** current swarm size, for the sampling grid *)
  extra_sample : time:float -> unit;
      (** Model-specific additions to each grid point (group counts,
          one-club fractions); called right after the engine pushes
          [(time, population ())]. *)
  probe_sample : time:float -> P2p_obs.Probe.sample;
      (** Build one probe sample; only called when the probe samples. *)
  finish : time:float -> unit;
      (** Close model-owned accumulators at truncation time (the engine
          closes its own population average first). *)
}

(** The common statistics prefix every simulator shares.  Model-specific
    statistics (sojourns, dimension histograms, component sizes, …) are
    carried by the ['a] the model builder returns through {!drive}. *)
type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
      (** the [max_events] budget ran out before [horizon]: the state is
          frozen from the last event to the horizon, so [final_time]
          still reads [horizon] but every time-based statistic is biased
          toward the frozen state. *)
  stopped : bool;
      (** the run ended early because the model called {!request_stop}
          (or a continuous model's [until] fired); [final_time] is the
          stop time, and nothing after it was simulated. *)
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;  (** (t, N_t) on the sampling grid *)
}

(** {1 Resumable segments}

    The hybrid simulator chops one logical run into alternating
    stochastic and fluid segments on a single global clock.  A [resume]
    value carries the cross-segment engine state: the segment's start
    time, where the shared sampling grid left off, and the already-
    running fault clockwork (so outage schedules span segments and the
    rng is only split once, at the top of the logical run). *)
type resume = {
  t0 : float;  (** segment start on the global simulation clock *)
  grid_after : float;
      (** last grid time already recorded by a previous segment; the
          first sample of this segment lands on the next multiple of the
          interval strictly after it.  Negative = fresh grid starting at
          exactly [0.]. *)
  frun : Faults.run option;
      (** an already-started fault run to continue ([Faults.start] is
          skipped, and no fault rng split happens); [None] = start one *)
}

val fresh : resume
(** [t0 = 0.], fresh grid, fresh fault run — [drive]'s default, and
    bit-identical to the pre-resume engine. *)

val drive :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  ?resume:resume ->
  name:string ->
  rng:P2p_prng.Rng.t ->
  faults:Faults.t ->
  horizon:float ->
  (t -> model * 'a) ->
  stats * 'a
(** [drive ~name ~rng ~faults ~horizon build] runs one simulation on
    [[resume.t0], horizon] (fresh runs start at 0).  [build] receives
    the handle, constructs the model state (including the initial
    population and the initial {!observe} at {!start_time}), and
    returns the {!model} plus whatever the simulator needs to assemble
    its model-specific statistics afterwards.  [name] prefixes the
    profile spans ([name ^ "/setup"], ["/event-loop"], ["/finalise"]).
    [sample_every] defaults to [horizon /. 200.] (floored at [1e-9]);
    [max_events] defaults to 200 million. *)

(** {1 The sharded driver}

    One logical swarm split across [nshards] local event loops
    (ROADMAP item 1).  Each shard owns a generator split off the
    caller's [rng] in shard order, a partition of the peers (see
    {!Shard}), and its own engine handle; the horizon is divided into
    sync windows of length [sync_every], and within a window every
    shard runs the exact [drive] loop bounded by the window end —
    redrawing the exponential race at the boundary, valid by
    memorylessness.  Contacts whose downloader lives on another shard
    are sent as messages; at the window barrier the calling domain
    delivers all of them in [(shard_id, seq)] order (outbox
    concatenation in shard order, each outbox in send order) at the
    window-end time, then every shard receives a fresh population
    snapshot ([sh_sync]) for its cross-shard rate bookkeeping.

    {b Determinism contract.}  A sharded run is a pure function of
    (rng, nshards, sync_every, sample grid): bit-identical across
    repeated invocations and across any [jobs] count, because shard
    windows touch only shard-owned state and the barrier is sequential.
    Results {e do} change when [nshards] or [sync_every] changes — the
    partition, the per-shard streams, and the barrier timing are all
    part of the trajectory.  [nshards = 1] is {e defined} as the
    unsharded engine: callers dispatch to {!drive}, which is why this
    function refuses it. *)

type 'msg shard_model = {
  sh_model : model;  (** the shard-local event loop, exactly as for {!drive} *)
  sh_deliver : time:float -> src:int -> 'msg -> unit;
      (** apply one cross-shard message; [time] is the barrier time *)
  sh_sync : time:float -> populations:int array -> unit;
      (** post-barrier rate exchange: per-shard populations, the
          receiver's own entry being its live value *)
}

type sharded_stats = {
  sh_stats : stats;
      (** merged: counters and [time_avg_n] are sums (the time-average
          is linear in the shard decomposition), [samples] is the
          pointwise sum over the shared grid, [max_n] the maximum of the
          summed grid plus the final state (exact on grid points, a
          lower bound between them), [outage_time] is shard 0's (the
          fixed seed lives there). *)
  sh_events : int array;
      (** per-shard event counts — the partition proof the bench table
          commits *)
  sh_final_n : int array;
  sh_messages : int;  (** cross-shard messages delivered *)
  sh_windows : int;  (** sync barriers executed *)
}

val drive_sharded :
  ?probes:(int -> P2p_obs.Probe.t) ->
  ?sample_every:float ->
  ?max_events:int ->
  ?sync_every:float ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  name:string ->
  rng:P2p_prng.Rng.t ->
  faults:Faults.t ->
  horizon:float ->
  nshards:int ->
  (shard:int ->
  rng:P2p_prng.Rng.t ->
  send:(time:float -> dst:int -> 'msg -> unit) ->
  t ->
  'msg shard_model * 'a) ->
  sharded_stats * 'a array
(** [drive_sharded ~rng ~faults ~horizon ~nshards build] runs one
    sharded simulation on [[0, horizon]].  [build ~shard ~rng ~send h]
    is called once per shard, in shard order, and must construct only
    shard-local state; [rng] is the shard's own stream (the engine
    draws the exponential race from the same one, as [drive] does);
    [send ~time ~dst msg] enqueues a cross-shard message for delivery
    at the next barrier.  [probes] supplies a
    per-shard probe (default [Probe.none] everywhere); sampling probes
    observe their own shard only.  [sync_every] defaults to
    [horizon /. 200.] (the sample-grid default); [max_events] is a
    global budget split evenly across shards — a shard that exhausts
    its share freezes (truncated) while the others continue.
    [jobs] caps the domains used per window (default 1 = inline);
    [should_stop], polled at each barrier, ends the run early with
    [stopped] set (the campaign watchdog hook).  The outage clockwork
    runs on shard 0 only; churn and loss draws are per-shard.
    @raise Invalid_argument if [nshards < 2]. *)

(** {1 The continuous (fluid) model interface}

    The fifth backend integrates the mean-field ODE instead of racing
    exponentials, but shares everything else: the sampling grid, the
    probe grid, the fault clockwork, truncation semantics, and the
    {!stats} record.  Every grid point, fault toggle, and the horizon is
    a {e time barrier} the integrator is asked to land on exactly
    ([c_advance ~to_:barrier]), so fluid trajectories are sampled on the
    same sim-time grid as the stochastic simulators and
    [p2psim report] works unchanged. *)
type continuous = {
  c_advance : to_:float -> [ `Reached | `Stopped of float | `Step_limit ];
      (** Integrate the continuous state from its current time to [to_]
          (global simulation time).  [`Stopped t] = the model's own
          [until] predicate fired at [t <= to_] (hybrid handoff);
          [`Step_limit] = the step budget ran out (maps to
          {!stats.truncated}). *)
  c_population : unit -> float;  (** total mass at the current state *)
  c_extra_sample : time:float -> unit;
  c_probe_sample : time:float -> P2p_obs.Probe.sample;
  c_toggled : unit -> unit;
      (** A seed-outage toggle just happened at the current time: the
          drift changed discontinuously, so invalidate any cached
          right-hand-side evaluations (FSAL stages). *)
  c_time_average : until:float -> float;
      (** Exact time-averaged population over [[start, until]] — fluid
          models integrate an auxiliary [∫N dt] state, which is exact
          where a piecewise-constant {!P2p_stats.Timeavg} would not be. *)
  c_finish : time:float -> unit;
      (** Close model accumulators and write the rounded cumulative
          flows into {!counters} (arrivals, transfers, …). *)
}

val drive_continuous :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?resume:resume ->
  name:string ->
  rng:P2p_prng.Rng.t ->
  faults:Faults.t ->
  horizon:float ->
  (t -> continuous * 'a) ->
  stats * 'a
(** Drive a continuous model over [[resume.t0], horizon].  [rng] is
    used only to start the fault stream (no draws at all when
    [faults = Faults.none] and [resume.frun = None] — determinism
    contract identical to the stochastic drivers).  [sample_every]
    defaults to [(horizon - t0) /. 200.] (floored at [1e-9]). *)
