module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Probe = P2p_obs.Probe
module Profile = P2p_obs.Profile

type config = {
  params : Params.t;
  policy : Policy.t;
  initial : (Pieceset.t * int) list;
  faults : Faults.t;
}

let default_config params =
  { params; policy = Policy.random_useful; initial = []; faults = Faults.none }

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  visits_to_empty : int;
  truncated : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
}

type counters = {
  mutable events : int;
  mutable arrivals : int;
  mutable transfers : int;
  mutable completions : int;
  mutable departures : int;
  mutable max_n : int;
  mutable visits_to_empty : int;
  mutable aborted : int;
  mutable lost : int;
}

(* One contact resolution: [uploader] tries to push a piece to a uniformly
   chosen peer.  Returns true iff the state changed.  [probe] only ever
   receives events here (never randomness or state), so a [Probe.none]
   run takes the exact same draws in the exact same order. *)
let resolve_contact ~rng ~frun ~(p : Params.t) ~policy ~state ~uploader ~counters ~probe ~time =
  let tracing = probe.Probe.tracing in
  let is_seed = match uploader with Policy.Fixed_seed -> true | Policy.Peer _ -> false in
  let downloader = State.sample_uniform_peer state ~draw:(Rng.int_below rng) in
  let choice = Policy.sample policy ~rng ~k:p.k ~state ~uploader ~downloader in
  if tracing then
    Probe.event probe ~time (Contact { seed = is_seed; useful = Option.is_some choice });
  match choice with
  | None -> false
  | Some _ when Faults.lost frun ->
      (* The upload happened but the piece never arrived. *)
      counters.lost <- counters.lost + 1;
      if tracing then Probe.event probe ~time Transfer_lost;
      false
  | Some piece ->
      counters.transfers <- counters.transfers + 1;
      let target = Pieceset.add piece downloader in
      let full = Params.full_set p in
      let completed = Pieceset.equal target full in
      if tracing then Probe.event probe ~time (Transfer { piece; completed });
      if completed then begin
        counters.completions <- counters.completions + 1;
        if Params.immediate_departure p then begin
          State.remove_peer state downloader;
          counters.departures <- counters.departures + 1;
          if tracing then Probe.event probe ~time (Departure { kind = Completed })
        end
        else State.move_peer state ~from_:downloader ~to_:target
      end
      else State.move_peer state ~from_:downloader ~to_:target;
      true

let run ?(probe = Probe.none) ?observer ?sample_every ?(max_events = 200_000_000) ~rng config
    ~horizon =
  let p = config.params in
  let prof = probe.Probe.profile in
  let tracing = probe.Probe.tracing in
  let setup_span = Profile.start prof "sim_markov/setup" in
  let full = Params.full_set p in
  let state = State.of_counts config.initial in
  let lambda_total = Params.lambda_total p in
  (* Walker alias table: O(1) arrival-type draws instead of a linear CDF
     scan, and no per-arrival allocation. *)
  let arrival_alias = Dist.Alias.make (Array.map snd p.arrivals) in
  let counters =
    {
      events = 0;
      arrivals = 0;
      transfers = 0;
      completions = 0;
      departures = 0;
      max_n = State.n state;
      visits_to_empty = 0;
      aborted = 0;
      lost = 0;
    }
  in
  let frun = Faults.start config.faults ~rng in
  if tracing then
    Faults.set_observer frun (fun ~now ~up -> Probe.event probe ~time:now (Seed_toggle { up }));
  let abort_rate = config.faults.abort_rate in
  let avg = P2p_stats.Timeavg.create () in
  P2p_stats.Timeavg.observe avg ~time:0.0 ~value:(float_of_int (State.n state));
  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let samples = P2p_stats.Vec.create () in
  let next_sample = ref 0.0 in
  (* Swarm probes walk their own sim-time grid, in lockstep with the
     sampling grid's "state before the event" semantics.  Sim time, never
     wall clock: probe series must be bit-identical across --jobs. *)
  let probing = Probe.sampling probe in
  let next_probe = ref 0.0 in
  let emit_probe_sample () =
    probe.Probe.on_sample
      (Probe.sample ~time:!next_probe ~k:p.k ~n:(State.n state) ~count_of:(State.count state)
         ~piece_counts:(State.piece_count_vector state ~k:p.k))
  in
  let record_samples_through time =
    while !next_sample <= time && !next_sample <= horizon do
      P2p_stats.Vec.push samples (!next_sample, State.n state);
      next_sample := !next_sample +. sample_every
    done;
    if probing then
      while !next_probe <= time && !next_probe <= horizon do
        emit_probe_sample ();
        next_probe := !next_probe +. probe.Probe.interval
      done
  in
  record_samples_through 0.0;
  let clock = ref 0.0 in
  let running = ref true in
  let truncated = ref false in
  Profile.stop setup_span;
  let loop_span = Profile.start prof "sim_markov/event-loop" in
  while !running do
    let n = State.n state in
    let seeds = State.count state full in
    let rate_arrival = lambda_total in
    let rate_seed_contact = if n > 0 && Faults.seed_up frun then p.us else 0.0 in
    let rate_peer_contact = p.mu *. float_of_int n in
    let rate_abort = abort_rate *. float_of_int (n - seeds) in
    let rate_departure =
      if Params.immediate_departure p then 0.0 else p.gamma *. float_of_int seeds
    in
    let total =
      rate_arrival +. rate_seed_contact +. rate_peer_contact +. rate_abort +. rate_departure
    in
    let dt = Dist.exponential rng ~rate:total in
    let t_next = !clock +. dt in
    let toggle = Faults.next_toggle frun in
    if toggle <= t_next && toggle <= horizon && counters.events < max_events then begin
      (* The outage flips before the next event: advance to the toggle and
         redraw — valid by memorylessness of the exponential race. *)
      record_samples_through toggle;
      clock := toggle;
      Faults.toggle frun ~now:toggle
    end
    else if t_next > horizon || counters.events >= max_events then begin
      (* The event budget ran out before the horizon: the state is frozen
         from !clock to horizon, which biases every time-based statistic.
         Record that instead of truncating silently. *)
      if t_next <= horizon then truncated := true;
      record_samples_through horizon;
      P2p_stats.Timeavg.close avg ~time:horizon;
      clock := horizon;
      running := false
    end
    else begin
      (* The sampling grid must capture the value *before* this event. *)
      record_samples_through (Float.min t_next horizon);
      clock := t_next;
      counters.events <- counters.events + 1;
      let u = Rng.float rng *. total in
      let changed =
        if u < rate_arrival then begin
          let idx = Dist.Alias.sample rng arrival_alias in
          let pieces = fst p.arrivals.(idx) in
          State.add_peer state pieces;
          counters.arrivals <- counters.arrivals + 1;
          if tracing then Probe.event probe ~time:!clock (Arrival { pieces });
          true
        end
        else if u < rate_arrival +. rate_seed_contact then
          resolve_contact ~rng ~frun ~p ~policy:config.policy ~state
            ~uploader:Policy.Fixed_seed ~counters ~probe ~time:!clock
        else if u < rate_arrival +. rate_seed_contact +. rate_peer_contact then begin
          let uploader_type = State.sample_uniform_peer state ~draw:(Rng.int_below rng) in
          resolve_contact ~rng ~frun ~p ~policy:config.policy ~state
            ~uploader:(Policy.Peer uploader_type) ~counters ~probe ~time:!clock
        end
        else if u < rate_arrival +. rate_seed_contact +. rate_peer_contact +. rate_abort
        then begin
          (* Churn: a uniformly chosen in-progress peer abandons its
             download.  rate_abort > 0 guarantees a non-seed peer exists. *)
          let rec pick () =
            let c = State.sample_uniform_peer state ~draw:(Rng.int_below rng) in
            if Pieceset.equal c full then pick () else c
          in
          State.remove_peer state (pick ());
          counters.aborted <- counters.aborted + 1;
          counters.departures <- counters.departures + 1;
          if tracing then Probe.event probe ~time:!clock (Departure { kind = Aborted });
          true
        end
        else begin
          State.remove_peer state full;
          counters.departures <- counters.departures + 1;
          if tracing then Probe.event probe ~time:!clock (Departure { kind = Seed_departed });
          true
        end
      in
      if changed then begin
        let n' = State.n state in
        P2p_stats.Timeavg.observe avg ~time:!clock ~value:(float_of_int n');
        if n' > counters.max_n then counters.max_n <- n';
        if n' = 0 then counters.visits_to_empty <- counters.visits_to_empty + 1;
        match observer with Some f -> f ~time:!clock ~state | None -> ()
      end
    end
  done;
  Profile.stop loop_span;
  let finish_span = Profile.start prof "sim_markov/finalise" in
  Faults.finish frun ~now:!clock;
  let stats =
    {
      final_time = !clock;
      events = counters.events;
      arrivals = counters.arrivals;
      transfers = counters.transfers;
      completions = counters.completions;
      departures = counters.departures;
      time_avg_n = P2p_stats.Timeavg.average avg;
      max_n = counters.max_n;
      final_n = State.n state;
      visits_to_empty = counters.visits_to_empty;
      truncated = !truncated;
      outage_time = Faults.outage_time frun;
      aborted_peers = counters.aborted;
      lost_transfers = counters.lost;
      samples = P2p_stats.Vec.to_array samples;
    }
  in
  Profile.stop finish_span;
  (stats, state)

let run_seeded ?probe ?observer ?sample_every ?max_events ~seed config ~horizon =
  let rng = Rng.of_seed seed in
  run ?probe ?observer ?sample_every ?max_events ~rng config ~horizon
