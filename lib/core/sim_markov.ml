module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Probe = P2p_obs.Probe
module Hist = P2p_obs.Hist

type config = {
  params : Params.t;
  policy : Policy.t;
  initial : (Pieceset.t * int) list;
  faults : Faults.t;
}

let default_config params =
  { params; policy = Policy.random_useful; initial = []; faults = Faults.none }

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  visits_to_empty : int;
  truncated : bool;
  stopped : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
}

(* One contact resolution: [uploader] tries to push a piece to a uniformly
   chosen peer.  Returns true iff the state changed.  [probe] only ever
   receives events here (never randomness or state), so a [Probe.none]
   run takes the exact same draws in the exact same order.  [seeds]
   mirrors [State.count state full] incrementally so [total_rate] never
   pays a hash lookup per event. *)
let resolve_contact ~rng ~frun ~(p : Params.t) ~policy ~state ~uploader ~seeds
    ~(counters : Engine.counters) ~probe ~time =
  let tracing = probe.Probe.tracing in
  let is_seed = match uploader with Policy.Fixed_seed -> true | Policy.Peer _ -> false in
  let downloader = State.sample_uniform_peer state ~draw:(Rng.int_below rng) in
  let choice = Policy.sample policy ~rng ~k:p.k ~state ~uploader ~downloader in
  if tracing then
    Probe.contact probe ~time ~seed:is_seed ~useful:(Option.is_some choice);
  match choice with
  | None -> false
  | Some _ when Faults.lost frun ->
      (* The upload happened but the piece never arrived. *)
      counters.lost <- counters.lost + 1;
      if tracing then Probe.transfer_lost probe ~time;
      false
  | Some piece ->
      counters.transfers <- counters.transfers + 1;
      let target = Pieceset.add piece downloader in
      let full = Params.full_set p in
      let completed = Pieceset.equal target full in
      if tracing then Probe.transfer probe ~time ~piece ~completed;
      if completed then begin
        counters.completions <- counters.completions + 1;
        if Params.immediate_departure p then begin
          State.remove_peer state downloader;
          counters.departures <- counters.departures + 1;
          if tracing then Probe.departure probe ~time Completed
        end
        else begin
          State.move_peer state ~from_:downloader ~to_:target;
          incr seeds
        end
      end
      else State.move_peer state ~from_:downloader ~to_:target;
      true

let run ?(probe = Probe.none) ?observer ?sample_every ?max_events ?resume ?until ~rng config
    ~horizon =
  let p = config.params in
  let common, (state, visits_to_empty) =
    Engine.drive ~probe ?sample_every ?max_events ?resume ~name:"sim_markov" ~rng
      ~faults:config.faults ~horizon (fun h ->
        let tracing = probe.Probe.tracing in
        let full = Params.full_set p in
        let state = State.of_counts config.initial in
        let lambda_total = Params.lambda_total p in
        (* Walker alias table: O(1) arrival-type draws instead of a linear
           CDF scan, and no per-arrival allocation. *)
        let arrival_alias = Dist.Alias.make (Array.map snd p.arrivals) in
        let counters = Engine.counters h in
        let frun = Engine.faults h in
        let abort_rate = config.faults.abort_rate in
        let visits_to_empty = ref 0 in
        (* sampled phase cost of contact resolution (policy sampling +
           piece bookkeeping) — the markov hot path's dominant term *)
        let contact_tm = Hist.timer (Hist.get probe.Probe.hists "sim_markov/contact") in
        Engine.observe h ~time:(Engine.start_time h) ~n:(State.n state);
        (* The seed count is maintained incrementally (arrival of a full
           set, completion into the dwell stage, seed departure) so the
           per-event rate recomputation is pure arithmetic — no hash
           lookup on the hot path. *)
        let seeds = ref (State.count state full) in
        let us = p.us and mu = p.mu and gamma = p.gamma in
        let immediate = Params.immediate_departure p in
        (* Rate bands, stashed by [total_rate] for [apply]'s dispatch. *)
        let rate_arrival = ref lambda_total in
        let rate_seed_contact = ref 0.0 in
        let rate_peer_contact = ref 0.0 in
        let rate_abort = ref 0.0 in
        let total_rate () =
          let n = State.n state in
          let s = !seeds in
          rate_seed_contact := (if n > 0 && Faults.seed_up frun then us else 0.0);
          rate_peer_contact := mu *. float_of_int n;
          rate_abort := abort_rate *. float_of_int (n - s);
          let rate_departure = if immediate then 0.0 else gamma *. float_of_int s in
          !rate_arrival +. !rate_seed_contact +. !rate_peer_contact +. !rate_abort
          +. rate_departure
        in
        let apply ~time ~u =
          let changed =
            if u < !rate_arrival then begin
              let idx = Dist.Alias.sample rng arrival_alias in
              let pieces = fst p.arrivals.(idx) in
              State.add_peer state pieces;
              if Pieceset.equal pieces full then incr seeds;
              counters.arrivals <- counters.arrivals + 1;
              if tracing then Probe.arrival probe ~time ~pieces;
              true
            end
            else if u < !rate_arrival +. !rate_seed_contact then begin
              let c_t0 = Hist.tick contact_tm in
              let changed =
                resolve_contact ~rng ~frun ~p ~policy:config.policy ~state
                  ~uploader:Policy.Fixed_seed ~seeds ~counters ~probe ~time
              in
              Hist.tock contact_tm c_t0;
              changed
            end
            else if u < !rate_arrival +. !rate_seed_contact +. !rate_peer_contact then begin
              let uploader_type =
                State.sample_uniform_peer state ~draw:(Rng.int_below rng)
              in
              let c_t0 = Hist.tick contact_tm in
              let changed =
                resolve_contact ~rng ~frun ~p ~policy:config.policy ~state
                  ~uploader:(Policy.Peer uploader_type) ~seeds ~counters ~probe ~time
              in
              Hist.tock contact_tm c_t0;
              changed
            end
            else if
              u < !rate_arrival +. !rate_seed_contact +. !rate_peer_contact +. !rate_abort
            then begin
              (* Churn: a uniformly chosen in-progress peer abandons its
                 download.  rate_abort > 0 guarantees a non-seed peer exists. *)
              let rec pick () =
                let c = State.sample_uniform_peer state ~draw:(Rng.int_below rng) in
                if Pieceset.equal c full then pick () else c
              in
              State.remove_peer state (pick ());
              counters.aborted <- counters.aborted + 1;
              counters.departures <- counters.departures + 1;
              if tracing then Probe.departure probe ~time Aborted;
              true
            end
            else begin
              State.remove_peer state full;
              decr seeds;
              counters.departures <- counters.departures + 1;
              if tracing then Probe.departure probe ~time Seed_departed;
              true
            end
          in
          if changed then begin
            let n' = State.n state in
            Engine.observe h ~time ~n:n';
            if n' = 0 then incr visits_to_empty;
            (match observer with Some f -> f ~time ~state | None -> ());
            match until with
            | Some pred when pred ~time ~n:n' -> Engine.request_stop h
            | _ -> ()
          end
        in
        let model =
          {
            Engine.total_rate;
            apply;
            next_scheduled = (fun () -> infinity);
            scheduled = (fun ~time:_ -> ());
            population = (fun () -> State.n state);
            extra_sample = (fun ~time:_ -> ());
            probe_sample =
              (fun ~time ->
                Probe.sample ~time ~k:p.k ~n:(State.n state) ~count_of:(State.count state)
                  ~piece_counts:(State.piece_count_vector state ~k:p.k));
            finish = (fun ~time:_ -> ());
          }
        in
        (model, (state, visits_to_empty)))
  in
  let stats =
    {
      final_time = common.Engine.final_time;
      events = common.Engine.events;
      arrivals = common.Engine.arrivals;
      transfers = common.Engine.transfers;
      completions = common.Engine.completions;
      departures = common.Engine.departures;
      time_avg_n = common.Engine.time_avg_n;
      max_n = common.Engine.max_n;
      final_n = common.Engine.final_n;
      visits_to_empty = !visits_to_empty;
      truncated = common.Engine.truncated;
      stopped = common.Engine.stopped;
      outage_time = common.Engine.outage_time;
      aborted_peers = common.Engine.aborted_peers;
      lost_transfers = common.Engine.lost_transfers;
      samples = common.Engine.samples;
    }
  in
  (stats, state)

let run_seeded ?probe ?observer ?sample_every ?max_events ?resume ?until ~seed config ~horizon =
  let rng = Rng.of_seed seed in
  run ?probe ?observer ?sample_every ?max_events ?resume ?until ~rng config ~horizon

(* ---- the sharded run path ---- *)

type shard_report = {
  shards : int;
  windows : int;
  cross_messages : int;
  shard_events : int array;
  shard_final_n : int array;
  shard_states : State.t array;
}

let merged_state states =
  State.of_counts (List.concat_map State.to_alist (Array.to_list states))

let run_sharded ?(probes = fun _ -> Probe.none) ?sample_every ?max_events ?sync_every ?jobs
    ?should_stop ~shards ~rng config ~horizon =
  if shards < 1 then invalid_arg "Sim_markov.run_sharded: shards must be >= 1";
  if shards = 1 then begin
    (* One shard is *defined* as the unsharded engine: same draws, same
       grid, bit-identical to [run] — the goldens' anchor. *)
    let stats, state = run ~probe:(probes 0) ?sample_every ?max_events ~rng config ~horizon in
    ( stats,
      state,
      {
        shards = 1;
        windows = 0;
        cross_messages = 0;
        shard_events = [| stats.events |];
        shard_final_n = [| stats.final_n |];
        shard_states = [| State.copy state |];
      } )
  end
  else begin
    let p = config.params in
    let full = Params.full_set p in
    let immediate = Params.immediate_departure p in
    let us = p.us and mu = p.mu and gamma = p.gamma in
    let abort_rate = config.faults.abort_rate in
    let lambda_share = Params.lambda_total p /. float_of_int shards in
    let parts = Shard.partition_counts ~shards config.initial in
    let barrier_empties = ref 0 in
    let sharded, states =
      Engine.drive_sharded ~probes ?sample_every ?max_events ?sync_every ?jobs ?should_stop
        ~name:"sim_markov" ~rng ~faults:config.faults ~horizon ~nshards:shards
        (fun ~shard ~rng ~send h ->
          (* One shard of the markov swarm: [run]'s model re-read
             through the partition.  Arrivals are Poisson-thinned (λ/S
             per shard), contact *initiation* is local (μ·n_i sums to
             μ·n over the shards), and the downloader of every contact
             is drawn uniformly over the global population as this
             shard sees it — own peers live, the others from the last
             sync snapshot.  A remote downloader turns the contact into
             a message; the receiving shard picks the concrete
             downloader and resolves the policy with its own generator.
             The fixed seed lives on shard 0. *)
          let probe = probes shard in
          let tracing = probe.Probe.tracing in
          let state = State.of_counts parts.(shard) in
          let arrival_alias = Dist.Alias.make (Array.map snd p.arrivals) in
          let counters = Engine.counters h in
          let frun = Engine.faults h in
          let contact_tm = Hist.timer (Hist.get probe.Probe.hists "sim_markov/contact") in
          Engine.observe h ~time:(Engine.start_time h) ~n:(State.n state);
          let seeds = ref (State.count state full) in
          let remote = Array.make shards 0 in
          let visible_remote () =
            let t = ref 0 in
            Array.iteri (fun j nj -> if j <> shard then t := !t + nj) remote;
            !t
          in
          let rate_arrival = ref lambda_share in
          let rate_seed_contact = ref 0.0 in
          let rate_peer_contact = ref 0.0 in
          let rate_abort = ref 0.0 in
          let total_rate () =
            let n = State.n state in
            let s = !seeds in
            rate_seed_contact :=
              (if shard = 0 && n + visible_remote () > 0 && Faults.seed_up frun then us else 0.0);
            rate_peer_contact := mu *. float_of_int n;
            rate_abort := abort_rate *. float_of_int (n - s);
            let rate_departure = if immediate then 0.0 else gamma *. float_of_int s in
            !rate_arrival +. !rate_seed_contact +. !rate_peer_contact +. !rate_abort
            +. rate_departure
          in
          (* Resolve a contact whose downloader routing already chose
             this shard, or forward it across the boundary. *)
          let contact uploader ~time =
            match
              Shard.route ~draw:(Rng.int_below rng) ~me:shard ~local_n:(State.n state) ~remote
            with
            | Shard.Nobody -> false
            | Shard.Local ->
                let c_t0 = Hist.tick contact_tm in
                let changed =
                  resolve_contact ~rng ~frun ~p ~policy:config.policy ~state ~uploader ~seeds
                    ~counters ~probe ~time
                in
                Hist.tock contact_tm c_t0;
                changed
            | Shard.Remote dst ->
                let up =
                  match uploader with Policy.Fixed_seed -> None | Policy.Peer c -> Some c
                in
                send ~time ~dst { Shard.uploader = up };
                false
          in
          let apply ~time ~u =
            let changed =
              if u < !rate_arrival then begin
                let idx = Dist.Alias.sample rng arrival_alias in
                let pieces = fst p.arrivals.(idx) in
                State.add_peer state pieces;
                if Pieceset.equal pieces full then incr seeds;
                counters.arrivals <- counters.arrivals + 1;
                if tracing then Probe.arrival probe ~time ~pieces;
                true
              end
              else if u < !rate_arrival +. !rate_seed_contact then
                contact Policy.Fixed_seed ~time
              else if u < !rate_arrival +. !rate_seed_contact +. !rate_peer_contact then begin
                let uploader_type =
                  State.sample_uniform_peer state ~draw:(Rng.int_below rng)
                in
                contact (Policy.Peer uploader_type) ~time
              end
              else if
                u < !rate_arrival +. !rate_seed_contact +. !rate_peer_contact +. !rate_abort
              then begin
                let rec pick () =
                  let c = State.sample_uniform_peer state ~draw:(Rng.int_below rng) in
                  if Pieceset.equal c full then pick () else c
                in
                State.remove_peer state (pick ());
                counters.aborted <- counters.aborted + 1;
                counters.departures <- counters.departures + 1;
                if tracing then Probe.departure probe ~time Aborted;
                true
              end
              else begin
                State.remove_peer state full;
                decr seeds;
                counters.departures <- counters.departures + 1;
                if tracing then Probe.departure probe ~time Seed_departed;
                true
              end
            in
            if changed then Engine.observe h ~time ~n:(State.n state)
          in
          let sh_deliver ~time ~src:_ (msg : Shard.msg) =
            (* The target shard emptied since the sender looked: the
               contact finds nobody and dissolves. *)
            if State.n state > 0 then begin
              let uploader =
                match msg.Shard.uploader with
                | None -> Policy.Fixed_seed
                | Some c -> Policy.Peer c
              in
              let c_t0 = Hist.tick contact_tm in
              let changed =
                resolve_contact ~rng ~frun ~p ~policy:config.policy ~state ~uploader ~seeds
                  ~counters ~probe ~time
              in
              Hist.tock contact_tm c_t0;
              if changed then Engine.observe h ~time ~n:(State.n state)
            end
          in
          let sh_sync ~time:_ ~populations =
            Array.blit populations 0 remote 0 shards;
            if shard = 0 && Array.for_all (fun n -> n = 0) populations then
              incr barrier_empties
          in
          let model =
            {
              Engine.total_rate;
              apply;
              next_scheduled = (fun () -> infinity);
              scheduled = (fun ~time:_ -> ());
              population = (fun () -> State.n state);
              extra_sample = (fun ~time:_ -> ());
              probe_sample =
                (fun ~time ->
                  Probe.sample ~time ~k:p.k ~n:(State.n state)
                    ~count_of:(State.count state)
                    ~piece_counts:(State.piece_count_vector state ~k:p.k));
              finish = (fun ~time:_ -> ());
            }
          in
          ({ Engine.sh_model = model; sh_deliver; sh_sync }, state))
    in
    let common = sharded.Engine.sh_stats in
    let stats =
      {
        final_time = common.Engine.final_time;
        events = common.Engine.events;
        arrivals = common.Engine.arrivals;
        transfers = common.Engine.transfers;
        completions = common.Engine.completions;
        departures = common.Engine.departures;
        time_avg_n = common.Engine.time_avg_n;
        max_n = common.Engine.max_n;
        final_n = common.Engine.final_n;
        (* Sampled at sync barriers, not per event: the sharded loop has
           no global per-event view.  Documented in DESIGN §17. *)
        visits_to_empty = !barrier_empties;
        truncated = common.Engine.truncated;
        stopped = common.Engine.stopped;
        outage_time = common.Engine.outage_time;
        aborted_peers = common.Engine.aborted_peers;
        lost_transfers = common.Engine.lost_transfers;
        samples = common.Engine.samples;
      }
    in
    ( stats,
      merged_state states,
      {
        shards;
        windows = sharded.Engine.sh_windows;
        cross_messages = sharded.Engine.sh_messages;
        shard_events = sharded.Engine.sh_events;
        shard_final_n = sharded.Engine.sh_final_n;
        shard_states = states;
      } )
  end

let run_sharded_seeded ?probes ?sample_every ?max_events ?sync_every ?jobs ?should_stop ~shards
    ~seed config ~horizon =
  run_sharded ?probes ?sample_every ?max_events ?sync_every ?jobs ?should_stop ~shards
    ~rng:(Rng.of_seed seed) config ~horizon
