(** Exact stochastic simulation of the P2P Markov chain on type counts.

    Rather than enumerating the generator row at every step (O(types²·K)),
    we simulate the underlying {e contact process} the model is defined
    by — arrivals at rate [λ_total], fixed-seed contacts at rate [U_s],
    peer contacts at rate [μ·n], peer-seed departures at rate [γ·x_F] —
    and resolve each contact with the piece-selection policy.  Contacts
    with no useful piece are silent, exactly as in Section III.  The
    induced jump rates on type counts are exactly Eq. (1) (a test checks
    this against {!Rate.transitions}). *)

module Pieceset = P2p_pieceset.Pieceset

type config = {
  params : Params.t;
  policy : Policy.t;
  initial : (Pieceset.t * int) list;  (** starting population *)
  faults : Faults.t;  (** fault injection; {!Faults.none} = the paper's model *)
}

val default_config : Params.t -> config
(** Random-useful policy, empty initial state, no faults. *)

type stats = {
  final_time : float;
  events : int;  (** all exponential clock ticks, including silent contacts *)
  arrivals : int;
  transfers : int;  (** successful piece uploads *)
  completions : int;  (** peers reaching the full collection *)
  departures : int;  (** peers leaving the system *)
  time_avg_n : float;  (** time-weighted mean population *)
  max_n : int;
  final_n : int;
  visits_to_empty : int;  (** entries into the empty state *)
  truncated : bool;
      (** the [max_events] budget ran out before [horizon]: the state is
          frozen from the last event to the horizon, so [final_time]
          still reads [horizon] but [time_avg_n], [samples] and every
          other time-based statistic are biased toward the frozen
          state.  Check this flag before trusting long runs. *)
  stopped : bool;
      (** an [until] predicate ended the run early: [final_time] is the
          stop time, nothing after it was simulated *)
  outage_time : float;  (** total time the fixed seed spent down *)
  aborted_peers : int;  (** churn departures (also counted in [departures]) *)
  lost_transfers : int;  (** uploads dropped by transfer loss *)
  samples : (float * int) array;  (** (t, N_t) on the sampling grid *)
}

val run :
  ?probe:P2p_obs.Probe.t ->
  ?observer:(time:float -> state:State.t -> unit) ->
  ?sample_every:float ->
  ?max_events:int ->
  ?resume:Engine.resume ->
  ?until:(time:float -> n:int -> bool) ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats * State.t
(** Simulate on [0, horizon] (or [[resume.t0], horizon] for a resumed
    hybrid segment).  [observer] fires after every state change;
    [until], checked after every state-changing event, ends the run at
    the first event where it holds (sets [stopped]; the hybrid
    upward-handoff trigger); [sample_every] sets the grid for [samples]
    (default [horizon/200]); [max_events] is a safety valve (default
    200 million).  Returns the statistics and the final state.

    [probe] (default {!P2p_obs.Probe.none}) attaches telemetry: event
    tracing (arrivals, contacts, transfers, departures, seed toggles),
    periodic swarm samples on the probe's own sim-time grid, and phase
    profiling.  The probe only ever {e observes} — it never draws from
    [rng] or touches the state — so any run with [probe = Probe.none]
    is bit-identical to one with telemetry attached (a regression test
    pins this). *)

val run_seeded :
  ?probe:P2p_obs.Probe.t ->
  ?observer:(time:float -> state:State.t -> unit) ->
  ?sample_every:float ->
  ?max_events:int ->
  ?resume:Engine.resume ->
  ?until:(time:float -> n:int -> bool) ->
  seed:int ->
  config ->
  horizon:float ->
  stats * State.t
(** Convenience wrapper constructing the RNG from an integer seed. *)

(** {1 Sharded runs}

    The swarm partitioned across shards and driven by
    {!Engine.drive_sharded}: λ/S arrivals per shard, local contact
    initiation, global downloader routing with cross-shard contacts
    resolved at sync barriers.  See DESIGN §17 for the protocol and the
    determinism contract (reproducible for a fixed shard count and any
    [jobs]; trajectories change when the shard count changes). *)

type shard_report = {
  shards : int;
  windows : int;  (** sync barriers executed (0 for the 1-shard path) *)
  cross_messages : int;  (** contacts that crossed a shard boundary *)
  shard_events : int array;  (** per-shard event counts *)
  shard_final_n : int array;
  shard_states : State.t array;  (** final per-shard partitions *)
}

val run_sharded :
  ?probes:(int -> P2p_obs.Probe.t) ->
  ?sample_every:float ->
  ?max_events:int ->
  ?sync_every:float ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  shards:int ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats * State.t * shard_report
(** Simulate with the swarm split across [shards] shards, using up to
    [jobs] domains per sync window (default 1).  [shards = 1] {e is}
    the unsharded path: it dispatches to {!run} and is bit-identical to
    it.  For [shards >= 2], [visits_to_empty] is sampled at sync
    barriers (the sharded loop has no global per-event view) and the
    returned state is the union of the shard partitions.  [probes]
    supplies one probe per shard; [should_stop], polled at barriers,
    ends the run with [stopped] set (the campaign watchdog hook). *)

val run_sharded_seeded :
  ?probes:(int -> P2p_obs.Probe.t) ->
  ?sample_every:float ->
  ?max_events:int ->
  ?sync_every:float ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  shards:int ->
  seed:int ->
  config ->
  horizon:float ->
  stats * State.t * shard_report
(** {!run_sharded} with the RNG constructed from an integer seed. *)
