module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Probe = P2p_obs.Probe
module Profile = P2p_obs.Profile
module Vec = P2p_stats.Vec
module Timeavg = P2p_stats.Timeavg

type counters = {
  mutable events : int;
  mutable arrivals : int;
  mutable transfers : int;
  mutable completions : int;
  mutable departures : int;
  mutable aborted : int;
  mutable lost : int;
  mutable max_n : int;
}

type t = {
  probe : Probe.t;
  frun : Faults.run;
  horizon : float;
  max_events : int;
  counters : counters;
  avg : Timeavg.t;
  samples : (float * int) Vec.t;
  mutable clock : float;
  mutable truncated : bool;
  sample_every : float;
  mutable next_sample : float;
  probing : bool;
  mutable next_probe : float;
}

let counters t = t.counters
let faults t = t.frun

let observe t ~time ~n =
  Timeavg.observe t.avg ~time ~value:(float_of_int n);
  if n > t.counters.max_n then t.counters.max_n <- n

type model = {
  total_rate : unit -> float;
  apply : time:float -> u:float -> unit;
  next_scheduled : unit -> float;
  scheduled : time:float -> unit;
  population : unit -> int;
  extra_sample : time:float -> unit;
  probe_sample : time:float -> Probe.sample;
  finish : time:float -> unit;
}

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
}

(* The sampling grid must capture the value *before* the event the clock
   is advancing to.  Swarm probes walk their own sim-time grid in
   lockstep — sim time, never wall clock, so probe series are
   bit-identical across --jobs. *)
let record_samples_through t model time =
  while t.next_sample <= time && t.next_sample <= t.horizon do
    Vec.push t.samples (t.next_sample, model.population ());
    model.extra_sample ~time:t.next_sample;
    t.next_sample <- t.next_sample +. t.sample_every
  done;
  if t.probing then
    while t.next_probe <= time && t.next_probe <= t.horizon do
      t.probe.Probe.on_sample (model.probe_sample ~time:t.next_probe);
      t.next_probe <- t.next_probe +. t.probe.Probe.interval
    done

let drive ?(probe = Probe.none) ?sample_every ?(max_events = 200_000_000) ~name ~rng ~faults
    ~horizon build =
  let prof = probe.Probe.profile in
  let setup_span = Profile.start prof (name ^ "/setup") in
  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let t =
    {
      probe;
      frun = Faults.start faults ~rng;
      horizon;
      max_events;
      counters =
        {
          events = 0;
          arrivals = 0;
          transfers = 0;
          completions = 0;
          departures = 0;
          aborted = 0;
          lost = 0;
          max_n = 0;
        };
      avg = Timeavg.create ();
      samples = Vec.create ();
      clock = 0.0;
      truncated = false;
      sample_every;
      next_sample = 0.0;
      probing = Probe.sampling probe;
      next_probe = 0.0;
    }
  in
  if probe.Probe.tracing then
    Faults.set_observer t.frun (fun ~now ~up ->
        Probe.event probe ~time:now (Seed_toggle { up }));
  let model, extra = build t in
  record_samples_through t model 0.0;
  Profile.stop setup_span;
  let loop_span = Profile.start prof (name ^ "/event-loop") in
  let c = t.counters in
  let running = ref true in
  while !running do
    let total = model.total_rate () in
    let dt = Dist.exponential rng ~rate:total in
    let t_next = t.clock +. dt in
    let sched = model.next_scheduled () in
    let toggle = Faults.next_toggle t.frun in
    if toggle <= t_next && toggle <= horizon && toggle <= sched && c.events < max_events
    then begin
      (* The outage flips before the next event: advance to the toggle
         and redraw — valid by memorylessness of the exponential race.
         Budget-gated so an exhausted run truncates instead of walking
         the rest of the outage schedule. *)
      record_samples_through t model toggle;
      t.clock <- toggle;
      Faults.toggle t.frun ~now:toggle
    end
    else if sched <= t_next && sched <= horizon then begin
      (* A scheduled event (dwell expiry) beats the race: a time
         barrier, like the toggle, but it consumes event budget. *)
      record_samples_through t model sched;
      t.clock <- sched;
      c.events <- c.events + 1;
      model.scheduled ~time:sched
    end
    else if t_next > horizon || c.events >= max_events then begin
      (* The event budget ran out before the horizon: the state is
         frozen from the clock to the horizon, which biases every
         time-based statistic.  Record that instead of truncating
         silently. *)
      if t_next <= horizon then t.truncated <- true;
      record_samples_through t model horizon;
      Timeavg.close t.avg ~time:horizon;
      model.finish ~time:horizon;
      t.clock <- horizon;
      running := false
    end
    else begin
      record_samples_through t model t_next;
      t.clock <- t_next;
      c.events <- c.events + 1;
      let u = Rng.float rng *. total in
      model.apply ~time:t_next ~u
    end
  done;
  Profile.stop loop_span;
  let finish_span = Profile.start prof (name ^ "/finalise") in
  Faults.finish t.frun ~now:t.clock;
  let stats =
    {
      final_time = t.clock;
      events = c.events;
      arrivals = c.arrivals;
      transfers = c.transfers;
      completions = c.completions;
      departures = c.departures;
      time_avg_n = Timeavg.average t.avg;
      max_n = c.max_n;
      final_n = model.population ();
      truncated = t.truncated;
      outage_time = Faults.outage_time t.frun;
      aborted_peers = c.aborted;
      lost_transfers = c.lost;
      samples = Vec.to_array t.samples;
    }
  in
  Profile.stop finish_span;
  (stats, extra)
