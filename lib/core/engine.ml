module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Probe = P2p_obs.Probe
module Profile = P2p_obs.Profile
module Hist = P2p_obs.Hist
module Vec = P2p_stats.Vec
module Timeavg = P2p_stats.Timeavg

type counters = {
  mutable events : int;
  mutable arrivals : int;
  mutable transfers : int;
  mutable completions : int;
  mutable departures : int;
  mutable aborted : int;
  mutable lost : int;
  mutable max_n : int;
}

type t = {
  probe : Probe.t;
  frun : Faults.run;
  start_time : float;
  horizon : float;
  max_events : int;
  counters : counters;
  avg : Timeavg.t;
  samples : (float * int) Vec.t;
  mutable clock : float;
  mutable truncated : bool;
  mutable stop_requested : bool;
  sample_every : float;
  mutable next_sample : float;
  probing : bool;
  mutable next_probe : float;
}

let counters t = t.counters
let faults t = t.frun
let start_time t = t.start_time
let request_stop t = t.stop_requested <- true

type resume = { t0 : float; grid_after : float; frun : Faults.run option }

let fresh = { t0 = 0.0; grid_after = -1.0; frun = None }

(* First grid point of a resumed segment: the smallest multiple of
   [interval] strictly after [grid_after].  A fresh run ([grid_after < 0])
   starts at exactly 0.0 — the same constant the pre-resume engine used,
   preserving bit-identity of all existing sample grids. *)
let grid_start ~interval ~grid_after =
  if grid_after < 0.0 then 0.0
  else begin
    let g = ref (interval *. (Float.floor (grid_after /. interval) +. 1.0)) in
    while !g <= grid_after do
      g := !g +. interval
    done;
    !g
  end

let observe t ~time ~n =
  Timeavg.observe t.avg ~time ~value:(float_of_int n);
  if n > t.counters.max_n then t.counters.max_n <- n

type model = {
  total_rate : unit -> float;
  apply : time:float -> u:float -> unit;
  next_scheduled : unit -> float;
  scheduled : time:float -> unit;
  population : unit -> int;
  extra_sample : time:float -> unit;
  probe_sample : time:float -> Probe.sample;
  finish : time:float -> unit;
}

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
  stopped : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
}

(* The sampling grid must capture the value *before* the event the clock
   is advancing to.  Swarm probes walk their own sim-time grid in
   lockstep — sim time, never wall clock, so probe series are
   bit-identical across --jobs. *)
let record_through t ~population ~extra_sample ~probe_sample time =
  while t.next_sample <= time && t.next_sample <= t.horizon do
    Vec.push t.samples (t.next_sample, population ());
    extra_sample ~time:t.next_sample;
    t.next_sample <- t.next_sample +. t.sample_every
  done;
  if t.probing then
    while t.next_probe <= time && t.next_probe <= t.horizon do
      t.probe.Probe.on_sample (probe_sample ~time:t.next_probe);
      t.next_probe <- t.next_probe +. t.probe.Probe.interval
    done

let record_samples_through t model time =
  record_through t ~population:model.population ~extra_sample:model.extra_sample
    ~probe_sample:model.probe_sample time

let make_handle ~probe ~resume ~rng ~faults ~horizon ~max_events ~sample_every =
  let probing = Probe.sampling probe in
  let t =
    {
      probe;
      frun = (match resume.frun with Some f -> f | None -> Faults.start faults ~rng);
      start_time = resume.t0;
      horizon;
      max_events;
      counters =
        {
          events = 0;
          arrivals = 0;
          transfers = 0;
          completions = 0;
          departures = 0;
          aborted = 0;
          lost = 0;
          max_n = 0;
        };
      avg = Timeavg.create ~t0:resume.t0 ();
      samples = Vec.create ();
      clock = resume.t0;
      truncated = false;
      stop_requested = false;
      sample_every;
      next_sample = grid_start ~interval:sample_every ~grid_after:resume.grid_after;
      probing;
      next_probe =
        (if probing then
           grid_start ~interval:probe.Probe.interval ~grid_after:resume.grid_after
         else 0.0);
    }
  in
  if probe.Probe.tracing then
    Faults.set_observer t.frun (fun ~now ~up ->
        Probe.seed_toggle probe ~time:now ~up);
  t

let drive ?(probe = Probe.none) ?sample_every ?(max_events = 200_000_000) ?(resume = fresh)
    ~name ~rng ~faults ~horizon build =
  let prof = probe.Probe.profile in
  let setup_span = Profile.start prof (name ^ "/setup") in
  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let t = make_handle ~probe ~resume ~rng ~faults ~horizon ~max_events ~sample_every in
  let model, extra = build t in
  record_samples_through t model t.start_time;
  Profile.stop setup_span;
  let loop_span = Profile.start prof (name ^ "/event-loop") in
  (* Per-phase monotonic-clock attribution (ROADMAP items 1-2 need the
     split between rate recomputation and event application).  The
     timers sample 1-in-32 so two clock reads never ride every event;
     with hists off each tick/tock is a dead branch. *)
  let hists = probe.Probe.hists in
  let rate_tm = Hist.timer (Hist.get hists (name ^ "/total_rate")) in
  let apply_tm = Hist.timer (Hist.get hists (name ^ "/apply")) in
  let sched_tm = Hist.timer (Hist.get hists (name ^ "/scheduled")) in
  let c = t.counters in
  (* Stage the model's closures into locals once: the loop below calls
     them hundreds of millions of times, and a staged closure call is one
     indirect jump where [model.total_rate ()] is a field load plus an
     indirect jump per event. *)
  let total_rate = model.total_rate in
  let apply = model.apply in
  let next_scheduled = model.next_scheduled in
  let do_scheduled = model.scheduled in
  let frun = t.frun in
  let running = ref true in
  while !running do
    let rate_t0 = Hist.tick rate_tm in
    let total = total_rate () in
    Hist.tock rate_tm rate_t0;
    let dt = Dist.exponential rng ~rate:total in
    let t_next = t.clock +. dt in
    let sched = next_scheduled () in
    let toggle = Faults.next_toggle frun in
    if toggle <= t_next && toggle <= horizon && toggle <= sched && c.events < max_events
    then begin
      (* The outage flips before the next event: advance to the toggle
         and redraw — valid by memorylessness of the exponential race.
         Budget-gated so an exhausted run truncates instead of walking
         the rest of the outage schedule. *)
      record_samples_through t model toggle;
      t.clock <- toggle;
      Faults.toggle t.frun ~now:toggle
    end
    else if sched <= t_next && sched <= horizon then begin
      (* A scheduled event (dwell expiry) beats the race: a time
         barrier, like the toggle, but it consumes event budget. *)
      record_samples_through t model sched;
      t.clock <- sched;
      c.events <- c.events + 1;
      let s_t0 = Hist.tick sched_tm in
      do_scheduled ~time:sched;
      Hist.tock sched_tm s_t0;
      if t.stop_requested then begin
        Timeavg.close t.avg ~time:t.clock;
        model.finish ~time:t.clock;
        running := false
      end
    end
    else if t_next > horizon || c.events >= max_events then begin
      (* The event budget ran out before the horizon: the state is
         frozen from the clock to the horizon, which biases every
         time-based statistic.  Record that instead of truncating
         silently. *)
      if t_next <= horizon then t.truncated <- true;
      record_samples_through t model horizon;
      Timeavg.close t.avg ~time:horizon;
      model.finish ~time:horizon;
      t.clock <- horizon;
      running := false
    end
    else begin
      (* Inline grid guard: [record_samples_through] is a no-op unless a
         sample or probe point falls before this event, so the common
         event skips the call (and its two grid-walk loops) entirely.
         Equivalent because both inner loops test the same bounds. *)
      if t.next_sample <= t_next || (t.probing && t.next_probe <= t_next) then
        record_samples_through t model t_next;
      t.clock <- t_next;
      c.events <- c.events + 1;
      let u = Rng.float rng *. total in
      let a_t0 = Hist.tick apply_tm in
      apply ~time:t_next ~u;
      Hist.tock apply_tm a_t0;
      if t.stop_requested then begin
        Timeavg.close t.avg ~time:t.clock;
        model.finish ~time:t.clock;
        running := false
      end
    end
  done;
  Profile.stop loop_span;
  let finish_span = Profile.start prof (name ^ "/finalise") in
  Faults.finish t.frun ~now:t.clock;
  let stats =
    {
      final_time = t.clock;
      events = c.events;
      arrivals = c.arrivals;
      transfers = c.transfers;
      completions = c.completions;
      departures = c.departures;
      time_avg_n = Timeavg.average t.avg;
      max_n = c.max_n;
      final_n = model.population ();
      truncated = t.truncated;
      stopped = t.stop_requested;
      outage_time = Faults.outage_time t.frun;
      aborted_peers = c.aborted;
      lost_transfers = c.lost;
      samples = Vec.to_array t.samples;
    }
  in
  Profile.stop finish_span;
  (stats, extra)

(* ------------------------------------------------------------------ *)
(* The sharded driver: one logical swarm split across [nshards] local
   event loops, synchronised by windows.  Each shard owns a handle
   ([t]), a generator split off the caller's rng in shard order, and a
   model; within a window it runs the same exponential race as [drive],
   bounded by the window end instead of the horizon.  Contacts whose
   downloader lives elsewhere become messages; at the window barrier the
   main domain delivers all of them in [(shard_id, seq)] order — outbox
   concatenation in shard order, each outbox in send order — then every
   shard refreshes its snapshot of the others' populations.  Windows
   ending at the window boundary rather than at the message's origin
   time is the approximation knob: shrinking [sync_every] tightens it.

   Determinism: shard streams are split from [rng] in shard order at
   startup; within a window a shard touches only its own slot; the
   barrier runs sequentially on the calling domain.  So the run is a
   pure function of (rng seed, nshards, sync window layout) — the same
   for any [jobs], which only picks how many domains execute the
   windows.  Redrawing the exponential race at each window boundary is
   valid by memorylessness, exactly like the outage-toggle redraw. *)

type 'msg shard_model = {
  sh_model : model;
  sh_deliver : time:float -> src:int -> 'msg -> unit;
      (** Apply one cross-shard message at the barrier; [time] is the
          barrier (window-end) time on this shard's clock. *)
  sh_sync : time:float -> populations:int array -> unit;
      (** Rate exchange: fresh per-shard populations after the barrier
          (the receiving shard's own entry is its live value). *)
}

type sharded_stats = {
  sh_stats : stats;  (** merged across shards; see field notes in the mli *)
  sh_events : int array;  (** per-shard event counts (partition proof) *)
  sh_final_n : int array;
  sh_messages : int;  (** cross-shard messages delivered *)
  sh_windows : int;  (** sync barriers executed *)
}

type 'msg shard_slot = {
  sl_handle : t;
  sl_rng : Rng.t;
  sl_model : 'msg shard_model;
  sl_outbox : (float * int * 'msg) Vec.t;  (** (send time, dst, msg) in seq order *)
  mutable sl_frozen : bool;  (** event budget spent: state frozen, grid still walks *)
}

(* One shard's slice of one window: the [drive] loop bounded by [until]
   instead of the horizon, without closing the time-average (the run
   continues next window).  Touches only [slot]-owned data, so windows
   of distinct shards run on distinct domains with no synchronisation. *)
let run_shard_window slot ~until =
  let t = slot.sl_handle in
  let m = slot.sl_model.sh_model in
  if slot.sl_frozen then begin
    (* Budget exhausted in an earlier window: the state is frozen but
       the sampling grid still advances, as in [drive]'s truncation. *)
    record_samples_through t m until;
    t.clock <- until
  end
  else begin
    let rng = slot.sl_rng in
    let c = t.counters in
    let total_rate = m.total_rate in
    let apply = m.apply in
    let next_scheduled = m.next_scheduled in
    let do_scheduled = m.scheduled in
    let frun = t.frun in
    let budget = t.max_events in
    let running = ref true in
    while !running do
      let total = total_rate () in
      (* A shard can legitimately idle (empty shard of a dried-up swarm):
         treat a zero rate as an infinitely distant next event. *)
      let dt = if total > 0.0 then Dist.exponential rng ~rate:total else infinity in
      let t_next = t.clock +. dt in
      let sched = next_scheduled () in
      let toggle = Faults.next_toggle frun in
      if toggle <= t_next && toggle <= until && toggle <= sched && c.events < budget then begin
        record_samples_through t m toggle;
        t.clock <- toggle;
        Faults.toggle frun ~now:toggle
      end
      else if sched <= t_next && sched <= until then begin
        record_samples_through t m sched;
        t.clock <- sched;
        c.events <- c.events + 1;
        do_scheduled ~time:sched
      end
      else if t_next > until || c.events >= budget then begin
        if t_next <= until then begin
          (* Budget ran out before the window end: freeze this shard for
             the rest of the run, like [drive]'s truncation. *)
          t.truncated <- true;
          slot.sl_frozen <- true
        end;
        record_samples_through t m until;
        t.clock <- until;
        running := false
      end
      else begin
        if t.next_sample <= t_next || (t.probing && t.next_probe <= t_next) then
          record_samples_through t m t_next;
        t.clock <- t_next;
        c.events <- c.events + 1;
        let u = Rng.float rng *. total in
        apply ~time:t_next ~u
      end
    done
  end

let drive_sharded ?(probes = fun _ -> Probe.none) ?sample_every ?(max_events = 200_000_000)
    ?sync_every ?(jobs = 1) ?should_stop ~name:_ ~rng ~faults ~horizon ~nshards build =
  if nshards < 2 then
    invalid_arg "Engine.drive_sharded: nshards must be >= 2 (1 shard = the unsharded engine)";
  let sample_every =
    match sample_every with Some dt -> dt | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let sync_every =
    match sync_every with
    | Some dt when dt > 0.0 -> dt
    | Some dt -> invalid_arg (Printf.sprintf "Engine.drive_sharded: sync_every %g <= 0" dt)
    | None -> Float.max (horizon /. 200.0) 1e-9
  in
  let budget = (max_events + nshards - 1) / nshards in
  (* The outage clockwork belongs to shard 0, where the fixed seed
     lives; the other shards keep only the memoryless fault components
     (churn, loss) and draw them from their own fault streams. *)
  let shard_faults i =
    if i = 0 then faults
    else Faults.make ~abort_rate:faults.Faults.abort_rate ~loss_prob:faults.Faults.loss_prob ()
  in
  (* Shard streams split off the caller's rng in shard order — the
     sharded counterpart of the runner's per-replication derivation. *)
  let rngs = Array.init nshards (fun _ -> Rng.split rng) in
  let handles =
    Array.init nshards (fun i ->
        make_handle ~probe:(probes i) ~resume:fresh ~rng:rngs.(i) ~faults:(shard_faults i)
          ~horizon ~max_events:budget ~sample_every)
  in
  let outboxes = Array.init nshards (fun _ -> Vec.create ()) in
  let messages = ref 0 in
  let slots_and_extras =
    Array.init nshards (fun i ->
        let send ~time ~dst msg =
          if dst < 0 || dst >= nshards || dst = i then
            invalid_arg "Engine.drive_sharded: bad message destination";
          Vec.push outboxes.(i) (time, dst, msg)
        in
        let sm, extra = build ~shard:i ~rng:rngs.(i) ~send handles.(i) in
        ( { sl_handle = handles.(i); sl_rng = rngs.(i); sl_model = sm;
            sl_outbox = outboxes.(i); sl_frozen = false },
          extra ))
  in
  let slots = Array.map fst slots_and_extras in
  let extras = Array.map snd slots_and_extras in
  Array.iter (fun s -> record_samples_through s.sl_handle s.sl_model.sh_model s.sl_handle.start_time) slots;
  let populations = Array.make nshards 0 in
  let windows = ref 0 in
  let stopped = ref false in
  let final_time = ref horizon in
  (* Window loop: parallel shard windows, then a sequential barrier. *)
  let w = ref 1 in
  let continue_ = ref true in
  while !continue_ do
    let wend = Float.min horizon (sync_every *. float_of_int !w) in
    Pool.run ~jobs nshards (fun i -> run_shard_window slots.(i) ~until:wend);
    (* Deliver cross-shard messages in (shard_id, seq) order: outbox
       concatenation in shard order, each outbox already in send order.
       Delivery consumes one receiver event per message. *)
    Array.iteri
      (fun src slot ->
        let ob = slot.sl_outbox in
        for j = 0 to Vec.length ob - 1 do
          let _t_sent, dst, msg = Vec.get ob j in
          incr messages;
          let d = slots.(dst) in
          d.sl_handle.counters.events <- d.sl_handle.counters.events + 1;
          d.sl_model.sh_deliver ~time:wend ~src msg
        done;
        Vec.clear ob)
      slots;
    incr windows;
    Array.iteri (fun i s -> populations.(i) <- s.sl_model.sh_model.population ()) slots;
    Array.iter (fun s -> s.sl_model.sh_sync ~time:wend ~populations) slots;
    (match should_stop with
    | Some f when f () ->
        stopped := true;
        final_time := wend;
        continue_ := false
    | _ -> if wend >= horizon then continue_ := false else incr w)
  done;
  let tend = !final_time in
  Array.iter
    (fun s ->
      Timeavg.close s.sl_handle.avg ~time:tend;
      s.sl_model.sh_model.finish ~time:tend;
      Faults.finish s.sl_handle.frun ~now:tend)
    slots;
  (* Merge.  Every shard walked the same sampling grid from 0 to the
     final time, so the per-shard sample arrays are pointwise summable;
     the population time-average is linear in the shard decomposition;
     max_n is taken over the summed grid (plus the final state), so it
     is exact on grid points and a lower bound between them. *)
  let per_samples = Array.map (fun s -> Vec.to_array s.sl_handle.samples) slots in
  let grid_len = Array.length per_samples.(0) in
  Array.iter
    (fun a -> if Array.length a <> grid_len then failwith "Engine.drive_sharded: ragged sample grids")
    per_samples;
  let samples =
    Array.init grid_len (fun g ->
        let tg, _ = per_samples.(0).(g) in
        let n = ref 0 in
        Array.iter (fun a -> n := !n + snd a.(g)) per_samples;
        (tg, !n))
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s.sl_handle.counters) 0 slots in
  let final_ns = Array.map (fun s -> s.sl_model.sh_model.population ()) slots in
  let final_n = Array.fold_left ( + ) 0 final_ns in
  let max_n = Array.fold_left (fun m (_, n) -> Int.max m n) final_n samples in
  let stats =
    {
      final_time = tend;
      events = sum (fun c -> c.events);
      arrivals = sum (fun c -> c.arrivals);
      transfers = sum (fun c -> c.transfers);
      completions = sum (fun c -> c.completions);
      departures = sum (fun c -> c.departures);
      time_avg_n = Array.fold_left (fun acc s -> acc +. Timeavg.average s.sl_handle.avg) 0.0 slots;
      max_n;
      final_n;
      truncated = Array.exists (fun s -> s.sl_handle.truncated) slots;
      stopped = !stopped;
      outage_time = Faults.outage_time slots.(0).sl_handle.frun;
      aborted_peers = sum (fun c -> c.aborted);
      lost_transfers = sum (fun c -> c.lost);
      samples;
    }
  in
  ( {
      sh_stats = stats;
      sh_events = Array.map (fun s -> s.sl_handle.counters.events) slots;
      sh_final_n = final_ns;
      sh_messages = !messages;
      sh_windows = !windows;
    },
    extras )

type continuous = {
  c_advance : to_:float -> [ `Reached | `Stopped of float | `Step_limit ];
  c_population : unit -> float;
  c_extra_sample : time:float -> unit;
  c_probe_sample : time:float -> Probe.sample;
  c_toggled : unit -> unit;
  c_time_average : until:float -> float;
  c_finish : time:float -> unit;
}

(* The continuous-model counterpart of the event loop: instead of an
   exponential race the model integrates an ODE, and every shared-grid
   point (sample, probe), fault toggle, and the horizon becomes a time
   barrier the integrator lands on exactly — so the recorded trajectory
   shares the sampling-grid contract with the stochastic drivers and
   [p2psim report] consumes either without knowing which produced it. *)
let drive_continuous ?(probe = Probe.none) ?sample_every ?(resume = fresh) ~name ~rng ~faults
    ~horizon build =
  let prof = probe.Probe.profile in
  let setup_span = Profile.start prof (name ^ "/setup") in
  let sample_every =
    match sample_every with
    | Some dt -> dt
    | None -> Float.max ((horizon -. resume.t0) /. 200.0) 1e-9
  in
  let t = make_handle ~probe ~resume ~rng ~faults ~horizon ~max_events:max_int ~sample_every in
  let m, extra = build t in
  let pop_int () = int_of_float (Float.round (m.c_population ())) in
  let record time =
    record_through t ~population:pop_int ~extra_sample:m.c_extra_sample
      ~probe_sample:m.c_probe_sample time
  in
  observe t ~time:t.start_time ~n:(pop_int ());
  record t.start_time;
  Profile.stop setup_span;
  let loop_span = Profile.start prof (name ^ "/event-loop") in
  (* Barrier-to-barrier integrations are few (hundreds per run), so the
     advance timer is unsampled: every span is measured. *)
  let advance_tm = Hist.timer ~period:1 (Hist.get probe.Probe.hists (name ^ "/advance")) in
  let running = ref true in
  while !running do
    let toggle = Faults.next_toggle t.frun in
    let grid = Float.min t.next_sample (if t.probing then t.next_probe else infinity) in
    let barrier = Float.max t.clock (Float.min horizon (Float.min grid toggle)) in
    let adv_t0 = Hist.tick advance_tm in
    let outcome = m.c_advance ~to_:barrier in
    Hist.tock advance_tm adv_t0;
    match outcome with
    | `Stopped ts ->
        (* The model's own [until] predicate fired (hybrid handoff):
           stop exactly at the located crossing. *)
        t.clock <- ts;
        observe t ~time:ts ~n:(pop_int ());
        record ts;
        Timeavg.close t.avg ~time:ts;
        t.stop_requested <- true;
        running := false
    | `Step_limit ->
        (* The step budget ran out mid-flight: like stochastic event
           exhaustion, freeze the state through the horizon and flag. *)
        t.truncated <- true;
        observe t ~time:t.clock ~n:(pop_int ());
        t.clock <- horizon;
        record horizon;
        Timeavg.close t.avg ~time:horizon;
        running := false
    | `Reached ->
        t.clock <- barrier;
        observe t ~time:barrier ~n:(pop_int ());
        record barrier;
        if toggle <= barrier then begin
          Faults.toggle t.frun ~now:toggle;
          m.c_toggled ()
        end;
        if barrier >= horizon then begin
          Timeavg.close t.avg ~time:horizon;
          running := false
        end
  done;
  Profile.stop loop_span;
  let finish_span = Profile.start prof (name ^ "/finalise") in
  Faults.finish t.frun ~now:t.clock;
  m.c_finish ~time:t.clock;
  let c = t.counters in
  let stats =
    {
      final_time = t.clock;
      events = c.events;
      arrivals = c.arrivals;
      transfers = c.transfers;
      completions = c.completions;
      departures = c.departures;
      time_avg_n = m.c_time_average ~until:t.clock;
      max_n = c.max_n;
      final_n = pop_int ();
      truncated = t.truncated;
      stopped = t.stop_requested;
      outage_time = Faults.outage_time t.frun;
      aborted_peers = c.aborted;
      lost_transfers = c.lost;
      samples = Vec.to_array t.samples;
    }
  in
  Profile.stop finish_span;
  (stats, extra)
