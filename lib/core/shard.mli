(** Swarm partitioning for the sharded engine.

    A shard owns a subset of the peers: initial peers are dealt
    round-robin from their piece-set stratum ({!stratum}), arrivals are
    Poisson-thinned (each shard runs an independent λ/S arrival band),
    and a peer never migrates — departures and piece transfers happen on
    the shard of residence.  Contacts whose downloader lives on another
    shard cross the boundary as {!msg} values, resolved by the receiving
    shard at the next sync barrier (see {!Engine.drive_sharded}).

    Every function here is deterministic: the partition of a given
    initial population is a pure function of [(initial, shards)], and
    {!route} consumes exactly one draw from the caller's generator. *)

module Pieceset = P2p_pieceset.Pieceset

val stratum : Pieceset.t -> shards:int -> int
(** Home shard of a piece-set type, [hash c mod shards].
    @raise Invalid_argument if [shards <= 0]. *)

val partition_counts :
  shards:int -> (Pieceset.t * int) list -> (Pieceset.t * int) list array
(** Split an initial population across [shards]: the [j]-th peer of type
    [c] lands on shard [(stratum c + j) mod shards], so every peer is
    owned by exactly one shard and each type spreads evenly.  The
    returned array has length [shards]; entries preserve the input type
    order.
    @raise Invalid_argument on [shards <= 0] or a negative count. *)

type msg = { uploader : Pieceset.t option  (** [None] = the fixed seed *) }
(** A cross-shard contact offer: the uploader's pieces travel to the
    downloader's shard, which picks the downloader and resolves the
    contact with its own generator. *)

type route = Local | Remote of int | Nobody

val route : draw:(int -> int) -> me:int -> local_n:int -> remote:int array -> route
(** Choose the shard of a uniformly-random global downloader, seen from
    shard [me]: its own population [local_n] live, the others from the
    last sync snapshot [remote] (entry [me] is ignored).  [Nobody] when
    the visible global population is zero.  Exactly one [draw] is made
    unless the population is empty (zero draws). *)
