(** Piece-selection policies — the family [H] of Section VIII-A.

    A policy decides which piece an uploader sends to a downloader, given
    the entire network state.  The paper's usefulness constraint: whenever
    the uploader holds a piece the downloader lacks, a useful piece must be
    chosen.  Theorem 14 states that every such policy has the same
    stability region; experiment E7 verifies that empirically. *)

module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng

type uploader = Fixed_seed | Peer of Pieceset.t

val uploader_pieces : k:int -> uploader -> Pieceset.t
(** The fixed seed holds everything. *)

val useful_pieces : k:int -> uploader:uploader -> downloader:Pieceset.t -> Pieceset.t
(** Pieces the uploader holds and the downloader lacks. *)

type t = {
  name : string;
  distribution :
    k:int -> state:State.t -> uploader:uploader -> downloader:Pieceset.t -> (int * float) list;
      (** The paper's [h_·(A, B, x)]: pairs [(piece, probability)] with
          positive probabilities summing to 1, supported on useful pieces.
          Must be called only when a useful piece exists.  This is the
          {e specification}: readable, list-based, checked by
          {!validate_distribution} — and what the chi-square tests hold
          {!sample_fast} against. *)
  sample_fast :
    rng:Rng.t ->
    k:int ->
    state:State.t ->
    uploader:uploader ->
    downloader:Pieceset.t ->
    int option;
      (** Allocation-free sampler agreeing in distribution with
          [distribution] (the draw sequence may differ).  Returns [None]
          iff no useful piece exists.  This is what the simulators call on
          every contact; the built-in policies sample the useful bitset
          directly instead of materialising the list. *)
}

val of_distribution :
  name:string ->
  (k:int -> state:State.t -> uploader:uploader -> downloader:Pieceset.t -> (int * float) list) ->
  t
(** Build a policy from its spec distribution alone; [sample_fast] falls
    back to materialising the list and drawing categorically.  For exotic
    or experimental policies where the hot path does not matter. *)

val random_useful : t
(** Uniform over useful pieces — the baseline policy of Theorem 1. *)

val rarest_first : t
(** Uniform over the useful pieces with the fewest copies in the network
    (counting every peer's holdings, as a tracker-assisted client could). *)

val most_common_first : t
(** Uniform over the useful pieces with the {e most} copies — a
    deliberately bad policy that still satisfies the usefulness
    constraint. *)

val sequential : t
(** Always the lowest-numbered useful piece (the in-order policy whose
    minimal closed set of states the paper discusses). *)

val sample :
  t ->
  rng:P2p_prng.Rng.t ->
  k:int ->
  state:State.t ->
  uploader:uploader ->
  downloader:Pieceset.t ->
  int option
(** Draw a piece, or [None] when the uploader cannot help.  Delegates to
    [sample_fast]. *)

val sample_spec :
  t ->
  rng:P2p_prng.Rng.t ->
  k:int ->
  state:State.t ->
  uploader:uploader ->
  downloader:Pieceset.t ->
  int option
(** Reference sampler walking the [distribution] list — the behaviour
    {!sample} had before the fast paths existed.  Kept for tests and for
    cross-checking custom policies. *)

val validate_distribution : (int * float) list -> useful:Pieceset.t -> bool
(** Checks support and normalisation (for tests and custom policies). *)
