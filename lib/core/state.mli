(** The Markov chain state: the count of peers of each type.

    The state vector of Section III is [x = (x_C : C ∈ C)].  We store only
    the occupied types — dense parallel arrays with O(1) swap-removal plus
    a type → slot hash table — and cache the total population [n], so
    one-club-heavy states (the interesting ones) cost O(occupied types),
    not O(2^K).  A per-piece copy-count vector is maintained incrementally
    on every add/remove/move, so {!piece_copies} is O(1) and
    {!piece_count_vector} is an O(k) copy: the reads that rarest-first
    style policies and swarm probes perform on every contact never rescan
    the occupied types. *)

module Pieceset = P2p_pieceset.Pieceset

type t

val create : unit -> t
val copy : t -> t

val of_counts : (Pieceset.t * int) list -> t
(** @raise Invalid_argument on a negative count; zero counts are dropped,
    duplicates summed. *)

val count : t -> Pieceset.t -> int
val n : t -> int
(** Total number of peers. *)

val occupied : t -> int
(** Number of distinct occupied types. *)

val add_peer : t -> Pieceset.t -> unit
val remove_peer : t -> Pieceset.t -> unit
(** @raise Invalid_argument if no such peer. *)

val move_peer : t -> from_:Pieceset.t -> to_:Pieceset.t -> unit
(** [remove_peer] + [add_peer] in one step. *)

val iter : t -> (Pieceset.t -> int -> unit) -> unit
(** Over occupied types only, in unspecified order. *)

val fold : t -> init:'a -> f:('a -> Pieceset.t -> int -> 'a) -> 'a

val to_alist : t -> (Pieceset.t * int) list
(** Sorted by type for deterministic printing. *)

val piece_copies : t -> k:int -> piece:int -> int
(** Number of peers holding the piece.  O(1): read off the incrementally
    maintained copy-count vector. *)

val piece_count_vector : t -> k:int -> int array
(** [piece_copies] for every piece at once — an O(k) fresh copy. *)

val sample_uniform_peer : t -> draw:(int -> int) -> Pieceset.t
(** Type of a peer chosen uniformly among all [n] peers; [draw m] must
    return a uniform index in [0, m-1].  A linear scan of the dense
    occupied-type array; allocation-free.
    @raise Invalid_argument on the empty state. *)

val count_subset_peers : t -> Pieceset.t -> int
(** [Σ_{C ⊆ S} x_C]: the paper's [E_S]. *)

val count_helpful_peers : t -> Pieceset.t -> int
(** [Σ_{C ⊄ S} x_C = x_{H_S}]: peers that can help a type-[S] peer. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
