module Pieceset = P2p_pieceset.Pieceset

type verdict = Transient | Positive_recurrent | Borderline

let verdict_to_string = function
  | Transient -> "transient"
  | Positive_recurrent -> "positive-recurrent"
  | Borderline -> "borderline"

let pp_verdict fmt v = Format.pp_print_string fmt (verdict_to_string v)

let gift_weight (p : Params.t) ~piece =
  (* Σ_{C ∋ k} λ_C (K + 1 − |C|), the numerator's gifted-arrival part. *)
  Array.fold_left
    (fun acc (c, rate) ->
      if Pieceset.mem piece c then acc +. (rate *. float_of_int (p.k + 1 - Pieceset.cardinal c))
      else acc)
    0.0 p.arrivals

let threshold (p : Params.t) ~piece =
  let rho = Params.mu_over_gamma p in
  if rho >= 1.0 then infinity else (p.us +. gift_weight p ~piece) /. (1.0 -. rho)

let binding_piece p =
  let best = ref 0 and best_threshold = ref (threshold p ~piece:0) in
  for piece = 1 to p.Params.k - 1 do
    let t = threshold p ~piece in
    if t < !best_threshold then begin
      best := piece;
      best_threshold := t
    end
  done;
  !best

let delta (p : Params.t) ~s =
  if Pieceset.equal s (Params.full_set p) then invalid_arg "Stability.delta: S must be proper";
  let rho = Params.mu_over_gamma p in
  let inflow = Params.lambda_within p s in
  let help =
    Array.fold_left
      (fun acc (c, rate) ->
        if Pieceset.subset c s then acc
        else acc +. (rate *. (float_of_int (p.k - Pieceset.cardinal c) +. rho)))
      0.0 p.arrivals
  in
  inflow -. ((p.us +. help) /. (1.0 -. rho))

let classify_detail ?(tolerance = 1e-9) (p : Params.t) =
  let mu_lt_gamma = Params.immediate_departure p || p.mu < p.gamma in
  if not mu_lt_gamma then begin
    (* 0 < γ <= μ: stability is equivalent to every piece being able to
       enter the system. *)
    let blocked = ref (-1) in
    for piece = p.k - 1 downto 0 do
      if not (Params.piece_can_enter p ~piece) then blocked := piece
    done;
    if !blocked >= 0 then (Transient, !blocked, neg_infinity) else (Positive_recurrent, 0, infinity)
  end
  else begin
    let lambda_total = Params.lambda_total p in
    let piece = binding_piece p in
    let thr = threshold p ~piece in
    let margin = (thr -. lambda_total) /. Float.max thr 1e-300 in
    if lambda_total > thr *. (1.0 +. tolerance) then (Transient, piece, margin)
    else if lambda_total < thr *. (1.0 -. tolerance) then (Positive_recurrent, piece, margin)
    else (Borderline, piece, margin)
  end

let classify ?tolerance p =
  let verdict, _, _ = classify_detail ?tolerance p in
  verdict

let effective_params (p : Params.t) ~uptime_fraction =
  if not (Float.is_finite uptime_fraction && uptime_fraction >= 0.0 && uptime_fraction <= 1.0)
  then
    invalid_arg
      (Printf.sprintf "Stability.effective_params: uptime_fraction must be in [0, 1], got %g"
         uptime_fraction);
  Params.with_us p ~us:(p.us *. uptime_fraction)

let classify_effective ?tolerance p ~uptime_fraction =
  classify ?tolerance (effective_params p ~uptime_fraction)

let stable_lambda_limit (p : Params.t) =
  let rho = Params.mu_over_gamma p in
  if rho >= 1.0 then
    (* γ <= μ: stable at any scale as long as every piece can enter. *)
    if
      List.for_all (fun piece -> Params.piece_can_enter p ~piece) (List.init p.k (fun i -> i))
    then infinity
    else 0.0
  else begin
    let lambda_total = Params.lambda_total p in
    let limit_for piece =
      let slack = (lambda_total *. (1.0 -. rho)) -. gift_weight p ~piece in
      if slack <= 0.0 then infinity else p.us /. slack *. lambda_total
    in
    let rec scan piece acc =
      if piece >= p.k then acc else scan (piece + 1) (Float.min acc (limit_for piece))
    in
    scan 1 (limit_for 0)
  end

let equivalent_check (p : Params.t) =
  if Params.mu_over_gamma p >= 1.0 then true
  else begin
    let lambda_total = Params.lambda_total p in
    let by_pieces =
      List.for_all
        (fun piece -> lambda_total < threshold p ~piece)
        (List.init p.k (fun i -> i))
    in
    let by_deltas =
      List.for_all (fun s -> delta p ~s < 0.0) (Pieceset.all_proper ~k:p.k)
    in
    by_pieces = by_deltas
  end

(* Captured before [Coded.classify] shadows the name. *)
let theorem1_classify = classify

module Coded = struct
  type gift_params = {
    q : int;
    k : int;
    us : float;
    mu : float;
    gamma : float;
    lambda0 : float;
    lambda1 : float;
  }

  let validate g =
    if g.q < 2 then invalid_arg "Coded: q must be >= 2";
    if g.k < 1 then invalid_arg "Coded: k must be >= 1";
    if g.us < 0.0 || g.mu <= 0.0 || g.gamma <= 0.0 then invalid_arg "Coded: bad rates";
    if g.lambda0 < 0.0 || g.lambda1 < 0.0 || g.lambda0 +. g.lambda1 <= 0.0 then
      invalid_arg "Coded: arrival rates must be nonnegative with positive sum"

  let f_of g =
    validate g;
    g.lambda1 /. (g.lambda0 +. g.lambda1)

  let transient_f_threshold ~q ~k = float_of_int q /. (float_of_int (q - 1) *. float_of_int k)

  let recurrent_f_threshold_exact ~q ~k =
    let qf = float_of_int q in
    let frac = 1.0 -. (1.0 /. qf) in
    1.0 /. (frac *. frac *. (float_of_int (k - 1) +. (qf /. (qf -. 1.0))))

  let recurrent_f_threshold_paper ~q ~k =
    let qf = float_of_int q in
    qf *. qf /. ((qf -. 1.0) *. (qf -. 1.0) *. float_of_int k)

  let classify ?(tolerance = 1e-9) g =
    validate g;
    let qf = float_of_int g.q in
    let frac = 1.0 -. (1.0 /. qf) in
    let mu_tilde = frac *. g.mu in
    let lambda_total = g.lambda0 +. g.lambda1 in
    let finite_gamma = Float.is_finite g.gamma in
    (* A random coded vector lies outside a fixed hyperplane V⁻ with
       probability 1 − 1/q, so Σ_{V ⊄ V⁻} λ_V = λ1 (1 − 1/q). *)
    let outside = g.lambda1 *. frac in
    let mu_lt_gamma = (not finite_gamma) || g.mu < g.gamma in
    let mu_tilde_lt_gamma = (not finite_gamma) || mu_tilde < g.gamma in
    let rho = if finite_gamma then g.mu /. g.gamma else 0.0 in
    let rho_tilde = if finite_gamma then mu_tilde /. g.gamma else 0.0 in
    let transient =
      (mu_lt_gamma
      && lambda_total
         > (g.us +. (outside *. float_of_int g.k)) /. (1.0 -. rho) *. (1.0 +. tolerance))
      || ((not mu_lt_gamma) && g.us = 0.0 && g.lambda1 = 0.0)
    in
    let recurrent =
      (mu_tilde_lt_gamma
      && lambda_total
         < (g.us +. (outside *. (float_of_int (g.k - 1) +. (qf /. (qf -. 1.0)))))
           *. frac /. (1.0 -. rho_tilde) *. (1.0 -. tolerance))
      || ((not mu_tilde_lt_gamma) && (g.us > 0.0 || g.lambda1 > 0.0))
    in
    match (transient, recurrent) with
    | true, false -> Transient
    | false, true -> Positive_recurrent
    | false, false -> Borderline
    | true, true ->
        (* The necessary and sufficient conditions cannot both hold. *)
        assert false

  type profile = {
    pq : int;
    pk : int;
    pus : float;
    pmu : float;
    pgamma : float;
    parrivals : (int * float) list;
  }

  let profile_of_gift g =
    validate g;
    {
      pq = g.q;
      pk = g.k;
      pus = g.us;
      pmu = g.mu;
      pgamma = g.gamma;
      parrivals =
        (if g.lambda0 > 0.0 then [ (0, g.lambda0) ] else [])
        @ (if g.lambda1 > 0.0 then [ (1, g.lambda1) ] else []);
    }

  let validate_profile p =
    if p.pq < 2 then invalid_arg "Coded.profile: q must be >= 2";
    if p.pk < 1 then invalid_arg "Coded.profile: k must be >= 1";
    if p.pus < 0.0 || p.pmu <= 0.0 || p.pgamma <= 0.0 then
      invalid_arg "Coded.profile: bad rates";
    List.iter
      (fun (j, rate) ->
        if j < 0 || rate < 0.0 then invalid_arg "Coded.profile: bad arrival entry")
      p.parrivals;
    if List.fold_left (fun acc (_, r) -> acc +. r) 0.0 p.parrivals <= 0.0 then
      invalid_arg "Coded.profile: total arrival rate must be positive"

  (* Σ_{V ⊄ V⁻} λ_V · weight(dim V), computed exactly from the rank law of
     the random gift matrices. *)
  let outside_sum p ~weight =
    List.fold_left
      (fun acc (j, rate) ->
        if rate <= 0.0 then acc
        else begin
          let decomposition =
            P2p_coding.Rank_dist.outside_hyperplane_decomposition ~q:p.pq ~k:p.pk ~coded:j
          in
          Array.fold_left
            (fun acc (r, w) -> acc +. (rate *. w *. weight r))
            acc decomposition
        end)
      0.0 p.parrivals

  let profile_thresholds p =
    validate_profile p;
    let qf = float_of_int p.pq in
    let frac = 1.0 -. (1.0 /. qf) in
    let finite_gamma = Float.is_finite p.pgamma in
    let rho = if finite_gamma then p.pmu /. p.pgamma else 0.0 in
    let mu_tilde = frac *. p.pmu in
    let rho_tilde = if finite_gamma then mu_tilde /. p.pgamma else 0.0 in
    let transient_rhs =
      if rho >= 1.0 then infinity
      else
        (p.pus +. outside_sum p ~weight:(fun r -> float_of_int (p.pk - r + 1)))
        /. (1.0 -. rho)
    in
    let recurrent_rhs =
      if rho_tilde >= 1.0 then infinity
      else
        (p.pus
        +. outside_sum p ~weight:(fun r -> float_of_int (p.pk - r) +. (qf /. (qf -. 1.0))))
        *. frac /. (1.0 -. rho_tilde)
    in
    (transient_rhs, recurrent_rhs)

  let classify_profile ?(tolerance = 1e-9) p =
    validate_profile p;
    let qf = float_of_int p.pq in
    let frac = 1.0 -. (1.0 /. qf) in
    let mu_tilde = frac *. p.pmu in
    let finite_gamma = Float.is_finite p.pgamma in
    let mu_lt_gamma = (not finite_gamma) || p.pmu < p.pgamma in
    let mu_tilde_lt_gamma = (not finite_gamma) || mu_tilde < p.pgamma in
    let lambda_total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 p.parrivals in
    let has_gift = List.exists (fun (j, rate) -> j >= 1 && rate > 0.0) p.parrivals in
    let transient_rhs, recurrent_rhs = profile_thresholds p in
    let transient =
      (mu_lt_gamma && lambda_total > transient_rhs *. (1.0 +. tolerance))
      || ((not mu_lt_gamma) && p.pus = 0.0 && not has_gift)
    in
    let recurrent =
      (mu_tilde_lt_gamma && lambda_total < recurrent_rhs *. (1.0 -. tolerance))
      || ((not mu_tilde_lt_gamma) && (p.pus > 0.0 || has_gift))
    in
    match (transient, recurrent) with
    | true, false -> Transient
    | false, true -> Positive_recurrent
    | false, false -> Borderline
    | true, true -> assert false

  let uncoded_equivalent_is_transient ~k ~f =
    if f < 0.0 || f > 1.0 then invalid_arg "Coded.uncoded_equivalent_is_transient: f in [0,1]";
    if f >= 1.0 then false
    else begin
      let arrivals =
        (Pieceset.empty, 1.0 -. f)
        :: List.init k (fun i -> (Pieceset.singleton i, f /. float_of_int k))
      in
      let p = Params.make ~k ~us:0.0 ~mu:1.0 ~gamma:infinity ~arrivals in
      theorem1_classify p = Transient
    end
end
