(** Adaptive explicit Runge–Kutta integration: Dormand–Prince 5(4).

    The embedded DOPRI5 pair (Hairer–Nørsett–Wanner's DOPRI5) drives every
    continuous-time model in this library: a 5th-order propagated solution,
    a 4th-order companion whose difference estimates the local error, PI
    step-size control on the scaled RMS error, FSAL stage reuse, and the
    standard 4th-order {e dense output} interpolant so trajectories can be
    sampled on any simulation-time grid without constraining the steps the
    controller actually takes.

    Everything here is deterministic: for a fixed right-hand side, initial
    condition and {!control}, the accepted step sequence — and therefore
    every dense sample and every {!advance} stop time — is a pure function
    of the inputs.  The hybrid simulator's switch points rely on this.

    The module is generic over [f : t -> y -> dy] on [float array]s; it
    knows nothing about swarms.  {!Fluid} instantiates it for the
    mean-field ODE. *)

(** {1 Error control} *)

type control = {
  rtol : float;  (** relative tolerance (per component, against scale) *)
  atol : float;  (** absolute tolerance floor *)
  init_step : float option;  (** first trial step; [None] = heuristic *)
  max_step : float;  (** cap on any single step; [infinity] = none *)
  max_steps : int;  (** accepted-step budget for a whole session *)
}

val default_control : control
(** [rtol 1e-6, atol 1e-9, heuristic first step, no step cap, 20M steps]. *)

val control :
  ?rtol:float -> ?atol:float -> ?init_step:float -> ?max_step:float -> ?max_steps:int -> unit ->
  control
(** @raise Invalid_argument if a tolerance is not finite positive, the
    step parameters are not positive, or [max_steps < 1]. *)

(** {1 Raw embedded steps (building block, exposed for property tests)} *)

type step
(** One evaluated Dormand–Prince step: both solutions of the embedded
    pair, the scaled error estimate, and the dense-output coefficients. *)

val try_step :
  f:(float -> float array -> float array) ->
  control:control ->
  t:float ->
  y:float array ->
  h:float ->
  step
(** Evaluate one step of size [h] from [(t, y)] unconditionally — no
    accept/reject decision, no state.  @raise Invalid_argument if [h] is
    not finite positive. *)

val step_y1 : step -> float array
(** The 5th-order solution at [t + h] (a fresh copy). *)

val step_error : step -> float
(** The scaled RMS error estimate; an adaptive driver accepts iff
    [<= 1.0]. *)

val step_eval : step -> float -> float array
(** Dense output: the 4th-order interpolant at any time within
    [[t, t + h]].  @raise Invalid_argument outside the step. *)

(** {1 Stateful integration sessions} *)

type session
(** Mutable integration state: current [(t, y)], the controller's step
    size, the FSAL stage, and the accepted/rejected/evaluation counters.
    One session per simulated trajectory. *)

val session :
  ?control:control -> f:(float -> float array -> float array) -> t0:float -> y0:float array ->
  unit -> session
(** @raise Invalid_argument if [t0] is not finite or [y0] is empty or
    contains a non-finite value. *)

val set_rhs : session -> (float -> float array -> float array) -> unit
(** Swap the right-hand side (e.g. a fault toggled a drift term off).
    Invalidates the FSAL cache; the next step re-evaluates. *)

val time : session -> float
val state : session -> float array
(** The live state vector — copy it if you keep it. *)

val steps : session -> int
(** Accepted steps so far. *)

val rejected : session -> int
(** Rejected trial steps so far. *)

val evals : session -> int
(** Right-hand-side evaluations so far. *)

type outcome =
  | Reached  (** integrated through the requested time *)
  | Stopped of float  (** [until] first became true at this time *)
  | Step_limit  (** the [max_steps] budget ran out; state is at {!time} *)

val advance :
  ?until:(t:float -> y:float array -> bool) ->
  ?on_step:(session -> unit) ->
  session ->
  to_:float ->
  outcome
(** Integrate from the current time to [to_].  [on_step] fires after
    every accepted step (use {!dense_eval} inside it to sample a grid).
    [until], checked after every accepted step, requests an early stop:
    the crossing time inside the violating step is located by
    deterministic bisection on the dense output and the session state is
    moved {e exactly there} — [Stopped t] leaves [time session = t] with
    the interpolated state.  The predicate must be false at the current
    state.  @raise Invalid_argument if [to_] is NaN or precedes the
    current time.
    @raise Failure if the controller underflows the step size (the
    problem is too stiff for an explicit method at this tolerance). *)

val dense_eval : session -> float -> float array
(** Interpolate within the {e last accepted step} (valid between
    {!last_step_start} and {!time}).  Only meaningful inside [on_step].
    @raise Invalid_argument outside that window. *)

val last_step_start : session -> float
