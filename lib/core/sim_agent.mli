(** Agent-level simulation: every peer is an explicit object.

    Equivalent in law to {!Sim_markov} for the paper's model (a test
    checks the agreement), but additionally supports:

    - the Fig. 2 group decomposition — normal young / infected / gifted /
      one-club / former one-club peers with respect to a designated rare
      piece (the instrumentation behind the transience proof);
    - per-peer sojourn times;
    - non-exponential peer-seed dwell times (deterministic, Erlang) — the
      conclusion's conjecture that stability is insensitive to the dwell
      distribution (experiment E6 extension);
    - the Section VIII-C "faster recovery" variant: any uploader whose
      last contact found no useful piece ticks at rate [η·μ] (the seed at
      [η·U_s]) until its next contact. *)

module Pieceset = P2p_pieceset.Pieceset

type dwell =
  | Exp_dwell  (** Exp(γ) — the paper's model *)
  | Deterministic_dwell  (** constant 1/γ *)
  | Erlang_dwell of int  (** [Erlang_dwell m]: m stages, same mean 1/γ *)

type config = {
  params : Params.t;
  policy : Policy.t;
  dwell : dwell;
  eta : float;  (** unsuccessful-contact speedup; 1.0 = paper model *)
  rare_piece : int;  (** the piece the group decomposition tracks *)
  initial : (Pieceset.t * int) list;
  faults : Faults.t;  (** fault injection; {!Faults.none} = the paper's model *)
}

val default_config : Params.t -> config
(** Random-useful, exponential dwell, [eta = 1.0], rare piece 0, no faults. *)

type groups = {
  young : int;  (** missing the rare piece and at least one other *)
  infected : int;  (** received the rare piece after arrival, while young *)
  gifted : int;  (** arrived already holding the rare piece *)
  one_club : int;  (** type F − {rare piece} *)
  former_one_club : int;  (** were one-club, received the rare piece *)
}

val groups_total : groups -> int

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  completions : int;
  departures : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
      (** the [max_events] budget ran out before [horizon]; time-based
          statistics are biased toward the frozen final state *)
  outage_time : float;  (** total time the fixed seed spent down *)
  aborted_peers : int;  (** churn departures (also counted in [departures]) *)
  lost_transfers : int;  (** uploads dropped by transfer loss *)
  samples : (float * int) array;
  group_samples : (float * groups) array;
  mean_sojourn : float;  (** of departed peers; [nan] if none departed *)
  sojourn_count : int;
  one_club_time_fraction : float;
      (** time-average fraction of peers in the one-club (+ former members
          still present): the missing-piece-syndrome witness *)
}

val run :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats * State.t
(** Simulate on [0, horizon]; returns statistics and the final aggregate
    state (type counts).

    [probe] (default {!P2p_obs.Probe.none}) attaches telemetry exactly as
    in {!Sim_markov.run}: pure observation, never a perturbation — runs
    are bit-identical with and without a probe attached. *)

val run_seeded :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  seed:int ->
  config ->
  horizon:float ->
  stats * State.t

(** {1 Sharded runs}

    The agent swarm partitioned across shards (see
    {!Engine.drive_sharded} and DESIGN §17).  [shards = 1] dispatches to
    {!run} and is bit-identical to it.  For [shards >= 2]: peer ids are
    globally unique ([shard + n*shards]); the unsuccessful-contact boost
    is shard-local (cross-shard upload outcomes never reach the
    uploader's shard); [one_club_time_fraction] is the ratio of
    time-averages (Σ per-shard club-count averages over the global
    time-averaged population) rather than the time-average of the
    instantaneous ratio. *)

type shard_report = {
  shards : int;
  windows : int;
  cross_messages : int;
  shard_events : int array;  (** per-shard event counts *)
  shard_final_n : int array;
}

val run_sharded :
  ?probes:(int -> P2p_obs.Probe.t) ->
  ?sample_every:float ->
  ?max_events:int ->
  ?sync_every:float ->
  ?jobs:int ->
  shards:int ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats * State.t * shard_report

val run_sharded_seeded :
  ?probes:(int -> P2p_obs.Probe.t) ->
  ?sample_every:float ->
  ?max_events:int ->
  ?sync_every:float ->
  ?jobs:int ->
  shards:int ->
  seed:int ->
  config ->
  horizon:float ->
  stats * State.t * shard_report
