module Pieceset = P2p_pieceset.Pieceset

type t = {
  k : int;
  us : float;
  mu : float;
  gamma : float;
  arrivals : (Pieceset.t * float) array;
}

let make ~k ~us ~mu ~gamma ~arrivals =
  if k < 1 || k > Pieceset.max_pieces then
    invalid_arg
      (Printf.sprintf "Params.make: k must be in [1, %d], got %d" Pieceset.max_pieces k);
  if us < 0.0 || not (Float.is_finite us) then
    invalid_arg (Printf.sprintf "Params.make: us must be finite >= 0, got %g" us);
  if mu <= 0.0 || not (Float.is_finite mu) then
    invalid_arg (Printf.sprintf "Params.make: mu must be finite > 0, got %g" mu);
  if gamma <= 0.0 then
    invalid_arg (Printf.sprintf "Params.make: gamma must be positive (or infinity), got %g" gamma);
  let full = Pieceset.full ~k in
  (* Deduplicate: sum rates per type, drop zero entries. *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun (c, rate) ->
      if not (Pieceset.subset c full) then
        invalid_arg
          (Printf.sprintf "Params.make: arrival type %s has pieces beyond K=%d"
             (Pieceset.to_string c) k);
      if rate < 0.0 || not (Float.is_finite rate) then
        invalid_arg
          (Printf.sprintf "Params.make: arrival rates must be finite >= 0, got %g for type %s"
             rate (Pieceset.to_string c));
      let prev = Option.value (Hashtbl.find_opt table c) ~default:0.0 in
      Hashtbl.replace table c (prev +. rate))
    arrivals;
  let entries =
    Hashtbl.fold (fun c rate acc -> if rate > 0.0 then (c, rate) :: acc else acc) table []
  in
  let entries =
    List.sort (fun (a, _) (b, _) -> Pieceset.compare a b) entries |> Array.of_list
  in
  let total = Array.fold_left (fun acc (_, r) -> acc +. r) 0.0 entries in
  if total <= 0.0 then invalid_arg "Params.make: total arrival rate must be positive";
  if (not (Float.is_finite gamma)) && Array.exists (fun (c, _) -> Pieceset.equal c full) entries
  then invalid_arg "Params.make: gamma = infinity requires lambda_F = 0";
  { k; us; mu; gamma; arrivals = entries }

let immediate_departure t = not (Float.is_finite t.gamma)
let mu_over_gamma t = if immediate_departure t then 0.0 else t.mu /. t.gamma
let lambda_total t = Array.fold_left (fun acc (_, r) -> acc +. r) 0.0 t.arrivals

let lambda t c =
  let found = ref 0.0 in
  Array.iter (fun (c', r) -> if Pieceset.equal c c' then found := r) t.arrivals;
  !found

let lambda_containing t ~piece =
  Array.fold_left
    (fun acc (c, r) -> if Pieceset.mem piece c then acc +. r else acc)
    0.0 t.arrivals

let lambda_within t s =
  Array.fold_left
    (fun acc (c, r) -> if Pieceset.subset c s then acc +. r else acc)
    0.0 t.arrivals

let full_set t = Pieceset.full ~k:t.k

let piece_can_enter t ~piece = t.us > 0.0 || lambda_containing t ~piece > 0.0

let with_gamma t ~gamma =
  make ~k:t.k ~us:t.us ~mu:t.mu ~gamma ~arrivals:(Array.to_list t.arrivals)

let with_us t ~us = make ~k:t.k ~us ~mu:t.mu ~gamma:t.gamma ~arrivals:(Array.to_list t.arrivals)
let with_arrivals t ~arrivals = make ~k:t.k ~us:t.us ~mu:t.mu ~gamma:t.gamma ~arrivals

let pp fmt t =
  Format.fprintf fmt "@[<v>K=%d U_s=%g mu=%g gamma=%s@,arrivals:" t.k t.us t.mu
    (if immediate_departure t then "inf" else Printf.sprintf "%g" t.gamma);
  Array.iter (fun (c, r) -> Format.fprintf fmt "@,  lambda_%a = %g" Pieceset.pp c r) t.arrivals;
  Format.fprintf fmt "@]"
