(** Hybrid stochastic↔fluid simulation: exact CTMC dynamics while the
    swarm is small, the mean-field ODE once it is large.

    The mean-field limit is accurate exactly where the CTMC simulators
    are expensive (large populations) and useless exactly where they are
    cheap (near-extinction, where integer effects and the missing-piece
    club are the whole story).  The hybrid runs {!Sim_markov} until the
    population first reaches [up], hands the empirical type counts to
    {!Sim_fluid} as densities, integrates until the fluid total drains
    to [down], rounds the densities back to integer counts, and repeats
    — one global clock, one shared sampling grid, one fault schedule
    spanning all segments.

    {b Deterministic switch points.}  Upward switches happen on CTMC
    event times (a pure function of the caller's [rng]); downward
    switches are located by deterministic bisection on the integrator's
    dense output; and fluid→stochastic rounding is largest-remainder
    (ties to the lower index) with no randomness.  Same seed and
    thresholds ⇒ bit-identical switch times, samples, and statistics,
    across processes and [--jobs] counts (a test pins this).

    {b Approximation contract.}  Each handoff projects a distribution
    onto its mean, so the hybrid is {e not} a sampler of the exact CTMC
    path law above [up] — it is the standard fluid approximation with
    stochastic boundary layers.  Choose [up] large enough that relative
    fluctuations ([∼ 1/√up]) are negligible for your question. *)

module Pieceset = P2p_pieceset.Pieceset

type config = {
  markov : Sim_markov.config;  (** parameters, policy, faults, initial state *)
  up : int;  (** hand stochastic → fluid when the population reaches this *)
  down : int;  (** hand fluid → stochastic when total mass falls to this *)
  control : Ode.control;  (** stepper tolerances for the fluid segments *)
}

val default_config : ?up:int -> ?down:int -> Sim_markov.config -> config
(** Thresholds default to [up = 1000], [down = 100]. *)

type switch = {
  at : float;  (** global simulation time of the handoff *)
  to_fluid : bool;
  n : float;  (** population at the switch *)
}

type stats = {
  final_time : float;
  events : int;  (** stochastic events + accepted fluid steps *)
  markov_events : int;
  fluid_steps : int;
  arrivals : float;  (** integer counts from stochastic segments plus
                         exact flow integrals from fluid ones *)
  transfers : float;
  completions : float;
  departures : float;
  aborted : float;
  lost : float;
  time_avg_n : float;  (** duration-weighted across segments *)
  max_n : int;
  final_n : float;
  visits_to_empty : int;  (** from stochastic segments only *)
  truncated : bool;  (** an event or step budget ran out *)
  outage_time : float;  (** cumulative across the whole run *)
  switches : switch list;  (** chronological *)
  samples : (float * int) array;
      (** one continuous grid across all segments — the same contract
          as every other backend, so [p2psim report] works unchanged *)
}

val run :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats * float array
(** Simulate on [0, horizon]; returns statistics and the final state as
    a density vector (exact integers after a stochastic segment).
    [max_events] budgets the stochastic segments globally (default 200
    million); fluid segments are budgeted by [config.control.max_steps]
    per segment.  [probe] sees each segment's events and samples plus a
    [Handoff] event at every switch.
    @raise Invalid_argument unless [up > down >= 0]. *)

val run_seeded :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?max_events:int ->
  seed:int ->
  config ->
  horizon:float ->
  stats * float array
