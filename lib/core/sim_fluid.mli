(** The fifth backend: the fluid (mean-field) limit driven through the
    shared {!Engine}.

    Where the four stochastic simulators race exponential clocks,
    [Sim_fluid] integrates the {!Fluid} ODE with the adaptive
    Dormand–Prince stepper ({!Ode}) — but through
    {!Engine.drive_continuous}, so it shares the sampling grid, the
    probe grid, fault injection, truncation semantics, and the
    reporting surface with everything else.  A million-peer flash crowd
    that would take the CTMC simulators billions of events integrates
    in a few hundred accepted steps.

    {b Faults as drift.}  Seed outages are still the engine's
    alternating-renewal clockwork (stochastic, from the dedicated fault
    stream), but between toggles they act on the ODE as a time-varying
    drift: [us_scale] drops to 0 while the seed is down.  Churn
    ([abort_rate]) and transfer loss ([loss_prob]) are deterministic
    drift modulations — their {e mean-field} effect, applied exactly.

    {b Counters are integrals.}  The state vector carries
    {!Fluid.aug_slots} extra components accumulating each event band's
    rate, so [arrivals], [transfers], … are exact ODE outputs (floats —
    fractional mass, not counts), and the time-averaged population is
    the exact [∫n dt / T], not a grid approximation.

    {b Determinism.}  With [faults = Faults.none] the run makes no
    random draws at all; with faults, the schedule is a pure function
    of the caller's [rng].  Either way the accepted-step sequence — and
    every sample, probe row, and [until] stop time — is reproducible
    bit-for-bit across processes and [--jobs] counts. *)

module Pieceset = P2p_pieceset.Pieceset

type config = {
  params : Params.t;
  initial : (Pieceset.t * float) list;
      (** starting densities by piece set (summed on duplicates) *)
  faults : Faults.t;
  control : Ode.control;  (** stepper tolerances and budgets *)
}

val default_config : Params.t -> config
(** Empty swarm, no faults, {!Ode.default_control}. *)

type stats = {
  final_time : float;
  steps : int;  (** accepted integration steps *)
  rejected_steps : int;
  rhs_evals : int;
  arrivals : float;  (** cumulative arrival mass (exact integral) *)
  transfers : float;
  completions : float;
  departures : float;
  aborted_mass : float;  (** churn departures (also in [departures]) *)
  lost_mass : float;  (** upload mass dropped by transfer loss *)
  time_avg_n : float;  (** exact [∫n dt / T] *)
  max_n : int;  (** max population seen at barrier/grid times *)
  final_n : float;
  truncated : bool;  (** the step budget ran out; frozen to horizon *)
  stopped : bool;  (** [until] fired; [final_time] is the stop time *)
  outage_time : float;
  samples : (float * int) array;  (** same grid contract as the CTMC sims *)
}

val run :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?resume:Engine.resume ->
  ?until:(time:float -> total:float -> bool) ->
  ?init:float array ->
  ?max_steps:int ->
  rng:P2p_prng.Rng.t ->
  config ->
  horizon:float ->
  stats * float array
(** Integrate on [[resume.t0 | 0], horizon]; returns statistics and the
    final density vector (length [Fluid.dim params], clamped
    nonnegative).  [init] overrides [config.initial] with a raw density
    vector (the hybrid handoff path).  [until], checked after every
    accepted step, stops the run at the deterministically-bisected
    crossing time (the hybrid's downward handoff).  [max_steps]
    overrides the control's step budget.
    @raise Invalid_argument on a wrong-size [init], negative or
    non-finite initial masses, or a NaN horizon. *)

val run_seeded :
  ?probe:P2p_obs.Probe.t ->
  ?sample_every:float ->
  ?resume:Engine.resume ->
  ?until:(time:float -> total:float -> bool) ->
  ?init:float array ->
  ?max_steps:int ->
  seed:int ->
  config ->
  horizon:float ->
  stats * float array
