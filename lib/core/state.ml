module Pieceset = P2p_pieceset.Pieceset

(* Occupied types live in dense parallel arrays with O(1) swap-removal,
   with a hash table mapping type -> slot.  The dense layout keeps the
   per-event operations (count lookups, uniform peer sampling, piece-count
   maintenance) allocation-free and cache-friendly: sampling scans a flat
   int array instead of walking hash buckets, and the per-piece copy
   counts are maintained incrementally so rarest-first style policies read
   them in O(1) instead of recomputing O(occupied types * k) per contact. *)
type t = {
  mutable types : Pieceset.t array;  (* slots [0, len) occupied *)
  mutable vals : int array;  (* vals.(s) > 0 for s < len *)
  mutable len : int;
  slot_of : (Pieceset.t, int) Hashtbl.t;
  mutable total : int;
  piece_counts : int array;  (* piece i -> copies held across all peers *)
}

let create () =
  {
    types = [||];
    vals = [||];
    len = 0;
    slot_of = Hashtbl.create 32;
    total = 0;
    piece_counts = Array.make Pieceset.max_pieces 0;
  }

let copy t =
  {
    types = Array.copy t.types;
    vals = Array.copy t.vals;
    len = t.len;
    slot_of = Hashtbl.copy t.slot_of;
    total = t.total;
    piece_counts = Array.copy t.piece_counts;
  }

(* [match ... with exception Not_found] avoids the [Some] allocation of
   [find_opt] on this per-event path. *)
let count t c = match Hashtbl.find t.slot_of c with v -> t.vals.(v) | exception Not_found -> 0

let n t = t.total
let occupied t = t.len

(* Add [dv] (possibly negative) to the copy count of every piece of [c];
   tail-recursive over the bitset, no closure, no allocation. *)
let rec bump_pieces pc c dv =
  if not (Pieceset.is_empty c) then begin
    let i = Pieceset.lowest c in
    Array.unsafe_set pc i (Array.unsafe_get pc i + dv);
    bump_pieces pc (Pieceset.remove i c) dv
  end

(* Slot-level add/remove: maintain the dense arrays and the slot table
   only.  [total] and [piece_counts] are the callers' business, so that
   [move_peer] can account for just the pieces that changed hands. *)
let add_slot t c v =
  match Hashtbl.find t.slot_of c with
  | slot -> t.vals.(slot) <- t.vals.(slot) + v
  | exception Not_found ->
      if t.len = Array.length t.types then begin
        let cap = Int.max 16 (2 * t.len) in
        let types = Array.make cap Pieceset.empty and vals = Array.make cap 0 in
        Array.blit t.types 0 types 0 t.len;
        Array.blit t.vals 0 vals 0 t.len;
        t.types <- types;
        t.vals <- vals
      end;
      t.types.(t.len) <- c;
      t.vals.(t.len) <- v;
      Hashtbl.replace t.slot_of c t.len;
      t.len <- t.len + 1

let remove_slot t c =
  match Hashtbl.find t.slot_of c with
  | exception Not_found ->
      invalid_arg (Printf.sprintf "State.remove_peer: no type %s peer" (Pieceset.to_string c))
  | slot ->
      let v = t.vals.(slot) in
      if v = 1 then begin
        (* Swap-remove the emptied slot to keep the prefix dense. *)
        let last = t.len - 1 in
        Hashtbl.remove t.slot_of c;
        if slot <> last then begin
          let moved = t.types.(last) in
          t.types.(slot) <- moved;
          t.vals.(slot) <- t.vals.(last);
          Hashtbl.replace t.slot_of moved slot
        end;
        t.len <- last
      end
      else t.vals.(slot) <- v - 1

let add_peers t c v =
  add_slot t c v;
  t.total <- t.total + v;
  bump_pieces t.piece_counts c v

let add_peer t c = add_peers t c 1

let of_counts entries =
  let t = create () in
  List.iter
    (fun (c, v) ->
      if v < 0 then invalid_arg "State.of_counts: negative count";
      if v > 0 then add_peers t c v)
    entries;
  t

let remove_peer t c =
  remove_slot t c;
  t.total <- t.total - 1;
  bump_pieces t.piece_counts c (-1)

let move_peer t ~from_ ~to_ =
  if Pieceset.equal from_ to_ then ()
  else begin
    (* One peer changes type: move the slot count, then touch only the
       pieces that actually changed hands (for a download, exactly one). *)
    remove_slot t from_;
    add_slot t to_ 1;
    bump_pieces t.piece_counts (Pieceset.diff to_ from_) 1;
    bump_pieces t.piece_counts (Pieceset.diff from_ to_) (-1)
  end

let iter t f =
  for s = 0 to t.len - 1 do
    f t.types.(s) t.vals.(s)
  done

let fold t ~init ~f =
  let acc = ref init in
  for s = 0 to t.len - 1 do
    acc := f !acc t.types.(s) t.vals.(s)
  done;
  !acc

let to_alist t =
  fold t ~init:[] ~f:(fun acc c v -> (c, v) :: acc)
  |> List.sort (fun (a, _) (b, _) -> Pieceset.compare a b)

let piece_copies t ~k ~piece =
  if piece < 0 || piece >= k then invalid_arg "State.piece_copies: piece out of range";
  t.piece_counts.(piece)

let piece_count_vector t ~k = Array.sub t.piece_counts 0 k

let sample_uniform_peer t ~draw =
  if t.total = 0 then invalid_arg "State.sample_uniform_peer: empty state";
  let target = draw t.total in
  (* Guaranteed to land inside the dense prefix: sum of vals = total. *)
  let rec go slot acc =
    let acc = acc + Array.unsafe_get t.vals slot in
    if acc > target then Array.unsafe_get t.types slot else go (slot + 1) acc
  in
  go 0 0

let count_subset_peers t s =
  fold t ~init:0 ~f:(fun acc c v -> if Pieceset.subset c s then acc + v else acc)

let count_helpful_peers t s =
  fold t ~init:0 ~f:(fun acc c v -> if Pieceset.subset c s then acc else acc + v)

let equal a b =
  a.total = b.total && a.len = b.len
  && (let ok = ref true in
      iter a (fun c v -> if count b c <> v then ok := false);
      !ok)

let pp fmt t =
  Format.fprintf fmt "@[<h>n=%d:" t.total;
  List.iter (fun (c, v) -> Format.fprintf fmt " %a:%d" Pieceset.pp c v) (to_alist t);
  Format.fprintf fmt "@]"
