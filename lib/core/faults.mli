(** Deterministic fault injection for the simulators.

    Theorem 1 assumes an always-available fixed seed and peers that never
    abandon a download in progress.  This module describes the three ways
    a production swarm degrades from that ideal:

    - {b seed outages}: the fixed seed alternates between up and down
      periods, an alternating renewal process with Exp(1/mean_up) up
      durations and Exp(1/mean_down) down durations.  While down, the
      seed's contact rate is 0 — exactly the transient rare-piece
      starvation that triggers the missing piece syndrome;
    - {b peer churn}: every in-progress peer (one not yet holding the
      full collection) aborts its download at rate [abort_rate],
      departing without completing;
    - {b transfer loss}: each upload is independently lost with
      probability [loss_prob] — the contact happens, a useful piece is
      chosen, but nothing arrives.

    {b Determinism.}  All fault randomness (outage durations, loss
    coins) is drawn from a dedicated stream split off the replication's
    own generator at simulation start, so the fault schedule of
    replication [i] is a pure function of [(master_seed, i)] — the same
    derivation discipline as the replication runner.  When the spec is
    {!none}, {b no draw is ever made and the parent generator is never
    touched}: a simulator run with [faults = none] is bit-identical to
    one that predates fault injection (a regression test pins this). *)

type outage = {
  mean_up : float;  (** mean duration of an up period (Exp distributed) *)
  mean_down : float;  (** mean duration of a down period (Exp distributed) *)
}

type t = private {
  outage : outage option;
  abort_rate : float;  (** per-peer abort rate [nu]; 0 = never *)
  loss_prob : float;  (** per-transfer loss probability; 0 = lossless *)
}

val none : t
(** No faults: the paper's model. *)

val make : ?outage:float * float -> ?abort_rate:float -> ?loss_prob:float -> unit -> t
(** [make ~outage:(mean_up, mean_down) ~abort_rate ~loss_prob ()].
    @raise Invalid_argument if a mean duration is not finite positive,
    [abort_rate] is not finite nonnegative, or [loss_prob] is outside
    [0, 1] (the offending value is echoed in the message). *)

val is_none : t -> bool
(** [true] iff the spec injects nothing ([none] or an all-zero {!make}). *)

val uptime_fraction : t -> float
(** Long-run fraction of time the seed is up:
    [mean_up / (mean_up + mean_down)], or [1.0] without an outage spec.
    This is the duty cycle at which {!Stability.classify_effective}
    evaluates the degraded stability region. *)

val effective_us : t -> us:float -> float
(** [us *. uptime_fraction t]: the seed rate an observer averaging over
    outage cycles sees. *)

val pp : Format.formatter -> t -> unit

(** {1 Per-run fault clockwork}

    A {!run} owns the dedicated fault stream and the mutable outage
    state of one simulation run.  The simulators treat
    {!next_toggle} as a time barrier (like a scheduled departure):
    when the next event would land past it, they advance the clock to
    the toggle instead, call {!toggle}, and redraw — valid by
    memorylessness of the exponential race. *)

type run

val start : t -> rng:P2p_prng.Rng.t -> run
(** Begin a run at time 0 with the seed up.  Splits one dedicated fault
    stream off [rng] — unless the spec {!is_none}, in which case [rng]
    is not touched at all. *)

val seed_up : run -> bool
(** Is the fixed seed currently available? Always [true] without an
    outage spec. *)

val next_toggle : run -> float
(** Time of the next up/down transition; [infinity] without an outage
    spec. *)

val toggle : run -> now:float -> unit
(** Flip the seed's availability at time [now] (the caller advances its
    clock to {!next_toggle} first) and draw the next period length from
    the fault stream.  Notifies the observer, if one is set. *)

val set_observer : run -> (now:float -> up:bool -> unit) -> unit
(** Telemetry hook: called after every {!toggle} with the toggle time and
    the seed's new availability.  Used by the simulators to forward seed
    up/down transitions to an attached {!P2p_obs.Probe.t}; never touches
    the fault stream, so setting one cannot perturb the schedule. *)

val finish : run -> now:float -> unit
(** Close the outage accounting at the end of the run: if the seed is
    down, the period up to [now] is added to {!outage_time}. *)

val outage_time : run -> float
(** Total time the seed has been down so far (call {!finish} first for
    the final figure). *)

val lost : run -> bool
(** Draw one transfer-loss coin: [true] with probability [loss_prob].
    Never draws when [loss_prob = 0], so lossless runs consume no fault
    randomness on transfers. *)
