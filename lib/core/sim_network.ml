module Pieceset = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist
module Adjacency = P2p_graph.Adjacency
module Probe = P2p_obs.Probe
module Hist = P2p_obs.Hist

type piece_choice = Random_useful | Rarest_global | Rarest_local

type config = {
  params : Params.t;
  degree : int option;
  choice : piece_choice;
  initial : (Pieceset.t * int) list;
  faults : Faults.t;
}

let default_config params =
  { params; degree = None; choice = Random_useful; initial = []; faults = Faults.none }

type peer = {
  id : int;
  mutable pieces : Pieceset.t;
  mutable slot : int;
  mutable departed : bool;
}

type stats = {
  final_time : float;
  events : int;
  arrivals : int;
  transfers : int;
  departures : int;
  silent_contacts : int;
  time_avg_n : float;
  max_n : int;
  final_n : int;
  truncated : bool;
  outage_time : float;
  aborted_peers : int;
  lost_transfers : int;
  samples : (float * int) array;
  club_samples : (float * float) array;
  mean_degree_time_avg : float;
  final_component_sizes : int list;
}

(* dense population for uniform sampling, with id -> peer map *)
type population = {
  mutable peers : peer array;
  mutable len : int;
  by_id : (int, peer) Hashtbl.t;
}

let pop_create () = { peers = [||]; len = 0; by_id = Hashtbl.create 64 }

let pop_add pop peer =
  if pop.len = Array.length pop.peers then begin
    let bigger = Array.make (Int.max 16 (2 * pop.len)) peer in
    Array.blit pop.peers 0 bigger 0 pop.len;
    pop.peers <- bigger
  end;
  peer.slot <- pop.len;
  pop.peers.(pop.len) <- peer;
  pop.len <- pop.len + 1;
  Hashtbl.replace pop.by_id peer.id peer

let pop_remove pop peer =
  let i = peer.slot in
  pop.len <- pop.len - 1;
  if i <> pop.len then begin
    pop.peers.(i) <- pop.peers.(pop.len);
    pop.peers.(i).slot <- i
  end;
  peer.slot <- -1;
  peer.departed <- true;
  Hashtbl.remove pop.by_id peer.id

let pop_uniform pop rng =
  if pop.len = 0 then invalid_arg "Sim_network: empty population";
  pop.peers.(Rng.int_below rng pop.len)

(* one-club witness: max over pieces of the fraction of peers whose type
   is exactly F - {i}. *)
let club_fraction (p : Params.t) state =
  let n = State.n state in
  if n = 0 then 0.0
  else begin
    let full = Params.full_set p in
    let best = ref 0 in
    for i = 0 to p.k - 1 do
      let c = State.count state (Pieceset.remove i full) in
      if c > !best then best := c
    done;
    float_of_int !best /. float_of_int n
  end

let run ?(probe = Probe.none) ?sample_every ?max_events ~rng config ~horizon =
  let p = config.params in
  (match config.degree with
  | Some d when d < 1 -> invalid_arg "Sim_network.run: degree must be >= 1"
  | Some _ | None -> ());
  let common, (state, club_samples, deg_avg, sparse, graph, silent, pop) =
    Engine.drive ~probe ?sample_every ?max_events ~name:"sim_network" ~rng
      ~faults:config.faults ~horizon (fun h ->
        let tracing = probe.Probe.tracing in
        let full = Params.full_set p in
        let pop = pop_create () in
        let state = State.create () in
        let graph = Adjacency.create () in
        let sparse = Option.is_some config.degree in
        let next_id = ref 0 in
        let silent = ref 0 in
        let deg_avg = P2p_stats.Timeavg.create () in
        let lambda_total = Params.lambda_total p in
        let arrival_weights = Array.map snd p.arrivals in
        let counters = Engine.counters h in
        let frun = Engine.faults h in
        let abort_rate = config.faults.abort_rate in

        let new_peer c =
          let peer = { id = !next_id; pieces = c; slot = -1; departed = false } in
          incr next_id;
          pop_add pop peer;
          State.add_peer state c;
          if sparse then begin
            Adjacency.add_node graph peer.id;
            Adjacency.attach_uniform graph peer.id ~degree:(Option.get config.degree) rng
          end;
          peer
        in
        let depart peer =
          pop_remove pop peer;
          State.remove_peer state peer.pieces;
          if sparse then Adjacency.remove_node graph peer.id;
          counters.departures <- counters.departures + 1
        in

        (* Rarity-aware piece choice.  [counts] maps each piece to its copy
           count in the reference population (global swarm or the uploader's
           neighborhood); the rarest useful piece wins, ties at random. *)
        let pick_rarest useful counts =
          let best = ref max_int in
          Pieceset.iter (fun i -> if counts.(i) < !best then best := counts.(i)) useful;
          let tied =
            Pieceset.fold
              (fun i acc -> if counts.(i) = !best then Pieceset.add i acc else acc)
              useful Pieceset.empty
          in
          Pieceset.choose_uniform (Rng.int_below rng) tied
        in
        let neighborhood_counts uploader =
          let counts = Array.make p.k 0 in
          let tally pieces = Pieceset.iter (fun i -> counts.(i) <- counts.(i) + 1) pieces in
          tally uploader.pieces;
          Adjacency.iter_neighbors graph uploader.id (fun other_id ->
              match Hashtbl.find_opt pop.by_id other_id with
              | Some other -> tally other.pieces
              | None -> ());
          counts
        in
        let choose_piece ~uploader_pieces ~uploader ~downloader_pieces =
          let useful = Pieceset.diff uploader_pieces downloader_pieces in
          if Pieceset.is_empty useful then None
          else
            match config.choice with
            | Random_useful -> Some (Pieceset.choose_uniform (Rng.int_below rng) useful)
            | Rarest_global -> Some (pick_rarest useful (State.piece_count_vector state ~k:p.k))
            | Rarest_local -> begin
                match uploader with
                | None -> Some (Pieceset.choose_uniform (Rng.int_below rng) useful)
                | Some up -> Some (pick_rarest useful (neighborhood_counts up))
              end
        in
        let deliver peer piece ~time =
          counters.transfers <- counters.transfers + 1;
          let target = Pieceset.add piece peer.pieces in
          let completed = Pieceset.equal target full in
          if tracing then Probe.transfer probe ~time ~piece ~completed;
          if completed && Params.immediate_departure p then begin
            counters.completions <- counters.completions + 1;
            State.remove_peer state peer.pieces;
            peer.pieces <- target;
            pop_remove pop peer;
            if sparse then Adjacency.remove_node graph peer.id;
            counters.departures <- counters.departures + 1;
            if tracing then Probe.departure probe ~time Completed
          end
          else begin
            if completed then counters.completions <- counters.completions + 1;
            State.move_peer state ~from_:peer.pieces ~to_:target;
            peer.pieces <- target
          end
        in
        (* [uploader = None] is the fixed seed, globally connected. *)
        let contact_tm = Hist.timer (Hist.get probe.Probe.hists "sim_network/contact") in
        let contact uploader ~time =
          let c_t0 = Hist.tick contact_tm in
          let is_seed = Option.is_none uploader in
          let target_peer =
            match uploader with
            | None -> if pop.len = 0 then None else Some (pop_uniform pop rng)
            | Some up ->
                if not sparse then begin
                  let other = pop_uniform pop rng in
                  if other == up then None else Some other
                end
                else begin
                  match Adjacency.sample_neighbor graph up.id rng with
                  | None -> None
                  | Some id -> Hashtbl.find_opt pop.by_id id
                end
          in
          (match target_peer with
          | None ->
              incr silent;
              if tracing then
                Probe.contact probe ~time ~seed:is_seed ~useful:false
          | Some downloader -> begin
              let uploader_pieces =
                match uploader with None -> full | Some up -> up.pieces
              in
              let choice =
                choose_piece ~uploader_pieces ~uploader ~downloader_pieces:downloader.pieces
              in
              if tracing then
                Probe.contact probe ~time ~seed:is_seed ~useful:(Option.is_some choice);
              match choice with
              | Some _ when Faults.lost frun ->
                  (* The upload happened but the piece never arrived. *)
                  counters.lost <- counters.lost + 1;
                  if tracing then Probe.transfer_lost probe ~time
              | Some piece -> deliver downloader piece ~time
              | None -> incr silent
            end);
          Hist.tock contact_tm c_t0
        in

        (* initial population *)
        List.iter
          (fun (c, count) ->
            for _ = 1 to count do
              ignore (new_peer c)
            done)
          config.initial;

        let observe time =
          let n = pop.len in
          Engine.observe h ~time ~n;
          if sparse && n > 0 then
            P2p_stats.Timeavg.observe deg_avg ~time ~value:(Adjacency.mean_degree graph)
        in
        observe 0.0;

        let club_samples = P2p_stats.Vec.create () in

        (* Rate bands, stashed by [total_rate] for [apply]'s dispatch.  The
           abort band sits right after the seed band so a zero abort rate
           leaves every dispatch boundary float-identical to the pre-fault
           simulator. *)
        let rate_arrival = ref 0.0 in
        let rate_seed = ref 0.0 in
        let rate_abort = ref 0.0 in
        let rate_peers = ref 0.0 in
        let total_rate () =
          let n = pop.len in
          let seeds = if Params.immediate_departure p then 0 else State.count state full in
          rate_arrival := lambda_total;
          rate_seed := (if n = 0 || not (Faults.seed_up frun) then 0.0 else p.us);
          rate_abort := abort_rate *. float_of_int (n - State.count state full);
          rate_peers := p.mu *. float_of_int n;
          let rate_departure =
            if Params.immediate_departure p then 0.0 else p.gamma *. float_of_int seeds
          in
          !rate_arrival +. !rate_seed +. !rate_abort +. !rate_peers +. rate_departure
        in
        let apply ~time ~u =
          if u < !rate_arrival then begin
            let idx = Dist.categorical rng ~weights:arrival_weights in
            let pieces = fst p.arrivals.(idx) in
            ignore (new_peer pieces);
            counters.arrivals <- counters.arrivals + 1;
            if tracing then Probe.arrival probe ~time ~pieces
          end
          else if u < !rate_arrival +. !rate_seed then contact None ~time
          else if u < !rate_arrival +. !rate_seed +. !rate_abort then begin
            (* Churn: a uniformly chosen in-progress peer abandons its
               download.  rate_abort > 0 guarantees a non-seed peer exists. *)
            let rec pick () =
              let peer = pop_uniform pop rng in
              if Pieceset.equal peer.pieces full then pick () else peer
            in
            depart (pick ());
            counters.aborted <- counters.aborted + 1;
            if tracing then Probe.departure probe ~time Aborted
          end
          else if u < !rate_arrival +. !rate_seed +. !rate_abort +. !rate_peers then
            contact (Some (pop_uniform pop rng)) ~time
          else begin
            (* a uniformly chosen peer seed departs *)
            let rec find_seed () =
              let peer = pop_uniform pop rng in
              if Pieceset.equal peer.pieces full then peer else find_seed ()
            in
            depart (find_seed ());
            if tracing then Probe.departure probe ~time Seed_departed
          end;
          observe time
        in
        let model =
          {
            Engine.total_rate;
            apply;
            next_scheduled = (fun () -> infinity);
            scheduled = (fun ~time:_ -> ());
            population = (fun () -> pop.len);
            extra_sample =
              (fun ~time -> P2p_stats.Vec.push club_samples (time, club_fraction p state));
            probe_sample =
              (fun ~time ->
                Probe.sample ~time ~k:p.k ~n:(State.n state) ~count_of:(State.count state)
                  ~piece_counts:(State.piece_count_vector state ~k:p.k));
            finish =
              (fun ~time -> if sparse then P2p_stats.Timeavg.close deg_avg ~time);
          }
        in
        (model, (state, club_samples, deg_avg, sparse, graph, silent, pop)))
  in
  let stats =
    {
      final_time = common.Engine.final_time;
      events = common.Engine.events;
      arrivals = common.Engine.arrivals;
      transfers = common.Engine.transfers;
      departures = common.Engine.departures;
      silent_contacts = !silent;
      time_avg_n = common.Engine.time_avg_n;
      max_n = common.Engine.max_n;
      final_n = common.Engine.final_n;
      truncated = common.Engine.truncated;
      outage_time = common.Engine.outage_time;
      aborted_peers = common.Engine.aborted_peers;
      lost_transfers = common.Engine.lost_transfers;
      samples = common.Engine.samples;
      club_samples = P2p_stats.Vec.to_array club_samples;
      mean_degree_time_avg = (if sparse then P2p_stats.Timeavg.average deg_avg else nan);
      final_component_sizes =
        (if sparse then Adjacency.connected_component_sizes graph else [ pop.len ]);
    }
  in
  (stats, state)

let run_seeded ?probe ?sample_every ?max_events ~seed config ~horizon =
  run ?probe ?sample_every ?max_events ~rng:(Rng.of_seed seed) config ~horizon
