type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emitting ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that parses back to the same float: JSON has
   no distinct float grammar, so "3." and "nan" must be avoided. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let shortest = Printf.sprintf "%.15g" f in
    let s = if float_of_string shortest = f then shortest else Printf.sprintf "%.17g" f in
    (* "1e+22" and "3.5" are valid JSON; "inf"/"nan" were handled above. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then s
    else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf key;
          Buffer.add_char buf ':';
          to_buffer buf value)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ---- parsing: recursive descent over the string ---- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape");
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then error "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> error "bad \\u escape"
              in
              (* Telemetry strings are ASCII; encode the code point as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
          | c -> error (Printf.sprintf "bad escape \\%c" c));
          advance ();
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_number_char s.[!pos] do
      advance ()
    done;
    let token = String.sub s start (!pos - start) in
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> error (Printf.sprintf "bad number %S" token))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> error "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> error "expected , or ] in array"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  value

let of_string s =
  match parse s with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> failwith ("Json.of_string_exn: " ^ msg)

(* ---- JSONL: newline-delimited records ---- *)

type jsonl = { records : t list; remnant : string option }

(* A record is one newline-terminated line.  Anything after the final
   newline is by definition not a complete record — a process that died
   mid-append leaves exactly such a tail — so it is returned as the
   [remnant] for the caller to quarantine, never parsed, even when the
   bytes happen to form valid JSON (the tear may have truncated a longer
   record to a shorter valid one).  A complete line that fails to parse
   is real corruption and stays an error. *)
let jsonl_of_string s =
  let n = String.length s in
  let rec lines acc lineno start =
    match String.index_from_opt s start '\n' with
    | None ->
        let tail = String.sub s start (n - start) in
        Ok { records = List.rev acc; remnant = (if tail = "" then None else Some tail) }
    | Some nl ->
        let line = String.sub s start (nl - start) in
        if String.trim line = "" then lines acc (lineno + 1) (nl + 1)
        else begin
          match of_string line with
          | Ok v -> lines (v :: acc) (lineno + 1) (nl + 1)
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        end
  in
  lines [] 1 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_jsonl_file path =
  match read_file path with
  | content -> jsonl_of_string content
  | exception Sys_error msg -> Error msg

(* ---- atomic file replacement ---- *)

(* Write-tmp-then-rename: the destination either keeps its old content or
   holds the complete new content — a crash mid-write can never leave a
   torn file at [path].  The fsync before the rename keeps the ordering
   honest on real filesystems (rename must not be durable before the
   data).  fsync failure (e.g. on tmpfs-like filesystems that reject it)
   is not fatal: the rename itself is still atomic. *)
let write_file_atomic path writer =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  match writer oc with
  | result ->
      flush oc;
      (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
      close_out oc;
      Sys.rename tmp path;
      result
  | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      Printexc.raise_with_backtrace exn bt

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some nan
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
