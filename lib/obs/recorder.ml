type t = {
  r_live : bool;
  times : float array;
  (* (code, a, b) interleaved at stride 3: one sequential write stream
     instead of three parallel ones, so a recording run keeps two open
     cache-line streams (times + data) rather than four. *)
  data : int array;
  mask : int;
  mutable next : int; (* total ever recorded; write slot = next land mask *)
  (* auto-snapshot state; snap_left = 0 means off, leaving one dead
     branch on the record path *)
  mutable snap_every : int;
  mutable snap_left : int;
  mutable snap_gap_ns : int64;
  mutable last_snap_ns : int64;
  mutable snap_path : string;
  mutable snap_name : int -> string;
}

let no_name code = string_of_int code

let make ~live capacity =
  {
    r_live = live;
    times = Array.make capacity 0.0;
    data = Array.make (3 * capacity) 0;
    mask = capacity - 1;
    next = 0;
    snap_every = 0;
    snap_left = 0;
    snap_gap_ns = 0L;
    last_snap_ns = 0L;
    snap_path = "";
    snap_name = no_name;
  }

let disabled = make ~live:false 1

let rec round_pow2 n c = if c >= n then c else round_pow2 n (c * 2)

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity < 1";
  make ~live:true (round_pow2 capacity 1)

let live t = t.r_live
let capacity t = if t.r_live then t.mask + 1 else 0
let recorded t = t.next
let dropped t = Int.max 0 (t.next - (t.mask + 1))

let dump t ~code_name path =
  if t.r_live then begin
    let cap = t.mask + 1 in
    let first = Int.max 0 (t.next - cap) in
    if Filename.check_suffix path ".json" then begin
      let tr = Trace.to_file path in
      for i = first to t.next - 1 do
        let s = i land t.mask in
        Trace.emit tr ~time:t.times.(s)
          ~name:(code_name t.data.(3 * s))
          ~args:[ ("a", Json.Int t.data.((3 * s) + 1)); ("b", Json.Int t.data.((3 * s) + 2)) ]
      done;
      Trace.close tr
    end
    else
      Json.write_file_atomic path (fun oc ->
          Json.to_channel oc
            (Json.Obj
               [
                 ("schema", Json.String "p2p-flight-recorder");
                 ("version", Json.Int 1);
                 ("capacity", Json.Int cap);
                 ("recorded", Json.Int t.next);
                 ("dropped", Json.Int (dropped t));
               ]);
          output_char oc '\n';
          for i = first to t.next - 1 do
            let s = i land t.mask in
            let code = t.data.(3 * s) in
            Json.to_channel oc
              (Json.Obj
                 [
                   ("t", Json.Float t.times.(s));
                   ("ev", Json.String (code_name code));
                   ("c", Json.Int code);
                   ("a", Json.Int t.data.((3 * s) + 1));
                   ("b", Json.Int t.data.((3 * s) + 2));
                 ]);
            output_char oc '\n'
          done)
  end

let auto_snapshot t ~every ~min_gap_s ~code_name path =
  if every < 1 then invalid_arg "Recorder.auto_snapshot: every < 1";
  if not (min_gap_s >= 0.0) then invalid_arg "Recorder.auto_snapshot: min_gap_s < 0";
  if t.r_live then begin
    t.snap_every <- every;
    t.snap_left <- every;
    t.snap_gap_ns <- Int64.of_float (min_gap_s *. 1e9);
    t.last_snap_ns <- 0L;
    t.snap_path <- path;
    t.snap_name <- code_name
  end

(* The wall clock gates only how often the artifact is republished; it
   never feeds a value back into the simulation. *)
let snapshot_now t =
  t.snap_left <- t.snap_every;
  let now = Clock.now_ns () in
  if Int64.sub now t.last_snap_ns >= t.snap_gap_ns then begin
    t.last_snap_ns <- now;
    dump t ~code_name:t.snap_name t.snap_path
  end

let[@inline] record t ~time ~code ~a ~b =
  if t.r_live then begin
    (* [land mask] keeps the slot inside the power-of-two ring, so the
       four stores skip their bounds checks — this runs on every engine
       event of a recorded run. *)
    let s = t.next land t.mask in
    let d = 3 * s in
    Array.unsafe_set t.times s time;
    Array.unsafe_set t.data d code;
    Array.unsafe_set t.data (d + 1) a;
    Array.unsafe_set t.data (d + 2) b;
    t.next <- t.next + 1;
    if t.snap_left > 0 then begin
      t.snap_left <- t.snap_left - 1;
      if t.snap_left = 0 then snapshot_now t
    end
  end

let schema = "p2p-flight-recorder"

let read_summary path =
  let ( let* ) = Result.bind in
  let* { Json.records; remnant = _ } = Json.read_jsonl_file path in
  match records with
  | [] -> Error "flight dump: empty file"
  | header :: rows ->
      let* () =
        match Option.bind (Json.member "schema" header) Json.to_string_opt with
        | Some s when s = schema -> Ok ()
        | Some s -> Error (Printf.sprintf "flight dump: schema %S, wanted %S" s schema)
        | None -> Error "flight dump: no schema header line"
      in
      let int_field name j =
        match Option.bind (Json.member name j) Json.to_int_opt with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "flight dump: missing int field %S" name)
      in
      let* cap = int_field "capacity" header in
      let* rec_total = int_field "recorded" header in
      let* drop = int_field "dropped" header in
      let* rows =
        List.fold_left
          (fun acc row ->
            let* acc = acc in
            let* code = int_field "c" row in
            let* a = int_field "a" row in
            let* b = int_field "b" row in
            match Option.bind (Json.member "t" row) Json.to_float_opt with
            | Some time -> Ok ((time, code, a, b) :: acc)
            | None -> Error "flight dump: event row without a time")
          (Ok []) rows
      in
      Ok ((cap, rec_total, drop), Array.of_list (List.rev rows))
