(** Time-series collection of swarm probe samples.

    Wraps every probed observable — population, peer seeds, one-club
    size, rarest-piece copies, per-piece copies — in a
    [P2p_stats.Timeavg] accumulator (the signals are piecewise constant,
    so their honest means are time-weighted) while keeping the raw
    sample list for trajectory output and growth fits.

    The on-disk format is JSONL: a header line
    [{"schema": "p2p-swarm-probe", "version": 1, "k": K}] followed by one
    line per sample,
    [{"t":.., "n":.., "seeds":.., "club":.., "rarest":.., "rarest_n":..,
      "pieces":[..]}] ([rarest] is 1-based on the wire).  {!read} accepts
    exactly what {!write} produces, so [p2psim report] can render any
    probe file the CLI emitted. *)

type t

val create : k:int -> t
(** @raise Invalid_argument if [k < 1]. *)

val k : t -> int

val record : t -> Probe.sample -> unit
(** Append a sample; times must be nondecreasing (enforced by the
    underlying [Timeavg]). *)

val close : t -> time:float -> unit
(** Extend every time average through [time] (typically the horizon)
    without adding a sample. *)

val count : t -> int
val samples : t -> Probe.sample array
(** In record order. *)

val one_club_series : t -> (float * int) array
val population_series : t -> (float * int) array

val avg_n : t -> float
val avg_seeds : t -> float
val avg_one_club : t -> float
val avg_rarest_count : t -> float
val avg_piece : t -> int -> float
(** Time-weighted means; [nan] before any time has elapsed. *)

val write : t -> out_channel -> unit

val read : in_channel -> (t, string) result
(** Replays the samples through {!record} and {!close}s at the last
    sample time, so the time averages of a re-read series match the
    writer's (up to the final [close] time). *)

val read_file : string -> (t, string) result
