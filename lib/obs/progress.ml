type t = {
  live : bool;
  total : int;
  label : string;
  t0 : float;
  done_ : int Atomic.t;
  events : int Atomic.t;
  out : out_channel option;
  min_interval_s : float;
  mutable last_print : float;  (* guarded by [print_lock] *)
  mutable final_printed : bool;  (* guarded by [print_lock] *)
  print_lock : Mutex.t;
}

let make ~live ~out ~min_interval_s ~label ~total =
  {
    live;
    total;
    label;
    t0 = Unix.gettimeofday ();
    done_ = Atomic.make 0;
    events = Atomic.make 0;
    out;
    min_interval_s;
    last_print = neg_infinity;
    final_printed = false;
    print_lock = Mutex.create ();
  }

let silent = make ~live:false ~out:None ~min_interval_s:infinity ~label:"replications" ~total:0

let create ?(out = stderr) ?(min_interval_s = 0.25) ?(label = "replications") ~total () =
  if total < 0 then invalid_arg "Progress.create: total < 0";
  if min_interval_s < 0.0 then invalid_arg "Progress.create: min_interval_s < 0";
  make ~live:true ~out:(Some out) ~min_interval_s ~label ~total

let enabled t = t.live
let done_count t = Atomic.get t.done_
let events_total t = Atomic.get t.events

let fmt_rate r =
  if r >= 1e6 then Printf.sprintf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk" (r /. 1e3)
  else Printf.sprintf "%.0f" r

let fmt_eta s =
  if not (Float.is_finite s) then "-"
  else if s >= 3600.0 then Printf.sprintf "%.1fh" (s /. 3600.0)
  else if s >= 60.0 then Printf.sprintf "%.1fm" (s /. 60.0)
  else Printf.sprintf "%.1fs" s

let render t ~final oc =
  let now = Unix.gettimeofday () in
  let elapsed = Float.max 1e-9 (now -. t.t0) in
  let d = Atomic.get t.done_ in
  let ev = Atomic.get t.events in
  let rep_rate = float_of_int d /. elapsed in
  let eta =
    if d = 0 || d >= t.total then (if final then 0.0 else infinity)
    else float_of_int (t.total - d) /. rep_rate
  in
  Printf.fprintf oc "\r%d/%d %s (%3.0f%%)  %s events/s  ETA %s%s%!" d t.total t.label
    (if t.total = 0 then 100.0 else 100.0 *. float_of_int d /. float_of_int t.total)
    (fmt_rate (float_of_int ev /. elapsed))
    (fmt_eta eta)
    (if final then Printf.sprintf "  (%.2fs wall)\n" elapsed else "")

let maybe_print t ~final =
  match t.out with
  | None -> ()
  | Some oc ->
      if Mutex.try_lock t.print_lock then begin
        let now = Unix.gettimeofday () in
        if (final || now -. t.last_print >= t.min_interval_s) && not t.final_printed then begin
          t.last_print <- now;
          if final then t.final_printed <- true;
          render t ~final oc
        end;
        Mutex.unlock t.print_lock
      end
      else if final then begin
        (* The final line must not be lost to a losing try_lock race. *)
        Mutex.lock t.print_lock;
        if not t.final_printed then begin
          t.final_printed <- true;
          render t ~final oc
        end;
        Mutex.unlock t.print_lock
      end

let step t =
  if t.live then begin
    let d = 1 + Atomic.fetch_and_add t.done_ 1 in
    maybe_print t ~final:(d >= t.total)
  end

let add_events t n = if t.live then ignore (Atomic.fetch_and_add t.events n)

let finish t = if t.live then maybe_print t ~final:true
