(** Structured event tracing.

    Two on-disk formats over the same [emit] calls:

    - {b Jsonl}: one JSON object per line —
      [{"t": <sim time>, "ev": "<name>", ...args}].  Greppable, streams,
      and {!Series.read}-style consumers can parse line by line.
    - {b Chrome}: the Chrome trace-event array format — open the file in
      [chrome://tracing] / Perfetto.  Instant events carry [ph = "i"]
      with [ts] in microseconds of {e simulation} time (1 sim time unit =
      1 s); spans from the profiler are complete events ([ph = "X"]).

    [null] is the no-op sink: [emit] on it is one match, no allocation,
    so call sites can be left unguarded outside hot loops.  Hot loops
    should still skip event {e construction} when [enabled] is false. *)

type format = Jsonl | Chrome

type t

val null : t
val enabled : t -> bool

val create : format:format -> out_channel -> t
(** The caller keeps ownership of the channel; {!close} only terminates
    the format (Chrome's closing bracket) and flushes. *)

val to_file : string -> t
(** Streams to a temporary file next to [path] and atomically renames it
    to [path] at {!close} — a crash mid-run never leaves a torn trace at
    [path].  Owns the channel: {!close} also closes it.  The format is
    {!Chrome} when the path ends in [.json], {!Jsonl} otherwise. *)

val emit : t -> time:float -> name:string -> args:(string * Json.t) list -> unit
(** Record an instant event at simulation time [time]. *)

val emit_span : t -> start:float -> dur:float -> name:string -> unit
(** Record a completed span (Chrome [ph = "X"]; in Jsonl a line with
    ["dur"]).  Used by the phase profiler. *)

val events_written : t -> int

val close : t -> unit
(** Idempotent. *)
