(** The one monotonic clock every instrument reads.

    [Unix.gettimeofday] is wall time: NTP slews and steps move it
    backwards and forwards under a running process, which corrupts any
    duration computed as a difference of two reads.  Everything in
    [lib/obs] that measures {e elapsed} time (profiler spans, metric
    timers, histogram phase costs, flight-recorder snapshot cadence)
    goes through this module instead, which reads the OS monotonic
    clock ([CLOCK_MONOTONIC]) and therefore never runs backwards.

    The epoch is unspecified (typically boot time): values are only
    meaningful as differences.  Simulation code never reads this clock
    — probes and detectors ride simulation time, a separate axis. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds since an unspecified epoch.  Alloc-free on
    native builds (the underlying primitive is [@@noalloc] with an
    unboxed result). *)

val now_s : unit -> float
(** {!now_ns} scaled to seconds.  Differences of [now_s] reads keep
    sub-microsecond precision over any realistic process lifetime. *)
