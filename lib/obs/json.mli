(** Minimal JSON values: enough to emit and re-read the telemetry files
    (event traces, probe series, bench baselines) without an external
    dependency.

    The emitter produces strict JSON.  Non-finite floats have no JSON
    encoding, so they serialise as [null]; finite floats print with
    enough digits to round-trip bit-exactly.  The parser accepts strict
    JSON (objects, arrays, strings with the standard escapes, numbers,
    booleans, null) and reports errors with a character offset. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit
val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** [Error msg] carries the character offset of the failure. *)

val of_string_exn : string -> t
(** @raise Failure on malformed input. *)

(** {1 JSONL}

    Newline-delimited records: the format of the probe series, trace
    sinks, and the campaign result store. *)

type jsonl = {
  records : t list;  (** every complete (newline-terminated) record, in order *)
  remnant : string option;
      (** bytes after the final newline — the torn tail a crash
          mid-append leaves behind.  Never parsed, even when the bytes
          happen to form valid JSON (a tear can truncate a record to a
          shorter valid one); callers quarantine it and re-produce the
          record it belonged to. *)
}

val jsonl_of_string : string -> (jsonl, string) result
(** Tolerant JSONL reader: truncation at {e any} byte offset of a valid
    stream yields [Ok] — the complete lines parse, the torn tail comes
    back as [remnant] (a test pins this at every offset of a sample
    record).  Only a complete line that fails to parse — real interior
    corruption — is an [Error] (message names the line). *)

val read_jsonl_file : string -> (jsonl, string) result
(** {!jsonl_of_string} of the file's bytes; [Error] on I/O failure. *)

(** {1 Atomic file replacement} *)

val write_file_atomic : string -> (out_channel -> 'a) -> 'a
(** [write_file_atomic path writer] runs [writer] against a temporary
    file in the same directory, fsyncs, and renames it over [path]: the
    destination either keeps its previous content or holds the complete
    new content, never a torn prefix.  If [writer] raises, the temporary
    file is removed and [path] is untouched. *)

(** {1 Accessors} — shallow, total lookups used by the readers. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; [Null] reads as [nan] (the emitter's
    encoding of non-finite floats). *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
