(** Minimal JSON values: enough to emit and re-read the telemetry files
    (event traces, probe series, bench baselines) without an external
    dependency.

    The emitter produces strict JSON.  Non-finite floats have no JSON
    encoding, so they serialise as [null]; finite floats print with
    enough digits to round-trip bit-exactly.  The parser accepts strict
    JSON (objects, arrays, strings with the standard escapes, numbers,
    booleans, null) and reports errors with a character offset. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit
val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** [Error msg] carries the character offset of the failure. *)

val of_string_exn : string -> t
(** @raise Failure on malformed input. *)

(** {1 Accessors} — shallow, total lookups used by the readers. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; [Null] reads as [nan] (the emitter's
    encoding of non-finite floats). *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
