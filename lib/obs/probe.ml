module Pieceset = P2p_pieceset.Pieceset

type departure_kind = Completed | Aborted | Seed_departed

type event =
  | Arrival of { pieces : Pieceset.t }
  | Contact of { seed : bool; useful : bool }
  | Transfer of { piece : int; completed : bool }
  | Transfer_lost
  | Departure of { kind : departure_kind }
  | Seed_toggle of { up : bool }
  | Handoff of { fluid : bool; n : float }

let event_name = function
  | Arrival _ -> "arrival"
  | Contact _ -> "contact"
  | Transfer _ -> "transfer"
  | Transfer_lost -> "transfer_lost"
  | Departure { kind = Completed } -> "departure_completed"
  | Departure { kind = Aborted } -> "departure_aborted"
  | Departure { kind = Seed_departed } -> "departure_seed"
  | Seed_toggle _ -> "seed_toggle"
  | Handoff { fluid = true; _ } -> "handoff_to_fluid"
  | Handoff { fluid = false; _ } -> "handoff_to_stochastic"

(* Dense event codes for the flight recorder's struct-of-arrays ring:
   recording must not allocate, so an event is (code, a, b) ints with
   the payload packed per code (see [payload_a]/[payload_b]). *)
let n_event_codes = 10

let event_code = function
  | Arrival _ -> 0
  | Contact _ -> 1
  | Transfer _ -> 2
  | Transfer_lost -> 3
  | Departure { kind = Completed } -> 4
  | Departure { kind = Aborted } -> 5
  | Departure { kind = Seed_departed } -> 6
  | Seed_toggle _ -> 7
  | Handoff { fluid = true; _ } -> 8
  | Handoff { fluid = false; _ } -> 9

let code_name = function
  | 0 -> "arrival"
  | 1 -> "contact"
  | 2 -> "transfer"
  | 3 -> "transfer_lost"
  | 4 -> "departure_completed"
  | 5 -> "departure_aborted"
  | 6 -> "departure_seed"
  | 7 -> "seed_toggle"
  | 8 -> "handoff_to_fluid"
  | 9 -> "handoff_to_stochastic"
  | c -> "unknown_" ^ string_of_int c

let payload_a = function
  | Arrival { pieces } -> (pieces :> int) (* the bitset itself *)
  | Contact { seed; _ } -> Bool.to_int seed
  | Transfer { piece; _ } -> piece + 1 (* 1-based, like the tracer *)
  | Transfer_lost | Departure _ -> 0
  | Seed_toggle { up } -> Bool.to_int up
  | Handoff { fluid; _ } -> Bool.to_int fluid

let payload_b = function
  | Arrival { pieces } -> Pieceset.cardinal pieces
  | Contact { useful; _ } -> Bool.to_int useful
  | Transfer { completed; _ } -> Bool.to_int completed
  | Transfer_lost | Departure _ | Seed_toggle _ -> 0
  | Handoff { n; _ } -> int_of_float (Float.round n)

let event_args = function
  | Arrival { pieces } ->
      [
        ("pieces", Json.String (Pieceset.to_string pieces));
        ("held", Json.Int (Pieceset.cardinal pieces));
      ]
  | Contact { seed; useful } -> [ ("seed", Json.Bool seed); ("useful", Json.Bool useful) ]
  | Transfer { piece; completed } ->
      (* 1-based piece numbers on the wire, matching the paper and the CLI. *)
      [ ("piece", Json.Int (piece + 1)); ("completed", Json.Bool completed) ]
  | Transfer_lost -> []
  | Departure _ -> []
  | Seed_toggle { up } -> [ ("up", Json.Bool up) ]
  | Handoff { fluid; n } -> [ ("fluid", Json.Bool fluid); ("n", Json.Float n) ]

type sample = {
  time : float;
  n : int;
  seeds : int;
  one_club : int;
  rarest_piece : int;
  rarest_count : int;
  piece_counts : int array;
}

let sample ~time ~k ~n ~count_of ~piece_counts =
  if Array.length piece_counts <> k then invalid_arg "Probe.sample: piece_counts length <> k";
  let rarest = ref 0 in
  for piece = 1 to k - 1 do
    if piece_counts.(piece) < piece_counts.(!rarest) then rarest := piece
  done;
  let full = Pieceset.full ~k in
  {
    time;
    n;
    seeds = count_of full;
    one_club = count_of (Pieceset.remove !rarest full);
    rarest_piece = !rarest;
    rarest_count = piece_counts.(!rarest);
    piece_counts;
  }

type t = {
  interval : float;
  tracing : bool;
  on_event : time:float -> event -> unit;
  on_sample : sample -> unit;
  profile : Profile.t;
  recorder : Recorder.t;
  hists : Hist.group;
  structured : bool;
  subscribed : bool;
  event_counts : Hist.t array;
}

let noop_event ~time:_ _ = ()
let noop_sample _ = ()

let dead_counts = Array.make n_event_codes Hist.disabled

let none =
  {
    interval = infinity;
    tracing = false;
    on_event = noop_event;
    on_sample = noop_sample;
    profile = Profile.disabled;
    recorder = Recorder.disabled;
    hists = Hist.disabled_group;
    structured = false;
    subscribed = false;
    event_counts = dead_counts;
  }

let make ?(interval = infinity) ?on_event ?on_sample ?(profile = Profile.disabled)
    ?(recorder = Recorder.disabled) ?(hists = Hist.disabled_group) () =
  if not (interval > 0.0) then invalid_arg "Probe.make: interval must be > 0";
  (* the recorder and the per-event-type hists both consume structured
     events, so either one turns [tracing] on — the simulators only
     report events behind that flag *)
  let structured = Recorder.live recorder || Hist.enabled hists in
  {
    interval;
    tracing = Option.is_some on_event || structured;
    on_event = Option.value on_event ~default:noop_event;
    on_sample = Option.value on_sample ~default:noop_sample;
    profile;
    recorder;
    hists;
    structured;
    subscribed = Option.is_some on_event;
    event_counts =
      (if Hist.enabled hists then
         Array.init n_event_codes (fun c -> Hist.get hists ("events/" ^ code_name c))
       else dead_counts);
  }

let trace_hook trace ~time ev =
  Trace.emit trace ~time ~name:(event_name ev) ~args:(event_args ev)

let sampling t = t.interval < infinity

(* Top level rather than a local function: a local closure would
   capture [t] and [time] and allocate on every event.  Codes are
   literals in [0, n_event_codes) and both count arrays have exactly
   that length, so the lookup skips its bounds check. *)
let[@inline] record_one t time c a b =
  Hist.record_unit (Array.unsafe_get t.event_counts c);
  Recorder.record t.recorder ~time ~code:c ~a ~b

(* Typed per-event emitters.  Each simulator call site knows its event
   statically, so the emitter takes the payload as scalars and records
   [(code, a, b)] straight into the recorder and count hists — no
   variant is constructed and no runtime dispatch happens unless an
   [on_event] subscriber actually wants the value.  A match over a
   recorded run's event mix costs ~15 ns/event in branch mispredictions
   alone, which is most of the ≤ 5% instrumented-overhead budget. *)
let[@inline] arrival t ~time ~(pieces : Pieceset.t) =
  if t.structured then record_one t time 0 (pieces :> int) (Pieceset.cardinal pieces);
  if t.subscribed then t.on_event ~time (Arrival { pieces })

let[@inline] contact t ~time ~seed ~useful =
  if t.structured then record_one t time 1 (Bool.to_int seed) (Bool.to_int useful);
  if t.subscribed then t.on_event ~time (Contact { seed; useful })

let[@inline] transfer t ~time ~piece ~completed =
  if t.structured then record_one t time 2 (piece + 1) (Bool.to_int completed);
  if t.subscribed then t.on_event ~time (Transfer { piece; completed })

let[@inline] transfer_lost t ~time =
  if t.structured then record_one t time 3 0 0;
  if t.subscribed then t.on_event ~time Transfer_lost

let[@inline] departure t ~time kind =
  if t.structured then
    record_one t time
      (match kind with Completed -> 4 | Aborted -> 5 | Seed_departed -> 6)
      0 0;
  if t.subscribed then t.on_event ~time (Departure { kind })

let[@inline] seed_toggle t ~time ~up =
  if t.structured then record_one t time 7 (Bool.to_int up) 0;
  if t.subscribed then t.on_event ~time (Seed_toggle { up })

let[@inline] handoff t ~time ~fluid ~n =
  if t.structured then
    record_one t time (if fluid then 8 else 9) (Bool.to_int fluid)
      (int_of_float (Float.round n));
  if t.subscribed then t.on_event ~time (Handoff { fluid; n })

(* The dynamic entry point, for callers that already hold an [event]
   value (replays, tests).  Hot loops use the typed emitters above. *)
let event t ~time ev =
  if t.structured then begin
    match ev with
    | Arrival { pieces } -> record_one t time 0 (pieces :> int) (Pieceset.cardinal pieces)
    | Contact { seed; useful } -> record_one t time 1 (Bool.to_int seed) (Bool.to_int useful)
    | Transfer { piece; completed } -> record_one t time 2 (piece + 1) (Bool.to_int completed)
    | Transfer_lost -> record_one t time 3 0 0
    | Departure { kind = Completed } -> record_one t time 4 0 0
    | Departure { kind = Aborted } -> record_one t time 5 0 0
    | Departure { kind = Seed_departed } -> record_one t time 6 0 0
    | Seed_toggle { up } -> record_one t time 7 (Bool.to_int up) 0
    | Handoff { fluid; n } ->
        record_one t time (if fluid then 8 else 9) (Bool.to_int fluid)
          (int_of_float (Float.round n))
  end;
  t.on_event ~time ev
