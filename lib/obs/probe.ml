module Pieceset = P2p_pieceset.Pieceset

type departure_kind = Completed | Aborted | Seed_departed

type event =
  | Arrival of { pieces : Pieceset.t }
  | Contact of { seed : bool; useful : bool }
  | Transfer of { piece : int; completed : bool }
  | Transfer_lost
  | Departure of { kind : departure_kind }
  | Seed_toggle of { up : bool }
  | Handoff of { fluid : bool; n : float }

let event_name = function
  | Arrival _ -> "arrival"
  | Contact _ -> "contact"
  | Transfer _ -> "transfer"
  | Transfer_lost -> "transfer_lost"
  | Departure { kind = Completed } -> "departure_completed"
  | Departure { kind = Aborted } -> "departure_aborted"
  | Departure { kind = Seed_departed } -> "departure_seed"
  | Seed_toggle _ -> "seed_toggle"
  | Handoff { fluid = true; _ } -> "handoff_to_fluid"
  | Handoff { fluid = false; _ } -> "handoff_to_stochastic"

let event_args = function
  | Arrival { pieces } ->
      [
        ("pieces", Json.String (Pieceset.to_string pieces));
        ("held", Json.Int (Pieceset.cardinal pieces));
      ]
  | Contact { seed; useful } -> [ ("seed", Json.Bool seed); ("useful", Json.Bool useful) ]
  | Transfer { piece; completed } ->
      (* 1-based piece numbers on the wire, matching the paper and the CLI. *)
      [ ("piece", Json.Int (piece + 1)); ("completed", Json.Bool completed) ]
  | Transfer_lost -> []
  | Departure _ -> []
  | Seed_toggle { up } -> [ ("up", Json.Bool up) ]
  | Handoff { fluid; n } -> [ ("fluid", Json.Bool fluid); ("n", Json.Float n) ]

type sample = {
  time : float;
  n : int;
  seeds : int;
  one_club : int;
  rarest_piece : int;
  rarest_count : int;
  piece_counts : int array;
}

let sample ~time ~k ~n ~count_of ~piece_counts =
  if Array.length piece_counts <> k then invalid_arg "Probe.sample: piece_counts length <> k";
  let rarest = ref 0 in
  for piece = 1 to k - 1 do
    if piece_counts.(piece) < piece_counts.(!rarest) then rarest := piece
  done;
  let full = Pieceset.full ~k in
  {
    time;
    n;
    seeds = count_of full;
    one_club = count_of (Pieceset.remove !rarest full);
    rarest_piece = !rarest;
    rarest_count = piece_counts.(!rarest);
    piece_counts;
  }

type t = {
  interval : float;
  tracing : bool;
  on_event : time:float -> event -> unit;
  on_sample : sample -> unit;
  profile : Profile.t;
}

let noop_event ~time:_ _ = ()
let noop_sample _ = ()

let none =
  {
    interval = infinity;
    tracing = false;
    on_event = noop_event;
    on_sample = noop_sample;
    profile = Profile.disabled;
  }

let make ?(interval = infinity) ?on_event ?on_sample ?(profile = Profile.disabled) () =
  if not (interval > 0.0) then invalid_arg "Probe.make: interval must be > 0";
  {
    interval;
    tracing = Option.is_some on_event;
    on_event = Option.value on_event ~default:noop_event;
    on_sample = Option.value on_sample ~default:noop_sample;
    profile;
  }

let trace_hook trace ~time ev =
  Trace.emit trace ~time ~name:(event_name ev) ~args:(event_args ev)

let sampling t = t.interval < infinity
let event t ~time ev = t.on_event ~time ev
