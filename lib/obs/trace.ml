type format = Jsonl | Chrome

type sink = {
  format : format;
  oc : out_channel;
  owns_channel : bool;
  rename_on_close : (string * string) option;  (* (tmp, final): atomic publish *)
  mutable first : bool;
  mutable written : int;
  mutable closed : bool;
}

type t = Null | Sink of sink

let null = Null
let enabled = function Null -> false | Sink _ -> true

let start_sink ~format ~owns_channel ?rename_on_close oc =
  (match format with Chrome -> output_string oc "[\n" | Jsonl -> ());
  Sink
    { format; oc; owns_channel; rename_on_close; first = true; written = 0; closed = false }

let create ~format oc = start_sink ~format ~owns_channel:false oc

let format_of_path path =
  if Filename.check_suffix path ".json" then Chrome else Jsonl

(* The trace streams to a temporary alongside its destination and is
   renamed into place at {!close}: a run that crashes mid-trace leaves
   no half-written trace file behind at [path]. *)
let to_file path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  start_sink ~format:(format_of_path path) ~owns_channel:true ~rename_on_close:(tmp, path)
    (open_out_bin tmp)

(* Chrome's [ts] field is in microseconds; we map 1 simulation time unit
   to one second so traces of O(1000)-time-unit runs stay readable. *)
let chrome_ts time = Json.Float (time *. 1e6)

let write_record s json =
  (match s.format with
  | Jsonl -> ()
  | Chrome -> if s.first then s.first <- false else output_string s.oc ",\n");
  Json.to_channel s.oc json;
  (match s.format with Jsonl -> output_char s.oc '\n' | Chrome -> ());
  s.written <- s.written + 1

let emit t ~time ~name ~args =
  match t with
  | Null -> ()
  | Sink s ->
      if s.closed then invalid_arg "Trace.emit: sink is closed";
      let json =
        match s.format with
        | Jsonl -> Json.Obj (("t", Json.Float time) :: ("ev", Json.String name) :: args)
        | Chrome ->
            Json.Obj
              [
                ("name", Json.String name);
                ("ph", Json.String "i");
                ("s", Json.String "t");
                ("ts", chrome_ts time);
                ("pid", Json.Int 1);
                ("tid", Json.Int 1);
                ("args", Json.Obj args);
              ]
      in
      write_record s json

let emit_span t ~start ~dur ~name =
  match t with
  | Null -> ()
  | Sink s ->
      if s.closed then invalid_arg "Trace.emit_span: sink is closed";
      let json =
        match s.format with
        | Jsonl ->
            Json.Obj
              [ ("t", Json.Float start); ("ev", Json.String name); ("dur", Json.Float dur) ]
        | Chrome ->
            Json.Obj
              [
                ("name", Json.String name);
                ("ph", Json.String "X");
                ("ts", chrome_ts start);
                ("dur", chrome_ts dur);
                ("pid", Json.Int 1);
                ("tid", Json.Int 1);
              ]
      in
      write_record s json

let events_written = function Null -> 0 | Sink s -> s.written

let close = function
  | Null -> ()
  | Sink s ->
      if not s.closed then begin
        s.closed <- true;
        (match s.format with Chrome -> output_string s.oc "\n]\n" | Jsonl -> ());
        if s.owns_channel then close_out s.oc else flush s.oc;
        match s.rename_on_close with
        | Some (tmp, path) -> Sys.rename tmp path
        | None -> ()
      end
