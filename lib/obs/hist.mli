(** Fixed-bucket log2 (HDR-style) histograms for hot-path cost
    attribution.

    A histogram is 64 integer buckets over a geometric grid: bucket [b]
    (for [1 <= b <= 62]) holds values in [[2^(b-32), 2^(b-31))], bucket
    0 absorbs everything below [2^-31] (including zero and junk), and
    bucket 63 everything from [2^31] up.  One grid covers both
    nanosecond-scale durations recorded in seconds (1 ns ≈ bucket 2,
    1 s = bucket 32) and event counts up to two billion.

    The overhead contract mirrors {!Metrics}: {!record} on a live
    histogram is integer arithmetic and float-array stores — {e no
    allocation} — and on a dead one (from {!disabled}) it is a single
    branch.  A test pins zero heap growth per record.

    {!merge} is associative and commutative on everything integral
    (buckets, counts, min/max up to float compare); the running [sum]
    is a float accumulator and merges associatively only up to
    rounding.  That makes per-domain histograms safe to combine in any
    join order.

    {b Sampled timers.}  Reading even a monotonic clock twice per event
    costs ~5-15% at the engine's millions of events per second, so
    {!timer} samples: every [period]-th {!tick} returns a start stamp
    (and the others return [0.0], telling {!tock} to skip).  The
    histogram then holds a 1-in-[period] sample of per-call durations —
    multiply [sum] by [sample_period] to estimate total cost. *)

type t

val disabled : t
(** The shared dead histogram: recording into it is a no-op branch. *)

val create : unit -> t
val live : t -> bool

val record : t -> float -> unit
(** Count [v] into its log2 bucket and update count/sum/min/max.
    Alloc-free; call freely from hot loops. *)

val record_unit : t -> unit
(** Exactly [record t 1.0], specialised for per-event counters: the
    bucket and extrema are compile-time constants, so the update is two
    integer bumps and one float add.  Used by the probe on every engine
    event. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
(** Smallest recorded value; [nan] when empty. *)

val max_value : t -> float
(** Largest recorded value; [nan] when empty. *)

val buckets : t -> int array
(** A fresh copy of the 64 bucket counts. *)

val bucket_lower_bound : int -> float
(** Inclusive lower edge of bucket [b]; [0.0] for bucket 0. *)

val quantile : t -> float -> float
(** Lower edge of the bucket containing the [q]-quantile ([0 <= q <= 1]);
    [nan] when empty. *)

val sample_period : t -> int
(** The sampling period of the last {!timer} attached (1 when values
    were recorded directly). *)

val merge : t -> t -> t
(** Pointwise sum into a fresh histogram.  {!disabled} (or any empty
    histogram) is a zero element. *)

val merge_into : into:t -> t -> unit
(** Accumulate [src] into [into] in place (both must be live; a dead
    [src] is a no-op). *)

(** {1 Sampled timers} *)

type timer

val timer : ?period:int -> t -> timer
(** A sampled stopwatch over [t]; default [period] 256.  A timer over a
    dead histogram never reads the clock.
    @raise Invalid_argument if [period < 1]. *)

val tick : timer -> float
(** Start-of-span: returns a monotonic stamp on sampled calls, [0.0]
    otherwise.  Alloc-free either way. *)

val tock : timer -> float -> unit
(** End-of-span: records the duration when the matching {!tick}
    returned a stamp, otherwise does nothing. *)

(** {1 Named groups} *)

type group
(** A registry of named histograms, dead or live as a whole — the same
    disabled/live split as {!Profile} and {!Metrics}.  Registration
    ({!get}) is mutex-guarded and cheap but not hot-path; fetch
    instruments once, then {!record} freely. *)

val disabled_group : group
val group : unit -> group
val enabled : group -> bool

val get : group -> string -> t
(** Register (or re-fetch) the named histogram; dead when the group is
    disabled. *)

val hists : group -> (string * t) list
(** Live histograms sorted by name. *)

val merge_group_into : into:group -> group -> unit
(** Fold every histogram of the source group into the same-named
    histogram of [into] (created on demand): the per-shard → merged join
    of a sharded run.  Associative across any grouping of sources; a
    no-op when either group is disabled. *)

(** {1 Serialisation} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val write_group_file : group -> string -> unit
(** Atomically (write-then-rename) publish the group as a single JSON
    document: [{"schema": "p2p-hist", "version": 1, "hists": {...}}]. *)

val read_group_file : string -> ((string * t) list, string) result

val pp_named : Format.formatter -> string * t -> unit
(** Render one named histogram: summary line plus a bar per non-empty
    bucket. *)
