type cell = { mutable total_s : float; mutable entries : int }

type t = { live : bool; cells : (string, cell) Hashtbl.t; lock : Mutex.t }

let disabled = { live = false; cells = Hashtbl.create 1; lock = Mutex.create () }
let create () = { live = true; cells = Hashtbl.create 8; lock = Mutex.create () }
let enabled t = t.live

type span = { owner : t; label : string; t0 : float; dead : bool }

let dead_span = { owner = disabled; label = ""; t0 = 0.0; dead = true }

let record_locked t label seconds =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.cells label with
  | Some cell ->
      cell.total_s <- cell.total_s +. seconds;
      cell.entries <- cell.entries + 1
  | None -> Hashtbl.add t.cells label { total_s = seconds; entries = 1 });
  Mutex.unlock t.lock

(* Spans ride the monotonic clock: an NTP step under a run must not be
   able to produce negative or wildly inflated phase totals. *)
let start t label = if not t.live then dead_span else { owner = t; label; t0 = Clock.now_s (); dead = false }

let stop span =
  if not span.dead then
    record_locked span.owner span.label (Clock.now_s () -. span.t0)

let time t label f =
  if not t.live then f ()
  else begin
    let span = start t label in
    Fun.protect ~finally:(fun () -> stop span) f
  end

let record_s t label seconds = if t.live then record_locked t label seconds

let phases t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold (fun name cell acc -> (name, (cell.total_s, cell.entries)) :: acc) t.cells []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let total_s t = List.fold_left (fun acc (_, (s, _)) -> acc +. s) 0.0 (phases t)

let to_json t =
  Json.Obj
    (List.map
       (fun (name, (total_s, entries)) ->
         (name, Json.Obj [ ("total_s", Json.Float total_s); ("count", Json.Int entries) ]))
       (phases t))

let pp fmt t =
  let entries = phases t in
  let total = total_s t in
  let width =
    List.fold_left (fun acc (name, _) -> Int.max acc (String.length name)) 5 entries
  in
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (name, (s, count)) ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "%-*s %10.4fs  %5.1f%%  (entered %d)" width name s
        (if total > 0.0 then 100.0 *. s /. total else 0.0)
        count)
    entries;
  Format.fprintf fmt "@]"
