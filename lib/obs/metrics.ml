type counter = { mutable count : int; c_live : bool }
type gauge = { mutable value : float; g_live : bool }
type timer = { mutable total_s : float; mutable spans : int; t_live : bool }

type entry = C of counter | G of gauge | T of timer

type t = { live : bool; entries : (string, entry) Hashtbl.t }

let disabled = { live = false; entries = Hashtbl.create 1 }
let create () = { live = true; entries = Hashtbl.create 16 }
let enabled t = t.live

let dead_counter = { count = 0; c_live = false }
let dead_gauge = { value = 0.0; g_live = false }
let dead_timer = { total_s = 0.0; spans = 0; t_live = false }

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %S registered as a different kind" name)

let counter t name =
  if not t.live then dead_counter
  else
    match Hashtbl.find_opt t.entries name with
    | Some (C c) -> c
    | Some _ -> kind_error name
    | None ->
        let c = { count = 0; c_live = true } in
        Hashtbl.add t.entries name (C c);
        c

let incr c = if c.c_live then c.count <- c.count + 1
let add c n = if c.c_live then c.count <- c.count + n
let counter_value c = c.count

let gauge t name =
  if not t.live then dead_gauge
  else
    match Hashtbl.find_opt t.entries name with
    | Some (G g) -> g
    | Some _ -> kind_error name
    | None ->
        let g = { value = 0.0; g_live = true } in
        Hashtbl.add t.entries name (G g);
        g

let set g v = if g.g_live then g.value <- v
let gauge_value g = g.value

let timer t name =
  if not t.live then dead_timer
  else
    match Hashtbl.find_opt t.entries name with
    | Some (T tm) -> tm
    | Some _ -> kind_error name
    | None ->
        let tm = { total_s = 0.0; spans = 0; t_live = true } in
        Hashtbl.add t.entries name (T tm);
        tm

let time tm f =
  if not tm.t_live then f ()
  else begin
    (* monotonic, not wall: timer totals must survive NTP steps *)
    let t0 = Clock.now_s () in
    Fun.protect
      ~finally:(fun () ->
        tm.total_s <- tm.total_s +. (Clock.now_s () -. t0);
        tm.spans <- tm.spans + 1)
      f
  end

let timer_total_s tm = tm.total_s
let timer_count tm = tm.spans

(* The domain-safety contract: registries are single-domain; parallel
   work gives each domain its own registry and the owner folds them
   here after join.  Counters and timers are extensive (they add);
   gauges are last-observation instruments with no cross-domain order,
   so the merge keeps the maximum — deterministic in any join order. *)
let merge ~into src =
  if into.live && src.live then
    Hashtbl.iter
      (fun name entry ->
        match entry with
        | C c -> add (counter into name) c.count
        | G g ->
            let dst = gauge into name in
            if g.value > dst.value then dst.value <- g.value
        | T tm ->
            let dst = timer into name in
            dst.total_s <- dst.total_s +. tm.total_s;
            dst.spans <- dst.spans + tm.spans)
      src.entries

let to_json t =
  let fields =
    Hashtbl.fold
      (fun name entry acc ->
        let value =
          match entry with
          | C c -> Json.Int c.count
          | G g -> Json.Float g.value
          | T tm -> Json.Obj [ ("total_s", Json.Float tm.total_s); ("count", Json.Int tm.spans) ]
        in
        (name, value) :: acc)
      t.entries []
  in
  Json.Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)
