(** Live progress for replication sweeps: replications done, simulator
    events per second, and an ETA.

    Counters are atomics so any number of runner domains can report
    concurrently; printing is throttled to [min_interval_s] of wall time
    and serialised through a non-blocking [Mutex.try_lock], so a domain
    never waits on the console to make progress.

    Progress output is {e advisory}: it goes to [out] (stderr by
    default), never into result files, and reads the wall clock — it has
    no effect on simulation results or their determinism. *)

type t

val silent : t
(** Counts nothing, prints nothing; the no-op default. *)

val create : ?out:out_channel -> ?min_interval_s:float -> ?label:string -> total:int -> unit -> t
(** A meter expecting [total] work items, described in the printed line
    by [label] (default ["replications"]; the campaign layer passes
    ["cells"]).
    @raise Invalid_argument if [total < 0] or [min_interval_s < 0]. *)

val enabled : t -> bool

val step : t -> unit
(** One replication finished; may redraw the progress line. *)

val add_events : t -> int -> unit
(** Credit simulator events to the throughput estimate. *)

val done_count : t -> int
val events_total : t -> int

val finish : t -> unit
(** Final line (always printed when enabled) plus a newline, so later
    output starts clean. *)
