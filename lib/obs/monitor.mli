(** Online stability detectors over the sim-time probe grid.

    The paper's instability mechanism (Zhu & Hajek, PODC 2011) is the
    {e missing-piece syndrome}: one piece stays scarce — held by at
    most a couple of peers — while the "one-club" of peers holding
    everything {e but} that piece grows linearly.  The monitor watches
    for exactly that signature as the run executes, instead of leaving
    it to post-hoc [p2psim report]: a sliding window of probe samples
    in which (a) the rarest-piece replica count pins at or below a
    threshold for most of the window, and (b) an OLS fit of one-club
    size against time shows significant positive drift (slope t-statistic
    over a floor, the Section VI linear-growth witness).

    {b Determinism.}  The monitor consumes only probe samples, which
    ride the simulation clock; it never reads wall time and never
    touches the simulation RNG, so a monitored run is bit-identical to
    a bare run.  Feed it from a probe's [on_sample] hook. *)

type config = {
  window : int;  (** samples per sliding window *)
  pin_threshold : int;  (** rarest count ≤ this ⇒ "pinned scarce" *)
  pin_fraction : float;  (** fraction of window that must be pinned *)
  min_one_club : int;  (** ignore syndromes in tiny swarms *)
  min_slope : float;  (** one-club drift floor, peers per time unit *)
  min_t_stat : float;  (** slope significance floor *)
}

val default : config

type alert = {
  at : float;  (** sim time the detector fired *)
  one_club : int;
  rarest_piece : int;
  rarest_count : int;
  slope : float;  (** fitted one-club drift over the window *)
  t_stat : float;
}

type t

val create : ?config:config -> ?on_alert:(alert -> unit) -> unit -> t
(** [on_alert] fires once per episode, at entry.
    @raise Invalid_argument on a non-sensical config (window < 4,
    fraction outside [0, 1], negative thresholds). *)

val observe : t -> time:float -> one_club:int -> rarest_piece:int -> rarest_count:int -> unit
(** Feed one probe sample.  Cheap: O(window) only once per sample. *)

val samples_seen : t -> int

val alerts : t -> alert list
(** Alerts raised so far, oldest first. *)

val episodes : t -> (float * float option) list
(** Syndrome episodes as [(entered, exited)]; [None] = still open at
    the last sample.  Oldest first. *)

val alerting : t -> bool
(** Whether the detector is currently inside an episode. *)

val alert_json : alert -> Json.t
(** One structured JSONL line:
    [{"alert": "missing_piece_syndrome", "t": ..., ...}]. *)

val to_json : t -> Json.t
(** The full detector timeline: alerts plus episodes. *)

val pp_alert : Format.formatter -> alert -> unit
