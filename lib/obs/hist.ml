let n_buckets = 64

type t = {
  h_live : bool;
  buckets : int array;
  mutable count : int;
  (* [| sum; min; max |] in a float array so hot-path updates stay
     unboxed — a mutable float record field would allocate a box per
     store. *)
  acc : float array;
  mutable period : int;
}

let fresh_acc () = [| 0.0; infinity; neg_infinity |]

let disabled =
  { h_live = false; buckets = [||]; count = 0; acc = fresh_acc (); period = 1 }

let create () =
  { h_live = true; buckets = Array.make n_buckets 0; count = 0; acc = fresh_acc (); period = 1 }

let live t = t.h_live

(* floor log2 of a positive int by binary stepping — six compares
   instead of a per-bit loop; this runs once per recorded value on the
   hot path.  Straight-line shadowed lets on ints: no allocation (a
   local [ref] would heap-allocate). *)
let[@inline] log2i n =
  let r = 0 in
  let n, r = if n >= 1 lsl 32 then (n lsr 32, r + 32) else (n, r) in
  let n, r = if n >= 1 lsl 16 then (n lsr 16, r + 16) else (n, r) in
  let n, r = if n >= 1 lsl 8 then (n lsr 8, r + 8) else (n, r) in
  let n, r = if n >= 1 lsl 4 then (n lsr 4, r + 4) else (n, r) in
  let n, r = if n >= 1 lsl 2 then (n lsr 2, r + 2) else (n, r) in
  if n >= 2 then r + 1 else r

(* Bucket 1..62 covers [2^(b-32), 2^(b-31)); 0 and 63 absorb the
   tails.  Scaling by 2^31 keeps the intermediate below OCaml's 63-bit
   int range for every value under the overflow guard. *)
let bucket_of v =
  if not (v > 0.0) then 0
  else if v >= 2147483648.0 (* 2^31 *) then 63
  else
    let n = int_of_float (v *. 2147483648.0) in
    if n <= 0 then 0 else log2i n + 1

let bucket_lower_bound b =
  if b <= 0 then 0.0 else Float.ldexp 1.0 (b - 32)

(* Unsafe stores below: [bucket_of] clamps to [0, 63] and a live
   histogram always has [n_buckets] buckets, so the indices cannot
   escape — and the bounds checks are a measurable share of the
   per-event budget. *)
let record t v =
  if t.h_live then begin
    let b = bucket_of v in
    Array.unsafe_set t.buckets b (Array.unsafe_get t.buckets b + 1);
    t.count <- t.count + 1;
    Array.unsafe_set t.acc 0 (Array.unsafe_get t.acc 0 +. v);
    if v < Array.unsafe_get t.acc 1 then Array.unsafe_set t.acc 1 v;
    if v > Array.unsafe_get t.acc 2 then Array.unsafe_set t.acc 2 v
  end

(* [record t 1.0] specialised for the per-event-type counters the probe
   bumps on {e every} engine event: bucket, min and max are constants
   (1.0 lands in bucket 32, its lower bound), so the whole update is two
   integer bumps and one float add — no [bucket_of], no compares. *)
let[@inline] record_unit t =
  if t.h_live then begin
    Array.unsafe_set t.buckets 32 (Array.unsafe_get t.buckets 32 + 1);
    if t.count = 0 then begin
      Array.unsafe_set t.acc 1 1.0;
      Array.unsafe_set t.acc 2 1.0
    end;
    t.count <- t.count + 1;
    Array.unsafe_set t.acc 0 (Array.unsafe_get t.acc 0 +. 1.0)
  end

let count t = t.count
let sum t = t.acc.(0)
let mean t = if t.count = 0 then nan else t.acc.(0) /. float_of_int t.count
let min_value t = if t.count = 0 then nan else t.acc.(1)
let max_value t = if t.count = 0 then nan else t.acc.(2)
let buckets t = if t.h_live then Array.copy t.buckets else Array.make n_buckets 0
let sample_period t = t.period

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Hist.quantile: q outside [0, 1]";
  if t.count = 0 then nan
  else begin
    let target = Float.max 1.0 (Float.round (q *. float_of_int t.count)) in
    let seen = ref 0 and b = ref 0 and found = ref (n_buckets - 1) in
    (try
       while !b < n_buckets do
         seen := !seen + t.buckets.(!b);
         if float_of_int !seen >= target then begin
           found := !b;
           raise Exit
         end;
         incr b
       done
     with Exit -> ());
    bucket_lower_bound !found
  end

let merge_into ~into src =
  if src.h_live then begin
    if not into.h_live then invalid_arg "Hist.merge_into: destination is disabled";
    for i = 0 to n_buckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done;
    into.count <- into.count + src.count;
    into.acc.(0) <- into.acc.(0) +. src.acc.(0);
    if src.acc.(1) < into.acc.(1) then into.acc.(1) <- src.acc.(1);
    if src.acc.(2) > into.acc.(2) then into.acc.(2) <- src.acc.(2);
    if src.period > into.period then into.period <- src.period
  end

let merge a b =
  let t = create () in
  t.period <- 1;
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

(* ---- sampled timers ---- *)

type timer = { th : t; t_period : int; mutable left : int }

let timer ?(period = 256) h =
  if period < 1 then invalid_arg "Hist.timer: period < 1";
  if h.h_live then begin
    h.period <- period;
    { th = h; t_period = period; left = period }
  end
  else { th = h; t_period = 0; left = 0 }

let[@inline] tick tm =
  if tm.left > 1 then begin
    tm.left <- tm.left - 1;
    0.0
  end
  else if tm.left = 1 then begin
    tm.left <- tm.t_period;
    Clock.now_s ()
  end
  else 0.0 (* dead timer: [left] pinned at 0, never reads the clock *)

let[@inline] tock tm t0 = if t0 > 0.0 then record tm.th (Clock.now_s () -. t0)

(* ---- named groups ---- *)

type group = { g_live : bool; tbl : (string, t) Hashtbl.t; lock : Mutex.t }

let disabled_group = { g_live = false; tbl = Hashtbl.create 1; lock = Mutex.create () }
let group () = { g_live = true; tbl = Hashtbl.create 16; lock = Mutex.create () }
let enabled g = g.g_live

let get g name =
  if not g.g_live then disabled
  else begin
    Mutex.lock g.lock;
    let h =
      match Hashtbl.find_opt g.tbl name with
      | Some h -> h
      | None ->
          let h = create () in
          Hashtbl.add g.tbl name h;
          h
    in
    Mutex.unlock g.lock;
    h
  end

let hists g =
  Mutex.lock g.lock;
  let entries = Hashtbl.fold (fun name h acc -> (name, h) :: acc) g.tbl [] in
  Mutex.unlock g.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

(* Fold one group into another by name — the per-shard → merged join of
   a sharded run.  Associative and commutative up to float summation
   order, like [merge_into]; a no-op when either group is disabled. *)
let merge_group_into ~into src =
  if into.g_live && src.g_live then
    List.iter (fun (name, h) -> merge_into ~into:(get into name) h) (hists src)

(* ---- serialisation ---- *)

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Float t.acc.(0));
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("sample_period", Json.Int t.period);
      ("buckets", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) (buckets t))));
    ]

let of_json j =
  let field name = Json.member name j in
  let int_field name =
    match Option.bind (field name) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "hist: missing int field %S" name)
  in
  let float_field name =
    match Option.bind (field name) Json.to_float_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "hist: missing number field %S" name)
  in
  let ( let* ) = Result.bind in
  let* count = int_field "count" in
  let* sum = float_field "sum" in
  let* mn = float_field "min" in
  let* mx = float_field "max" in
  let* period = int_field "sample_period" in
  match Option.bind (field "buckets") Json.to_list_opt with
  | None -> Error "hist: missing \"buckets\" array"
  | Some items ->
      if List.length items <> n_buckets then
        Error (Printf.sprintf "hist: expected %d buckets, got %d" n_buckets (List.length items))
      else begin
        let t = create () in
        t.count <- count;
        t.acc.(0) <- sum;
        t.acc.(1) <- (if count = 0 then infinity else mn);
        t.acc.(2) <- (if count = 0 then neg_infinity else mx);
        t.period <- period;
        match
          List.iteri
            (fun i item ->
              match Json.to_int_opt item with
              | Some c -> t.buckets.(i) <- c
              | None -> raise Exit)
            items
        with
        | () -> Ok t
        | exception Exit -> Error "hist: non-integer bucket count"
      end

let schema = "p2p-hist"

let write_group_file g path =
  Json.write_file_atomic path (fun oc ->
      Json.to_channel oc
        (Json.Obj
           [
             ("schema", Json.String schema);
             ("version", Json.Int 1);
             ("hists", Json.Obj (List.map (fun (name, h) -> (name, to_json h)) (hists g)));
           ]);
      output_char oc '\n')

let read_group_file path =
  let ( let* ) = Result.bind in
  let read () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let* content = try Ok (read ()) with Sys_error msg -> Error msg in
  let* j = Json.of_string content in
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "hist file: schema %S, wanted %S" s schema)
    | None -> Error "hist file: no schema field"
  in
  match Json.member "hists" j with
  | Some (Json.Obj kvs) ->
      List.fold_left
        (fun acc (name, hj) ->
          let* acc = acc in
          let* h = of_json hj in
          Ok ((name, h) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
  | _ -> Error "hist file: no \"hists\" object"

let pp_named fmt (name, t) =
  Format.fprintf fmt "@[<v>%s: %d recorded" name t.count;
  if t.count > 0 then begin
    Format.fprintf fmt ", mean %.3g, min %.3g, max %.3g" (mean t) (min_value t) (max_value t);
    if t.period > 1 then Format.fprintf fmt " (1-in-%d sampled)" t.period;
    let most = Array.fold_left Int.max 1 t.buckets in
    Array.iteri
      (fun b c ->
        if c > 0 then begin
          let bar = String.make (Int.max 1 (c * 40 / most)) '#' in
          Format.fprintf fmt "@,  [%8.3g, %8.3g) %10d %s" (bucket_lower_bound b)
            (bucket_lower_bound (b + 1))
            c bar
        end)
      t.buckets
  end;
  Format.fprintf fmt "@]"
