(** The observability hook record threaded through the simulators.

    A [Probe.t] bundles everything a simulator can report without knowing
    who is listening: structured events (for the tracer), periodic swarm
    samples on a {e simulation-time} grid (for time-series probes), and a
    phase profiler.  {!none} is the contract's zero element — every hook
    is a no-op closure, the sampling interval is [infinity], and the
    simulators skip event construction entirely after one physical
    equality / flag check per site.

    {b Determinism.}  Probes never touch the simulation RNG, never
    perturb event ordering, and sample on the simulation clock — never
    the wall clock — so (a) a run with a probe attached is bit-identical
    to the same run without one, and (b) per-replication probe series
    are bit-identical across any [--jobs] count.  Tests pin both. *)

module Pieceset = P2p_pieceset.Pieceset

(** {1 Events} *)

type departure_kind =
  | Completed  (** finished the file and left (γ = ∞ instant departure) *)
  | Aborted  (** churn: left without the file *)
  | Seed_departed  (** peer seed dwelled and left (finite γ) *)

type event =
  | Arrival of { pieces : Pieceset.t }
  | Contact of { seed : bool; useful : bool }
      (** a contact resolved; [seed] = fixed-seed upload attempt;
          [useful] = the policy found a piece to push *)
  | Transfer of { piece : int; completed : bool }
      (** a piece actually arrived; [completed] = it was the last one *)
  | Transfer_lost  (** fault injection dropped a would-be upload *)
  | Departure of { kind : departure_kind }
  | Seed_toggle of { up : bool }  (** fault injection flipped the fixed seed *)
  | Handoff of { fluid : bool; n : float }
      (** the hybrid backend switched regime: [fluid = true] = stochastic
          → fluid at population [n]; [false] = fluid → stochastic *)

val event_name : event -> string
val event_args : event -> (string * Json.t) list

(** {1 Swarm samples} *)

type sample = {
  time : float;
  n : int;  (** total population *)
  seeds : int;  (** peer seeds (holders of the full set) *)
  one_club : int;  (** holders of exactly [full \ rarest] *)
  rarest_piece : int;
  rarest_count : int;  (** copies of the rarest piece among peers *)
  piece_counts : int array;  (** copies of each piece, length [k] *)
}

val sample :
  time:float -> k:int -> n:int -> count_of:(Pieceset.t -> int) -> piece_counts:int array -> sample
(** Build a sample from a state's counting functions.  The rarest piece
    is the argmin of [piece_counts] (lowest index on ties), and the
    one-club is counted against {e that} piece — the instantaneous
    missing-piece candidate. *)

(** {1 The hook record} *)

type t = private {
  interval : float;  (** sim-time sampling period; [infinity] = never *)
  tracing : bool;  (** false ⇒ skip event construction *)
  on_event : time:float -> event -> unit;
  on_sample : sample -> unit;
  profile : Profile.t;
}

val none : t

val make :
  ?interval:float ->
  ?on_event:(time:float -> event -> unit) ->
  ?on_sample:(sample -> unit) ->
  ?profile:Profile.t ->
  unit ->
  t
(** [tracing] is true iff [on_event] is supplied.
    @raise Invalid_argument if [interval <= 0]. *)

val trace_hook : Trace.t -> time:float -> event -> unit
(** An [on_event] that forwards to a trace sink. *)

val sampling : t -> bool
(** Whether the probe wants grid samples ([interval < infinity]). *)

val event : t -> time:float -> event -> unit
(** Call under [if probe.tracing then ...] in hot loops. *)
