(** The observability hook record threaded through the simulators.

    A [Probe.t] bundles everything a simulator can report without knowing
    who is listening: structured events (for the tracer), periodic swarm
    samples on a {e simulation-time} grid (for time-series probes), and a
    phase profiler.  {!none} is the contract's zero element — every hook
    is a no-op closure, the sampling interval is [infinity], and the
    simulators skip event construction entirely after one physical
    equality / flag check per site.

    {b Determinism.}  Probes never touch the simulation RNG, never
    perturb event ordering, and sample on the simulation clock — never
    the wall clock — so (a) a run with a probe attached is bit-identical
    to the same run without one, and (b) per-replication probe series
    are bit-identical across any [--jobs] count.  Tests pin both. *)

module Pieceset = P2p_pieceset.Pieceset

(** {1 Events} *)

type departure_kind =
  | Completed  (** finished the file and left (γ = ∞ instant departure) *)
  | Aborted  (** churn: left without the file *)
  | Seed_departed  (** peer seed dwelled and left (finite γ) *)

type event =
  | Arrival of { pieces : Pieceset.t }
  | Contact of { seed : bool; useful : bool }
      (** a contact resolved; [seed] = fixed-seed upload attempt;
          [useful] = the policy found a piece to push *)
  | Transfer of { piece : int; completed : bool }
      (** a piece actually arrived; [completed] = it was the last one *)
  | Transfer_lost  (** fault injection dropped a would-be upload *)
  | Departure of { kind : departure_kind }
  | Seed_toggle of { up : bool }  (** fault injection flipped the fixed seed *)
  | Handoff of { fluid : bool; n : float }
      (** the hybrid backend switched regime: [fluid = true] = stochastic
          → fluid at population [n]; [false] = fluid → stochastic *)

val event_name : event -> string
val event_args : event -> (string * Json.t) list

(** {2 Dense codes}

    The flight recorder stores events as [(code, a, b)] integer rows so
    recording never allocates.  Payload packing: [Arrival] carries the
    piece bitset and its cardinal; [Contact] the seed/useful flags;
    [Transfer] the 1-based piece and the completion flag; [Seed_toggle]
    the new state; [Handoff] the direction and rounded population. *)

val n_event_codes : int
val event_code : event -> int
val code_name : int -> string
val payload_a : event -> int
val payload_b : event -> int

(** {1 Swarm samples} *)

type sample = {
  time : float;
  n : int;  (** total population *)
  seeds : int;  (** peer seeds (holders of the full set) *)
  one_club : int;  (** holders of exactly [full \ rarest] *)
  rarest_piece : int;
  rarest_count : int;  (** copies of the rarest piece among peers *)
  piece_counts : int array;  (** copies of each piece, length [k] *)
}

val sample :
  time:float -> k:int -> n:int -> count_of:(Pieceset.t -> int) -> piece_counts:int array -> sample
(** Build a sample from a state's counting functions.  The rarest piece
    is the argmin of [piece_counts] (lowest index on ties), and the
    one-club is counted against {e that} piece — the instantaneous
    missing-piece candidate. *)

(** {1 The hook record} *)

type t = private {
  interval : float;  (** sim-time sampling period; [infinity] = never *)
  tracing : bool;  (** false ⇒ skip event reporting entirely *)
  on_event : time:float -> event -> unit;
  on_sample : sample -> unit;
  profile : Profile.t;
  recorder : Recorder.t;  (** flight recorder fed by the emitters *)
  hists : Hist.group;  (** phase-cost and event-count histograms *)
  structured : bool;  (** recorder or hists live *)
  subscribed : bool;  (** an [on_event] hook was supplied *)
  event_counts : Hist.t array;  (** per-code occurrence hists, by {!event_code} *)
}

val none : t

val make :
  ?interval:float ->
  ?on_event:(time:float -> event -> unit) ->
  ?on_sample:(sample -> unit) ->
  ?profile:Profile.t ->
  ?recorder:Recorder.t ->
  ?hists:Hist.group ->
  unit ->
  t
(** [tracing] is true iff [on_event] is supplied, the recorder is live,
    or the hist group is enabled — all three consume events.  A live
    hist group additionally makes the engine attribute per-phase
    monotonic-clock cost into [hists] (sampled timers, see
    {!Hist.timer}).
    @raise Invalid_argument if [interval <= 0]. *)

val trace_hook : Trace.t -> time:float -> event -> unit
(** An [on_event] that forwards to a trace sink. *)

val sampling : t -> bool
(** Whether the probe wants grid samples ([interval < infinity]). *)

(** {1 Emitters}

    Call these under [if probe.tracing then ...] in hot loops.  Each
    takes the event payload as scalars: the recorder and count hists
    consume the dense [(code, a, b)] form directly, and the [event]
    variant is only constructed when an [on_event] subscriber is
    attached — so a recorder-only run never allocates or dispatches
    per event. *)

val arrival : t -> time:float -> pieces:Pieceset.t -> unit
val contact : t -> time:float -> seed:bool -> useful:bool -> unit
val transfer : t -> time:float -> piece:int -> completed:bool -> unit
val transfer_lost : t -> time:float -> unit
val departure : t -> time:float -> departure_kind -> unit
val seed_toggle : t -> time:float -> up:bool -> unit
val handoff : t -> time:float -> fluid:bool -> n:float -> unit

val event : t -> time:float -> event -> unit
(** Dynamic form of the emitters above, for callers that already hold
    an [event] value (replays, tests). *)
