(** Flight recorder: a preallocated ring buffer of the last N engine
    events, dumped atomically on crash, timeout, signal, or demand.

    The recorder is struct-of-arrays (one float array for timestamps,
    int arrays for the event code and two integer payload slots), so a
    live {!record} is four array stores and two integer bumps — {e zero
    steady-state allocation} — and on the shared {!disabled} recorder a
    single branch.  Simulators feed it through [Probe.event]; the
    payload encoding per event code lives in [Probe].

    {b Dumps are atomic.}  {!dump} writes through the same
    write-to-temporary-then-rename discipline as every other emitter in
    the repo, so a reader never sees a torn dump: any file at the dump
    path is complete.  That is also the crash-survival story for
    SIGKILL, which cannot be caught: enable {!auto_snapshot} and the
    recorder republishes the ring every [every] records (rate-limited
    on the wall clock), leaving the last complete snapshot behind no
    matter how the process dies.  Snapshot cadence reads the wall
    clock but never feeds back into the simulation — recorded runs
    stay bit-identical to bare runs.

    Dump format follows the path extension like [Trace]: [.json] is a
    Chrome trace array, anything else is JSONL with a schema header
    line ([{"schema": "p2p-flight-recorder", "version": 1, ...}])
    followed by one event per line, oldest first. *)

type t

val disabled : t
(** Recording into it is a no-op branch. *)

val create : ?capacity:int -> unit -> t
(** A live recorder holding the last [capacity] events (default 4096,
    rounded up to a power of two).
    @raise Invalid_argument if [capacity < 1]. *)

val live : t -> bool
val capacity : t -> int

val record : t -> time:float -> code:int -> a:int -> b:int -> unit
(** Append one event, overwriting the oldest once full.  Alloc-free. *)

val recorded : t -> int
(** Total events ever recorded (not capped at capacity). *)

val dropped : t -> int
(** Events overwritten: [max 0 (recorded - capacity)]. *)

val auto_snapshot : t -> every:int -> min_gap_s:float -> code_name:(int -> string) -> string -> unit
(** Republish the ring to the given path every [every] records, but at
    most once per [min_gap_s] seconds of wall time.  No-op on a dead
    recorder.
    @raise Invalid_argument if [every < 1] or [min_gap_s < 0]. *)

val dump : t -> code_name:(int -> string) -> string -> unit
(** Atomically publish the current ring contents (oldest first) to the
    path.  A dead recorder writes nothing. *)

val schema : string

val read_summary :
  string ->
  ((int * int * int) * (float * int * int * int) array, string) result
(** Parse a JSONL dump back: [(capacity, recorded, dropped)] plus the
    events as [(time, code, a, b)] rows, oldest first.  Tolerates a
    torn trailing line (quarantined, as everywhere else) but rejects
    wrong schemas and interior corruption. *)
