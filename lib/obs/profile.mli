(** Wall-clock phase profiling of the simulator hot paths.

    Coarse-grained by design: a phase is a named region entered a handful
    of times per run (setup, the event loop, finalisation), not a
    per-event probe — so the clock reads never show up in the event
    loop's own profile.  {!disabled} follows the same dead-cell contract
    as {!Metrics}: [start]/[stop] on it are a branch each, no clock read,
    no allocation beyond the shared dummy span.

    Accumulators are mutex-protected so replications running on several
    domains can share one profiler (the runner's aggregate view). *)

type t

val disabled : t
val create : unit -> t
val enabled : t -> bool

type span

val start : t -> string -> span
val stop : span -> unit
(** Adds the elapsed wall time to the span's phase.  Idempotence is not
    guaranteed; stop each span exactly once. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [start]/[stop] around the thunk, exception-safe. *)

val record_s : t -> string -> float -> unit
(** Credit [seconds] to a phase directly (e.g. re-attributing a wall
    measurement taken elsewhere). *)

val phases : t -> (string * (float * int)) list
(** [(name, (total seconds, times entered))], sorted by name. *)

val total_s : t -> float

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
(** One aligned line per phase with its share of the profiled total. *)
